package tcptransport

import (
	"bytes"
	"encoding/gob"
	"testing"

	"hypercube/internal/id"
)

// FuzzDecodeWire feeds arbitrary bytes through the gob + envelope decode
// path a node applies to data read from the network: it must never panic,
// whatever a malicious or corrupted peer sends.
func FuzzDecodeWire(f *testing.F) {
	// Seed with a few valid frames.
	p := id.Params{B: 8, D: 5}
	for _, kind := range []uint8{1, 3, 7, 12, 14} {
		var buf bytes.Buffer
		w := wireEnvelope{
			Kind: kind,
			From: wireRef{ID: "21233", Addr: "127.0.0.1:1"},
			To:   wireRef{ID: "33121", Addr: "127.0.0.1:2"},
			Want: "233",
		}
		if err := gob.NewEncoder(&buf).Encode(&w); err == nil {
			f.Add(buf.Bytes())
		}
	}
	// Seed the malformed classes the decoder must reject: out-of-range
	// table coordinates and states, arbitrary Lo/Hi, hostile fill-vector
	// lengths, oversized addresses, and an out-of-space ref.
	hostile := []wireEnvelope{
		{Kind: 2, From: wireRef{ID: "21233", Addr: "a"}, To: wireRef{ID: "33121", Addr: "b"},
			HasTable: true, Table: wireTable{Owner: "21233", Lo: 0, Hi: 4,
				Filled: []wireEntry{{Level: 99, Digit: 0, ID: "33121", State: 2}}}},
		{Kind: 2, From: wireRef{ID: "21233"}, To: wireRef{ID: "33121"},
			HasTable: true, Table: wireTable{Owner: "21233", Lo: 0, Hi: 4,
				Filled: []wireEntry{{Level: 0, Digit: -3, ID: "33121", State: 2}}}},
		{Kind: 2, From: wireRef{ID: "21233"}, To: wireRef{ID: "33121"},
			HasTable: true, Table: wireTable{Owner: "21233", Lo: 0, Hi: 4,
				Filled: []wireEntry{{Level: 0, Digit: 0, ID: "33121", State: 9}}}},
		{Kind: 2, From: wireRef{ID: "21233"}, To: wireRef{ID: "33121"},
			HasTable: true, Table: wireTable{Owner: "21233", Lo: -5, Hi: 700}},
		{Kind: 5, From: wireRef{ID: "21233"}, To: wireRef{ID: "33121"},
			Fill: []uint64{1, 2, 3}, FillLen: 1 << 30},
		{Kind: 19, From: wireRef{ID: "21233"}, To: wireRef{ID: "33121"},
			Fill: []uint64{1}, FillLen: -40},
		{Kind: 1, From: wireRef{ID: "21233", Addr: string(make([]byte, 5000))}, To: wireRef{ID: "33121"}},
		{Kind: 1, From: wireRef{ID: "99999"}, To: wireRef{ID: "33121"}},
	}
	for _, w := range hostile {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&w); err == nil {
			f.Add(buf.Bytes())
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var w wireEnvelope
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
			return
		}
		env, err := decodeEnvelope(p, w)
		if err != nil {
			return
		}
		// Anything accepted must re-encode cleanly.
		if _, err := encodeEnvelope(env); err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v", err)
		}
	})
}
