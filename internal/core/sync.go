// Anti-entropy support for the partition-tolerance extension: the
// machine side of the periodic table-audit protocol driven by
// internal/antientropy.
//
// A sync round is a push-pull digest exchange. The initiator sends its
// §6.2 fill vector (SyncReqMsg); the responder computes, from the two
// IDs alone, the canonical entry each of its occupants would fill in the
// initiator's table and replies with exactly the occupants whose bit is
// clear (SyncRlyMsg), attaching its own fill vector; the initiator
// merges, then pushes back whatever the responder is missing
// (SyncPushMsg). Merging reuses checkNghTable, which installs each
// harvested node at its canonical coordinate in the local table — so the
// exchange is owner-independent and converges any divergence, including
// the mutual blindness two partition sides develop while separated.
//
// AuditTable is the purge side: entries the netcheck predicates would
// classify as Ghost (occupant known crashed or departed) or WrongSuffix
// (occupant cannot legally sit in the entry) are cleared and repaired
// from the local table, falling back to the clock-driven repair jobs of
// timeout.go when no local replacement exists.
package core

import (
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
	"hypercube/internal/trace"
)

// StartSync opens one anti-entropy round with peer and returns the
// SyncReqMsg to transmit. Only S-nodes sync; other statuses return nil.
func (m *Machine) StartSync(peer table.Ref) []msg.Envelope {
	return m.StartSyncTraced(peer, trace.Context{})
}

// StartSyncTraced is StartSync under an externally-allocated trace
// context: the anti-entropy engine owns the round's root span (its
// sync_round event carries it), and the round's SyncReq — and, on the
// initiator, the follow-up SyncPush — descend from it.
func (m *Machine) StartSyncTraced(peer table.Ref, ctx trace.Context) []msg.Envelope {
	if m.status != StatusInSystem || peer.IsZero() || peer.ID == m.self.ID {
		return nil
	}
	m.out = m.out[:0]
	m.cur = ctx
	m.send(peer, msg.SyncReq{Fill: m.tbl.FillVector()})
	m.cur = trace.Context{}
	return m.take()
}

// SyncPeers returns the distinct live nodes eligible as anti-entropy
// partners — table occupants plus reverse neighbors, minus self and
// known-bad nodes — sorted by ID so round-robin rotation is
// deterministic. Reverse neighbors matter after a partition heals: a
// node the far side just installed learns of its holder through the
// holder's RvNghNoti, and syncing back with that holder is the fastest
// route to everything else the far side knows.
func (m *Machine) SyncPeers() []table.Ref {
	cands := make(map[id.ID]table.Ref)
	m.tbl.ForEach(func(_, _ int, n table.Neighbor) {
		if n.ID == m.self.ID || m.knownBad(n.ID) {
			return
		}
		cands[n.ID] = n.Ref()
	})
	for _, r := range m.reverse {
		if r.ID != m.self.ID && !m.knownBad(r.ID) {
			cands[r.ID] = r
		}
	}
	return sortedRefs(cands)
}

// SyncPulled returns how many table entries were installed from peers'
// sync replies and pushes.
func (m *Machine) SyncPulled() int { return m.syncPulled }

// AuditPurged returns how many entries AuditTable has cleared.
func (m *Machine) AuditPurged() int { return m.auditPurged }

// AuditTable scans the local table for entries a netcheck would flag as
// Ghost (occupant declared crashed or departed) or WrongSuffix (occupant
// lacks the entry's desired suffix), purges them, and repairs each from
// the local table where possible — unrepaired entries become repair jobs
// for the clock-driven Find machinery. It returns the number of entries
// purged and the repair traffic to transmit.
func (m *Machine) AuditTable() (purged int, out []msg.Envelope) {
	if m.status != StatusInSystem {
		return 0, nil
	}
	m.out = m.out[:0]
	var bad [][2]int
	m.tbl.ForEach(func(level, digit int, n table.Neighbor) {
		if n.ID == m.self.ID {
			return
		}
		if m.knownBad(n.ID) || !m.tbl.Qualifies(level, digit, n.ID) {
			bad = append(bad, [2]int{level, digit})
		}
	})
	for _, e := range bad {
		gone := m.tbl.Get(e[0], e[1]).ID
		purged++
		m.auditPurged++
		m.trace("%v audit purges %v from (%d,%d)", m.self.ID, gone, e[0], e[1])
		if !m.repairFromTables(e[0], e[1], gone, table.Snapshot{}) {
			if m.inRepair == nil {
				m.inRepair = make(map[[2]int]bool)
			}
			m.inRepair[e] = true
			m.addRepairJob(e, gone)
		}
	}
	return purged, m.take()
}

// onSyncReq answers an anti-entropy request: ship exactly the occupants
// whose canonical slot in the requester's table is empty per the digest,
// plus our own fill vector so the requester can push back in turn.
func (m *Machine) onSyncReq(from table.Ref, pm msg.SyncReq) {
	if m.status != StatusInSystem {
		return // joining or departing tables are not sync authorities
	}
	m.send(from, msg.SyncRly{
		Table: m.tbl.Snapshot().MissingIn(from.ID, pm.Fill),
		Fill:  m.tbl.FillVector(),
	})
}

// onSyncRly merges the pulled entries, then pushes back whatever the
// responder's fill vector showed it was missing.
func (m *Machine) onSyncRly(from table.Ref, pm msg.SyncRly) {
	if m.status != StatusInSystem {
		return
	}
	m.harvestSync(pm.Table)
	push := m.tbl.Snapshot().MissingIn(from.ID, pm.Fill)
	if push.FilledCount() > 0 {
		m.send(from, msg.SyncPush{Table: push})
	}
}

// onSyncPush merges the entries pushed back by the round's initiator.
func (m *Machine) onSyncPush(pm msg.SyncPush) {
	if m.status != StatusInSystem {
		return
	}
	m.harvestSync(pm.Table)
}

// harvestSync merges a sync table through checkNghTable (canonical-slot
// installation with reverse-neighbor notices) and counts the installs.
func (m *Machine) harvestSync(snap table.Snapshot) {
	before := m.tbl.FilledCount()
	m.checkNghTable(snap)
	m.syncPulled += m.tbl.FilledCount() - before
}
