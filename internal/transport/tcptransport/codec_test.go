package tcptransport

import (
	"context"
	"net"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
	"hypercube/internal/wire"
)

// codecSampleEnvelopes builds one envelope per message kind (plus edge
// shapes) under p85, for differential gob-vs-binary testing.
var p85 = id.Params{B: 8, D: 5}

func codecSampleEnvelopes(t testing.TB) []msg.Envelope {
	t.Helper()
	p := p85
	owner := id.MustParse(p, "21233")
	tbl := table.New(p, owner)
	tbl.Set(0, 1, table.Neighbor{ID: id.MustParse(p, "33121"), Addr: "127.0.0.1:9", State: table.StateS})
	tbl.Set(3, 0, table.Neighbor{ID: id.MustParse(p, "40233"), Addr: "127.0.0.1:8", State: table.StateT})
	snap := tbl.Snapshot()
	refA := table.Ref{ID: owner, Addr: "127.0.0.1:1"}
	refB := table.Ref{ID: id.MustParse(p, "33121"), Addr: "127.0.0.1:2"}
	fill := tbl.FillVector()

	messages := []msg.Message{
		msg.CpRst{Level: 3},
		msg.CpRly{Table: snap},
		msg.JoinWait{},
		msg.JoinWaitRly{R: msg.Negative, U: refB, Table: snap},
		msg.JoinNoti{Table: snap, NotiLevel: 2, FillVector: fill},
		msg.JoinNoti{Table: snap},
		msg.JoinNotiRly{R: msg.Positive, F: true, Table: snap},
		msg.InSysNoti{},
		msg.SpeNoti{X: refA, Y: refB},
		msg.SpeNotiRly{X: refA, Y: refB},
		msg.RvNghNoti{Level: 2, Digit: 5, State: table.StateT},
		msg.RvNghNotiRly{Level: 2, Digit: 5, State: table.StateS},
		msg.Leave{Table: snap},
		msg.LeaveRly{},
		msg.Find{Want: id.MustParseSuffix(p, "233"), Origin: refA, Avoid: id.MustParse(p, "40233")},
		msg.Find{Want: id.EmptySuffix, Origin: refA},
		msg.FindRly{Want: id.MustParseSuffix(p, "233"), Found: table.Neighbor{ID: id.MustParse(p, "40233"), Addr: "a:1", State: table.StateS}},
		msg.FindRly{Want: id.MustParseSuffix(p, "233"), Blocked: true},
		msg.Ping{Seq: 42, Origin: refA},
		msg.Ping{Seq: 43, Origin: refA, Target: refB},
		msg.Pong{Seq: 42},
		msg.FailedNoti{Failed: refB},
		msg.SyncReq{Fill: fill},
		msg.SyncReq{},
		msg.SyncRly{Table: snap, Fill: fill},
		msg.SyncPush{Table: snap},
	}
	envs := make([]msg.Envelope, len(messages))
	for i, m := range messages {
		envs[i] = msg.Envelope{From: refA, To: refB, Msg: m}
	}
	return envs
}

// The binary codec must decode every envelope to exactly the value the
// gob codec decodes it to: same refs, same message, same table contents.
// This is the differential guarantee that swapping codecs cannot change
// protocol behavior.
func TestCodecGobBinaryEquivalence(t *testing.T) {
	for _, env := range codecSampleEnvelopes(t) {
		gobPayload, err := EncodeGobPayload(env)
		if err != nil {
			t.Fatalf("%v: gob encode: %v", env.Msg.Type(), err)
		}
		viaGob, err := DecodeGobPayload(p85, gobPayload)
		if err != nil {
			t.Fatalf("%v: gob decode: %v", env.Msg.Type(), err)
		}
		binPayload, err := wire.EncodePayload(p85, env)
		if err != nil {
			t.Fatalf("%v: binary encode: %v", env.Msg.Type(), err)
		}
		viaBin, err := wire.DecodeOne(p85, binPayload)
		if err != nil {
			t.Fatalf("%v: binary decode: %v", env.Msg.Type(), err)
		}
		if !reflect.DeepEqual(viaGob, viaBin) {
			t.Errorf("%v: codecs disagree\n gob: %#v\n bin: %#v", env.Msg.Type(), viaGob, viaBin)
		}
	}
}

// Regression: a fill vector carrying fewer words than its bit length
// requires was silently zero-extended, so a truncated (or hostile)
// bitmap decoded as "mostly empty". The gob boundary must demand the
// exact word count.
func TestDecodeFillExactWordCount(t *testing.T) {
	base := wireEnvelope{
		Kind: uint8(msg.TSyncReq),
		From: wireRef{ID: "21233", Addr: "a"},
		To:   wireRef{ID: "33121", Addr: "b"},
	}
	under := base
	under.Fill, under.FillLen = nil, 40 // needs 1 word, carries none
	if _, err := decodeEnvelope(p85, under); err == nil {
		t.Error("under-length fill vector accepted")
	}
	over := base
	over.Fill, over.FillLen = []uint64{1, 2}, 40 // needs 1 word
	if _, err := decodeEnvelope(p85, over); err == nil {
		t.Error("over-length fill vector accepted")
	}
	exact := base
	exact.Fill, exact.FillLen = []uint64{5}, 40
	env, err := decodeEnvelope(p85, exact)
	if err != nil {
		t.Fatalf("exact fill vector rejected: %v", err)
	}
	if got := env.Msg.(msg.SyncReq).Fill; got.Len() != 40 || got.Count() != 2 {
		t.Fatalf("fill vector corrupted: len=%d count=%d", got.Len(), got.Count())
	}
}

// Regression: FindRly.Found skipped the address-length and state checks
// every other wire neighbor gets, letting a hostile peer plant an
// unbounded address or invalid state via the find path.
func TestDecodeFindRlyValidatesFound(t *testing.T) {
	base := wireEnvelope{
		Kind: uint8(msg.TFindRly),
		From: wireRef{ID: "21233", Addr: "a"},
		To:   wireRef{ID: "33121", Addr: "b"},
		Want: "233",
	}
	huge := base
	huge.Found = wireEntry{ID: "40233", Addr: strings.Repeat("x", maxWireAddr+1), State: uint8(table.StateS)}
	if _, err := decodeEnvelope(p85, huge); err == nil {
		t.Error("oversized found address accepted")
	}
	badState := base
	badState.Found = wireEntry{ID: "40233", Addr: "a:1", State: 9}
	if _, err := decodeEnvelope(p85, badState); err == nil {
		t.Error("invalid found state accepted")
	}
	good := base
	good.Found = wireEntry{ID: "40233", Addr: "a:1", State: uint8(table.StateS)}
	if _, err := decodeEnvelope(p85, good); err != nil {
		t.Errorf("valid found entry rejected: %v", err)
	}
}

// frameSink is a raw TCP listener that counts frames and the envelopes
// they carry, and records the largest payload seen — the receiving-side
// instrument for coalescing assertions.
type frameSink struct {
	ln        net.Listener
	frames    atomic.Int64
	envelopes atomic.Int64
	coalesced atomic.Int64 // frames carrying >1 envelope
	maxSeen   atomic.Int64 // largest payload in bytes
	wg        sync.WaitGroup
}

func newFrameSink(t *testing.T) *frameSink {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &frameSink{ln: ln}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				for {
					payload, isBinary, err := readFrame(conn, 1<<20, 0)
					if err != nil {
						return
					}
					cnt, err := countFrameEnvelopes(payload, isBinary)
					if err != nil {
						return
					}
					s.frames.Add(1)
					s.envelopes.Add(int64(cnt))
					if cnt > 1 {
						s.coalesced.Add(1)
					}
					for {
						old := s.maxSeen.Load()
						if int64(len(payload)) <= old || s.maxSeen.CompareAndSwap(old, int64(len(payload))) {
							break
						}
					}
				}
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		s.wg.Wait()
	})
	return s
}

// With a flush delay, a burst of envelopes to one peer must coalesce
// into far fewer frames than envelopes — and all of them must arrive.
func TestCoalescingBatchesEnvelopes(t *testing.T) {
	sink := newFrameSink(t)
	n, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "a07"), "127.0.0.1:0",
		WithFlushDelay(40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	to := table.Ref{ID: id.MustParse(p163, "f07"), Addr: sink.ln.Addr().String()}
	const burst = 50
	envs := make([]msg.Envelope, burst)
	for i := range envs {
		envs[i] = msg.Envelope{From: n.Ref(), To: to, Msg: msg.JoinWait{}}
	}
	if err := n.sendAll(envs); err != nil {
		t.Fatal(err)
	}
	awaitInt64(t, "coalesced envelopes", sink.envelopes.Load, burst)
	if f := sink.frames.Load(); f >= burst/2 {
		t.Errorf("burst of %d envelopes used %d frames; want real coalescing", burst, f)
	}
	if sink.coalesced.Load() == 0 {
		t.Error("no frame carried more than one envelope")
	}
}

// The coalescer must respect MaxFrameBytes by construction: frames stop
// growing before the limit, never after it.
func TestCoalescerRespectsMaxFrameBytes(t *testing.T) {
	sink := newFrameSink(t)
	const limit = 512
	n, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "a08"), "127.0.0.1:0",
		WithFlushDelay(40*time.Millisecond), WithMaxFrameBytes(limit))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// Table-carrying envelopes big enough that only a few fit per frame.
	tbl := table.New(p163, n.Ref().ID)
	tbl.Set(0, 1, table.Neighbor{ID: id.MustParse(p163, "111"), Addr: "127.0.0.1:19001", State: table.StateS})
	tbl.Set(1, 2, table.Neighbor{ID: id.MustParse(p163, "221"), Addr: "127.0.0.1:19002", State: table.StateT})
	tbl.Set(2, 3, table.Neighbor{ID: id.MustParse(p163, "3bc"), Addr: "127.0.0.1:19003", State: table.StateS})
	snap := tbl.Snapshot()
	to := table.Ref{ID: id.MustParse(p163, "f08"), Addr: sink.ln.Addr().String()}
	const burst = 30
	envs := make([]msg.Envelope, burst)
	for i := range envs {
		envs[i] = msg.Envelope{From: n.Ref(), To: to, Msg: msg.SyncPush{Table: snap}}
	}
	if err := n.sendAll(envs); err != nil {
		t.Fatal(err)
	}
	awaitInt64(t, "bounded-frame envelopes", sink.envelopes.Load, burst)
	if got := sink.maxSeen.Load(); got > limit {
		t.Errorf("frame payload of %d bytes exceeds MaxFrameBytes %d", got, limit)
	}
	if sink.coalesced.Load() == 0 {
		t.Error("no frame carried more than one envelope (bound test proved nothing)")
	}
}

func joinPair(t *testing.T, seedOpts, joinerOpts []Option) {
	t.Helper()
	seed, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "abc"), "127.0.0.1:0", seedOpts...)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	joiner, err := StartJoiner(p163, core.Options{}, id.MustParse(p163, "123"), "127.0.0.1:0", joinerOpts...)
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	if err := joiner.Join(seed.Ref()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := joiner.AwaitStatus(ctx, core.StatusInSystem); err != nil {
		t.Fatal(err)
	}
	k := seed.Ref().ID.CommonSuffixLen(joiner.Ref().ID)
	if got := joiner.Snapshot().Get(k, seed.Ref().ID.Digit(k)); got.ID != seed.Ref().ID {
		t.Errorf("joiner's table lacks seed: %+v", got)
	}
	waitForEntry(t, seed, k, joiner.Ref().ID.Digit(k), joiner.Ref().ID)
}

// A gob-codec node and a binary-codec node must interoperate: the frame
// header's codec bit lets each receiver auto-detect what the other
// sends.
func TestMixedCodecJoin(t *testing.T) {
	joinPair(t, []Option{WithCodec(CodecGob)}, nil)
}

// The gob fallback must still work end to end on both sides.
func TestGobCodecJoin(t *testing.T) {
	joinPair(t, []Option{WithCodec(CodecGob)}, []Option{WithCodec(CodecGob)})
}
