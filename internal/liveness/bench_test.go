package liveness

// Detection benchmarks for the gray-failure arc: they pin the virtual
// crash-to-declaration latency of the fixed and adaptive probers on a
// learned-fast link (the custom detect-ms metric, recorded into
// BENCH_liveness.json by `make bench-liveness`) and the per-tick CPU
// cost of the estimator-backed probe path.

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/rtt"
	"hypercube/internal/table"
)

func benchRef(s string) table.Ref {
	return table.Ref{ID: id.MustParse(p44, s), Addr: "sim://" + s}
}

// benchDetection runs one crash scenario to declaration under a virtual
// clock and returns the detection latency: the peer answers at 50ms
// until it dies at 2s, and the prober (optionally estimator-backed)
// must declare it.
func benchDetection(b *testing.B, adaptive bool) time.Duration {
	cfg := Config{
		ProbeInterval:  100 * time.Millisecond,
		ProbeTimeout:   250 * time.Millisecond,
		SuspectAfter:   3,
		IndirectProbes: 1,
		ConfirmRounds:  2,
	}
	const diesAt = 2 * time.Second
	p := NewProber(cfg, benchRef("0000"))
	if adaptive {
		p.SetRTT(rtt.New(rtt.Config{MinRTO: 100 * time.Millisecond, MaxRTO: 5 * time.Second}))
	}
	dead := benchRef("1111")
	p.SetTargets([]table.Ref{dead})
	declared, at := runDelayed(p, 15*time.Second, func(now time.Duration, env msg.Envelope) ([]msg.Envelope, time.Duration) {
		if pm, ok := env.Msg.(msg.Ping); ok && env.To.ID == dead.ID && now < diesAt {
			return RespondPing(dead, env.From, pm), 50 * time.Millisecond
		}
		return nil, -1
	})
	if len(declared) != 1 {
		b.Fatalf("dead peer not declared (adaptive=%v): %v", adaptive, declared)
	}
	return at[0] - diesAt
}

// BenchmarkDetectionFixed / BenchmarkDetectionAdaptive report the
// crash-to-declaration latency (virtual time, detect-ms) alongside the
// real CPU cost of running the detector loop to that point.
func BenchmarkDetectionFixed(b *testing.B) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		total += benchDetection(b, false)
	}
	b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "detect-ms")
}

func BenchmarkDetectionAdaptive(b *testing.B) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		total += benchDetection(b, true)
	}
	b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "detect-ms")
}

// BenchmarkProbeTick measures the per-tick cost of the probe scheduler
// over a large responsive target set, with and without the estimator on
// the hot path (budget computation, RTT sampling on every pong).
func BenchmarkProbeTick(b *testing.B) {
	for _, adaptive := range []bool{false, true} {
		name := "fixed"
		if adaptive {
			name = "adaptive"
		}
		b.Run(fmt.Sprintf("%s/targets=64", name), func(b *testing.B) {
			cfg := Config{
				ProbeInterval:  time.Millisecond,
				ProbeTimeout:   10 * time.Millisecond,
				SuspectAfter:   3,
				IndirectProbes: 1,
				ConfirmRounds:  2,
			}
			p := NewProber(cfg, benchRef("0000"))
			now := time.Duration(0)
			if adaptive {
				p.SetRTT(rtt.New(rtt.Config{MinRTO: 5 * time.Millisecond, MaxRTO: time.Second}))
				p.SetClock(func() time.Duration { return now })
			}
			// p44 is base 4 × 4 digits: encode 1..64 in base 4, zero-padded,
			// skipping self at "0000".
			targets := make([]table.Ref, 64)
			for i := range targets {
				s := strconv.FormatInt(int64(i+1), 4)
				targets[i] = benchRef(fmt.Sprintf("%04s", s))
			}
			p.SetTargets(targets)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += time.Millisecond
				out, _, _ := p.Tick(now)
				// Answer every ping immediately: the pong path (estimator
				// sampling under -adaptive) is part of the measured cost.
				for _, env := range out {
					if pm, ok := env.Msg.(msg.Ping); ok {
						for _, r := range RespondPing(table.Ref{ID: env.To.ID, Addr: env.To.Addr}, env.From, pm) {
							p.HandleMessage(r)
						}
					}
				}
			}
		})
	}
}
