// Clock-driven machine behavior for the failure-detection extension:
// request/reply timeouts with exponential resend and join restart, crash
// declarations with FailedNoti gossip, and self-driven repair jobs that
// replace the external RecoverFailure round loop.
//
// The paper's protocol is purely message-driven; every request
// eventually gets a reply because nodes never fail. Once crashes are
// admitted, a copying or waiting node whose counterpart died would wedge
// forever. Machine.Tick(now) is the clock hook closing that gap: the
// runtimes (virtual clock in overlay, a timer goroutine in tcptransport)
// call it periodically, and the machine resends overdue requests,
// restarts a stuck join through a different gateway, reissues blocked
// repair queries, and re-announces itself after losing its bridge node.
package core

import (
	"fmt"
	"sort"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/obs"
	"hypercube/internal/table"
	"hypercube/internal/trace"
)

// entryName renders a table coordinate for event details.
func entryName(level, digit int) string { return fmt.Sprintf("(%d,%d)", level, digit) }

// Timeouts configures the machine's clock-driven retries. The zero value
// disables request/reply timeouts (Enabled reports false); repair-job
// pacing falls back to defaults either way.
type Timeouts struct {
	// RetryAfter is the first resend timeout for an unanswered
	// request/reply exchange; it doubles per resend. 0 disables
	// exchange timeouts entirely.
	RetryAfter time.Duration
	// MaxAttempts is the total transmissions per exchange before the
	// machine gives up on the peer (restarting the join, or abandoning
	// the wait). Default 4.
	MaxAttempts int
	// RepairAfter paces repair-query reissues; a Find unanswered or
	// blocked for this long is retried through the next helper.
	// Default: RetryAfter, or 1s when exchange timeouts are disabled.
	RepairAfter time.Duration
	// MaxRepairAttempts caps autonomous repair queries per entry before
	// the suffix is concluded dead. Default 8. Forced kicks (the batch
	// RecoverFailures path) apply their own convergence rule and ignore
	// this cap.
	MaxRepairAttempts int
}

// Enabled reports whether request/reply exchange timeouts are active.
func (t Timeouts) Enabled() bool { return t.RetryAfter > 0 }

func (t Timeouts) maxAttempts() int {
	if t.MaxAttempts <= 0 {
		return 4
	}
	return t.MaxAttempts
}

func (t Timeouts) repairAfter() time.Duration {
	if t.RepairAfter > 0 {
		return t.RepairAfter
	}
	if t.RetryAfter > 0 {
		return t.RetryAfter
	}
	return time.Second
}

func (t Timeouts) maxRepairAttempts() int {
	if t.MaxRepairAttempts <= 0 {
		return 8
	}
	return t.MaxRepairAttempts
}

// xchgKind identifies which request/reply pair an exchange tracks.
type xchgKind uint8

const (
	xCopy  xchgKind = iota + 1 // CpRst -> CpRly (copying phase only)
	xWait                      // JoinWait -> JoinWaitRly
	xNoti                      // JoinNoti -> JoinNotiRly
	xSpe                       // SpeNoti -> SpeNotiRly (keyed by Y)
	xLeave                     // Leave -> LeaveRly
)

type xchgKey struct {
	kind xchgKind
	peer id.ID
}

// exchange is one outstanding request awaiting its reply. base is the
// backoff seed: the fixed Timeouts.RetryAfter, or the peer's measured
// RTO when an estimator is attached (it doubles per resend either
// way). sentAt stamps the initial transmission so an un-resent reply
// yields an RTT sample (Karn's rule: a resent exchange is ambiguous —
// the reply may answer any transmission — so it is never sampled).
type exchange struct {
	env      msg.Envelope
	attempts int
	base     time.Duration
	due      time.Duration
	sentAt   time.Duration
}

// repairJob tracks one crash-emptied entry the machine repairs on its
// own: which node to route around, how many queries were spent, and when
// the next one is due.
type repairJob struct {
	avoid    id.ID
	attempts int
	due      time.Duration
	active   bool // a Find is outstanding
}

// trackExchange registers a just-sent request for timeout-driven resend.
// Only the request/reply pairs whose loss wedges the protocol are
// tracked; replies and one-way notifications are not. The envelope is
// stored whole, so a resend reuses the original hop span.
func (m *Machine) trackExchange(env msg.Envelope) {
	if !m.opts.Timeouts.Enabled() {
		return
	}
	to, pm := env.To, env.Msg
	var key xchgKey
	switch x := pm.(type) {
	case msg.CpRst:
		// Only the copying-phase cursor is tracked; repair-time table
		// chases (repairViaDonor) resolve through pendingFinds instead.
		if m.status != StatusCopying || to.ID != m.copyFrom.ID {
			return
		}
		key = xchgKey{xCopy, to.ID}
	case msg.JoinWait:
		key = xchgKey{xWait, to.ID}
	case msg.JoinNoti:
		key = xchgKey{xNoti, to.ID}
	case msg.SpeNoti:
		if x.X.ID != m.self.ID {
			return // forwarding someone else's notification
		}
		key = xchgKey{xSpe, x.Y.ID}
	case msg.Leave:
		if m.status != StatusLeaving {
			return
		}
		if _, waiting := m.leaveAcks[to.ID]; !waiting {
			return
		}
		key = xchgKey{xLeave, to.ID}
	default:
		return
	}
	if m.exchanges == nil {
		m.exchanges = make(map[xchgKey]*exchange)
	}
	base := m.opts.Timeouts.RetryAfter
	if m.est != nil {
		if rto, ok := m.est.RTO(to.ID); ok {
			base = rto
		}
	}
	now := m.clockNow()
	m.exchanges[key] = &exchange{
		env:      env,
		attempts: 1,
		base:     base,
		due:      m.now + base,
		sentAt:   now,
	}
}

// clearExchange settles the exchange answered by an incoming reply.
func (m *Machine) clearExchange(from table.Ref, pm msg.Message) {
	if len(m.exchanges) == 0 {
		return
	}
	var key xchgKey
	switch x := pm.(type) {
	case msg.CpRly:
		key = xchgKey{xCopy, from.ID}
	case msg.JoinWaitRly:
		key = xchgKey{xWait, from.ID}
	case msg.JoinNotiRly:
		key = xchgKey{xNoti, from.ID}
	case msg.SpeNotiRly:
		key = xchgKey{xSpe, x.Y.ID}
	case msg.LeaveRly:
		key = xchgKey{xLeave, from.ID}
	default:
		return
	}
	ex, ok := m.exchanges[key]
	if !ok {
		return
	}
	delete(m.exchanges, key)
	// Karn's rule: only a never-resent exchange yields an unambiguous
	// round-trip sample. The envelope's To (not the key's peer — xSpe
	// keys by subject Y, not transport target) is who we measured.
	if m.est != nil && ex.attempts == 1 {
		m.est.Observe(ex.env.To.ID, m.clockNow()-ex.sentAt)
	}
}

// Tick advances the machine's clock: overdue requests are resent with
// exponential backoff (and abandoned past the attempt cap), due repair
// queries are issued or reissued, and a node orphaned by its bridge
// node's crash re-announces itself. Returns the messages to transmit.
// Runtimes call it periodically; a machine without Timeouts and without
// declared failures does nothing.
func (m *Machine) Tick(now time.Duration) []msg.Envelope {
	m.out = m.out[:0]
	m.now = now
	if m.opts.Timeouts.Enabled() {
		m.tickExchanges(now)
	}
	m.kickRepairs(now, false)
	if m.needsRejoin && m.status == StatusInSystem {
		if g := m.pickGateway(id.ID{}); !g.IsZero() {
			m.needsRejoin = false
			m.restarts++
			m.startRejoin(g)
		}
	}
	return m.take()
}

// tickExchanges resends or abandons overdue request/reply exchanges.
func (m *Machine) tickExchanges(now time.Duration) {
	if len(m.exchanges) == 0 {
		return
	}
	keys := make([]xchgKey, 0, len(m.exchanges))
	for k := range m.exchanges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].peer.Less(keys[j].peer)
	})
	for _, k := range keys {
		ex, ok := m.exchanges[k]
		if !ok || ex.due > now {
			continue // resolved by an earlier give-up this tick, or not due
		}
		if ex.attempts >= m.opts.Timeouts.maxAttempts() {
			m.trace("%v gives up on %v (%v after %d attempts)", m.self.ID, k.peer, ex.env.Msg.Type(), ex.attempts)
			if m.sink != nil {
				m.sink.Emit(obs.Event{Node: m.selfName, Kind: obs.KindGiveUp, Peer: k.peer.String(), Msg: ex.env.Msg.Type().String(), N: ex.attempts})
			}
			m.giveUp(k)
			continue
		}
		ex.attempts++
		ex.due = now + ex.base<<(ex.attempts-1)
		// Resend directly: routing through send() would re-register the
		// exchange and reset the attempt count.
		m.counters.CountSent(ex.env.Msg)
		m.out = append(m.out, ex.env)
		m.trace("%v resends %v to %v (attempt %d)", m.self.ID, ex.env.Msg.Type(), k.peer, ex.attempts)
		if m.sink != nil {
			m.sink.Emit(obs.Event{Node: m.selfName, Kind: obs.KindResend, Peer: k.peer.String(), Msg: ex.env.Msg.Type().String(), N: ex.attempts}.Stamped(ex.env.Trace, trace.SpanID{}))
		}
	}
}

// giveUp abandons an exchange whose peer stopped replying: the join
// restarts through a different gateway, or the stalled wait is dropped
// so the state machine can move on.
func (m *Machine) giveUp(k xchgKey) {
	delete(m.exchanges, k)
	switch k.kind {
	case xCopy:
		if m.status == StatusCopying {
			m.restartJoin(k.peer)
		}
	case xWait:
		if m.status == StatusWaiting {
			m.restartJoin(k.peer)
		}
	case xNoti:
		delete(m.qr, k.peer)
		m.maybeSwitch()
	case xSpe:
		delete(m.qsr, k.peer)
		m.maybeSwitch()
	case xLeave:
		delete(m.leaveAcks, k.peer)
		if m.status == StatusLeaving && len(m.leaveAcks) == 0 {
			m.setStatus(StatusLeft)
			m.trace("%v status -> left (unacknowledged departure)", m.self.ID)
		}
	}
}

// AddGateways registers fallback bootstrap nodes for join restarts. The
// original bootstrap is registered automatically by StartJoin.
func (m *Machine) AddGateways(refs ...table.Ref) {
	for _, r := range refs {
		if r.IsZero() || r.ID == m.self.ID {
			continue
		}
		if m.gateways == nil {
			m.gateways = make(map[id.ID]table.Ref)
		}
		m.gateways[r.ID] = r
	}
}

// restartJoin re-runs the join from the top through a different gateway
// after the current attach or wait target stopped replying. Harvested
// table entries survive (re-copying only fills empty entries), so a
// restart converges faster than the first attempt.
func (m *Machine) restartJoin(avoid id.ID) {
	m.restarts++
	g := m.pickGateway(avoid)
	if g.IsZero() {
		// Nobody else known yet: retry the same target rather than wedge
		// (it may be suffering one-way loss, not a crash).
		if r, ok := m.gateways[avoid]; ok {
			g = r
		} else {
			return
		}
	}
	m.trace("%v restarts join via %v (restart %d)", m.self.ID, g.ID, m.restarts)
	m.startRejoin(g)
}

// startRejoin resets the join bookkeeping and begins copying from g.
// Unlike the public StartRejoin it preserves m.out, so it can run inside
// Tick and give-up handling. Each restart is its own traced operation
// root — a restarted join is a new wave, not a continuation of the
// abandoned one.
func (m *Machine) startRejoin(g table.Ref) {
	m.exchanges = nil
	prev := m.cur
	if m.tracer != nil {
		m.cur = m.tracer.Root()
	}
	m.joinCtx = m.cur
	m.setStatus(StatusCopying)
	if m.sink != nil {
		m.sink.Emit(obs.Event{Node: m.selfName, Kind: obs.KindJoinStart, Peer: g.ID.String(), N: m.restarts}.Stamped(m.cur, trace.SpanID{}))
	}
	m.qn = make(map[id.ID]struct{})
	m.qr = make(map[id.ID]struct{})
	m.qsn = make(map[id.ID]struct{})
	m.qsr = make(map[id.ID]struct{})
	m.copyLevel = 0
	m.copyFrom = g
	m.send(g, msg.CpRst{Level: 0})
	m.cur = prev
}

// pickGateway chooses a restart gateway from the registered gateways and
// the table's live entries, rotated by the restart count so consecutive
// restarts try different nodes. avoid (the unresponsive peer) is
// excluded unless it is the only candidate. Crashed, departed, and
// guard-quarantined nodes never qualify, and neither does the joiner
// itself. When every static candidate is gone the sampling layer (if
// wired) supplies fresh peers — a dead or hostile bootstrap set can no
// longer starve the restart path.
func (m *Machine) pickGateway(avoid id.ID) table.Ref {
	cands := make(map[id.ID]table.Ref, len(m.gateways))
	for x, r := range m.gateways {
		cands[x] = r
	}
	m.tbl.ForEach(func(_, _ int, n table.Neighbor) {
		if n.ID != m.self.ID {
			cands[n.ID] = n.Ref()
		}
	})
	m.pruneGatewayCands(cands)
	if len(cands) == 0 && m.sampled != nil {
		for _, r := range m.sampled(maxSampledGateways) {
			cands[r.ID] = r
		}
		m.pruneGatewayCands(cands)
	}
	if len(cands) > 1 {
		delete(cands, avoid)
	}
	list := sortedRefs(cands)
	if len(list) == 0 {
		return table.Ref{}
	}
	return list[m.restarts%len(list)]
}

// maxSampledGateways bounds how many sampled peers a single restart
// considers.
const maxSampledGateways = 8

// pruneGatewayCands removes every candidate that must not serve as a
// gateway: the node itself, crashed and departed peers, and peers the
// guard scorer currently quarantines.
func (m *Machine) pruneGatewayCands(cands map[id.ID]table.Ref) {
	delete(cands, m.self.ID)
	for x := range m.failed {
		delete(cands, x)
	}
	for x := range m.departed {
		delete(cands, x)
	}
	if m.scorer != nil {
		now := m.clockNow()
		for x := range cands {
			if m.scorer.Quarantined(x, now) {
				delete(cands, x)
			}
		}
	}
}

// KnowsFailed reports whether the machine has recorded x as crashed.
func (m *Machine) KnowsFailed(x id.ID) bool {
	_, ok := m.failed[x]
	return ok
}

// knownBad reports whether x must never be (re-)installed in the table:
// it crashed or announced departure.
func (m *Machine) knownBad(x id.ID) bool {
	if _, f := m.failed[x]; f {
		return true
	}
	if _, d := m.departed[x]; d {
		return true
	}
	// A quarantined peer is bad for the quarantine's duration: it is not
	// installed from harvested tables, not accepted from Find replies,
	// and not gossiped about in FailedNoti fan-outs.
	return m.scorer != nil && m.scorer.Quarantined(x, m.clockNow())
}

// DeclareFailed records that the failure detector declared gone crashed,
// and returns the resulting traffic: FailedNoti gossip to co-holders,
// reverse-neighbor notices from local repairs, and (from later Ticks)
// repair queries for entries local repair could not fill.
func (m *Machine) DeclareFailed(gone table.Ref) []msg.Envelope {
	m.out = m.out[:0]
	m.noteFailed(gone)
	return m.take()
}

// onFailedNoti processes gossip about a crash declared elsewhere.
func (m *Machine) onFailedNoti(pm msg.FailedNoti) {
	m.noteFailed(pm.Failed)
}

// DropUnreachable removes every table entry holding gone — a neighbor
// the failure detector was never once able to reach — and repairs the
// holes like a crash would. Unlike DeclareFailed it records no tombstone
// and gossips no FailedNoti: with zero evidence the node was ever alive
// from here, the silence may equally be a broken path or our own side of
// a partition, so the drop stays local and the node is re-adopted
// normally (e.g. via an anti-entropy round) once it proves reachable.
func (m *Machine) DropUnreachable(gone table.Ref) []msg.Envelope {
	if gone.IsZero() || gone.ID == m.self.ID || m.status == StatusLeft {
		return nil
	}
	m.out = m.out[:0]
	m.trace("%v drops unreachable %v", m.self.ID, gone.ID)
	m.DropFailed(gone.ID)
	return m.take()
}

// noteFailed is the shared crash-declaration path: dedupe, gossip to
// co-holders, orphan check, local table repair, and repair-job seeding.
// Appends to m.out; callers manage the reset.
func (m *Machine) noteFailed(gone table.Ref) {
	if gone.IsZero() || gone.ID == m.self.ID {
		return
	}
	if m.failed == nil {
		m.failed = make(map[id.ID]struct{})
	}
	if _, dup := m.failed[gone.ID]; dup {
		return
	}
	m.failed[gone.ID] = struct{}{}
	if m.status == StatusLeft {
		return
	}
	m.trace("%v declares %v failed", m.self.ID, gone.ID)
	if m.sink != nil {
		m.sink.Emit(obs.Event{Node: m.selfName, Kind: obs.KindFailureNoted, Peer: gone.ID.String()})
	}

	// Gossip once per failure. Every node that stores the dead node is
	// either in our table, stores us too (reverse set), or is reached
	// transitively: each co-holder re-gossips on first hearing, and every
	// holder's own detector probes its entries anyway, so declarations
	// reach all holders even if gossip misses some.
	targets := make(map[id.ID]table.Ref, len(m.reverse))
	for x, r := range m.reverse {
		targets[x] = r
	}
	m.tbl.ForEach(func(_, _ int, n table.Neighbor) {
		if n.ID != m.self.ID {
			targets[n.ID] = n.Ref()
		}
	})
	delete(targets, m.self.ID)
	for x := range targets {
		if m.knownBad(x) {
			delete(targets, x)
		}
	}
	for _, ref := range sortedRefs(targets) {
		m.send(ref, msg.FailedNoti{Failed: gone})
	}

	// Orphan check before the entries are dropped: if our deepest-known
	// neighbor crashed it may have been the only node storing us, making
	// us unfindable; re-announce via a rejoin at the next Tick.
	held := false
	m.tbl.ForEach(func(_, _ int, n table.Neighbor) {
		if n.ID == gone.ID {
			held = true
		}
	})
	if held && m.status == StatusInSystem && m.DeepestNeighborIs(gone.ID) {
		m.needsRejoin = true
	}

	// Drop the dead node everywhere; DropFailed repairs locally and seeds
	// repair jobs for the rest (driven by kickRepairs).
	m.DropFailed(gone.ID)

	// Any exchange waiting on the dead peer is settled immediately.
	if len(m.exchanges) > 0 {
		for _, kind := range []xchgKind{xCopy, xWait, xNoti, xSpe, xLeave} {
			k := xchgKey{kind, gone.ID}
			if _, ok := m.exchanges[k]; ok {
				m.giveUp(k)
			}
		}
	}
}

// addRepairJob registers a crash-emptied entry for autonomous repair.
func (m *Machine) addRepairJob(e [2]int, avoid id.ID) {
	if m.repairs == nil {
		m.repairs = make(map[[2]int]*repairJob)
	}
	if _, dup := m.repairs[e]; dup {
		return
	}
	m.repairs[e] = &repairJob{avoid: avoid, due: m.now}
	if m.sink != nil {
		m.sink.Emit(obs.Event{Node: m.selfName, Kind: obs.KindRepairStart, Peer: avoid.String(), Detail: entryName(e[0], e[1])})
	}
}

// RepairsPending returns the entries with unresolved repair jobs, sorted.
func (m *Machine) RepairsPending() [][2]int {
	out := make([][2]int, 0, len(m.repairs))
	for e := range m.repairs {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// KickRepairs drives the repair jobs once and returns the queries to
// transmit. force reissues even jobs whose query is not yet overdue —
// the batch RecoverFailures path uses it between quiescent rounds, where
// "no reply yet" can only mean the query was blocked and consumed.
// Forced mode also skips the per-entry attempt cap: the caller applies
// its own convergence rule (see overlay.RecoverFailures).
func (m *Machine) KickRepairs(now time.Duration, force bool) []msg.Envelope {
	m.out = m.out[:0]
	m.now = now
	m.kickRepairs(now, force)
	return m.take()
}

// SettleRepairs resolves repair jobs whose outcome is already known —
// entry refilled (by a query reply, rejoin notification, or harvested
// table), or proven empty — without issuing new queries. Returns how
// many jobs resolved filled and how many empty. Blocked jobs are marked
// for reissue by the next kick. The batch recovery rounds use the counts
// for their convergence rule.
func (m *Machine) SettleRepairs() (filled, emptied int) {
	for _, e := range m.RepairsPending() {
		job := m.repairs[e]
		if !m.tbl.Get(e[0], e[1]).IsZero() {
			m.AbandonRepair(e[0], e[1])
			m.emitRepairDone(e, "filled")
			filled++
			continue
		}
		if !job.active {
			continue
		}
		switch m.ResolveRepair(e[0], e[1]) {
		case RepairFilled:
			delete(m.repairs, e)
			m.emitRepairDone(e, "filled")
			filled++
		case RepairEmpty:
			delete(m.repairs, e)
			m.emitRepairDone(e, "empty")
			emptied++
		case RepairBlocked:
			job.active = false // reissue on the next kick
		case RepairPending:
			// Reply still in flight (or lost); the next kick decides.
		}
	}
	return filled, emptied
}

func (m *Machine) emitRepairDone(e [2]int, outcome string) {
	if m.sink != nil {
		m.sink.Emit(obs.Event{Node: m.selfName, Kind: obs.KindRepairDone, Detail: entryName(e[0], e[1]) + " " + outcome})
	}
}

// kickRepairs is the shared repair-trigger loop (autonomous Ticks and
// the batch recovery rounds). Appends to m.out.
func (m *Machine) kickRepairs(now time.Duration, force bool) {
	if len(m.repairs) == 0 {
		return
	}
	if m.status == StatusLeaving || m.status == StatusLeft {
		for _, e := range m.RepairsPending() {
			m.AbandonRepair(e[0], e[1])
			m.emitRepairDone(e, "abandoned")
		}
		return
	}
	m.SettleRepairs()
	for _, e := range m.RepairsPending() {
		job := m.repairs[e]
		if job.active {
			if !force && now < job.due {
				continue // still waiting for the reply
			}
			job.active = false // reply lost or blocked in flight; reissue
		}
		if !force && job.attempts >= m.opts.Timeouts.maxRepairAttempts() {
			// Every helper rotation came back blocked or lost: conclude
			// the suffix died with the crashed node.
			m.AbandonRepair(e[0], e[1])
			m.emitRepairDone(e, "abandoned")
			continue
		}
		helper := m.pickRepairHelper(job.avoid, job.attempts)
		if helper.IsZero() {
			continue // isolated for now; retry after tables change
		}
		job.attempts++
		job.active = true
		job.due = now + m.opts.Timeouts.repairAfter()<<minInt(job.attempts-1, 4)
		m.repairEntry(e[0], e[1], helper, job.avoid)
	}
}

// pickRepairHelper rotates deterministically through the live table
// entries to start a Find query from.
func (m *Machine) pickRepairHelper(avoid id.ID, attempt int) table.Ref {
	cands := make(map[id.ID]table.Ref)
	m.tbl.ForEach(func(_, _ int, n table.Neighbor) {
		if n.ID == m.self.ID || n.ID == avoid || m.knownBad(n.ID) {
			return
		}
		cands[n.ID] = n.Ref()
	})
	list := sortedRefs(cands)
	if len(list) == 0 {
		return table.Ref{}
	}
	return list[attempt%len(list)]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// onPing answers a liveness probe (or relays an indirect one). Runtimes
// with a detector intercept probes before the machine; this fallback
// keeps detector-less nodes good probe citizens.
func (m *Machine) onPing(from table.Ref, pm msg.Ping) {
	if !pm.Target.IsZero() && pm.Target.ID != m.self.ID {
		m.send(pm.Target, pm)
		return
	}
	origin := pm.Origin
	if origin.IsZero() {
		origin = from
	}
	if origin.ID == m.self.ID {
		return
	}
	m.send(origin, msg.Pong{Seq: pm.Seq})
}
