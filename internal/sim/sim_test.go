package sim

import (
	"math/rand"
	"testing"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Errorf("Now = %v", e.Now())
	}
	if e.Pending() != 0 || e.Processed() != 0 {
		t.Error("fresh engine not empty")
	}
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	if n := e.Run(0); n != 3 {
		t.Fatalf("Run = %d events", n)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("order = %v", got)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("clock = %v, want 30ms", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	e.Run(0)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of schedule order: %v", got)
		}
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 50 {
			e.Schedule(time.Millisecond, recur)
		}
	}
	e.Schedule(0, recur)
	e.Run(0)
	if depth != 50 {
		t.Errorf("depth = %d", depth)
	}
	if e.Now() != 49*time.Millisecond {
		t.Errorf("clock = %v", e.Now())
	}
	if e.Processed() != 50 {
		t.Errorf("Processed = %d", e.Processed())
	}
}

func TestZeroDelaySameTime(t *testing.T) {
	e := NewEngine()
	e.Schedule(10*time.Millisecond, func() {
		e.Schedule(0, func() {
			if e.Now() != 10*time.Millisecond {
				t.Errorf("zero-delay event at %v", e.Now())
			}
		})
	})
	e.Run(0)
}

func TestScheduleAt(t *testing.T) {
	e := NewEngine()
	fired := false
	e.ScheduleAt(42*time.Millisecond, func() { fired = true })
	e.Run(0)
	if !fired || e.Now() != 42*time.Millisecond {
		t.Errorf("fired=%v now=%v", fired, e.Now())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleAt in the past did not panic")
			}
		}()
		e.ScheduleAt(time.Millisecond, func() {})
	}()
}

func TestSchedulePanics(t *testing.T) {
	e := NewEngine()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative delay did not panic")
			}
		}()
		e.Schedule(-time.Second, func() {})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil fn did not panic")
			}
		}()
		e.Schedule(time.Second, nil)
	}()
}

func TestRunMaxEventsPanics(t *testing.T) {
	e := NewEngine()
	var loop func()
	loop = func() { e.Schedule(time.Millisecond, loop) }
	e.Schedule(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("runaway Run did not panic")
		}
	}()
	e.Run(100)
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{5, 15, 25, 35} {
		d := d * time.Millisecond
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	n := e.RunUntil(20 * time.Millisecond)
	if n != 2 || len(fired) != 2 {
		t.Fatalf("RunUntil processed %d, fired %v", n, fired)
	}
	if e.Now() != 20*time.Millisecond {
		t.Errorf("clock = %v, want deadline", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	e.Run(0)
	if len(fired) != 4 {
		t.Errorf("remaining events lost: %v", fired)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []int {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		var trace []int
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, depth)
			if depth < 6 {
				for i := 0; i < 2; i++ {
					e.Schedule(time.Duration(rng.Intn(100))*time.Millisecond, func() { spawn(depth + 1) })
				}
			}
		}
		e.Schedule(0, func() { spawn(0) })
		e.Run(0)
		return trace
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces (suspicious)")
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j%97)*time.Millisecond, func() {})
		}
		e.Run(0)
	}
}
