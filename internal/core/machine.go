// Package core implements the join protocol of Liu & Lam (ICDCS 2003) for
// the hypercube routing scheme: the per-node protocol state machine of
// Figures 5-14, and the suffix-matching routing of §2.2.
//
// A Machine holds one node's protocol state. It is a pure, non-blocking
// state machine: Deliver consumes one message and returns the messages to
// transmit. The discrete-event simulator (internal/sim + internal/overlay),
// the goroutine runtime (internal/transport), and the TCP transport
// (internal/transport/tcptransport) all drive the same Machine, so the
// protocol logic exists exactly once.
//
// Per the paper's design, only joining nodes keep extra join state (the
// sets Qr, Qn, Qj, Qsn, Qsr and noti_level); established nodes keep only
// their neighbor table and reverse-neighbor set.
package core

import (
	"fmt"
	"sort"
	"time"

	"hypercube/internal/guard"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/obs"
	"hypercube/internal/rtt"
	"hypercube/internal/table"
	"hypercube/internal/trace"
)

// Status is a node's protocol status (§4).
type Status uint8

const (
	// StatusCopying: the node is building its table level by level by
	// copying from nodes already in the network (Figure 5).
	StatusCopying Status = iota + 1
	// StatusWaiting: the node has sent a JoinWaitMsg and waits to be
	// stored in some node's table (Figures 6-7).
	StatusWaiting
	// StatusNotifying: the node is notifying nodes that share at least
	// noti_level rightmost digits with it (Figures 8-12).
	StatusNotifying
	// StatusInSystem: the node is an S-node, fully part of the network.
	StatusInSystem
)

// String renders the paper's name for the status.
func (s Status) String() string {
	switch s {
	case StatusCopying:
		return "copying"
	case StatusWaiting:
		return "waiting"
	case StatusNotifying:
		return "notifying"
	case StatusInSystem:
		return "in_system"
	case StatusLeaving:
		return "leaving"
	case StatusLeft:
		return "left"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Options select the optional §6.2 message-size reductions and the
// failure-detection extensions.
type Options struct {
	// ReduceLevels ships only levels [noti_level, csuf] of the joiner's
	// table inside JoinNotiMsg instead of the whole table.
	ReduceLevels bool
	// BitVector attaches the joiner's fill vector to JoinNotiMsg so the
	// receiver's reply omits entries the joiner already has.
	BitVector bool
	// Timeouts enables clock-driven resends and join restarts (see
	// Machine.Tick); the zero value keeps the paper's purely
	// message-driven behavior.
	Timeouts Timeouts
	// Guard, when non-nil, enables the misbehavior scorer: peers whose
	// messages repeatedly fail validation are quarantined under the given
	// policy (traffic dropped at ingress, never installed or gossiped
	// about, released after a cooldown). Semantic validation itself is
	// always on — a nil Guard only disables scoring.
	Guard *guard.Policy
	// Budgets bounds the join-protocol bookkeeping a node accepts on
	// behalf of other nodes; zero fields select the documented defaults.
	Budgets Budgets
}

// Budgets caps the state an established node holds for peers, so a flood
// of (possibly spoofed) joiners costs bounded memory. Requests beyond a
// budget are shed — the protocol's timeout resends are the retry path.
type Budgets struct {
	// MaxDeferredJoins caps Qj, the JoinWait requests a T-node parks
	// until it switches to in_system. Default 1024.
	MaxDeferredJoins int
	// MaxSpeNoti caps Qsn/Qsr, the special-notification exchanges a
	// joiner tracks (Figure 10). Default 4096.
	MaxSpeNoti int
	// MaxReverse caps the reverse-neighbor set. Default 4096.
	MaxReverse int
}

func (b Budgets) withDefaults() Budgets {
	if b.MaxDeferredJoins <= 0 {
		b.MaxDeferredJoins = 1024
	}
	if b.MaxSpeNoti <= 0 {
		b.MaxSpeNoti = 4096
	}
	if b.MaxReverse <= 0 {
		b.MaxReverse = 4096
	}
	return b
}

// GuardStats are a machine's hostile-input counters: envelopes rejected
// by semantic validation, unknown-type drops, ingress drops of
// quarantined senders, budget-shed requests, and the scorer's own
// lifecycle counters.
type GuardStats struct {
	Rejected       int
	UnknownDropped int
	IngressDropped int
	BusyDeferred   int
	Scorer         guard.Stats
}

// Add accumulates other into g.
func (g *GuardStats) Add(other GuardStats) {
	g.Rejected += other.Rejected
	g.UnknownDropped += other.UnknownDropped
	g.IngressDropped += other.IngressDropped
	g.BusyDeferred += other.BusyDeferred
	g.Scorer.Add(other.Scorer)
}

// Machine is the protocol state machine for a single node.
// It is not safe for concurrent use; drive it from one goroutine or under
// an external lock.
type Machine struct {
	params id.Params
	self   table.Ref
	status Status
	tbl    *table.Table
	opts   Options

	// reverse is the set of nodes known to store this node in their
	// tables (the paper's R sets, keyed by node instead of entry: the
	// only consumer, InSysNoti fan-out, needs the node set).
	reverse map[id.ID]table.Ref

	notiLevel int
	qr        map[id.ID]struct{} // nodes we await JoinWait/JoinNoti replies from
	qn        map[id.ID]struct{} // nodes we have notified
	qj        map[id.ID]table.Ref
	qsn       map[id.ID]struct{} // nodes announced via SpeNoti
	qsr       map[id.ID]struct{} // SpeNoti replies outstanding (keyed by Y)

	// copying-phase cursor
	copyLevel int
	copyFrom  table.Ref

	// §7-extension state (leave protocol and failure recovery).
	leaveAcks    map[id.ID]struct{}
	pendingFinds map[id.Suffix]findState
	// departed remembers nodes whose LeaveMsg we processed, so repairs
	// never reinstall them (concurrent leavers can appear in each
	// other's donor tables).
	departed map[id.ID]struct{}
	// inRepair marks entries emptied by a crash and not yet resolved;
	// while marked, the entry is not evidence of suffix absence and
	// Find queries crossing it answer Blocked instead of not-found.
	inRepair map[[2]int]bool

	// Clock-driven failure-detection state (timeout.go): the machine's
	// notion of now (advanced by Tick), outstanding request/reply
	// exchanges, fallback bootstrap nodes for join restarts, nodes
	// declared crashed, and autonomous repair jobs.
	now         time.Duration
	exchanges   map[xchgKey]*exchange
	gateways    map[id.ID]table.Ref
	restarts    int
	failed      map[id.ID]struct{}
	needsRejoin bool
	repairs     map[[2]int]*repairJob

	// Anti-entropy accounting (sync.go): entries installed from peers'
	// sync replies/pushes and entries purged by table audits.
	syncPulled  int
	auditPurged int

	// Hostile-input defenses: resolved budgets, the optional misbehavior
	// scorer, its counters, and an optional runtime clock for quarantine
	// timing (clockNow falls back to the Tick-advanced m.now).
	budgets Budgets
	scorer  *guard.Scorer
	gstats  GuardStats
	clock   func() time.Duration

	// sampled, when non-nil, supplies byzantine-resistant random peers
	// from the sampling layer; pickGateway falls back to it when every
	// registered gateway and table entry is exhausted or quarantined.
	sampled func(int) []table.Ref

	// est, when non-nil, seeds each exchange's first resend deadline from
	// the peer's measured RTO instead of the fixed Timeouts.RetryAfter,
	// and is fed the round-trip of every un-resent exchange (see
	// timeout.go). Shared with the liveness prober via SetRTT.
	est *rtt.Estimator

	counters msg.Counters
	out      []msg.Envelope

	// Observability (nil when tracing is off; see SetSink). selfName
	// caches the node's ID string so the emit path never re-renders it.
	sink     obs.Sink
	selfName string

	// Causal tracing (nil when off; see SetTracer). cur is the active
	// span context: a root allocated at an operation start (StartJoin,
	// startRejoin, StartSync) or the context of the envelope currently
	// being delivered. send allocates one child span per outgoing
	// envelope under it; a machine without a tracer drops inbound
	// contexts — it is an opaque hop. joinCtx pins the in-flight join's
	// root context from join_start until in_system: status transitions
	// are stamped with it, because under concurrent joins the message
	// that completes this node's join may belong to another operation's
	// trace — the lifecycle still belongs to ours.
	tracer  *trace.Tracer
	cur     trace.Context
	joinCtx trace.Context

	// Trace, when non-nil, receives a line per protocol step; for tests
	// and debugging only.
	Trace func(format string, args ...any)
}

// SetSink installs the protocol-event sink; nil or obs.Nop turns tracing
// off (the default). The machine never stamps Event.T — wrap the sink
// with obs.Clocked so the driving runtime's clock does.
func (m *Machine) SetSink(s obs.Sink) {
	if obs.IsNop(s) {
		m.sink = nil
		return
	}
	m.sink = s
	m.selfName = m.self.ID.String()
}

// SetTracer installs the span-context source for causal tracing; nil
// turns it off (the default). Without a tracer the machine neither
// roots spans nor forwards inbound contexts — traced traffic crosses it
// as an opaque hop.
func (m *Machine) SetTracer(t *trace.Tracer) { m.tracer = t }

// setStatus transitions the protocol status and emits the event every
// status change must produce; all assignments to m.status (after
// construction) go through here. While a traced join is in flight the
// event is stamped with the join's root context (so the in_system
// transition lands in the join's own span tree even when the message
// that triggered it belongs to a concurrent operation); otherwise with
// the active span context.
func (m *Machine) setStatus(s Status) {
	m.status = s
	if m.sink != nil {
		ctx := m.cur
		if m.joinCtx.Sampled() {
			ctx = m.joinCtx
		}
		m.sink.Emit(obs.Event{Node: m.selfName, Kind: obs.KindStatus, Detail: s.String()}.Stamped(ctx, trace.SpanID{}))
	}
	if s == StatusInSystem {
		m.joinCtx = trace.Context{}
	}
}

// NewJoiner returns a machine for a node about to join: status copying,
// empty table. Call StartJoin with the bootstrap node to begin.
func NewJoiner(p id.Params, self table.Ref, opts Options) *Machine {
	return newMachine(p, self, StatusCopying, opts)
}

// NewSeed returns the machine of the very first node of a network
// (§6.1): status in_system, table holding only its own diagonal entries
// with state S.
func NewSeed(p id.Params, self table.Ref, opts Options) *Machine {
	m := newMachine(p, self, StatusInSystem, opts)
	for i := 0; i < p.D; i++ {
		m.tbl.Set(i, self.ID.Digit(i), table.Neighbor{ID: self.ID, Addr: self.Addr, State: table.StateS})
	}
	return m
}

// NewEstablished wraps a pre-built consistent table (e.g. constructed with
// global knowledge for simulation initial conditions) in an in_system
// machine. The table is adopted, not copied; the caller must not retain it.
func NewEstablished(p id.Params, self table.Ref, tbl *table.Table, opts Options) *Machine {
	if tbl.Owner() != self.ID {
		panic(fmt.Sprintf("core: table owner %v is not %v", tbl.Owner(), self.ID))
	}
	m := newMachine(p, self, StatusInSystem, opts)
	m.tbl = tbl
	return m
}

func newMachine(p id.Params, self table.Ref, status Status, opts Options) *Machine {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("core: invalid params: %v", err))
	}
	m := &Machine{
		params:  p,
		self:    self,
		status:  status,
		tbl:     table.New(p, self.ID),
		opts:    opts,
		budgets: opts.Budgets.withDefaults(),
		reverse: make(map[id.ID]table.Ref),
		qr:      make(map[id.ID]struct{}),
		qn:      make(map[id.ID]struct{}),
		qj:      make(map[id.ID]table.Ref),
		qsn:     make(map[id.ID]struct{}),
		qsr:     make(map[id.ID]struct{}),
	}
	if opts.Guard != nil {
		m.scorer = guard.NewScorer(*opts.Guard)
	}
	return m
}

// SetClock supplies the driving runtime's monotonic clock (duration since
// the run started) for quarantine timing. Without one the machine falls
// back to its Tick-advanced notion of now, so quarantines only age while
// the runtime ticks.
func (m *Machine) SetClock(f func() time.Duration) { m.clock = f }

// SetPeerSampler installs a source of sampled peers (the gossip
// peer-sampling layer). Gateway selection falls back to it when the
// static gateway set and the table are exhausted or quarantined.
func (m *Machine) SetPeerSampler(f func(int) []table.Ref) { m.sampled = f }

// SetRTT attaches a per-peer RTT estimator: request/reply exchanges
// seed their first resend deadline from the peer's measured RTO
// (falling back to Timeouts.RetryAfter until samples exist) and feed
// their round-trips back. Pass the same estimator the liveness prober
// uses so probe and exchange samples pool. Attach a runtime clock with
// SetClock too — without one, round-trips are measured at Tick
// granularity.
func (m *Machine) SetRTT(est *rtt.Estimator) { m.est = est }

// RTT returns the attached estimator, nil without one.
func (m *Machine) RTT() *rtt.Estimator { return m.est }

// PeerQuarantined reports whether the guard scorer currently quarantines
// x. False when no scorer is configured.
func (m *Machine) PeerQuarantined(x id.ID) bool {
	return m.scorer != nil && m.scorer.Quarantined(x, m.clockNow())
}

func (m *Machine) clockNow() time.Duration {
	if m.clock != nil {
		return m.clock()
	}
	return m.now
}

// GuardStats returns the machine's hostile-input counters, including the
// scorer's (zero when no Guard policy is configured).
func (m *Machine) GuardStats() GuardStats {
	gs := m.gstats
	if m.scorer != nil {
		gs.Scorer = m.scorer.Stats()
	}
	return gs
}

// Self returns the node's own reference.
func (m *Machine) Self() table.Ref { return m.self }

// Params returns the ID-space parameters.
func (m *Machine) Params() id.Params { return m.params }

// Status returns the node's current protocol status.
func (m *Machine) Status() Status { return m.status }

// IsSNode reports whether the node reached status in_system.
func (m *Machine) IsSNode() bool { return m.status == StatusInSystem }

// NotiLevel returns the node's noti_level (meaningful once notifying).
func (m *Machine) NotiLevel() int { return m.notiLevel }

// Table exposes the node's neighbor table for inspection. Callers must
// not mutate it; use Snapshot for a safe copy.
func (m *Machine) Table() *table.Table { return m.tbl }

// Snapshot returns an immutable copy of the node's table.
func (m *Machine) Snapshot() table.Snapshot { return m.tbl.Snapshot() }

// Counters returns the node's message counters.
func (m *Machine) Counters() *msg.Counters { return &m.counters }

// AddReverseNeighbor registers w as a node known to store this node,
// without a message exchange. The simulation harness uses it when
// installing globally-constructed consistent networks, whose tables never
// exchanged RvNghNotiMsg; the leave protocol depends on reverse sets
// being complete.
func (m *Machine) AddReverseNeighbor(w table.Ref) {
	if w.ID != m.self.ID {
		m.addReverse(w)
	}
}

// ReverseNeighbors returns a copy of the reverse-neighbor set.
func (m *Machine) ReverseNeighbors() []table.Ref {
	out := make([]table.Ref, 0, len(m.reverse))
	for _, r := range m.reverse {
		out = append(out, r)
	}
	return out
}

// JoinStateSize returns how many units of join-protocol bookkeeping the
// node currently holds (|Qr|+|Qn|+|Qj|+|Qsn|+|Qsr|). For S-nodes of the
// original network this stays 0 except for deferred-join Qj entries held
// by T-nodes — the paper's claim that the join burden rests on joiners.
func (m *Machine) JoinStateSize() int {
	return len(m.qr) + len(m.qn) + len(m.qj) + len(m.qsn) + len(m.qsr)
}

func (m *Machine) trace(format string, args ...any) {
	if m.Trace != nil {
		m.Trace(format, args...)
	}
}

// send queues an envelope and counts it. Under an active span context
// the envelope gets its own child span (one hop, one span): the
// send-side event carries the new span with the active span as parent,
// and the receiver's recv-side event will carry the same span.
func (m *Machine) send(to table.Ref, pm msg.Message) {
	if to.IsZero() {
		panic(fmt.Sprintf("core: %v sending %v to null ref", m.self.ID, pm.Type()))
	}
	m.counters.CountSent(pm)
	env := msg.Envelope{From: m.self, To: to, Msg: pm}
	if m.tracer != nil {
		env.Trace = m.tracer.Child(m.cur)
	}
	m.out = append(m.out, env)
	m.trace("%v -> %v: %v", m.self.ID, to.ID, pm.Type())
	if m.sink != nil {
		m.sink.Emit(obs.Event{Node: m.selfName, Kind: obs.KindSend, Peer: to.ID.String(), Msg: pm.Type().String()}.Stamped(env.Trace, m.cur.Span))
	}
	m.trackExchange(env)
}

// setNeighbor fills entry (level,digit) and, per the protocol note in §4,
// informs the stored node that it gained a reverse neighbor — unless the
// fill is communicated in-band by an immediate reply (inBand=true).
func (m *Machine) setNeighbor(level, digit int, n table.Neighbor, inBand bool) {
	m.tbl.Set(level, digit, n)
	if n.ID != m.self.ID && !inBand {
		m.send(table.Ref{ID: n.ID, Addr: n.Addr}, msg.RvNghNoti{Level: level, Digit: digit, State: n.State})
	}
}

// StartJoin begins the join process (Figure 5) given a bootstrap node g0
// already in the network, and returns the first messages to transmit.
// It fails if the node is not in the copying status or g0 is invalid.
func (m *Machine) StartJoin(g0 table.Ref) ([]msg.Envelope, error) {
	if m.status != StatusCopying {
		return nil, fmt.Errorf("core: StartJoin on node %v in status %v", m.self.ID, m.status)
	}
	if g0.IsZero() || g0.ID == m.self.ID {
		return nil, fmt.Errorf("core: StartJoin with invalid bootstrap %v", g0.ID)
	}
	m.out = m.out[:0]
	m.AddGateways(g0)
	// The join is a traced operation root: the join_start event carries
	// the root span, and every message of the join wave descends from it.
	if m.tracer != nil {
		m.cur = m.tracer.Root()
	}
	m.joinCtx = m.cur
	if m.sink != nil {
		m.sink.Emit(obs.Event{Node: m.selfName, Kind: obs.KindJoinStart, Peer: g0.ID.String(), N: m.restarts}.Stamped(m.cur, trace.SpanID{}))
		m.sink.Emit(obs.Event{Node: m.selfName, Kind: obs.KindStatus, Detail: m.status.String()}.Stamped(m.cur, trace.SpanID{}))
	}
	m.copyLevel = 0
	m.copyFrom = g0
	m.send(g0, msg.CpRst{Level: 0})
	out := m.take()
	m.cur = trace.Context{}
	return out, nil
}

// Deliver processes one incoming message and returns the messages to
// transmit in response. Hostile input never panics: envelopes failing
// semantic validation (internal/guard) are rejected and counted, unknown
// types are dropped and counted, and traffic from quarantined senders is
// dropped at ingress.
func (m *Machine) Deliver(env msg.Envelope) []msg.Envelope {
	m.out = m.out[:0]
	now := m.clockNow()
	if m.scorer != nil && !env.From.IsZero() {
		before := m.scorer.Stats().Releases
		q := m.scorer.Quarantined(env.From.ID, now)
		if m.scorer.Stats().Releases > before && m.sink != nil {
			m.sink.Emit(obs.Event{Node: m.selfName, Kind: obs.KindQuarantineRelease, Peer: env.From.ID.String()})
		}
		if q {
			m.gstats.IngressDropped++
			if m.sink != nil {
				m.sink.Emit(obs.Event{Node: m.selfName, Kind: obs.KindGuardDrop, Peer: env.From.ID.String(), Detail: "quarantined"})
			}
			return nil
		}
	}
	if err := guard.Check(m.params, m.self.ID, env); err != nil {
		m.reject(env, err, now)
		return nil
	}
	m.counters.CountReceived(env.Msg)
	// Install the inbound context for the duration of this delivery:
	// the recv-side event shares the sender's hop span, and any message
	// sent in response becomes a child of it. A tracerless machine
	// drops the context — it is an opaque hop in the trace.
	if m.tracer != nil {
		m.cur = env.Trace
	}
	if m.sink != nil {
		m.sink.Emit(obs.Event{Node: m.selfName, Kind: obs.KindRecv, Peer: env.From.ID.String(), Msg: env.Msg.Type().String()}.Stamped(m.cur, trace.SpanID{}))
	}
	from := env.From
	m.clearExchange(from, env.Msg)
	switch pm := env.Msg.(type) {
	case msg.CpRst:
		m.onCpRst(from)
	case msg.CpRly:
		m.onCpRly(from, pm)
	case msg.JoinWait:
		m.onJoinWait(from)
	case msg.JoinWaitRly:
		m.onJoinWaitRly(from, pm)
	case msg.JoinNoti:
		m.onJoinNoti(from, pm)
	case msg.JoinNotiRly:
		m.onJoinNotiRly(from, pm)
	case msg.InSysNoti:
		m.onInSysNoti(from)
	case msg.SpeNoti:
		m.onSpeNoti(pm)
	case msg.SpeNotiRly:
		m.onSpeNotiRly(pm)
	case msg.RvNghNoti:
		m.onRvNghNoti(from, pm)
	case msg.RvNghNotiRly:
		m.onRvNghNotiRly(from, pm)
	case msg.Leave:
		m.onLeave(from, pm)
	case msg.LeaveRly:
		m.onLeaveRly(from)
	case msg.Find:
		m.onFind(pm)
	case msg.FindRly:
		m.onFindRly(pm)
	case msg.Ping:
		m.onPing(from, pm)
	case msg.Pong:
		// Absorbed: runtimes with a failure detector intercept pongs
		// before the machine; without one there is no probe to match.
	case msg.FailedNoti:
		m.onFailedNoti(pm)
	case msg.SyncReq:
		m.onSyncReq(from, pm)
	case msg.SyncRly:
		m.onSyncRly(from, pm)
	case msg.SyncPush:
		m.onSyncPush(pm)
	default:
		// Unreachable when guard.Check and this switch cover the same
		// types; kept as a counted drop so a future type added to one but
		// not the other degrades to noise instead of a crash.
		m.gstats.UnknownDropped++
		m.counters.CountRejected(env.Msg.Type())
		if m.sink != nil {
			m.sink.Emit(obs.Event{Node: m.selfName, Kind: obs.KindGuardDrop, Peer: from.ID.String(), Detail: fmt.Sprintf("unknown message type %T", env.Msg)})
		}
	}
	m.cur = trace.Context{}
	return m.take()
}

// reject counts and reports an envelope that failed semantic validation,
// charging the sender's misbehavior score when scoring is enabled.
func (m *Machine) reject(env msg.Envelope, err error, now time.Duration) {
	var t msg.Type
	if env.Msg != nil {
		t = env.Msg.Type()
	}
	m.counters.CountRejected(t)
	m.gstats.Rejected++
	peer := ""
	if !env.From.IsZero() {
		peer = env.From.ID.String()
	}
	if m.sink != nil {
		m.sink.Emit(obs.Event{Node: m.selfName, Kind: obs.KindGuardReject, Peer: peer, Msg: t.String(), Detail: err.Error()})
	}
	m.trace("%v rejected %v from %v: %v", m.self.ID, t, peer, err)
	if m.scorer != nil && !env.From.IsZero() && env.From.ID != m.self.ID {
		if m.scorer.Charge(env.From.ID, 1, now) {
			if m.sink != nil {
				m.sink.Emit(obs.Event{Node: m.selfName, Kind: obs.KindQuarantine, Peer: peer})
			}
		}
	}
}

// busy sheds a request that would exceed a resource budget. The protocol
// has no busy reply; dropping the request leaves the sender's timeout
// resend (or its next join restart) as the retry path.
func (m *Machine) busy(what string, from table.Ref) {
	m.gstats.BusyDeferred++
	if m.sink != nil {
		m.sink.Emit(obs.Event{Node: m.selfName, Kind: obs.KindBusy, Peer: from.ID.String(), Detail: what})
	}
	m.trace("%v shed %s request from %v (budget)", m.self.ID, what, from.ID)
}

// addReverse records a reverse neighbor, holding the set to its budget.
// Beyond MaxReverse the registration is shed: the peer still stores us in
// its table; we only lose one InSysNoti/leave-ack fan-out edge to it.
func (m *Machine) addReverse(r table.Ref) {
	if _, ok := m.reverse[r.ID]; !ok && len(m.reverse) >= m.budgets.MaxReverse {
		m.busy("reverse neighbors", r)
		return
	}
	m.reverse[r.ID] = r
}

func (m *Machine) take() []msg.Envelope {
	out := make([]msg.Envelope, len(m.out))
	copy(out, m.out)
	m.out = m.out[:0]
	return out
}

// onCpRst serves a table-copy request. Any node can serve one immediately
// (Theorem 2's proof relies on receivers answering with no waiting).
func (m *Machine) onCpRst(from table.Ref) {
	m.send(from, msg.CpRly{Table: m.tbl.Snapshot()})
}

// onCpRly continues the copying loop of Figure 5. The reply carries the
// full table of the current guide g, so consecutive levels served by the
// same node are processed locally without extra requests.
func (m *Machine) onCpRly(from table.Ref, pm msg.CpRly) {
	if m.status != StatusCopying || from.ID != m.copyFrom.ID {
		// Not part of the copying phase: either a stale reply after the
		// copy phase moved on, or a table requested while chasing
		// departed carriers during leave repair.
		m.onRepairCpRly(from, pm.Table)
		return
	}
	snap := pm.Table
	i := m.copyLevel
	for {
		if i >= m.params.D {
			m.finishCopying(from)
			return
		}
		// Copy level-i neighbors of g into our table.
		for j := 0; j < m.params.B; j++ {
			n := snap.Get(i, j)
			if n.IsZero() || n.ID == m.self.ID || m.knownBad(n.ID) {
				continue
			}
			if m.tbl.Get(i, j).IsZero() {
				m.setNeighbor(i, j, n, false)
			}
		}
		next := snap.Get(i, m.self.ID.Digit(i))
		i++
		switch {
		case next.IsZero() || next.ID == m.self.ID:
			// No node shares the rightmost i digits: JoinWaitMsg to p.
			m.finishCopying(from)
			return
		case next.State == table.StateT:
			// g_{k+1} exists but is still a T-node: JoinWaitMsg to it.
			m.finishCopying(next.Ref())
			return
		case next.ID == snap.Owner():
			// The same node serves the next level; keep going locally.
			continue
		default:
			m.copyLevel = i
			m.copyFrom = next.Ref()
			m.send(next.Ref(), msg.CpRst{Level: i})
			return
		}
	}
}

// finishCopying installs the diagonal self-entries and sends the first
// JoinWaitMsg (tail of Figure 5).
func (m *Machine) finishCopying(target table.Ref) {
	for i := 0; i < m.params.D; i++ {
		m.tbl.Set(i, m.self.ID.Digit(i), table.Neighbor{ID: m.self.ID, Addr: m.self.Addr, State: table.StateT})
	}
	m.setStatus(StatusWaiting)
	m.trace("%v status -> waiting, JoinWait to %v", m.self.ID, target.ID)
	m.qn[target.ID] = struct{}{}
	m.qr[target.ID] = struct{}{}
	m.send(target, msg.JoinWait{})
}

// onJoinWait implements Figure 6.
func (m *Machine) onJoinWait(from table.Ref) {
	if m.status != StatusInSystem {
		if _, ok := m.qj[from.ID]; !ok && len(m.qj) >= m.budgets.MaxDeferredJoins {
			m.busy("deferred joins", from)
			return
		}
		m.qj[from.ID] = from // delay the reply until we are an S-node
		return
	}
	k := m.self.ID.CommonSuffixLen(from.ID)
	cur := m.tbl.Get(k, from.ID.Digit(k))
	if !cur.IsZero() && cur.ID != from.ID {
		m.send(from, msg.JoinWaitRly{R: msg.Negative, U: cur.Ref(), Table: m.tbl.Snapshot()})
		return
	}
	m.setNeighbor(k, from.ID.Digit(k), table.Neighbor{ID: from.ID, Addr: from.Addr, State: table.StateT}, true)
	m.send(from, msg.JoinWaitRly{R: msg.Positive, U: from, Table: m.tbl.Snapshot()})
}

// onJoinWaitRly implements Figure 7.
func (m *Machine) onJoinWaitRly(from table.Ref, pm msg.JoinWaitRly) {
	delete(m.qr, from.ID)
	k := m.self.ID.CommonSuffixLen(from.ID)
	// The replier is an S-node; upgrade our record of it if present.
	m.tbl.SetState(k, from.ID.Digit(k), from.ID, table.StateS)
	if pm.R == msg.Positive {
		if m.status == StatusWaiting {
			m.setStatus(StatusNotifying)
			m.notiLevel = k
			m.trace("%v status -> notifying at level %d (stored by %v)", m.self.ID, k, from.ID)
		}
		m.addReverse(from)
	} else {
		u := pm.U
		m.qn[u.ID] = struct{}{}
		m.qr[u.ID] = struct{}{}
		m.send(u, msg.JoinWait{})
	}
	m.checkNghTable(pm.Table)
	m.maybeSwitch()
}

// checkNghTable implements the Check_Ngh_Table subroutine (Figure 8):
// harvest unknown nodes from a received table, and notify those sharing at
// least noti_level digits when in status notifying.
func (m *Machine) checkNghTable(snap table.Snapshot) {
	if snap.IsZero() {
		return
	}
	snap.ForEach(func(_, _ int, n table.Neighbor) {
		u := n
		if u.ID == m.self.ID || m.knownBad(u.ID) {
			return
		}
		k := m.self.ID.CommonSuffixLen(u.ID)
		if m.tbl.Get(k, u.ID.Digit(k)).IsZero() {
			m.setNeighbor(k, u.ID.Digit(k), table.Neighbor{ID: u.ID, Addr: u.Addr, State: u.State}, false)
		}
		if m.status == StatusNotifying && k >= m.notiLevel {
			if _, seen := m.qn[u.ID]; !seen {
				m.qn[u.ID] = struct{}{}
				m.qr[u.ID] = struct{}{}
				m.send(u.Ref(), m.makeJoinNoti(k))
			}
		}
	})
}

// makeJoinNoti builds the JoinNotiMsg for a receiver sharing k digits,
// applying the §6.2 reductions when enabled.
func (m *Machine) makeJoinNoti(k int) msg.JoinNoti {
	var snap table.Snapshot
	if m.opts.ReduceLevels {
		snap = m.tbl.SnapshotLevels(m.notiLevel, k)
	} else {
		snap = m.tbl.Snapshot()
	}
	out := msg.JoinNoti{Table: snap, NotiLevel: m.notiLevel}
	if m.opts.BitVector {
		out.FillVector = m.tbl.FillVector()
	}
	return out
}

// onJoinNoti implements Figure 9.
func (m *Machine) onJoinNoti(from table.Ref, pm msg.JoinNoti) {
	k := m.self.ID.CommonSuffixLen(from.ID)
	f := false
	if m.tbl.Get(k, from.ID.Digit(k)).IsZero() {
		m.setNeighbor(k, from.ID.Digit(k), table.Neighbor{ID: from.ID, Addr: from.Addr, State: table.StateT}, true)
	}
	if pm.Table.Get(k, m.self.ID.Digit(k)).ID != m.self.ID && m.status == StatusInSystem {
		f = true
	}
	reply := msg.JoinNotiRly{Table: m.replySnapshot(pm), F: f}
	if m.tbl.Get(k, from.ID.Digit(k)).ID == from.ID {
		reply.R = msg.Positive
	} else {
		reply.R = msg.Negative
	}
	m.send(from, reply)
	m.checkNghTable(pm.Table)
}

// replySnapshot returns this node's table for a JoinNotiRly, filtered by
// the §6.2 bit vector when the sender attached one.
func (m *Machine) replySnapshot(pm msg.JoinNoti) table.Snapshot {
	snap := m.tbl.Snapshot()
	if pm.FillVector.Len() == 0 {
		return snap
	}
	return snap.Filtered(pm.FillVector, pm.NotiLevel)
}

// onJoinNotiRly implements Figure 10.
func (m *Machine) onJoinNotiRly(from table.Ref, pm msg.JoinNotiRly) {
	delete(m.qr, from.ID)
	k := m.self.ID.CommonSuffixLen(from.ID)
	if pm.R == msg.Positive {
		m.addReverse(from)
	}
	if pm.F && k > m.notiLevel {
		if _, seen := m.qsn[from.ID]; !seen {
			target := m.tbl.Get(k, from.ID.Digit(k))
			if !target.IsZero() && target.ID != from.ID {
				if len(m.qsn) >= m.budgets.MaxSpeNoti {
					m.busy("special notifications", from)
				} else {
					m.qsn[from.ID] = struct{}{}
					m.qsr[from.ID] = struct{}{}
					m.send(target.Ref(), msg.SpeNoti{X: m.self, Y: from})
				}
			}
		}
	}
	m.checkNghTable(pm.Table)
	m.maybeSwitch()
}

// onSpeNoti implements Figure 11: store y or forward along the neighbor
// chain; reply to the original sender x when y is stored.
func (m *Machine) onSpeNoti(pm msg.SpeNoti) {
	y := pm.Y
	k := m.self.ID.CommonSuffixLen(y.ID)
	if m.tbl.Get(k, y.ID.Digit(k)).IsZero() {
		m.setNeighbor(k, y.ID.Digit(k), table.Neighbor{ID: y.ID, Addr: y.Addr, State: table.StateS}, false)
	}
	if cur := m.tbl.Get(k, y.ID.Digit(k)); cur.ID != y.ID {
		m.send(cur.Ref(), msg.SpeNoti{X: pm.X, Y: pm.Y})
	} else {
		m.send(pm.X, msg.SpeNotiRly{X: pm.X, Y: pm.Y})
	}
}

// onSpeNotiRly implements Figure 12.
func (m *Machine) onSpeNotiRly(pm msg.SpeNotiRly) {
	delete(m.qsr, pm.Y.ID)
	m.maybeSwitch()
}

// maybeSwitch performs the Switch_To_S_Node transition (Figure 13) once
// all outstanding replies have arrived.
func (m *Machine) maybeSwitch() {
	if m.status != StatusNotifying || len(m.qr) != 0 || len(m.qsr) != 0 {
		return
	}
	m.setStatus(StatusInSystem)
	m.trace("%v status -> in_system", m.self.ID)
	for i := 0; i < m.params.D; i++ {
		m.tbl.SetState(i, m.self.ID.Digit(i), m.self.ID, table.StateS)
	}
	// Deterministic iteration (sorted by ID): the order in which deferred
	// waiters are answered decides which one is stored when two compete
	// for the same entry, and simulations must replay identically.
	for _, v := range sortedRefs(m.reverse) {
		m.send(v, msg.InSysNoti{})
	}
	for _, u := range sortedRefs(m.qj) {
		k := m.self.ID.CommonSuffixLen(u.ID)
		cur := m.tbl.Get(k, u.ID.Digit(k))
		switch {
		case cur.IsZero():
			m.setNeighbor(k, u.ID.Digit(k), table.Neighbor{ID: u.ID, Addr: u.Addr, State: table.StateT}, true)
			m.send(u, msg.JoinWaitRly{R: msg.Positive, U: u, Table: m.tbl.Snapshot()})
		case cur.ID == u.ID:
			m.send(u, msg.JoinWaitRly{R: msg.Positive, U: u, Table: m.tbl.Snapshot()})
		default:
			m.send(u, msg.JoinWaitRly{R: msg.Negative, U: cur.Ref(), Table: m.tbl.Snapshot()})
		}
	}
	m.qj = make(map[id.ID]table.Ref)
}

// sortedRefs returns the map's refs ordered by ID for deterministic
// message emission.
func sortedRefs(m map[id.ID]table.Ref) []table.Ref {
	out := make([]table.Ref, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out
}

// onInSysNoti implements Figure 14.
func (m *Machine) onInSysNoti(from table.Ref) {
	k := m.self.ID.CommonSuffixLen(from.ID)
	m.tbl.SetState(k, from.ID.Digit(k), from.ID, table.StateS)
}

// onRvNghNoti records a new reverse neighbor and corrects its state view
// if it disagrees with our actual status (§4's RvNghNotiMsg note). A
// departing node instead answers with a LeaveMsg: the sender just stored
// a node that is on its way out (possible when concurrent leaves pick
// each other as repair replacements) and must repair again.
func (m *Machine) onRvNghNoti(from table.Ref, pm msg.RvNghNoti) {
	if m.status == StatusLeaving || m.status == StatusLeft {
		m.send(from, msg.Leave{Table: m.tbl.Snapshot()})
		return
	}
	if _, gone := m.departed[from.ID]; gone {
		// A departing node installed us while repairing its own table;
		// ignore it — its table is being abandoned and registering it
		// would leave our own future departure waiting for its ack.
		return
	}
	m.addReverse(from)
	switch {
	case pm.State == table.StateT && m.status == StatusInSystem:
		m.send(from, msg.RvNghNotiRly{Level: pm.Level, Digit: pm.Digit, State: table.StateS})
	case pm.State == table.StateS && m.status != StatusInSystem:
		m.send(from, msg.RvNghNotiRly{Level: pm.Level, Digit: pm.Digit, State: table.StateT})
	}
}

// onRvNghNotiRly applies a state correction to the referenced entry.
func (m *Machine) onRvNghNotiRly(from table.Ref, pm msg.RvNghNotiRly) {
	m.tbl.SetState(pm.Level, pm.Digit, from.ID, pm.State)
}
