package dht_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hypercube/internal/dht"
	"hypercube/internal/id"
	"hypercube/internal/overlay"
	"hypercube/internal/table"
)

var p164 = id.Params{B: 16, D: 4}

func buildNetwork(t *testing.T, n int, seed int64) (*overlay.Network, []table.Ref) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := overlay.New(overlay.Config{Params: p164})
	refs := overlay.RandomRefs(p164, n, rng, nil)
	net.BuildDirect(refs, rng)
	return net, refs
}

func TestDirectory(t *testing.T) {
	d := dht.NewDirectory()
	obj := id.MustParse(p164, "ab12")
	h1 := table.Ref{ID: id.MustParse(p164, "0001"), Addr: "a"}
	h2 := table.Ref{ID: id.MustParse(p164, "0002"), Addr: "b"}
	d.Add(obj, h1)
	d.Add(obj, h1) // dedup
	d.Add(obj, h2)
	if got := d.Lookup(obj); len(got) != 2 || got[0].ID != h1.ID {
		t.Fatalf("Lookup = %v", got)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d", d.Len())
	}
	d.Remove(obj, h1.ID)
	if got := d.Lookup(obj); len(got) != 1 || got[0].ID != h2.ID {
		t.Fatalf("after remove: %v", got)
	}
	d.Remove(obj, h2.ID)
	if d.Len() != 0 {
		t.Errorf("Len after full removal = %d", d.Len())
	}
	d.Remove(obj, h2.ID) // removing absent pointer is a no-op
}

func TestPublishLookup(t *testing.T) {
	net, refs := buildNetwork(t, 100, 1)
	store := dht.NewStore(p164, net)
	obj := store.ObjectID("paper.pdf")
	holder := refs[7]
	path, err := store.Publish(obj, holder)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 || path[0] != holder.ID {
		t.Fatalf("publish path %v", path)
	}
	// P1 deterministic location: every node finds the object.
	for _, ref := range refs {
		got, hops, err := store.Lookup(ref.ID, obj)
		if err != nil {
			t.Fatalf("lookup from %v: %v", ref.ID, err)
		}
		if got.ID != holder.ID {
			t.Fatalf("lookup returned %v, want %v", got.ID, holder.ID)
		}
		if hops > p164.D {
			t.Fatalf("lookup took %d hops", hops)
		}
	}
}

func TestLookupMissingObject(t *testing.T) {
	net, refs := buildNetwork(t, 50, 2)
	store := dht.NewStore(p164, net)
	obj := store.ObjectID("never-published")
	if _, _, err := store.Lookup(refs[0].ID, obj); err == nil {
		t.Fatal("lookup of unpublished object succeeded")
	}
}

func TestUnpublish(t *testing.T) {
	net, refs := buildNetwork(t, 60, 3)
	store := dht.NewStore(p164, net)
	obj := store.ObjectID("ephemeral")
	holder := refs[3]
	if _, err := store.Publish(obj, holder); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Lookup(refs[10].ID, obj); err != nil {
		t.Fatalf("lookup before unpublish: %v", err)
	}
	if err := store.Unpublish(obj, holder); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Lookup(refs[10].ID, obj); err == nil {
		t.Fatal("lookup after unpublish succeeded")
	}
}

func TestRootAgreement(t *testing.T) {
	// P1: all nodes compute the same root for an object.
	net, refs := buildNetwork(t, 80, 4)
	store := dht.NewStore(p164, net)
	for i := 0; i < 10; i++ {
		obj := store.ObjectID(fmt.Sprintf("obj-%d", i))
		want, err := store.Root(refs[0].ID, obj)
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range refs[1:] {
			got, err := store.Root(ref.ID, obj)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("object %v: root %v from %v, %v from %v", obj, want, refs[0].ID, got, ref.ID)
			}
		}
	}
}

func TestNearbyCopyWinsP2(t *testing.T) {
	// P2 routing locality: a replica published by the querying node
	// itself is found in 0 hops even when a far replica exists.
	net, refs := buildNetwork(t, 100, 5)
	store := dht.NewStore(p164, net)
	obj := store.ObjectID("popular")
	far := refs[20]
	near := refs[40]
	if _, err := store.Publish(obj, far); err != nil {
		t.Fatal(err)
	}
	gotFar, hopsFar, err := store.Lookup(near.ID, obj)
	if err != nil {
		t.Fatal(err)
	}
	if gotFar.ID != far.ID {
		t.Fatalf("pre-replication lookup found %v", gotFar.ID)
	}
	if _, err := store.Publish(obj, near); err != nil {
		t.Fatal(err)
	}
	gotNear, hopsNear, err := store.Lookup(near.ID, obj)
	if err != nil {
		t.Fatal(err)
	}
	if gotNear.ID != near.ID || hopsNear != 0 {
		t.Fatalf("local replica not preferred: %v in %d hops", gotNear.ID, hopsNear)
	}
	if hopsNear > hopsFar {
		t.Fatalf("nearer copy cost more hops: %d > %d", hopsNear, hopsFar)
	}
}

func TestLookupAfterJoinWave(t *testing.T) {
	// Objects published before a concurrent join wave remain locatable
	// from the new nodes afterward: the join preserved reachability.
	rng := rand.New(rand.NewSource(6))
	net := overlay.New(overlay.Config{Params: p164})
	taken := make(map[id.ID]bool)
	vRefs := overlay.RandomRefs(p164, 80, rng, taken)
	net.BuildDirect(vRefs, rng)
	store := dht.NewStore(p164, net)
	objs := make([]id.ID, 15)
	for i := range objs {
		objs[i] = store.ObjectID(fmt.Sprintf("file-%d", i))
		if _, err := store.Publish(objs[i], vRefs[rng.Intn(len(vRefs))]); err != nil {
			t.Fatal(err)
		}
	}
	wRefs := overlay.RandomRefs(p164, 40, rng, taken)
	for _, w := range wRefs {
		net.ScheduleJoin(w, vRefs[rng.Intn(len(vRefs))], 0)
	}
	net.Run()
	if v := net.CheckConsistency(); len(v) != 0 {
		t.Fatalf("wave inconsistent: %v", v[0])
	}
	// Joins can move object roots onto new nodes, so some lookups may
	// miss until directories are repaired (the PRR/Tapestry republish-on-
	// membership-change mechanism).
	if err := store.Republish(); err != nil {
		t.Fatal(err)
	}
	for _, w := range wRefs {
		for _, obj := range objs {
			if _, _, err := store.Lookup(w.ID, obj); err != nil {
				t.Fatalf("new node %v cannot find %v after republish: %v", w.ID, obj, err)
			}
		}
	}
}

func TestRepublishRepairsMovedRoots(t *testing.T) {
	// Directly exhibit the migration problem Republish exists for: find a
	// seed where a post-wave lookup fails pre-repair, then verify repair.
	rng := rand.New(rand.NewSource(8))
	p := id.Params{B: 4, D: 4} // small space: root moves are frequent
	net := overlay.New(overlay.Config{Params: p})
	taken := make(map[id.ID]bool)
	vRefs := overlay.RandomRefs(p, 20, rng, taken)
	net.BuildDirect(vRefs, rng)
	store := dht.NewStore(p, net)
	objs := make([]id.ID, 40)
	for i := range objs {
		objs[i] = store.ObjectID(fmt.Sprintf("m-%d", i))
		if _, err := store.Publish(objs[i], vRefs[rng.Intn(len(vRefs))]); err != nil {
			t.Fatal(err)
		}
	}
	wRefs := overlay.RandomRefs(p, 60, rng, taken)
	for _, w := range wRefs {
		net.ScheduleJoin(w, vRefs[rng.Intn(len(vRefs))], 0)
	}
	net.Run()
	missesBefore := 0
	for _, w := range wRefs {
		for _, obj := range objs {
			if _, _, err := store.Lookup(w.ID, obj); err != nil {
				missesBefore++
			}
		}
	}
	if missesBefore == 0 {
		t.Log("no root moved in this configuration; repair path not exercised")
	}
	if err := store.Republish(); err != nil {
		t.Fatal(err)
	}
	for _, w := range wRefs {
		for _, obj := range objs {
			if _, _, err := store.Lookup(w.ID, obj); err != nil {
				t.Fatalf("miss after republish: %v from %v", obj, w.ID)
			}
		}
	}
}

func TestDirectoryLoad(t *testing.T) {
	net, refs := buildNetwork(t, 60, 7)
	store := dht.NewStore(p164, net)
	for i := 0; i < 200; i++ {
		obj := store.ObjectID(fmt.Sprintf("load-%d", i))
		if _, err := store.Publish(obj, refs[i%len(refs)]); err != nil {
			t.Fatal(err)
		}
	}
	load := store.DirectoryLoad()
	if len(load) == 0 {
		t.Fatal("no directory load recorded")
	}
	total := 0
	for i, v := range load {
		if i > 0 && v > load[i-1] {
			t.Fatal("load not sorted descending")
		}
		total += v
	}
	if total < 200 {
		t.Errorf("total pointers %d < published 200", total)
	}
}
