// Command churn exercises the §7 extension protocols (leave, failure
// recovery, table optimization) at scale and reports their cost and
// outcome: the paper proposes the conceptual foundation for these
// protocols as future work; this tool measures the implementation built
// on it.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/liveness"
	"hypercube/internal/msg"
	"hypercube/internal/overlay"
	"hypercube/internal/topology"
)

func main() {
	var (
		b      = flag.Int("b", 16, "digit base")
		d      = flag.Int("d", 8, "digits per ID")
		n      = flag.Int("n", 1000, "initial network size")
		leaves = flag.Int("leaves", 100, "graceful leaves (concurrent wave)")
		crash  = flag.Int("crashes", 20, "crash/recovery cycles")
		seed   = flag.Int64("seed", 1, "seed")
		auto   = flag.Bool("crash", false, "self-healing crash mode: nodes detect and repair crashes themselves (no recovery oracle)")
		heal   = flag.Duration("heal", 20*time.Second, "virtual healing window per crash in -crash mode")
	)
	flag.Parse()
	p := id.Params{B: *b, D: *d}
	if err := p.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "churn: %v\n", err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(*seed))

	topo, err := topology.Generate(topology.Small(*seed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "churn: %v\n", err)
		os.Exit(1)
	}
	tl := overlay.NewTopologyLatency(topo)
	cfg := overlay.Config{Params: p, Latency: tl.Func()}
	if *auto {
		// Self-healing mode: every node runs a failure detector and the
		// clock-driven repair machinery; crashes below are announced to
		// no one.
		cfg.Liveness = &liveness.Config{}
		cfg.Opts.Timeouts = core.Timeouts{RetryAfter: 500 * time.Millisecond}
		cfg.TickInterval = 100 * time.Millisecond
	}
	net := overlay.New(cfg)
	refs := overlay.RandomRefs(p, *n, rng, nil)
	hosts := topo.AttachHosts(len(refs), rng)
	for i, ref := range refs {
		tl.Bind(ref.ID, hosts[i])
	}
	net.BuildDirect(refs, rng)
	fmt.Printf("initial consistent network: %d nodes (b=%d, d=%d)\n\n", net.Size(), p.B, p.D)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)

	// Concurrent graceful leaves.
	before := net.Delivered()
	perm := rng.Perm(len(refs))
	for i := 0; i < *leaves; i++ {
		if err := net.ScheduleLeave(refs[perm[i]].ID, 0); err != nil {
			fmt.Fprintf(os.Stderr, "churn: %v\n", err)
			os.Exit(1)
		}
	}
	net.Run()
	gone := net.FinalizeLeaves()
	leaveMsgs := net.Delivered() - before
	violations := len(net.CheckConsistency())
	fmt.Fprintf(w, "graceful leaves\tcompleted %d/%d\tmessages %d (%.1f/leave)\tviolations %d\n",
		len(gone), *leaves, leaveMsgs, float64(leaveMsgs)/float64(*leaves), violations)

	// Crash / recovery cycles: with -crash the survivors' own probe and
	// timeout machinery detects and repairs each crash during a healing
	// window of virtual time; the default path names the dead node to the
	// batch recovery oracle.
	var totalLocal, totalRouted, totalRejoin, totalEmptied, unrepaired int
	survivors := make([]id.ID, 0, net.Size())
	for _, ref := range net.Members() {
		survivors = append(survivors, ref.ID)
	}
	rng.Shuffle(len(survivors), func(i, j int) { survivors[i], survivors[j] = survivors[j], survivors[i] })
	before = net.Delivered()
	for i := 0; i < *crash && i < len(survivors); i++ {
		dead := survivors[i]
		if err := net.InjectFailure(dead); err != nil {
			fmt.Fprintf(os.Stderr, "churn: %v\n", err)
			os.Exit(1)
		}
		if *auto {
			net.RunFor(*heal)
			continue
		}
		st := net.RecoverFailure(dead, rng, 0)
		totalLocal += st.LocalRepairs
		totalRouted += st.RoutedRepairs
		totalRejoin += st.Rejoined
		totalEmptied += st.Emptied
		unrepaired += st.Unrepaired
	}
	crashMsgs := net.Delivered() - before
	violations = len(net.CheckConsistency())
	fmt.Fprintf(w, "crash recovery\t%d crashes\tmessages %d (%.1f/crash)\tviolations %d\n",
		*crash, crashMsgs, float64(crashMsgs)/float64(*crash), violations)
	if *auto {
		ls := net.LivenessStats()
		fmt.Fprintf(w, "\tself-healing: %d probes, %d indirect, %d suspects, %d recovered, %d declared\t\t\n",
			ls.ProbesSent, ls.IndirectSent, ls.Suspects, ls.Recovered, ls.Declared)
	} else {
		fmt.Fprintf(w, "\trepairs: %d local, %d routed, %d rejoins, %d emptied, %d unrepaired\t\t\n",
			totalLocal, totalRouted, totalRejoin, totalEmptied, unrepaired)
	}

	// Table optimization.
	srng := rand.New(rand.NewSource(*seed + 1))
	beforeStretch := net.MeasureStretch(1000, rand.New(rand.NewSource(*seed+2)))
	opt := net.OptimizeTables(2)
	afterStretch := net.MeasureStretch(1000, rand.New(rand.NewSource(*seed+2)))
	_ = srng
	violations = len(net.CheckConsistency())
	fmt.Fprintf(w, "optimization\t%d/%d entries switched\tstretch %.2f -> %.2f (p95 %.2f -> %.2f)\tviolations %d\n",
		opt.Improved, opt.Considered, beforeStretch.Mean, afterStretch.Mean,
		beforeStretch.P95, afterStretch.P95, violations)
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "churn: %v\n", err)
		os.Exit(1)
	}

	// Survivor-side counters (the leavers' machines are gone, so count
	// receipts rather than sends).
	traffic := net.AggregateTraffic()
	fmt.Printf("\nfinal network: %d nodes, consistent; %d LeaveMsg received, %d FindMsg sent in total\n",
		net.Size(), traffic.ReceivedOf(msg.TLeave), traffic.SentOf(msg.TFind))
	if violations != 0 || unrepaired != 0 {
		os.Exit(1)
	}
}
