// The -graydegrade experiment: gray-failure degradation. A fraction of
// members turns slow — alive, correct, answering every message, just
// late — and the run contrasts the adaptive (RTT-estimating) failure
// detector against the fixed-timeout baseline on the same seed. The
// adaptive run must hold every declaration of a slow-but-live node while
// still detecting genuine crashes; the baseline run is expected to
// falsely declare the slow nodes, which is exactly the contrast the
// experiment exists to show.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/nemesis/oracle"
	"hypercube/internal/obs"
	"hypercube/internal/overlay"
	"hypercube/internal/rtt"
	"hypercube/internal/topology"
)

// grayRun is the outcome of one -graydegrade sub-run.
type grayRun struct {
	falsePos    int
	detected    int           // distinct genuine crashes declared
	crashed     int           // genuine crashes injected
	meanDetect  time.Duration // mean crash-to-declaration latency
	marked      int           // degraded flags raised (adaptive only)
	latePongs   int
	deprio      int // anti-entropy rounds that skipped a degraded partner
	slowDelayed uint64
	consistent  bool
}

// runGrayDegrade builds the same network twice from one seed — once with
// the adaptive per-peer RTT estimator, once with fixed timeouts — and
// subjects both to the same degradation: grayFrac of the members ramp to
// a per-side processing delay of grayDelay over grayRamp, then three
// fast honest members crash for real. Exit is non-zero when the adaptive
// run declares any live node, misses a genuine crash, ends inconsistent,
// never flags a slow node degraded — or when the baseline shows no
// contrast (no false declaration and no slower crash detection), which
// would mean the scenario has no teeth.
func runGrayDegrade(p id.Params, n int, seed int64, grayFrac float64, grayDelay, grayRamp, grayWindow, syncEvery time.Duration, byz bool, byzFrac, byzRate float64, topo *topology.Topology, tl *overlay.TopologyLatency, sink *obs.JSONL) int {
	fmt.Printf("gray degradation: %d nodes (b=%d, d=%d), %.0f%% slow at %v/side (ramp %v, window %v), byzantine=%v, sync every %v\n\n",
		n, p.B, p.D, 100*grayFrac, grayDelay, grayRamp, grayWindow, byz, syncEvery)

	adaptive, code := grayDegradeOnce(p, n, seed, true, grayFrac, grayDelay, grayRamp, grayWindow, syncEvery, byz, byzFrac, byzRate, topo, tl, sink)
	if code != 0 {
		return code
	}
	// The baseline run never gets the trace sink: its event stream would
	// interleave with the adaptive run's in one file and corrupt
	// per-node analysis.
	baseline, code := grayDegradeOnce(p, n, seed, false, grayFrac, grayDelay, grayRamp, grayWindow, syncEvery, byz, byzFrac, byzRate, topo, tl, nil)
	if code != 0 {
		return code
	}

	fmt.Printf("\n%-28s %12s %12s\n", "", "adaptive", "fixed")
	fmt.Printf("%-28s %12d %12d\n", "false declarations", adaptive.falsePos, baseline.falsePos)
	fmt.Printf("%-28s %9d/%-2d %9d/%-2d\n", "genuine crashes declared", adaptive.detected, adaptive.crashed, baseline.detected, baseline.crashed)
	fmt.Printf("%-28s %12v %12v\n", "mean crash detection", adaptive.meanDetect.Round(time.Millisecond), baseline.meanDetect.Round(time.Millisecond))
	fmt.Printf("%-28s %12d %12d\n", "degraded flags raised", adaptive.marked, baseline.marked)
	fmt.Printf("%-28s %12d %12d\n", "late pongs learned", adaptive.latePongs, baseline.latePongs)
	fmt.Printf("%-28s %12d %12d\n", "sync partners deprioritized", adaptive.deprio, baseline.deprio)

	fail := false
	if adaptive.falsePos != 0 {
		fmt.Fprintf(os.Stderr, "churn: adaptive run declared %d live nodes dead\n", adaptive.falsePos)
		fail = true
	}
	if adaptive.detected != adaptive.crashed {
		fmt.Fprintf(os.Stderr, "churn: adaptive run detected only %d of %d genuine crashes\n", adaptive.detected, adaptive.crashed)
		fail = true
	}
	if !adaptive.consistent {
		fmt.Fprintf(os.Stderr, "churn: adaptive run ended inconsistent\n")
		fail = true
	}
	if adaptive.marked == 0 {
		fmt.Fprintf(os.Stderr, "churn: no node was ever flagged degraded — the estimator never engaged\n")
		fail = true
	}
	if adaptive.slowDelayed == 0 {
		fmt.Fprintf(os.Stderr, "churn: the slow-node model never delayed a message — nothing was tested\n")
		fail = true
	}
	// Contrast gate: the baseline must visibly suffer, either by falsely
	// declaring a slow-but-live node or by detecting genuine crashes
	// materially slower. Otherwise the fixed timeouts were already
	// adequate and the scenario proves nothing.
	if baseline.falsePos == 0 &&
		(adaptive.meanDetect <= 0 || float64(baseline.meanDetect) <= 1.2*float64(adaptive.meanDetect)) {
		fmt.Fprintf(os.Stderr, "churn: baseline showed no contrast (0 false declarations, detection %v vs %v) — widen -gray-delay or shrink the probe timeout\n",
			baseline.meanDetect, adaptive.meanDetect)
		fail = true
	}
	if fail {
		return 1
	}
	fmt.Printf("\ncontrast holds: adaptive 0 false declarations; baseline %d false, detection %v vs %v\n",
		baseline.falsePos, baseline.meanDetect.Round(time.Millisecond), adaptive.meanDetect.Round(time.Millisecond))
	return 0
}

// grayDegradeOnce executes one sub-run. The returned exit code is
// non-zero only for setup failures (bad capacity, injection errors);
// protocol outcomes — false declarations, missed crashes — are reported
// in grayRun for the caller to judge, because the baseline sub-run is
// expected to misbehave.
func grayDegradeOnce(p id.Params, n int, seed int64, adaptive bool, grayFrac float64, grayDelay, grayRamp, grayWindow, syncEvery time.Duration, byz bool, byzFrac, byzRate float64, topo *topology.Topology, tl *overlay.TopologyLatency, sink *obs.JSONL) (grayRun, int) {
	label := "fixed"
	if adaptive {
		label = "adaptive"
	}
	rng := rand.New(rand.NewSource(seed))
	watch := oracle.NewDeclWatch()
	cfg := scenarioConfig(p, seed, syncEvery, tl, watch, sink, byz, byzFrac, byzRate)
	cfg.SlowNodes = &overlay.SlowNodes{
		Delay:    grayDelay,
		Ramp:     grayRamp,
		Fraction: grayFrac,
		Seed:     seed,
	}
	if adaptive {
		cfg.RTT = &rtt.Config{
			MinRTO: 100 * time.Millisecond,
			MaxRTO: 5 * time.Second,
		}
	}
	net := overlay.New(cfg)
	refs, _ := buildScenarioBase(net, p, n, rng, topo, tl, make(map[id.ID]bool))
	byzSet := markScenarioByzantine(net, refs, byz)

	// Warm-up: probers acquire targets and (in the adaptive run) the
	// estimators learn the fast baseline the ramp will depart from.
	net.RunFor(5 * time.Second)
	if watch.Total() != 0 {
		fmt.Fprintf(os.Stderr, "churn: [%s] %d declarations before degradation began\n", label, watch.Total())
		return grayRun{}, 1
	}

	slow := net.SelectSlow(refs)
	slowSet := make(map[id.ID]bool, len(slow))
	for _, x := range slow {
		slowSet[x] = true
	}
	fmt.Printf("[%s] %d members turning gray\n", label, len(slow))
	net.RunFor(grayWindow)

	// Genuine crashes: three fast honest members die for real. The
	// detector must still catch them — adaptivity may extend the window
	// for slow peers, never let real failures slide.
	var crash []id.ID
	for _, r := range refs {
		if !slowSet[r.ID] && !byzSet[r.ID] {
			crash = append(crash, r.ID)
			if len(crash) == 3 {
				break
			}
		}
	}
	crashAt := net.Engine().Now()
	watch.MarkDeadAt(crashAt, crash...)
	for _, x := range crash {
		if err := net.InjectFailure(x); err != nil {
			fmt.Fprintf(os.Stderr, "churn: [%s] %v\n", label, err)
			return grayRun{}, 1
		}
	}
	// Give detection and repair ample time, then reconverge the tables.
	net.RunFor(30 * time.Second)
	_, consistent := reconverge(net, syncEvery, 100)

	ls := net.LivenessStats()
	ae := net.AntiEntropyStats()
	out := grayRun{
		falsePos:    watch.FalsePositives(),
		detected:    watch.Detected(),
		crashed:     len(crash),
		meanDetect:  watch.MeanDetection(),
		latePongs:   ls.LatePongs,
		deprio:      ae.Deprioritized,
		slowDelayed: net.SlowDelayed(),
		consistent:  consistent,
	}
	if adaptive {
		out.marked = net.RTTStats().Marked
	}
	fmt.Printf("[%s] declarations: %d genuine / %d false; crash detection %v; %d late pongs, %d degraded flags, %d slow-delayed messages\n",
		label, watch.Genuine(), watch.FalsePositives(), out.meanDetect.Round(time.Millisecond), out.latePongs, out.marked, out.slowDelayed)
	if watch.FalsePositives() > 0 {
		fmt.Printf("[%s]   falsely declared: %v\n", label, watch.Examples())
	}
	return out, 0
}
