// Package antientropy schedules the periodic table-audit protocol of
// the partition-tolerance extension: each round a node audits its own
// table (purging occupants the netcheck predicates would flag as Ghost
// or WrongSuffix) and runs one push-pull digest exchange with the next
// live neighbor in rotation, pulling entries it is missing and pushing
// entries the peer is missing (core's SyncReq/SyncRly/SyncPush).
//
// After a partition heals, the two sides' tables have diverged — each is
// missing nodes that joined the other side and may still hold entries
// the other side repaired away. The paper's join protocol never revisits
// settled entries, so nothing else re-converges them; anti-entropy
// rounds do, pairwise and without a global oracle, and as a side effect
// they also repair arbitrary divergence from lost notifications.
//
// Like liveness.Prober, the engine is transport-agnostic and
// clock-driven: Tick(now) consumes virtual or real time and returns the
// messages to transmit. The overlay simulator drives it from the
// discrete-event clock; tcptransport from a timer goroutine, under the
// same lock as the machine it audits.
package antientropy

import (
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/obs"
	"hypercube/internal/table"
	"hypercube/internal/trace"
)

// Config tunes the anti-entropy engine. The zero value is usable.
type Config struct {
	// Interval is the gap between successive rounds. Default 2s.
	Interval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	return c
}

// Stats counts the engine's activity, for admin endpoints and tests.
type Stats struct {
	// Rounds counts sync rounds initiated (one digest exchange each).
	Rounds int
	// Pulled counts table entries installed from peers' replies and
	// pushes (including rounds initiated by the peer).
	Pulled int
	// Purged counts entries removed by table audits.
	Purged int
	// Deprioritized counts rounds where one or more degraded peers were
	// filtered out of partner choice (health predicate wired and at
	// least one healthy alternative existed).
	Deprioritized int
}

// Engine drives anti-entropy rounds for one node's machine. It is not
// safe for concurrent use; drive it from the goroutine (or under the
// lock) that owns the machine.
type Engine struct {
	cfg     Config
	m       *core.Machine
	nextDue time.Duration
	cursor  int
	started bool
	rounds  int

	// sampled, when non-nil, supplies peers from the gossip sampling
	// layer; every sampledEvery-th round syncs with a sampled peer
	// instead of a table neighbor, and an empty table falls back to
	// sampled peers entirely.
	sampled func(int) []table.Ref

	// healthy, when non-nil, reports whether a peer is currently fit to
	// be a sync partner (see SetHealth); deprioritized counts rounds
	// where degraded peers were filtered out of partner choice.
	healthy       func(id.ID) bool
	deprioritized int

	// Observability (nil when tracing is off; see SetSink). tracer,
	// when non-nil, roots one span per sync round (see SetTracer).
	sink     obs.Sink
	selfName string
	tracer   *trace.Tracer
}

// New creates an engine auditing m.
func New(cfg Config, m *core.Machine) *Engine {
	return &Engine{cfg: cfg.withDefaults(), m: m}
}

// SetPeerSampler installs a source of sampled peers. Table neighbors
// are systematically correlated (they share suffixes with the node), so
// syncing only with them can leave two table-disjoint cliques diverged
// forever; a periodic round with a uniformly sampled peer breaks the
// correlation.
func (e *Engine) SetPeerSampler(f func(int) []table.Ref) { e.sampled = f }

// SetHealth installs a per-peer health predicate (the gray-failure
// extension wires the RTT estimator's not-degraded check here). Each
// round's partner is chosen among healthy peers first; degraded peers
// are synced with only when no healthy peer exists — a sync round
// against a 10x-slower peer wastes the whole round's budget on one
// crawling exchange, but a degraded peer must still converge
// eventually rather than being partitioned out of anti-entropy.
func (e *Engine) SetHealth(f func(id.ID) bool) { e.healthy = f }

// sampledEvery is the round cadence of sampled-peer syncs: every 4th
// round uses a sampled peer when a sampler is wired.
const sampledEvery = 4

// SetSink installs the protocol-event sink; nil or obs.Nop turns tracing
// off (the default). Wrap with obs.Clocked so the driving runtime stamps
// Event.T.
func (e *Engine) SetSink(s obs.Sink) {
	if obs.IsNop(s) {
		e.sink = nil
		return
	}
	e.sink = s
	e.selfName = e.m.Self().ID.String()
}

// SetTracer installs the span-context source for causal tracing; nil
// turns it off (the default). Each sync round becomes a traced
// operation root: the sync_round event carries the root span and the
// round's digest exchange descends from it.
func (e *Engine) SetTracer(t *trace.Tracer) { e.tracer = t }

// Stats returns the engine's activity counters.
func (e *Engine) Stats() Stats {
	return Stats{Rounds: e.rounds, Pulled: e.m.SyncPulled(), Purged: e.m.AuditPurged(), Deprioritized: e.deprioritized}
}

// Tick advances the engine to time now, running any due rounds and
// returning the traffic to transmit. The first tick staggers the round
// phase deterministically per node so a fleet started together does not
// sync in lockstep.
func (e *Engine) Tick(now time.Duration) []msg.Envelope {
	if !e.started {
		e.started = true
		e.nextDue = now + e.stagger()
	}
	var out []msg.Envelope
	for e.nextDue <= now {
		e.nextDue += e.cfg.Interval
		out = append(out, e.round()...)
	}
	return out
}

// stagger derives a per-node phase offset in [0, Interval) from the
// node's ID digits.
func (e *Engine) stagger() time.Duration {
	self := e.m.Self().ID
	h := uint64(0)
	for i := 0; i < self.Len(); i++ {
		h = h*131 + uint64(self.Digit(i)) + 1
	}
	return time.Duration(h % uint64(e.cfg.Interval))
}

// round runs one audit + sync round. Only S-nodes participate: a
// joining node's table is still being built by the join protocol, and a
// departing node's table is being abandoned.
func (e *Engine) round() []msg.Envelope {
	if !e.m.IsSNode() {
		return nil
	}
	purged, out := e.m.AuditTable()
	if purged > 0 && e.sink != nil {
		e.sink.Emit(obs.Event{Node: e.selfName, Kind: obs.KindAuditPurge, N: purged})
	}
	peers := e.m.SyncPeers()
	if e.sampled != nil {
		if len(peers) == 0 || e.cursor%sampledEvery == sampledEvery-1 {
			if extra := e.sampled(1); len(extra) > 0 && extra[0].ID != e.m.Self().ID {
				peers = extra
			}
		}
	}
	if len(peers) == 0 {
		return out
	}
	if e.healthy != nil {
		fit := make([]table.Ref, 0, len(peers))
		for _, r := range peers {
			if e.healthy(r.ID) {
				fit = append(fit, r)
			}
		}
		// Healthy peers first; an all-degraded neighborhood still syncs.
		if len(fit) > 0 {
			if len(fit) < len(peers) {
				e.deprioritized++
			}
			peers = fit
		}
	}
	peer := peers[e.cursor%len(peers)]
	e.cursor++
	e.rounds++
	var ctx trace.Context
	if e.tracer != nil {
		ctx = e.tracer.Root()
	}
	if e.sink != nil {
		e.sink.Emit(obs.Event{Node: e.selfName, Kind: obs.KindSyncRound, Peer: peer.ID.String()}.Stamped(ctx, trace.SpanID{}))
	}
	return append(out, e.m.StartSyncTraced(peer, ctx)...)
}
