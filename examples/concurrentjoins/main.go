// Concurrent joins: the paper's headline scenario. A consistent network
// of n nodes absorbs m nodes joining at the same instant; afterwards the
// network must still be consistent (Theorem 1), every joiner must be an
// S-node (Theorem 2), and each join must have cost at most d+1
// CpRstMsg+JoinWaitMsg (Theorem 3) and a small number of JoinNotiMsg
// (Theorems 4-5).
package main

import (
	"fmt"
	"os"

	"hypercube/internal/analysis"
	"hypercube/internal/id"
	"hypercube/internal/overlay"
	"hypercube/internal/stats"
)

func main() {
	p := id.Params{B: 16, D: 8}
	const (
		n = 1000
		m = 300
	)
	fmt.Printf("n=%d existing nodes, m=%d joining concurrently (b=%d, d=%d)\n", n, m, p.B, p.D)

	res, err := overlay.RunWave(overlay.WaveConfig{Params: p, N: n, M: m, Seed: 42})
	if err != nil {
		fmt.Fprintf(os.Stderr, "concurrentjoins: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\nTheorem 1 (consistency):   %v (%d violations)\n", res.Consistent(), len(res.Violations))
	fmt.Printf("Theorem 2 (termination):   %v (all joiners reached in_system)\n", res.AllSNodes)

	worstSetup := 0
	for _, rec := range res.Records {
		if s := rec.CpRstSent + rec.JoinWaitSent; s > worstSetup {
			worstSetup = s
		}
	}
	fmt.Printf("Theorem 3 (setup cost):    max %d CpRst+JoinWait per join (bound %d)\n",
		worstSetup, analysis.Theorem3Bound(p.D))

	sum := stats.Summarize(res.JoinNoti)
	fmt.Printf("Theorem 5 (notifications): mean %.3f JoinNotiMsg per join (bound %.3f), p99 %.0f, max %d\n",
		sum.Mean, analysis.UpperBoundJoinNoti(p.B, p.D, n, m), sum.P99, sum.Max)

	fmt.Printf("\nsimulated wall clock for the whole wave: %v\n", res.VirtualDuration)
	fmt.Printf("messages delivered: %d\n", res.Events)
	fmt.Println("\nJoinNotiMsg distribution:")
	fmt.Print(stats.NewHistogram(res.JoinNoti))

	if !res.Consistent() || !res.AllSNodes {
		os.Exit(1)
	}
}
