GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test race bench bench-all bench-wire bench-join bench-liveness vet fmt lint cover experiments trace-smoke fleettrace-smoke gray-smoke fuzz-smoke nemesis-smoke

all: build lint test fuzz-smoke nemesis-smoke

build:
	$(GO) build ./...

# The default test path includes vet and a race-detector pass over the
# whole module — new packages (anti-entropy engine, partition plumbing)
# get race coverage automatically instead of waiting to be listed.
# -shuffle=on randomizes test order so inter-test state leaks surface
# instead of hiding behind a lucky declaration order.
test: vet
	$(GO) test -shuffle=on ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

# bench runs the three pinned suites (wire codec, join waves, failure
# detection). Each regenerates its BENCH_*.json snapshot — stamped with
# the git commit, UTC date, and go version — and appends the same run to
# BENCH_history.jsonl, the one-line-per-run log that lets a regression
# be bisected across commits. `bench-all` is the old sweep of every
# benchmark in the module, without recording.
bench: bench-wire bench-join bench-liveness

bench-all:
	$(GO) test -bench . -benchmem ./...

# bench-wire pins the wire-codec suite (binary vs gob encode/decode plus
# frame coalescing) and records ns/op, B/op, allocs/op, and bytes-on-wire
# into BENCH_wire.json for regression comparison across PRs.
bench-wire:
	$(GO) test -run '^$$' -bench 'BenchmarkWire|BenchmarkFrame' -benchmem \
		./internal/transport/tcptransport | tee /tmp/bench_wire.txt
	$(GO) run ./cmd/benchjson -suite wire -history BENCH_history.jsonl \
		< /tmp/bench_wire.txt > BENCH_wire.json

# bench-join pins the concurrent join-wave suite (paper-scale and
# flash-crowd-scale waves, plus the tracing-overhead guardrail with its
# sampling-off/sampling-on causal-tracing variants) and records ns/op
# plus mean JoinNotiMsg per join into BENCH_join.json for regression
# comparison across PRs.
bench-join:
	$(GO) test -run '^$$' -bench 'BenchmarkJoinWave' -benchmem . | tee /tmp/bench_join.txt
	$(GO) run ./cmd/benchjson -suite join -history BENCH_history.jsonl \
		< /tmp/bench_join.txt > BENCH_join.json

# bench-liveness pins the failure-detection suite: virtual
# crash-to-declaration latency (the custom detect-ms metric) for the
# fixed and adaptive probers, plus the per-tick CPU cost of the
# estimator-backed probe path, recorded into BENCH_liveness.json for
# regression comparison across PRs.
bench-liveness:
	$(GO) test -run '^$$' -bench 'BenchmarkDetection|BenchmarkProbeTick' -benchmem \
		./internal/liveness | tee /tmp/bench_liveness.txt
	$(GO) run ./cmd/benchjson -suite liveness -history BENCH_history.jsonl \
		< /tmp/bench_liveness.txt > BENCH_liveness.json

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# lint fails on unformatted files (gofmt -l prints them; grep turns any
# output into a non-zero exit) and runs vet with the two analyzers that
# are off by default in `go vet` but catch real protocol-loop bugs:
# unreachable code after give-up branches and lost context cancels in
# the transport.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) vet -unreachable -lostcancel ./...

cover:
	$(GO) test -cover ./internal/...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/figure15a
	$(GO) run ./cmd/figure15b
	$(GO) run ./cmd/jointable
	$(GO) run ./cmd/consistency
	$(GO) run ./cmd/csettree
	$(GO) run ./cmd/baselinecmp
	$(GO) run ./cmd/msgsize
	$(GO) run ./cmd/churn
	$(GO) run ./cmd/workload -quiet

# fuzz-smoke gives each hostile-input fuzz target a short budget
# (override with FUZZTIME=5m for a real hunt): ID/suffix parsing, the
# wire decoder behind the TCP transport, and the protocol machine's
# Deliver path. Any crasher fails the build.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParse$$ -fuzztime $(FUZZTIME) ./internal/id
	$(GO) test -run '^$$' -fuzz FuzzParseSuffix -fuzztime $(FUZZTIME) ./internal/id
	$(GO) test -run '^$$' -fuzz FuzzDecodeWire -fuzztime $(FUZZTIME) ./internal/transport/tcptransport
	$(GO) test -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime $(FUZZTIME) ./internal/transport/tcptransport
	$(GO) test -run '^$$' -fuzz FuzzBinaryDecode -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzMachineDeliver -fuzztime $(FUZZTIME) ./internal/core

# trace-smoke proves the tracing pipeline end to end: a 16-node overlay
# wave writes a JSONL trace and tracestat must parse it cleanly (exit 0).
trace-smoke:
	$(GO) run ./cmd/tracewave -n 16 -m 12 -out /tmp/hypercube-trace-smoke.jsonl
	$(GO) run ./cmd/tracestat /tmp/hypercube-trace-smoke.jsonl

# fleettrace-smoke proves cross-node causal tracing end to end at a
# CI-friendly size: a 32-node flash-crowd run with tracing on writes a
# fleet JSONL trace, and fleettrace must reconstruct at least 95% of
# the joins as complete cross-node span trees (exit non-zero below).
fleettrace-smoke:
	$(GO) run ./cmd/churn -flashcrowd -n 32 -fc-joins 32 -b 16 -d 4 -seed 7 \
		-trace /tmp/hypercube-fleettrace-smoke.jsonl
	$(GO) run ./cmd/fleettrace -require-joins 0.95 /tmp/hypercube-fleettrace-smoke.jsonl

# nemesis-smoke is the deterministic chaos-search gate: sweep a pinned
# seed range of generated fault schedules (composed join waves, crashes,
# partitions, loss bursts, clock pauses, restart-from-persist) at a
# CI-friendly size, auditing Definition 3.8 consistency, sampled
# reachability, and the false-declaration watcher at every quiescence
# point. On any violation the driver delta-debugs the schedule to a
# minimal repro-<seed>.json under /tmp/hypercube-nemesis (uploaded as a
# CI artifact) and exits non-zero; `go run ./cmd/nemesis -replay <file>`
# re-executes it bit-identically.
nemesis-smoke:
	$(GO) run ./cmd/nemesis -seeds 0..49 -n 32 -b 16 -d 4 -steps 8 \
		-out /tmp/hypercube-nemesis

# gray-smoke runs the gray-degradation contrast at a CI-friendly size:
# the adaptive detector must hold every declaration of a slow-but-live
# node while the fixed baseline visibly suffers (exit non-zero either
# way otherwise).
gray-smoke:
	$(GO) run ./cmd/churn -graydegrade -n 48 -b 16 -d 4 -seed 1
