package table

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hypercube/internal/id"
)

var p45 = id.Params{B: 4, D: 5}

func nb(t *testing.T, s string, st State) Neighbor {
	t.Helper()
	return Neighbor{ID: id.MustParse(p45, s), State: st}
}

func TestNewTableEmpty(t *testing.T) {
	owner := id.MustParse(p45, "21233")
	tbl := New(p45, owner)
	if tbl.Owner() != owner {
		t.Errorf("Owner = %v", tbl.Owner())
	}
	if tbl.Params() != p45 {
		t.Errorf("Params = %+v", tbl.Params())
	}
	if got := tbl.FilledCount(); got != 0 {
		t.Errorf("FilledCount = %d, want 0", got)
	}
	for i := 0; i < p45.D; i++ {
		for j := 0; j < p45.B; j++ {
			if !tbl.Get(i, j).IsZero() {
				t.Fatalf("entry (%d,%d) not empty in new table", i, j)
			}
		}
	}
}

func TestNewPanicsOnBadInput(t *testing.T) {
	owner := id.MustParse(p45, "21233")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New with invalid params did not panic")
			}
		}()
		New(id.Params{B: 1, D: 5}, owner)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New with wrong-length owner did not panic")
			}
		}()
		New(id.Params{B: 4, D: 8}, owner)
	}()
}

func TestSetGet(t *testing.T) {
	owner := id.MustParse(p45, "21233")
	tbl := New(p45, owner)
	n := nb(t, "01233", StateS)
	tbl.Set(3, 1, n)
	if got := tbl.Get(3, 1); got != n {
		t.Errorf("Get(3,1) = %+v, want %+v", got, n)
	}
	if got := tbl.FilledCount(); got != 1 {
		t.Errorf("FilledCount = %d, want 1", got)
	}
	// Overwrite is unconditional at this layer.
	n2 := nb(t, "11233", StateT)
	tbl.Set(3, 1, n2)
	if got := tbl.Get(3, 1); got != n2 {
		t.Errorf("after overwrite Get(3,1) = %+v", got)
	}
}

func TestGetOutOfRangePanics(t *testing.T) {
	tbl := New(p45, id.MustParse(p45, "21233"))
	for _, c := range [][2]int{{-1, 0}, {5, 0}, {0, -1}, {0, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d,%d) did not panic", c[0], c[1])
				}
			}()
			tbl.Get(c[0], c[1])
		}()
	}
}

func TestSetState(t *testing.T) {
	tbl := New(p45, id.MustParse(p45, "21233"))
	x := id.MustParse(p45, "01233")
	tbl.Set(3, 0, Neighbor{ID: x, State: StateT})
	if !tbl.SetState(3, 0, x, StateS) {
		t.Error("SetState on matching node returned false")
	}
	if got := tbl.Get(3, 0).State; got != StateS {
		t.Errorf("state = %v, want S", got)
	}
	other := id.MustParse(p45, "11233")
	if tbl.SetState(3, 0, other, StateT) {
		t.Error("SetState on non-matching node returned true")
	}
	if got := tbl.Get(3, 0).State; got != StateS {
		t.Errorf("state changed by non-matching SetState: %v", got)
	}
}

func TestDesiredSuffixMatchesPaperFigure1(t *testing.T) {
	// Figure 1: node 21233, b=4, d=5. The desired suffix of the (3,0)-entry
	// is 0233, of the (1,3)-entry is 33, of the (0,2)-entry is 2.
	tbl := New(p45, id.MustParse(p45, "21233"))
	tests := []struct {
		level, digit int
		want         string
	}{
		{0, 0, "0"},
		{0, 2, "2"},
		{1, 3, "33"},
		{2, 0, "033"},
		{3, 0, "0233"},
		{3, 3, "3233"},
		{4, 1, "11233"},
	}
	for _, tt := range tests {
		if got := tbl.DesiredSuffix(tt.level, tt.digit).String(); got != tt.want {
			t.Errorf("DesiredSuffix(%d,%d) = %q, want %q", tt.level, tt.digit, got, tt.want)
		}
	}
}

func TestQualifies(t *testing.T) {
	tbl := New(p45, id.MustParse(p45, "21233"))
	tests := []struct {
		level, digit int
		node         string
		want         bool
	}{
		{3, 0, "10233", true},
		{3, 0, "00233", true},
		{3, 0, "01233", false}, // suffix 1233, not 0233
		{0, 1, "33121", true},
		{0, 1, "33120", false},
		{4, 2, "21233", true}, // diagonal: desired suffix is the owner's own ID
		{4, 0, "21233", false},
	}
	for _, tt := range tests {
		x := id.MustParse(p45, tt.node)
		if got := tbl.Qualifies(tt.level, tt.digit, x); got != tt.want {
			t.Errorf("Qualifies(%d,%d,%s) = %v, want %v", tt.level, tt.digit, tt.node, got, tt.want)
		}
	}
	// The diagonal entry (i, owner[i]) is always qualified for the owner.
	owner := id.MustParse(p45, "21233")
	for i := 0; i < p45.D; i++ {
		if !tbl.Qualifies(i, owner.Digit(i), owner) {
			t.Errorf("owner does not qualify for its own (%d,%d)-entry", i, owner.Digit(i))
		}
	}
}

func TestForEachOrderAndContent(t *testing.T) {
	tbl := New(p45, id.MustParse(p45, "21233"))
	tbl.Set(0, 1, nb(t, "33121", StateS))
	tbl.Set(2, 0, nb(t, "21033", StateT))
	tbl.Set(2, 2, nb(t, "12233", StateS))
	var got []string
	tbl.ForEach(func(level, digit int, n Neighbor) {
		got = append(got, n.ID.String())
	})
	want := []string{"33121", "21033", "12233"}
	if len(got) != len(want) {
		t.Fatalf("visited %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("visit %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	tbl := New(p45, id.MustParse(p45, "21233"))
	tbl.Set(1, 3, nb(t, "21233", StateT))
	snap := tbl.Snapshot()
	tbl.Set(1, 3, nb(t, "11233", StateS))
	tbl.Set(0, 0, nb(t, "10220", StateS))
	if got := snap.Get(1, 3).ID.String(); got != "21233" {
		t.Errorf("snapshot mutated: (1,3) = %s", got)
	}
	if !snap.Get(0, 0).IsZero() {
		t.Error("snapshot saw later write to (0,0)")
	}
	if snap.Owner() != tbl.Owner() {
		t.Error("snapshot owner mismatch")
	}
	lo, hi := snap.LevelRange()
	if lo != 0 || hi != p45.D-1 {
		t.Errorf("full snapshot range [%d,%d]", lo, hi)
	}
}

func TestSnapshotLevels(t *testing.T) {
	tbl := New(p45, id.MustParse(p45, "21233"))
	tbl.Set(0, 1, nb(t, "33121", StateS))
	tbl.Set(2, 2, nb(t, "12233", StateS))
	tbl.Set(4, 0, nb(t, "01233", StateT))

	snap := tbl.SnapshotLevels(1, 3)
	if !snap.Get(0, 1).IsZero() {
		t.Error("level 0 leaked into [1,3] snapshot")
	}
	if !snap.Get(4, 0).IsZero() {
		t.Error("level 4 leaked into [1,3] snapshot")
	}
	if snap.Get(2, 2).ID != id.MustParse(p45, "12233") {
		t.Error("level 2 missing from [1,3] snapshot")
	}
	if got := snap.FilledCount(); got != 1 {
		t.Errorf("FilledCount = %d, want 1", got)
	}

	// Clamping out-of-range bounds.
	all := tbl.SnapshotLevels(-5, 100)
	if got := all.FilledCount(); got != 3 {
		t.Errorf("clamped snapshot FilledCount = %d, want 3", got)
	}
	empty := tbl.SnapshotLevels(3, 1)
	if got := empty.FilledCount(); got != 0 {
		t.Errorf("inverted-range snapshot FilledCount = %d, want 0", got)
	}
}

func TestSnapshotZero(t *testing.T) {
	var s Snapshot
	if !s.IsZero() {
		t.Error("zero Snapshot not IsZero")
	}
	tbl := New(p45, id.MustParse(p45, "21233"))
	if tbl.Snapshot().IsZero() {
		t.Error("real snapshot reported zero")
	}
}

func TestFillVectorAndFiltered(t *testing.T) {
	tbl := New(p45, id.MustParse(p45, "21233"))
	tbl.Set(0, 1, nb(t, "33121", StateS))
	tbl.Set(1, 3, nb(t, "21233", StateT))
	tbl.Set(3, 1, nb(t, "01233", StateS))

	v := tbl.FillVector()
	if got := v.Count(); got != 3 {
		t.Errorf("FillVector.Count = %d, want 3", got)
	}
	if !v.Get(0*4+1) || !v.Get(1*4+3) || !v.Get(3*4+1) {
		t.Error("FillVector missing a filled entry bit")
	}
	if v.Get(2*4 + 0) {
		t.Error("FillVector set for empty entry")
	}

	// A peer whose table already has (0,1) filled asks us to filter: with
	// keepFrom=3, level-3 entries ship regardless of the mask.
	mask := NewBitVector(p45.D * p45.B)
	mask.Set(0*4 + 1)
	mask.Set(3*4 + 1)
	filtered := tbl.Snapshot().Filtered(mask, 3)
	if !filtered.Get(0, 1).IsZero() {
		t.Error("masked low-level entry was shipped")
	}
	if filtered.Get(1, 3).IsZero() {
		t.Error("unmasked entry was dropped")
	}
	if filtered.Get(3, 1).IsZero() {
		t.Error("keepFrom level was filtered out")
	}
}

func TestWireSizeShrinksWithReduction(t *testing.T) {
	p := id.Params{B: 16, D: 8}
	r := rand.New(rand.NewSource(5))
	owner := id.Random(p, r)
	tbl := New(p, owner)
	for i := 0; i < p.D/2; i++ {
		for j := 0; j < p.B; j++ {
			tbl.Set(i, j, Neighbor{ID: id.Random(p, r), State: StateS})
		}
	}
	full := tbl.Snapshot()
	part := tbl.SnapshotLevels(2, 3)
	if part.WireSize() >= full.WireSize() {
		t.Errorf("partial snapshot (%dB) not smaller than full (%dB)", part.WireSize(), full.WireSize())
	}
	mask := tbl.FillVector() // peer has everything we have
	filtered := full.Filtered(mask, p.D)
	if filtered.WireSize() >= full.WireSize() {
		t.Errorf("filtered snapshot (%dB) not smaller than full (%dB)", filtered.WireSize(), full.WireSize())
	}
	if filtered.FilledCount() != 0 {
		t.Errorf("fully-masked filter kept %d entries", filtered.FilledCount())
	}
}

func TestBitVector(t *testing.T) {
	v := NewBitVector(130) // spans three words
	if v.Len() != 130 {
		t.Fatalf("Len = %d", v.Len())
	}
	for _, i := range []int{0, 63, 64, 127, 129} {
		v.Set(i)
	}
	for _, i := range []int{0, 63, 64, 127, 129} {
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.Get(1) || v.Get(128) {
		t.Error("unset bit reads as set")
	}
	if got := v.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if v.Get(-1) || v.Get(130) {
		t.Error("out-of-range Get should read clear")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range Set did not panic")
			}
		}()
		v.Set(130)
	}()
	if got := v.WireSize(); got != 17 {
		t.Errorf("WireSize = %d, want 17", got)
	}
}

func TestStateString(t *testing.T) {
	if StateT.String() != "T" || StateS.String() != "S" {
		t.Error("State.String mismatch")
	}
	if got := State(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown state renders %q", got)
	}
}

func TestTableStringRendersFigure1Style(t *testing.T) {
	tbl := New(p45, id.MustParse(p45, "21233"))
	tbl.Set(0, 1, nb(t, "33121", StateS))
	out := tbl.String()
	if !strings.Contains(out, "node 21233") {
		t.Errorf("header missing owner: %q", out)
	}
	if !strings.Contains(out, "33121/S") {
		t.Errorf("entry missing from render: %q", out)
	}
	if !strings.Contains(out, "digit 3") {
		t.Errorf("digit rows missing: %q", out)
	}
}

// Property: a snapshot agrees with its source table on every entry at the
// moment of the copy.
func TestQuickSnapshotFidelity(t *testing.T) {
	p := id.Params{B: 8, D: 6}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		owner := id.Random(p, r)
		tbl := New(p, owner)
		for n := 0; n < 30; n++ {
			level, digit := r.Intn(p.D), r.Intn(p.B)
			st := StateT
			if r.Intn(2) == 0 {
				st = StateS
			}
			tbl.Set(level, digit, Neighbor{ID: id.Random(p, r), State: st})
		}
		snap := tbl.Snapshot()
		for i := 0; i < p.D; i++ {
			for j := 0; j < p.B; j++ {
				if snap.Get(i, j) != tbl.Get(i, j) {
					return false
				}
			}
		}
		return snap.FilledCount() == tbl.FilledCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: FillVector bit (i*b+j) is set iff entry (i,j) is filled.
func TestQuickFillVector(t *testing.T) {
	p := id.Params{B: 8, D: 6}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl := New(p, id.Random(p, r))
		for n := 0; n < 25; n++ {
			tbl.Set(r.Intn(p.D), r.Intn(p.B), Neighbor{ID: id.Random(p, r), State: StateT})
		}
		v := tbl.FillVector()
		ok := true
		for i := 0; i < p.D; i++ {
			for j := 0; j < p.B; j++ {
				if v.Get(i*p.B+j) != !tbl.Get(i, j).IsZero() {
					ok = false
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSnapshot(b *testing.B) {
	p := id.Params{B: 16, D: 40}
	r := rand.New(rand.NewSource(1))
	tbl := New(p, id.Random(p, r))
	for i := 0; i < p.D; i++ {
		for j := 0; j < p.B; j++ {
			if r.Intn(4) == 0 {
				tbl.Set(i, j, Neighbor{ID: id.Random(p, r), State: StateS})
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tbl.Snapshot()
	}
}

func TestNeighborRefAndZero(t *testing.T) {
	var empty Neighbor
	if !empty.IsZero() {
		t.Error("zero Neighbor not IsZero")
	}
	if !empty.Ref().IsZero() {
		t.Error("zero Neighbor's Ref not IsZero")
	}
	n := Neighbor{ID: id.MustParse(p45, "21233"), Addr: "1.2.3.4:5", State: StateS}
	if n.IsZero() {
		t.Error("populated Neighbor reports zero")
	}
	r := n.Ref()
	if r.ID != n.ID || r.Addr != n.Addr || r.IsZero() {
		t.Errorf("Ref = %+v", r)
	}
}

func TestVersionTracksMutations(t *testing.T) {
	tbl := New(p45, id.MustParse(p45, "21233"))
	v0 := tbl.Version()
	n := nb(t, "01233", StateT)
	tbl.Set(3, 1, n)
	if tbl.Version() == v0 {
		t.Error("Set did not bump version")
	}
	v1 := tbl.Version()
	tbl.Set(3, 1, n) // identical write: no change
	if tbl.Version() != v1 {
		t.Error("no-op Set bumped version")
	}
	tbl.SetState(3, 1, n.ID, StateT) // state unchanged
	if tbl.Version() != v1 {
		t.Error("no-op SetState bumped version")
	}
	tbl.SetState(3, 1, n.ID, StateS)
	if tbl.Version() == v1 {
		t.Error("state change did not bump version")
	}
}

func TestSnapshotCacheInvalidation(t *testing.T) {
	tbl := New(p45, id.MustParse(p45, "21233"))
	tbl.Set(0, 1, nb(t, "33121", StateS))
	s1 := tbl.Snapshot()
	s2 := tbl.Snapshot()
	// Unchanged table: identical shared snapshot contents.
	if s1.Get(0, 1) != s2.Get(0, 1) || s1.FilledCount() != s2.FilledCount() {
		t.Error("consecutive snapshots differ")
	}
	tbl.Set(0, 2, nb(t, "21032", StateT))
	s3 := tbl.Snapshot()
	if s3.Get(0, 2).IsZero() {
		t.Error("snapshot after mutation is stale")
	}
	if !s1.Get(0, 2).IsZero() {
		t.Error("old snapshot mutated")
	}
}

func TestNewSnapshotRoundTrip(t *testing.T) {
	owner := id.MustParse(p45, "21233")
	entries := map[[2]int]Neighbor{
		{0, 1}: nb(t, "33121", StateS),
		{3, 0}: nb(t, "10233", StateT),
	}
	snap, err := NewSnapshot(p45, owner, 0, p45.D-1, entries)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Owner() != owner || snap.Params() != p45 {
		t.Error("snapshot metadata wrong")
	}
	if snap.Get(0, 1).ID.String() != "33121" || snap.Get(3, 0).ID.String() != "10233" {
		t.Error("entries lost")
	}
	count := 0
	snap.ForEach(func(level, digit int, n Neighbor) { count++ })
	if count != 2 {
		t.Errorf("ForEach visited %d", count)
	}
	// Level-range form.
	part, err := NewSnapshot(p45, owner, 2, 3, map[[2]int]Neighbor{{3, 0}: nb(t, "10233", StateS)})
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := part.LevelRange(); lo != 2 || hi != 3 {
		t.Errorf("range [%d,%d]", lo, hi)
	}
	// Inverted range yields an empty snapshot.
	inv, err := NewSnapshot(p45, owner, 3, 1, nil)
	if err != nil || inv.FilledCount() != 0 {
		t.Errorf("inverted range: %v, %d entries", err, inv.FilledCount())
	}
}

func TestNewSnapshotErrors(t *testing.T) {
	owner := id.MustParse(p45, "21233")
	if _, err := NewSnapshot(id.Params{B: 1, D: 5}, owner, 0, 4, nil); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := NewSnapshot(id.Params{B: 4, D: 8}, owner, 0, 7, nil); err == nil {
		t.Error("wrong-length owner accepted")
	}
	if _, err := NewSnapshot(p45, owner, -1, 4, nil); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := NewSnapshot(p45, owner, 0, 4, map[[2]int]Neighbor{{9, 0}: nb(t, "10233", StateS)}); err == nil {
		t.Error("out-of-range entry accepted")
	}
	if _, err := NewSnapshot(p45, owner, 0, 4, map[[2]int]Neighbor{{0, 9}: nb(t, "10233", StateS)}); err == nil {
		t.Error("out-of-range digit accepted")
	}
}

func TestBitVectorWordsRoundTrip(t *testing.T) {
	v := NewBitVector(100)
	for _, i := range []int{0, 31, 64, 99} {
		v.Set(i)
	}
	back := BitVectorFromWords(v.Words(), 100)
	if back.Count() != v.Count() {
		t.Fatalf("Count %d vs %d", back.Count(), v.Count())
	}
	for i := 0; i < 100; i++ {
		if back.Get(i) != v.Get(i) {
			t.Fatalf("bit %d differs", i)
		}
	}
	// Words returns a copy: mutating it does not affect the vector.
	w := v.Words()
	w[0] = 0
	if !v.Get(0) {
		t.Error("Words exposed internal storage")
	}
}

func TestSnapshotMissingIn(t *testing.T) {
	// Owner 21233's table with occupants at their canonical coordinates;
	// peer 00233 shares the rightmost three digits with the owner.
	owner := id.MustParse(p45, "21233")
	peer := id.MustParse(p45, "00233")
	tbl := New(p45, owner)
	tbl.Set(0, 1, nb(t, "33121", StateS)) // csuf(peer)=0, digit 1 -> bit 1
	tbl.Set(1, 0, nb(t, "00033", StateS)) // csuf(peer)=2, digit 0 -> bit 8... entry key below
	tbl.Set(3, 0, nb(t, "00233", StateS)) // the peer itself: never shipped
	tbl.Set(2, 1, nb(t, "01233", StateT)) // csuf(peer)=3, digit 1 -> bit 13

	// An empty digest pulls everything except the peer itself.
	empty := NewBitVector(p45.D * p45.B)
	got := tbl.Snapshot().MissingIn(peer, empty)
	if got.FilledCount() != 3 {
		t.Fatalf("FilledCount = %d with empty digest, want 3", got.FilledCount())
	}
	if !got.Get(3, 0).IsZero() {
		t.Fatal("peer shipped to itself")
	}
	// Entries keep their coordinates in the owner's table.
	if got.Get(2, 1).ID != id.MustParse(p45, "01233") {
		t.Fatalf("entry (2,1) = %v, want 01233", got.Get(2, 1).ID)
	}

	// Mark the slots 33121 and 00033 would land in (computed from the
	// IDs: level = csuf with the peer, digit = that level's digit) as
	// already filled: only 01233 still ships.
	fill := NewBitVector(p45.D * p45.B)
	for _, s := range []string{"33121", "00033"} {
		x := id.MustParse(p45, s)
		k := peer.CommonSuffixLen(x)
		fill.Set(k*p45.B + x.Digit(k))
	}
	got = tbl.Snapshot().MissingIn(peer, fill)
	if got.FilledCount() != 1 {
		t.Fatalf("FilledCount = %d with partial digest, want 1", got.FilledCount())
	}
	if got.Get(2, 1).IsZero() {
		t.Fatal("undigested entry was withheld")
	}

	// Converged steady state: the peer's digest covers every occupant's
	// peer-canonical slot, so nothing ships.
	x := id.MustParse(p45, "01233")
	k := peer.CommonSuffixLen(x)
	fill.Set(k*p45.B + x.Digit(k))
	if n := tbl.Snapshot().MissingIn(peer, fill).FilledCount(); n != 0 {
		t.Fatalf("converged digest still shipped %d entries", n)
	}
}
