package nemesis

import (
	"time"

	"hypercube/internal/id"
)

// Generator bounds. Each fault is kept inside the envelope the protocol
// is *specified* to survive, so a finding on a generated schedule is a
// bug, not an overdriven scenario:
//
//   - partitions cut a 40–50% minority: large enough that both sides'
//     detectors see a distressed fraction above the executor's
//     PartitionThreshold (0.3) and freeze declarations; a smaller
//     minority would be declared dead by design.
//   - cumulative crashes stay below ~15% of the current membership, well
//     under the partition threshold, so mass death never freezes the
//     detectors permanently.
//   - clock pauses stay under 3s, below the declaration window of the
//     executor's liveness settings (SuspectAfter 4 × 1s timeout plus 4
//     confirmation rounds ≥ 8s), so any declaration of a paused node is
//     a genuine false positive.
//   - loss bursts stay under 12%: the retransmission layer is specified
//     to ride that out without dead-lettering protocol traffic.
//   - at most ~8% of members turn byzantine, matching the guard layer's
//     design envelope, and they are marked exactly once per run.
const (
	genMaxCrashPct  = 15
	genMaxLossRate  = 0.12
	genMaxPauseDur  = 2500 * time.Millisecond
	genMaxByzFrac   = 0.08
	genPartMinFrac  = 0.40
	genPartMaxFrac  = 0.50
	genMinNodes     = 8
	genDefaultSteps = 8
)

// Generate derives a fault schedule from (seed, nodes, steps) alone.
// The same arguments always yield the identical schedule. Steps ≤ 0
// selects the default length. The generator tracks coarse network state
// (membership count, crash budget, whether byzantine members exist) so
// every emitted schedule stays inside the survivable envelope above;
// Validate-passing schedules outside that envelope can still be written
// by hand.
func Generate(seed uint64, p id.Params, nodes, steps int) Schedule {
	if nodes < genMinNodes {
		nodes = genMinNodes
	}
	if steps <= 0 {
		steps = genDefaultSteps
	}
	s := Schedule{Seed: seed, B: p.B, D: p.D, Nodes: nodes, Steps: make([]Action, 0, steps)}

	members := nodes
	crashed := 0
	byzMarked := false
	slowMarked := false
	sinceQuiesce := 0

	for i := 0; i < steps; i++ {
		r := newRNG(seed, uint64(i))

		// Candidate ops this state admits, weighted by repetition.
		var ops []Op
		add := func(op Op, weight int) {
			for k := 0; k < weight; k++ {
				ops = append(ops, op)
			}
		}
		add(OpJoinWave, 3)
		add(OpCrash, 2)
		add(OpPartition, 2)
		add(OpLoss, 2)
		add(OpPause, 2)
		add(OpRestart, 2)
		if !byzMarked {
			// Graceful leaves need acknowledgment round-trips through
			// reverse neighbors; a hostile holder can corrupt those, so
			// leaves are only generated while every member is honest.
			add(OpLeave, 2)
			add(OpByzantine, 1)
		}
		if !slowMarked {
			add(OpSlow, 1)
		}
		if sinceQuiesce >= 2 {
			add(OpQuiesce, 3)
		}

		a := Action{Op: ops[r.intn(len(ops))]}
		a.Gap = r.durBetween(500*time.Millisecond, 2*time.Second)
		switch a.Op {
		case OpJoinWave:
			a.Count = r.between(2, 5)
			members += a.Count
		case OpLeave:
			a.Count = r.between(1, 2)
			if members-a.Count < nodes/2 {
				a = Action{Op: OpQuiesce, Gap: a.Gap}
				break
			}
			members -= a.Count
		case OpCrash:
			a.Count = r.between(1, 2)
			if (crashed+a.Count)*100 > members*genMaxCrashPct || members-a.Count < nodes/2 {
				// Crash budget spent: settle instead, which resets nothing
				// but still probes the invariants.
				a = Action{Op: OpQuiesce, Gap: a.Gap}
				break
			}
			crashed += a.Count
			members -= a.Count
		case OpPartition:
			a.Frac = genPartMinFrac + r.float()*(genPartMaxFrac-genPartMinFrac)
			a.Dur = r.durBetween(2*time.Second, 5*time.Second)
		case OpSlow:
			a.Count = r.between(1, 2)
			slowMarked = true
		case OpByzantine:
			a.Frac = 0.02 + r.float()*(genMaxByzFrac-0.02)
			byzMarked = true
		case OpLoss:
			a.Rate = 0.05 + r.float()*(genMaxLossRate-0.05)
			a.Dur = r.durBetween(2*time.Second, 4*time.Second)
		case OpPause:
			a.Count = r.between(1, 2)
			a.Dur = r.durBetween(time.Second, genMaxPauseDur)
		case OpRestart:
			a.Count = r.between(1, 2)
			a.Corrupt = r.intn(4) == 0
		}
		if a.Op == OpQuiesce {
			sinceQuiesce = 0
		} else {
			sinceQuiesce++
		}
		s.Steps = append(s.Steps, a)
	}
	return s
}
