// Network initialization (§6.1): a network of n nodes is bootstrapped
// from a single node; the other n-1 join by executing the join protocol,
// here in concurrent batches. Consistency is verified after every batch —
// the join protocol doubles as the initialization protocol.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"hypercube/internal/id"
	"hypercube/internal/overlay"
)

func main() {
	p := id.Params{B: 16, D: 8}
	rng := rand.New(rand.NewSource(11))

	net := overlay.New(overlay.Config{Params: p})
	taken := make(map[id.ID]bool)
	seedRef := overlay.RandomRefs(p, 1, rng, taken)[0]
	net.AddSeed(seedRef)
	fmt.Printf("seed node %v: table holds only itself, status in_system\n\n", seedRef.ID)

	established := []struct{ id id.ID }{{seedRef.ID}}
	refs := overlay.RandomRefs(p, 255, rng, taken)
	batch := 1
	for len(refs) > 0 {
		// Batches double in size: 1, 2, 4, ... nodes joining concurrently,
		// each bootstrapping from a random established node.
		size := batch
		if size > len(refs) {
			size = len(refs)
		}
		wave := refs[:size]
		refs = refs[size:]
		start := net.Engine().Now()
		for _, ref := range wave {
			g0 := established[rng.Intn(len(established))]
			gRef, _ := net.Machine(g0.id)
			net.ScheduleJoin(ref, gRef.Self(), start)
		}
		net.Run()
		if v := net.CheckConsistency(); len(v) != 0 {
			fmt.Fprintf(os.Stderr, "netinit: inconsistent after batch of %d: %v\n", size, v[0])
			os.Exit(1)
		}
		for _, ref := range wave {
			established = append(established, struct{ id id.ID }{ref.ID})
		}
		fmt.Printf("batch of %3d concurrent joins -> network size %4d, consistent\n", size, net.Size())
		batch *= 2
	}
	fmt.Printf("\ninitialized a %d-node consistent network from one seed via the join protocol\n", net.Size())
	fmt.Printf("total messages delivered: %d (%.1f per node)\n",
		net.Delivered(), float64(net.Delivered())/float64(net.Size()))
}
