// Command figure15a regenerates Figure 15(a) of Liu & Lam (ICDCS 2003):
// the theoretical upper bound (Theorem 5) of the expected number of
// JoinNotiMsg sent by a joining node, as a function of the network size
// n, for the paper's four parameter combinations (m ∈ {500, 1000},
// b = 16, d ∈ {8, 40}).
//
// Output is a text table with one column per curve, directly comparable
// to the paper's plot (y-axis range 3..9 over n = 10000..100000).
package main

import (
	"flag"
	"fmt"
	"os"

	"hypercube/internal/analysis"
	"hypercube/internal/stats"
)

func main() {
	var (
		nMin  = flag.Int("nmin", 10_000, "smallest network size n")
		nMax  = flag.Int("nmax", 100_000, "largest network size n")
		nStep = flag.Int("nstep", 10_000, "step between n samples")
	)
	flag.Parse()
	if *nMin < 1 || *nMax < *nMin || *nStep < 1 {
		fmt.Fprintln(os.Stderr, "figure15a: invalid n range")
		os.Exit(1)
	}

	ns := make([]int, 0, (*nMax-*nMin) / *nStep + 1)
	for n := *nMin; n <= *nMax; n += *nStep {
		ns = append(ns, n)
	}
	series := analysis.Figure15a(analysis.PaperFigure15aCurves(), ns)

	fmt.Println("Figure 15(a): upper bound of E(J) — number of JoinNotiMsg per join (Theorem 5)")
	fmt.Println()
	fmt.Print(stats.FormatTable(series, "n"))
}
