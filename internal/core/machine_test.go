package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/netcheck"
	"hypercube/internal/table"
)

// pump is a minimal synchronous scheduler for machine tests: a queue of
// in-flight envelopes delivered one at a time. Delivery order is FIFO or,
// with a non-nil rng, random — emulating arbitrary network interleavings.
type pump struct {
	t        *testing.T
	params   id.Params
	machines map[id.ID]*core.Machine
	queue    []msg.Envelope
	rng      *rand.Rand
	steps    int
}

func newPump(t *testing.T, p id.Params, rng *rand.Rand) *pump {
	t.Helper()
	return &pump{t: t, params: p, machines: make(map[id.ID]*core.Machine), rng: rng}
}

// must unwraps an entry point's (envelopes, error) pair; tests that
// exercise legal transitions treat an error as fatal.
func must(envs []msg.Envelope, err error) []msg.Envelope {
	if err != nil {
		panic(err)
	}
	return envs
}

func (pp *pump) add(m *core.Machine) {
	pp.machines[m.Self().ID] = m
}

func (pp *pump) enqueue(envs []msg.Envelope) {
	pp.queue = append(pp.queue, envs...)
}

// run delivers messages until quiescence, failing the test on runaway.
func (pp *pump) run() {
	pp.t.Helper()
	const maxSteps = 5_000_000
	for len(pp.queue) > 0 {
		pp.steps++
		if pp.steps > maxSteps {
			pp.t.Fatalf("pump did not quiesce after %d deliveries", maxSteps)
		}
		i := 0
		if pp.rng != nil {
			i = pp.rng.Intn(len(pp.queue))
		}
		env := pp.queue[i]
		pp.queue[i] = pp.queue[len(pp.queue)-1]
		pp.queue = pp.queue[:len(pp.queue)-1]
		m, ok := pp.machines[env.To.ID]
		if !ok {
			pp.t.Fatalf("envelope to unknown node %v: %v", env.To.ID, env)
		}
		pp.enqueue(m.Deliver(env))
	}
}

func (pp *pump) tables() map[id.ID]*table.Table {
	out := make(map[id.ID]*table.Table, len(pp.machines))
	for x, m := range pp.machines {
		out[x] = m.Table()
	}
	return out
}

func (pp *pump) requireConsistent() {
	pp.t.Helper()
	if v := netcheck.CheckConsistency(pp.params, pp.tables()); len(v) > 0 {
		for i, violation := range v {
			if i >= 10 {
				pp.t.Errorf("... and %d more violations", len(v)-i)
				break
			}
			pp.t.Errorf("consistency: %v", violation)
		}
		pp.t.FailNow()
	}
	if v := netcheck.AllStatesS(pp.params, pp.tables()); len(v) > 0 {
		for _, violation := range v {
			pp.t.Errorf("state: %v", violation)
		}
		pp.t.FailNow()
	}
	if bad := netcheck.CheckAllPairsReachability(pp.params, pp.tables()); len(bad) > 0 {
		pp.t.Fatalf("%d unreachable pairs, first %v -> %v", len(bad), bad[0][0], bad[0][1])
	}
}

func (pp *pump) requireAllSNodes() {
	pp.t.Helper()
	for x, m := range pp.machines {
		if !m.IsSNode() {
			pp.t.Errorf("node %v stuck in status %v", x, m.Status())
		}
	}
	if pp.t.Failed() {
		pp.t.FailNow()
	}
}

func ref(p id.Params, s string) table.Ref {
	return table.Ref{ID: id.MustParse(p, s), Addr: "sim://" + s}
}

// joinAll makes every node in W join concurrently (all StartJoin calls
// enqueued before any delivery) and runs to quiescence.
func joinAll(pp *pump, bootstrap table.Ref, joiners []*core.Machine) {
	for _, j := range joiners {
		pp.add(j)
	}
	for _, j := range joiners {
		pp.enqueue(must(j.StartJoin(bootstrap)))
	}
	pp.run()
}

func TestStatusString(t *testing.T) {
	want := map[core.Status]string{
		core.StatusCopying:   "copying",
		core.StatusWaiting:   "waiting",
		core.StatusNotifying: "notifying",
		core.StatusInSystem:  "in_system",
	}
	for s, name := range want {
		if got := s.String(); got != name {
			t.Errorf("%d.String() = %q, want %q", s, got, name)
		}
	}
}

func TestSeedMachineIsConsistentAlone(t *testing.T) {
	p := id.Params{B: 4, D: 5}
	seed := core.NewSeed(p, ref(p, "21233"), core.Options{})
	if !seed.IsSNode() {
		t.Fatal("seed is not an S-node")
	}
	tables := map[id.ID]*table.Table{seed.Self().ID: seed.Table()}
	if v := netcheck.CheckConsistency(p, tables); len(v) > 0 {
		t.Fatalf("singleton network inconsistent: %v", v[0])
	}
	// Diagonal entries must hold the seed itself with state S.
	for i := 0; i < p.D; i++ {
		e := seed.Table().Get(i, seed.Self().ID.Digit(i))
		if e.ID != seed.Self().ID || e.State != table.StateS {
			t.Errorf("diagonal (%d) = %+v", i, e)
		}
	}
}

func TestSingleJoin(t *testing.T) {
	p := id.Params{B: 4, D: 5}
	pp := newPump(t, p, nil)
	seed := core.NewSeed(p, ref(p, "21233"), core.Options{})
	pp.add(seed)
	joiner := core.NewJoiner(p, ref(p, "03231"), core.Options{})
	joinAll(pp, seed.Self(), []*core.Machine{joiner})

	pp.requireAllSNodes()
	pp.requireConsistent()

	// Lemma 5.1: the two nodes reach each other.
	if _, ok := netcheck.Reachable(p, pp.tables(), seed.Self().ID, joiner.Self().ID); !ok {
		t.Error("seed cannot reach joiner")
	}
	if _, ok := netcheck.Reachable(p, pp.tables(), joiner.Self().ID, seed.Self().ID); !ok {
		t.Error("joiner cannot reach seed")
	}
}

func TestSingleJoinSharedSuffix(t *testing.T) {
	// Bootstrap shares digits with the joiner, exercising the multi-level
	// local copy path (same guide serves several levels).
	p := id.Params{B: 4, D: 5}
	pp := newPump(t, p, nil)
	seed := core.NewSeed(p, ref(p, "21233"), core.Options{})
	pp.add(seed)
	joiner := core.NewJoiner(p, ref(p, "01233"), core.Options{}) // csuf = 4
	joinAll(pp, seed.Self(), []*core.Machine{joiner})
	pp.requireAllSNodes()
	pp.requireConsistent()
	// The joiner needed only one table copy: every level is served by the
	// seed, so exactly one CpRst should have been sent.
	if got := joiner.Counters().SentOf(msg.TCpRst); got != 1 {
		t.Errorf("joiner sent %d CpRst, want 1", got)
	}
}

func TestSequentialJoins(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	pp := newPump(t, p, nil)
	rng := rand.New(rand.NewSource(11))
	seed := core.NewSeed(p, table.Ref{ID: id.Random(p, rng), Addr: "sim://seed"}, core.Options{})
	pp.add(seed)

	seen := map[id.ID]bool{seed.Self().ID: true}
	var members []table.Ref
	members = append(members, seed.Self())
	for n := 0; n < 40; n++ {
		x := id.Random(p, rng)
		for seen[x] {
			x = id.Random(p, rng)
		}
		seen[x] = true
		j := core.NewJoiner(p, table.Ref{ID: x, Addr: "sim://" + x.String()}, core.Options{})
		pp.add(j)
		// Bootstrap from a random established member (Lemma 5.2 setting).
		g0 := members[rng.Intn(len(members))]
		pp.enqueue(must(j.StartJoin(g0)))
		pp.run() // quiesce before next join: sequential joins
		if !j.IsSNode() {
			t.Fatalf("sequential joiner %v stuck in %v", x, j.Status())
		}
		pp.requireConsistent() // consistency holds after every single join
		members = append(members, j.Self())
	}
}

func TestConcurrentJoinsDeterministicOrder(t *testing.T) {
	testConcurrentJoins(t, nil, 30, 20)
}

func TestConcurrentJoinsRandomOrders(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			testConcurrentJoins(t, rand.New(rand.NewSource(seed)), 20, 30)
		})
	}
}

func testConcurrentJoins(t *testing.T, order *rand.Rand, nExisting, nJoin int) {
	t.Helper()
	p := id.Params{B: 4, D: 4}
	pp := newPump(t, p, order)
	rng := rand.New(rand.NewSource(4242))

	// Build the initial consistent network by sequential joins.
	seed := core.NewSeed(p, table.Ref{ID: id.Random(p, rng), Addr: "sim://seed"}, core.Options{})
	pp.add(seed)
	seen := map[id.ID]bool{seed.Self().ID: true}
	members := []table.Ref{seed.Self()}
	for len(members) < nExisting {
		x := id.Random(p, rng)
		if seen[x] {
			continue
		}
		seen[x] = true
		j := core.NewJoiner(p, table.Ref{ID: x, Addr: "sim://" + x.String()}, core.Options{})
		pp.add(j)
		pp.enqueue(must(j.StartJoin(members[rng.Intn(len(members))])))
		pp.run()
		members = append(members, j.Self())
	}
	pp.requireConsistent()

	// Now nJoin nodes join concurrently, bootstrapping from random
	// established members. This is the hard case: dependent concurrent
	// joins (Lemma 5.4 / Theorem 1).
	var joiners []*core.Machine
	for len(joiners) < nJoin {
		x := id.Random(p, rng)
		if seen[x] {
			continue
		}
		seen[x] = true
		joiners = append(joiners, core.NewJoiner(p, table.Ref{ID: x, Addr: "sim://" + x.String()}, core.Options{}))
	}
	for _, j := range joiners {
		pp.add(j)
	}
	for _, j := range joiners {
		pp.enqueue(must(j.StartJoin(members[rng.Intn(len(members))])))
	}
	pp.run()

	pp.requireAllSNodes()
	pp.requireConsistent()

	// Theorem 3: per joiner, #CpRst + #JoinWait <= d+1.
	for _, j := range joiners {
		c := j.Counters()
		if got := c.SentOf(msg.TCpRst) + c.SentOf(msg.TJoinWait); got > p.D+1 {
			t.Errorf("joiner %v sent %d CpRst+JoinWait, bound is %d", j.Self().ID, got, p.D+1)
		}
	}
}

func TestPaperSection3Example(t *testing.T) {
	// §3.3 example: b=8, d=5, V = {72430,10353,62332,13141,31701},
	// W = {10261, 47051, 00261} join concurrently. 10261 and 00261 have
	// noti-set V_1 (dependent joins); the C-set tree of Figure 2 forms.
	p := id.Params{B: 8, D: 5}
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("interleaving%d", seed), func(t *testing.T) {
			var order *rand.Rand
			if seed > 0 {
				order = rand.New(rand.NewSource(seed))
			}
			pp := newPump(t, p, order)

			vIDs := []string{"72430", "10353", "62332", "13141", "31701"}
			first := core.NewSeed(p, ref(p, vIDs[0]), core.Options{})
			pp.add(first)
			members := []table.Ref{first.Self()}
			for _, s := range vIDs[1:] {
				j := core.NewJoiner(p, ref(p, s), core.Options{})
				pp.add(j)
				pp.enqueue(must(j.StartJoin(members[len(members)-1])))
				pp.run()
				members = append(members, j.Self())
			}
			pp.requireConsistent()

			var joiners []*core.Machine
			for _, s := range []string{"10261", "47051", "00261"} {
				joiners = append(joiners, core.NewJoiner(p, ref(p, s), core.Options{}))
			}
			for i, j := range joiners {
				pp.add(j)
				_ = i
			}
			for i, j := range joiners {
				pp.enqueue(must(j.StartJoin(members[i%len(members)])))
			}
			pp.run()
			pp.requireAllSNodes()
			pp.requireConsistent()

			// Goal 2 explicitly: joining nodes reach each other.
			tables := pp.tables()
			for _, a := range joiners {
				for _, b := range joiners {
					if a == b {
						continue
					}
					if _, ok := netcheck.Reachable(p, tables, a.Self().ID, b.Self().ID); !ok {
						t.Errorf("%v cannot reach %v", a.Self().ID, b.Self().ID)
					}
				}
			}
		})
	}
}

func TestDependentConcurrentJoinsSameSuffix(t *testing.T) {
	// Two joiners believing they are the only node with suffix 261 — the
	// exact conflict scenario of §3.3. Under every interleaving, their
	// views must converge.
	p := id.Params{B: 8, D: 5}
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("interleaving%d", seed), func(t *testing.T) {
			var order *rand.Rand
			if seed > 0 {
				order = rand.New(rand.NewSource(seed))
			}
			pp := newPump(t, p, order)
			seedNode := core.NewSeed(p, ref(p, "13141"), core.Options{})
			pp.add(seedNode)
			a := core.NewJoiner(p, ref(p, "10261"), core.Options{})
			b := core.NewJoiner(p, ref(p, "00261"), core.Options{})
			joinAll(pp, seedNode.Self(), []*core.Machine{a, b})
			pp.requireAllSNodes()
			pp.requireConsistent()
		})
	}
}

func TestJoinWaitDeferredByTNode(t *testing.T) {
	// A joiner whose JoinWait lands on a still-joining node must be held
	// in Qj and answered when that node switches to S-node. We force the
	// scenario by delivering the second joiner's messages only after the
	// first has been stored (same noti-set, staged delivery).
	p := id.Params{B: 8, D: 5}
	pp := newPump(t, p, nil)
	seedNode := core.NewSeed(p, ref(p, "13141"), core.Options{})
	pp.add(seedNode)

	a := core.NewJoiner(p, ref(p, "10261"), core.Options{})
	b := core.NewJoiner(p, ref(p, "00261"), core.Options{})
	pp.add(a)
	pp.add(b)

	// Drive a to the point where it has been stored by the seed but is
	// still notifying (not yet S): deliver a's messages until it leaves
	// waiting.
	pp.enqueue(must(a.StartJoin(seedNode.Self())))
	for len(pp.queue) > 0 && a.Status() != core.StatusInSystem {
		env := pp.queue[0]
		pp.queue = pp.queue[1:]
		pp.enqueue(pp.machines[env.To.ID].Deliver(env))
	}
	pp.run()
	if !a.IsSNode() {
		t.Fatalf("a stuck in %v", a.Status())
	}

	// Now b joins; its JoinWait chain ends at a (negative from seed).
	pp.enqueue(must(b.StartJoin(seedNode.Self())))
	pp.run()
	pp.requireAllSNodes()
	pp.requireConsistent()
}

func TestNetworkInitializationFromSingleNode(t *testing.T) {
	// §6.1: initialize an n-node network by having n-1 nodes join a
	// 1-node network concurrently, all bootstrapping from the seed.
	p := id.Params{B: 4, D: 4}
	for _, n := range []int{2, 5, 17} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(n)))
			pp := newPump(t, p, rand.New(rand.NewSource(int64(n)*7+1)))
			seed := core.NewSeed(p, table.Ref{ID: id.Random(p, rng), Addr: "sim://seed"}, core.Options{})
			pp.add(seed)
			seen := map[id.ID]bool{seed.Self().ID: true}
			var joiners []*core.Machine
			for len(joiners) < n-1 {
				x := id.Random(p, rng)
				if seen[x] {
					continue
				}
				seen[x] = true
				joiners = append(joiners, core.NewJoiner(p, table.Ref{ID: x, Addr: "sim://" + x.String()}, core.Options{}))
			}
			joinAll(pp, seed.Self(), joiners)
			pp.requireAllSNodes()
			pp.requireConsistent()
		})
	}
}

func TestJoinStateReturnsToZero(t *testing.T) {
	// The paper's design goal: only joining nodes carry join state, and
	// after the join completes, no node retains any.
	p := id.Params{B: 4, D: 4}
	pp := newPump(t, p, rand.New(rand.NewSource(3)))
	rng := rand.New(rand.NewSource(9))
	seed := core.NewSeed(p, table.Ref{ID: id.Random(p, rng), Addr: "sim://s"}, core.Options{})
	pp.add(seed)
	seen := map[id.ID]bool{seed.Self().ID: true}
	var joiners []*core.Machine
	for len(joiners) < 15 {
		x := id.Random(p, rng)
		if seen[x] {
			continue
		}
		seen[x] = true
		joiners = append(joiners, core.NewJoiner(p, table.Ref{ID: x, Addr: "sim://" + x.String()}, core.Options{}))
	}
	joinAll(pp, seed.Self(), joiners)
	pp.requireAllSNodes()
	if got := seed.JoinStateSize(); got != 0 {
		t.Errorf("established node retains join state %d", got)
	}
	for _, j := range joiners {
		// Qn/Qsn are append-only logs of who was notified during the
		// node's own join; Qr, Qsr and Qj must drain to zero.
		if j.Status() != core.StatusInSystem {
			t.Errorf("joiner %v not in system", j.Self().ID)
		}
	}
}

func TestOptionsReduceMessageBytes(t *testing.T) {
	// §6.2: with ReduceLevels+BitVector the big-message byte volume of a
	// join wave must not grow, and the network must stay consistent.
	p := id.Params{B: 8, D: 6}
	run := func(opts core.Options) (int, *pump) {
		rng := rand.New(rand.NewSource(77))
		pp := newPump(t, p, rand.New(rand.NewSource(78)))
		seed := core.NewSeed(p, table.Ref{ID: id.Random(p, rng), Addr: "sim://s"}, opts)
		pp.add(seed)
		seen := map[id.ID]bool{seed.Self().ID: true}
		var joiners []*core.Machine
		for len(joiners) < 25 {
			x := id.Random(p, rng)
			if seen[x] {
				continue
			}
			seen[x] = true
			joiners = append(joiners, core.NewJoiner(p, table.Ref{ID: x, Addr: "sim://" + x.String()}, opts))
		}
		joinAll(pp, seed.Self(), joiners)
		pp.requireAllSNodes()
		pp.requireConsistent()
		total := 0
		for _, m := range pp.machines {
			total += m.Counters().BytesSent
		}
		return total, pp
	}
	plain, _ := run(core.Options{})
	reduced, _ := run(core.Options{ReduceLevels: true, BitVector: true})
	if reduced > plain {
		t.Errorf("§6.2 reductions grew traffic: %d > %d bytes", reduced, plain)
	}
}

func TestStartJoinErrors(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	j := core.NewJoiner(p, ref(p, "0123"), core.Options{})
	if _, err := j.StartJoin(ref(p, "0123")); err == nil {
		t.Error("StartJoin with self bootstrap did not error")
	}
	seed := core.NewSeed(p, ref(p, "3210"), core.Options{})
	if _, err := seed.StartJoin(ref(p, "0123")); err == nil {
		t.Error("StartJoin on in_system node did not error")
	}
	// A failed entry point must not have mutated the machine: the joiner
	// can still join normally afterwards.
	pp := newPump(t, p, nil)
	pp.add(seed)
	pp.add(j)
	pp.enqueue(must(j.StartJoin(seed.Self())))
	pp.run()
	pp.requireAllSNodes()
	pp.requireConsistent()
}

func TestDeliverWrongRecipientRejected(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	seed := core.NewSeed(p, ref(p, "3210"), core.Options{})
	out := seed.Deliver(msg.Envelope{From: ref(p, "0123"), To: ref(p, "1111"), Msg: msg.JoinWait{}})
	if len(out) != 0 {
		t.Errorf("misaddressed envelope produced %d messages, want 0", len(out))
	}
	if got := seed.GuardStats().Rejected; got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}
	if got := seed.Counters().RejectedOf(msg.TJoinWait); got != 1 {
		t.Errorf("RejectedOf(JoinWait) = %d, want 1", got)
	}
}

// Property-style sweep: many small random networks, arbitrary concurrent
// join waves and delivery orders — Theorems 1 and 2 must hold in all.
func TestQuickConcurrentJoinConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	p := id.Params{B: 4, D: 3} // tiny space (64 IDs) maximizes contention
	for trial := 0; trial < 60; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)*131 + 7))
			pp := newPump(t, p, rand.New(rand.NewSource(int64(trial)*977+3)))
			seed := core.NewSeed(p, table.Ref{ID: id.Random(p, rng), Addr: "sim://s"}, core.Options{})
			pp.add(seed)
			seen := map[id.ID]bool{seed.Self().ID: true}
			members := []table.Ref{seed.Self()}
			// Random-size initial network built sequentially.
			for n := rng.Intn(10); n > 0; n-- {
				x := id.Random(p, rng)
				if seen[x] {
					continue
				}
				seen[x] = true
				j := core.NewJoiner(p, table.Ref{ID: x, Addr: "sim://" + x.String()}, core.Options{})
				pp.add(j)
				pp.enqueue(must(j.StartJoin(members[rng.Intn(len(members))])))
				pp.run()
				members = append(members, j.Self())
			}
			// Random-size concurrent wave.
			var joiners []*core.Machine
			for n := 1 + rng.Intn(12); n > 0; n-- {
				x := id.Random(p, rng)
				if seen[x] {
					continue
				}
				seen[x] = true
				joiners = append(joiners, core.NewJoiner(p, table.Ref{ID: x, Addr: "sim://" + x.String()}, core.Options{}))
			}
			for _, j := range joiners {
				pp.add(j)
			}
			for _, j := range joiners {
				pp.enqueue(must(j.StartJoin(members[rng.Intn(len(members))])))
			}
			pp.run()
			pp.requireAllSNodes()
			pp.requireConsistent()
		})
	}
}

func TestMachineAccessors(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	pp := newPump(t, p, nil)
	seed := core.NewSeed(p, ref(p, "3210"), core.Options{})
	pp.add(seed)
	j := core.NewJoiner(p, ref(p, "0123"), core.Options{})
	joinAll(pp, seed.Self(), []*core.Machine{j})

	if j.Params() != p {
		t.Errorf("Params = %+v", j.Params())
	}
	if j.NotiLevel() != 0 {
		// csuf(3210, 0123) = 0, so the joiner notified at level 0.
		t.Errorf("NotiLevel = %d", j.NotiLevel())
	}
	snap := j.Snapshot()
	if snap.Owner() != j.Self().ID || snap.FilledCount() == 0 {
		t.Error("Snapshot empty or mis-owned")
	}
	// The seed stored the joiner, so the joiner's reverse set has the seed.
	found := false
	for _, r := range j.ReverseNeighbors() {
		if r.ID == seed.Self().ID {
			found = true
		}
	}
	if !found {
		t.Error("joiner's reverse set lacks the seed")
	}
}
