// Package id implements the identifier space of the hypercube routing
// scheme: fixed-length IDs of d digits in base b, with digit 0 being the
// rightmost (least significant) digit, following the notation of
// Liu & Lam (ICDCS 2003) and Plaxton, Rajaraman & Richa (SPAA 1997).
//
// IDs are immutable values and can be used as map keys. All suffix
// arithmetic ("the rightmost k digits") is provided here so that higher
// layers never manipulate raw digits.
package id

import (
	"crypto/sha1"
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// MaxBase is the largest supported digit base. Digits are printed with the
// characters 0-9 then a-z, so bases beyond 36 have no printable form.
const MaxBase = 36

const digitChars = "0123456789abcdefghijklmnopqrstuvwxyz"

// Params describe an ID space: every ID has exactly D digits of base B.
// The space therefore contains B^D distinct IDs.
type Params struct {
	B int // base of each digit (2..MaxBase)
	D int // number of digits (>= 1)
}

// Validate reports whether the parameters describe a usable ID space.
func (p Params) Validate() error {
	switch {
	case p.B < 2 || p.B > MaxBase:
		return fmt.Errorf("id: base %d out of range [2,%d]", p.B, MaxBase)
	case p.D < 1:
		return fmt.Errorf("id: digit count %d must be positive", p.D)
	default:
		return nil
	}
}

// Size returns the number of IDs in the space, saturating at the maximum
// float64 (the space can exceed 2^63 for large D).
func (p Params) Size() float64 {
	size := 1.0
	for i := 0; i < p.D; i++ {
		size *= float64(p.B)
	}
	return size
}

// ID is a node or object identifier: a string of D digits, stored with
// digit i at byte i, i.e. index 0 is the rightmost digit of the printed
// form. The zero value is the "null" ID, distinct from every valid ID.
type ID struct {
	// digits holds one byte per digit, index 0 = rightmost digit.
	digits string
}

// Null is the zero ID, used to represent "no node".
var Null ID

// IsNull reports whether x is the null ID.
func (x ID) IsNull() bool { return x.digits == "" }

// Len returns the number of digits in x (0 for the null ID).
func (x ID) Len() int { return len(x.digits) }

// Digit returns the i-th digit of x counting from the right (the paper's
// x[i]). It panics if i is out of range, which always indicates a
// programming error in the caller.
func (x ID) Digit(i int) int {
	if i < 0 || i >= len(x.digits) {
		panic(fmt.Sprintf("id: digit index %d out of range for %q", i, x.String()))
	}
	return int(x.digits[i])
}

// String renders the ID most-significant digit first, matching the paper's
// examples (e.g. "21233" with b=4, d=5).
func (x ID) String() string {
	if x.IsNull() {
		return "<null>"
	}
	var sb strings.Builder
	sb.Grow(len(x.digits))
	for i := len(x.digits) - 1; i >= 0; i-- {
		sb.WriteByte(digitChars[x.digits[i]])
	}
	return sb.String()
}

// CommonSuffixLen returns |csuf(x, y)|: the number of rightmost digits
// shared by x and y. Both IDs must come from the same space for the result
// to be meaningful; the shorter length bounds the answer.
func (x ID) CommonSuffixLen(y ID) int {
	n := len(x.digits)
	if len(y.digits) < n {
		n = len(y.digits)
	}
	k := 0
	for k < n && x.digits[k] == y.digits[k] {
		k++
	}
	return k
}

// WithDigit returns a copy of x with digit i (counting from the right)
// replaced by v. Used by surrogate routing, which resolves the final hops
// toward an object ID by substituting unmatchable digits.
func (x ID) WithDigit(i, v int) ID {
	if i < 0 || i >= len(x.digits) {
		panic(fmt.Sprintf("id: WithDigit index %d out of range for %q", i, x.String()))
	}
	if v < 0 || v >= MaxBase {
		panic(fmt.Sprintf("id: WithDigit value %d out of range", v))
	}
	b := []byte(x.digits)
	b[i] = byte(v)
	return ID{digits: string(b)}
}

// Suffix returns the rightmost k digits of x as a Suffix value.
// It panics if k is negative or exceeds the ID length.
func (x ID) Suffix(k int) Suffix {
	if k < 0 || k > len(x.digits) {
		panic(fmt.Sprintf("id: suffix length %d out of range for %q", k, x.String()))
	}
	return Suffix{digits: x.digits[:k]}
}

// SuffixMatch returns the number of rightmost digits of s that agree with
// x, i.e. the largest m <= |s| with x.Digit(i) == s.Digit(i) for i < m.
// m == |s| means x carries the whole suffix.
func (x ID) SuffixMatch(s Suffix) int {
	n := len(s.digits)
	if len(x.digits) < n {
		n = len(x.digits)
	}
	m := 0
	for m < n && x.digits[m] == s.digits[m] {
		m++
	}
	return m
}

// HasSuffix reports whether the rightmost |s| digits of x equal s.
func (x ID) HasSuffix(s Suffix) bool {
	if len(s.digits) > len(x.digits) {
		return false
	}
	return x.digits[:len(s.digits)] == s.digits
}

// Equal reports whether two IDs are identical. ID is comparable, so ==
// works too; Equal exists for readability at call sites.
func (x ID) Equal(y ID) bool { return x == y }

// Less imposes a total order on IDs (lexicographic most-significant digit
// first), useful for deterministic iteration in tests and tools.
func (x ID) Less(y ID) bool {
	n := len(x.digits)
	if len(y.digits) < n {
		n = len(y.digits)
	}
	for i := n - 1; i >= 0; i-- {
		if x.digits[i] != y.digits[i] {
			return x.digits[i] < y.digits[i]
		}
	}
	return len(x.digits) < len(y.digits)
}

// Suffix is a sequence of rightmost digits (possibly empty). Like ID it is
// immutable and comparable. The empty suffix matches every ID.
type Suffix struct {
	digits string // index 0 = rightmost digit
}

// EmptySuffix matches every ID.
var EmptySuffix Suffix

// Len returns the number of digits in the suffix (|omega|).
func (s Suffix) Len() int { return len(s.digits) }

// Digit returns the i-th digit of the suffix counting from the right.
func (s Suffix) Digit(i int) int {
	if i < 0 || i >= len(s.digits) {
		panic(fmt.Sprintf("id: suffix digit index %d out of range for %q", i, s.String()))
	}
	return int(s.digits[i])
}

// Extend returns the suffix j·s: digit j prepended on the left of s, i.e.
// the suffix one digit longer. It panics on an invalid digit value.
func (s Suffix) Extend(j int) Suffix {
	if j < 0 || j >= MaxBase {
		panic(fmt.Sprintf("id: digit %d out of range", j))
	}
	return Suffix{digits: s.digits + string(byte(j))}
}

// String renders the suffix most-significant digit first; the empty suffix
// renders as "ε".
func (s Suffix) String() string {
	if len(s.digits) == 0 {
		return "ε"
	}
	var sb strings.Builder
	sb.Grow(len(s.digits))
	for i := len(s.digits) - 1; i >= 0; i-- {
		sb.WriteByte(digitChars[s.digits[i]])
	}
	return sb.String()
}

// Parent returns the suffix with the leftmost digit removed (one digit
// shorter). It panics on the empty suffix.
func (s Suffix) Parent() Suffix {
	if len(s.digits) == 0 {
		panic("id: Parent of empty suffix")
	}
	return Suffix{digits: s.digits[:len(s.digits)-1]}
}

// Leading returns the leftmost (most significant) digit of the suffix.
func (s Suffix) Leading() int {
	if len(s.digits) == 0 {
		panic("id: Leading of empty suffix")
	}
	return int(s.digits[len(s.digits)-1])
}

// IsSuffixOf reports whether s is a suffix of t (every ID matching t also
// matches s).
func (s Suffix) IsSuffixOf(t Suffix) bool {
	if len(s.digits) > len(t.digits) {
		return false
	}
	return t.digits[:len(s.digits)] == s.digits
}

// AsID converts a full-length suffix into the ID it determines. It panics
// if the suffix is shorter than d digits.
func (s Suffix) AsID(p Params) ID {
	if len(s.digits) != p.D {
		panic(fmt.Sprintf("id: suffix %q has %d digits, want %d", s.String(), len(s.digits), p.D))
	}
	return ID{digits: s.digits}
}

// errParse is the sentinel wrapped by all Parse failures.
var errParse = errors.New("id: parse error")

// Parse converts the printed form (most-significant digit first) into an
// ID in space p. Digits use 0-9 then a-z.
func Parse(p Params, s string) (ID, error) {
	if err := p.Validate(); err != nil {
		return Null, err
	}
	if len(s) != p.D {
		return Null, fmt.Errorf("%w: %q has %d digits, want %d", errParse, s, len(s), p.D)
	}
	digits := make([]byte, p.D)
	for i := 0; i < p.D; i++ {
		c := s[p.D-1-i]
		v := strings.IndexByte(digitChars, c)
		if v < 0 || v >= p.B {
			return Null, fmt.Errorf("%w: %q has invalid digit %q for base %d", errParse, s, c, p.B)
		}
		digits[i] = byte(v)
	}
	return ID{digits: string(digits)}, nil
}

// MustParse is Parse that panics on error; for tests and fixed fixtures.
func MustParse(p Params, s string) ID {
	x, err := Parse(p, s)
	if err != nil {
		panic(err)
	}
	return x
}

// ParseSuffix converts a printed digit string into a Suffix (any length up
// to D). An empty string or "ε" yields the empty suffix.
func ParseSuffix(p Params, s string) (Suffix, error) {
	if s == "" || s == "ε" {
		return EmptySuffix, nil
	}
	if len(s) > p.D {
		return EmptySuffix, fmt.Errorf("%w: suffix %q longer than %d digits", errParse, s, p.D)
	}
	digits := make([]byte, len(s))
	for i := range digits {
		c := s[len(s)-1-i]
		v := strings.IndexByte(digitChars, c)
		if v < 0 || v >= p.B {
			return EmptySuffix, fmt.Errorf("%w: suffix %q has invalid digit %q for base %d", errParse, s, c, p.B)
		}
		digits[i] = byte(v)
	}
	return Suffix{digits: string(digits)}, nil
}

// MustParseSuffix is ParseSuffix that panics on error.
func MustParseSuffix(p Params, s string) Suffix {
	sf, err := ParseSuffix(p, s)
	if err != nil {
		panic(err)
	}
	return sf
}

// AppendRawDigits appends the ID's raw digit bytes to dst (index 0 =
// rightmost digit, one byte per digit, values in [0,b)) and returns the
// extended slice. It is the allocation-free wire form used by the binary
// codec; FromRawDigits is its inverse. The null ID appends nothing.
func (x ID) AppendRawDigits(dst []byte) []byte {
	return append(dst, x.digits...)
}

// FromRawDigits rebuilds an ID from the raw digit bytes produced by
// AppendRawDigits, validating length and digit range against p. Unlike
// Parse it works on wire-order digits (index 0 = rightmost) and never
// touches the printable form.
func FromRawDigits(p Params, raw []byte) (ID, error) {
	if err := p.Validate(); err != nil {
		return Null, err
	}
	if len(raw) != p.D {
		return Null, fmt.Errorf("%w: %d raw digits, want %d", errParse, len(raw), p.D)
	}
	for i, v := range raw {
		if int(v) >= p.B {
			return Null, fmt.Errorf("%w: raw digit %d at index %d out of range for base %d", errParse, v, i, p.B)
		}
	}
	return ID{digits: string(raw)}, nil
}

// AppendRawDigits appends the suffix's raw digit bytes to dst (index 0 =
// rightmost digit), the wire form inverted by SuffixFromRawDigits.
func (s Suffix) AppendRawDigits(dst []byte) []byte {
	return append(dst, s.digits...)
}

// SuffixFromRawDigits rebuilds a Suffix from raw wire-order digit bytes,
// validating length (at most D) and digit range against p.
func SuffixFromRawDigits(p Params, raw []byte) (Suffix, error) {
	if err := p.Validate(); err != nil {
		return EmptySuffix, err
	}
	if len(raw) > p.D {
		return EmptySuffix, fmt.Errorf("%w: suffix of %d raw digits longer than %d", errParse, len(raw), p.D)
	}
	for i, v := range raw {
		if int(v) >= p.B {
			return EmptySuffix, fmt.Errorf("%w: raw suffix digit %d at index %d out of range for base %d", errParse, v, i, p.B)
		}
	}
	return Suffix{digits: string(raw)}, nil
}

// FromDigits builds an ID from a digit slice with index 0 = rightmost
// digit. The slice is copied; it must have exactly D digits in range.
func FromDigits(p Params, digits []int) (ID, error) {
	if err := p.Validate(); err != nil {
		return Null, err
	}
	if len(digits) != p.D {
		return Null, fmt.Errorf("%w: %d digits, want %d", errParse, len(digits), p.D)
	}
	raw := make([]byte, p.D)
	for i, v := range digits {
		if v < 0 || v >= p.B {
			return Null, fmt.Errorf("%w: digit %d out of range for base %d", errParse, v, p.B)
		}
		raw[i] = byte(v)
	}
	return ID{digits: string(raw)}, nil
}

// Random draws an ID uniformly from space p using r.
func Random(p Params, r *rand.Rand) ID {
	digits := make([]byte, p.D)
	for i := range digits {
		digits[i] = byte(r.Intn(p.B))
	}
	return ID{digits: string(digits)}
}

// FromName hashes an arbitrary name (e.g. a URL or host:port) into the ID
// space using SHA-1, the scheme the paper suggests for assigning IDs.
// Hash bits are consumed per digit by rejection-free modular reduction;
// for power-of-two bases the mapping is exactly uniform.
func FromName(p Params, name string) ID {
	sum := sha1.Sum([]byte(name))
	digits := make([]byte, p.D)
	// Re-hash with a counter whenever the 20-byte block is exhausted so
	// arbitrarily large D is supported.
	block := sum[:]
	next := 0
	round := 0
	for i := range digits {
		if next >= len(block) {
			round++
			s := sha1.Sum([]byte(fmt.Sprintf("%s#%d", name, round)))
			block = s[:]
			next = 0
		}
		digits[i] = block[next] % byte(p.B)
		next++
	}
	return ID{digits: string(digits)}
}
