// Package trace defines the compact causal trace context propagated
// across nodes: a 16-byte trace ID naming one protocol operation (a
// join attempt, a probe, an anti-entropy round, a sample round, a DHT
// publish or lookup) and an 8-byte span ID naming one hop of it. The
// context rides inside msg.Envelope, crosses the network in the wire
// codec's v2 trailer (and the gob codec's trace fields), and is echoed
// into obs events so cmd/fleettrace can stitch per-node JSONL streams
// into cross-node span trees.
//
// Sampling is head-based: the decision is made once, when the root
// span is allocated. An unsampled operation gets the zero Context,
// which propagates nowhere and costs nothing downstream — emitters
// check Context.Sampled() (one comparison) before building any trace
// metadata, so tracing off stays within the nop-sink guardrail.
//
// ID generation is pluggable so the simulator stays deterministic:
// NewDeterministicGen derives a per-(seed,node) splitmix64 stream, the
// TCP runtime uses NewRandomGen (crypto/rand). Neither ever returns a
// zero ID — zero is reserved to mean "no context".
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
)

// TraceID identifies one protocol operation across every node it
// touches. The zero value means "untraced".
type TraceID [16]byte

// IsZero reports whether t is the absent trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders t as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// ParseTraceID parses the 32-hex-digit form produced by String.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if hex.DecodedLen(len(s)) != len(t) {
		return TraceID{}, fmt.Errorf("trace: trace ID %q: want %d hex digits", s, 2*len(t))
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("trace: trace ID %q: %w", s, err)
	}
	return t, nil
}

// SpanID identifies one hop (or the root) of a traced operation. The
// zero value means "no span".
type SpanID [8]byte

// IsZero reports whether s is the absent span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders s as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseSpanID parses the 16-hex-digit form produced by String.
func ParseSpanID(s string) (SpanID, error) {
	var x SpanID
	if hex.DecodedLen(len(s)) != len(x) {
		return SpanID{}, fmt.Errorf("trace: span ID %q: want %d hex digits", s, 2*len(x))
	}
	if _, err := hex.Decode(x[:], []byte(s)); err != nil {
		return SpanID{}, fmt.Errorf("trace: span ID %q: %w", s, err)
	}
	return x, nil
}

// Context is the propagated trace context: which operation this
// message belongs to and which span it is. The zero value is the
// absent context; a valid context always has both IDs non-zero (the
// sampling bit of the wire form is exactly this distinction).
type Context struct {
	Trace TraceID
	Span  SpanID
}

// Sampled reports whether the context is live — i.e. the operation's
// root made a positive head-sampling decision and the context should
// keep propagating.
func (c Context) Sampled() bool { return !c.Trace.IsZero() }

// Gen produces trace and span IDs. Implementations must be safe for
// concurrent use and must never return zero IDs.
type Gen interface {
	TraceID() TraceID
	SpanID() SpanID
}

// deterministicGen is a splitmix64 stream; the simulator derives one
// per (seed, node) so reruns produce identical IDs.
type deterministicGen struct {
	mu    sync.Mutex
	state uint64
}

// NewDeterministicGen returns a Gen drawing from a splitmix64 stream
// seeded with seed. Two gens with the same seed produce the same IDs,
// so derive per-node seeds (e.g. run seed mixed with the node ID hash)
// before fanning out.
func NewDeterministicGen(seed uint64) Gen {
	return &deterministicGen{state: seed}
}

func (g *deterministicGen) next() uint64 {
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (g *deterministicGen) TraceID() TraceID {
	g.mu.Lock()
	defer g.mu.Unlock()
	var t TraceID
	for t.IsZero() {
		binary.BigEndian.PutUint64(t[:8], g.next())
		binary.BigEndian.PutUint64(t[8:], g.next())
	}
	return t
}

func (g *deterministicGen) SpanID() SpanID {
	g.mu.Lock()
	defer g.mu.Unlock()
	var s SpanID
	for s.IsZero() {
		binary.BigEndian.PutUint64(s[:], g.next())
	}
	return s
}

// randomGen draws from crypto/rand — the right source for real
// deployments where IDs must not collide across independently started
// nodes.
type randomGen struct{}

// NewRandomGen returns a Gen backed by crypto/rand.
func NewRandomGen() Gen { return randomGen{} }

func (randomGen) TraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		if _, err := rand.Read(t[:]); err != nil {
			panic("trace: crypto/rand failed: " + err.Error())
		}
	}
	return t
}

func (randomGen) SpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		if _, err := rand.Read(s[:]); err != nil {
			panic("trace: crypto/rand failed: " + err.Error())
		}
	}
	return s
}

// Tracer makes head-sampling decisions and allocates spans. A nil
// *Tracer means tracing is off: Root and Child on nil return the zero
// Context, so call sites need no nil-checks beyond the ones they
// already do for sampled contexts.
type Tracer struct {
	gen Gen
	// threshold implements the sampling rate without floating point on
	// the hot path: a root is sampled when the low 32 bits of a fresh
	// span ID fall below it. 0 = never, 1<<32 = always.
	threshold uint64
}

// NewTracer builds a tracer sampling the given fraction (clamped to
// [0,1]) of operation roots from gen's ID streams.
func NewTracer(gen Gen, sample float64) *Tracer {
	if sample < 0 {
		sample = 0
	}
	if sample > 1 {
		sample = 1
	}
	return &Tracer{gen: gen, threshold: uint64(sample * (1 << 32))}
}

// Root starts a new operation: it makes the head-sampling decision and,
// when positive, returns a fresh context with a new trace ID and root
// span. When negative (or t is nil) it returns the zero Context and the
// operation propagates no trace state at all.
func (t *Tracer) Root() Context {
	if t == nil || t.threshold == 0 {
		return Context{}
	}
	span := t.gen.SpanID()
	if t.threshold < 1<<32 {
		if uint64(binary.BigEndian.Uint32(span[4:])) >= t.threshold {
			return Context{}
		}
	}
	return Context{Trace: t.gen.TraceID(), Span: span}
}

// Child allocates the next hop of parent's operation: same trace, new
// span. The zero context stays zero (unsampled operations never grow
// spans), as does any context when t is nil — a node without a tracer
// cannot mint spans and therefore appears as an opaque hop.
func (t *Tracer) Child(parent Context) Context {
	if t == nil || !parent.Sampled() {
		return Context{}
	}
	return Context{Trace: parent.Trace, Span: t.gen.SpanID()}
}
