package overlay

import (
	"fmt"
	"math/rand"

	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
)

// Byzantine configures adversarial members for fault injection: a node
// marked byzantine keeps running the correct protocol machine, but its
// outgoing traffic is randomly mutated (out-of-range scalars, corrupted
// table snapshots, misaddressed deliveries), withheld, or supplemented
// with verbatim replays of stale recorded messages. Honest nodes must
// absorb all of it through the guard layer: hostile envelopes are
// rejected and charged to the sender, repeat offenders are quarantined,
// and the network still converges to a consistent state.
//
// Probe traffic (Ping/Pong) is exempt: withholding probes only models a
// crash, which the liveness suite already covers; the byzantine model
// targets the protocol message layer.
type Byzantine struct {
	// Fraction of the candidates SelectByzantine marks, in [0,1].
	Fraction float64
	// CorruptRate is the per-envelope probability that a byzantine
	// sender's message is mutated or withheld. Default 0.25.
	CorruptRate float64
	// ReplayRate is the per-envelope probability that a byzantine sender
	// additionally replays a stale recorded message. Default 0.05.
	ReplayRate float64
	// Seed feeds the deterministic corruption stream.
	Seed int64
}

func (b *Byzantine) corruptRate() float64 {
	if b.CorruptRate <= 0 {
		return 0.25
	}
	return b.CorruptRate
}

func (b *Byzantine) replayRate() float64 {
	if b.ReplayRate <= 0 {
		return 0.05
	}
	return b.ReplayRate
}

// byzantineHistory bounds the replay buffer of recently sent messages.
const byzantineHistory = 64

// ByzantineStats tallies the fault model's activity.
type ByzantineStats struct {
	// Marked is how many nodes are currently byzantine.
	Marked int
	// Mutated counts envelopes altered in flight, Withheld envelopes
	// silently dropped by their sender, Replayed stale envelopes
	// re-injected.
	Mutated  uint64
	Withheld uint64
	Replayed uint64
}

// MarkByzantine marks the given members as byzantine. Panics unless the
// network was configured with Config.Byzantine.
func (n *Network) MarkByzantine(ids ...id.ID) {
	if n.cfg.Byzantine == nil {
		panic("overlay: MarkByzantine without Config.Byzantine")
	}
	for _, x := range ids {
		n.byz[x] = true
	}
}

// SelectByzantine deterministically draws Fraction of the candidates
// (rounded down), marks them byzantine, and returns their IDs. The draw
// depends only on Byzantine.Seed and the candidate order.
func (n *Network) SelectByzantine(candidates []table.Ref) []id.ID {
	b := n.cfg.Byzantine
	if b == nil {
		panic("overlay: SelectByzantine without Config.Byzantine")
	}
	count := int(b.Fraction * float64(len(candidates)))
	rng := rand.New(rand.NewSource(b.Seed ^ 0x42797a61)) // "Byza"
	perm := rng.Perm(len(candidates))
	out := make([]id.ID, 0, count)
	for _, i := range perm[:count] {
		out = append(out, candidates[i].ID)
	}
	n.MarkByzantine(out...)
	return out
}

// ByzantineStats returns the fault model's counters.
func (n *Network) ByzantineStats() ByzantineStats {
	return ByzantineStats{
		Marked:   len(n.byz),
		Mutated:  n.byzMutated,
		Withheld: n.byzWithheld,
		Replayed: n.byzReplayed,
	}
}

// isProbe reports whether env carries liveness-probe traffic.
func isProbe(env msg.Envelope) bool {
	t := env.Msg.Type()
	return t == msg.TPing || t == msg.TPong
}

// recordHistory keeps a bounded ring of honest traffic for replays.
func (n *Network) recordHistory(env msg.Envelope) {
	if n.cfg.Byzantine == nil || isProbe(env) {
		return
	}
	if len(n.byzHistory) < byzantineHistory {
		n.byzHistory = append(n.byzHistory, env)
		return
	}
	n.byzHistory[n.byzHistoryNext] = env
	n.byzHistoryNext = (n.byzHistoryNext + 1) % byzantineHistory
}

// corruptOutgoing applies the byzantine fault model to one envelope a
// marked sender emits, returning what actually enters the network.
func (n *Network) corruptOutgoing(env msg.Envelope) []msg.Envelope {
	b := n.cfg.Byzantine
	var out []msg.Envelope
	if !isProbe(env) && n.byzRng.Float64() < b.corruptRate() {
		if mutated, keep := n.mutateEnvelope(env); keep {
			n.byzMutated++
			out = append(out, mutated)
		} else {
			n.byzWithheld++
		}
	} else {
		out = append(out, env)
	}
	if len(n.byzHistory) > 0 && !isProbe(env) && n.byzRng.Float64() < b.replayRate() {
		n.byzReplayed++
		out = append(out, n.byzHistory[n.byzRng.Intn(len(n.byzHistory))])
	}
	return out
}

// mutateEnvelope picks one corruption. The sender identity is never
// forged: misbehavior must be attributable so the scorer charges the
// byzantine node, not an innocent one.
func (n *Network) mutateEnvelope(env msg.Envelope) (msg.Envelope, bool) {
	switch n.byzRng.Intn(4) {
	case 0:
		// Withhold: the message silently disappears at the sender.
		return env, false
	case 1:
		// Retarget: deliver to a random other member, which must reject
		// the misaddressed envelope.
		if to, ok := n.randomMember(env.To.ID); ok {
			env.To = to
			return env, true
		}
		return env, false
	case 2:
		env.Msg = scrambleScalars(env.Msg)
		return env, true
	default:
		// Corrupt the attached table snapshot where the message carries
		// one; otherwise fall back to scalar corruption.
		if m, ok := corruptTable(n.cfg.Params, env); ok {
			return m, true
		}
		env.Msg = scrambleScalars(env.Msg)
		return env, true
	}
}

// randomMember draws a deterministic random member other than exclude.
func (n *Network) randomMember(exclude id.ID) (table.Ref, bool) {
	members := n.Members()
	cands := members[:0]
	for _, r := range members {
		if r.ID != exclude {
			cands = append(cands, r)
		}
	}
	if len(cands) == 0 {
		return table.Ref{}, false
	}
	return cands[n.byzRng.Intn(len(cands))], true
}

// scrambleScalars corrupts a scalar field of the payload into a value
// semantic validation must reject; message kinds without a convenient
// scalar are replaced wholesale by an out-of-range CpRst.
func scrambleScalars(m msg.Message) msg.Message {
	switch v := m.(type) {
	case msg.CpRst:
		v.Level = 99
		return v
	case msg.RvNghNoti:
		v.Digit = -1
		return v
	case msg.RvNghNotiRly:
		v.Level = 1 << 20
		return v
	default:
		return msg.CpRst{Level: -7}
	}
}

// corruptTable swaps the envelope's table snapshot for one that is
// structurally well-formed but violates the suffix invariant, so only
// semantic validation catches it. Returns ok=false for messages that
// carry no table.
func corruptTable(p id.Params, env msg.Envelope) (msg.Envelope, bool) {
	bad := hostileSnapshot(p, env.From)
	switch m := env.Msg.(type) {
	case msg.CpRly:
		m.Table = bad
		env.Msg = m
	case msg.JoinWaitRly:
		m.Table = bad
		env.Msg = m
	case msg.JoinNoti:
		m.Table = bad
		env.Msg = m
	case msg.JoinNotiRly:
		m.Table = bad
		env.Msg = m
	case msg.Leave:
		m.Table = bad
		env.Msg = m
	case msg.SyncRly:
		m.Table = bad
		env.Msg = m
	case msg.SyncPush:
		m.Table = bad
		env.Msg = m
	default:
		return env, false
	}
	return env, true
}

// hostileSnapshot builds a snapshot owned by the sender whose single
// entry does not qualify for its slot: the owner itself filed under a
// level-0 digit that is not its own rightmost digit.
func hostileSnapshot(p id.Params, from table.Ref) table.Snapshot {
	j := (from.ID.Digit(0) + 1) % p.B
	entries := map[[2]int]table.Neighbor{
		{0, j}: {ID: from.ID, Addr: from.Addr, State: table.StateS},
	}
	snap, err := table.NewSnapshot(p, from.ID, 0, 0, entries)
	if err != nil {
		panic(fmt.Sprintf("overlay: hostile snapshot construction: %v", err))
	}
	return snap
}
