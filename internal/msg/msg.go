// Package msg defines the protocol messages of the join protocol
// (Liu & Lam, ICDCS 2003, Figure 4) and their cost accounting.
//
// The paper's §5.2 distinguishes "big" messages — those carrying a copy of
// a neighbor table (CpRlyMsg, JoinWaitRlyMsg, JoinNotiMsg, JoinNotiRlyMsg)
// — from small fixed-size messages. WireSize implements that accounting so
// simulations can report both message counts and byte volumes.
package msg

import (
	"fmt"

	"hypercube/internal/id"
	"hypercube/internal/table"
	"hypercube/internal/trace"
)

// Type enumerates the message types of Figure 4.
type Type uint8

const (
	// TCpRst requests a copy of the receiver's neighbor table (status copying).
	TCpRst Type = iota + 1
	// TCpRly answers a CpRstMsg with the sender's table.
	TCpRly
	// TJoinWait announces a waiting joiner to the node that should store it.
	TJoinWait
	// TJoinWaitRly answers a JoinWaitMsg (positive or negative).
	TJoinWaitRly
	// TJoinNoti announces a notifying joiner, carrying its table.
	TJoinNoti
	// TJoinNotiRly answers a JoinNotiMsg.
	TJoinNotiRly
	// TInSysNoti tells reverse-neighbors the sender became an S-node.
	TInSysNoti
	// TSpeNoti informs the receiver of the existence of node Y.
	TSpeNoti
	// TSpeNotiRly answers a SpeNotiMsg back to the original sender X.
	TSpeNotiRly
	// TRvNghNoti tells the receiver that the sender stored it as a neighbor.
	TRvNghNoti
	// TRvNghNotiRly corrects the state bit carried by a RvNghNotiMsg.
	TRvNghNotiRly

	// The following message types implement the extensions the paper
	// names as future work in §7 (leave, failure recovery, neighbor
	// table optimization); they are not part of the ICDCS 2003 protocol.

	// TLeave announces a graceful departure, carrying the leaver's table
	// so holders can repair their entries locally.
	TLeave
	// TLeaveRly acknowledges a LeaveMsg after repair.
	TLeaveRly
	// TFind routes a query for any live node with a wanted ID suffix.
	TFind
	// TFindRly answers a FindMsg to its origin.
	TFindRly
	// TPing probes a node for liveness (directly or via a relay).
	TPing
	// TPong answers a PingMsg to its origin.
	TPong
	// TFailedNoti gossips a declared crash to co-holders.
	TFailedNoti
	// TSyncReq opens an anti-entropy round, carrying the sender's fill
	// vector as a compact table digest.
	TSyncReq
	// TSyncRly answers a SyncReqMsg with the entries the requester is
	// missing plus the replier's own fill vector.
	TSyncRly
	// TSyncPush completes an anti-entropy round with the entries the
	// replier turned out to be missing.
	TSyncPush
	// TSamplePush asks the receiver to consider the sender for its
	// peer-sampling view (Brahms push).
	TSamplePush
	// TSamplePullReq asks the receiver for its peer-sampling view.
	TSamplePullReq
	// TSamplePullRly answers a SamplePullReqMsg with the sender's view.
	TSamplePullRly

	numTypes = int(TSamplePullRly)
)

// NumTypes is the number of defined message types; valid Type values are
// 1..NumTypes. Codecs use it to bound kind bytes read off the wire.
const NumTypes = numTypes

var typeNames = [...]string{
	TCpRst:         "CpRstMsg",
	TCpRly:         "CpRlyMsg",
	TJoinWait:      "JoinWaitMsg",
	TJoinWaitRly:   "JoinWaitRlyMsg",
	TJoinNoti:      "JoinNotiMsg",
	TJoinNotiRly:   "JoinNotiRlyMsg",
	TInSysNoti:     "InSysNotiMsg",
	TSpeNoti:       "SpeNotiMsg",
	TSpeNotiRly:    "SpeNotiRlyMsg",
	TRvNghNoti:     "RvNghNotiMsg",
	TRvNghNotiRly:  "RvNghNotiRlyMsg",
	TLeave:         "LeaveMsg",
	TLeaveRly:      "LeaveRlyMsg",
	TFind:          "FindMsg",
	TFindRly:       "FindRlyMsg",
	TPing:          "PingMsg",
	TPong:          "PongMsg",
	TFailedNoti:    "FailedNotiMsg",
	TSyncReq:       "SyncReqMsg",
	TSyncRly:       "SyncRlyMsg",
	TSyncPush:      "SyncPushMsg",
	TSamplePush:    "SamplePushMsg",
	TSamplePullReq: "SamplePullReqMsg",
	TSamplePullRly: "SamplePullRlyMsg",
}

// String returns the paper's name for the message type.
func (t Type) String() string {
	if int(t) < len(typeNames) && typeNames[t] != "" {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Types lists all message types in declaration order, for iteration in
// counters and tests.
func Types() []Type {
	out := make([]Type, 0, numTypes)
	for t := TCpRst; t <= TSamplePullRly; t++ {
		out = append(out, t)
	}
	return out
}

// Result is the positive/negative verdict carried by reply messages.
type Result uint8

const (
	// Negative means the receiver had already stored another node in the
	// entry the sender was a candidate for.
	Negative Result = iota + 1
	// Positive means the receiver stored the sender in its table.
	Positive
)

// String renders the result as the paper's word.
func (r Result) String() string {
	switch r {
	case Negative:
		return "negative"
	case Positive:
		return "positive"
	default:
		return fmt.Sprintf("Result(%d)", uint8(r))
	}
}

// Message is implemented by all protocol messages.
type Message interface {
	// Type identifies the message kind.
	Type() Type
	// Big reports whether the message carries a neighbor-table copy
	// (the §5.2 "big message" class).
	Big() bool
	// WireSize estimates the encoded size in bytes for traffic accounting.
	WireSize() int
}

// smallHeader approximates the fixed overhead of any message on the wire:
// type byte, two node references, and a sequence number.
const smallHeader = 32

// CpRst requests a copy of the receiver's table. The joiner copies level
// Level of the reply; the level is carried for tracing only — the reply
// always contains the full table so the joiner can continue locally while
// consecutive levels are served by the same node.
type CpRst struct {
	Level int
}

// Type implements Message.
func (CpRst) Type() Type { return TCpRst }

// Big implements Message.
func (CpRst) Big() bool { return false }

// WireSize implements Message.
func (CpRst) WireSize() int { return smallHeader + 2 }

// CpRly carries the sender's table in response to a CpRst.
type CpRly struct {
	Table table.Snapshot
}

// Type implements Message.
func (CpRly) Type() Type { return TCpRly }

// Big implements Message.
func (CpRly) Big() bool { return true }

// WireSize implements Message.
func (m CpRly) WireSize() int { return smallHeader + m.Table.WireSize() }

// JoinWait notifies the receiver that the sender is waiting to be stored
// in its table (sent in status waiting).
type JoinWait struct{}

// Type implements Message.
func (JoinWait) Type() Type { return TJoinWait }

// Big implements Message.
func (JoinWait) Big() bool { return false }

// WireSize implements Message.
func (JoinWait) WireSize() int { return smallHeader }

// JoinWaitRly answers a JoinWait. On Negative, U is the node already
// occupying the entry the sender should try next. The replier's table is
// attached in both cases.
type JoinWaitRly struct {
	R     Result
	U     table.Ref
	Table table.Snapshot
}

// Type implements Message.
func (JoinWaitRly) Type() Type { return TJoinWaitRly }

// Big implements Message.
func (JoinWaitRly) Big() bool { return true }

// WireSize implements Message.
func (m JoinWaitRly) WireSize() int { return smallHeader + 1 + refSize(m.U) + m.Table.WireSize() }

// JoinNoti announces a notifying joiner; it carries the joiner's table.
// FillVector optionally carries the §6.2 bit vector so the receiver can
// filter its reply; a zero-length vector disables the optimization.
type JoinNoti struct {
	Table      table.Snapshot
	FillVector table.BitVector
	// NotiLevel is the sender's noti_level; with the bit-vector reduction
	// the receiver always ships levels >= NotiLevel regardless of the mask.
	NotiLevel int
}

// Type implements Message.
func (JoinNoti) Type() Type { return TJoinNoti }

// Big implements Message.
func (JoinNoti) Big() bool { return true }

// WireSize implements Message.
func (m JoinNoti) WireSize() int {
	return smallHeader + m.Table.WireSize() + m.FillVector.WireSize()
}

// JoinNotiRly answers a JoinNoti with the receiver's table. F is the flag
// of Figure 9: true when the replier is an S-node absent from the correct
// entry of the joiner's table, which triggers a SpeNoti.
type JoinNotiRly struct {
	R     Result
	Table table.Snapshot
	F     bool
}

// Type implements Message.
func (JoinNotiRly) Type() Type { return TJoinNotiRly }

// Big implements Message.
func (JoinNotiRly) Big() bool { return true }

// WireSize implements Message.
func (m JoinNotiRly) WireSize() int { return smallHeader + 2 + m.Table.WireSize() }

// InSysNoti tells a reverse-neighbor that the sender's status changed to
// in_system.
type InSysNoti struct{}

// Type implements Message.
func (InSysNoti) Type() Type { return TInSysNoti }

// Big implements Message.
func (InSysNoti) Big() bool { return false }

// WireSize implements Message.
func (InSysNoti) WireSize() int { return smallHeader }

// SpeNoti informs the receiver of the existence of node Y; X is the
// original sender awaiting the final reply. Forwarded at most d times.
type SpeNoti struct {
	X table.Ref
	Y table.Ref
}

// Type implements Message.
func (SpeNoti) Type() Type { return TSpeNoti }

// Big implements Message.
func (SpeNoti) Big() bool { return false }

// WireSize implements Message.
func (m SpeNoti) WireSize() int { return smallHeader + refSize(m.X) + refSize(m.Y) }

// SpeNotiRly closes out a SpeNoti chain back to X.
type SpeNotiRly struct {
	X table.Ref
	Y table.Ref
}

// Type implements Message.
func (SpeNotiRly) Type() Type { return TSpeNotiRly }

// Big implements Message.
func (SpeNotiRly) Big() bool { return false }

// WireSize implements Message.
func (m SpeNotiRly) WireSize() int { return smallHeader + refSize(m.X) + refSize(m.Y) }

// RvNghNoti tells the receiver that the sender stored it in entry
// (Level,Digit) with the given state, making the sender a
// reverse-neighbor of the receiver.
type RvNghNoti struct {
	Level int
	Digit int
	State table.State
}

// Type implements Message.
func (RvNghNoti) Type() Type { return TRvNghNoti }

// Big implements Message.
func (RvNghNoti) Big() bool { return false }

// WireSize implements Message.
func (RvNghNoti) WireSize() int { return smallHeader + 5 }

// RvNghNotiRly corrects the state bit of the sender's entry for the
// replier: S if the replier is in_system, T otherwise.
type RvNghNotiRly struct {
	Level int
	Digit int
	State table.State
}

// Type implements Message.
func (RvNghNotiRly) Type() Type { return TRvNghNotiRly }

// Big implements Message.
func (RvNghNotiRly) Big() bool { return false }

// WireSize implements Message.
func (RvNghNotiRly) WireSize() int { return smallHeader + 5 }

func refSize(r table.Ref) int {
	if r.IsZero() {
		return 1
	}
	return r.ID.Len() + len(r.Addr) + 2
}

// Envelope is a routed message: who sent it, who should receive it, and
// the payload. Transports move envelopes; the protocol machine produces
// and consumes them.
type Envelope struct {
	From table.Ref
	To   table.Ref
	Msg  Message
	// Trace is the causal trace context the envelope carries across the
	// network (zero — the common case — means untraced). It rides in the
	// wire codec's v2 trailer and does not count toward WireSize, which
	// models the paper's §5.2 payload accounting.
	Trace trace.Context
}

// WireSize is the envelope's total accounting size.
func (e Envelope) WireSize() int { return e.Msg.WireSize() }

// String renders a compact trace form.
func (e Envelope) String() string {
	return fmt.Sprintf("%v -> %v: %v", e.From.ID, e.To.ID, e.Msg.Type())
}

// Counters tallies messages by type, split into sent/received and
// big/small classes, plus byte volume. Retried and Dropped account for
// the transport's reliable-delivery layer: a message is Retried each
// time a delivery attempt fails and is re-tried, and Dropped
// (dead-lettered) when the transport gives up on it entirely. The zero
// value is ready to use.
type Counters struct {
	Sent     [numTypes + 1]int
	Received [numTypes + 1]int
	Retried  [numTypes + 1]int
	Dropped  [numTypes + 1]int
	// Rejected counts messages the guard layer refused at ingress:
	// semantic validation failures, unknown types, and traffic from
	// quarantined peers. Index 0 holds rejects whose type is unknown.
	Rejected [numTypes + 1]int
	// BytesSent accumulates WireSize over sent messages.
	BytesSent int
}

// CountSent records an outgoing message.
func (c *Counters) CountSent(m Message) {
	c.Sent[m.Type()]++
	c.BytesSent += m.WireSize()
}

// CountReceived records an incoming message.
func (c *Counters) CountReceived(m Message) {
	c.Received[m.Type()]++
}

// CountRetried records one failed-and-retried delivery attempt of a
// message of type t.
func (c *Counters) CountRetried(t Type) {
	c.Retried[t]++
}

// CountDropped records a message of type t the transport dead-lettered
// after exhausting its delivery attempts (or because its outbound queue
// overflowed).
func (c *Counters) CountDropped(t Type) {
	c.Dropped[t]++
}

// CountRejected records a message of type t refused by the guard layer.
// Types outside the known range (including 0 for "unknown") land in
// bucket 0, so a hostile type value can never index out of bounds.
func (c *Counters) CountRejected(t Type) {
	if int(t) > numTypes {
		t = 0
	}
	c.Rejected[t]++
}

// RejectedOf returns the number of guard-rejected messages of type t.
func (c *Counters) RejectedOf(t Type) int {
	if int(t) > numTypes {
		t = 0
	}
	return c.Rejected[t]
}

// TotalRejected returns the number of guard-rejected messages across all
// types (including unknown-type rejects in bucket 0).
func (c *Counters) TotalRejected() int {
	total := 0
	for _, n := range c.Rejected {
		total += n
	}
	return total
}

// SentOf returns the number of sent messages of type t.
func (c *Counters) SentOf(t Type) int { return c.Sent[t] }

// ReceivedOf returns the number of received messages of type t.
func (c *Counters) ReceivedOf(t Type) int { return c.Received[t] }

// RetriedOf returns the number of retried delivery attempts for type t.
func (c *Counters) RetriedOf(t Type) int { return c.Retried[t] }

// DroppedOf returns the number of dead-lettered messages of type t.
func (c *Counters) DroppedOf(t Type) int { return c.Dropped[t] }

// TotalRetried returns the number of retried delivery attempts across
// all types.
func (c *Counters) TotalRetried() int {
	total := 0
	for _, n := range c.Retried {
		total += n
	}
	return total
}

// TotalDropped returns the number of dead-lettered messages across all
// types.
func (c *Counters) TotalDropped() int {
	total := 0
	for _, n := range c.Dropped {
		total += n
	}
	return total
}

// TotalSent returns the number of messages sent across all types.
func (c *Counters) TotalSent() int {
	total := 0
	for _, n := range c.Sent {
		total += n
	}
	return total
}

// BigSent returns the number of sent messages in the §5.2 "big" class.
func (c *Counters) BigSent() int {
	return c.Sent[TCpRly] + c.Sent[TJoinWaitRly] + c.Sent[TJoinNoti] + c.Sent[TJoinNotiRly]
}

// Add accumulates other into c.
func (c *Counters) Add(other *Counters) {
	for i := range c.Sent {
		c.Sent[i] += other.Sent[i]
		c.Received[i] += other.Received[i]
		c.Retried[i] += other.Retried[i]
		c.Dropped[i] += other.Dropped[i]
		c.Rejected[i] += other.Rejected[i]
	}
	c.BytesSent += other.BytesSent
}

// Leave announces the sender's graceful departure (a §7 extension). The
// attached table lets every holder repair the entries the leaver occupied:
// a consistent table of a node with suffix ω always contains another
// member of V_ω' for every inhabited suffix ω' of ω (see core's leave
// implementation for the argument).
type Leave struct {
	Table table.Snapshot
}

// Type implements Message.
func (Leave) Type() Type { return TLeave }

// Big implements Message.
func (Leave) Big() bool { return true }

// WireSize implements Message.
func (m Leave) WireSize() int { return smallHeader + m.Table.WireSize() }

// LeaveRly acknowledges a LeaveMsg once the receiver finished repairing.
type LeaveRly struct{}

// Type implements Message.
func (LeaveRly) Type() Type { return TLeaveRly }

// Big implements Message.
func (LeaveRly) Big() bool { return false }

// WireSize implements Message.
func (LeaveRly) WireSize() int { return smallHeader }

// Find routes a query for any live node whose ID carries the wanted
// suffix (a §7 extension used by failure recovery). Origin receives the
// FindRly; Avoid marks a node known to have failed, so forwarding through
// it is reported as Blocked instead.
type Find struct {
	Want   id.Suffix
	Origin table.Ref
	Avoid  id.ID
}

// Type implements Message.
func (Find) Type() Type { return TFind }

// Big implements Message.
func (Find) Big() bool { return false }

// WireSize implements Message.
func (m Find) WireSize() int { return smallHeader + m.Want.Len() + refSize(m.Origin) + m.Avoid.Len() }

// FindRly answers a Find: Found is a node with the wanted suffix (zero if
// provably none exists), Blocked reports that the route ran through the
// avoided node and the query should be retried after repairs progress.
type FindRly struct {
	Want    id.Suffix
	Found   table.Neighbor
	Blocked bool
}

// Type implements Message.
func (FindRly) Type() Type { return TFindRly }

// Big implements Message.
func (FindRly) Big() bool { return false }

// WireSize implements Message.
func (m FindRly) WireSize() int { return smallHeader + m.Want.Len() + m.Found.ID.Len() + 8 }
