package overlay

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/netcheck"
	"hypercube/internal/table"
	"hypercube/internal/topology"
)

var p164 = id.Params{B: 16, D: 4}

func TestConstantLatency(t *testing.T) {
	f := ConstantLatency(7 * time.Millisecond)
	if got := f(table.Ref{}, table.Ref{}); got != 7*time.Millisecond {
		t.Errorf("latency = %v", got)
	}
}

func TestHashedUniformLatency(t *testing.T) {
	p := id.Params{B: 16, D: 8}
	rng := rand.New(rand.NewSource(1))
	refs := RandomRefs(p, 20, rng, nil)
	f := HashedUniformLatency(5*time.Millisecond, 50*time.Millisecond, 9)
	for i := 0; i < len(refs); i++ {
		for j := 0; j < len(refs); j++ {
			l := f(refs[i], refs[j])
			if l < 5*time.Millisecond || l >= 50*time.Millisecond {
				t.Fatalf("latency %v out of range", l)
			}
			if l != f(refs[j], refs[i]) {
				t.Fatal("latency not symmetric")
			}
			if l != f(refs[i], refs[j]) {
				t.Fatal("latency not deterministic")
			}
		}
	}
	// Degenerate range.
	g := HashedUniformLatency(5*time.Millisecond, 5*time.Millisecond, 9)
	if got := g(refs[0], refs[1]); got != 5*time.Millisecond {
		t.Errorf("degenerate range latency = %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("inverted range did not panic")
			}
		}()
		HashedUniformLatency(10*time.Millisecond, 5*time.Millisecond, 0)
	}()
}

func TestRandomRefs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	taken := make(map[id.ID]bool)
	a := RandomRefs(p164, 100, rng, taken)
	b := RandomRefs(p164, 100, rng, taken)
	seen := make(map[id.ID]bool)
	for _, r := range append(a, b...) {
		if seen[r.ID] {
			t.Fatalf("duplicate ID %v", r.ID)
		}
		seen[r.ID] = true
		if r.Addr == "" {
			t.Fatal("empty address")
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("overfull draw did not panic")
			}
		}()
		RandomRefs(id.Params{B: 2, D: 3}, 9, rng, nil)
	}()
}

func TestBuildDirectIsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := New(Config{Params: p164})
	net.BuildDirect(RandomRefs(p164, 200, rng, nil), rng)
	if v := net.CheckConsistency(); len(v) != 0 {
		t.Fatalf("BuildDirect inconsistent: %v", v[0])
	}
	if v := netcheck.AllStatesS(p164, net.Tables()); len(v) != 0 {
		t.Fatalf("BuildDirect states: %v", v[0])
	}
	if net.Size() != 200 {
		t.Errorf("Size = %d", net.Size())
	}
	if got := len(net.Members()); got != 200 {
		t.Errorf("Members = %d", got)
	}
}

func TestBuildByJoinsIsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := New(Config{Params: p164})
	if err := net.BuildByJoins(RandomRefs(p164, 30, rng, nil), rng); err != nil {
		t.Fatal(err)
	}
	if v := net.CheckConsistency(); len(v) != 0 {
		t.Fatalf("BuildByJoins inconsistent: %v", v[0])
	}
	if got := len(net.Joins()); got != 29 {
		t.Errorf("join records = %d, want 29", got)
	}
}

func TestBuildByJoinsEmpty(t *testing.T) {
	net := New(Config{Params: p164})
	if err := net.BuildByJoins(nil, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("empty BuildByJoins did not error")
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := New(Config{Params: p164})
	refs := RandomRefs(p164, 2, rng, nil)
	net.AddSeed(refs[0])
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate AddSeed did not panic")
			}
		}()
		net.AddSeed(refs[0])
	}()
}

func TestConcurrentWave(t *testing.T) {
	res, err := RunWave(WaveConfig{Params: p164, N: 100, M: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSNodes {
		t.Fatal("some joiners did not become S-nodes (Theorem 2 violated)")
	}
	if !res.Consistent() {
		t.Fatalf("network inconsistent (Theorem 1 violated): %v", res.Violations[0])
	}
	if len(res.Records) != 60 {
		t.Fatalf("records = %d", len(res.Records))
	}
	for _, rec := range res.Records {
		if rec.Ended < rec.Started {
			t.Errorf("join %v ended before it started", rec.Ref.ID)
		}
		// Theorem 3.
		if got := rec.CpRstSent + rec.JoinWaitSent; got > p164.D+1 {
			t.Errorf("join %v sent %d CpRst+JoinWait > d+1", rec.Ref.ID, got)
		}
		if rec.JoinNotiSent < 0 || rec.BytesSent <= 0 {
			t.Errorf("implausible record %+v", rec)
		}
	}
	if res.MeanJoinNoti() <= 0 {
		t.Errorf("mean JoinNoti = %v", res.MeanJoinNoti())
	}
	if res.VirtualDuration <= 0 || res.Events == 0 {
		t.Errorf("duration %v events %d", res.VirtualDuration, res.Events)
	}
}

func TestWaveWithTopologyLatency(t *testing.T) {
	topo, err := topology.Generate(topology.Small(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWave(WaveConfig{Params: p164, N: 80, M: 40, Seed: 11, Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSNodes || !res.Consistent() {
		t.Fatalf("topology wave failed: S-nodes=%v violations=%d", res.AllSNodes, len(res.Violations))
	}
}

func TestWaveStaggered(t *testing.T) {
	res, err := RunWave(WaveConfig{Params: p164, N: 60, M: 40, Seed: 13, Stagger: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSNodes || !res.Consistent() {
		t.Fatal("staggered wave failed")
	}
	// With staggering, join start times must differ.
	starts := make(map[time.Duration]bool)
	for _, rec := range res.Records {
		starts[rec.Started] = true
	}
	if len(starts) < 2 {
		t.Error("staggered starts all identical")
	}
}

func TestWaveInvalidConfig(t *testing.T) {
	if _, err := RunWave(WaveConfig{Params: p164, N: 0, M: 5}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := RunWave(WaveConfig{Params: p164, N: 5, M: -1}); err == nil {
		t.Error("m<0 accepted")
	}
}

func TestWaveReproducible(t *testing.T) {
	run := func() []int {
		res, err := RunWave(WaveConfig{Params: p164, N: 50, M: 30, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return res.JoinNoti
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("JoinNoti diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestJoinsSinceAndPending(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := New(Config{Params: p164})
	refs := RandomRefs(p164, 10, rng, nil)
	net.BuildDirect(refs[:5], rng)
	for _, r := range refs[5:] {
		net.ScheduleJoin(r, refs[0], 0)
	}
	if got := net.PendingJoins(); got != 0 {
		// Joins are pending only once their start event fires.
		t.Logf("pending before run: %d", got)
	}
	net.Run()
	if got := net.PendingJoins(); got != 0 {
		t.Errorf("PendingJoins after quiescence = %d", got)
	}
	if got := len(net.JoinsSince(0)); got != 5 {
		t.Errorf("JoinsSince(0) = %d", got)
	}
	if got := len(net.JoinsSince(time.Hour)); got != 0 {
		t.Errorf("JoinsSince(1h) = %d", got)
	}
	if net.Delivered() == 0 {
		t.Error("no messages delivered")
	}
}

func TestAggregateTrafficMatchesPerNode(t *testing.T) {
	res := 0
	_ = res
	rng := rand.New(rand.NewSource(31))
	net := New(Config{Params: p164})
	refs := RandomRefs(p164, 12, rng, nil)
	net.BuildDirect(refs[:6], rng)
	for _, r := range refs[6:] {
		net.ScheduleJoin(r, refs[rng.Intn(6)], 0)
	}
	net.Run()
	agg := net.AggregateTraffic()
	if agg.TotalSent() == 0 {
		t.Fatal("no traffic recorded")
	}
	// Every CpRst has exactly one CpRly, etc. (request/reply pairing).
	pairs := [][2]msg.Type{
		{msg.TCpRst, msg.TCpRly},
		{msg.TJoinWait, msg.TJoinWaitRly},
		{msg.TJoinNoti, msg.TJoinNotiRly},
		{msg.TSpeNoti, msg.TSpeNotiRly},
	}
	for _, pair := range pairs {
		if agg.SentOf(pair[0]) != agg.SentOf(pair[1]) {
			t.Errorf("%v sent %d but %v sent %d", pair[0], agg.SentOf(pair[0]), pair[1], agg.SentOf(pair[1]))
		}
	}
	// All sent messages were delivered (reliable network).
	for _, typ := range msg.Types() {
		if agg.SentOf(typ) != agg.ReceivedOf(typ) {
			t.Errorf("%v: sent %d != received %d", typ, agg.SentOf(typ), agg.ReceivedOf(typ))
		}
	}
}

func TestTopologyLatencyUnboundPanics(t *testing.T) {
	topo, err := topology.Generate(topology.Small(1))
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTopologyLatency(topo)
	f := tl.Func()
	defer func() {
		if recover() == nil {
			t.Error("unbound latency query did not panic")
		}
	}()
	p := id.Params{B: 4, D: 3}
	f(table.Ref{ID: id.MustParse(p, "000")}, table.Ref{ID: id.MustParse(p, "111")})
}

// TestMediumScaleWaves runs several parameter combinations closer to the
// paper's setups (hex digits, larger N) and asserts Theorems 1-3 in each.
func TestMediumScaleWaves(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale waves")
	}
	cases := []WaveConfig{
		{Params: id.Params{B: 16, D: 8}, N: 300, M: 150, Seed: 1},
		{Params: id.Params{B: 16, D: 40}, N: 200, M: 100, Seed: 2},
		{Params: id.Params{B: 4, D: 6}, N: 150, M: 150, Seed: 3},
		{Params: id.Params{B: 2, D: 10}, N: 100, M: 80, Seed: 4},
		{Params: id.Params{B: 16, D: 8}, N: 300, M: 150, Seed: 5,
			Opts: core.Options{ReduceLevels: true, BitVector: true}},
	}
	for i, cfg := range cases {
		cfg := cfg
		t.Run(fmt.Sprintf("case%d_b%d_d%d", i, cfg.Params.B, cfg.Params.D), func(t *testing.T) {
			t.Parallel()
			res, err := RunWave(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllSNodes {
				t.Fatal("Theorem 2 violated")
			}
			if !res.Consistent() {
				t.Fatalf("Theorem 1 violated: %v", res.Violations[0])
			}
			for _, rec := range res.Records {
				if rec.CpRstSent+rec.JoinWaitSent > cfg.Params.D+1 {
					t.Errorf("Theorem 3 violated for %v", rec.Ref.ID)
				}
			}
		})
	}
}

func TestJoinWaveUnderLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := New(Config{
		Params: p164,
		Loss:   &Loss{Rate: 0.10, RetryDelay: 20 * time.Millisecond, MaxAttempts: 8, Seed: 33},
	})
	refs := RandomRefs(p164, 40, rng, nil)
	net.BuildDirect(refs[:20], rng)
	joiners := make([]*core.Machine, 0, 20)
	for _, r := range refs[20:] {
		g0 := refs[rng.Intn(20)]
		joiners = append(joiners, net.ScheduleJoin(r, g0, 0))
	}
	net.Run()
	for i, m := range joiners {
		if !m.IsSNode() {
			t.Fatalf("joiner %v (%d) stuck in %v under loss", m.Self().ID, i, m.Status())
		}
	}
	if v := net.CheckConsistency(); len(v) != 0 {
		t.Fatalf("network inconsistent under loss: %v (of %d)", v[0], len(v))
	}
	if net.Retransmits() == 0 {
		t.Error("10% loss produced no retransmissions; loss model inert")
	}
	if net.LostMessages() != 0 {
		t.Errorf("%d messages dead-lettered at 10%% loss with 8 attempts", net.LostMessages())
	}
	t.Logf("delivered=%d retransmits=%d lost=%d", net.Delivered(), net.Retransmits(), net.LostMessages())
}

func TestLossDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		rng := rand.New(rand.NewSource(5))
		net := New(Config{Params: p164, Loss: &Loss{Rate: 0.2, Seed: 9}})
		refs := RandomRefs(p164, 12, rng, nil)
		net.BuildDirect(refs[:6], rng)
		for _, r := range refs[6:] {
			net.ScheduleJoin(r, refs[0], 0)
		}
		net.Run()
		return net.Delivered(), net.Retransmits()
	}
	d1, r1 := run()
	d2, r2 := run()
	if d1 != d2 || r1 != r2 {
		t.Fatalf("lossy run not deterministic: (%d,%d) vs (%d,%d)", d1, r1, d2, r2)
	}
}
