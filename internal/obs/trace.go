package obs

import (
	"sort"
	"strconv"
	"time"
)

// JoinSpan is one node's join attempt reconstructed from a trace: from
// its first join_start (or first copying transition, whichever arrives
// first) to its in_system transition. Phase durations follow the
// paper's lifecycle: copying (neighbor-table construction via CpRstMsg
// walks), waiting (JoinWaitMsg sent, blocked on the gateway's notify
// grant), notifying (JoinNotiMsg flood until the last reply).
type JoinSpan struct {
	Node      string
	Start     time.Duration // first join activity observed
	End       time.Duration // in_system transition; zero if !Completed
	Copying   time.Duration
	Waiting   time.Duration
	Notifying time.Duration
	Restarts  int  // timeout-driven join restarts (join_start with N>0)
	Completed bool // reached in_system
}

// Total returns the full join latency, zero if the join never finished.
func (s JoinSpan) Total() time.Duration {
	if !s.Completed {
		return 0
	}
	return s.End - s.Start
}

// Summary is the aggregate view of one trace.
type Summary struct {
	Events    int
	Nodes     int
	Joins     []JoinSpan     // completed and incomplete, by start time
	Sent      map[string]int // message-type name -> send count
	Received  map[string]int
	Retries   int
	Drops     int
	Resends   int
	GiveUps   int
	Probes    int
	ProbeMiss int
	Suspects  int
	Declared  int
	Repairs   int // repair_start events
	SyncRound int
	// Guard-layer activity (hostile-input hardening).
	GuardRejects int // semantically invalid messages rejected
	GuardDrops   int // unvalidated drops: unknown types, quarantined senders
	Quarantines  int // peers quarantined for repeated misbehavior
	Releases     int // quarantines released after cooldown
	Busy         int // budget-exceeded deferrals
	// Gray-failure (adaptive timeout) activity. ProbeRTTs holds the
	// measured round-trip of each answered direct probe (probe event
	// paired with its probe_ack by node and sequence number), capped at
	// probeRTTCap samples; LatePongs counts acks that arrived after
	// their probe expired (Detail "late").
	ProbeRTTs       []time.Duration
	LatePongs       int
	Degraded        int // degraded-flag marks
	DegradedCleared int
	Span            time.Duration // time of the last event
}

// Completed returns only the joins that reached in_system.
func (s *Summary) Completed() []JoinSpan {
	out := make([]JoinSpan, 0, len(s.Joins))
	for _, j := range s.Joins {
		if j.Completed {
			out = append(out, j)
		}
	}
	return out
}

type joinState struct {
	span      JoinSpan
	started   bool
	phase     string // current status
	phaseAt   time.Duration
	everJoins bool // saw a join_start (distinguishes joiners from seeds)
}

// Analyzer consumes a stream of events (in trace order) and reduces it
// to a Summary. Feed events with Feed, then call Summary once. It is
// streaming — memory is O(nodes + message types), not O(events) — so
// large soak traces analyze in one pass.
type Analyzer struct {
	joins map[string]*joinState
	sum   Summary

	// probeAt holds the send time of each not-yet-answered direct probe,
	// keyed by node+"|"+seq, for RTT pairing. Misses evict their entry;
	// the map is additionally capped so a trace with pathological loss
	// cannot grow it without bound.
	probeAt map[string]time.Duration
}

// probePendingCap bounds the in-flight probe-pairing map; probeRTTCap
// bounds the collected RTT samples (enough for percentile stability on
// soak-length traces without holding every sample of a long run).
const (
	probePendingCap = 1 << 16
	probeRTTCap     = 1 << 18
)

// NewAnalyzer creates an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		joins:   make(map[string]*joinState),
		probeAt: make(map[string]time.Duration),
		sum: Summary{
			Sent:     make(map[string]int),
			Received: make(map[string]int),
		},
	}
}

// probeKey identifies one probe across its probe/probe_ack pair: the
// prober's node name plus the probe sequence number (per-node unique).
func probeKey(e Event) string {
	return e.Node + "|" + strconv.FormatUint(e.Seq, 10)
}

func (a *Analyzer) node(name string) *joinState {
	js, ok := a.joins[name]
	if !ok {
		js = &joinState{span: JoinSpan{Node: name}}
		a.joins[name] = js
	}
	return js
}

// Feed processes one event.
func (a *Analyzer) Feed(e Event) {
	a.sum.Events++
	if e.T > a.sum.Span {
		a.sum.Span = e.T
	}
	switch e.Kind {
	case KindJoinStart:
		js := a.node(e.Node)
		js.everJoins = true
		if !js.started {
			js.started = true
			js.span.Start = e.T
		}
		if e.N > 0 {
			js.span.Restarts++
		}
	case KindStatus:
		js := a.node(e.Node)
		if e.Detail == "copying" && !js.started {
			js.started = true
			js.span.Start = e.T
		}
		if js.started && !js.span.Completed && js.phase != "" {
			d := e.T - js.phaseAt
			switch js.phase {
			case "copying":
				js.span.Copying += d
			case "waiting":
				js.span.Waiting += d
			case "notifying":
				js.span.Notifying += d
			}
		}
		if e.Detail == "in_system" && js.started && !js.span.Completed {
			js.span.Completed = true
			js.span.End = e.T
		}
		js.phase = e.Detail
		js.phaseAt = e.T
	case KindSend:
		a.sum.Sent[e.Msg]++
	case KindRecv:
		a.sum.Received[e.Msg]++
	case KindRetry:
		a.sum.Retries++
	case KindDrop:
		a.sum.Drops++
	case KindResend:
		a.sum.Resends++
	case KindGiveUp:
		a.sum.GiveUps++
	case KindProbe:
		a.sum.Probes++
		// Track direct probes for RTT pairing. Indirect probes measure
		// the relay's path too, so they are excluded — same rule the
		// estimator applies. Entries persist past a probe_miss because
		// the ack may still arrive late; the cap bounds the leak from
		// probes that never get answered at all.
		if e.Detail != "indirect" && len(a.probeAt) < probePendingCap {
			a.probeAt[probeKey(e)] = e.T
		}
	case KindProbeAck:
		if e.Detail == "late" {
			a.sum.LatePongs++
		}
		key := probeKey(e)
		if at, ok := a.probeAt[key]; ok {
			delete(a.probeAt, key)
			if rtt := e.T - at; rtt > 0 && len(a.sum.ProbeRTTs) < probeRTTCap {
				a.sum.ProbeRTTs = append(a.sum.ProbeRTTs, rtt)
			}
		}
	case KindProbeMiss:
		a.sum.ProbeMiss++
	case KindDegraded:
		a.sum.Degraded++
	case KindDegradedClear:
		a.sum.DegradedCleared++
	case KindSuspect:
		a.sum.Suspects++
	case KindDeclared:
		a.sum.Declared++
	case KindRepairStart:
		a.sum.Repairs++
	case KindSyncRound:
		a.sum.SyncRound++
	case KindGuardReject:
		a.sum.GuardRejects++
	case KindGuardDrop:
		a.sum.GuardDrops++
	case KindQuarantine:
		a.sum.Quarantines++
	case KindQuarantineRelease:
		a.sum.Releases++
	case KindBusy:
		a.sum.Busy++
	}
}

// Summary finalizes and returns the aggregate. Nodes that only ever
// appear as in_system (wave seeds booted directly into the table, no
// join_start and no copying transition) are not counted as joins.
func (a *Analyzer) Summary() *Summary {
	a.sum.Nodes = len(a.joins)
	a.sum.Joins = a.sum.Joins[:0]
	for _, js := range a.joins {
		if js.started {
			a.sum.Joins = append(a.sum.Joins, js.span)
		}
	}
	sort.Slice(a.sum.Joins, func(i, j int) bool {
		if a.sum.Joins[i].Start != a.sum.Joins[j].Start {
			return a.sum.Joins[i].Start < a.sum.Joins[j].Start
		}
		return a.sum.Joins[i].Node < a.sum.Joins[j].Node
	})
	return &a.sum
}

// Analyze is the one-shot form: feed every event, return the summary.
func Analyze(events []Event) *Summary {
	a := NewAnalyzer()
	for _, e := range events {
		a.Feed(e)
	}
	return a.Summary()
}

// Percentile returns the p-th percentile (0..100, nearest-rank) of the
// given durations; zero if empty. Used by cmd/tracestat for the Figure
// 15-style join-latency distribution.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(float64(len(sorted))*p/100 + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
