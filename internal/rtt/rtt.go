// Package rtt estimates per-peer round-trip times and derives retry
// deadlines from them — the measured-RTT substrate of the gray-failure
// extension (and of future proximity neighbor selection).
//
// The paper's failure model is crash-only: a node is either correct or
// silent, so one global probe timeout suffices. Real overlays mostly
// degrade instead of dying — a peer stays alive but answers 10× slower,
// or one direction of a link drags. A fixed timeout then fails both
// ways at once: tuned to the fast majority it declares slow-but-alive
// peers dead, tuned to the slow tail it detects genuine crashes late.
// The standard repair is Jacobson/Karels estimation (the TCP RTO
// discipline): track a smoothed RTT and its mean deviation per peer and
// time out at srtt + 4·rttvar, clamped to [MinRTO, MaxRTO].
//
// The estimator is deliberately clock-agnostic and deterministic: it
// never reads a clock — callers hand it measured samples as
// time.Duration values — and its arithmetic is pure integer EWMA, so
// the overlay simulator replays bit-identically under virtual time
// while tcptransport feeds it wall-clock samples. One Estimator serves
// one node and tracks all of that node's peers; it carries its own lock
// because two subsystems share it (the liveness prober feeds probe
// RTTs, core.Machine feeds request/reply round-trips) and in the TCP
// runtime those run under different locks.
//
// On top of the per-peer RTO the estimator derives a "degraded" health
// flag: a peer whose smoothed RTT stays persistently inflated relative
// to the node's other peers (the cross-peer median) is marked degraded,
// with hysteresis so a borderline peer does not flap. Consumers
// deprioritize degraded peers (anti-entropy partner choice, the
// sampling validator) without declaring them dead — gray failure is a
// health state, not a crash.
package rtt

import (
	"sort"
	"sync"
	"time"

	"hypercube/internal/id"
)

// Config tunes an Estimator. The zero value is usable: every field
// falls back to the default documented on it.
type Config struct {
	// MinRTO floors the derived retry timeout: below it, scheduler
	// granularity and queueing jitter dominate the measurement and a
	// timeout would misfire on noise. Default 100ms.
	MinRTO time.Duration
	// MaxRTO caps the derived retry timeout so a peer with a wildly
	// inflated history cannot push detection latency unboundedly.
	// Default 10s.
	MaxRTO time.Duration
	// DegradedFactor marks a peer degraded when its smoothed RTT
	// exceeds this multiple of the cross-peer median; the flag clears
	// (hysteresis) when it falls back to half the multiple. Default 4.
	DegradedFactor float64
	// DegradedMinSamples is how many samples a peer needs before it can
	// be judged degraded. Default 4.
	DegradedMinSamples int
	// DegradedMinPeers is how many tracked peers the estimator needs
	// before the cross-peer median is meaningful. Default 4.
	DegradedMinPeers int
}

func (c Config) withDefaults() Config {
	if c.MinRTO <= 0 {
		c.MinRTO = 100 * time.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 10 * time.Second
	}
	if c.MaxRTO < c.MinRTO {
		c.MaxRTO = c.MinRTO
	}
	if c.DegradedFactor <= 1 {
		c.DegradedFactor = 4
	}
	if c.DegradedMinSamples <= 0 {
		c.DegradedMinSamples = 4
	}
	if c.DegradedMinPeers <= 0 {
		c.DegradedMinPeers = 4
	}
	return c
}

// Stats is a snapshot of the estimator's activity, for admin endpoints
// and scenario reports.
type Stats struct {
	// Tracked is the number of peers with at least one sample.
	Tracked int
	// Degraded is the number of peers currently flagged degraded.
	Degraded int
	// Samples counts all observations ever fed.
	Samples int
	// Marked / Cleared count degraded-flag transitions.
	Marked  int
	Cleared int
}

// Update reports the outcome of one observation: the peer's new RTO,
// whether it is degraded, and whether this sample flipped the flag
// (so the caller can emit a transition event exactly once).
type Update struct {
	RTO      time.Duration
	SRTT     time.Duration
	Degraded bool
	Changed  bool
}

// peerEstimate is the Jacobson/Karels state for one peer.
type peerEstimate struct {
	srtt     time.Duration
	rttvar   time.Duration
	samples  int
	degraded bool
}

// Estimator tracks round-trip estimates for all peers of one node. It
// is safe for concurrent use.
type Estimator struct {
	mu    sync.Mutex
	cfg   Config
	peers map[id.ID]*peerEstimate

	degraded int // current flag count
	samples  int
	marked   int
	cleared  int
}

// New creates an estimator with no samples.
func New(cfg Config) *Estimator {
	return &Estimator{cfg: cfg.withDefaults(), peers: make(map[id.ID]*peerEstimate)}
}

// Config returns the estimator's effective (defaulted) configuration.
func (e *Estimator) Config() Config { return e.cfg }

// Observe feeds one measured round-trip for peer x and returns the
// updated estimate. Non-positive samples are ignored (a clock glitch
// must not poison the EWMA); the returned Update then reflects the
// unchanged state.
func (e *Estimator) Observe(x id.ID, sample time.Duration) Update {
	e.mu.Lock()
	defer e.mu.Unlock()
	pe := e.peers[x]
	if pe == nil {
		pe = &peerEstimate{}
		e.peers[x] = pe
	}
	if sample > 0 {
		if pe.samples == 0 {
			// First sample: srtt = s, rttvar = s/2 (RFC 6298 §2.2).
			pe.srtt = sample
			pe.rttvar = sample / 2
		} else {
			// srtt += err/8; rttvar += (|err| - rttvar)/4.
			err := sample - pe.srtt
			pe.srtt += err / 8
			if err < 0 {
				err = -err
			}
			pe.rttvar += (err - pe.rttvar) / 4
		}
		pe.samples++
		e.samples++
	}
	changed := e.reassess(pe)
	return Update{RTO: e.rto(pe), SRTT: pe.srtt, Degraded: pe.degraded, Changed: changed}
}

// rto derives the clamped retry timeout from one peer's estimate.
// Callers hold e.mu.
func (e *Estimator) rto(pe *peerEstimate) time.Duration {
	rto := pe.srtt + 4*pe.rttvar
	if rto < e.cfg.MinRTO {
		rto = e.cfg.MinRTO
	}
	if rto > e.cfg.MaxRTO {
		rto = e.cfg.MaxRTO
	}
	return rto
}

// reassess re-evaluates one peer's degraded flag against the cross-peer
// median, with hysteresis: mark above DegradedFactor × median, clear at
// or below half that. Returns whether the flag flipped. Callers hold
// e.mu.
func (e *Estimator) reassess(pe *peerEstimate) bool {
	if pe.samples < e.cfg.DegradedMinSamples {
		return false
	}
	med := e.medianSRTT()
	if med <= 0 {
		return false
	}
	limit := e.cfg.DegradedFactor * float64(med)
	switch {
	case !pe.degraded && float64(pe.srtt) > limit:
		pe.degraded = true
		e.degraded++
		e.marked++
		return true
	case pe.degraded && float64(pe.srtt) <= limit/2:
		pe.degraded = false
		e.degraded--
		e.cleared++
		return true
	}
	return false
}

// medianSRTT computes the median smoothed RTT over all sampled peers;
// zero when fewer than DegradedMinPeers are tracked. Callers hold e.mu.
// O(peers log peers) per call, but observations arrive at probe rate
// (a few per second per node), so this stays negligible.
func (e *Estimator) medianSRTT() time.Duration {
	srtts := make([]time.Duration, 0, len(e.peers))
	for _, pe := range e.peers {
		if pe.samples > 0 {
			srtts = append(srtts, pe.srtt)
		}
	}
	if len(srtts) < e.cfg.DegradedMinPeers {
		return 0
	}
	sort.Slice(srtts, func(i, j int) bool { return srtts[i] < srtts[j] })
	return srtts[len(srtts)/2]
}

// RTO returns the retry timeout derived for peer x, and whether any
// samples exist to derive it from. Callers fall back to their fixed
// default when ok is false.
func (e *Estimator) RTO(x id.ID) (rto time.Duration, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	pe := e.peers[x]
	if pe == nil || pe.samples == 0 {
		return 0, false
	}
	return e.rto(pe), true
}

// SRTT returns the smoothed round-trip estimate for peer x.
func (e *Estimator) SRTT(x id.ID) (srtt time.Duration, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	pe := e.peers[x]
	if pe == nil || pe.samples == 0 {
		return 0, false
	}
	return pe.srtt, true
}

// Degraded reports whether peer x is currently flagged degraded.
func (e *Estimator) Degraded(x id.ID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	pe := e.peers[x]
	return pe != nil && pe.degraded
}

// Forget drops all state for peer x (declared failed, departed, or no
// longer monitored).
func (e *Estimator) Forget(x id.ID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if pe := e.peers[x]; pe != nil {
		if pe.degraded {
			e.degraded--
		}
		delete(e.peers, x)
	}
}

// Stats returns a snapshot of the activity counters.
func (e *Estimator) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	tracked := 0
	for _, pe := range e.peers {
		if pe.samples > 0 {
			tracked++
		}
	}
	return Stats{
		Tracked:  tracked,
		Degraded: e.degraded,
		Samples:  e.samples,
		Marked:   e.marked,
		Cleared:  e.cleared,
	}
}
