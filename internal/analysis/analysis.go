// Package analysis implements the communication-cost model of Liu & Lam
// (ICDCS 2003, §5.2): Theorem 3's bound on CpRstMsg+JoinWaitMsg, Theorem
// 4's expected number of JoinNotiMsg for a single join, and Theorem 5's
// upper bound under concurrent joins — the curves of Figure 15(a).
//
// The paper states
//
//	P_i(n) = Σ_{k=1}^{min(n,B)} C(B,k)·C(b^d − b^{d-i}, n−k) / C(b^d − 1, n)
//
// with B = (b−1)·b^{d−1−i}. By Vandermonde's identity the sum telescopes:
// adding the k=0 term gives C(b^d − b^{d−i−1}, n)/C(b^d − 1, n), so with
//
//	Q_i(n) = C(b^d − b^{d−i}, n) / C(b^d − 1, n)
//	       = Pr[no node of V shares ≥ i rightmost digits with x]
//
// we get P_i(n) = Q_{i+1}(n) − Q_i(n): the probability that the joining
// node's notification level is exactly i. This form avoids summing
// hypergeometric terms over binomials of astronomically large arguments
// (b^d = 16^40 ≈ 1.5e48) and is what this package evaluates, in log space.
package analysis

import (
	"fmt"
	"math"

	"hypercube/internal/stats"
)

// Theorem3Bound returns the paper's bound on the number of CpRstMsg plus
// JoinWaitMsg a joining node sends: d+1.
func Theorem3Bound(d int) int { return d + 1 }

// Q returns Q_i(n) = C(b^d − b^{d−i}, n)/C(b^d − 1, n): the probability
// that none of n uniformly drawn distinct IDs (excluding x itself) shares
// the rightmost i digits with x. Q_0 = 0 for n ≥ 1 and Q_d = 1.
func Q(b, d, i, n int) float64 {
	validate(b, d)
	if i < 0 || i > d {
		panic(fmt.Sprintf("analysis: level %d out of [0,%d]", i, d))
	}
	if n == 0 {
		return 1
	}
	total := math.Pow(float64(b), float64(d)) // b^d
	t := total - 1                            // IDs available to V (excluding x)
	matching := math.Pow(float64(b), float64(d-i))
	a := total - matching // IDs not sharing the rightmost i digits
	if a < float64(n) {
		return 0 // cannot pick n distinct non-matching IDs
	}
	diff := matching - 1 // t - a
	if diff <= 0 {
		return 1 // i == d: every non-x ID differs somewhere
	}
	// ln Q = Σ_{j=0}^{n-1} ln((a-j)/(t-j)) = Σ log1p(-diff/(t-j)).
	var lnQ float64
	if t > 1e12*float64(n) {
		// t-j ≈ t across the whole sum to relative error < 1e-12.
		lnQ = float64(n) * math.Log1p(-diff/t)
	} else {
		for j := 0; j < n; j++ {
			lnQ += math.Log1p(-diff / (t - float64(j)))
		}
	}
	return math.Exp(lnQ)
}

// P returns P_i(n): the probability that a node joining a consistent
// network of n random IDs has notification level exactly i, i.e. some
// node shares its rightmost i digits but none shares i+1 (Theorem 4's
// P_i, evaluated as Q_{i+1} − Q_i).
func P(b, d, i, n int) float64 {
	p := Q(b, d, i+1, n) - Q(b, d, i, n)
	if p < 0 {
		return 0 // floating-point noise at negligible levels
	}
	return p
}

// Levels returns the full distribution P_0..P_{d-1}. The entries sum to 1
// (the last level absorbs the telescoping remainder, matching the paper's
// P_{d-1} = 1 − Σ P_j).
func Levels(b, d, n int) []float64 {
	out := make([]float64, d)
	prev := Q(b, d, 0, n)
	for i := 0; i < d; i++ {
		next := Q(b, d, i+1, n)
		p := next - prev
		if p < 0 {
			p = 0
		}
		out[i] = p
		prev = next
	}
	return out
}

// ExpectedJoinNoti returns Theorem 4's expected number of JoinNotiMsg
// sent by a node joining a consistent network of n nodes:
// Σ_{i=0}^{d-1} (n/b^i)·P_i(n) − 1.
func ExpectedJoinNoti(b, d, n int) float64 {
	validate(b, d)
	total := 0.0
	scale := float64(n)
	for i := 0; i < d; i++ {
		total += scale * P(b, d, i, n)
		scale /= float64(b)
	}
	return total - 1
}

// UpperBoundJoinNoti returns Theorem 5's upper bound on the expected
// number of JoinNotiMsg sent by each of m nodes joining a consistent
// network of n nodes concurrently: Σ_{i=0}^{d-1} ((n+m)/b^i)·P_i(n).
func UpperBoundJoinNoti(b, d, n, m int) float64 {
	validate(b, d)
	total := 0.0
	scale := float64(n + m)
	for i := 0; i < d; i++ {
		total += scale * P(b, d, i, n)
		scale /= float64(b)
	}
	return total
}

func validate(b, d int) {
	if b < 2 || d < 1 {
		panic(fmt.Sprintf("analysis: invalid parameters b=%d d=%d", b, d))
	}
}

// Figure15aCurve describes one curve of Figure 15(a).
type Figure15aCurve struct {
	B, D, M int
}

// Label renders the curve's legend text as in the paper.
func (c Figure15aCurve) Label() string {
	return fmt.Sprintf("m=%d, b=%d, d=%d", c.M, c.B, c.D)
}

// PaperFigure15aCurves returns the four curves plotted in Figure 15(a).
func PaperFigure15aCurves() []Figure15aCurve {
	return []Figure15aCurve{
		{B: 16, D: 40, M: 500},
		{B: 16, D: 40, M: 1000},
		{B: 16, D: 8, M: 500},
		{B: 16, D: 8, M: 1000},
	}
}

// PaperFigure15aN returns the x-axis sample points of Figure 15(a):
// n = 10000..100000 in steps of 10000.
func PaperFigure15aN() []int {
	out := make([]int, 0, 10)
	for n := 10_000; n <= 100_000; n += 10_000 {
		out = append(out, n)
	}
	return out
}

// Figure15a evaluates the given curves at the given n values, producing
// the series of the paper's Figure 15(a) (upper bound of E(J) vs n).
func Figure15a(curves []Figure15aCurve, ns []int) []stats.Series {
	out := make([]stats.Series, 0, len(curves))
	for _, c := range curves {
		s := stats.Series{Label: c.Label()}
		for _, n := range ns {
			s.Points = append(s.Points, stats.Point{
				X: float64(n),
				Y: UpperBoundJoinNoti(c.B, c.D, n, c.M),
			})
		}
		out = append(out, s)
	}
	return out
}
