// Package sampling implements a Brahms-style byzantine-resistant gossip
// peer-sampling layer (Bortnikov et al., "Brahms: Byzantine Resilient
// Random Membership Sampling").
//
// Each node keeps a small bounded view of peer references, refreshed
// every round by a push-pull exchange: it pushes its own reference to a
// few view members, pulls the views of a few others, and rebuilds the
// view as a mix of α·l pushed peers, β·l pulled peers, and γ·l history
// samples. The history comes from min-wise independent samplers: each
// sampler slot draws a random hash function at birth and keeps the
// reference with the minimum hash among everything it has ever observed,
// which converges to a uniform sample of all peer IDs ever seen — an
// adversary that floods pushes can bias the *view* for a while, but a
// sampler only replaces its element when the flooded ID hashes lower,
// which happens with probability 1/(ids observed), independent of volume.
// Two further defenses: a round that receives more pushes than α·l keeps
// the previous view wholesale (flood detection), and pull replies are
// accepted only from peers actually pulled this round.
//
// The layer feeds every recovery path that would otherwise depend on a
// static bootstrap set: gateway selection for join restarts, rejoin after
// restart, and anti-entropy sync-peer choice. A validator hook (wired to
// the guard scorer's quarantine state) ejects misbehaving peers from
// both the view and the samplers.
package sampling

import (
	"sort"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/obs"
	"hypercube/internal/table"
	"hypercube/internal/trace"
)

// Config parameterizes one engine. The zero value gets defaults.
type Config struct {
	// ViewSize is l, the bound on the local view. Brahms suggests
	// l ≈ n^(1/3); the default 16 covers n up to ~4k.
	ViewSize int
	// Alpha, Beta, Gamma are the view mixing weights for pushed peers,
	// pulled peers, and history samples. They should sum to 1; the
	// defaults are the exemplar's 0.45/0.45/0.10.
	Alpha, Beta, Gamma float64
	// Samplers is the number of min-wise independent samplers backing
	// the history sample. Defaults to 2·ViewSize.
	Samplers int
	// Interval is the round period. Defaults to 1s.
	Interval time.Duration
	// Seed makes every engine's randomness deterministic: the per-node
	// stream is derived from Seed mixed with the node's own ID.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.ViewSize <= 0 {
		c.ViewSize = 16
	}
	if c.ViewSize > msg.MaxSampleRefs {
		c.ViewSize = msg.MaxSampleRefs
	}
	if c.Alpha <= 0 && c.Beta <= 0 && c.Gamma <= 0 {
		c.Alpha, c.Beta, c.Gamma = 0.45, 0.45, 0.10
	}
	if c.Samplers <= 0 {
		c.Samplers = 2 * c.ViewSize
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	return c
}

// Stats counts engine activity for reporting.
type Stats struct {
	Rounds         int // push-pull rounds run
	PushesSent     int
	PushesReceived int
	PullsSent      int
	PullsAnswered  int
	// FloodsDetected counts rounds whose push volume exceeded α·l and
	// whose view update was therefore skipped.
	FloodsDetected int
	// Ejected counts references removed from view or samplers by the
	// validator (quarantine) or Invalidate.
	Ejected int
	// ViewSize and SamplerFill describe current occupancy.
	ViewSize    int
	SamplerFill int
}

// sampler is one min-wise independent sampler: a fixed random hash seed
// and the reference with the minimum hash observed so far.
type sampler struct {
	seed uint64
	min  uint64
	cur  table.Ref
}

func (s *sampler) observe(r table.Ref) {
	h := hashID(s.seed, r.ID)
	if s.cur.IsZero() || h < s.min {
		s.min, s.cur = h, r
	}
}

func (s *sampler) reset() {
	s.min, s.cur = 0, table.Ref{}
}

// hashID is FNV-1a over the sampler seed and the ID's raw digits — a
// cheap stand-in for the min-wise independent hash family; the seed is
// drawn per sampler at engine birth and unknown to remote peers.
func hashID(seed uint64, x id.ID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= seed >> (8 * i) & 0xff
		h *= prime64
	}
	var buf [64]byte
	for _, b := range x.AppendRawDigits(buf[:0]) {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// rng is a small deterministic PRNG (splitmix64). The engine cannot use
// math/rand directly because each node needs an independent stream
// derived from (config seed, node ID) without sharing state.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Engine runs the sampling protocol for one node. Not safe for
// concurrent use; like the protocol machine, a runtime drives it from a
// single goroutine or under a lock.
type Engine struct {
	cfg  Config
	self table.Ref
	rnd  rng

	view     []table.Ref
	pushBuf  map[id.ID]table.Ref
	pullBuf  map[id.ID]table.Ref
	pullFrom map[id.ID]bool

	samplers []sampler

	validate  func(table.Ref) bool
	bootstrap func() []table.Ref

	// Observability (nil when tracing is off; see SetSink). tracer,
	// when non-nil, roots one span per gossip round (see SetTracer).
	sink     obs.Sink
	selfName string
	tracer   *trace.Tracer

	next  time.Duration
	first bool
	stats Stats
}

// New builds an engine for self. Determinism: the same (cfg.Seed, self)
// always yields the same random stream, sampler hash seeds, and round
// stagger.
func New(cfg Config, self table.Ref) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:      cfg,
		self:     self,
		rnd:      rng{state: uint64(cfg.Seed) ^ hashID(0x5a11, self.ID)},
		pushBuf:  make(map[id.ID]table.Ref),
		pullBuf:  make(map[id.ID]table.Ref),
		pullFrom: make(map[id.ID]bool),
		samplers: make([]sampler, cfg.Samplers),
		first:    true,
	}
	for i := range e.samplers {
		e.samplers[i].seed = e.rnd.next()
	}
	return e
}

// Self returns the engine's own reference.
func (e *Engine) Self() table.Ref { return e.self }

// SetValidator installs the acceptance predicate: references it rejects
// are never admitted and are ejected from view and samplers at each
// round. Wire it to the guard scorer's quarantine check.
func (e *Engine) SetValidator(f func(table.Ref) bool) { e.validate = f }

// SetBootstrap installs a fallback source of peers consulted when a
// round starts with an empty view (fresh node, or every view member
// ejected). Wire it to the machine's live table peers.
func (e *Engine) SetBootstrap(f func() []table.Ref) { e.bootstrap = f }

// SetSink installs the protocol-event sink; nil or obs.Nop turns tracing
// off (the default). Wrap with obs.Clocked so the driving runtime stamps
// Event.T.
func (e *Engine) SetSink(s obs.Sink) {
	if obs.IsNop(s) {
		e.sink = nil
		return
	}
	e.sink = s
	e.selfName = e.self.ID.String()
}

// SetTracer installs the span-context source for causal tracing; nil
// turns it off (the default). Each (sampled) gossip round is a traced
// operation root; pushes and pulls ride child spans, and pull replies
// descend from the request's hop span.
func (e *Engine) SetTracer(t *trace.Tracer) { e.tracer = t }

func (e *Engine) admissible(r table.Ref) bool {
	if r.IsZero() || r.ID == e.self.ID {
		return false
	}
	return e.validate == nil || e.validate(r)
}

// SeedPeers primes the view and samplers with initial contacts.
func (e *Engine) SeedPeers(refs ...table.Ref) {
	for _, r := range refs {
		if !e.admissible(r) {
			continue
		}
		e.observe(r)
		if len(e.view) < e.cfg.ViewSize && !refsContain(e.view, r.ID) {
			e.view = append(e.view, r)
		}
	}
}

func (e *Engine) observe(r table.Ref) {
	for i := range e.samplers {
		e.samplers[i].observe(r)
	}
}

// Deliver handles one sampling message and returns any replies. Callers
// route TSamplePush, TSamplePullReq, and TSamplePullRly here; other
// types are ignored.
func (e *Engine) Deliver(env msg.Envelope) []msg.Envelope {
	switch env.Msg.(type) {
	case msg.SamplePush:
		e.stats.PushesReceived++
		if e.admissible(env.From) {
			e.pushBuf[env.From.ID] = env.From
			e.observe(env.From)
		}
	case msg.SamplePullReq:
		if !e.admissible(env.From) {
			return nil
		}
		e.stats.PullsAnswered++
		rly := msg.Envelope{
			From: e.self,
			To:   env.From,
			Msg:  msg.SamplePullRly{Refs: e.View()},
		}
		// The reply is its own hop: a child span of the request's, so
		// the round tree keeps the request→reply causality. Tracerless
		// engines drop the context (opaque hop).
		if e.tracer != nil && env.Trace.Sampled() {
			rly.Trace = e.tracer.Child(env.Trace)
			if e.sink != nil {
				e.sink.Emit(obs.Event{Node: e.selfName, Kind: obs.KindRecv, Peer: env.From.ID.String(), Msg: env.Msg.Type().String()}.Stamped(env.Trace, trace.SpanID{}))
				e.sink.Emit(obs.Event{Node: e.selfName, Kind: obs.KindSend, Peer: env.From.ID.String(), Msg: rly.Msg.Type().String()}.Stamped(rly.Trace, env.Trace.Span))
			}
		}
		return []msg.Envelope{rly}
	case msg.SamplePullRly:
		// Unsolicited pull replies are an attack vector (they would let a
		// flooder inject arbitrary references); accept only from peers we
		// pulled this round, once.
		if !e.pullFrom[env.From.ID] {
			return nil
		}
		delete(e.pullFrom, env.From.ID)
		m := env.Msg.(msg.SamplePullRly)
		refs := m.Refs
		if len(refs) > msg.MaxSampleRefs {
			refs = refs[:msg.MaxSampleRefs]
		}
		for _, r := range refs {
			if e.admissible(r) {
				e.pullBuf[r.ID] = r
				e.observe(r)
			}
		}
	}
	return nil
}

// Tick runs at most one push-pull round when the round period elapsed,
// returning the envelopes to transmit. The first round is staggered per
// node so a synchronized start does not thundering-herd the network.
func (e *Engine) Tick(now time.Duration) []msg.Envelope {
	if e.first {
		e.first = false
		e.next = now + time.Duration(hashID(0x57a6, e.self.ID)%uint64(e.cfg.Interval))
	}
	if now < e.next {
		return nil
	}
	e.next = now + e.cfg.Interval
	return e.round()
}

func (e *Engine) round() []msg.Envelope {
	e.stats.Rounds++
	e.sweep()

	alpha := scaled(e.cfg.Alpha, e.cfg.ViewSize)
	beta := scaled(e.cfg.Beta, e.cfg.ViewSize)
	gamma := scaled(e.cfg.Gamma, e.cfg.ViewSize)

	// Close the previous round: rebuild the view from its pushes, pulls,
	// and history — unless the push volume exceeded α·l, the Brahms flood
	// signature, in which case the previous view survives unchanged and
	// only the (flood-resistant) samplers saw the attack traffic.
	if len(e.pushBuf) > alpha {
		e.stats.FloodsDetected++
		if e.sink != nil {
			e.sink.Emit(obs.Event{Node: e.selfName, Kind: obs.KindSampleFlood, N: len(e.pushBuf)})
		}
	} else if len(e.pushBuf) > 0 && len(e.pullBuf) > 0 {
		fresh := make([]table.Ref, 0, e.cfg.ViewSize)
		fresh = e.appendRandom(fresh, mapRefs(e.pushBuf), alpha)
		fresh = e.appendRandom(fresh, mapRefs(e.pullBuf), beta)
		fresh = e.appendRandom(fresh, e.history(), gamma)
		if len(fresh) > 0 {
			e.view = fresh
		}
	}
	clear(e.pushBuf)
	clear(e.pullBuf)
	clear(e.pullFrom)

	// An empty view means the node is isolated; re-prime from the
	// bootstrap source (live table peers) before gossiping.
	if len(e.view) == 0 && e.bootstrap != nil {
		e.SeedPeers(e.bootstrap()...)
	}
	if len(e.view) == 0 {
		return nil
	}

	// Open the next round: push self to α·l view members, pull from β·l.
	// A sampled round roots one span; each push and pull rides its own
	// child span.
	var ctx trace.Context
	if e.tracer != nil {
		ctx = e.tracer.Root()
	}
	var out []msg.Envelope
	for _, to := range e.pickRandom(e.view, alpha) {
		out = append(out, e.traced(msg.Envelope{From: e.self, To: to, Msg: msg.SamplePush{}}, ctx))
		e.stats.PushesSent++
	}
	for _, to := range e.pickRandom(e.view, beta) {
		out = append(out, e.traced(msg.Envelope{From: e.self, To: to, Msg: msg.SamplePullReq{}}, ctx))
		e.pullFrom[to.ID] = true
		e.stats.PullsSent++
	}
	if e.sink != nil {
		e.sink.Emit(obs.Event{Node: e.selfName, Kind: obs.KindSampleRound, N: len(e.view)}.Stamped(ctx, trace.SpanID{}))
	}
	return out
}

// traced gives env a child span of the round context and emits its
// send-side event; unsampled rounds pass through untouched.
func (e *Engine) traced(env msg.Envelope, ctx trace.Context) msg.Envelope {
	if e.tracer == nil || !ctx.Sampled() {
		return env
	}
	env.Trace = e.tracer.Child(ctx)
	if e.sink != nil {
		e.sink.Emit(obs.Event{Node: e.selfName, Kind: obs.KindSend, Peer: env.To.ID.String(), Msg: env.Msg.Type().String()}.Stamped(env.Trace, ctx.Span))
	}
	return env
}

// sweep re-validates the view and samplers, ejecting references the
// validator now rejects (e.g. freshly quarantined peers).
func (e *Engine) sweep() {
	if e.validate == nil {
		return
	}
	kept := e.view[:0]
	for _, r := range e.view {
		if e.admissible(r) {
			kept = append(kept, r)
		} else {
			e.stats.Ejected++
		}
	}
	e.view = kept
	for i := range e.samplers {
		if cur := e.samplers[i].cur; !cur.IsZero() && !e.admissible(cur) {
			e.samplers[i].reset()
			e.stats.Ejected++
		}
	}
}

// Invalidate ejects a peer everywhere: view, buffers, and any sampler
// holding it (those samplers restart empty and re-converge).
func (e *Engine) Invalidate(x id.ID) {
	kept := e.view[:0]
	for _, r := range e.view {
		if r.ID == x {
			e.stats.Ejected++
			continue
		}
		kept = append(kept, r)
	}
	e.view = kept
	delete(e.pushBuf, x)
	delete(e.pullBuf, x)
	delete(e.pullFrom, x)
	for i := range e.samplers {
		if e.samplers[i].cur.ID == x {
			e.samplers[i].reset()
			e.stats.Ejected++
		}
	}
}

// View returns the current view, ascending by ID (the canonical wire
// order of SamplePullRly).
func (e *Engine) View() []table.Ref {
	out := make([]table.Ref, len(e.view))
	copy(out, e.view)
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out
}

// Sample returns up to k distinct references from the min-wise samplers
// — the byzantine-resistant long-term sample. Slot order is preserved,
// so a fixed seed yields a deterministic result.
func (e *Engine) Sample(k int) []table.Ref {
	var out []table.Ref
	seen := make(map[id.ID]bool, k)
	for i := range e.samplers {
		if len(out) >= k {
			break
		}
		cur := e.samplers[i].cur
		if cur.IsZero() || seen[cur.ID] || !e.admissible(cur) {
			continue
		}
		seen[cur.ID] = true
		out = append(out, cur)
	}
	return out
}

// Stats returns a snapshot of the engine's counters and occupancy.
func (e *Engine) Stats() Stats {
	st := e.stats
	st.ViewSize = len(e.view)
	for i := range e.samplers {
		if !e.samplers[i].cur.IsZero() {
			st.SamplerFill++
		}
	}
	return st
}

// appendRandom moves up to n entries of pool into dst, skipping IDs
// already present, consuming pool in random order.
func (e *Engine) appendRandom(dst, pool []table.Ref, n int) []table.Ref {
	for n > 0 && len(pool) > 0 {
		i := e.rnd.intn(len(pool))
		r := pool[i]
		pool[i] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		if refsContain(dst, r.ID) {
			continue
		}
		dst = append(dst, r)
		n--
	}
	return dst
}

// pickRandom returns up to n distinct random entries of view.
func (e *Engine) pickRandom(view []table.Ref, n int) []table.Ref {
	pool := make([]table.Ref, len(view))
	copy(pool, view)
	var out []table.Ref
	for n > 0 && len(pool) > 0 {
		i := e.rnd.intn(len(pool))
		out = append(out, pool[i])
		pool[i] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		n--
	}
	return out
}

// history returns the sampler contents as a shuffle pool.
func (e *Engine) history() []table.Ref {
	var out []table.Ref
	for i := range e.samplers {
		if cur := e.samplers[i].cur; !cur.IsZero() {
			out = append(out, cur)
		}
	}
	return out
}

// mapRefs flattens a buffer map in deterministic (sorted) order so the
// subsequent random draws replay identically under a fixed seed.
func mapRefs(m map[id.ID]table.Ref) []table.Ref {
	out := make([]table.Ref, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out
}

func refsContain(refs []table.Ref, x id.ID) bool {
	for _, r := range refs {
		if r.ID == x {
			return true
		}
	}
	return false
}

// scaled returns max(1, round(f·l)) — every mixing class contributes at
// least one slot so degenerate weights cannot zero out a component.
func scaled(f float64, l int) int {
	n := int(f*float64(l) + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}
