GO ?= go

.PHONY: all build test race bench vet fmt cover experiments

all: build vet test

build:
	$(GO) build ./...

# The default test path includes vet and a race-detector pass over the
# whole module — new packages (anti-entropy engine, partition plumbing)
# get race coverage automatically instead of waiting to be listed.
test: vet
	$(GO) test ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

cover:
	$(GO) test -cover ./internal/...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/figure15a
	$(GO) run ./cmd/figure15b
	$(GO) run ./cmd/jointable
	$(GO) run ./cmd/consistency
	$(GO) run ./cmd/csettree
	$(GO) run ./cmd/baselinecmp
	$(GO) run ./cmd/msgsize
	$(GO) run ./cmd/churn
	$(GO) run ./cmd/workload -quiet
