package id

import (
	"testing"
)

// FuzzParse exercises the ID parser with arbitrary strings: it must never
// panic, and anything it accepts must round-trip exactly.
func FuzzParse(f *testing.F) {
	f.Add("21233", 4, 5)
	f.Add("0123abcd", 16, 8)
	f.Add("", 2, 1)
	f.Add("zz9", 36, 3)
	f.Add("ε", 8, 5)
	f.Fuzz(func(t *testing.T, s string, b, d int) {
		p := Params{B: b, D: d}
		x, err := Parse(p, s)
		if err != nil {
			return
		}
		if x.Len() != d {
			t.Fatalf("accepted ID has %d digits, want %d", x.Len(), d)
		}
		back, err := Parse(p, x.String())
		if err != nil || back != x {
			t.Fatalf("round trip failed for %q: %v", s, err)
		}
	})
}

// FuzzParseSuffix: same contract for suffixes, including the ε form.
func FuzzParseSuffix(f *testing.F) {
	f.Add("233", 4, 5)
	f.Add("", 16, 8)
	f.Add("ε", 16, 8)
	f.Add("10261", 8, 5)
	f.Fuzz(func(t *testing.T, s string, b, d int) {
		p := Params{B: b, D: d}
		if p.Validate() != nil {
			return
		}
		sf, err := ParseSuffix(p, s)
		if err != nil {
			return
		}
		if sf.Len() > d {
			t.Fatalf("accepted suffix longer than d: %d > %d", sf.Len(), d)
		}
		back, err := ParseSuffix(p, sf.String())
		if err != nil || back != sf {
			t.Fatalf("round trip failed for %q", s)
		}
		// Any random ID either matches the whole suffix or a strict
		// prefix of it; SuffixMatch must agree with HasSuffix.
		x := FromName(p, s)
		m := x.SuffixMatch(sf)
		if (m == sf.Len()) != x.HasSuffix(sf) {
			t.Fatalf("SuffixMatch=%d disagrees with HasSuffix for %q on %v", m, sf.String(), x)
		}
	})
}
