// Command tracewave runs a simulated join wave (the paper's §5.2
// experiment: N established nodes, M joining concurrently) with the
// protocol-event sink attached, and writes the full trace as JSONL.
// Because the simulator stamps events with the virtual clock using the
// same schema as the live TCP runtime, the output feeds straight into
// tracestat:
//
//	tracewave -n 256 -m 192 -out wave.jsonl
//	tracestat wave.jsonl
//
// With -out - the trace goes to stdout (summary to stderr), so the two
// tools pipe together: tracewave -n 64 -m 48 -out - | tracestat -
package main

import (
	"flag"
	"fmt"
	"os"

	"hypercube/internal/id"
	"hypercube/internal/obs"
	"hypercube/internal/overlay"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tracewave: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n    = flag.Int("n", 256, "size of the initial consistent network")
		m    = flag.Int("m", 192, "number of concurrently joining nodes")
		b    = flag.Int("b", 16, "digit base")
		d    = flag.Int("d", 4, "digits per ID")
		seed = flag.Int64("seed", 1, "PRNG seed (IDs, bootstraps, latencies)")
		out  = flag.String("out", "wave.jsonl", "trace output path; - for stdout")
	)
	flag.Parse()
	p := id.Params{B: *b, D: *d}
	if err := p.Validate(); err != nil {
		return err
	}

	var sink *obs.JSONL
	report := os.Stdout
	if *out == "-" {
		sink = obs.NewJSONL(os.Stdout)
		report = os.Stderr
	} else {
		var err error
		sink, err = obs.NewJSONLFile(*out)
		if err != nil {
			return err
		}
	}

	res, err := overlay.RunWave(overlay.WaveConfig{
		Params: p, N: *n, M: *m, Seed: *seed, Sink: sink,
	})
	if err != nil {
		sink.Close()
		return err
	}
	if err := sink.Close(); err != nil {
		return err
	}

	fmt.Fprintf(report, "wave: n=%d m=%d seed=%d (b=%d d=%d)\n", *n, *m, *seed, *b, *d)
	fmt.Fprintf(report, "joined: %d/%d, all S-nodes: %v, consistent: %v\n",
		len(res.Records), *m, res.AllSNodes, res.Consistent())
	fmt.Fprintf(report, "virtual duration: %v over %d sim events\n",
		res.VirtualDuration, res.Events)
	fmt.Fprintf(report, "trace: %d events -> %s\n", sink.Emitted(), *out)
	if !res.AllSNodes || !res.Consistent() {
		return fmt.Errorf("wave did not converge to a consistent network")
	}
	return nil
}
