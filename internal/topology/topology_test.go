package topology

import (
	"math/rand"
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"default", func(*Config) {}, false},
		{"noTransit", func(c *Config) { c.TransitDomains = 0 }, true},
		{"noRouters", func(c *Config) { c.RoutersPerTransit = 0 }, true},
		{"emptyStubs", func(c *Config) { c.RoutersPerStub = 0 }, true},
		{"noStubsAtAll", func(c *Config) { c.StubsPerTransitRouter = 0; c.RoutersPerStub = 0 }, false},
		{"badChord", func(c *Config) { c.TransitChordProb = 1.5 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := Small(1)
			tt.mutate(&c)
			if err := c.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestDefault8320MatchesPaperScale(t *testing.T) {
	c := Default8320(1)
	if got := c.RouterCount(); got != 8320 {
		t.Fatalf("RouterCount = %d, want 8320 (paper §5.2)", got)
	}
}

func TestGenerateSmall(t *testing.T) {
	topo, err := Generate(Small(3))
	if err != nil {
		t.Fatal(err)
	}
	c := Small(3)
	if got := topo.RouterCount(); got != c.RouterCount() {
		t.Errorf("RouterCount = %d, want %d", got, c.RouterCount())
	}
	if topo.TransitRouterCount() != c.TransitDomains*c.RoutersPerTransit {
		t.Errorf("TransitRouterCount = %d", topo.TransitRouterCount())
	}
	if topo.StubCount() != c.TransitDomains*c.RoutersPerTransit*c.StubsPerTransitRouter {
		t.Errorf("StubCount = %d", topo.StubCount())
	}
	if topo.EdgeCount() <= topo.RouterCount()-1 {
		t.Errorf("EdgeCount = %d: graph cannot be connected", topo.EdgeCount())
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	c := Small(1)
	c.TransitDomains = 0
	if _, err := Generate(c); err == nil {
		t.Fatal("Generate accepted invalid config")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := Generate(Small(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Small(42))
	if err != nil {
		t.Fatal(err)
	}
	rngA, rngB := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	a.AttachHosts(50, rngA)
	b.AttachHosts(50, rngB)
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			if a.Latency(i, j) != b.Latency(i, j) {
				t.Fatalf("latency(%d,%d) differs across identical seeds", i, j)
			}
		}
	}
}

func TestRouterDistanceMetricProperties(t *testing.T) {
	topo, err := Generate(Small(5))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	n := topo.RouterCount()
	for trial := 0; trial < 300; trial++ {
		a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		dab := topo.RouterDistance(a, b)
		dba := topo.RouterDistance(b, a)
		if dab != dba {
			t.Fatalf("asymmetric distance %d<->%d: %v vs %v", a, b, dab, dba)
		}
		if a == b && dab != 0 {
			t.Fatalf("self distance %v", dab)
		}
		if a != b && dab <= 0 {
			t.Fatalf("non-positive distance %v between %d and %d", dab, a, b)
		}
		if dab >= unreachable {
			t.Fatalf("graph disconnected: %d cannot reach %d", a, b)
		}
		// Triangle inequality (exact shortest paths must satisfy it).
		if dac, dcb := topo.RouterDistance(a, c), topo.RouterDistance(c, b); dab > dac+dcb {
			t.Fatalf("triangle violated: d(%d,%d)=%v > %v+%v", a, b, dab, dac, dcb)
		}
	}
}

// TestRouterDistanceAgainstFullDijkstra cross-checks the two-tier exact
// scheme (transit pivots + per-stub all-pairs) against a plain Dijkstra
// from scratch.
func TestRouterDistanceAgainstFullDijkstra(t *testing.T) {
	topo, err := Generate(Small(11))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		src := rng.Intn(topo.RouterCount())
		want := topo.dijkstra(src, nil)
		for probe := 0; probe < 40; probe++ {
			dst := rng.Intn(topo.RouterCount())
			if got := topo.RouterDistance(src, dst); got != want[dst] {
				t.Fatalf("RouterDistance(%d,%d) = %v, Dijkstra says %v (stubOf %d,%d)",
					src, dst, got, want[dst], topo.stubOf[src], topo.stubOf[dst])
			}
		}
	}
}

func TestHostLatency(t *testing.T) {
	topo, err := Generate(Small(17))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	hosts := topo.AttachHosts(100, rng)
	if len(hosts) != 100 || topo.HostCount() != 100 {
		t.Fatalf("AttachHosts returned %d hosts", len(hosts))
	}
	for i, h := range hosts {
		if h != i {
			t.Fatalf("host indices not sequential: %v", hosts[:5])
		}
		if r := topo.HostRouter(h); topo.stubOf[r] < 0 {
			t.Errorf("host %d attached to transit router %d", h, r)
		}
	}
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Intn(100), rng.Intn(100)
		l := topo.Latency(a, b)
		switch {
		case a == b && l != 0:
			t.Fatalf("self latency %v", l)
		case a != b && l <= 0:
			t.Fatalf("non-positive latency %v between distinct hosts %d,%d", l, a, b)
		case topo.Latency(a, b) != topo.Latency(b, a):
			t.Fatalf("asymmetric host latency")
		}
	}
	// Second attach call extends the host set.
	more := topo.AttachHosts(10, rng)
	if more[0] != 100 || topo.HostCount() != 110 {
		t.Errorf("second AttachHosts: %v, count %d", more[:1], topo.HostCount())
	}
}

func TestHierarchyLatencyOrdering(t *testing.T) {
	// Average intra-stub latency should be far below inter-domain latency
	// — the hierarchy the interleaving-sensitive experiments rely on.
	topo, err := Generate(Small(23))
	if err != nil {
		t.Fatal(err)
	}
	var intraSum, interSum time.Duration
	var intraN, interN int
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 4000; trial++ {
		a, b := rng.Intn(topo.RouterCount()), rng.Intn(topo.RouterCount())
		if a == b {
			continue
		}
		d := topo.RouterDistance(a, b)
		switch {
		case topo.stubOf[a] >= 0 && topo.stubOf[a] == topo.stubOf[b]:
			intraSum += d
			intraN++
		case topo.domainOf[a] != topo.domainOf[b]:
			interSum += d
			interN++
		}
	}
	if intraN == 0 || interN == 0 {
		t.Skip("sampling found no pairs in a class")
	}
	intraMean := intraSum / time.Duration(intraN)
	interMean := interSum / time.Duration(interN)
	if intraMean*2 >= interMean {
		t.Errorf("latency hierarchy collapsed: intra-stub %v vs inter-domain %v", intraMean, interMean)
	}
}

func TestSampleStats(t *testing.T) {
	topo, err := Generate(Small(29))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	topo.AttachHosts(40, rng)
	st := topo.SampleStats(500, rng)
	if st.Hosts != 40 || st.Routers != topo.RouterCount() {
		t.Errorf("stats header wrong: %+v", st)
	}
	if st.SampledPairs == 0 || st.MeanHostLatency <= 0 || st.MaxHostLatency < st.MeanHostLatency {
		t.Errorf("latency stats implausible: %+v", st)
	}
	// No hosts: stats still well-formed.
	empty, err := Generate(Small(30))
	if err != nil {
		t.Fatal(err)
	}
	st2 := empty.SampleStats(10, rng)
	if st2.SampledPairs != 0 || st2.MeanHostLatency != 0 {
		t.Errorf("empty-host stats: %+v", st2)
	}
}

func TestPaperScaleGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("8320-router generation in short mode")
	}
	start := time.Now()
	topo, err := Generate(Default8320(7))
	if err != nil {
		t.Fatal(err)
	}
	if topo.RouterCount() != 8320 {
		t.Fatalf("RouterCount = %d", topo.RouterCount())
	}
	rng := rand.New(rand.NewSource(8))
	topo.AttachHosts(8192, rng)
	// Spot-check distances remain sane at full scale.
	for trial := 0; trial < 100; trial++ {
		a, b := rng.Intn(8192), rng.Intn(8192)
		if a != b {
			l := topo.Latency(a, b)
			if l <= 0 || l > 2*time.Second {
				t.Fatalf("implausible latency %v", l)
			}
		}
	}
	t.Logf("generated 8320-router topology with %d hosts in %v", topo.HostCount(), time.Since(start))
}

func BenchmarkLatencyQuery(b *testing.B) {
	topo, err := Generate(Small(3))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	topo.AttachHosts(500, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = topo.Latency(i%500, (i*7)%500)
	}
}
