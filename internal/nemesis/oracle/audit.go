package oracle

import (
	"fmt"
	"sort"

	"hypercube/internal/id"
	"hypercube/internal/netcheck"
	"hypercube/internal/overlay"
)

// Check names an invariant class a Finding violates. The strings are
// stable: repro files record them and replays compare against them.
const (
	CheckConsistency = "consistency"       // Definition 3.8 over all tables
	CheckReachable   = "reachability"      // sampled Definition 3.7 pairs
	CheckFalseDecl   = "false-declaration" // a live node declared failed
	CheckStuckJoin   = "stuck-join"        // a scheduled joiner never admitted
	CheckStuckLeave  = "stuck-leave"       // a graceful leave never completed
	CheckGuardHonest = "guard-honest"      // guard quarantined a peer with no adversary marked
	CheckDeadLetter  = "dead-letter"       // messages dead-lettered with loss disabled
	CheckConverge    = "convergence"       // still inconsistent after the settle budget
	CheckPersist     = "persist-corrupt"   // a damaged dump was not detected, or persistence failed
)

// Finding is one invariant violation the oracle detected.
type Finding struct {
	Check  string `json:"check"`
	Detail string `json:"detail"`
	// Step is the index of the schedule action after which the finding
	// surfaced, or -1 for the final audit.
	Step int `json:"step"`
}

func (f Finding) String() string {
	where := "final"
	if f.Step >= 0 {
		where = fmt.Sprintf("step %d", f.Step)
	}
	return fmt.Sprintf("[%s] %s: %s", where, f.Check, f.Detail)
}

// maxPerCheck bounds how many findings one audit reports per check: a
// globally inconsistent network can break thousands of entries, and the
// first few name the bug as well as all of them.
const maxPerCheck = 8

// Audit runs the global invariant oracle over a quiesced network:
// Definition 3.8 consistency over every table, plus reachPairs sampled
// ordered pairs routed via Definition 3.7 as an independent cross-check
// of the checker itself. The pair sample is drawn from a splitmix64
// stream over (seed, step), so the same run audits identically. The
// step index is stamped into the findings.
func Audit(net *overlay.Network, reachPairs int, seed uint64, step int) []Finding {
	var out []Finding
	violations := net.CheckConsistency()
	for i, v := range violations {
		if i == maxPerCheck {
			out = append(out, Finding{Check: CheckConsistency, Step: step,
				Detail: fmt.Sprintf("... and %d more violations", len(violations)-maxPerCheck)})
			break
		}
		out = append(out, Finding{Check: CheckConsistency, Detail: v.String(), Step: step})
	}

	members := net.Members()
	if reachPairs > 0 && len(members) >= 2 {
		tables := net.Tables()
		ids := make([]id.ID, len(members))
		for i, r := range members {
			ids[i] = r.ID
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
		rnd := newRNG(seed, uint64(step)+0x5ea1)
		bad := 0
		for i := 0; i < reachPairs; i++ {
			src := ids[rnd.intn(len(ids))]
			dst := ids[rnd.intn(len(ids))]
			if src == dst {
				continue
			}
			if path, ok := netcheck.Reachable(net.Params(), tables, src, dst); !ok {
				bad++
				if bad <= maxPerCheck {
					out = append(out, Finding{Check: CheckReachable, Step: step,
						Detail: fmt.Sprintf("%v cannot reach %v (stopped after %v)", src, dst, path)})
				}
			}
		}
		if bad > maxPerCheck {
			out = append(out, Finding{Check: CheckReachable, Step: step,
				Detail: fmt.Sprintf("... and %d more unreachable pairs", bad-maxPerCheck)})
		}
	}
	return out
}

// AuditDeclarations converts the watcher's false positives into
// findings (empty when every declaration named a deliberately killed
// node).
func AuditDeclarations(w *DeclWatch, step int) []Finding {
	if w.FalsePositives() == 0 {
		return nil
	}
	return []Finding{{
		Check: CheckFalseDecl,
		Step:  step,
		Detail: fmt.Sprintf("%d live nodes declared failed (e.g. %v)",
			w.FalsePositives(), w.Examples()),
	}}
}

// rng is the splitmix64 stream the audit draws its reachability sample
// from — per (seed, step), the same discipline as the trace and
// sampling layers, so audits replay bit-identically.
type rng struct{ state uint64 }

func newRNG(seed, step uint64) *rng {
	return &rng{state: seed ^ (step+1)*0x9e3779b97f4a7c15}
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}
