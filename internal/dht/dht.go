// Package dht layers PRR-style object location (Plaxton, Rajaraman &
// Richa, SPAA 1997) on top of the hypercube routing fabric: the
// application the join protocol's neighbor tables exist to serve.
//
// Objects have IDs in the same space as nodes. Publishing an object walks
// the route from the storing node toward the object's root (the node the
// routing scheme converges to for that ID) and leaves a directory pointer
// at every hop; lookups walk the same route from the querying node and
// stop at the first pointer, which directs them to a nearby copy (the P2
// routing-locality property motivating the paper's introduction).
package dht

import (
	"fmt"
	"sort"
	"sync"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/obs"
	"hypercube/internal/table"
	"hypercube/internal/trace"
)

// Pointer is a directory entry: the object is stored at Holder.
type Pointer struct {
	Object id.ID
	Holder table.Ref
}

// Directory holds the per-node directory state (object pointers). It is
// kept outside the routing tables, as in PRR.
type Directory struct {
	mu       sync.Mutex
	pointers map[id.ID][]table.Ref // object -> holders, insertion order
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{pointers: make(map[id.ID][]table.Ref)}
}

// Add records that holder stores object; duplicates are ignored.
func (d *Directory) Add(object id.ID, holder table.Ref) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, h := range d.pointers[object] {
		if h.ID == holder.ID {
			return
		}
	}
	d.pointers[object] = append(d.pointers[object], holder)
}

// Lookup returns the recorded holders of object.
func (d *Directory) Lookup(object id.ID) []table.Ref {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]table.Ref, len(d.pointers[object]))
	copy(out, d.pointers[object])
	return out
}

// Remove deletes holder's pointer for object.
func (d *Directory) Remove(object id.ID, holder id.ID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	hs := d.pointers[object]
	for i, h := range hs {
		if h.ID == holder {
			d.pointers[object] = append(hs[:i], hs[i+1:]...)
			if len(d.pointers[object]) == 0 {
				delete(d.pointers, object)
			}
			return
		}
	}
}

// Len returns the number of objects with at least one pointer.
func (d *Directory) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pointers)
}

// Store is a distributed object-location service over a set of nodes
// reachable through a core.TableResolver (e.g. an overlay.Network).
type Store struct {
	params   id.Params
	resolver core.TableResolver

	mu   sync.Mutex
	dirs map[id.ID]*Directory
	// published is the authoritative (object, holder) list used by
	// Republish to repair directories after membership changes.
	published map[id.ID][]table.Ref

	// Observability: publishes and lookups are traced operation roots
	// recording the directory-path length / hop count. Set both before
	// first use; nil means off.
	sink   obs.Sink
	tracer *trace.Tracer
}

// SetSink installs the event sink (nil or obs.Nop turns it off); wrap
// with obs.Clocked so the driving runtime stamps Event.T.
func (s *Store) SetSink(sink obs.Sink) {
	if obs.IsNop(sink) {
		s.sink = nil
		return
	}
	s.sink = sink
}

// SetTracer installs the span-context source rooting each publish and
// lookup; nil turns it off.
func (s *Store) SetTracer(t *trace.Tracer) { s.tracer = t }

// root allocates a sampled root context when tracing is on.
func (s *Store) root() trace.Context {
	if s.tracer == nil {
		return trace.Context{}
	}
	return s.tracer.Root()
}

// NewStore creates a store over the given resolver.
func NewStore(p id.Params, resolver core.TableResolver) *Store {
	return &Store{
		params:    p,
		resolver:  resolver,
		dirs:      make(map[id.ID]*Directory),
		published: make(map[id.ID][]table.Ref),
	}
}

func (s *Store) dir(node id.ID) *Directory {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.dirs[node]
	if !ok {
		d = NewDirectory()
		s.dirs[node] = d
	}
	return d
}

// ObjectID hashes an object name into the ID space.
func (s *Store) ObjectID(name string) id.ID {
	return id.FromName(s.params, name)
}

// Publish stores a pointer to holder at every node on the route from
// holder toward the object's root. It returns the directory path walked
// and an error if the route breaks (impossible in a consistent network).
func (s *Store) Publish(object id.ID, holder table.Ref) ([]id.ID, error) {
	path, err := s.rootPath(holder.ID, object)
	if err != nil {
		return nil, fmt.Errorf("dht: publish %v: %w", object, err)
	}
	for _, node := range path {
		s.dir(node).Add(object, holder)
	}
	s.mu.Lock()
	dup := false
	for _, h := range s.published[object] {
		if h.ID == holder.ID {
			dup = true
		}
	}
	if !dup {
		s.published[object] = append(s.published[object], holder)
	}
	s.mu.Unlock()
	if s.sink != nil {
		s.sink.Emit(obs.Event{Node: holder.ID.String(), Kind: obs.KindDHTPublish, Detail: object.String(), N: len(path)}.Stamped(s.root(), trace.SpanID{}))
	}
	return path, nil
}

// Republish re-walks the publish path of every (object, holder) pair.
// Node joins can move an object's root (a new node may match more suffix
// digits of the object ID), leaving the new root without a pointer; PRR
// and Tapestry repair this by republishing when membership changes. Call
// after a join wave completes.
func (s *Store) Republish() error {
	s.mu.Lock()
	type pair struct {
		object id.ID
		holder table.Ref
	}
	pairs := make([]pair, 0, len(s.published))
	for object, holders := range s.published {
		for _, h := range holders {
			pairs = append(pairs, pair{object: object, holder: h})
		}
	}
	s.mu.Unlock()
	for _, pr := range pairs {
		path, err := s.rootPath(pr.holder.ID, pr.object)
		if err != nil {
			return fmt.Errorf("dht: republish %v: %w", pr.object, err)
		}
		for _, node := range path {
			s.dir(node).Add(pr.object, pr.holder)
		}
	}
	return nil
}

// Unpublish removes holder's pointers for object along the same route.
func (s *Store) Unpublish(object id.ID, holder table.Ref) error {
	path, err := s.rootPath(holder.ID, object)
	if err != nil {
		return fmt.Errorf("dht: unpublish %v: %w", object, err)
	}
	for _, node := range path {
		s.dir(node).Remove(object, holder.ID)
	}
	s.mu.Lock()
	hs := s.published[object]
	for i, h := range hs {
		if h.ID == holder.ID {
			s.published[object] = append(hs[:i], hs[i+1:]...)
			break
		}
	}
	if len(s.published[object]) == 0 {
		delete(s.published, object)
	}
	s.mu.Unlock()
	return nil
}

// Lookup routes from the querying node toward the object's root and
// returns the first holder found together with the number of hops the
// query traveled. The earlier a pointer is found, the nearer the copy
// (property P2).
func (s *Store) Lookup(from id.ID, object id.ID) (holder table.Ref, hops int, err error) {
	path, err := s.rootPath(from, object)
	if err != nil {
		return table.Ref{}, 0, fmt.Errorf("dht: lookup %v: %w", object, err)
	}
	for hop, node := range path {
		if hs := s.dir(node).Lookup(object); len(hs) > 0 {
			if s.sink != nil {
				s.sink.Emit(obs.Event{Node: from.String(), Kind: obs.KindDHTLookup, Detail: object.String(), N: hop}.Stamped(s.root(), trace.SpanID{}))
			}
			return hs[0], hop, nil
		}
	}
	if s.sink != nil {
		s.sink.Emit(obs.Event{Node: from.String(), Kind: obs.KindDHTLookup, Detail: object.String() + " miss", N: len(path)}.Stamped(s.root(), trace.SpanID{}))
	}
	return table.Ref{}, 0, fmt.Errorf("dht: object %v not found from %v", object, from)
}

// rootPath returns the node sequence from start to the object's root
// using surrogate routing: when no node extends the suffix match with the
// object's next digit, the digit is substituted by the cyclically next
// digit that some node does carry. Because a consistent network globally
// agrees on which suffixes are inhabited (Definition 3.8), every start
// node resolves the same substitutions and therefore the same unique root
// — the final-hop resolution technique the paper's §2 attributes to the
// schemes extending plain hypercube routing.
func (s *Store) rootPath(start id.ID, object id.ID) ([]id.ID, error) {
	cur := start
	target := object
	path := []id.ID{cur}
	// Each iteration grows csuf(cur, target) by at least one, so d+1
	// iterations suffice.
	for iter := 0; iter <= s.params.D; iter++ {
		k := cur.CommonSuffixLen(target)
		if k == s.params.D {
			return path, nil // cur is the root
		}
		tbl, ok := s.resolver.TableOf(cur)
		if !ok {
			return nil, fmt.Errorf("no table for %v", cur)
		}
		var next table.Neighbor
		for off := 0; off < s.params.B; off++ {
			j := (target.Digit(k) + off) % s.params.B
			if e := tbl.Get(k, j); !e.IsZero() {
				if j != target.Digit(k) {
					target = target.WithDigit(k, j)
				}
				next = e
				break
			}
		}
		if next.IsZero() {
			// Unreachable in a consistent network: the diagonal entry
			// (k, cur[k]) always holds cur itself.
			return nil, fmt.Errorf("node %v has an empty level %d", cur, k)
		}
		if next.ID != cur {
			cur = next.ID
			path = append(path, cur)
		}
	}
	return nil, fmt.Errorf("route to root of %v did not converge", object)
}

// Root returns the object's root node: where a publish path from any
// consistent node terminates. In a consistent network every node agrees
// on it (deterministic location, property P1).
func (s *Store) Root(anyNode id.ID, object id.ID) (id.ID, error) {
	path, err := s.rootPath(anyNode, object)
	if err != nil {
		return id.Null, err
	}
	return path[len(path)-1], nil
}

// DirectoryLoad returns per-node pointer counts sorted descending — the
// load-balance view (property P3).
func (s *Store) DirectoryLoad() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.dirs))
	for _, d := range s.dirs {
		out = append(out, d.Len())
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
