package tcptransport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Connections carry length-prefixed frames — a 4-byte big-endian payload
// length followed by one gob-encoded wireEnvelope — instead of a single
// long-lived gob stream. Framing is what makes the inbound path
// defensible: the reader knows a frame's size before decoding it (so an
// oversized frame is rejected for the cost of 4 bytes), one undecodable
// payload no longer poisons the whole stream (the next frame starts at a
// known boundary, so malformed frames can be counted against a budget
// instead of silently killing the connection), and read deadlines bound
// how long a peer may stall mid-frame.

// frameHeaderLen is the size of the length prefix.
const frameHeaderLen = 4

// errFrameTooBig marks a frame whose declared payload exceeds the
// configured maximum: the reader disconnects without reading the payload.
var errFrameTooBig = errors.New("tcptransport: frame exceeds size limit")

// encodeFrame renders env as one wire frame, ready to write.
func encodeFrame(env wireEnvelope) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(make([]byte, frameHeaderLen))
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return nil, fmt.Errorf("tcptransport: encode frame: %w", err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:frameHeaderLen], uint32(len(b)-frameHeaderLen))
	return b, nil
}

// writeFrame writes one pre-encoded frame under a write deadline (0
// disables the deadline).
func writeFrame(conn net.Conn, frame []byte, timeout time.Duration) error {
	if timeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
		defer conn.SetWriteDeadline(time.Time{})
	}
	_, err := conn.Write(frame)
	return err
}

// readFrame reads one frame payload, enforcing the size limit and an
// idle deadline covering the whole frame (0 disables the deadline).
// Oversized frames return errFrameTooBig without reading the payload.
func readFrame(conn net.Conn, maxBytes int, idle time.Duration) ([]byte, error) {
	if idle > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(idle)); err != nil {
			return nil, err
		}
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(maxBytes) {
		return nil, errFrameTooBig
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// decodeFrame parses one frame payload back into a wireEnvelope.
func decodeFrame(payload []byte) (wireEnvelope, error) {
	var w wireEnvelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&w); err != nil {
		return wireEnvelope{}, fmt.Errorf("tcptransport: decode frame: %w", err)
	}
	return w, nil
}
