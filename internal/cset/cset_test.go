package cset_test

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/cset"
	"hypercube/internal/id"
	"hypercube/internal/netcheck"
	"hypercube/internal/overlay"
	"hypercube/internal/table"
)

var p85 = id.Params{B: 8, D: 5} // the Figure 2 space

func ids(t *testing.T, p id.Params, ss ...string) []id.ID {
	t.Helper()
	out := make([]id.ID, len(ss))
	for i, s := range ss {
		out[i] = id.MustParse(p, s)
	}
	return out
}

// paperV and paperW are the §3.3 / Figure 2 example sets.
func paperV(t *testing.T) []id.ID {
	return ids(t, p85, "72430", "10353", "62332", "13141", "31701")
}

func paperW(t *testing.T) []id.ID {
	return ids(t, p85, "10261", "47051", "00261")
}

func TestNotifySuffixPaperExample(t *testing.T) {
	reg := netcheck.NewSuffixRegistry(p85, paperV(t))
	// §3.3: all three joiners notify V_1 (13141 and 31701 end in 1; no
	// existing node matches two digits of any joiner).
	for _, w := range paperW(t) {
		if got := cset.NotifySuffix(p85, reg, w).String(); got != "1" {
			t.Errorf("NotifySuffix(%v) = %q, want 1", w, got)
		}
	}
}

func TestNotifySuffixVariants(t *testing.T) {
	reg := netcheck.NewSuffixRegistry(p85, paperV(t))
	tests := []struct {
		x    string
		want string
	}{
		{"67320", "0"},    // matches 72430's rightmost digit only
		{"11445", "ε"},    // no member ends in 5
		{"55553", "53"},   // 10353 shares suffix 53
		{"00353", "0353"}, // 10353 shares 4 digits
		{"72431", "1"},    // ends in 1
	}
	for _, tt := range tests {
		x := id.MustParse(p85, tt.x)
		if got := cset.NotifySuffix(p85, reg, x).String(); got != tt.want {
			t.Errorf("NotifySuffix(%s) = %q, want %q", tt.x, got, tt.want)
		}
	}
}

func TestSequentialAndConcurrent(t *testing.T) {
	seq := []cset.Interval{{0, 1}, {2, 3}, {4, 5}}
	if !cset.Sequential(seq) {
		t.Error("disjoint periods not sequential")
	}
	if cset.Concurrent(seq) {
		t.Error("disjoint periods reported concurrent")
	}
	conc := []cset.Interval{{0, 2}, {1, 4}, {3, 6}}
	if cset.Sequential(conc) {
		t.Error("overlapping periods reported sequential")
	}
	if !cset.Concurrent(conc) {
		t.Error("chained overlaps not concurrent")
	}
	// A gap in coverage breaks Definition 3.3 even with pairwise overlaps.
	gap := []cset.Interval{{0, 1}, {0.5, 2}, {5, 6}, {5.5, 7}}
	if cset.Concurrent(gap) {
		t.Error("gapped periods reported concurrent")
	}
	if cset.Sequential(gap) {
		t.Error("gapped-but-overlapping periods reported sequential")
	}
	if cset.Concurrent([]cset.Interval{{0, 1}}) {
		t.Error("single join reported concurrent")
	}
}

func TestIndependentAndGroups(t *testing.T) {
	reg := netcheck.NewSuffixRegistry(p85, paperV(t))
	// 10261 and 00261 share noti-set V_1; 67320 notifies V_0; 11445
	// notifies V (§3.3's second example).
	w := ids(t, p85, "10261", "00261", "67320", "11445")
	if cset.Independent(p85, reg, w) {
		t.Error("overlapping noti-sets reported independent")
	}
	if !cset.Independent(p85, reg, w[1:3]) {
		t.Error("V_0 vs V_261-rooted joins should be independent")
	}
	// ε is a suffix of everything: 11445's noti-set V contains all others.
	groups := cset.DependencyGroups(p85, reg, w)
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1 (11445's V_ε links all)", len(groups))
	}
	groups = cset.DependencyGroups(p85, reg, w[:3])
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	sizes := map[int]bool{len(groups[0]): true, len(groups[1]): true}
	if !sizes[2] || !sizes[1] {
		t.Errorf("group sizes wrong: %v", groups)
	}
}

func TestTemplateMatchesFigure2(t *testing.T) {
	omega := id.MustParseSuffix(p85, "1")
	tree := cset.Template(p85, paperW(t), omega)
	if tree.RootSuffix != omega {
		t.Fatalf("root = %v", tree.RootSuffix)
	}
	// Figure 2(b): V_1 -> {C61, C51}; C61 -> C261 -> C0261 -> {C00261,
	// C10261}; C51 -> C051 -> C7051 -> C47051. Nine C-sets.
	if got := tree.Size(); got != 9 {
		t.Fatalf("tree size = %d, want 9:\n%s", got, tree)
	}
	wantSuffixes := []string{"61", "261", "0261", "00261", "10261", "51", "051", "7051", "47051"}
	for _, s := range wantSuffixes[:5] {
		if tree.Find(id.MustParseSuffix(p85, s)) == nil && s != "61" {
			t.Errorf("C-set %q missing", s)
		}
	}
	c61 := tree.Find(id.MustParseSuffix(p85, "61"))
	c51 := tree.Find(id.MustParseSuffix(p85, "51"))
	if c61 == nil || c51 == nil {
		t.Fatal("root children missing")
	}
	if len(tree.Roots) != 2 {
		t.Fatalf("root children = %d, want 2", len(tree.Roots))
	}
	if len(c61.Children) != 1 || c61.Children[0].Suffix.String() != "261" {
		t.Errorf("C61 children wrong")
	}
	c0261 := tree.Find(id.MustParseSuffix(p85, "0261"))
	if c0261 == nil || len(c0261.Children) != 2 {
		t.Fatalf("C0261 should have two children (C00261, C10261)")
	}
	leaf := tree.Find(id.MustParseSuffix(p85, "47051"))
	if leaf == nil || len(leaf.Children) != 0 {
		t.Error("C47051 should be a leaf")
	}
	// Render is Figure-2 style.
	s := tree.String()
	if !strings.Contains(s, "V_1") || !strings.Contains(s, "C_47051") {
		t.Errorf("render:\n%s", s)
	}
}

func TestTemplateSingleJoiner(t *testing.T) {
	omega := id.MustParseSuffix(p85, "1")
	tree := cset.Template(p85, ids(t, p85, "10261"), omega)
	// Chain C61 -> C261 -> C0261 -> C10261: 4 C-sets, no branching.
	if got := tree.Size(); got != 4 {
		t.Fatalf("size = %d, want 4", got)
	}
	n := tree.Roots[0]
	depth := 1
	for len(n.Children) > 0 {
		if len(n.Children) != 1 {
			t.Fatalf("branching in single-joiner tree at %v", n.Suffix)
		}
		n = n.Children[0]
		depth++
	}
	if depth != 4 {
		t.Errorf("chain depth = %d", depth)
	}
}

// runPaperScenario joins W into the Figure 2 network via the real
// protocol and returns the network.
func runPaperScenario(t *testing.T, seed int64) *overlay.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := overlay.New(overlay.Config{
		Params:  p85,
		Latency: overlay.HashedUniformLatency(5*time.Millisecond, 80*time.Millisecond, seed),
	})
	var vRefs []table.Ref
	for _, v := range paperV(t) {
		vRefs = append(vRefs, table.Ref{ID: v, Addr: "sim://" + v.String()})
	}
	net.BuildDirect(vRefs, rng)
	for _, w := range paperW(t) {
		g0 := vRefs[rng.Intn(len(vRefs))]
		net.ScheduleJoin(table.Ref{ID: w, Addr: "sim://" + w.String()}, g0, 0)
	}
	net.Run()
	if v := net.CheckConsistency(); len(v) != 0 {
		t.Fatalf("scenario inconsistent: %v", v[0])
	}
	return net
}

func TestRealizedTreeMatchesTemplate(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		net := runPaperScenario(t, seed)
		omega := id.MustParseSuffix(p85, "1")
		template := cset.Template(p85, paperW(t), omega)
		realized := cset.Realized(p85, paperV(t), paperW(t), omega, net.Tables())
		problems := cset.VerifyConditions(p85, template, realized, paperV(t), paperW(t), net.Tables())
		if len(problems) != 0 {
			t.Fatalf("seed %d: %v\ntemplate:\n%v\nrealized:\n%v", seed, problems[0], template, realized)
		}
		// Condition (1) corollary: each leaf C-set contains its node.
		for _, w := range paperW(t) {
			leaf := realized.Find(w.Suffix(p85.D))
			if leaf == nil {
				t.Fatalf("seed %d: leaf for %v missing", seed, w)
			}
			found := false
			for _, m := range leaf.Members {
				if m == w {
					found = true
				}
			}
			if !found {
				t.Errorf("seed %d: leaf C-set %v does not contain %v", seed, leaf.Suffix, w)
			}
		}
	}
}

func TestVerifyConditionsDetectsViolations(t *testing.T) {
	net := runPaperScenario(t, 3)
	omega := id.MustParseSuffix(p85, "1")
	template := cset.Template(p85, paperW(t), omega)
	tables := net.Tables()

	// Sabotage condition (2): erase a V_1 member's pointer into C61.
	u := id.MustParse(p85, "13141")
	saved := tables[u].Get(1, 6)
	tables[u].Set(1, 6, table.Neighbor{})
	realized := cset.Realized(p85, paperV(t), paperW(t), omega, tables)
	problems := cset.VerifyConditions(p85, template, realized, paperV(t), paperW(t), tables)
	if len(problems) == 0 {
		t.Fatal("sabotaged condition 2 not detected")
	}
	cond2 := false
	for _, pr := range problems {
		if pr.Condition == 2 && strings.Contains(pr.String(), "13141") {
			cond2 = true
		}
	}
	if !cond2 {
		t.Errorf("no condition-2 problem among %v", problems)
	}
	tables[u].Set(1, 6, saved)

	// Sabotage condition (3): erase joiner 00261's pointer to sibling C10261.
	x := id.MustParse(p85, "00261")
	if e := tables[x].Get(4, 1); e.IsZero() || !strings.HasSuffix(e.ID.String(), "0261") {
		t.Fatalf("setup: expected 00261 to hold a 10261-suffix neighbor, have %v", e.ID)
	}
	tables[x].Set(4, 1, table.Neighbor{})
	realized = cset.Realized(p85, paperV(t), paperW(t), omega, tables)
	problems = cset.VerifyConditions(p85, template, realized, paperV(t), paperW(t), tables)
	cond3 := false
	for _, pr := range problems {
		if pr.Condition == 3 {
			cond3 = true
		}
	}
	if !cond3 {
		t.Errorf("sabotaged condition 3 not detected: %v", problems)
	}
}

func TestRealizedOnRandomWaves(t *testing.T) {
	// Beyond the paper example: random concurrent waves; for every
	// dependency group sharing one noti-set, the realized C-set tree must
	// satisfy all three conditions.
	p := id.Params{B: 4, D: 5}
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := overlay.New(overlay.Config{Params: p})
		taken := make(map[id.ID]bool)
		vRefs := overlay.RandomRefs(p, 30, rng, taken)
		wRefs := overlay.RandomRefs(p, 15, rng, taken)
		net.BuildDirect(vRefs, rng)
		for _, w := range wRefs {
			net.ScheduleJoin(w, vRefs[rng.Intn(len(vRefs))], 0)
		}
		net.Run()
		if v := net.CheckConsistency(); len(v) != 0 {
			t.Fatalf("seed %d inconsistent: %v", seed, v[0])
		}

		vIDs := make([]id.ID, len(vRefs))
		for i, r := range vRefs {
			vIDs[i] = r.ID
		}
		wIDs := make([]id.ID, len(wRefs))
		for i, r := range wRefs {
			wIDs[i] = r.ID
		}
		reg := netcheck.NewSuffixRegistry(p, vIDs)
		// Group joiners by notification suffix; each group with a shared
		// suffix forms one C-set tree.
		bySuffix := make(map[id.Suffix][]id.ID)
		for _, w := range wIDs {
			s := cset.NotifySuffix(p, reg, w)
			bySuffix[s] = append(bySuffix[s], w)
		}
		for omega, group := range bySuffix {
			template := cset.Template(p, group, omega)
			realized := cset.Realized(p, vIDs, group, omega, net.Tables())
			problems := cset.VerifyConditions(p, template, realized, vIDs, group, net.Tables())
			if len(problems) != 0 {
				t.Errorf("seed %d, tree V_%v: %v", seed, omega, problems[0])
			}
		}
	}
}

func TestJoinPeriodsFromRecordsAreConcurrent(t *testing.T) {
	// The wave harness starts all joins at t=0 (the paper's setup); the
	// recorded joining periods must classify as concurrent, not sequential.
	res, err := overlay.RunWave(overlay.WaveConfig{
		Params: id.Params{B: 16, D: 4}, N: 50, M: 20, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	periods := make([]cset.Interval, 0, len(res.Records))
	for _, r := range res.Records {
		periods = append(periods, cset.Interval{
			Begin: r.Started.Seconds(),
			End:   r.Ended.Seconds(),
		})
	}
	if !cset.Concurrent(periods) {
		t.Error("t=0 wave not classified concurrent")
	}
	if cset.Sequential(periods) {
		t.Error("t=0 wave classified sequential")
	}
}

var _ = core.StatusInSystem // keep import for doc reference symmetry

func TestVerifyConditionsDetectsStructureMismatch(t *testing.T) {
	// Condition (1): a template C-set missing from the realization, and a
	// realized C-set missing from the template, are both reported.
	omega := id.MustParseSuffix(p85, "1")
	full := cset.Template(p85, paperW(t), omega)
	partial := cset.Template(p85, paperW(t)[:1], omega) // only 10261's chain

	// Realized "tree" built from empty tables: all C-sets empty/missing.
	netw := runPaperScenario(t, 5)
	realizedPartial := cset.Realized(p85, paperV(t), paperW(t)[:1], omega, netw.Tables())

	problems := cset.VerifyConditions(p85, full, realizedPartial, paperV(t), paperW(t), netw.Tables())
	cond1 := 0
	for _, pr := range problems {
		if pr.Condition == 1 {
			cond1++
		}
	}
	if cond1 == 0 {
		t.Fatalf("missing C-sets not reported: %v", problems)
	}

	// Reverse direction: realization has branches the template lacks.
	realizedFull := cset.Realized(p85, paperV(t), paperW(t), omega, netw.Tables())
	problems = cset.VerifyConditions(p85, partial, realizedFull, paperV(t), paperW(t)[:1], netw.Tables())
	extra := false
	for _, pr := range problems {
		if pr.Condition == 1 && strings.Contains(pr.Detail, "not in template") {
			extra = true
		}
	}
	if !extra {
		t.Fatalf("extra realized C-sets not reported: %v", problems)
	}
}

func TestProblemString(t *testing.T) {
	pr := cset.Problem{Condition: 2, Detail: "something"}
	if got := pr.String(); !strings.Contains(got, "condition (2)") || !strings.Contains(got, "something") {
		t.Errorf("Problem.String() = %q", got)
	}
}

func TestTreeFindAndChild(t *testing.T) {
	omega := id.MustParseSuffix(p85, "1")
	tree := cset.Template(p85, paperW(t), omega)
	if tree.Find(id.MustParseSuffix(p85, "77")) != nil {
		t.Error("Find returned a node for an absent suffix")
	}
	c61 := tree.Find(id.MustParseSuffix(p85, "61"))
	if c61 == nil {
		t.Fatal("C61 missing")
	}
	if c61.Child(2) == nil { // C261
		t.Error("C61.Child(2) missing")
	}
	if c61.Child(5) != nil {
		t.Error("C61.Child(5) should not exist")
	}
}
