package persist

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hypercube/internal/id"
	"hypercube/internal/table"
)

var p164 = id.Params{B: 16, D: 4}

func sampleTable(t *testing.T) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	owner := id.Random(p164, rng)
	tbl := table.New(p164, owner)
	for i := 0; i < p164.D; i++ {
		tbl.Set(i, owner.Digit(i), table.Neighbor{ID: owner, State: table.StateS})
	}
	for n := 0; n < 20; n++ {
		level, digit := rng.Intn(p164.D), rng.Intn(p164.B)
		st := table.StateS
		if rng.Intn(3) == 0 {
			st = table.StateT
		}
		cand := id.Random(p164, rng)
		if tbl.Qualifies(level, digit, cand) {
			tbl.Set(level, digit, table.Neighbor{ID: cand, Addr: "10.0.0.1:99", State: st})
		}
	}
	return tbl
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tbl := sampleTable(t)
	var buf bytes.Buffer
	if err := Save(&buf, tbl.Snapshot()); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, p164)
	if err != nil {
		t.Fatal(err)
	}
	if back.Owner() != tbl.Owner() {
		t.Fatalf("owner %v, want %v", back.Owner(), tbl.Owner())
	}
	for i := 0; i < p164.D; i++ {
		for j := 0; j < p164.B; j++ {
			if back.Get(i, j) != tbl.Get(i, j) {
				t.Fatalf("entry (%d,%d) differs: %+v vs %+v", i, j, back.Get(i, j), tbl.Get(i, j))
			}
		}
	}
	restored := Restore(back)
	if restored.FilledCount() != tbl.FilledCount() {
		t.Fatalf("restored %d entries, want %d", restored.FilledCount(), tbl.FilledCount())
	}
}

func TestSaveZeroSnapshotFails(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, table.Snapshot{}); err == nil {
		t.Fatal("zero snapshot saved")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json",
		"wrongVersion":  `{"version":99,"b":16,"d":4,"owner":"0000"}`,
		"wrongSpace":    `{"version":1,"b":4,"d":4,"owner":"0000"}`,
		"badOwner":      `{"version":1,"b":16,"d":4,"owner":"zzzz"}`,
		"badEntryID":    `{"version":1,"b":16,"d":4,"owner":"0123","lo":0,"hi":3,"entries":[{"level":0,"digit":1,"id":"!!!!","state":"S"}]}`,
		"badEntryState": `{"version":1,"b":16,"d":4,"owner":"0123","lo":0,"hi":3,"entries":[{"level":0,"digit":1,"id":"aaa1","state":"Q"}]}`,
		"badEntryRange": `{"version":1,"b":16,"d":4,"owner":"0123","lo":0,"hi":3,"entries":[{"level":9,"digit":1,"id":"aaa1","state":"S"}]}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(in), p164); err == nil {
				t.Fatalf("accepted %q", in)
			}
		})
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	tbl := sampleTable(t)
	path := filepath.Join(t.TempDir(), "table.json")
	if err := SaveFile(path, tbl.Snapshot()); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path, p164)
	if err != nil {
		t.Fatal(err)
	}
	if back.FilledCount() != tbl.FilledCount() {
		t.Fatalf("FilledCount %d, want %d", back.FilledCount(), tbl.FilledCount())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json"), p164); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestKilledSaveKeepsPreviousDump(t *testing.T) {
	// A node that dies mid-dump must not destroy the dump it restarts
	// from. Write a good file, then kill a second save after a partial
	// write (the temp file is truncated to half and the save aborts,
	// before the rename commit point): the original must load intact
	// and no temp debris may remain.
	dir := t.TempDir()
	path := filepath.Join(dir, "table.json")
	tbl := sampleTable(t)
	if err := SaveFile(path, tbl.Snapshot()); err != nil {
		t.Fatal(err)
	}

	saveHook = func(tmp *os.File) error {
		info, err := tmp.Stat()
		if err != nil {
			return err
		}
		if err := tmp.Truncate(info.Size() / 2); err != nil {
			return err
		}
		return errors.New("killed mid-write")
	}
	defer func() { saveHook = nil }()
	if err := SaveFile(path, tbl.Snapshot()); err == nil {
		t.Fatal("killed save reported success")
	}

	back, err := LoadFile(path, p164)
	if err != nil {
		t.Fatalf("previous dump lost: %v", err)
	}
	if back.Owner() != tbl.Owner() || back.FilledCount() != tbl.FilledCount() {
		t.Fatalf("previous dump corrupted: owner %v filled %d, want %v / %d",
			back.Owner(), back.FilledCount(), tbl.Owner(), tbl.FilledCount())
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Name() != "table.json" {
		names := make([]string, len(files))
		for i, f := range files {
			names[i] = f.Name()
		}
		t.Fatalf("temp debris left behind: %v", names)
	}
}

func TestRestartRejoinFlow(t *testing.T) {
	// The intended use: dump a node's table, "restart" it as an
	// established machine with the restored table, and re-announce.
	tbl := sampleTable(t)
	path := filepath.Join(t.TempDir(), "node.json")
	if err := SaveFile(path, tbl.Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadFile(path, p164)
	if err != nil {
		t.Fatal(err)
	}
	restored := Restore(snap)
	if restored.Owner() != tbl.Owner() {
		t.Fatal("owner lost through restart")
	}
	// The restored table is a drop-in for core.NewEstablished; its
	// version counter starts fresh but content matches.
	if restored.FilledCount() == 0 {
		t.Fatal("restored table empty")
	}
}

func TestBitFlipCorruptionDetected(t *testing.T) {
	// The corruption-injection test: flip every bit of a valid dump in
	// turn and load each damaged copy. Every load must either detect
	// corruption (the restart-as-fresh-join path) or — never — succeed
	// while returning a snapshot that differs from the original. A flip
	// may legally go unnoticed only when it does not change the decoded
	// values (whitespace damage), in which case the load must return the
	// exact original state.
	tbl := sampleTable(t)
	sampled := []table.Ref{{ID: tbl.Owner(), Addr: "10.0.0.7:1"}}
	var buf bytes.Buffer
	if err := SaveState(&buf, tbl.Snapshot(), sampled); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	want, _, err := LoadState(bytes.NewReader(good), p164)
	if err != nil {
		t.Fatal(err)
	}

	before := CorruptionsDetected()
	detected, harmless := 0, 0
	// Step by a prime so the sweep covers bytes all over the file
	// without taking len(good)*8 loads.
	for off := 0; off < len(good); off += 7 {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), good...)
			bad[off] ^= 1 << bit
			snap, _, err := LoadState(bytes.NewReader(bad), p164)
			if err != nil {
				if !IsCorrupt(err) {
					t.Fatalf("flip at %d.%d: error is not ErrCorrupt: %v", off, bit, err)
				}
				detected++
				continue
			}
			if snap.Owner() != want.Owner() || snap.FilledCount() != want.FilledCount() {
				t.Fatalf("flip at %d.%d loaded silently with altered state", off, bit)
			}
			harmless++
		}
	}
	if detected == 0 {
		t.Fatal("no flip was ever detected")
	}
	t.Logf("flips: %d detected, %d harmless", detected, harmless)
	if got := CorruptionsDetected(); got < before+uint64(detected) {
		t.Fatalf("CorruptionsDetected %d, want at least %d", got, before+uint64(detected))
	}
}

func TestTruncatedDumpCorrupt(t *testing.T) {
	tbl := sampleTable(t)
	var buf bytes.Buffer
	if err := Save(&buf, tbl.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int{0, 1, 2, 3} {
		cut := buf.Len() * frac / 4
		_, err := Load(bytes.NewReader(buf.Bytes()[:cut]), p164)
		if err == nil {
			t.Fatalf("dump truncated to %d/%d bytes loaded", cut, buf.Len())
		}
		if !IsCorrupt(err) {
			t.Fatalf("truncation to %d bytes not flagged corrupt: %v", cut, err)
		}
	}
}

func TestChecksumlessDumpStillLoads(t *testing.T) {
	// Dumps written before checksumming carry no crc32 field; they must
	// keep loading so a node upgraded across the change can still
	// restart from its last pre-upgrade dump.
	in := `{"version":1,"b":16,"d":4,"owner":"0123","lo":0,"hi":3,"entries":[{"level":0,"digit":0,"id":"0123","state":"S"}]}`
	snap, err := Load(strings.NewReader(in), p164)
	if err != nil {
		t.Fatal(err)
	}
	if snap.FilledCount() != 1 {
		t.Fatalf("FilledCount %d, want 1", snap.FilledCount())
	}
}
