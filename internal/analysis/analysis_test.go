package analysis

import (
	"math"
	"math/rand"
	"testing"

	"hypercube/internal/id"
)

func TestTheorem3Bound(t *testing.T) {
	if Theorem3Bound(8) != 9 || Theorem3Bound(40) != 41 {
		t.Error("Theorem3Bound wrong")
	}
}

// TestPaperInTextBounds reproduces the §5.2 in-text Theorem-5 values:
// "the upper bounds by Theorem 5 are 8.001, 8.001, 6.986, and 6.986" for
// the setups (n=3096, d=8), (n=3096, d=40), (n=7192, d=8), (n=7192, d=40)
// with b=16, m=1000.
func TestPaperInTextBounds(t *testing.T) {
	tests := []struct {
		n, d int
		want float64
	}{
		{3096, 8, 8.001},
		{3096, 40, 8.001},
		{7192, 8, 6.986},
		{7192, 40, 6.986},
	}
	for _, tt := range tests {
		got := UpperBoundJoinNoti(16, tt.d, tt.n, 1000)
		if math.Abs(got-tt.want) > 0.0015 {
			t.Errorf("UpperBound(b=16,d=%d,n=%d,m=1000) = %.4f, paper says %.3f", tt.d, tt.n, got, tt.want)
		}
	}
}

func TestQBoundaries(t *testing.T) {
	// Q_0 = 0 for n >= 1 (some node always shares the empty suffix... the
	// matching set at i=0 is the whole space, so no non-matching ID exists).
	if got := Q(16, 8, 0, 100); got != 0 {
		t.Errorf("Q_0 = %v, want 0", got)
	}
	// Q_d = 1: no other node shares all d digits (IDs are unique).
	if got := Q(16, 8, 8, 100); got != 1 {
		t.Errorf("Q_d = %v, want 1", got)
	}
	// n = 0: trivially no node shares anything.
	if got := Q(16, 8, 3, 0); got != 1 {
		t.Errorf("Q(n=0) = %v, want 1", got)
	}
	// Monotone in i: sharing more digits is harder.
	prev := -1.0
	for i := 0; i <= 8; i++ {
		q := Q(16, 8, i, 5000)
		if q < prev-1e-12 {
			t.Fatalf("Q not monotone at i=%d: %v < %v", i, q, prev)
		}
		if q < 0 || q > 1 {
			t.Fatalf("Q_%d = %v out of [0,1]", i, q)
		}
		prev = q
	}
}

func TestQPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Q(16, 8, -1, 10) },
		func() { Q(16, 8, 9, 10) },
		func() { Q(1, 8, 2, 10) },
		func() { ExpectedJoinNoti(16, 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLevelsSumToOne(t *testing.T) {
	for _, tt := range []struct{ b, d, n int }{
		{16, 8, 1}, {16, 8, 3096}, {16, 40, 7192}, {4, 5, 100}, {2, 10, 50}, {16, 8, 100000},
	} {
		levels := Levels(tt.b, tt.d, tt.n)
		if len(levels) != tt.d {
			t.Fatalf("Levels returned %d entries", len(levels))
		}
		sum := 0.0
		for _, p := range levels {
			if p < 0 || p > 1 {
				t.Fatalf("P out of range: %v", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("ΣP_i = %v for b=%d d=%d n=%d", sum, tt.b, tt.d, tt.n)
		}
	}
}

func TestPMatchesQDifference(t *testing.T) {
	for i := 0; i < 8; i++ {
		want := Q(16, 8, i+1, 3096) - Q(16, 8, i, 3096)
		if want < 0 {
			want = 0
		}
		if got := P(16, 8, i, 3096); math.Abs(got-want) > 1e-15 {
			t.Errorf("P_%d = %v, want %v", i, got, want)
		}
	}
}

// TestLevelsAgainstMonteCarlo cross-checks the closed form against direct
// simulation in a small ID space: draw n distinct IDs, measure the
// longest-suffix-match distribution against a reference ID.
func TestLevelsAgainstMonteCarlo(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	const n = 40
	const trials = 30000
	rng := rand.New(rand.NewSource(17))
	counts := make([]int, p.D)
	for trial := 0; trial < trials; trial++ {
		x := id.Random(p, rng)
		seen := map[id.ID]bool{x: true}
		best := 0
		for drawn := 0; drawn < n; {
			y := id.Random(p, rng)
			if seen[y] {
				continue
			}
			seen[y] = true
			drawn++
			if k := x.CommonSuffixLen(y); k > best {
				best = k
			}
		}
		counts[best]++
	}
	levels := Levels(p.B, p.D, n)
	for i := 0; i < p.D; i++ {
		got := float64(counts[i]) / trials
		if math.Abs(got-levels[i]) > 0.01 {
			t.Errorf("P_%d: closed form %.4f vs Monte Carlo %.4f", i, levels[i], got)
		}
	}
}

func TestExpectedVsUpperBound(t *testing.T) {
	// The Theorem 5 bound with m joiners must dominate the single-join
	// expectation (which effectively has m=0 and subtracts the self term).
	for _, n := range []int{100, 3096, 7192, 50000} {
		e := ExpectedJoinNoti(16, 8, n)
		ub := UpperBoundJoinNoti(16, 8, n, 1000)
		if e >= ub {
			t.Errorf("n=%d: E(J)=%v >= bound %v", n, e, ub)
		}
		if e < 0 {
			t.Errorf("n=%d: negative expectation %v", n, e)
		}
	}
}

func TestUpperBoundGrowsWithM(t *testing.T) {
	prev := 0.0
	for _, m := range []int{0, 100, 500, 1000, 5000} {
		ub := UpperBoundJoinNoti(16, 8, 3096, m)
		if ub <= prev && m > 0 {
			t.Errorf("bound not increasing in m: %v at m=%d", ub, m)
		}
		prev = ub
	}
}

func TestBoundInsensitiveToLargeD(t *testing.T) {
	// The paper's bounds for d=8 and d=40 agree to 3 decimals: beyond the
	// levels where matches are probable, P_i ≈ 0.
	a := UpperBoundJoinNoti(16, 8, 3096, 1000)
	b := UpperBoundJoinNoti(16, 40, 3096, 1000)
	if math.Abs(a-b) > 0.001 {
		t.Errorf("d=8 vs d=40 bounds differ: %v vs %v", a, b)
	}
}

func TestFigure15aSeries(t *testing.T) {
	curves := PaperFigure15aCurves()
	if len(curves) != 4 {
		t.Fatalf("curves = %d", len(curves))
	}
	ns := PaperFigure15aN()
	if len(ns) != 10 || ns[0] != 10000 || ns[9] != 100000 {
		t.Fatalf("ns = %v", ns)
	}
	series := Figure15a(curves, ns)
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 10 {
			t.Fatalf("series %q has %d points", s.Label, len(s.Points))
		}
		for _, pt := range s.Points {
			// The paper's y-axis spans 3..9 over this range.
			if pt.Y < 3 || pt.Y > 9 {
				t.Errorf("series %q point (%v,%v) outside the paper's plotted range", s.Label, pt.X, pt.Y)
			}
		}
	}
	// m=1000 curves dominate m=500 curves pointwise.
	for i := range ns {
		if series[0].Points[i].Y >= series[1].Points[i].Y {
			t.Errorf("m=500 curve not below m=1000 at n=%v", series[0].Points[i].X)
		}
	}
	if series[0].Label != "m=500, b=16, d=40" {
		t.Errorf("label = %q", series[0].Label)
	}
}

func BenchmarkUpperBound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = UpperBoundJoinNoti(16, 40, 100000, 1000)
	}
}
