package rtt

import (
	"testing"
	"time"

	"hypercube/internal/id"
)

var p44 = id.Params{B: 4, D: 4}

func mkID(t *testing.T, s string) id.ID {
	t.Helper()
	return id.MustParse(p44, s)
}

func TestFirstSampleSeedsEstimate(t *testing.T) {
	e := New(Config{})
	x := mkID(t, "1111")
	if _, ok := e.RTO(x); ok {
		t.Fatalf("RTO reported before any sample")
	}
	u := e.Observe(x, 200*time.Millisecond)
	// srtt = s, rttvar = s/2 -> RTO = s + 4*(s/2) = 3s = 600ms.
	if u.SRTT != 200*time.Millisecond {
		t.Fatalf("first srtt = %v, want 200ms", u.SRTT)
	}
	if u.RTO != 600*time.Millisecond {
		t.Fatalf("first RTO = %v, want 600ms", u.RTO)
	}
	if rto, ok := e.RTO(x); !ok || rto != u.RTO {
		t.Fatalf("RTO() = %v,%v, want %v,true", rto, ok, u.RTO)
	}
}

func TestEWMAConvergesAndVarShrinks(t *testing.T) {
	e := New(Config{MinRTO: time.Millisecond})
	x := mkID(t, "1111")
	var u Update
	for i := 0; i < 64; i++ {
		u = e.Observe(x, 100*time.Millisecond)
	}
	if u.SRTT < 99*time.Millisecond || u.SRTT > 101*time.Millisecond {
		t.Fatalf("srtt did not converge: %v", u.SRTT)
	}
	// With zero deviation the variance decays toward zero and the RTO
	// approaches srtt (floored by MinRTO).
	if u.RTO > 110*time.Millisecond {
		t.Fatalf("RTO did not tighten on a steady peer: %v", u.RTO)
	}
}

func TestRTOClamped(t *testing.T) {
	e := New(Config{MinRTO: 100 * time.Millisecond, MaxRTO: time.Second})
	fast, slow := mkID(t, "1111"), mkID(t, "2222")
	var u Update
	for i := 0; i < 32; i++ {
		u = e.Observe(fast, time.Millisecond)
	}
	if u.RTO != 100*time.Millisecond {
		t.Fatalf("fast peer RTO = %v, want MinRTO clamp 100ms", u.RTO)
	}
	for i := 0; i < 32; i++ {
		u = e.Observe(slow, 10*time.Second)
	}
	if u.RTO != time.Second {
		t.Fatalf("slow peer RTO = %v, want MaxRTO clamp 1s", u.RTO)
	}
}

func TestNonPositiveSampleIgnored(t *testing.T) {
	e := New(Config{})
	x := mkID(t, "1111")
	e.Observe(x, 100*time.Millisecond)
	before, _ := e.SRTT(x)
	e.Observe(x, 0)
	e.Observe(x, -time.Second)
	after, _ := e.SRTT(x)
	if before != after {
		t.Fatalf("non-positive sample moved srtt: %v -> %v", before, after)
	}
	if st := e.Stats(); st.Samples != 1 {
		t.Fatalf("non-positive samples counted: %+v", st)
	}
}

// degradeSetup drives three fast peers and one slow peer to steady
// state and returns the estimator plus the slow peer's ID.
func degradeSetup(t *testing.T, slowRTT time.Duration) (*Estimator, id.ID) {
	t.Helper()
	e := New(Config{MinRTO: time.Millisecond})
	fast := []id.ID{mkID(t, "1111"), mkID(t, "2222"), mkID(t, "3333")}
	slow := mkID(t, "1230")
	for i := 0; i < 8; i++ {
		for _, x := range fast {
			e.Observe(x, 50*time.Millisecond)
		}
		e.Observe(slow, slowRTT)
	}
	return e, slow
}

func TestDegradedMarkAndClear(t *testing.T) {
	e, slow := degradeSetup(t, 900*time.Millisecond)
	if !e.Degraded(slow) {
		t.Fatalf("10x-slower peer not flagged degraded")
	}
	st := e.Stats()
	if st.Degraded != 1 || st.Marked != 1 {
		t.Fatalf("stats after mark: %+v", st)
	}
	// Recovery: the peer speeds back up; hysteresis clears the flag
	// once srtt falls to half the mark threshold.
	var u Update
	for i := 0; i < 64 && e.Degraded(slow); i++ {
		u = e.Observe(slow, 50*time.Millisecond)
	}
	if u.Degraded {
		t.Fatalf("degraded flag never cleared after recovery (srtt %v)", u.SRTT)
	}
	st = e.Stats()
	if st.Degraded != 0 || st.Cleared != 1 {
		t.Fatalf("stats after clear: %+v", st)
	}
}

func TestDegradedTransitionReportedOnce(t *testing.T) {
	e, slow := degradeSetup(t, 900*time.Millisecond)
	// The mark transition already happened inside degradeSetup; further
	// slow samples must not report Changed again.
	for i := 0; i < 8; i++ {
		if u := e.Observe(slow, 900*time.Millisecond); u.Changed {
			t.Fatalf("steady degraded peer re-reported a transition")
		}
	}
	_ = e
}

func TestDegradedNeedsQuorum(t *testing.T) {
	// With fewer than DegradedMinPeers tracked there is no meaningful
	// median: nobody is flagged no matter how slow.
	e := New(Config{})
	a, b := mkID(t, "1111"), mkID(t, "2222")
	for i := 0; i < 16; i++ {
		e.Observe(a, 10*time.Millisecond)
		e.Observe(b, 10*time.Second)
	}
	if e.Degraded(b) {
		t.Fatalf("peer flagged degraded with only %d peers tracked", 2)
	}
}

func TestForgetDropsDegraded(t *testing.T) {
	e, slow := degradeSetup(t, 900*time.Millisecond)
	e.Forget(slow)
	if e.Degraded(slow) {
		t.Fatalf("forgotten peer still degraded")
	}
	if st := e.Stats(); st.Degraded != 0 || st.Tracked != 3 {
		t.Fatalf("stats after forget: %+v", st)
	}
	if _, ok := e.RTO(slow); ok {
		t.Fatalf("forgotten peer still has an RTO")
	}
}

func TestDeterministicReplay(t *testing.T) {
	// Two estimators fed the identical sample stream must agree bit for
	// bit — the overlay scenarios rely on replay determinism.
	run := func() (time.Duration, time.Duration, Stats) {
		e, slow := degradeSetup(t, 700*time.Millisecond)
		rto, _ := e.RTO(slow)
		srtt, _ := e.SRTT(slow)
		return rto, srtt, e.Stats()
	}
	r1, s1, st1 := run()
	r2, s2, st2 := run()
	if r1 != r2 || s1 != s2 || st1 != st2 {
		t.Fatalf("replay diverged: %v/%v/%+v vs %v/%v/%+v", r1, s1, st1, r2, s2, st2)
	}
}
