// Peer-sampling messages — the gossip substrate behind gateway
// selection, rejoin bootstrap, and anti-entropy peer choice. A round is
// a Brahms-style push-pull exchange: nodes push their own reference to a
// few view members (SamplePush), pull the views of a few others
// (SamplePullReq/SamplePullRly), and mix pushes, pulls, and min-wise
// sampler history into the next view. Pushes carry no payload beyond the
// envelope sender, so a byzantine flooder can at most inflate push
// counts — which the receiver detects and discards wholesale.
package msg

import "hypercube/internal/table"

// SamplePush asks the receiver to consider the envelope sender for its
// next view. Deliberately payload-free: the only identity a push can
// promote is the one the transport authenticated as the sender.
type SamplePush struct{}

// Type implements Message.
func (SamplePush) Type() Type { return TSamplePush }

// Big implements Message.
func (SamplePush) Big() bool { return false }

// WireSize implements Message.
func (SamplePush) WireSize() int { return smallHeader }

// SamplePullReq asks the receiver for its current view.
type SamplePullReq struct{}

// Type implements Message.
func (SamplePullReq) Type() Type { return TSamplePullReq }

// Big implements Message.
func (SamplePullReq) Big() bool { return false }

// WireSize implements Message.
func (SamplePullReq) WireSize() int { return smallHeader }

// MaxSampleRefs bounds the reference list of a SamplePullRly: views are
// small (O(n^1/3)), so anything larger is hostile. Guard and wire both
// enforce the bound.
const MaxSampleRefs = 64

// SamplePullRly answers a SamplePullReq with the responder's view. Refs
// are strictly ascending by ID — the canonical form the guard enforces —
// so a reply can neither smuggle duplicates nor vary its encoding.
type SamplePullRly struct {
	Refs []table.Ref
}

// Type implements Message.
func (SamplePullRly) Type() Type { return TSamplePullRly }

// Big implements Message.
func (SamplePullRly) Big() bool { return false }

// WireSize implements Message.
func (m SamplePullRly) WireSize() int {
	total := smallHeader + 1
	for _, r := range m.Refs {
		total += refSize(r)
	}
	return total
}
