// Scenario suite: flash-crowd admission, correlated mass failure, and
// rolling restart with persistence. Each mode builds a consistent base
// network with the full robustness stack enabled (timeout handling,
// guard layer, failure detection, anti-entropy, gossip peer sampling),
// injects its fault pattern, and reports reconvergence rounds and
// false-declaration counts. The byzantine fault model composes into any
// of them via -with-byzantine.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"hypercube/internal/antientropy"
	"hypercube/internal/core"
	"hypercube/internal/guard"
	"hypercube/internal/id"
	"hypercube/internal/liveness"
	"hypercube/internal/nemesis/oracle"
	"hypercube/internal/obs"
	"hypercube/internal/overlay"
	"hypercube/internal/persist"
	"hypercube/internal/sampling"
	"hypercube/internal/table"
	"hypercube/internal/topology"
)

// scenarioConfig is the simulator configuration the scenario modes
// share: autonomous timeout handling, the guard layer, a
// latency-tolerant failure detector, anti-entropy repair, and the
// gossip peer-sampling layer feeding gateway selection, rejoin
// bootstrap, and sync-peer choice.
func scenarioConfig(p id.Params, seed int64, syncEvery time.Duration, tl *overlay.TopologyLatency, watch *oracle.DeclWatch, sink *obs.JSONL, byz bool, byzFrac, byzRate float64) overlay.Config {
	cfg := overlay.Config{
		Params:  p,
		Latency: tl.Func(),
		Opts: core.Options{
			Timeouts: core.Timeouts{
				RetryAfter:  500 * time.Millisecond,
				MaxAttempts: 6,
				RepairAfter: 600 * time.Millisecond,
			},
			Guard: &guard.Policy{},
		},
		Liveness: &liveness.Config{
			// Tolerant of stacked topology latencies and of churn-induced
			// load; every scenario treats a declaration of a live node as a
			// failure of the experiment.
			ProbeInterval:  250 * time.Millisecond,
			ProbeTimeout:   time.Second,
			SuspectAfter:   4,
			IndirectProbes: 3,
			ConfirmRounds:  4,
		},
		AntiEntropy:  &antientropy.Config{Interval: syncEvery},
		Sampling:     &sampling.Config{ViewSize: 16, Interval: syncEvery, Seed: seed},
		TickInterval: 100 * time.Millisecond,
	}
	if byz {
		cfg.Byzantine = &overlay.Byzantine{Fraction: byzFrac, CorruptRate: byzRate, Seed: seed}
	}
	var fwd obs.Sink
	if sink != nil {
		fwd = sink
		// A JSONL trace is the input of cross-node span reconstruction
		// (cmd/fleettrace), so tracing there means causal tracing too.
		cfg.TraceSample = *traceSample
		cfg.TraceSeed = uint64(seed)
	}
	cfg.Sink = obs.Tee(fwd, watch)
	return cfg
}

// buildScenarioBase installs a consistent n-member network with
// topology-bound latencies and returns the members plus each member's
// end-host index (for topology-correlated fault injection).
func buildScenarioBase(net *overlay.Network, p id.Params, n int, rng *rand.Rand, topo *topology.Topology, tl *overlay.TopologyLatency, taken map[id.ID]bool) ([]table.Ref, map[id.ID]int) {
	refs := overlay.RandomRefs(p, n, rng, taken)
	hosts := topo.AttachHosts(len(refs), rng)
	hostOf := make(map[id.ID]int, len(refs))
	for i, ref := range refs {
		tl.Bind(ref.ID, hosts[i])
		hostOf[ref.ID] = hosts[i]
	}
	net.BuildDirect(refs, rng)
	return refs, hostOf
}

// markScenarioByzantine applies the composable fault model: when the
// network was configured with one, a deterministic fraction of the base
// members starts corrupting its outgoing traffic. Returns the hostile
// set (empty when the model is off).
func markScenarioByzantine(net *overlay.Network, refs []table.Ref, enabled bool) map[id.ID]bool {
	set := make(map[id.ID]bool)
	if !enabled {
		return set
	}
	for _, x := range net.SelectByzantine(refs) {
		set[x] = true
	}
	return set
}

// reconverge advances the network in sync-interval rounds until
// Definition 3.8 consistency holds, up to maxRounds. Returns the rounds
// consumed and whether consistency was reached.
func reconverge(net *overlay.Network, syncEvery time.Duration, maxRounds int) (int, bool) {
	for r := 0; r < maxRounds; r++ {
		if len(net.CheckConsistency()) == 0 {
			return r, true
		}
		net.RunFor(syncEvery)
	}
	return maxRounds, len(net.CheckConsistency()) == 0
}

// checkIDCapacity fails loudly when a requested wave cannot fit: the
// random-ID generators retry until they find unused IDs, so asking for
// more than half the ID space degenerates into an endless search. This
// is the generalized form of the -partition gateway-digit exhaustion
// check.
func checkIDCapacity(p id.Params, want int) error {
	space := math.Pow(float64(p.B), float64(p.D))
	if float64(want) > space/2 {
		return fmt.Errorf("%d nodes would fill more than half of the %.0f-ID space (b=%d, d=%d) — shrink the wave or raise -b/-d", want, space, p.B, p.D)
	}
	return nil
}

// reportDeclarations prints the declaration audit every scenario shares
// and returns true when any live node was declared dead.
func reportDeclarations(w *oracle.DeclWatch) bool {
	fmt.Printf("declarations: %d genuine, %d false", w.Genuine(), w.FalsePositives())
	if w.FalsePositives() > 0 {
		fmt.Printf(" (e.g. %v)", w.Examples())
	}
	fmt.Println()
	return w.FalsePositives() != 0
}

// reportSampling prints the aggregate gossip peer-sampling counters.
func reportSampling(net *overlay.Network) {
	ss := net.SamplingStats()
	fmt.Printf("sampling: %d rounds, %d pushes received, %d pulls answered, %d flood rounds absorbed, %d peers ejected\n",
		ss.Rounds, ss.PushesReceived, ss.PullsAnswered, ss.FloodsDetected, ss.Ejected)
}

// runFlashCrowd is the -flashcrowd experiment: a wave of simultaneous
// joiners funnels through at most four gateways of an established
// network. The whole wave must be admitted, nothing may be falsely
// declared dead under the load, and the enlarged network must end
// Definition 3.8 consistent. The peer-sampling layer is what keeps the
// retry path alive: a joiner that exhausts its static gateways restarts
// through sampled peers instead of wedging.
func runFlashCrowd(p id.Params, n, joins, gateways int, seed int64, syncEvery time.Duration, byz bool, byzFrac, byzRate float64, topo *topology.Topology, tl *overlay.TopologyLatency, sink *obs.JSONL) int {
	if gateways < 1 || gateways > 4 {
		fmt.Fprintf(os.Stderr, "churn: -fc-gateways must be 1..4 (the experiment funnels the crowd through a handful of entry points), got %d\n", gateways)
		return 1
	}
	if err := checkIDCapacity(p, n+joins); err != nil {
		fmt.Fprintf(os.Stderr, "churn: %v\n", err)
		return 1
	}
	rng := rand.New(rand.NewSource(seed))
	watch := oracle.NewDeclWatch()
	net := overlay.New(scenarioConfig(p, seed, syncEvery, tl, watch, sink, byz, byzFrac, byzRate))
	taken := make(map[id.ID]bool)
	refs, _ := buildScenarioBase(net, p, n, rng, topo, tl, taken)
	byzSet := markScenarioByzantine(net, refs, byz)

	// Gateways must be honest: trusting an adversarial bootstrap is the
	// bootstrap-trust problem, out of scope as in -byzantine mode.
	gws := make([]table.Ref, 0, gateways)
	for _, r := range refs {
		if !byzSet[r.ID] {
			gws = append(gws, r)
			if len(gws) == gateways {
				break
			}
		}
	}
	if len(gws) < gateways {
		fmt.Fprintf(os.Stderr, "churn: only %d honest members for %d gateways\n", len(gws), gateways)
		return 1
	}
	fmt.Printf("flash crowd: %d nodes (b=%d, d=%d), %d simultaneous joins through %d gateways, %d byzantine, sync every %v\n\n",
		net.Size(), p.B, p.D, joins, gateways, len(byzSet), syncEvery)

	net.RunFor(2 * time.Second) // warm-up: probers acquire targets, views fill
	if watch.Total() != 0 {
		fmt.Fprintf(os.Stderr, "churn: %d declarations before the crowd arrived\n", watch.Total())
		return 1
	}

	joiners := overlay.RandomRefs(p, joins, rng, taken)
	jhosts := topo.AttachHosts(len(joiners), rng)
	start := net.Engine().Now() + 100*time.Millisecond
	jms := make([]*core.Machine, 0, len(joiners))
	for i, j := range joiners {
		tl.Bind(j.ID, jhosts[i])
		g := gws[i%len(gws)]
		fb1 := gws[(i+1)%len(gws)]
		fb2 := gws[(i+2)%len(gws)]
		jms = append(jms, net.ScheduleJoin(j, g, start, fb1, fb2))
	}

	// Admit the crowd: advance in sync rounds until every joiner is an
	// S-node. The scheduled joins only fire once time passes start, so
	// each round runs before the count is consulted.
	const maxAdmitRounds = 600
	notAdmitted := func() int {
		c := 0
		for _, jm := range jms {
			if !jm.IsSNode() {
				c++
			}
		}
		return c
	}
	admitRounds := 1
	for net.RunFor(syncEvery); admitRounds < maxAdmitRounds && notAdmitted() > 0; admitRounds++ {
		net.RunFor(syncEvery)
	}
	stuck := notAdmitted()
	shown := 0
	for i, jm := range jms {
		if jm.IsSNode() || shown >= 5 {
			continue
		}
		fmt.Fprintf(os.Stderr, "churn: joiner %v stuck in %v\n", joiners[i].ID, jm.Status())
		shown++
	}
	var meanJoin time.Duration
	if recs := net.JoinsSince(start); len(recs) > 0 {
		var sum time.Duration
		for _, r := range recs {
			sum += r.Ended - r.Started
		}
		meanJoin = sum / time.Duration(len(recs))
	}
	rounds, converged := reconverge(net, syncEvery, 100)
	fmt.Printf("admission: %d/%d joined after %d rounds (%v), mean join latency %v, %d stuck\n",
		len(joiners)-stuck, len(joiners), admitRounds, time.Duration(admitRounds)*syncEvery, meanJoin, stuck)
	fmt.Printf("reconvergence: consistent after %d further rounds\n", rounds)
	falseDecl := reportDeclarations(watch)
	reportSampling(net)
	if !converged {
		fmt.Fprintf(os.Stderr, "churn: network still inconsistent after %d rounds\n", rounds)
	}
	return reportFinal(net, stuck != 0 || falseDecl || !converged)
}

// runMassFail is the -massfail experiment: every member hosted in a
// handful of stub domains crashes at the same instant — the correlated
// loss pattern of a datacenter or access-network outage. Survivors must
// detect the deaths themselves, repair or provably empty the affected
// entries, and reconverge, without ever declaring a live node dead.
func runMassFail(p id.Params, n, stubsToKill int, seed int64, syncEvery time.Duration, byz bool, byzFrac, byzRate float64, topo *topology.Topology, tl *overlay.TopologyLatency, sink *obs.JSONL) int {
	if stubsToKill < 1 || stubsToKill >= topo.StubCount() {
		fmt.Fprintf(os.Stderr, "churn: -mf-stubs must be 1..%d (the topology has %d stub domains and at least one must survive), got %d\n",
			topo.StubCount()-1, topo.StubCount(), stubsToKill)
		return 1
	}
	rng := rand.New(rand.NewSource(seed))
	watch := oracle.NewDeclWatch()
	net := overlay.New(scenarioConfig(p, seed, syncEvery, tl, watch, sink, byz, byzFrac, byzRate))
	refs, hostOf := buildScenarioBase(net, p, n, rng, topo, tl, make(map[id.ID]bool))
	byzSet := markScenarioByzantine(net, refs, byz)

	chosen := make(map[int]bool, stubsToKill)
	for _, s := range rng.Perm(topo.StubCount())[:stubsToKill] {
		chosen[s] = true
	}
	var kill []id.ID
	for _, r := range refs {
		if chosen[topo.StubOf(topo.HostRouter(hostOf[r.ID]))] {
			kill = append(kill, r.ID)
		}
	}
	if len(kill) == 0 {
		fmt.Fprintf(os.Stderr, "churn: the chosen stub domains host no members — rerun with more members or a different seed\n")
		return 1
	}
	if len(kill) >= len(refs) {
		fmt.Fprintf(os.Stderr, "churn: the chosen stub domains host every member (%d/%d) — nothing would survive\n", len(kill), len(refs))
		return 1
	}
	fmt.Printf("mass failure: %d nodes (b=%d, d=%d), killing %d stub domains hosting %d members, %d byzantine, sync every %v\n\n",
		net.Size(), p.B, p.D, stubsToKill, len(kill), len(byzSet), syncEvery)

	net.RunFor(2 * time.Second) // warm-up
	if watch.Total() != 0 {
		fmt.Fprintf(os.Stderr, "churn: %d declarations before the outage\n", watch.Total())
		return 1
	}

	watch.MarkDead(kill...)
	for _, x := range kill {
		if err := net.InjectFailure(x); err != nil {
			fmt.Fprintf(os.Stderr, "churn: %v\n", err)
			return 1
		}
	}
	rounds, converged := reconverge(net, syncEvery, 300)
	fmt.Printf("outage: %d members gone; reconverged after %d rounds (%v)\n",
		len(kill), rounds, time.Duration(rounds)*syncEvery)
	falseDecl := reportDeclarations(watch)
	reportSampling(net)
	if !converged {
		fmt.Fprintf(os.Stderr, "churn: network still inconsistent %d rounds after the outage\n", rounds)
	}
	return reportFinal(net, falseDecl || !converged)
}

// runRollingRestart is the -rollingrestart experiment: every member of
// the network restarts, one wave at a time. A restarting node persists
// its table and its sampled peer set to disk, crashes, restarts from
// the dump as an established node, re-primes its sampler from the
// persisted peers, and re-announces itself with a rejoin bootstrapped
// through a persisted sampled peer. The restart is immediate in virtual
// time, so any failure declaration at all is a false positive.
func runRollingRestart(p id.Params, n, wave int, seed int64, syncEvery time.Duration, byz bool, byzFrac, byzRate float64, topo *topology.Topology, tl *overlay.TopologyLatency, sink *obs.JSONL) int {
	if wave < 1 {
		fmt.Fprintf(os.Stderr, "churn: -wave must be at least 1, got %d\n", wave)
		return 1
	}
	rng := rand.New(rand.NewSource(seed))
	watch := oracle.NewDeclWatch()
	net := overlay.New(scenarioConfig(p, seed, syncEvery, tl, watch, sink, byz, byzFrac, byzRate))
	refs, _ := buildScenarioBase(net, p, n, rng, topo, tl, make(map[id.ID]bool))
	byzSet := markScenarioByzantine(net, refs, byz)
	dir, err := os.MkdirTemp("", "churn-rolling-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "churn: %v\n", err)
		return 1
	}
	defer os.RemoveAll(dir)
	waves := (len(refs) + wave - 1) / wave
	fmt.Printf("rolling restart: %d nodes (b=%d, d=%d), %d waves of %d, %d byzantine, sync every %v\n\n",
		net.Size(), p.B, p.D, waves, wave, len(byzSet), syncEvery)

	net.RunFor(2 * time.Second) // warm-up: sampler views fill before the first dump

	restarts, sampledBoots := 0, 0
	for w0 := 0; w0 < len(refs); w0 += wave {
		group := refs[w0:min(w0+wave, len(refs))]
		// Persist and crash the whole wave at one instant.
		for _, r := range group {
			tbl, ok := net.TableOf(r.ID)
			if !ok {
				fmt.Fprintf(os.Stderr, "churn: member %v has no table\n", r.ID)
				return 1
			}
			var sampled []table.Ref
			if s, ok := net.Sampler(r.ID); ok {
				sampled = s.View()
			}
			path := filepath.Join(dir, r.ID.String()+".json")
			if err := persist.SaveFileState(path, tbl.Snapshot(), sampled); err != nil {
				fmt.Fprintf(os.Stderr, "churn: %v\n", err)
				return 1
			}
			if err := net.InjectFailure(r.ID); err != nil {
				fmt.Fprintf(os.Stderr, "churn: %v\n", err)
				return 1
			}
		}
		// Restart each member from its dump. Rejoins are transmitted one
		// at a time (draining between them): concurrently rejoining
		// members already appear in each other's tables and could park
		// each other in join-wait forever.
		for _, r := range group {
			path := filepath.Join(dir, r.ID.String()+".json")
			snap, sampled, err := persist.LoadFileState(path, p)
			if err != nil {
				if !persist.IsCorrupt(err) {
					fmt.Fprintf(os.Stderr, "churn: %v\n", err)
					return 1
				}
				// A corrupt dump must not kill the restart: the node
				// comes back with no state and performs a fresh join.
				fmt.Fprintf(os.Stderr, "churn: %v — member %v restarting with a fresh join\n", err, r.ID)
				helper, _ := rejoinHelper(net, r, nil)
				if helper.IsZero() {
					fmt.Fprintf(os.Stderr, "churn: no live helper for restarting member %v\n", r.ID)
					return 1
				}
				net.ScheduleJoin(r, helper, net.Engine().Now())
				net.Run()
				restarts++
				continue
			}
			m := net.AddEstablished(r, persist.Restore(snap))
			if s, ok := net.Sampler(r.ID); ok && len(sampled) > 0 {
				s.SeedPeers(sampled...)
			}
			helper, viaSample := rejoinHelper(net, r, sampled)
			if helper.IsZero() {
				fmt.Fprintf(os.Stderr, "churn: no live helper for restarting member %v\n", r.ID)
				return 1
			}
			if viaSample {
				sampledBoots++
			}
			out, err := m.StartRejoin(helper)
			if err != nil {
				fmt.Fprintf(os.Stderr, "churn: rejoin of %v: %v\n", r.ID, err)
				return 1
			}
			net.Transmit(out)
			net.Run()
			restarts++
		}
		net.RunFor(syncEvery) // settle before the next wave
	}
	rounds, converged := reconverge(net, syncEvery, 100)
	fmt.Printf("restarts: %d/%d completed, %d bootstrapped through persisted sampled peers\n",
		restarts, len(refs), sampledBoots)
	fmt.Printf("reconvergence: consistent after %d rounds past the last wave\n", rounds)
	falseDecl := reportDeclarations(watch)
	reportSampling(net)
	if !converged {
		fmt.Fprintf(os.Stderr, "churn: network still inconsistent after the rolling restart\n")
	}
	return reportFinal(net, falseDecl || !converged || restarts != len(refs))
}

// rejoinHelper picks the bootstrap for a restarting member: the first
// persisted sampled peer that is currently alive (exercising the
// sampling layer's rejoin-bootstrap role), falling back to the lowest
// live member ID for determinism. Reports whether a sampled peer won.
func rejoinHelper(net *overlay.Network, self table.Ref, sampled []table.Ref) (table.Ref, bool) {
	for _, r := range sampled {
		if r.ID == self.ID {
			continue
		}
		if _, ok := net.Machine(r.ID); ok {
			return r, true
		}
	}
	members := net.Members()
	sort.Slice(members, func(i, j int) bool { return members[i].ID.Less(members[j].ID) })
	for _, r := range members {
		if r.ID != self.ID {
			return r, false
		}
	}
	return table.Ref{}, false
}
