package tcptransport

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/netcheck"
	"hypercube/internal/table"
)

var p163 = id.Params{B: 16, D: 3}

func TestWireRoundTrip(t *testing.T) {
	p := id.Params{B: 8, D: 5}
	owner := id.MustParse(p, "21233")
	tbl := table.New(p, owner)
	tbl.Set(0, 1, table.Neighbor{ID: id.MustParse(p, "33121"), Addr: "127.0.0.1:9", State: table.StateS})
	tbl.Set(3, 0, table.Neighbor{ID: id.MustParse(p, "40233"), Addr: "127.0.0.1:8", State: table.StateT})
	snap := tbl.Snapshot()
	refA := table.Ref{ID: owner, Addr: "127.0.0.1:1"}
	refB := table.Ref{ID: id.MustParse(p, "33121"), Addr: "127.0.0.1:2"}

	fill := tbl.FillVector()
	messages := []msg.Message{
		msg.CpRst{Level: 3},
		msg.CpRly{Table: snap},
		msg.JoinWait{},
		msg.JoinWaitRly{R: msg.Negative, U: refB, Table: snap},
		msg.JoinNoti{Table: snap, NotiLevel: 2, FillVector: fill},
		msg.JoinNoti{Table: snap},
		msg.JoinNotiRly{R: msg.Positive, F: true, Table: snap},
		msg.InSysNoti{},
		msg.SpeNoti{X: refA, Y: refB},
		msg.SpeNotiRly{X: refA, Y: refB},
		msg.RvNghNoti{Level: 2, Digit: 5, State: table.StateT},
		msg.RvNghNotiRly{Level: 2, Digit: 5, State: table.StateS},
		msg.Leave{Table: snap},
		msg.LeaveRly{},
		msg.Find{Want: id.MustParseSuffix(p, "233"), Origin: refA, Avoid: id.MustParse(p, "40233")},
		msg.Find{Want: id.EmptySuffix, Origin: refA},
		msg.FindRly{Want: id.MustParseSuffix(p, "233"), Found: table.Neighbor{ID: id.MustParse(p, "40233"), Addr: "a:1", State: table.StateS}},
		msg.FindRly{Want: id.MustParseSuffix(p, "233"), Blocked: true},
		msg.Ping{Seq: 42, Origin: refA},
		msg.Ping{Seq: 43, Origin: refA, Target: refB},
		msg.Pong{Seq: 42},
		msg.FailedNoti{Failed: refB},
		msg.SyncReq{Fill: fill},
		msg.SyncRly{Table: snap, Fill: fill},
		msg.SyncPush{Table: snap},
		msg.SamplePush{},
		msg.SamplePullReq{},
		msg.SamplePullRly{Refs: []table.Ref{refB}},
	}
	for _, m := range messages {
		env := msg.Envelope{From: refA, To: refB, Msg: m}
		w, err := encodeEnvelope(env)
		if err != nil {
			t.Fatalf("%v: encode: %v", m.Type(), err)
		}
		back, err := decodeEnvelope(p, w)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Type(), err)
		}
		if back.From != env.From || back.To != env.To {
			t.Fatalf("%v: refs changed", m.Type())
		}
		if back.Msg.Type() != m.Type() {
			t.Fatalf("type changed: %v -> %v", m.Type(), back.Msg.Type())
		}
		// Structural spot checks on table-carrying messages.
		switch bm := back.Msg.(type) {
		case msg.Find:
			orig := m.(msg.Find)
			if bm.Want != orig.Want || bm.Avoid != orig.Avoid || bm.Origin != orig.Origin {
				t.Fatalf("Find fields corrupted: %+v vs %+v", bm, orig)
			}
		case msg.FindRly:
			orig := m.(msg.FindRly)
			if bm.Want != orig.Want || bm.Blocked != orig.Blocked || bm.Found != orig.Found {
				t.Fatalf("FindRly fields corrupted: %+v vs %+v", bm, orig)
			}
		case msg.Leave:
			if bm.Table.FilledCount() != snap.FilledCount() {
				t.Fatal("Leave table lost entries")
			}
		case msg.CpRly:
			if bm.Table.FilledCount() != snap.FilledCount() {
				t.Fatalf("CpRly table lost entries")
			}
			if bm.Table.Get(0, 1) != snap.Get(0, 1) {
				t.Fatalf("CpRly entry mismatch: %+v", bm.Table.Get(0, 1))
			}
		case msg.JoinNoti:
			if orig := m.(msg.JoinNoti); orig.FillVector.Len() > 0 {
				if bm.FillVector.Len() != orig.FillVector.Len() || bm.FillVector.Count() != orig.FillVector.Count() {
					t.Fatal("JoinNoti fill vector corrupted")
				}
				if bm.NotiLevel != 2 {
					t.Fatal("NotiLevel lost")
				}
			}
		case msg.JoinNotiRly:
			if !bm.F || bm.R != msg.Positive {
				t.Fatal("JoinNotiRly flags lost")
			}
		case msg.Ping:
			orig := m.(msg.Ping)
			if bm.Seq != orig.Seq || bm.Origin != orig.Origin || bm.Target != orig.Target {
				t.Fatalf("Ping fields corrupted: %+v vs %+v", bm, orig)
			}
		case msg.Pong:
			if bm.Seq != 42 {
				t.Fatal("Pong seq lost")
			}
		case msg.FailedNoti:
			if bm.Failed != refB {
				t.Fatalf("FailedNoti ref corrupted: %+v", bm.Failed)
			}
		case msg.SyncReq:
			if bm.Fill.Len() != fill.Len() || bm.Fill.Count() != fill.Count() {
				t.Fatal("SyncReq fill vector corrupted")
			}
		case msg.SyncRly:
			if bm.Table.FilledCount() != snap.FilledCount() {
				t.Fatal("SyncRly table lost entries")
			}
			if bm.Fill.Len() != fill.Len() || bm.Fill.Count() != fill.Count() {
				t.Fatal("SyncRly fill vector corrupted")
			}
		case msg.SyncPush:
			if bm.Table.FilledCount() != snap.FilledCount() {
				t.Fatal("SyncPush table lost entries")
			}
		}
	}
}

func TestWireDecodeErrors(t *testing.T) {
	p := id.Params{B: 8, D: 5}
	if _, err := decodeEnvelope(p, wireEnvelope{Kind: 200}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := decodeEnvelope(p, wireEnvelope{Kind: uint8(msg.TJoinWait), From: wireRef{ID: "zzz"}}); err == nil {
		t.Error("bad from-ID accepted")
	}
	bad := wireEnvelope{Kind: uint8(msg.TCpRly), HasTable: true, Table: wireTable{Owner: "99999"}}
	if _, err := decodeEnvelope(p, bad); err == nil {
		t.Error("bad table owner accepted")
	}
}

func TestTCPSingleJoin(t *testing.T) {
	seed, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "abc"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	joiner, err := StartJoiner(p163, core.Options{}, id.MustParse(p163, "123"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()

	if err := joiner.Join(seed.Ref()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := joiner.AwaitStatus(ctx, core.StatusInSystem); err != nil {
		t.Fatal(err)
	}
	// The joiner must know the seed and vice versa.
	k := seed.Ref().ID.CommonSuffixLen(joiner.Ref().ID)
	if got := joiner.Snapshot().Get(k, seed.Ref().ID.Digit(k)); got.ID != seed.Ref().ID {
		t.Errorf("joiner's table lacks seed: %+v", got)
	}
	waitForEntry(t, seed, k, joiner.Ref().ID.Digit(k), joiner.Ref().ID)
}

func waitForEntry(t *testing.T, n *Node, level, digit int, want id.ID) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if n.Snapshot().Get(level, digit).ID == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node %v entry (%d,%d) never became %v", n.Ref().ID, level, digit, want)
}

func TestTCPConcurrentJoins(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	seen := make(map[id.ID]bool)
	draw := func() id.ID {
		for {
			x := id.Random(p163, rng)
			if !seen[x] {
				seen[x] = true
				return x
			}
		}
	}
	seed, err := StartSeed(p163, core.Options{}, draw(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()

	const joiners = 12
	nodes := make([]*Node, 0, joiners)
	for i := 0; i < joiners; i++ {
		n, err := StartJoiner(p163, core.Options{}, draw(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
	}
	var wg sync.WaitGroup
	for _, n := range nodes {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := n.Join(seed.Ref()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, n := range nodes {
		if err := n.AwaitStatus(ctx, core.StatusInSystem); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for trailing InSysNoti/RvNghNotiRly traffic to settle, then
	// check global consistency of the collected snapshots.
	all := append([]*Node{seed}, nodes...)
	awaitStableTables(t, all)
	tables := make(map[id.ID]*table.Table, len(all))
	for _, n := range all {
		tbl := table.New(p163, n.Ref().ID)
		n.Snapshot().ForEach(func(level, digit int, nb table.Neighbor) {
			tbl.Set(level, digit, nb)
		})
		tables[n.Ref().ID] = tbl
	}
	if v := netcheck.CheckConsistency(p163, tables); len(v) != 0 {
		t.Fatalf("TCP network inconsistent: %v (of %d)", v[0], len(v))
	}
}

// awaitStableTables polls until no node's counters change across two
// consecutive samples 50ms apart — an empirical quiescence check.
func awaitStableTables(t *testing.T, nodes []*Node) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var prev int
	stable := 0
	for time.Now().Before(deadline) {
		total := 0
		for _, n := range nodes {
			c := n.Counters()
			total += c.TotalSent()
		}
		if total == prev {
			stable++
			if stable >= 3 {
				return
			}
		} else {
			stable = 0
		}
		prev = total
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("network never quiesced")
}

func TestTCPGracefulLeave(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	seen := make(map[id.ID]bool)
	draw := func() id.ID {
		for {
			x := id.Random(p163, rng)
			if !seen[x] {
				seen[x] = true
				return x
			}
		}
	}
	seed, err := StartSeed(p163, core.Options{}, draw(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	nodes := []*Node{seed}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 6; i++ {
		n, err := StartJoiner(p163, core.Options{}, draw(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		if err := n.Join(seed.Ref()); err != nil {
			t.Fatal(err)
		}
		if err := n.AwaitStatus(ctx, core.StatusInSystem); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	awaitStableTables(t, nodes)

	leaver := nodes[3]
	if err := leaver.Leave(); err != nil {
		t.Fatal(err)
	}
	if err := leaver.AwaitStatus(ctx, core.StatusLeft); err != nil {
		t.Fatal(err)
	}
	awaitStableTables(t, nodes)
	for _, n := range nodes {
		if n == leaver {
			continue
		}
		n.Snapshot().ForEach(func(level, digit int, nb table.Neighbor) {
			if nb.ID == leaver.Ref().ID {
				t.Errorf("node %v still stores leaver at (%d,%d)", n.Ref().ID, level, digit)
			}
		})
	}
	// Remaining nodes stay consistent.
	tables := make(map[id.ID]*table.Table)
	for _, n := range nodes {
		if n == leaver {
			continue
		}
		tbl := table.New(p163, n.Ref().ID)
		n.Snapshot().ForEach(func(level, digit int, nb table.Neighbor) {
			tbl.Set(level, digit, nb)
		})
		tables[n.Ref().ID] = tbl
	}
	if v := netcheck.CheckConsistency(p163, tables); len(v) != 0 {
		t.Fatalf("TCP network inconsistent after leave: %v", v[0])
	}
}

func TestAwaitStatusTimeout(t *testing.T) {
	joiner, err := StartJoiner(p163, core.Options{}, id.MustParse(p163, "777"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := joiner.AwaitStatus(ctx, core.StatusInSystem); err == nil {
		t.Error("AwaitStatus on idle joiner returned nil")
	}
}

func TestCloseIdempotent(t *testing.T) {
	n, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "fff"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestStartErrors(t *testing.T) {
	if _, err := StartSeed(id.Params{B: 1, D: 1}, core.Options{}, id.ID{}, "127.0.0.1:0"); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "abc"), "256.0.0.1:bad"); err == nil {
		t.Error("invalid listen address accepted")
	}
}
