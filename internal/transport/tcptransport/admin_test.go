package tcptransport

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
)

func getJSON(t *testing.T, srv *httptest.Server, path string, out any) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func TestAdminStatusAndTable(t *testing.T) {
	seed, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "a1b"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	srv := httptest.NewServer(seed.AdminHandler())
	defer srv.Close()

	var st statusResponse
	getJSON(t, srv, "/status", &st)
	if st.ID != "a1b" || st.Status != "in_system" || st.B != 16 || st.D != 3 {
		t.Fatalf("status = %+v", st)
	}
	if st.Filled != p163.D {
		t.Fatalf("seed should have %d diagonal entries, reports %d", p163.D, st.Filled)
	}

	var tbl struct {
		Owner   string       `json:"owner"`
		Entries []tableEntry `json:"entries"`
	}
	getJSON(t, srv, "/table", &tbl)
	if tbl.Owner != "a1b" || len(tbl.Entries) != p163.D {
		t.Fatalf("table = %+v", tbl)
	}
	for _, e := range tbl.Entries {
		if e.ID != "a1b" || e.State != "S" {
			t.Fatalf("diagonal entry = %+v", e)
		}
	}
}

func TestAdminJoinAndLeave(t *testing.T) {
	seed, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "fff"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	joiner, err := StartJoiner(p163, core.Options{}, id.MustParse(p163, "123"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	srv := httptest.NewServer(joiner.AdminHandler())
	defer srv.Close()

	// Joining via the admin API.
	body := fmt.Sprintf(`{"id":"fff","addr":%q}`, seed.Ref().Addr)
	resp, err := http.Post(srv.URL+"/join", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /join: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := joiner.AwaitStatus(ctx, core.StatusInSystem); err != nil {
		t.Fatal(err)
	}

	// Joining twice conflicts.
	resp, err = http.Post(srv.URL+"/join", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second POST /join: %d, want conflict", resp.StatusCode)
	}

	// Leaving via the admin API.
	resp, err = http.Post(srv.URL+"/leave", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /leave: %d", resp.StatusCode)
	}
	if err := joiner.AwaitStatus(ctx, core.StatusLeft); err != nil {
		t.Fatal(err)
	}
	// Leaving twice conflicts.
	resp, err = http.Post(srv.URL+"/leave", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second POST /leave: %d, want conflict", resp.StatusCode)
	}
}

func TestAdminJoinValidation(t *testing.T) {
	joiner, err := StartJoiner(p163, core.Options{}, id.MustParse(p163, "456"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	srv := httptest.NewServer(joiner.AdminHandler())
	defer srv.Close()

	for name, body := range map[string]string{
		"garbage": "{",
		"badID":   `{"id":"zz!","addr":"127.0.0.1:1"}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+"/join", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}
}
