package wire

import (
	"bytes"
	"testing"

	"hypercube/internal/id"
	"hypercube/internal/msg"
)

// FuzzBinaryDecode feeds arbitrary bytes through DecodePayload: it must
// never panic, and — because the codec is canonical — any payload it
// accepts must re-encode byte-identically.
func FuzzBinaryDecode(f *testing.F) {
	p := id.Params{B: 8, D: 5}
	t := &testing.T{}
	for _, env := range sampleEnvelopes(t) {
		if payload, err := EncodePayload(p, env); err == nil {
			f.Add(payload)
		}
	}
	if envs := sampleEnvelopes(t); len(envs) > 3 {
		if payload, err := EncodePayload(p, envs[:3]...); err == nil {
			f.Add(payload)
		}
	}
	// Traced (v2) seeds, including the all-untraced trailer form.
	for i, env := range sampleEnvelopes(t) {
		env.Trace = sampleTraceContext(byte(i + 1))
		if payload, err := EncodePayload(p, env); err == nil {
			f.Add(payload)
		}
	}
	if envs := sampleEnvelopes(t); len(envs) > 3 {
		if payload, err := EncodePayloadV(p, VersionTraced, envs[:3]...); err == nil {
			f.Add(payload)
		}
	}
	// Hostile shapes: truncations, bad versions, padded fill vectors.
	f.Add([]byte{Version, 1, 3, byte(msg.TPong), 0, 0})
	f.Add([]byte{Version, 2, 1, 0})
	f.Add([]byte{VersionTraced, 1, 3, byte(msg.TPong), 0, 0, 2})
	f.Add([]byte{99, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var envs []msg.Envelope
		if err := DecodePayload(p, data, func(env msg.Envelope) error {
			envs = append(envs, env)
			return nil
		}); err != nil {
			return
		}
		// Re-encode in the payload's own version: an accepted v2 payload
		// whose records all happen to be untraced must come back as v2,
		// not collapse to the minimal version.
		re, err := EncodePayloadV(p, data[0], envs...)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode not byte-identical\n got %x\nwant %x", re, data)
		}
	})
}
