package tcptransport

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/netcheck"
	"hypercube/internal/table"
	"hypercube/internal/wire"
)

// envelopeSink is a bare TCP listener that decodes wire envelopes and
// tracks how many connections are currently open, for asserting on the
// node's connection management from the receiving side.
type envelopeSink struct {
	ln       net.Listener
	received atomic.Int64
	live     atomic.Int64
	wg       sync.WaitGroup
}

func newEnvelopeSink(t *testing.T) *envelopeSink {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &envelopeSink{ln: ln}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.live.Add(1)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer s.live.Add(-1)
				defer conn.Close()
				for {
					payload, isBinary, err := readFrame(conn, 1<<20, 0)
					if err != nil {
						return
					}
					cnt, err := countFrameEnvelopes(payload, isBinary)
					if err != nil {
						return
					}
					s.received.Add(int64(cnt))
				}
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		s.wg.Wait()
	})
	return s
}

func (s *envelopeSink) addr() string { return s.ln.Addr().String() }

// countFrameEnvelopes counts the protocol envelopes one frame payload
// carries, whichever codec the sender used (binary frames coalesce
// several envelopes; gob frames always carry one).
func countFrameEnvelopes(payload []byte, isBinary bool) (int, error) {
	if isBinary {
		cnt := 0
		err := wire.DecodePayload(p163, payload, func(msg.Envelope) error {
			cnt++
			return nil
		})
		return cnt, err
	}
	if _, err := decodeFrame(payload); err != nil {
		return 0, err
	}
	return 1, nil
}

func awaitInt64(t *testing.T, what string, get func() int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if get() >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s never reached %d (at %d)", what, want, get())
}

// Regression for the fail-fast sendAll bug: an undeliverable first
// envelope must not starve envelopes addressed to other, reachable
// peers. (The seed transport aborted the loop on the first error.)
func TestSendAllDeliversPastFailures(t *testing.T) {
	sink := newEnvelopeSink(t)
	n, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "a00"), "127.0.0.1:0",
		WithMaxAttempts(2), WithBackoff(time.Millisecond, 2*time.Millisecond), WithDialTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	dead := table.Ref{ID: id.MustParse(p163, "b11"), Addr: "127.0.0.1:1"} // nothing listens there
	live := table.Ref{ID: id.MustParse(p163, "c22"), Addr: sink.addr()}
	envs := []msg.Envelope{
		{From: n.Ref(), To: dead, Msg: msg.JoinWait{}},
		{From: n.Ref(), To: live, Msg: msg.JoinWait{}},
	}
	if err := n.sendAll(envs); err != nil {
		t.Fatalf("sendAll enqueue failed: %v", err)
	}
	awaitInt64(t, "sink received", sink.received.Load, 1)
	// The dead destination is eventually dead-lettered, not silently lost.
	awaitInt64(t, "dead-letter count", func() int64 {
		c := n.Counters()
		return int64(c.DroppedOf(msg.TJoinWait))
	}, 1)
}

// Regression for the connection-leak bug: when the transport redials a
// peer, the displaced connection must be closed — the peer should never
// accumulate more than one live connection from one node. (The seed
// transport's fresh redial overwrote the cached connection without
// closing it when two failed sends raced.)
func TestRedialClosesDisplacedConnection(t *testing.T) {
	sink := newEnvelopeSink(t)
	n, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "a01"), "127.0.0.1:0",
		WithBackoff(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	to := table.Ref{ID: id.MustParse(p163, "d33"), Addr: sink.addr()}
	send := func(k int) {
		var wg sync.WaitGroup
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := n.sendAll([]msg.Envelope{{From: n.Ref(), To: to, Msg: msg.JoinWait{}}}); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	send(2)
	awaitInt64(t, "sink received", sink.received.Load, 2)

	// Stale the connection from the sender side, then send concurrently
	// so the transport must redial under contention.
	if got := n.KillConnections(); got != 1 {
		t.Fatalf("KillConnections = %d, want 1", got)
	}
	send(2)
	awaitInt64(t, "sink received after redial", sink.received.Load, 4)
	// Give any leaked socket time to surface, then count live conns.
	time.Sleep(50 * time.Millisecond)
	if got := sink.live.Load(); got != 1 {
		t.Fatalf("%d live connections to the peer after redial, want 1 (leak)", got)
	}
}

// Regression for the read-loop teardown bug: a failed *outbound* send
// must not kill the *inbound* connection it was triggered from. (The
// seed transport returned from readLoop when sendAll errored, so a dead
// reply address tore down a healthy peer link.)
func TestReadLoopSurvivesOutboundFailure(t *testing.T) {
	seed, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "a02"), "127.0.0.1:0",
		WithMaxAttempts(2), WithBackoff(time.Millisecond, 2*time.Millisecond), WithDialTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()

	conn, err := net.Dial("tcp", seed.Ref().Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// From-ref advertises an address nobody listens on, so the seed's
	// CpRly reply cannot be delivered.
	ghost := table.Ref{ID: id.MustParse(p163, "e44"), Addr: "127.0.0.1:1"}
	rst, err := encodeEnvelope(msg.Envelope{From: ghost, To: seed.Ref(), Msg: msg.CpRst{Level: 0}})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := encodeFrame(rst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	awaitInt64(t, "first CpRst received", func() int64 {
		c := seed.Counters()
		return int64(c.ReceivedOf(msg.TCpRst))
	}, 1)
	// Wait for the reply to be dead-lettered, proving the outbound path
	// failed before we assert the inbound connection survived it.
	awaitInt64(t, "reply dead-lettered", func() int64 {
		c := seed.Counters()
		return int64(c.TotalDropped())
	}, 1)

	// The same inbound connection must still be read from.
	if _, err := conn.Write(frame); err != nil {
		t.Fatalf("inbound connection torn down by unrelated send failure: %v", err)
	}
	awaitInt64(t, "second CpRst received", func() int64 {
		c := seed.Counters()
		return int64(c.ReceivedOf(msg.TCpRst))
	}, 2)
}

// Regression for the AwaitStatus busy-poll bug: waiting must poll the
// status roughly once per tick, not hundreds of times per second. (The
// seed transport ticked every 2ms and called Status twice per
// iteration.)
func TestAwaitStatusPollsGently(t *testing.T) {
	joiner, err := StartJoiner(p163, core.Options{}, id.MustParse(p163, "a03"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 220*time.Millisecond)
	defer cancel()
	before := joiner.statusPolls.Load()
	if err := joiner.AwaitStatus(ctx, core.StatusInSystem); err == nil {
		t.Fatal("AwaitStatus on idle joiner returned nil")
	}
	polls := joiner.statusPolls.Load() - before
	// 220ms at the default 20ms interval is ~12 polls; the seed's 2ms
	// double-poll loop did >150.
	if polls > 30 {
		t.Fatalf("AwaitStatus made %d status polls in 220ms; busy-polling", polls)
	}
	if polls == 0 {
		t.Fatal("AwaitStatus made no status polls")
	}
}

// Queue overflow must dead-letter, not block or grow without bound.
func TestQueueOverflowDeadLetters(t *testing.T) {
	n, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "a04"), "127.0.0.1:0",
		WithQueueLimit(1), WithMaxAttempts(3), WithBackoff(time.Hour, time.Hour), WithDialTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	dead := table.Ref{ID: id.MustParse(p163, "b55"), Addr: "127.0.0.1:1"}
	sawError := false
	for i := 0; i < 8; i++ {
		if err := n.sendAll([]msg.Envelope{{From: n.Ref(), To: dead, Msg: msg.JoinWait{}}}); err != nil {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("overflowing a 1-slot queue never errored")
	}
	if c := n.Counters(); c.TotalDropped() == 0 {
		t.Fatal("overflow not dead-lettered in counters")
	}
}

// The tentpole acceptance test: a network built over a transport that
// drops 10% of write attempts — plus one forced connection kill mid-run
// — must still complete every join and settle into a globally
// consistent table set, with the retry layer (not luck) earning it.
func TestJoinUnderInjectedFaults(t *testing.T) {
	faults := NewFaults(7)
	faults.DropRate = 0.10
	faults.KillEvery = 40 // sprinkle connection kills on top of drops
	opts := []Option{
		WithFaults(faults),
		WithMaxAttempts(10),
		WithBackoff(2*time.Millisecond, 50*time.Millisecond),
	}

	rng := rand.New(rand.NewSource(11))
	seen := make(map[id.ID]bool)
	draw := func() id.ID {
		for {
			x := id.Random(p163, rng)
			if !seen[x] {
				seen[x] = true
				return x
			}
		}
	}
	seed, err := StartSeed(p163, core.Options{}, draw(), "127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()

	const joiners = 8
	nodes := []*Node{seed}
	var wg sync.WaitGroup
	for i := 0; i < joiners; i++ {
		n, err := StartJoiner(p163, core.Options{}, draw(), "127.0.0.1:0", opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := n.Join(seed.Ref()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	// One forced connection kill while joins are in flight.
	time.Sleep(20 * time.Millisecond)
	killed := seed.KillConnections()
	t.Logf("killed %d live connections mid-join", killed)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, n := range nodes[1:] {
		if err := n.AwaitStatus(ctx, core.StatusInSystem); err != nil {
			t.Fatal(err)
		}
	}
	awaitStableTables(t, nodes)

	tables := make(map[id.ID]*table.Table, len(nodes))
	var total msg.Counters
	for _, n := range nodes {
		tbl := table.New(p163, n.Ref().ID)
		n.Snapshot().ForEach(func(level, digit int, nb table.Neighbor) {
			tbl.Set(level, digit, nb)
		})
		tables[n.Ref().ID] = tbl
		c := n.Counters()
		total.Add(&c)
	}
	if v := netcheck.CheckConsistency(p163, tables); len(v) != 0 {
		t.Fatalf("network inconsistent under faults: %v (of %d)", v[0], len(v))
	}
	if faults.Drops() == 0 {
		t.Fatal("fault injector never dropped a write; test proves nothing")
	}
	if total.TotalRetried() == 0 {
		t.Fatal("no retries recorded despite injected drops")
	}
	if total.TotalDropped() != 0 {
		t.Fatalf("%d messages dead-lettered; delivery layer gave up under 10%% loss", total.TotalDropped())
	}
	t.Logf("injected drops=%d kills=%d; transport retried=%d dead-lettered=%d",
		faults.Drops(), faults.Kills(), total.TotalRetried(), total.TotalDropped())
}

// A redial after a receiver restart must converge on a single healthy
// connection and deliver everything queued meanwhile.
func TestRedialAfterPeerRestart(t *testing.T) {
	n, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "a05"), "127.0.0.1:0",
		WithMaxAttempts(20), WithBackoff(5*time.Millisecond, 40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	to := table.Ref{ID: id.MustParse(p163, "f66"), Addr: addr}

	// First send lands on the live listener.
	var got atomic.Int64
	drain := func(ln net.Listener) {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				for {
					payload, isBinary, err := readFrame(c, 1<<20, 0)
					if err != nil {
						return
					}
					cnt, err := countFrameEnvelopes(payload, isBinary)
					if err != nil {
						return
					}
					got.Add(int64(cnt))
				}
			}()
		}
	}
	go drain(ln)
	if err := n.sendAll([]msg.Envelope{{From: n.Ref(), To: to, Msg: msg.JoinWait{}}}); err != nil {
		t.Fatal(err)
	}
	awaitInt64(t, "first delivery", got.Load, 1)

	// Kill the receiver; sends queue and retry against a dead port.
	ln.Close()
	n.KillConnections()
	for i := 0; i < 3; i++ {
		if err := n.sendAll([]msg.Envelope{{From: n.Ref(), To: to, Msg: msg.JoinWait{}}}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(30 * time.Millisecond)

	// Restart the receiver on the same port; retries must land.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer ln2.Close()
	go drain(ln2)
	awaitInt64(t, "post-restart deliveries", got.Load, 4)
}
