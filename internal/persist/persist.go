// Package persist serializes neighbor-table snapshots to a stable JSON
// format, so a node can dump its routing state for diagnostics or reload
// it after a restart (restart + StartRejoin re-announces the node without
// rebuilding the table from scratch).
package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"

	"hypercube/internal/id"
	"hypercube/internal/table"
)

// formatVersion guards against silently reading an incompatible dump.
const formatVersion = 1

// ErrCorrupt marks a dump that is damaged — truncated, bit-flipped, or
// failing its checksum — as opposed to merely incompatible (wrong
// version or ID-space parameters). A restarting node that hits a
// corrupt dump must fall back to a fresh join rather than trust the
// bytes; callers detect the case with IsCorrupt.
var ErrCorrupt = errors.New("corrupt dump")

// IsCorrupt reports whether err means the dump bytes are damaged and a
// restart should proceed as a fresh join.
func IsCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }

// corruptions counts corrupt dumps detected process-wide, so harnesses
// can assert the fallback path actually fired.
var corruptions atomic.Uint64

// CorruptionsDetected returns how many corrupt dumps this process has
// detected and rejected.
func CorruptionsDetected() uint64 { return corruptions.Load() }

func corruptf(format string, args ...any) error {
	corruptions.Add(1)
	return fmt.Errorf("persist: %w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// fileEntry is one non-empty table entry on disk.
type fileEntry struct {
	Level int    `json:"level"`
	Digit int    `json:"digit"`
	ID    string `json:"id"`
	Addr  string `json:"addr,omitempty"`
	State string `json:"state"`
}

// filePeer is one sampled bootstrap peer on disk.
type filePeer struct {
	ID   string `json:"id"`
	Addr string `json:"addr,omitempty"`
}

// fileSnapshot is the on-disk form of a snapshot.
type fileSnapshot struct {
	Version int `json:"version"`
	// Checksum is the CRC32 (IEEE) of the dump's canonical JSON bytes
	// with this field empty, hex-encoded. Load re-derives the canonical
	// bytes from the decoded values and compares, so any bit flip that
	// changes a value — not just one that breaks JSON syntax — is caught.
	// Absent in dumps from before checksumming; those still load.
	Checksum string      `json:"crc32,omitempty"`
	B        int         `json:"b"`
	D        int         `json:"d"`
	Owner    string      `json:"owner"`
	Lo       int         `json:"lo"`
	Hi       int         `json:"hi"`
	Entries  []fileEntry `json:"entries"`
	// Sampled carries the peer-sampling layer's long-term sample at dump
	// time: bootstrap candidates for the restart-rejoin that remain valid
	// even when every table neighbor died with the outage that forced the
	// restart. Absent in dumps from before the sampling layer.
	Sampled []filePeer `json:"sampled,omitempty"`
}

// Save writes the snapshot to w as JSON.
func Save(w io.Writer, snap table.Snapshot) error {
	return SaveState(w, snap, nil)
}

// SaveState writes the snapshot plus sampled bootstrap peers to w.
func SaveState(w io.Writer, snap table.Snapshot, sampled []table.Ref) error {
	if snap.IsZero() {
		return fmt.Errorf("persist: cannot save a zero snapshot")
	}
	p := snap.Params()
	lo, hi := snap.LevelRange()
	out := fileSnapshot{
		Version: formatVersion,
		B:       p.B,
		D:       p.D,
		Owner:   snap.Owner().String(),
		Lo:      lo,
		Hi:      hi,
	}
	snap.ForEach(func(level, digit int, n table.Neighbor) {
		out.Entries = append(out.Entries, fileEntry{
			Level: level, Digit: digit,
			ID: n.ID.String(), Addr: n.Addr, State: n.State.String(),
		})
	})
	for _, r := range sampled {
		if r.IsZero() {
			continue
		}
		out.Sampled = append(out.Sampled, filePeer{ID: r.ID.String(), Addr: r.Addr})
	}
	body, err := canonical(&out)
	if err != nil {
		return fmt.Errorf("persist: encode: %w", err)
	}
	out.Checksum = fmt.Sprintf("%08x", crc32.ChecksumIEEE(body))
	final, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("persist: encode: %w", err)
	}
	if _, err := w.Write(append(final, '\n')); err != nil {
		return fmt.Errorf("persist: write: %w", err)
	}
	return nil
}

// canonical returns the checksum-covered byte form of a snapshot: its
// indented JSON with the checksum field cleared. Save computes the CRC
// over these bytes; Load re-derives them from the decoded values, so
// the check survives whitespace damage (harmless) while catching any
// flip that altered a value.
func canonical(s *fileSnapshot) ([]byte, error) {
	saved := s.Checksum
	s.Checksum = ""
	b, err := json.MarshalIndent(s, "", "  ")
	s.Checksum = saved
	return b, err
}

// Load reads a snapshot from r, verifying it matches the expected ID
// space.
func Load(r io.Reader, p id.Params) (table.Snapshot, error) {
	snap, _, err := LoadState(r, p)
	return snap, err
}

// LoadState reads a snapshot plus any sampled bootstrap peers from r.
// Dumps written before the sampling layer load with nil peers.
func LoadState(r io.Reader, p id.Params) (table.Snapshot, []table.Ref, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return table.Snapshot{}, nil, fmt.Errorf("persist: read: %w", err)
	}
	var in fileSnapshot
	if err := json.Unmarshal(raw, &in); err != nil {
		// Truncated or syntactically mangled bytes: the dump is damaged,
		// not from a different version of us.
		return table.Snapshot{}, nil, corruptf("decode: %v", err)
	}
	if in.Checksum != "" {
		body, err := canonical(&in)
		if err != nil {
			return table.Snapshot{}, nil, fmt.Errorf("persist: encode: %w", err)
		}
		if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(body)); got != in.Checksum {
			return table.Snapshot{}, nil, corruptf("checksum %s, dump says %s", got, in.Checksum)
		}
	}
	if in.Version != formatVersion {
		return table.Snapshot{}, nil, fmt.Errorf("persist: format version %d, want %d", in.Version, formatVersion)
	}
	if in.B != p.B || in.D != p.D {
		return table.Snapshot{}, nil, fmt.Errorf("persist: dump is for b=%d d=%d, want b=%d d=%d", in.B, in.D, p.B, p.D)
	}
	owner, err := id.Parse(p, in.Owner)
	if err != nil {
		return table.Snapshot{}, nil, corruptf("owner: %v", err)
	}
	entries := make(map[[2]int]table.Neighbor, len(in.Entries))
	for _, e := range in.Entries {
		x, err := id.Parse(p, e.ID)
		if err != nil {
			return table.Snapshot{}, nil, corruptf("entry (%d,%d): %v", e.Level, e.Digit, err)
		}
		var st table.State
		switch e.State {
		case "T":
			st = table.StateT
		case "S":
			st = table.StateS
		default:
			return table.Snapshot{}, nil, corruptf("entry (%d,%d): unknown state %q", e.Level, e.Digit, e.State)
		}
		entries[[2]int{e.Level, e.Digit}] = table.Neighbor{ID: x, Addr: e.Addr, State: st}
	}
	snap, err := table.NewSnapshot(p, owner, in.Lo, in.Hi, entries)
	if err != nil {
		return table.Snapshot{}, nil, corruptf("%v", err)
	}
	var sampled []table.Ref
	for i, fp := range in.Sampled {
		x, err := id.Parse(p, fp.ID)
		if err != nil {
			return table.Snapshot{}, nil, corruptf("sampled peer %d: %v", i, err)
		}
		sampled = append(sampled, table.Ref{ID: x, Addr: fp.Addr})
	}
	return snap, sampled, nil
}

// saveHook, when non-nil, runs after the snapshot bytes are written to
// the temp file but before it is synced and renamed into place. Tests
// use it to kill a save midway and prove the previous dump survives.
var saveHook func(tmp *os.File) error

// SaveFile writes the snapshot atomically: the bytes go to a temp file
// in the same directory, are fsynced, and only then renamed over path.
// A crash at any point leaves either the old dump or the new one, never
// a torn file — the rename is the commit point, and the fsync ensures
// the data is durable before the name flips to it.
func SaveFile(path string, snap table.Snapshot) error {
	return SaveFileState(path, snap, nil)
}

// SaveFileState is SaveFile plus sampled bootstrap peers.
func SaveFileState(path string, snap table.Snapshot, sampled []table.Ref) error {
	tmp, err := os.CreateTemp(dirOf(path), ".table-*.json")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := SaveState(tmp, snap, sampled); err != nil {
		tmp.Close()
		return err
	}
	if saveHook != nil {
		if err := saveHook(tmp); err != nil {
			tmp.Close()
			return fmt.Errorf("persist: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	syncDir(dirOf(path))
	return nil
}

// syncDir flushes the directory so the rename itself survives a crash.
// Best-effort: some filesystems refuse to sync directories, and the
// data file is already durable at this point.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	defer d.Close()
	_ = d.Sync()
}

// LoadFile reads a snapshot previously written by SaveFile.
func LoadFile(path string, p id.Params) (table.Snapshot, error) {
	snap, _, err := LoadFileState(path, p)
	return snap, err
}

// LoadFileState reads a snapshot plus sampled bootstrap peers previously
// written by SaveFileState.
func LoadFileState(path string, p id.Params) (table.Snapshot, []table.Ref, error) {
	f, err := os.Open(path)
	if err != nil {
		return table.Snapshot{}, nil, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	return LoadState(f, p)
}

// Restore materializes a mutable table from a snapshot.
func Restore(snap table.Snapshot) *table.Table {
	tbl := table.New(snap.Params(), snap.Owner())
	snap.ForEach(func(level, digit int, n table.Neighbor) {
		tbl.Set(level, digit, n)
	})
	return tbl
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
