package tcptransport

import (
	"bytes"
	"encoding/gob"
	"testing"

	"hypercube/internal/id"
)

// FuzzDecodeWire feeds arbitrary bytes through the gob + envelope decode
// path a node applies to data read from the network: it must never panic,
// whatever a malicious or corrupted peer sends.
func FuzzDecodeWire(f *testing.F) {
	// Seed with a few valid frames.
	p := id.Params{B: 8, D: 5}
	for _, kind := range []uint8{1, 3, 7, 12, 14} {
		var buf bytes.Buffer
		w := wireEnvelope{
			Kind: kind,
			From: wireRef{ID: "21233", Addr: "127.0.0.1:1"},
			To:   wireRef{ID: "33121", Addr: "127.0.0.1:2"},
			Want: "233",
		}
		if err := gob.NewEncoder(&buf).Encode(&w); err == nil {
			f.Add(buf.Bytes())
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var w wireEnvelope
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
			return
		}
		env, err := decodeEnvelope(p, w)
		if err != nil {
			return
		}
		// Anything accepted must re-encode cleanly.
		if _, err := encodeEnvelope(env); err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v", err)
		}
	})
}
