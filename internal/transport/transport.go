// Package transport executes the join protocol concurrently: one
// goroutine per node draining an unbounded mailbox, a shared in-process
// router, and quiescence detection. Unlike internal/overlay's
// discrete-event simulation, message interleavings here come from the Go
// scheduler — a genuinely concurrent execution of the same core.Machine
// logic, which makes it both a deployment runtime skeleton and a stress
// harness for the paper's claim that consistency survives arbitrary
// concurrency.
package transport

import (
	"context"
	"fmt"
	"sync"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/netcheck"
	"hypercube/internal/table"
)

// mailbox is an unbounded FIFO queue. Unbounded is deliberate: with
// bounded channels two nodes sending to each other can deadlock; the
// protocol's own termination proof (Theorem 2) bounds the real queue
// growth.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []msg.Envelope
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put enqueues an envelope; it reports false if the mailbox is closed.
func (m *mailbox) put(env msg.Envelope) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.queue = append(m.queue, env)
	m.cond.Signal()
	return true
}

// get blocks until an envelope is available or the mailbox closes.
func (m *mailbox) get() (msg.Envelope, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return msg.Envelope{}, false
	}
	env := m.queue[0]
	m.queue = m.queue[1:]
	return env, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// quiescer counts in-flight work (messages enqueued whose processing,
// including enqueueing of all messages it spawns, has not finished) and
// wakes waiters when the count returns to zero.
type quiescer struct {
	mu      sync.Mutex
	count   int
	waiters []chan struct{}
}

func (q *quiescer) inc(n int) {
	q.mu.Lock()
	q.count += n
	q.mu.Unlock()
}

func (q *quiescer) dec() {
	q.mu.Lock()
	q.count--
	if q.count < 0 {
		q.mu.Unlock()
		panic("transport: in-flight count went negative")
	}
	if q.count == 0 {
		for _, w := range q.waiters {
			close(w)
		}
		q.waiters = nil
	}
	q.mu.Unlock()
}

// waitCh returns a channel closed at the next zero crossing (immediately
// if already idle).
func (q *quiescer) waitCh() <-chan struct{} {
	q.mu.Lock()
	defer q.mu.Unlock()
	ch := make(chan struct{})
	if q.count == 0 {
		close(ch)
		return ch
	}
	q.waiters = append(q.waiters, ch)
	return ch
}

type nodeProc struct {
	mu      sync.Mutex // guards machine
	machine *core.Machine
	box     *mailbox
}

// Runtime hosts a set of concurrently executing protocol nodes.
type Runtime struct {
	params id.Params
	opts   core.Options

	mu      sync.Mutex // guards nodes and removed maps
	nodes   map[id.ID]*nodeProc
	removed map[id.ID]bool

	// dropUnroutable switches route's unknown-destination handling from
	// panic (protocol-bug detector) to drop-and-count (crash-failure
	// experiments, where messages to vanished nodes are expected).
	dropUnroutable bool
	unroutable     uint64

	quiet  quiescer
	wg     sync.WaitGroup
	closed bool
}

// NewRuntime creates an empty runtime.
func NewRuntime(p id.Params, opts core.Options) *Runtime {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("transport: invalid params: %v", err))
	}
	return &Runtime{params: p, opts: opts, nodes: make(map[id.ID]*nodeProc), removed: make(map[id.ID]bool)}
}

// AddSeed starts the network's first node (§6.1).
func (rt *Runtime) AddSeed(ref table.Ref) error {
	return rt.spawn(core.NewSeed(rt.params, ref, rt.opts))
}

// AddEstablished starts a node with a pre-built table in status in_system.
func (rt *Runtime) AddEstablished(ref table.Ref, tbl *table.Table) error {
	return rt.spawn(core.NewEstablished(rt.params, ref, tbl, rt.opts))
}

// Join starts a new node and begins its join through bootstrap g0.
func (rt *Runtime) Join(ref table.Ref, g0 table.Ref) error {
	m := core.NewJoiner(rt.params, ref, rt.opts)
	proc, err := rt.register(m)
	if err != nil {
		return err
	}
	// StartJoin runs under the node lock like any delivery.
	proc.mu.Lock()
	out, err := m.StartJoin(g0)
	proc.mu.Unlock()
	if err != nil {
		return err
	}
	rt.route(out)
	rt.startLoop(proc)
	return nil
}

func (rt *Runtime) spawn(m *core.Machine) error {
	proc, err := rt.register(m)
	if err != nil {
		return err
	}
	rt.startLoop(proc)
	return nil
}

func (rt *Runtime) register(m *core.Machine) (*nodeProc, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return nil, fmt.Errorf("transport: runtime closed")
	}
	x := m.Self().ID
	if _, dup := rt.nodes[x]; dup {
		return nil, fmt.Errorf("transport: duplicate node %v", x)
	}
	proc := &nodeProc{machine: m, box: newMailbox()}
	rt.nodes[x] = proc
	return proc, nil
}

func (rt *Runtime) startLoop(proc *nodeProc) {
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		for {
			env, ok := proc.box.get()
			if !ok {
				return
			}
			proc.mu.Lock()
			out := proc.machine.Deliver(env)
			proc.mu.Unlock()
			rt.route(out)
			rt.quiet.dec()
		}
	}()
}

// DropUnroutable configures how route treats envelopes for nodes the
// runtime has never hosted. By default they panic — under the paper's
// reliable-network assumption such a message is a protocol bug. With
// drop enabled they are silently dropped and counted instead, which is
// the correct model for crash-failure experiments where a destination
// may have vanished without a graceful leave.
func (rt *Runtime) DropUnroutable(drop bool) {
	rt.mu.Lock()
	rt.dropUnroutable = drop
	rt.mu.Unlock()
}

// UnroutableDropped returns how many envelopes were dropped because
// their destination was unknown (only nonzero with DropUnroutable).
func (rt *Runtime) UnroutableDropped() uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.unroutable
}

// route enqueues envelopes to their destinations. Messages to unknown
// nodes panic (protocol-bug detector) unless DropUnroutable is set.
func (rt *Runtime) route(envs []msg.Envelope) {
	if len(envs) == 0 {
		return
	}
	rt.quiet.inc(len(envs))
	for _, env := range envs {
		rt.mu.Lock()
		proc, ok := rt.nodes[env.To.ID]
		gone := rt.removed[env.To.ID]
		drop := rt.dropUnroutable
		if !ok && !gone && drop {
			rt.unroutable++
		}
		rt.mu.Unlock()
		if !ok {
			if gone {
				rt.quiet.dec() // stray message to a departed node
				continue
			}
			if drop {
				rt.quiet.dec()
				continue
			}
			panic(fmt.Sprintf("transport: envelope for unknown node %v: %v", env.To.ID, env))
		}
		if !proc.box.put(env) {
			rt.quiet.dec() // destination shut down; drop
		}
	}
}

// Leave starts node x's graceful departure (§7 extension). Await
// quiescence, verify Status(x) == StatusLeft, then Remove it.
func (rt *Runtime) Leave(x id.ID) error {
	rt.mu.Lock()
	proc, ok := rt.nodes[x]
	rt.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: leave of unknown node %v", x)
	}
	proc.mu.Lock()
	out, err := proc.machine.StartLeave()
	proc.mu.Unlock()
	if err != nil {
		return err
	}
	rt.route(out)
	return nil
}

// Remove unregisters a departed node and stops its goroutine. Only call
// once the runtime is quiescent and the node reports StatusLeft; messages
// addressed to it afterwards are dropped.
func (rt *Runtime) Remove(x id.ID) error {
	rt.mu.Lock()
	proc, ok := rt.nodes[x]
	if ok {
		delete(rt.nodes, x)
		rt.removed[x] = true
	}
	rt.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: remove of unknown node %v", x)
	}
	proc.box.close()
	return nil
}

// AwaitQuiescence blocks until no messages are in flight anywhere (or ctx
// expires). Because nodes only act on message receipt, a quiescent
// runtime stays quiescent until the next Join call.
func (rt *Runtime) AwaitQuiescence(ctx context.Context) error {
	select {
	case <-rt.quiet.waitCh():
		return nil
	case <-ctx.Done():
		return fmt.Errorf("transport: quiescence wait: %w", ctx.Err())
	}
}

// Status returns the node's protocol status.
func (rt *Runtime) Status(x id.ID) (core.Status, bool) {
	rt.mu.Lock()
	proc, ok := rt.nodes[x]
	rt.mu.Unlock()
	if !ok {
		return 0, false
	}
	proc.mu.Lock()
	defer proc.mu.Unlock()
	return proc.machine.Status(), true
}

// Snapshot returns an immutable copy of the node's table.
func (rt *Runtime) Snapshot(x id.ID) (table.Snapshot, bool) {
	rt.mu.Lock()
	proc, ok := rt.nodes[x]
	rt.mu.Unlock()
	if !ok {
		return table.Snapshot{}, false
	}
	proc.mu.Lock()
	defer proc.mu.Unlock()
	return proc.machine.Snapshot(), true
}

// Counters returns a copy of the node's message counters.
func (rt *Runtime) Counters(x id.ID) (msg.Counters, bool) {
	rt.mu.Lock()
	proc, ok := rt.nodes[x]
	rt.mu.Unlock()
	if !ok {
		return msg.Counters{}, false
	}
	proc.mu.Lock()
	defer proc.mu.Unlock()
	return *proc.machine.Counters(), true
}

// Members returns the IDs of all hosted nodes.
func (rt *Runtime) Members() []id.ID {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]id.ID, 0, len(rt.nodes))
	for x := range rt.nodes {
		out = append(out, x)
	}
	return out
}

// CheckConsistency verifies Definition 3.8 over a coherent copy of all
// tables. Call only when quiescent: it locks nodes one at a time, so a
// concurrent join could yield a torn global view.
func (rt *Runtime) CheckConsistency() []netcheck.Violation {
	rt.mu.Lock()
	procs := make([]*nodeProc, 0, len(rt.nodes))
	for _, proc := range rt.nodes {
		procs = append(procs, proc)
	}
	rt.mu.Unlock()

	tables := make(map[id.ID]*table.Table, len(procs))
	for _, proc := range procs {
		proc.mu.Lock()
		snap := proc.machine.Snapshot()
		owner := proc.machine.Self().ID
		proc.mu.Unlock()
		tbl := table.New(rt.params, owner)
		snap.ForEach(func(level, digit int, n table.Neighbor) {
			tbl.Set(level, digit, n)
		})
		tables[owner] = tbl
	}
	return netcheck.CheckConsistency(rt.params, tables)
}

// Close shuts down all node goroutines and waits for them to exit. The
// runtime cannot be reused.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	procs := make([]*nodeProc, 0, len(rt.nodes))
	for _, proc := range rt.nodes {
		procs = append(procs, proc)
	}
	rt.mu.Unlock()
	for _, proc := range procs {
		proc.box.close()
	}
	rt.wg.Wait()
}
