package antientropy

import (
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
)

var p44 = id.Params{B: 4, D: 4}

func ref(t *testing.T, s string) table.Ref {
	t.Helper()
	return table.Ref{ID: id.MustParse(p44, s), Addr: "sim://" + s}
}

// twoNodeNet joins b into a's single-node network and runs the exchange
// to quiescence, returning two established machines.
func twoNodeNet(t *testing.T) (*core.Machine, *core.Machine) {
	t.Helper()
	a := core.NewSeed(p44, ref(t, "0000"), core.Options{})
	b := core.NewJoiner(p44, ref(t, "1111"), core.Options{})
	byID := map[id.ID]*core.Machine{a.Self().ID: a, b.Self().ID: b}
	queue, err := b.StartJoin(a.Self())
	if err != nil {
		t.Fatal(err)
	}
	for len(queue) > 0 {
		env := queue[0]
		queue = append(queue[1:], byID[env.To.ID].Deliver(env)...)
	}
	if !a.IsSNode() || !b.IsSNode() {
		t.Fatalf("join did not settle: %v / %v", a.Status(), b.Status())
	}
	return a, b
}

func TestEngineRoundCadence(t *testing.T) {
	a, b := twoNodeNet(t)
	_ = b
	e := New(Config{Interval: time.Second}, a)

	// The first tick only arms the staggered schedule; rounds then fire
	// once per interval, catching up after a long gap.
	e.Tick(0)
	if got := e.Stats().Rounds; got > 1 {
		t.Fatalf("%d rounds on the arming tick, want at most 1", got)
	}
	e.Tick(3 * time.Second)
	if got := e.Stats().Rounds; got < 2 || got > 4 {
		t.Fatalf("%d rounds after 3s at 1s interval, want 2..4", got)
	}
	// A quiescent instant later produces nothing new.
	before := e.Stats().Rounds
	if out := e.Tick(3 * time.Second); len(out) != 0 || e.Stats().Rounds != before {
		t.Fatalf("re-tick at same instant ran %d extra rounds", e.Stats().Rounds-before)
	}
}

func TestEngineSyncsWithPeer(t *testing.T) {
	a, b := twoNodeNet(t)
	e := New(Config{Interval: time.Second}, a)
	e.Tick(0)
	out := e.Tick(2 * time.Second)
	if len(out) == 0 {
		t.Fatal("no sync traffic after an interval elapsed")
	}
	var sawReq bool
	for _, env := range out {
		if env.Msg.Type() == msg.TSyncReq {
			sawReq = true
			if env.To.ID != b.Self().ID {
				t.Fatalf("sync request addressed to %v, want %v", env.To.ID, b.Self().ID)
			}
		}
	}
	if !sawReq {
		t.Fatalf("no SyncReq among %d envelopes", len(out))
	}
}

func TestEngineIdleWithoutPeersOrStatus(t *testing.T) {
	// A lone seed has no sync partners: audits run but no rounds count.
	lone := core.NewSeed(p44, ref(t, "0000"), core.Options{})
	e := New(Config{Interval: time.Second}, lone)
	e.Tick(0)
	if out := e.Tick(5 * time.Second); len(out) != 0 || e.Stats().Rounds != 0 {
		t.Fatalf("lone node synced: %d envelopes, %d rounds", len(out), e.Stats().Rounds)
	}

	// A joiner that never completed its join must not sync at all.
	stuck := core.NewJoiner(p44, ref(t, "2222"), core.Options{})
	e2 := New(Config{Interval: time.Second}, stuck)
	e2.Tick(0)
	if out := e2.Tick(5 * time.Second); len(out) != 0 {
		t.Fatalf("non-S-node emitted %d envelopes", len(out))
	}
}

func TestEngineStaggerDeterministicAndBounded(t *testing.T) {
	a, _ := twoNodeNet(t)
	cfg := Config{Interval: time.Second}
	e1, e2 := New(cfg, a), New(cfg, a)
	if s1, s2 := e1.stagger(), e2.stagger(); s1 != s2 {
		t.Fatalf("stagger not deterministic: %v vs %v", s1, s2)
	}
	if s := e1.stagger(); s < 0 || s >= cfg.Interval {
		t.Fatalf("stagger %v outside [0, %v)", s, cfg.Interval)
	}
}

// TestEngineDeprioritizesDegradedPartner: with a health predicate
// wired, a degraded peer is skipped as sync partner while healthy
// alternatives exist — but an all-degraded neighborhood still syncs.
func TestEngineDeprioritizesDegradedPartner(t *testing.T) {
	a, b := twoNodeNet(t)
	e := New(Config{Interval: time.Second}, a)

	// b is the only peer and it is degraded: the round must still run.
	e.SetHealth(func(id.ID) bool { return false })
	e.Tick(0)
	out := e.Tick(2 * time.Second)
	sawReq := false
	for _, env := range out {
		if env.Msg.Type() == msg.TSyncReq && env.To.ID == b.Self().ID {
			sawReq = true
		}
	}
	if !sawReq {
		t.Fatalf("all-degraded neighborhood stopped syncing entirely")
	}
	if e.Stats().Deprioritized != 0 {
		t.Fatalf("deprioritized counted without a healthy alternative: %+v", e.Stats())
	}

	// With a second live peer, the degraded one is filtered out of every
	// table round and the healthy one chosen instead.
	c := core.NewJoiner(p44, ref(t, "2222"), core.Options{})
	byID := map[id.ID]*core.Machine{a.Self().ID: a, b.Self().ID: b, c.Self().ID: c}
	queue, err := c.StartJoin(a.Self())
	if err != nil {
		t.Fatal(err)
	}
	for len(queue) > 0 {
		env := queue[0]
		queue = append(queue[1:], byID[env.To.ID].Deliver(env)...)
	}
	if !c.IsSNode() {
		t.Fatalf("third node stuck in %v", c.Status())
	}
	e2 := New(Config{Interval: time.Second}, a)
	e2.SetHealth(func(x id.ID) bool { return x != b.Self().ID })
	e2.Tick(0)
	rounds := 0
	for now := time.Second; now <= 10*time.Second; now += time.Second {
		for _, env := range e2.Tick(now) {
			if env.Msg.Type() != msg.TSyncReq {
				continue
			}
			rounds++
			if env.To.ID == b.Self().ID {
				t.Fatalf("round picked the degraded peer %v over a healthy one", env.To.ID)
			}
		}
	}
	if rounds == 0 {
		t.Fatal("no sync rounds ran")
	}
	if e2.Stats().Deprioritized == 0 {
		t.Fatalf("filtering never counted: %+v", e2.Stats())
	}
}
