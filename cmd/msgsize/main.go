// Command msgsize measures the §6.2 message-size reductions of Liu & Lam
// (ICDCS 2003): shipping only the usable level range of the joiner's
// table in JoinNotiMsg, and attaching a bit vector so that replies omit
// entries the joiner already has. It runs the same join wave with each
// option combination and reports bytes and messages.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/overlay"
	"hypercube/internal/table"
	"hypercube/internal/transport/tcptransport"
	"hypercube/internal/wire"
)

func main() {
	var (
		b        = flag.Int("b", 16, "digit base")
		d        = flag.Int("d", 8, "digits per ID")
		n        = flag.Int("n", 500, "initial network size")
		m        = flag.Int("m", 200, "concurrent joiners")
		seed     = flag.Int64("seed", 1, "simulation seed")
		wireMode = flag.Bool("wire", false, "compare per-kind encoded bytes: gob vs binary codec vs the WireSize estimate")
	)
	flag.Parse()
	p := id.Params{B: *b, D: *d}
	if err := p.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "msgsize: %v\n", err)
		os.Exit(1)
	}
	if *wireMode {
		if err := wireReport(p); err != nil {
			fmt.Fprintf(os.Stderr, "msgsize: %v\n", err)
			os.Exit(1)
		}
		return
	}

	variants := []struct {
		name string
		opts core.Options
	}{
		{"full tables (baseline)", core.Options{}},
		{"level-range reduction", core.Options{ReduceLevels: true}},
		{"bit-vector replies", core.Options{BitVector: true}},
		{"both reductions (§6.2)", core.Options{ReduceLevels: true, BitVector: true}},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\ttotal bytes\tbytes/join\tmessages\tconsistent")
	baselineBytes := 0
	for i, variant := range variants {
		res, err := overlay.RunWave(overlay.WaveConfig{
			Params: p, N: *n, M: *m, Seed: *seed, Opts: variant.opts,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "msgsize: %v\n", err)
			os.Exit(1)
		}
		totalBytes := 0
		for _, rec := range res.Records {
			totalBytes += rec.BytesSent
		}
		if i == 0 {
			baselineBytes = totalBytes
		}
		note := ""
		if i > 0 && baselineBytes > 0 {
			note = fmt.Sprintf(" (%.1f%% of baseline)", 100*float64(totalBytes)/float64(baselineBytes))
		}
		fmt.Fprintf(w, "%s\t%d%s\t%d\t%d\t%v\n",
			variant.name, totalBytes, note, totalBytes / *m, res.Events,
			res.Consistent() && res.AllSNodes)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "msgsize: %v\n", err)
		os.Exit(1)
	}
}

// wireReport encodes one representative envelope per message kind with
// both transport codecs and prints the encoded sizes next to the
// WireSize estimate the simulator's traffic accounting uses.
func wireReport(p id.Params) error {
	from, to, snap, fill, err := wireSamples(p)
	if err != nil {
		return err
	}
	refB := to
	messages := []msg.Message{
		msg.CpRst{Level: p.D / 2},
		msg.CpRly{Table: snap},
		msg.JoinWait{},
		msg.JoinWaitRly{R: msg.Positive, U: refB, Table: snap},
		msg.JoinNoti{Table: snap, NotiLevel: 1, FillVector: fill},
		msg.JoinNotiRly{R: msg.Positive, F: true, Table: snap},
		msg.InSysNoti{},
		msg.SpeNoti{X: from, Y: refB},
		msg.SpeNotiRly{X: from, Y: refB},
		msg.RvNghNoti{Level: 1, Digit: 2, State: table.StateS},
		msg.RvNghNotiRly{Level: 1, Digit: 2, State: table.StateS},
		msg.Leave{Table: snap},
		msg.LeaveRly{},
		msg.Find{Want: from.ID.Suffix(p.D - 1), Origin: from},
		msg.FindRly{Want: from.ID.Suffix(p.D - 1), Found: table.Neighbor{ID: refB.ID, Addr: refB.Addr, State: table.StateS}},
		msg.Ping{Seq: 1, Origin: from, Target: refB},
		msg.Pong{Seq: 1},
		msg.FailedNoti{Failed: refB},
		msg.SyncReq{Fill: fill},
		msg.SyncRly{Table: snap, Fill: fill},
		msg.SyncPush{Table: snap},
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "kind\tgob bytes\tbinary bytes\tbinary/gob\testimate (WireSize)")
	totalGob, totalBin := 0, 0
	for _, m := range messages {
		env := msg.Envelope{From: from, To: refB, Msg: m}
		gobPayload, err := tcptransport.EncodeGobPayload(env)
		if err != nil {
			return fmt.Errorf("%v: gob: %w", m.Type(), err)
		}
		binPayload, err := wire.EncodePayload(p, env)
		if err != nil {
			return fmt.Errorf("%v: binary: %w", m.Type(), err)
		}
		totalGob += len(gobPayload)
		totalBin += len(binPayload)
		fmt.Fprintf(w, "%v\t%d\t%d\t%.2f\t%d\n",
			m.Type(), len(gobPayload), len(binPayload),
			float64(len(binPayload))/float64(len(gobPayload)), m.WireSize())
	}
	fmt.Fprintf(w, "total\t%d\t%d\t%.2f\t\n", totalGob, totalBin, float64(totalBin)/float64(totalGob))
	return w.Flush()
}

// wireSamples builds the refs, a half-filled table snapshot, and a fill
// vector representative of steady-state traffic under p.
func wireSamples(p id.Params) (from, to table.Ref, snap table.Snapshot, fill table.BitVector, err error) {
	raw := make([]byte, p.D)
	for i := range raw {
		raw[i] = byte((i*5 + 2) % p.B)
	}
	owner, err := id.FromRawDigits(p, raw)
	if err != nil {
		return from, to, snap, fill, err
	}
	for i := range raw {
		raw[i] = byte((i*3 + 1) % p.B)
	}
	other, err := id.FromRawDigits(p, raw)
	if err != nil {
		return from, to, snap, fill, err
	}
	from = table.Ref{ID: owner, Addr: "127.0.0.1:7001"}
	to = table.Ref{ID: other, Addr: "127.0.0.1:7002"}
	tbl := table.New(p, owner)
	count := 0
	for level := 0; level < p.D && count < 2*p.D; level++ {
		for digit := 0; digit < p.B && count < 2*p.D; digit += 2 {
			nraw := make([]byte, p.D)
			for j := 0; j < level; j++ {
				nraw[j] = byte(owner.Digit(j))
			}
			nraw[level] = byte(digit)
			for j := level + 1; j < p.D; j++ {
				nraw[j] = byte((j*7 + digit) % p.B)
			}
			nid, err2 := id.FromRawDigits(p, nraw)
			if err2 != nil {
				return from, to, snap, fill, err2
			}
			if nid == owner {
				continue
			}
			tbl.Set(level, digit, table.Neighbor{ID: nid, Addr: fmt.Sprintf("10.0.0.%d:7%03d", count, count), State: table.StateS})
			count++
		}
	}
	return from, to, tbl.Snapshot(), tbl.FillVector(), nil
}
