// Package workload drives long-running churn scenarios over a simulated
// network: scripted or randomly generated sequences of join waves,
// graceful-leave waves, crashes with recovery, and optimization passes,
// with consistency verified at every quiescent point. It turns the
// paper's setting — a *dynamic* peer-to-peer network — into a repeatable
// experiment: the network lives through hundreds of membership events
// and must remain consistent throughout.
package workload

import (
	"fmt"
	"math/rand"

	"hypercube/internal/id"
	"hypercube/internal/netcheck"
	"hypercube/internal/overlay"
	"hypercube/internal/table"
)

// Kind enumerates scenario operations.
type Kind uint8

const (
	// KindJoin adds Count nodes concurrently.
	KindJoin Kind = iota + 1
	// KindLeave makes Count random nodes depart gracefully, concurrently.
	KindLeave
	// KindCrash fails Count random nodes one after another, running
	// recovery after each.
	KindCrash
	// KindOptimize runs one table-optimization pass.
	KindOptimize
)

// String names the operation kind.
func (k Kind) String() string {
	switch k {
	case KindJoin:
		return "join"
	case KindLeave:
		return "leave"
	case KindCrash:
		return "crash"
	case KindOptimize:
		return "optimize"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Op is one scripted operation.
type Op struct {
	Kind  Kind
	Count int
}

// Script is a sequence of operations.
type Script []Op

// Mix weights the random script generator.
type Mix struct {
	JoinWeight     int
	LeaveWeight    int
	CrashWeight    int
	OptimizeWeight int
	// MaxBatch bounds the Count of join/leave operations.
	MaxBatch int
}

// DefaultMix is a churn-heavy blend.
func DefaultMix() Mix {
	return Mix{JoinWeight: 4, LeaveWeight: 3, CrashWeight: 2, OptimizeWeight: 1, MaxBatch: 20}
}

// RandomScript draws ops random operations from the mix.
func RandomScript(rng *rand.Rand, ops int, mix Mix) Script {
	total := mix.JoinWeight + mix.LeaveWeight + mix.CrashWeight + mix.OptimizeWeight
	if total <= 0 || mix.MaxBatch <= 0 {
		panic("workload: empty mix")
	}
	out := make(Script, 0, ops)
	for i := 0; i < ops; i++ {
		r := rng.Intn(total)
		switch {
		case r < mix.JoinWeight:
			out = append(out, Op{Kind: KindJoin, Count: 1 + rng.Intn(mix.MaxBatch)})
		case r < mix.JoinWeight+mix.LeaveWeight:
			out = append(out, Op{Kind: KindLeave, Count: 1 + rng.Intn(mix.MaxBatch)})
		case r < mix.JoinWeight+mix.LeaveWeight+mix.CrashWeight:
			out = append(out, Op{Kind: KindCrash, Count: 1 + rng.Intn(3)})
		default:
			out = append(out, Op{Kind: KindOptimize, Count: 1})
		}
	}
	return out
}

// Report summarizes one applied operation.
type Report struct {
	Op         Op
	Applied    int // how many joins/leaves/crashes actually ran
	Size       int // network size afterwards
	Violations int
	Unrepaired int
	Messages   uint64 // messages delivered by this operation
}

// Runner owns a network and applies operations to it.
type Runner struct {
	// MinSize stops leaves/crashes from shrinking the network below this.
	MinSize int

	params id.Params
	net    *overlay.Network
	rng    *rand.Rand
	taken  map[id.ID]bool
	live   []table.Ref
}

// NewRunner builds an initial consistent network of initial nodes.
func NewRunner(p id.Params, initial int, seed int64) (*Runner, error) {
	if initial < 1 {
		return nil, fmt.Errorf("workload: initial size %d", initial)
	}
	rng := rand.New(rand.NewSource(seed))
	r := &Runner{
		MinSize: 8,
		params:  p,
		net:     overlay.New(overlay.Config{Params: p}),
		rng:     rng,
		taken:   make(map[id.ID]bool),
	}
	refs := overlay.RandomRefs(p, initial, rng, r.taken)
	r.net.BuildDirect(refs, rng)
	r.live = append(r.live, refs...)
	return r, nil
}

// Network exposes the underlying network for inspection.
func (r *Runner) Network() *overlay.Network { return r.net }

// Size returns the current network size.
func (r *Runner) Size() int { return r.net.Size() }

// Apply executes one operation, runs the network to quiescence, verifies
// consistency, and reports.
func (r *Runner) Apply(op Op) (Report, error) {
	rep := Report{Op: op}
	before := r.net.Delivered()
	switch op.Kind {
	case KindJoin:
		joiners := overlay.RandomRefs(r.params, op.Count, r.rng, r.taken)
		for _, j := range joiners {
			g0 := r.live[r.rng.Intn(len(r.live))]
			r.net.ScheduleJoin(j, g0, r.net.Engine().Now())
		}
		r.net.Run()
		for _, j := range joiners {
			m, ok := r.net.Machine(j.ID)
			if !ok || !m.IsSNode() {
				return rep, fmt.Errorf("workload: joiner %v did not complete", j.ID)
			}
			r.live = append(r.live, j)
			rep.Applied++
		}
	case KindLeave:
		for i := 0; i < op.Count && len(r.live) > r.MinSize; i++ {
			idx := r.rng.Intn(len(r.live))
			x := r.live[idx]
			r.live = append(r.live[:idx], r.live[idx+1:]...)
			if err := r.net.ScheduleLeave(x.ID, r.net.Engine().Now()); err != nil {
				return rep, fmt.Errorf("workload: %w", err)
			}
			rep.Applied++
		}
		r.net.Run()
		if gone := r.net.FinalizeLeaves(); len(gone) != rep.Applied {
			return rep, fmt.Errorf("workload: %d of %d leaves completed", len(gone), rep.Applied)
		}
	case KindCrash:
		for i := 0; i < op.Count && len(r.live) > r.MinSize; i++ {
			idx := r.rng.Intn(len(r.live))
			x := r.live[idx]
			r.live = append(r.live[:idx], r.live[idx+1:]...)
			if err := r.net.InjectFailure(x.ID); err != nil {
				return rep, fmt.Errorf("workload: %w", err)
			}
			st := r.net.RecoverFailure(x.ID, r.rng, 0)
			rep.Unrepaired += st.Unrepaired
			rep.Applied++
		}
	case KindOptimize:
		r.net.OptimizeTables(1)
		rep.Applied = 1
	default:
		return rep, fmt.Errorf("workload: unknown op %v", op.Kind)
	}
	rep.Messages = r.net.Delivered() - before
	rep.Size = r.net.Size()
	rep.Violations = len(r.net.CheckConsistency())
	return rep, nil
}

// RunScript applies every operation, stopping at the first error or
// consistency violation.
func (r *Runner) RunScript(script Script) ([]Report, error) {
	reports := make([]Report, 0, len(script))
	for i, op := range script {
		rep, err := r.Apply(op)
		reports = append(reports, rep)
		if err != nil {
			return reports, fmt.Errorf("workload: op %d (%v): %w", i, op.Kind, err)
		}
		if rep.Violations > 0 {
			return reports, fmt.Errorf("workload: op %d (%v) left %d consistency violations", i, op.Kind, rep.Violations)
		}
		if rep.Unrepaired > 0 {
			return reports, fmt.Errorf("workload: op %d (%v) left %d entries unrepaired", i, op.Kind, rep.Unrepaired)
		}
	}
	return reports, nil
}

// VerifyReachability routes between sample random pairs and returns the
// number of failed routes (0 in a consistent network, per Lemma 3.1).
func (r *Runner) VerifyReachability(sample int) int {
	tables := r.net.Tables()
	failed := 0
	for i := 0; i < sample && len(r.live) >= 2; i++ {
		src := r.live[r.rng.Intn(len(r.live))]
		dst := r.live[r.rng.Intn(len(r.live))]
		if _, ok := netcheck.Reachable(r.params, tables, src.ID, dst.ID); !ok {
			failed++
		}
	}
	return failed
}
