package overlay

import (
	"math/rand"
	"testing"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/table"
)

func TestChurnDebugSeed3(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := New(Config{Params: p164})
	taken := make(map[id.ID]bool)
	refs := RandomRefs(p164, 60, rng, taken)
	net.BuildDirect(refs, rng)
	var live []table.Ref
	live = append(live, refs...)
	pickLive := func() table.Ref { return live[rng.Intn(len(live))] }
	removeLive := func(i int) table.Ref {
		r := live[i]
		live = append(live[:i], live[i+1:]...)
		return r
	}
	for phase := 0; phase < 8; phase++ {
		switch phase % 3 {
		case 0:
			joiners := RandomRefs(p164, 10, rng, taken)
			for _, j := range joiners {
				net.ScheduleJoin(j, pickLive(), net.Engine().Now())
				live = append(live, j)
			}
			net.Run()
		case 1:
			var names []string
			for count := 0; count < 5 && len(live) >= 20; count++ {
				x := removeLive(rng.Intn(len(live)))
				net.ScheduleLeave(x.ID, net.Engine().Now())
				names = append(names, x.ID.String())
			}
			net.Run()
			g := net.FinalizeLeaves()
			t.Logf("phase %d leavers %v finalized %d", phase, names, len(g))
			for x, m := range net.machines {
				if m.Status() == core.StatusLeaving {
					var pend []string
					for _, p := range m.LeaveAcksPending() {
						status := "GONE"
						if mm, ok := net.Machine(p); ok {
							status = mm.Status().String()
						}
						pend = append(pend, p.String()+"/"+status)
					}
					t.Logf("  STUCK leaver %v awaiting %v", x, pend)
				}
			}
		case 2:
			if len(live) >= 20 {
				x := removeLive(rng.Intn(len(live)))
				net.InjectFailure(x.ID)
				st := net.RecoverFailure(x.ID, rng, 0)
				t.Logf("phase %d crash %v: %+v", phase, x.ID, st)
			}
		}
		if v := net.CheckConsistency(); len(v) != 0 {
			t.Fatalf("phase %d: %v (of %d)", phase, v[0], len(v))
		}
	}
}
