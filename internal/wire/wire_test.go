package wire

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.txt from the current encoder")

var tp = id.Params{B: 8, D: 5}

func tref(t *testing.T, ids, addr string) table.Ref {
	t.Helper()
	return table.Ref{ID: id.MustParse(tp, ids), Addr: addr}
}

// sampleTable builds a deterministic snapshot whose entries carry the
// coordinates' desired suffixes, as a real protocol table would.
func sampleTable(t *testing.T) table.Snapshot {
	t.Helper()
	owner := id.MustParse(tp, "21233")
	tbl := table.New(tp, owner)
	fill := func(level, digit int, seed string, state table.State) {
		suf := tbl.DesiredSuffix(level, digit)
		digits := make([]int, tp.D)
		for i := range digits {
			digits[i] = int(seed[i%len(seed)]-'0') % tp.B
		}
		for i := 0; i < suf.Len(); i++ {
			digits[i] = suf.Digit(i)
		}
		x, err := id.FromDigits(tp, digits)
		if err != nil {
			t.Fatal(err)
		}
		tbl.Set(level, digit, table.Neighbor{ID: x, Addr: fmt.Sprintf("10.0.0.%d:%d", level, 7000+digit), State: state})
	}
	fill(0, 1, "4567", table.StateS)
	fill(1, 0, "1212", table.StateT)
	fill(2, 7, "7654", table.StateS)
	fill(4, 3, "3030", table.StateT)
	return tbl.Snapshot()
}

func sampleFill(t *testing.T) table.BitVector {
	t.Helper()
	v := table.NewBitVector(tp.D * tp.B)
	for _, i := range []int{0, 1, 9, 23, 39} {
		v.Set(i)
	}
	return v
}

// sampleEnvelopes returns one representative envelope per message kind,
// exercising every field shape (refs, tables, fill vectors, suffixes,
// optional IDs, flags).
func sampleEnvelopes(t *testing.T) []msg.Envelope {
	t.Helper()
	from := tref(t, "21233", "127.0.0.1:7001")
	to := tref(t, "33121", "127.0.0.1:7002")
	u := tref(t, "12345", "127.0.0.1:7003")
	snap := sampleTable(t)
	fill := sampleFill(t)
	found := table.Neighbor{ID: id.MustParse(tp, "54321"), Addr: "127.0.0.1:7004", State: table.StateS}
	envs := []msg.Envelope{
		{From: from, To: to, Msg: msg.CpRst{Level: 3}},
		{From: from, To: to, Msg: msg.CpRly{Table: snap}},
		{From: from, To: to, Msg: msg.JoinWait{}},
		{From: from, To: to, Msg: msg.JoinWaitRly{R: msg.Negative, U: u, Table: snap}},
		{From: from, To: to, Msg: msg.JoinNoti{Table: snap, FillVector: fill, NotiLevel: 2}},
		{From: from, To: to, Msg: msg.JoinNotiRly{R: msg.Positive, F: true, Table: snap}},
		{From: from, To: to, Msg: msg.InSysNoti{}},
		{From: from, To: to, Msg: msg.SpeNoti{X: u, Y: from}},
		{From: from, To: to, Msg: msg.SpeNotiRly{X: u, Y: from}},
		{From: from, To: to, Msg: msg.RvNghNoti{Level: 1, Digit: 3, State: table.StateT}},
		{From: from, To: to, Msg: msg.RvNghNotiRly{Level: 4, Digit: 7, State: table.StateS}},
		{From: from, To: to, Msg: msg.Leave{Table: snap}},
		{From: from, To: to, Msg: msg.LeaveRly{}},
		{From: from, To: to, Msg: msg.Find{Want: id.MustParseSuffix(tp, "233"), Origin: u, Avoid: id.MustParse(tp, "54321")}},
		{From: from, To: to, Msg: msg.Find{Want: id.MustParseSuffix(tp, "3"), Origin: u}},
		{From: from, To: to, Msg: msg.FindRly{Want: id.MustParseSuffix(tp, "233"), Found: found}},
		{From: from, To: to, Msg: msg.FindRly{Want: id.MustParseSuffix(tp, "233"), Blocked: true}},
		{From: from, To: to, Msg: msg.Ping{Seq: 123456, Origin: from, Target: to}},
		{From: from, To: to, Msg: msg.Pong{Seq: 123456}},
		{From: from, To: to, Msg: msg.FailedNoti{Failed: u}},
		{From: from, To: to, Msg: msg.SyncReq{Fill: fill}},
		{From: from, To: to, Msg: msg.SyncRly{Table: snap, Fill: fill}},
		{From: from, To: to, Msg: msg.SyncPush{Table: snap}},
		{From: from, To: to, Msg: msg.SamplePush{}},
		{From: from, To: to, Msg: msg.SamplePullReq{}},
		{From: from, To: to, Msg: msg.SamplePullRly{Refs: ascendingRefs(u, from, to)}},
		{From: from, To: to, Msg: msg.SamplePullRly{}},
		// Edge shapes: zero refs, empty table, no fill, empty suffix.
		{From: from, To: to, Msg: msg.JoinWaitRly{R: msg.Positive}},
		{From: from, To: to, Msg: msg.JoinNoti{Table: snap, NotiLevel: 0}},
		{From: from, To: to, Msg: msg.SyncReq{}},
		{From: from, To: to, Msg: msg.Find{Want: id.EmptySuffix, Origin: u}},
	}
	return envs
}

// ascendingRefs sorts refs into the strictly ascending ID order the
// SamplePullRly canonical form requires.
func ascendingRefs(refs ...table.Ref) []table.Ref {
	out := append([]table.Ref(nil), refs...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out
}

// Every sample must survive encode → decode unchanged, and re-encoding
// the decoded envelope must be byte-identical (canonical encoding).
func TestRoundTripAllKinds(t *testing.T) {
	for i, env := range sampleEnvelopes(t) {
		payload, err := EncodePayload(tp, env)
		if err != nil {
			t.Fatalf("sample %d (%v): encode: %v", i, env.Msg.Type(), err)
		}
		back, err := DecodeOne(tp, payload)
		if err != nil {
			t.Fatalf("sample %d (%v): decode: %v", i, env.Msg.Type(), err)
		}
		if back.From != env.From || back.To != env.To {
			t.Fatalf("sample %d (%v): refs diverged", i, env.Msg.Type())
		}
		if back.Msg.Type() != env.Msg.Type() {
			t.Fatalf("sample %d: kind %v became %v", i, env.Msg.Type(), back.Msg.Type())
		}
		re, err := EncodePayload(tp, back)
		if err != nil {
			t.Fatalf("sample %d (%v): re-encode: %v", i, env.Msg.Type(), err)
		}
		if !bytes.Equal(re, payload) {
			t.Fatalf("sample %d (%v): re-encode not byte-identical\n got %x\nwant %x",
				i, env.Msg.Type(), re, payload)
		}
		assertEnvelopeEqual(t, env, back)
	}
}

// assertEnvelopeEqual compares envelopes through their observable
// protocol content (wire normalization drops nothing the machine reads).
func assertEnvelopeEqual(t *testing.T, want, got msg.Envelope) {
	t.Helper()
	normalize := func(e msg.Envelope) string {
		return fmt.Sprintf("%#v", e.Msg)
	}
	// Snapshots and bit vectors hold unexported fields; DeepEqual covers
	// them, with the %#v form as a readable fallback for the diff.
	if !reflect.DeepEqual(want.Msg, got.Msg) {
		t.Fatalf("message diverged\n got %s\nwant %s", normalize(got), normalize(want))
	}
}

func TestMultiEnvelopePayload(t *testing.T) {
	envs := sampleEnvelopes(t)[:5]
	payload, err := EncodePayload(tp, envs...)
	if err != nil {
		t.Fatal(err)
	}
	var got []msg.Envelope
	if err := DecodePayload(tp, payload, func(env msg.Envelope) error {
		got = append(got, env)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(envs) {
		t.Fatalf("decoded %d envelopes, want %d", len(got), len(envs))
	}
	for i := range envs {
		assertEnvelopeEqual(t, envs[i], got[i])
	}
}

func TestDecodeRejectsHostile(t *testing.T) {
	good, err := EncodePayload(tp, sampleEnvelopes(t)[0])
	if err != nil {
		t.Fatal(err)
	}
	mut := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := map[string][]byte{
		"empty":           {},
		"short header":    {Version},
		"bad version":     mut(func(b []byte) []byte { b[0] = 99; return b }),
		"zero count":      mut(func(b []byte) []byte { b[1] = 0; return b }),
		"over count":      mut(func(b []byte) []byte { b[1] = 200; return b }),
		"count too high":  mut(func(b []byte) []byte { b[1] = 2; return b }),
		"trailing bytes":  append(append([]byte(nil), good...), 0xde, 0xad),
		"truncated":       good[:len(good)-3],
		"unknown kind":    mut(func(b []byte) []byte { b[3] = 250; return b }),
		"kind zero":       mut(func(b []byte) []byte { b[3] = 0; return b }),
		"bad presence":    mut(func(b []byte) []byte { b[4] = 7; return b }),
		"digit over base": mut(func(b []byte) []byte { b[5] = 9; return b }),
	}
	for name, data := range cases {
		if _, err := DecodeOne(tp, data); err == nil {
			t.Errorf("%s: accepted", name)
		} else if name != "callback" && !IsMalformed(err) {
			t.Errorf("%s: error not marked malformed: %v", name, err)
		}
	}
}

// The satellite-bug classes from the gob codec must be structurally
// impossible or rejected here: under-length fill words, phantom padding
// bits, out-of-order or duplicate table entries, oversized addresses,
// and invalid Found state/addr on FindRly.
func TestDecodeRejectsCodecBoundaryClasses(t *testing.T) {
	from := tref(t, "21233", "a")
	to := tref(t, "33121", "b")

	// Truncated fill bitmap: encode a SyncReq, then chop one word off the
	// vector by hand-editing the payload length fields is fiddly — build
	// the hostile payload directly instead.
	hostileFill := AppendHeader(nil, Version)
	body := []byte{byte(msg.TSyncReq)}
	body = appendRawRef(body, from)
	body = appendRawRef(body, to)
	body = append(body, 40)                 // 40 bits claimed...
	body = append(body, make([]byte, 4)...) // ...but only half a word follows
	hostileFill = appendRecord(hostileFill, body)
	SetCount(hostileFill, 1)
	if _, err := DecodeOne(tp, hostileFill); err == nil {
		t.Error("under-length fill vector accepted")
	}

	// Padding bits beyond the declared length must be rejected.
	padded := AppendHeader(nil, Version)
	body = []byte{byte(msg.TSyncReq)}
	body = appendRawRef(body, from)
	body = appendRawRef(body, to)
	body = append(body, 40) // 40 bits -> one word, top 24 bits must be clear
	word := make([]byte, 8)
	word[7] = 0x80
	body = append(body, word...)
	padded = appendRecord(padded, body)
	SetCount(padded, 1)
	if _, err := DecodeOne(tp, padded); err == nil {
		t.Error("fill vector with phantom padding bits accepted")
	}

	// FindRly Found with an invalid state byte.
	foundBad := AppendHeader(nil, Version)
	body = []byte{byte(msg.TFindRly)}
	body = appendRawRef(body, from)
	body = appendRawRef(body, to)
	body = append(body, 0)             // empty suffix
	body = append(body, 0)             // not blocked
	body = append(body, 1)             // found present
	body = append(body, 1, 2, 3, 4, 5) // digits
	body = append(body, 1, 'x')        // addr
	body = append(body, 9)             // state 9: invalid
	foundBad = appendRecord(foundBad, body)
	SetCount(foundBad, 1)
	if _, err := DecodeOne(tp, foundBad); err == nil {
		t.Error("FindRly Found with invalid state accepted")
	}

	// Oversized Found address.
	foundAddr := AppendHeader(nil, Version)
	body = []byte{byte(msg.TFindRly)}
	body = appendRawRef(body, from)
	body = appendRawRef(body, to)
	body = append(body, 0, 0, 1)
	body = append(body, 1, 2, 3, 4, 5)
	body = append(body, 0x82, 0x04) // addrLen 514 > MaxAddr
	body = append(body, make([]byte, 514)...)
	body = append(body, byte(table.StateS))
	foundAddr = appendRecord(foundAddr, body)
	SetCount(foundAddr, 1)
	if _, err := DecodeOne(tp, foundAddr); err == nil {
		t.Error("FindRly Found with oversized address accepted")
	}

	// Out-of-order table entries break the canonical ordering rule.
	snapBody := []byte{byte(msg.TCpRly)}
	snapBody = appendRawRef(snapBody, from)
	snapBody = appendRawRef(snapBody, to)
	snapBody = append(snapBody, 1)             // table present
	snapBody = append(snapBody, 3, 3, 2, 1, 2) // owner digits ("21233" reversed)
	snapBody = append(snapBody, 0, 5)          // lo=0, hi=4
	snapBody = append(snapBody, 2)             // two entries
	entry := func(level, digit byte) []byte {
		e := []byte{level, digit}
		e = append(e, 1, 2, 3, 4, 5)
		e = append(e, 1, 'x')
		e = append(e, byte(table.StateS))
		return e
	}
	snapBody = append(snapBody, entry(2, 0)...)
	snapBody = append(snapBody, entry(1, 0)...) // descending: hostile
	outOfOrder := appendRecord(AppendHeader(nil, Version), snapBody)
	SetCount(outOfOrder, 1)
	if _, err := DecodeOne(tp, outOfOrder); err == nil {
		t.Error("out-of-order table entries accepted")
	}

	// Duplicate coordinates are likewise non-canonical.
	dupBody := []byte{byte(msg.TCpRly)}
	dupBody = appendRawRef(dupBody, from)
	dupBody = appendRawRef(dupBody, to)
	dupBody = append(dupBody, 1)
	dupBody = append(dupBody, 3, 3, 2, 1, 2)
	dupBody = append(dupBody, 0, 5)
	dupBody = append(dupBody, 2)
	dupBody = append(dupBody, entry(1, 0)...)
	dupBody = append(dupBody, entry(1, 0)...)
	dup := appendRecord(AppendHeader(nil, Version), dupBody)
	SetCount(dup, 1)
	if _, err := DecodeOne(tp, dup); err == nil {
		t.Error("duplicate table entries accepted")
	}

	// Non-minimal varints re-encode shorter, so they must be rejected.
	nonMinimal := AppendHeader(nil, Version)
	body = []byte{byte(msg.TPong)}
	body = appendRawRef(body, from)
	body = appendRawRef(body, to)
	body = append(body, 0x80, 0x00) // Seq 0 encoded in two bytes
	nonMinimal = appendRecord(nonMinimal, body)
	SetCount(nonMinimal, 1)
	if _, err := DecodeOne(tp, nonMinimal); err == nil {
		t.Error("non-minimal varint accepted")
	}
}

// appendRawRef hand-encodes a present ref (test helper mirroring the
// codec layout so hostile payloads can be assembled byte by byte).
func appendRawRef(dst []byte, r table.Ref) []byte {
	dst = append(dst, 1)
	dst = r.ID.AppendRawDigits(dst)
	dst = append(dst, byte(len(r.Addr)))
	return append(dst, r.Addr...)
}

// appendRecord appends a record (length prefix + body) to a payload.
func appendRecord(dst, body []byte) []byte {
	dst = append(dst, byte(len(body)))
	return append(dst, body...)
}

// Encoding must refuse envelopes the protocol can never produce, and
// must leave dst untouched when it does.
func TestAppendEnvelopeRejectsUnencodable(t *testing.T) {
	from := tref(t, "21233", "a")
	to := tref(t, "33121", "b")
	long := strings.Repeat("x", MaxAddr+1)
	cases := []msg.Envelope{
		{From: table.Ref{ID: id.MustParse(id.Params{B: 8, D: 3}, "123"), Addr: "a"}, To: to, Msg: msg.JoinWait{}},
		{From: from, To: table.Ref{ID: to.ID, Addr: long}, Msg: msg.JoinWait{}},
		{From: from, To: to, Msg: msg.CpRst{Level: -1}},
		{From: from, To: to, Msg: msg.RvNghNoti{Level: 99, Digit: 0, State: table.StateT}},
		{From: from, To: to, Msg: msg.RvNghNoti{Level: 0, Digit: 0, State: 9}},
	}
	for i, env := range cases {
		dst := []byte{0xaa}
		out, err := AppendEnvelope(dst, tp, env, Version)
		if err == nil {
			t.Errorf("case %d: unencodable envelope accepted", i)
		}
		if !bytes.Equal(out, dst) {
			t.Errorf("case %d: dst mutated on error", i)
		}
	}
}

// Golden vectors: any layout change must be deliberate. Regenerate with
//
//	go test ./internal/wire -run TestGoldenVectors -update
func TestGoldenVectors(t *testing.T) {
	envs := sampleEnvelopes(t)
	path := filepath.Join("testdata", "golden.txt")
	if *update {
		var sb strings.Builder
		sb.WriteString("# Golden wire vectors: <kind> <hex payload>, one per sample envelope.\n")
		sb.WriteString("# Regenerate with: go test ./internal/wire -run TestGoldenVectors -update\n")
		for _, env := range envs {
			payload, err := EncodePayload(tp, env)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&sb, "%s %s\n", env.Msg.Type(), hex.EncodeToString(payload))
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(envs) {
		t.Fatalf("golden file has %d vectors, samples have %d (regenerate with -update)", len(lines), len(envs))
	}
	for i, env := range envs {
		payload, err := EncodePayload(tp, env)
		if err != nil {
			t.Fatal(err)
		}
		fields := strings.Fields(lines[i])
		if len(fields) != 2 {
			t.Fatalf("golden line %d malformed: %q", i, lines[i])
		}
		want, err := hex.DecodeString(fields[1])
		if err != nil {
			t.Fatalf("golden line %d: %v", i, err)
		}
		if fields[0] != env.Msg.Type().String() {
			t.Fatalf("golden line %d is %s, sample is %v (regenerate with -update)", i, fields[0], env.Msg.Type())
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("wire layout changed for %v\n got %x\nwant %x\nif deliberate, bump Version and regenerate with -update",
				env.Msg.Type(), payload, want)
		}
		// Goldens must also still decode.
		back, err := DecodeOne(tp, want)
		if err != nil {
			t.Fatalf("golden %v no longer decodes: %v", env.Msg.Type(), err)
		}
		assertEnvelopeEqual(t, env, back)
	}
}

// The steady-state encode path must not allocate once the destination
// buffer has capacity.
func TestAppendEnvelopeZeroAlloc(t *testing.T) {
	env := msg.Envelope{
		From: tref(t, "21233", "127.0.0.1:7001"),
		To:   tref(t, "33121", "127.0.0.1:7002"),
		Msg:  msg.RvNghNoti{Level: 1, Digit: 3, State: table.StateT},
	}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(200, func() {
		out := AppendHeader(buf[:0], Version)
		out, err := AppendEnvelope(out, tp, env, Version)
		if err != nil {
			t.Fatal(err)
		}
		SetCount(out, 1)
	})
	if allocs != 0 {
		t.Fatalf("encode path allocates %v times per envelope, want 0", allocs)
	}
}
