// Package hypercube is a reproduction of Liu & Lam, "Neighbor Table
// Construction and Update in a Dynamic Peer-to-Peer Network" (IEEE ICDCS
// 2003): the hypercube (suffix-matching) routing scheme of PRR/Pastry/
// Tapestry, the paper's join protocol with provable neighbor-table
// consistency under arbitrary concurrent joins, C-set trees, the
// communication-cost model, and the simulation experiments.
//
// The implementation lives under internal/ (see DESIGN.md for the map);
// runnable experiment tools are under cmd/ and worked examples under
// examples/. This root package holds the benchmark harness that
// regenerates every table and figure of the paper's evaluation
// (bench_test.go).
package hypercube
