package tcptransport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
)

// Node hosts one protocol machine behind a TCP listener.
type Node struct {
	params id.Params

	mu      sync.Mutex // guards machine
	machine *core.Machine

	ln net.Listener

	peersMu  sync.Mutex
	peers    map[string]*peerConn
	accepted map[net.Conn]struct{}

	wg     sync.WaitGroup
	done   chan struct{}
	closed bool
}

type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

// StartSeed launches the first node of a network (§6.1) listening on
// listenAddr ("127.0.0.1:0" picks a free port).
func StartSeed(p id.Params, opts core.Options, nodeID id.ID, listenAddr string) (*Node, error) {
	return start(p, listenAddr, func(ref table.Ref) *core.Machine {
		return core.NewSeed(p, ref, opts)
	}, nodeID)
}

// StartJoiner launches a node that is not yet part of any network; call
// Join to integrate it.
func StartJoiner(p id.Params, opts core.Options, nodeID id.ID, listenAddr string) (*Node, error) {
	return start(p, listenAddr, func(ref table.Ref) *core.Machine {
		return core.NewJoiner(p, ref, opts)
	}, nodeID)
}

func start(p id.Params, listenAddr string, mk func(table.Ref) *core.Machine, nodeID id.ID) (*Node, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("tcptransport: %w", err)
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcptransport: listen: %w", err)
	}
	n := &Node{
		params:   p,
		ln:       ln,
		peers:    make(map[string]*peerConn),
		accepted: make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	ref := table.Ref{ID: nodeID, Addr: ln.Addr().String()}
	n.machine = mk(ref)
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Ref returns the node's identity: its ID plus actual listen address.
func (n *Node) Ref() table.Ref { return n.machine.Self() }

// Status returns the node's protocol status.
func (n *Node) Status() core.Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.machine.Status()
}

// Snapshot returns an immutable copy of the node's table.
func (n *Node) Snapshot() table.Snapshot {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.machine.Snapshot()
}

// Counters returns a copy of the node's message counters.
func (n *Node) Counters() msg.Counters {
	n.mu.Lock()
	defer n.mu.Unlock()
	return *n.machine.Counters()
}

// Join starts the join protocol through the given bootstrap node.
func (n *Node) Join(bootstrap table.Ref) error {
	n.mu.Lock()
	out := n.machine.StartJoin(bootstrap)
	n.mu.Unlock()
	return n.sendAll(out)
}

// Leave starts a graceful departure (§7 extension); await StatusLeft
// before shutting the node down so holders can repair their tables.
func (n *Node) Leave() error {
	n.mu.Lock()
	out := n.machine.StartLeave()
	n.mu.Unlock()
	return n.sendAll(out)
}

// AwaitStatus polls until the node reaches the wanted status or the
// context expires.
func (n *Node) AwaitStatus(ctx context.Context, want core.Status) error {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if n.Status() == want {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("tcptransport: node %v stuck in %v: %w", n.Ref().ID, n.Status(), ctx.Err())
		case <-tick.C:
		}
	}
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		n.peersMu.Lock()
		if n.closed {
			n.peersMu.Unlock()
			conn.Close()
			return
		}
		n.accepted[conn] = struct{}{}
		n.peersMu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.peersMu.Lock()
		delete(n.accepted, conn)
		n.peersMu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var w wireEnvelope
		if err := dec.Decode(&w); err != nil {
			return // connection closed or corrupted; peer will redial
		}
		env, err := decodeEnvelope(n.params, w)
		if err != nil {
			return
		}
		n.mu.Lock()
		out := n.machine.Deliver(env)
		n.mu.Unlock()
		if err := n.sendAll(out); err != nil {
			return
		}
	}
}

func (n *Node) sendAll(envs []msg.Envelope) error {
	for _, env := range envs {
		if err := n.send(env); err != nil {
			return err
		}
	}
	return nil
}

// send transmits one envelope over the (cached) connection to its
// destination, redialing once on a stale connection.
func (n *Node) send(env msg.Envelope) error {
	w, err := encodeEnvelope(env)
	if err != nil {
		return err
	}
	for attempt := 0; attempt < 2; attempt++ {
		pc, err := n.peer(env.To.Addr, attempt > 0)
		if err != nil {
			return fmt.Errorf("tcptransport: dial %s: %w", env.To.Addr, err)
		}
		pc.mu.Lock()
		err = pc.enc.Encode(&w)
		pc.mu.Unlock()
		if err == nil {
			return nil
		}
		n.dropPeer(env.To.Addr, pc)
	}
	return fmt.Errorf("tcptransport: send to %s failed after redial", env.To.Addr)
}

func (n *Node) peer(addr string, fresh bool) (*peerConn, error) {
	n.peersMu.Lock()
	if !fresh {
		if pc, ok := n.peers[addr]; ok {
			n.peersMu.Unlock()
			return pc, nil
		}
	}
	n.peersMu.Unlock()

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	pc := &peerConn{conn: conn, enc: gob.NewEncoder(conn)}
	n.peersMu.Lock()
	if old, ok := n.peers[addr]; ok && !fresh {
		// Lost a dial race; reuse the existing connection.
		n.peersMu.Unlock()
		conn.Close()
		return old, nil
	}
	n.peers[addr] = pc
	n.peersMu.Unlock()
	return pc, nil
}

func (n *Node) dropPeer(addr string, pc *peerConn) {
	n.peersMu.Lock()
	if n.peers[addr] == pc {
		delete(n.peers, addr)
	}
	n.peersMu.Unlock()
	pc.conn.Close()
}

// Close shuts the node down: listener, peer connections, goroutines.
func (n *Node) Close() error {
	n.peersMu.Lock()
	if n.closed {
		n.peersMu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]net.Conn, 0, len(n.peers)+len(n.accepted))
	for _, pc := range n.peers {
		conns = append(conns, pc.conn)
	}
	for c := range n.accepted {
		conns = append(conns, c)
	}
	n.peersMu.Unlock()

	close(n.done)
	err := n.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
	return err
}
