GO ?= go

.PHONY: all build test race bench vet fmt cover experiments

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/overlay/ ./internal/transport/...

bench:
	$(GO) test -bench . -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

cover:
	$(GO) test -cover ./internal/...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/figure15a
	$(GO) run ./cmd/figure15b
	$(GO) run ./cmd/jointable
	$(GO) run ./cmd/consistency
	$(GO) run ./cmd/csettree
	$(GO) run ./cmd/baselinecmp
	$(GO) run ./cmd/msgsize
	$(GO) run ./cmd/churn
	$(GO) run ./cmd/workload -quiet
