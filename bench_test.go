// Benchmark harness regenerating every table and figure of the paper's
// evaluation (Liu & Lam, ICDCS 2003, §5):
//
//	BenchmarkFigure15a          — the analytic curves of Figure 15(a)
//	BenchmarkFigure15b/...      — the simulated CDFs of Figure 15(b)
//	BenchmarkJoinTable/...      — the §5.2 in-text averages vs bounds
//	BenchmarkTheorem3/...       — the CpRst+JoinWait <= d+1 bound
//	BenchmarkConsistency/...    — Theorems 1 & 2 under concurrent waves
//	BenchmarkSingleJoin/...     — Theorem 4's single-join setting
//	BenchmarkMessageSize/...    — the §6.2 message-size ablation
//	BenchmarkBaseline/...       — the §1 multicast-join comparison
//	BenchmarkAblation*          — design-choice ablations from DESIGN.md
//
// Domain results are attached as custom benchmark metrics (ReportMetric),
// so `go test -bench . -benchmem` prints both runtime cost and the
// reproduced quantities (mean JoinNotiMsg per join, theoretical bounds,
// violation counts). Figure15b and JoinTable run the paper-scale setups
// (n up to 7192, m=1000, 8320-router topology); everything else uses
// smaller instances sized for stable measurement.
package hypercube

import (
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"hypercube/internal/analysis"
	"hypercube/internal/baseline"
	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/obs"
	"hypercube/internal/overlay"
	"hypercube/internal/table"
	"hypercube/internal/topology"
	"hypercube/internal/workload"
)

// BenchmarkFigure15a evaluates the four Theorem-5 curves at the paper's
// ten n samples (Figure 15(a)).
func BenchmarkFigure15a(b *testing.B) {
	ns := analysis.PaperFigure15aN()
	curves := analysis.PaperFigure15aCurves()
	var last float64
	for i := 0; i < b.N; i++ {
		series := analysis.Figure15a(curves, ns)
		last = series[1].Points[len(ns)-1].Y
	}
	// m=1000, b=16, d=40 at n=100000 — the top-right point of the figure.
	b.ReportMetric(last, "bound@n=100k")
	b.ReportMetric(analysis.UpperBoundJoinNoti(16, 40, 10_000, 1000), "bound@n=10k")
}

// figure15bSetups are the paper's four simulation configurations.
var figure15bSetups = []struct {
	n, d int
}{
	{3096, 8}, {3096, 40}, {7192, 8}, {7192, 40},
}

// BenchmarkFigure15b runs each Figure 15(b) setup at paper scale: 8320-
// router transit-stub topology, m=1000 concurrent joins at t=0. Metrics:
// the mean JoinNotiMsg per join (the paper reports 6.117 / 6.051 / 5.026
// / 5.399), the Theorem-5 bound, and the CDF at x=10.
func BenchmarkFigure15b(b *testing.B) {
	for _, su := range figure15bSetups {
		su := su
		b.Run(fmt.Sprintf("n=%d/d=%d", su.n, su.d), func(b *testing.B) {
			var mean, cdf10 float64
			for i := 0; i < b.N; i++ {
				topo, err := topology.Generate(topology.Default8320(1))
				if err != nil {
					b.Fatal(err)
				}
				res, err := overlay.RunWave(overlay.WaveConfig{
					Params:   id.Params{B: 16, D: su.d},
					N:        su.n,
					M:        1000,
					Seed:     1,
					Topology: topo,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Consistent() || !res.AllSNodes {
					b.Fatalf("wave violated Theorems 1/2: %d violations", len(res.Violations))
				}
				mean = res.MeanJoinNoti()
				at10 := 0
				for _, v := range res.JoinNoti {
					if v <= 10 {
						at10++
					}
				}
				cdf10 = float64(at10) / float64(len(res.JoinNoti))
			}
			b.ReportMetric(mean, "meanJoinNoti")
			b.ReportMetric(analysis.UpperBoundJoinNoti(16, su.d, su.n, 1000), "thm5bound")
			b.ReportMetric(cdf10, "CDF@10")
		})
	}
}

// BenchmarkJoinTable regenerates the §5.2 in-text comparison rows
// (simulated average vs Theorem-5 bound vs Theorem-4 expectation).
func BenchmarkJoinTable(b *testing.B) {
	for _, su := range figure15bSetups {
		su := su
		b.Run(fmt.Sprintf("n=%d/d=%d", su.n, su.d), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := overlay.RunWave(overlay.WaveConfig{
					Params: id.Params{B: 16, D: su.d},
					N:      su.n,
					M:      1000,
					Seed:   2,
				})
				if err != nil {
					b.Fatal(err)
				}
				mean = res.MeanJoinNoti()
			}
			b.ReportMetric(mean, "avgJoinNoti")
			b.ReportMetric(analysis.UpperBoundJoinNoti(16, su.d, su.n, 1000), "thm5bound")
			b.ReportMetric(analysis.ExpectedJoinNoti(16, su.d, su.n), "thm4E(J)")
		})
	}
}

// BenchmarkTheorem3 measures the worst observed CpRst+JoinWait count per
// join against the d+1 bound.
func BenchmarkTheorem3(b *testing.B) {
	for _, d := range []int{4, 8, 40} {
		d := d
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			worst := 0
			for i := 0; i < b.N; i++ {
				res, err := overlay.RunWave(overlay.WaveConfig{
					Params: id.Params{B: 16, D: d}, N: 500, M: 200, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, rec := range res.Records {
					if s := rec.CpRstSent + rec.JoinWaitSent; s > worst {
						worst = s
					}
				}
			}
			if worst > analysis.Theorem3Bound(d) {
				b.Fatalf("Theorem 3 violated: %d > %d", worst, analysis.Theorem3Bound(d))
			}
			b.ReportMetric(float64(worst), "maxCpRst+JoinWait")
			b.ReportMetric(float64(analysis.Theorem3Bound(d)), "thm3bound")
		})
	}
}

// BenchmarkConsistency measures a full concurrent wave plus the global
// Definition-3.8 check (Theorems 1 and 2 as an executable assertion).
func BenchmarkConsistency(b *testing.B) {
	for _, p := range []id.Params{{B: 4, D: 6}, {B: 16, D: 8}} {
		p := p
		b.Run(fmt.Sprintf("b=%d/d=%d", p.B, p.D), func(b *testing.B) {
			violations := 0
			for i := 0; i < b.N; i++ {
				res, err := overlay.RunWave(overlay.WaveConfig{
					Params: p, N: 400, M: 200, Seed: int64(i) * 31,
				})
				if err != nil {
					b.Fatal(err)
				}
				violations += len(res.Violations)
				if !res.AllSNodes {
					b.Fatal("Theorem 2 violated")
				}
			}
			if violations != 0 {
				b.Fatalf("Theorem 1 violated %d times", violations)
			}
			b.ReportMetric(0, "violations")
		})
	}
}

// BenchmarkSingleJoin measures one node joining an n-node consistent
// network — Theorem 4's setting — and reports the measured JoinNotiMsg
// count against E(J).
func BenchmarkSingleJoin(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				res, err := overlay.RunWave(overlay.WaveConfig{
					Params: id.Params{B: 16, D: 8}, N: n, M: 1, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				total += res.JoinNoti[0]
			}
			b.ReportMetric(float64(total)/float64(b.N), "JoinNoti/join")
			b.ReportMetric(analysis.ExpectedJoinNoti(16, 8, n), "thm4E(J)")
		})
	}
}

// BenchmarkMessageSize is the §6.2 ablation: bytes sent by joiners with
// and without the two message-size reductions.
func BenchmarkMessageSize(b *testing.B) {
	variants := []struct {
		name string
		opts core.Options
	}{
		{"full", core.Options{}},
		{"reduced", core.Options{ReduceLevels: true, BitVector: true}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			bytesPerJoin := 0.0
			for i := 0; i < b.N; i++ {
				res, err := overlay.RunWave(overlay.WaveConfig{
					Params: id.Params{B: 16, D: 8}, N: 500, M: 200, Seed: 3, Opts: v.opts,
				})
				if err != nil {
					b.Fatal(err)
				}
				total := 0
				for _, rec := range res.Records {
					total += rec.BytesSent
				}
				bytesPerJoin = float64(total) / float64(len(res.Records))
			}
			b.ReportMetric(bytesPerJoin, "bytes/join")
		})
	}
}

// BenchmarkBaseline compares the paper's protocol with the multicast join
// of §1's related work on identical workloads: message totals, peak join
// state parked on established nodes, and consistency violations.
func BenchmarkBaseline(b *testing.B) {
	p := id.Params{B: 4, D: 4}
	b.Run("liu-lam", func(b *testing.B) {
		var events uint64
		violations := 0
		for i := 0; i < b.N; i++ {
			res, err := overlay.RunWave(overlay.WaveConfig{Params: p, N: 120, M: 80, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			events = res.Events
			violations += len(res.Violations)
		}
		b.ReportMetric(float64(events), "messages")
		b.ReportMetric(float64(violations), "violations")
		b.ReportMetric(0, "peakExistingNodeState")
	})
	b.Run("multicast", func(b *testing.B) {
		var messages, pending, violations int
		for i := 0; i < b.N; i++ {
			res, err := baseline.RunWave(baseline.Config{Params: p, N: 120, M: 80, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			messages = res.TotalMessages
			pending = res.PeakPendingState
			violations += res.Violations
		}
		b.ReportMetric(float64(messages), "messages")
		b.ReportMetric(float64(violations), "violations")
		b.ReportMetric(float64(pending), "peakExistingNodeState")
	})
}

// BenchmarkAblationStagger contrasts the paper's all-at-t=0 wave with
// staggered join starts: staggering reduces contention (fewer JoinWait
// retries) at the cost of a longer wall-clock join phase.
func BenchmarkAblationStagger(b *testing.B) {
	for _, stagger := range []time.Duration{0, 5 * time.Second} {
		stagger := stagger
		b.Run(fmt.Sprintf("stagger=%v", stagger), func(b *testing.B) {
			var mean float64
			var virtual time.Duration
			for i := 0; i < b.N; i++ {
				res, err := overlay.RunWave(overlay.WaveConfig{
					Params: id.Params{B: 16, D: 8}, N: 500, M: 200, Seed: 5, Stagger: stagger,
				})
				if err != nil {
					b.Fatal(err)
				}
				mean = res.MeanJoinNoti()
				virtual = res.VirtualDuration
			}
			b.ReportMetric(mean, "meanJoinNoti")
			b.ReportMetric(virtual.Seconds(), "virtualSeconds")
		})
	}
}

// BenchmarkAblationBase sweeps the digit base b at fixed ID-space size
// (~2^16), showing the table-size/hop-count trade-off of the scheme.
func BenchmarkAblationBase(b *testing.B) {
	for _, p := range []id.Params{{B: 2, D: 16}, {B: 4, D: 8}, {B: 16, D: 4}} {
		p := p
		b.Run(fmt.Sprintf("b=%d/d=%d", p.B, p.D), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := overlay.RunWave(overlay.WaveConfig{
					Params: p, N: 400, M: 150, Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Consistent() {
					b.Fatal("inconsistent")
				}
				mean = res.MeanJoinNoti()
			}
			b.ReportMetric(mean, "meanJoinNoti")
		})
	}
}

// BenchmarkDirectBuild measures the global-knowledge construction of the
// initial consistent network (the experiment fixture) — the scalability
// knob for large waves.
func BenchmarkDirectBuild(b *testing.B) {
	p := id.Params{B: 16, D: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net := overlay.New(overlay.Config{Params: p})
		rng := newRand(int64(i))
		net.BuildDirect(overlay.RandomRefs(p, 2000, rng, nil), rng)
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// BenchmarkLeave measures a concurrent graceful-leave wave (the §7 leave
// extension): 50 of 500 nodes depart at once.
func BenchmarkLeave(b *testing.B) {
	p := id.Params{B: 16, D: 8}
	var perLeave float64
	for i := 0; i < b.N; i++ {
		rng := newRand(int64(i))
		net := overlay.New(overlay.Config{Params: p})
		refs := overlay.RandomRefs(p, 500, rng, nil)
		net.BuildDirect(refs, rng)
		before := net.Delivered()
		for j := 0; j < 50; j++ {
			if err := net.ScheduleLeave(refs[j].ID, 0); err != nil {
				b.Fatal(err)
			}
		}
		net.Run()
		if got := len(net.FinalizeLeaves()); got != 50 {
			b.Fatalf("only %d leaves completed", got)
		}
		if v := net.CheckConsistency(); len(v) != 0 {
			b.Fatalf("inconsistent after leaves: %v", v[0])
		}
		perLeave = float64(net.Delivered()-before) / 50
	}
	b.ReportMetric(perLeave, "msgs/leave")
}

// BenchmarkFailureRecovery measures crash repair: one node of 500 fails,
// survivors repair via local scans, routed queries, and orphan rejoins.
func BenchmarkFailureRecovery(b *testing.B) {
	p := id.Params{B: 16, D: 8}
	var perCrash float64
	unrepaired := 0
	for i := 0; i < b.N; i++ {
		rng := newRand(int64(i) * 17)
		net := overlay.New(overlay.Config{Params: p})
		refs := overlay.RandomRefs(p, 500, rng, nil)
		net.BuildDirect(refs, rng)
		before := net.Delivered()
		dead := refs[rng.Intn(len(refs))].ID
		if err := net.InjectFailure(dead); err != nil {
			b.Fatal(err)
		}
		st := net.RecoverFailure(dead, rng, 0)
		unrepaired += st.Unrepaired
		if v := net.CheckConsistency(); len(v) != 0 {
			b.Fatalf("inconsistent after recovery: %v", v[0])
		}
		perCrash = float64(net.Delivered() - before)
	}
	if unrepaired != 0 {
		b.Fatalf("%d entries unrepaired", unrepaired)
	}
	b.ReportMetric(perCrash, "msgs/crash")
}

// BenchmarkOptimization measures the §7 table-optimization extension and
// reports the route-stretch improvement on a transit-stub topology.
func BenchmarkOptimization(b *testing.B) {
	p := id.Params{B: 16, D: 6}
	var beforeMean, afterMean float64
	for i := 0; i < b.N; i++ {
		topo, err := topology.Generate(topology.Small(int64(i) + 1))
		if err != nil {
			b.Fatal(err)
		}
		rng := newRand(int64(i) * 3)
		tl := overlay.NewTopologyLatency(topo)
		net := overlay.New(overlay.Config{Params: p, Latency: tl.Func()})
		refs := overlay.RandomRefs(p, 300, rng, nil)
		hosts := topo.AttachHosts(len(refs), rng)
		for j, ref := range refs {
			tl.Bind(ref.ID, hosts[j])
		}
		net.BuildDirect(refs, rng)
		beforeMean = net.MeasureStretch(300, newRand(7)).Mean
		net.OptimizeTables(2)
		afterMean = net.MeasureStretch(300, newRand(7)).Mean
	}
	b.ReportMetric(beforeMean, "stretchBefore")
	b.ReportMetric(afterMean, "stretchAfter")
}

// BenchmarkAblationSequentialVsConcurrent compares the same m joins run
// one-at-a-time against all-at-t=0 (the paper's Lemma 5.2 vs Lemma 5.5
// settings): concurrency costs extra JoinWait redirects but the totals
// stay in the same regime.
func BenchmarkAblationSequentialVsConcurrent(b *testing.B) {
	p := id.Params{B: 16, D: 8}
	run := func(b *testing.B, stagger time.Duration, sequential bool) (joinWait float64, joinNoti float64) {
		rng := newRand(9)
		net := overlay.New(overlay.Config{Params: p})
		taken := make(map[id.ID]bool)
		existing := overlay.RandomRefs(p, 400, rng, taken)
		net.BuildDirect(existing, rng)
		joiners := overlay.RandomRefs(p, 150, rng, taken)
		for _, j := range joiners {
			g0 := existing[rng.Intn(len(existing))]
			net.ScheduleJoin(j, g0, net.Engine().Now())
			if sequential {
				net.Run()
			}
		}
		net.Run()
		if v := net.CheckConsistency(); len(v) != 0 {
			b.Fatalf("inconsistent: %v", v[0])
		}
		totalWait, totalNoti := 0, 0
		for _, rec := range net.Joins() {
			totalWait += rec.JoinWaitSent
			totalNoti += rec.JoinNotiSent
		}
		return float64(totalWait) / float64(len(joiners)), float64(totalNoti) / float64(len(joiners))
	}
	b.Run("sequential", func(b *testing.B) {
		var jw, jn float64
		for i := 0; i < b.N; i++ {
			jw, jn = run(b, 0, true)
		}
		b.ReportMetric(jw, "JoinWait/join")
		b.ReportMetric(jn, "JoinNoti/join")
	})
	b.Run("concurrent", func(b *testing.B) {
		var jw, jn float64
		for i := 0; i < b.N; i++ {
			jw, jn = run(b, 0, false)
		}
		b.ReportMetric(jw, "JoinWait/join")
		b.ReportMetric(jn, "JoinNoti/join")
	})
}

// BenchmarkAblationDependence contrasts independent joins (pairwise
// disjoint notification sets) with maximally dependent ones (all joiners
// sharing a deep suffix — the §3.3 conflict scenario). Dependent joins
// contend for the same entries, visible as extra JoinWaitMsg redirects.
func BenchmarkAblationDependence(b *testing.B) {
	p := id.Params{B: 16, D: 8}
	const nExisting, nJoin = 300, 32
	build := func(rng *rand.Rand, dependent bool, taken map[id.ID]bool) []table.Ref {
		joiners := make([]table.Ref, 0, nJoin)
		if dependent {
			// All joiners share a 3-digit suffix absent from V: one C-set
			// tree, maximal contention.
			base := id.Random(p, rng)
			for len(joiners) < nJoin {
				x := id.Random(p, rng)
				merged := x
				for i := 0; i < 3; i++ {
					merged = merged.WithDigit(i, base.Digit(i))
				}
				if taken[merged] {
					continue
				}
				taken[merged] = true
				joiners = append(joiners, table.Ref{ID: merged, Addr: "sim://" + merged.String()})
			}
			return joiners
		}
		// Independent: distinct rightmost digits, one joiner per digit
		// bucket (noti-sets V_j are pairwise disjoint... near enough for
		// b=16 and 32 joiners: two per bucket at most).
		return overlay.RandomRefs(p, nJoin, rng, taken)
	}
	for _, dep := range []bool{false, true} {
		dep := dep
		name := "independent"
		if dep {
			name = "dependent-same-suffix"
		}
		b.Run(name, func(b *testing.B) {
			var jw, jn float64
			for i := 0; i < b.N; i++ {
				rng := newRand(31)
				taken := make(map[id.ID]bool)
				net := overlay.New(overlay.Config{Params: p})
				existing := overlay.RandomRefs(p, nExisting, rng, taken)
				net.BuildDirect(existing, rng)
				joiners := build(rng, dep, taken)
				for _, j := range joiners {
					net.ScheduleJoin(j, existing[rng.Intn(len(existing))], 0)
				}
				net.Run()
				if v := net.CheckConsistency(); len(v) != 0 {
					b.Fatalf("inconsistent: %v", v[0])
				}
				totalWait, totalNoti := 0, 0
				for _, rec := range net.Joins() {
					totalWait += rec.JoinWaitSent
					totalNoti += rec.JoinNotiSent
				}
				jw = float64(totalWait) / float64(len(joiners))
				jn = float64(totalNoti) / float64(len(joiners))
			}
			b.ReportMetric(jw, "JoinWait/join")
			b.ReportMetric(jn, "JoinNoti/join")
		})
	}
}

// BenchmarkWorkload measures sustained churn throughput: a 30-operation
// random script over a 200-node network.
func BenchmarkWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runner, err := workload.NewRunner(id.Params{B: 16, D: 6}, 200, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		script := workload.RandomScript(newRand(int64(i)), 30, workload.DefaultMix())
		if _, err := runner.RunScript(script); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinWave pins the cost of concurrent join waves at two
// scales — the paper's 128/96 wave and a flash-crowd-sized wave of 256
// joiners into a 256-node network — reporting the mean JoinNotiMsg per
// join alongside runtime cost. The Makefile's bench-join target records
// the numbers into BENCH_join.json for regression comparison across PRs.
func BenchmarkJoinWave(b *testing.B) {
	scales := []struct {
		name string
		n, m int
	}{
		{"n128_m96", 128, 96},
		{"n256_m256", 256, 256},
	}
	for _, sc := range scales {
		b.Run(sc.name, func(b *testing.B) {
			var joinNoti float64
			for i := 0; i < b.N; i++ {
				res, err := overlay.RunWave(overlay.WaveConfig{
					Params: id.Params{B: 16, D: 4}, N: sc.n, M: sc.m, Seed: int64(i) + 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.AllSNodes || !res.Consistent() {
					b.Fatal("wave did not complete consistently")
				}
				joinNoti += res.MeanJoinNoti()
			}
			b.ReportMetric(joinNoti/float64(b.N), "joinnoti/join")
		})
	}
}

// BenchmarkJoinWaveTraced is the observability-overhead guardrail: the
// same 128-node/96-join wave with no sink (the nil fast path every
// emit site takes by default), with the explicit Nop sink (normalized
// to nil by SetSink), and with a real JSONL sink writing to io.Discard
// (full event construction + marshalling). The untraced and nop
// variants must stay within noise of each other; jsonl-discard bounds
// the worst-case cost of turning tracing on. The sampled variants add
// causal tracing on top of the JSONL sink: sampled-0 installs tracers
// whose head-sampling rejects every root (the sampling-off hot path —
// one threshold check per operation root, zero span allocation; must
// stay within noise of jsonl-discard), while sampled-1 traces every
// operation and bounds the full span-propagation + v2-trailer cost.
func BenchmarkJoinWaveTraced(b *testing.B) {
	run := func(b *testing.B, sink obs.Sink, sample float64) {
		for i := 0; i < b.N; i++ {
			res, err := overlay.RunWave(overlay.WaveConfig{
				Params: id.Params{B: 16, D: 4}, N: 128, M: 96, Seed: 11, Sink: sink,
				TraceSample: sample, TraceSeed: 11,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !res.AllSNodes {
				b.Fatal("wave did not complete")
			}
		}
	}
	b.Run("untraced", func(b *testing.B) { run(b, nil, 0) })
	b.Run("nop", func(b *testing.B) { run(b, obs.Nop, 0) })
	b.Run("jsonl-discard", func(b *testing.B) {
		run(b, obs.NewJSONL(io.Discard), 0)
	})
	// 1e-12*2^32 truncates to a zero sampling threshold: tracers exist
	// on every node but never sample, exercising the guardrail path.
	b.Run("sampled-0", func(b *testing.B) {
		run(b, obs.NewJSONL(io.Discard), 1e-12)
	})
	b.Run("sampled-1", func(b *testing.B) {
		run(b, obs.NewJSONL(io.Discard), 1)
	})
}
