// Package baseline implements a simplified multicast-based join in the
// style of Tapestry's protocol (Hildrum, Kubiatowicz, Rao & Zhao, SPAA
// 2002) — the related work Liu & Lam's §1 argues against. A joining
// node's existence is announced by a multicast through the neighbor
// forest of its notification set; every intermediate node keeps the
// joining node in a pending list until acknowledgments from all
// downstream nodes return.
//
// The package exists to reproduce the paper's qualitative comparison:
//
//   - the multicast join places join state and message load on *existing*
//     nodes, whereas Liu & Lam's protocol keeps the burden on joiners;
//   - under concurrent same-suffix joins the plain multicast approach can
//     lose updates (first-writer-wins entries with no wait/retry), which
//     is exactly the consistency problem the paper's protocol solves.
//
// The simplification is deliberate and conservative: this baseline gets
// the full multicast machinery (dedup, per-join pending state, acks) but
// not Tapestry's later hardening, so its message counts are if anything
// favorable to the baseline.
package baseline

import (
	"fmt"
	"math/rand"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/netcheck"
	"hypercube/internal/sim"
	"hypercube/internal/table"
)

// Config parameterizes a baseline join-wave experiment; it mirrors
// overlay.WaveConfig so results are comparable.
type Config struct {
	Params  id.Params
	N       int
	M       int
	Seed    int64
	Latency time.Duration // constant per-hop latency (default 10ms)
}

// Result captures the baseline's cost and consistency outcome.
type Result struct {
	// TotalMessages counts every protocol message (routing probes, table
	// copies, announcements, acks).
	TotalMessages int
	// AnnounceMessages counts multicast announcements plus acks only.
	AnnounceMessages int
	// PeakPendingState is the maximum, over time, of the total number of
	// pending join records held by established nodes — the state burden
	// the paper criticizes (always ~0 in Liu & Lam's protocol).
	PeakPendingState int
	// PeakPendingPerNode is the maximum pending records on any single node.
	PeakPendingPerNode int
	// Violations counts Definition 3.8 violations at quiescence;
	// sequential waves yield 0, concurrent same-suffix waves generally
	// do not.
	Violations int
	// LostJoiners counts joining nodes that ended up unreachable from
	// some established node (false negatives caused by lost updates).
	LostJoiners int
}

type node struct {
	ref table.Ref
	tbl *table.Table
	// pending holds one record per in-flight join announcement this node
	// is relaying: the join-state-on-existing-nodes the paper criticizes.
	pending map[id.ID]*pendingRec
}

type pendingRec struct {
	parent    table.Ref // who to ack when the subtree completes
	awaiting  int
	hasParent bool
}

// network is the baseline simulator state.
type network struct {
	cfg     Config
	engine  *sim.Engine
	nodes   map[id.ID]*node
	rng     *rand.Rand
	result  Result
	pending int // live total pending records
}

// RunWave executes a baseline join wave: N established nodes built with
// global knowledge, M joiners announced concurrently at t=0.
func RunWave(cfg Config) (*Result, error) {
	if cfg.N < 1 || cfg.M < 0 {
		return nil, fmt.Errorf("baseline: invalid wave n=%d m=%d", cfg.N, cfg.M)
	}
	if float64(cfg.N+cfg.M) > 0.9*cfg.Params.Size() {
		return nil, fmt.Errorf("baseline: n+m=%d nodes exceed 90%% of the %g-ID space",
			cfg.N+cfg.M, cfg.Params.Size())
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 10 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := &network{
		cfg:    cfg,
		engine: sim.NewEngine(),
		nodes:  make(map[id.ID]*node, cfg.N+cfg.M),
		rng:    rng,
	}

	taken := make(map[id.ID]bool)
	existing := drawRefs(cfg.Params, cfg.N, rng, taken)
	joiners := drawRefs(cfg.Params, cfg.M, rng, taken)
	net.buildConsistent(existing)

	for _, j := range joiners {
		j := j
		g0 := existing[rng.Intn(len(existing))]
		net.engine.Schedule(0, func() { net.startJoin(j, g0) })
	}
	net.engine.Run(100_000_000)

	// Evaluate consistency and reachability of the final tables.
	tables := make(map[id.ID]*table.Table, len(net.nodes))
	for x, nd := range net.nodes {
		tables[x] = nd.tbl
	}
	net.result.Violations = len(netcheck.CheckConsistency(cfg.Params, tables))
	for _, j := range joiners {
		lost := false
		for _, e := range existing {
			if _, ok := netcheck.Reachable(cfg.Params, tables, e.ID, j.ID); !ok {
				lost = true
				break
			}
		}
		if lost {
			net.result.LostJoiners++
		}
	}
	return &net.result, nil
}

func drawRefs(p id.Params, count int, rng *rand.Rand, taken map[id.ID]bool) []table.Ref {
	out := make([]table.Ref, 0, count)
	for len(out) < count {
		x := id.Random(p, rng)
		if taken[x] {
			continue
		}
		taken[x] = true
		out = append(out, table.Ref{ID: x, Addr: "sim://" + x.String()})
	}
	return out
}

// buildConsistent installs a globally consistent initial network.
func (net *network) buildConsistent(members []table.Ref) {
	bySuffix := make(map[id.Suffix][]table.Ref)
	for _, ref := range members {
		for k := 1; k <= net.cfg.Params.D; k++ {
			bySuffix[ref.ID.Suffix(k)] = append(bySuffix[ref.ID.Suffix(k)], ref)
		}
	}
	for _, ref := range members {
		tbl := table.New(net.cfg.Params, ref.ID)
		for i := 0; i < net.cfg.Params.D; i++ {
			for j := 0; j < net.cfg.Params.B; j++ {
				want := tbl.DesiredSuffix(i, j)
				if ref.ID.HasSuffix(want) {
					tbl.Set(i, j, table.Neighbor{ID: ref.ID, Addr: ref.Addr, State: table.StateS})
					continue
				}
				if cands := bySuffix[want]; len(cands) > 0 {
					pick := cands[net.rng.Intn(len(cands))]
					tbl.Set(i, j, table.Neighbor{ID: pick.ID, Addr: pick.Addr, State: table.StateS})
				}
			}
		}
		net.nodes[ref.ID] = &node{ref: ref, tbl: tbl, pending: make(map[id.ID]*pendingRec)}
	}
}

func (net *network) countMsg() {
	net.result.TotalMessages++
}

func (net *network) countAnnounce() {
	net.result.TotalMessages++
	net.result.AnnounceMessages++
}

// startJoin performs the joiner-side work synchronously in simulated
// steps: route to the surrogate (counting hops), copy tables level by
// level to build the joiner's table, then trigger the surrogate's
// multicast.
func (net *network) startJoin(x, g0 table.Ref) {
	p := net.cfg.Params
	// Phase 1: route from g0 toward x to find the surrogate, counting one
	// message per hop.
	cur := net.nodes[g0.ID]
	for hops := 0; hops <= p.D; hops++ {
		k := cur.ref.ID.CommonSuffixLen(x.ID)
		next := cur.tbl.Get(k, x.ID.Digit(k))
		if next.IsZero() || next.ID == x.ID {
			break
		}
		net.countMsg()
		cur = net.nodes[next.ID]
	}
	surrogate := cur

	// Phase 2: the joiner builds its table by copying from nodes along
	// the suffix chain (PRR-style, as in the paper's copying phase).
	tbl := table.New(p, x.ID)
	guide := net.nodes[g0.ID]
	for level := 0; level < p.D; level++ {
		net.countMsg() // one copy request/response pair counted once
		net.countMsg()
		for j := 0; j < p.B; j++ {
			if n := guide.tbl.Get(level, j); !n.IsZero() && tbl.Get(level, j).IsZero() {
				tbl.Set(level, j, n)
			}
		}
		next := guide.tbl.Get(level, x.ID.Digit(level))
		if next.IsZero() || next.ID == x.ID {
			break
		}
		guide = net.nodes[next.ID]
	}
	for i := 0; i < p.D; i++ {
		tbl.Set(i, x.ID.Digit(i), table.Neighbor{ID: x.ID, Addr: x.Addr, State: table.StateS})
	}
	net.nodes[x.ID] = &node{ref: x, tbl: tbl, pending: make(map[id.ID]*pendingRec)}

	// Phase 3: multicast announce through the notification set, rooted at
	// the surrogate.
	omega := x.ID.Suffix(surrogate.ref.ID.CommonSuffixLen(x.ID))
	net.deliverAnnounce(surrogate.ref, x, omega, table.Ref{}, false)
}

// deliverAnnounce processes an announcement of joiner x at node u.
func (net *network) deliverAnnounce(uRef table.Ref, x table.Ref, omega id.Suffix, parent table.Ref, hasParent bool) {
	u := net.nodes[uRef.ID]
	k := u.ref.ID.CommonSuffixLen(x.ID)

	// Dedup: already relaying or already stored -> ack immediately.
	if _, busy := u.pending[x.ID]; busy || u.tbl.Get(k, x.ID.Digit(k)).ID == x.ID {
		if hasParent {
			net.sendAck(parent, x)
		}
		return
	}

	// First-writer-wins table update: if the slot is taken by another
	// node, the update is silently lost — the contention Liu & Lam's
	// JoinWait/negative-reply chain exists to prevent.
	if u.tbl.Get(k, x.ID.Digit(k)).IsZero() {
		u.tbl.Set(k, x.ID.Digit(k), table.Neighbor{ID: x.ID, Addr: x.Addr, State: table.StateS})
	}

	// Forward to every distinct table neighbor inside the notification
	// set (suffix omega), excluding x, self, and the announcing parent.
	targets := make(map[id.ID]table.Ref)
	u.tbl.ForEach(func(_, _ int, n table.Neighbor) {
		if n.ID == u.ref.ID || n.ID == x.ID || (hasParent && n.ID == parent.ID) {
			return
		}
		if n.ID.HasSuffix(omega) {
			targets[n.ID] = n.Ref()
		}
	})
	if len(targets) == 0 {
		if hasParent {
			net.sendAck(parent, x)
		}
		return
	}

	rec := &pendingRec{parent: parent, hasParent: hasParent, awaiting: len(targets)}
	u.pending[x.ID] = rec
	net.pending++
	if net.pending > net.result.PeakPendingState {
		net.result.PeakPendingState = net.pending
	}
	if len(u.pending) > net.result.PeakPendingPerNode {
		net.result.PeakPendingPerNode = len(u.pending)
	}
	for _, tgt := range targets {
		tgt := tgt
		net.countAnnounce()
		net.engine.Schedule(net.cfg.Latency, func() {
			net.deliverAnnounce(tgt, x, omega, u.ref, true)
		})
	}
}

// sendAck schedules an acknowledgment for joiner x back to node to.
func (net *network) sendAck(to table.Ref, x table.Ref) {
	net.countAnnounce()
	net.engine.Schedule(net.cfg.Latency, func() {
		u := net.nodes[to.ID]
		rec, ok := u.pending[x.ID]
		if !ok {
			return
		}
		rec.awaiting--
		if rec.awaiting > 0 {
			return
		}
		delete(u.pending, x.ID)
		net.pending--
		if rec.hasParent {
			net.sendAck(rec.parent, x)
		}
	})
}
