package overlay

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/table"
)

// ScheduleLeave schedules node x's graceful departure (the §7 leave
// extension) at virtual time at. After Run, call FinalizeLeaves to
// unregister nodes that completed their departure.
func (n *Network) ScheduleLeave(x id.ID, at time.Duration) error {
	m, ok := n.machines[x]
	if !ok {
		return fmt.Errorf("overlay: leave of unknown node %v", x)
	}
	n.engine.ScheduleAt(at, func() {
		n.transmit(m.StartLeave())
	})
	return nil
}

// FinalizeLeaves unregisters every machine that reached StatusLeft and
// returns their IDs. Late in-flight messages to them are dropped.
func (n *Network) FinalizeLeaves() []id.ID {
	var gone []id.ID
	for x, m := range n.machines {
		if m.Status() == core.StatusLeft {
			gone = append(gone, x)
		}
	}
	for _, x := range gone {
		delete(n.machines, x)
		n.removed[x] = true
	}
	return gone
}

// InjectFailure removes node x abruptly: no goodbye, its in-flight and
// future messages are dropped. Use RecoverFailure afterwards to repair
// the survivors' tables.
func (n *Network) InjectFailure(x id.ID) error {
	if _, ok := n.machines[x]; !ok {
		return fmt.Errorf("overlay: failure of unknown node %v", x)
	}
	delete(n.machines, x)
	n.removed[x] = true
	return nil
}

// RecoveryStats summarizes a RecoverFailure run.
type RecoveryStats struct {
	// Holders is the number of surviving nodes that stored the dead node.
	Holders int
	// LocalRepairs counts entries refilled from the holder's own table.
	LocalRepairs int
	// RoutedRepairs counts entries refilled through Find queries.
	RoutedRepairs int
	// Rejoined counts orphaned holders that re-ran the join protocol.
	Rejoined int
	// Emptied counts entries whose suffix provably died with the node.
	Emptied int
	// Rounds is the number of query rounds run.
	Rounds int
	// Unrepaired counts entries still broken at the end (0 on success).
	Unrepaired int
}

// RecoverFailure repairs all surviving tables after the crash of dead:
// every holder first repairs locally (DropFailed), then unresolved
// entries are refilled through routed Find queries, retried over rounds
// because early queries may route through the dead node's stale entries
// elsewhere. Runs the network to quiescence each round.
func (n *Network) RecoverFailure(dead id.ID, rng *rand.Rand, maxRounds int) RecoveryStats {
	if maxRounds <= 0 {
		maxRounds = 2*n.cfg.Params.D + 6
	}
	var st RecoveryStats

	// Round 0: local repair everywhere; remember which holders lost their
	// deepest-known neighbor.
	pending := make(map[id.ID][][2]int)
	var orphans []*core.Machine
	// Deterministic iteration: simulation runs must replay identically.
	ids := make([]id.ID, 0, len(n.machines))
	for x := range n.machines {
		ids = append(ids, x)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	for _, x := range ids {
		m := n.machines[x]
		before := countEntriesOf(m, dead)
		if before > 0 {
			st.Holders++
			if m.DeepestNeighborIs(dead) {
				orphans = append(orphans, m)
			}
		}
		// DropFailed runs on every machine, holder or not: non-holders may
		// still reference the dead node in their reverse-neighbor sets, and
		// a stale reverse entry would make a later graceful leave wait
		// forever for an acknowledgment that can never come.
		unrepaired := m.DropFailed(dead)
		st.LocalRepairs += before - len(unrepaired)
		if len(unrepaired) > 0 {
			pending[x] = unrepaired
		}
	}

	// Orphan re-join: a node whose deepest neighbor crashed may have been
	// stored nowhere else (its join notified only nodes sharing its
	// deepest suffix, possibly just the dead node), making it unfindable
	// by search. It re-announces itself by re-running the join protocol;
	// Theorem 1 then refills every entry its notification set lost.
	//
	// Re-joins run one at a time: Theorem 2's termination argument for
	// concurrent joins relies on a joining node not yet being stored
	// anywhere (so JoinWait dependencies are acyclic), but re-joining
	// nodes already appear in each other's tables and could park each
	// other in Qj forever.
	for _, m := range orphans {
		helper := pickHelper(m, dead, rng)
		if helper.IsZero() {
			continue
		}
		st.Rejoined++
		n.transmit(m.StartRejoin(helper))
		n.Run()
	}
	n.Run()

	// Convergence rule: when the dead node was the sole carrier of a
	// suffix, every node that could certify the suffix's status is itself
	// waiting for a repair, and all queries block on each other. A live
	// carrier, in contrast, answers any query that reaches it, so rounds
	// with fresh random helpers make progress with high probability while
	// any live carrier exists. After zeroProgressLimit consecutive rounds
	// without a single resolution, the remaining suffixes are concluded
	// dead and their entries stay (correctly) empty.
	const zeroProgressLimit = 3
	zeroProgress := 0
	for round := 0; len(pending) > 0 && round < maxRounds; round++ {
		st.Rounds++
		for _, x := range sortedKeys(pending) {
			entries := pending[x]
			m := n.machines[x]
			for _, e := range entries {
				if !m.Table().Get(e[0], e[1]).IsZero() {
					continue // already refilled (e.g. by a rejoin notification)
				}
				helper := pickHelper(m, dead, rng)
				if helper.IsZero() {
					continue // isolated; retry next round after others repair
				}
				n.transmit(m.RepairEntry(e[0], e[1], helper, dead))
			}
		}
		n.Run()
		next := make(map[id.ID][][2]int)
		progress := 0
		for _, x := range sortedKeys(pending) {
			entries := pending[x]
			m := n.machines[x]
			var still [][2]int
			for _, e := range entries {
				if !m.Table().Get(e[0], e[1]).IsZero() {
					m.AbandonRepair(e[0], e[1]) // clear bookkeeping; entry is filled
					st.RoutedRepairs++
					progress++
					continue
				}
				switch m.ResolveRepair(e[0], e[1]) {
				case core.RepairFilled:
					st.RoutedRepairs++
					progress++
				case core.RepairEmpty:
					st.Emptied++
					progress++
				default: // blocked or pending: try again
					still = append(still, e)
				}
			}
			if len(still) > 0 {
				next[x] = still
			}
		}
		pending = next
		if progress > 0 {
			zeroProgress = 0
			continue
		}
		zeroProgress++
		if zeroProgress >= zeroProgressLimit {
			for _, x := range sortedKeys(pending) {
				entries := pending[x]
				m := n.machines[x]
				for _, e := range entries {
					m.AbandonRepair(e[0], e[1])
					st.Emptied++
				}
			}
			pending = nil
		}
	}
	for _, entries := range pending {
		st.Unrepaired += len(entries)
	}
	return st
}

func sortedKeys(m map[id.ID][][2]int) []id.ID {
	out := make([]id.ID, 0, len(m))
	for x := range m {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func countEntriesOf(m *core.Machine, who id.ID) int {
	c := 0
	m.Table().ForEach(func(_, _ int, nb table.Neighbor) {
		if nb.ID == who {
			c++
		}
	})
	return c
}

// pickHelper chooses a random live neighbor to start a Find query from.
func pickHelper(m *core.Machine, dead id.ID, rng *rand.Rand) table.Ref {
	var candidates []table.Ref
	seen := make(map[id.ID]bool)
	m.Table().ForEach(func(_, _ int, nb table.Neighbor) {
		if nb.ID == dead || nb.ID == m.Self().ID || seen[nb.ID] {
			return
		}
		seen[nb.ID] = true
		candidates = append(candidates, nb.Ref())
	})
	if len(candidates) == 0 {
		return table.Ref{}
	}
	return candidates[rng.Intn(len(candidates))]
}
