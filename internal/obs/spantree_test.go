package obs

import (
	"testing"
	"time"
)

// ev builds a traced event with millisecond timestamps.
func ev(tMs int, node string, kind Kind, trace, span, parent string) Event {
	return Event{
		T: time.Duration(tMs) * time.Millisecond, Node: node, Kind: kind,
		Trace: trace, Span: span, Parent: parent,
	}
}

func TestBuildTreesJoin(t *testing.T) {
	const tr = "0102030405060708090a0b0c0d0e0f10"
	joinStart := ev(0, "n1", KindJoinStart, tr, "aaaaaaaaaaaaaaaa", "")
	events := []Event{
		joinStart,
		func() Event {
			e := ev(0, "n1", KindStatus, tr, "aaaaaaaaaaaaaaaa", "")
			e.Detail = "copying"
			return e
		}(),
		// Hop 1: n1 -> n2 (CpMsg), 3ms on the wire.
		func() Event {
			e := ev(1, "n1", KindSend, tr, "bbbbbbbbbbbbbbbb", "aaaaaaaaaaaaaaaa")
			e.Msg = "CpMsg"
			return e
		}(),
		func() Event {
			e := ev(4, "n2", KindRecv, tr, "bbbbbbbbbbbbbbbb", "")
			e.Msg = "CpMsg"
			return e
		}(),
		// Hop 2: n2 -> n1 (CpRlyMsg), caused by hop 1's span.
		func() Event {
			e := ev(5, "n2", KindSend, tr, "cccccccccccccccc", "bbbbbbbbbbbbbbbb")
			e.Msg = "CpRlyMsg"
			return e
		}(),
		func() Event {
			e := ev(9, "n1", KindRecv, tr, "cccccccccccccccc", "")
			e.Msg = "CpRlyMsg"
			return e
		}(),
		func() Event {
			e := ev(9, "n1", KindStatus, tr, "cccccccccccccccc", "")
			e.Detail = "in_system"
			return e
		}(),
	}
	trees := BuildTrees(events)
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
	tree := trees[0]
	if !tree.Complete() {
		t.Fatalf("tree incomplete: root=%v orphans=%d", tree.Root, len(tree.Orphans))
	}
	if got := tree.RootKind(); got != KindJoinStart {
		t.Fatalf("RootKind = %q, want join_start", got)
	}
	if got := tree.RootNode(); got != "n1" {
		t.Fatalf("RootNode = %q, want n1", got)
	}
	if !tree.JoinComplete() {
		t.Fatal("JoinComplete = false, want true")
	}
	if got := tree.Depth(); got != 3 {
		t.Fatalf("Depth = %d, want 3 (root -> hop1 -> hop2)", got)
	}
	hops := tree.Hops()
	if len(hops) != 2 {
		t.Fatalf("got %d hops, want 2", len(hops))
	}
	if hops[0].Msg != "CpMsg" || hops[0].From != "n1" || hops[0].To != "n2" {
		t.Fatalf("hop 0 = %+v", hops[0])
	}
	if got := hops[0].Latency(); got != 3*time.Millisecond {
		t.Fatalf("hop 0 latency = %v, want 3ms", got)
	}
	if got := hops[1].Latency(); got != 4*time.Millisecond {
		t.Fatalf("hop 1 latency = %v, want 4ms", got)
	}
}

func TestBuildTreesOrphan(t *testing.T) {
	const tr = "000102030405060708090a0b0c0d0e0f"
	events := []Event{
		ev(0, "n1", KindJoinStart, tr, "aaaaaaaaaaaaaaaa", ""),
		// This hop's parent span never appears in the stream.
		func() Event {
			e := ev(2, "n3", KindSend, tr, "dddddddddddddddd", "eeeeeeeeeeeeeeee")
			e.Msg = "JoinNotiMsg"
			return e
		}(),
	}
	trees := BuildTrees(events)
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
	tree := trees[0]
	if tree.Complete() {
		t.Fatal("tree with unresolved parent reported complete")
	}
	if len(tree.Orphans) != 1 {
		t.Fatalf("got %d orphans, want 1", len(tree.Orphans))
	}
	if tree.JoinComplete() {
		t.Fatal("JoinComplete = true for a broken tree")
	}
}

func TestBuildTreesMissingRoot(t *testing.T) {
	const tr = "ffffffffffffffffffffffffffffffff"
	// Only a recv side survived (e.g. the sender's ring rotated): the
	// span is parentless but contains no root-kind event.
	e := ev(1, "n2", KindRecv, tr, "bbbbbbbbbbbbbbbb", "")
	e.Msg = "CpMsg"
	trees := BuildTrees([]Event{e})
	if trees[0].Root != nil {
		t.Fatal("recv-only span promoted to root")
	}
	if trees[0].Complete() {
		t.Fatal("rootless tree reported complete")
	}
	if got := trees[0].Depth(); got != 0 {
		t.Fatalf("Depth = %d, want 0", got)
	}
}

func TestProbeSample(t *testing.T) {
	const tr = "0f0e0d0c0b0a09080706050403020100"
	const span = "1212121212121212"
	// Prober n1 at t1=0/t4=10; target n2's clock runs 100ms ahead:
	// true one-way 4ms each direction, 2ms processing.
	// t2 = 4+100 = 104, t3 = 6+100 = 106.
	probe := ev(0, "n1", KindProbe, tr, span, "")
	recv := func() Event {
		e := ev(104, "n2", KindRecv, tr, span, "")
		e.Msg = "PingMsg"
		return e
	}()
	send := func() Event {
		e := ev(106, "n2", KindSend, tr, span, "")
		e.Msg = "PongMsg"
		return e
	}()
	ack := ev(10, "n1", KindProbeAck, tr, span, "")
	trees := BuildTrees([]Event{probe, recv, send, ack})
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
	s, ok := trees[0].ProbeSample()
	if !ok {
		t.Fatal("ProbeSample not extracted")
	}
	if s.Prober != "n1" || s.Target != "n2" {
		t.Fatalf("sample endpoints = %q -> %q", s.Prober, s.Target)
	}
	if want := 8 * time.Millisecond; s.RTT != want {
		t.Fatalf("RTT = %v, want %v", s.RTT, want)
	}
	if want := 100 * time.Millisecond; s.Skew != want {
		t.Fatalf("Skew = %v, want %v", s.Skew, want)
	}

	// Indirect probes are not a two-clock round trip.
	probe.Detail = "indirect"
	trees = BuildTrees([]Event{probe, recv, send, ack})
	if _, ok := trees[0].ProbeSample(); ok {
		t.Fatal("indirect probe yielded a skew sample")
	}
}

func TestBuildTreesIgnoresUntraced(t *testing.T) {
	events := []Event{
		{Node: "n1", Kind: KindSend, Msg: "CpMsg"},
		{Node: "n1", Kind: KindStatus, Detail: "in_system"},
	}
	if got := BuildTrees(events); len(got) != 0 {
		t.Fatalf("untraced events produced %d trees", len(got))
	}
}
