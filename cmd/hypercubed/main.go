// Command hypercubed runs a single protocol node over real TCP: the
// deployable face of the library. A first node seeds a network; further
// nodes join through any member. Each daemon exposes an HTTP admin
// endpoint (status, table, metrics, trace, join, leave, pprof) and
// departs gracefully on SIGINT/SIGTERM, repairing its holders' tables
// on the way out.
//
// Start a seed, then join two more nodes:
//
//	hypercubed -listen 127.0.0.1:7001 -admin 127.0.0.1:8001 -name alpha
//	hypercubed -listen 127.0.0.1:7002 -admin 127.0.0.1:8002 -name beta \
//	    -join <seedID>@127.0.0.1:7001
//	curl -s 127.0.0.1:8002/status
//	curl -s 127.0.0.1:8002/metrics
//
// Observability: -trace writes every protocol event as JSONL (analyze
// with tracestat), -trace-ring keeps the newest N events in memory
// behind GET /trace, -trace-sample enables causal tracing (crypto/rand
// span IDs, wire-v2 trace trailers; merge per-node traces or scrape a
// fleet's /trace endpoints with fleettrace), -log-level=debug mirrors
// events into the log stream, and the admin server serves
// net/http/pprof under /debug/pprof/.
//
// Hostile-input hardening is on by default: inbound frames are bounded
// (-max-frame), malformed frames are budgeted per connection
// (-decode-budget), inbound envelopes are rate-limited (-inbound-rate,
// -inbound-burst), and a per-peer misbehavior scorer quarantines repeat
// offenders (-guard-threshold, -guard-decay, -guard-cooldown; disable
// scoring with -no-guard). Guard counters appear on /status and
// /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hypercube/internal/antientropy"
	"hypercube/internal/core"
	"hypercube/internal/guard"
	"hypercube/internal/id"
	"hypercube/internal/liveness"
	"hypercube/internal/obs"
	"hypercube/internal/persist"
	"hypercube/internal/rtt"
	"hypercube/internal/sampling"
	"hypercube/internal/table"
	"hypercube/internal/transport/tcptransport"
)

func main() {
	if err := run(); err != nil {
		slog.Error("hypercubed failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen  = flag.String("listen", "127.0.0.1:0", "protocol listen address")
		admin   = flag.String("admin", "", "HTTP admin listen address (empty = disabled)")
		name    = flag.String("name", "", "node name, hashed into the ID space (default: the listen address)")
		idStr   = flag.String("id", "", "explicit node ID (overrides -name)")
		b       = flag.Int("b", 16, "digit base")
		d       = flag.Int("d", 8, "digits per ID")
		join    = flag.String("join", "", "bootstrap as id@host:port; empty starts a new network (seed)")
		dump    = flag.String("dump", "", "write the neighbor table to this file on exit")
		timeout = flag.Duration("timeout", time.Minute, "join/leave completion timeout")

		// Observability knobs.
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error (debug mirrors protocol events)")
		tracePath   = flag.String("trace", "", "write protocol events as JSONL to this file")
		traceRing   = flag.Int("trace-ring", 0, "keep the newest N events in memory behind GET /trace (0 = off)")
		traceSample = flag.Float64("trace-sample", 0, "causal-trace head-sampling rate in [0,1]; sampled operations carry trace context on the wire (reconstruct fleet-wide with fleettrace; 0 = off, node stays a v1 opaque hop)")

		// Reliable-delivery knobs (0 keeps the transport default).
		attempts = flag.Int("max-attempts", 0, "delivery attempts per message before dead-lettering")
		backoff  = flag.Duration("backoff", 0, "base retry backoff (doubles per retry)")
		maxBack  = flag.Duration("max-backoff", 0, "retry backoff cap")
		queue    = flag.Int("queue-limit", 0, "per-peer outbound queue bound")

		// Hostile-input hardening knobs (0 keeps the transport default).
		codecName  = flag.String("codec", "binary", "outbound frame codec: binary or gob (inbound auto-detects; gob is a one-release fallback)")
		flushDelay = flag.Duration("flush-delay", 0, "how long a peer's writer lingers to coalesce envelopes into one frame (0 = flush immediately)")

		maxFrame     = flag.Int("max-frame", 0, "largest accepted inbound wire frame in bytes")
		decodeBudget = flag.Int("decode-budget", 0, "malformed frames tolerated per connection before disconnect")
		inRate       = flag.Float64("inbound-rate", 0, "per-connection inbound envelopes per second")
		inBurst      = flag.Int("inbound-burst", 0, "token-bucket depth for -inbound-rate")
		readIdle     = flag.Duration("read-idle-timeout", 0, "idle inbound connection deadline")
		writeTimeout = flag.Duration("write-timeout", 0, "outbound frame write deadline")

		// Misbehavior-scorer knobs (0 keeps the guard default).
		noGuard       = flag.Bool("no-guard", false, "disable the per-peer misbehavior scorer (validation stays on)")
		guardScore    = flag.Float64("guard-threshold", 0, "misbehavior score that quarantines a peer")
		guardDecay    = flag.Duration("guard-decay", 0, "time for one unit of misbehavior score to drain")
		guardCooldown = flag.Duration("guard-cooldown", 0, "how long a quarantined peer's traffic is dropped")

		// Failure-detection knobs (0 keeps the liveness default).
		noLive       = flag.Bool("no-liveness", false, "disable failure detection and self-healing")
		probeEvery   = flag.Duration("probe-interval", 0, "gap between routine liveness probes")
		probeTimeout = flag.Duration("probe-timeout", 0, "unanswered-probe deadline")
		suspectAfter = flag.Int("suspect-after", 0, "consecutive misses before a peer is suspected")
		indirect     = flag.Int("indirect-probes", 0, "relayed probes per confirmation round")
		retryAfter   = flag.Duration("retry-after", 2*time.Second, "join-protocol request timeout (0 disables)")

		// Adaptive-timeout knobs (gray-failure tolerance).
		adaptive = flag.Bool("adaptive-timeouts", false, "derive per-peer probe deadlines and retransmission timers from a live RTT estimator instead of the fixed -probe-timeout / -retry-after; flags persistently slow peers degraded")
		minRTO   = flag.Duration("min-rto", 0, "adaptive retransmission-timeout floor (0 keeps the estimator default)")
		maxRTO   = flag.Duration("max-rto", 0, "adaptive retransmission-timeout ceiling (0 keeps the estimator default)")

		// Anti-entropy knobs (0 keeps the antientropy default).
		noSync    = flag.Bool("no-sync", false, "disable anti-entropy table audit and repair")
		syncEvery = flag.Duration("sync-interval", 0, "gap between anti-entropy rounds")

		// Peer-sampling knobs (0 keeps the sampling default).
		noSample    = flag.Bool("no-sampling", false, "disable the gossip peer-sampling layer")
		sampleEvery = flag.Duration("sample-interval", 0, "gap between peer-sampling rounds")
		viewSize    = flag.Int("view-size", 0, "peer-sampling view bound")
		sampleSeed  = flag.Int64("sample-seed", 0, "peer-sampling determinism seed (mixed with the node ID)")
	)
	flag.Parse()
	p := id.Params{B: *b, D: *d}
	if err := p.Validate(); err != nil {
		return err
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	nodeID, err := resolveID(p, *idStr, *name, *listen)
	if err != nil {
		return err
	}
	log = log.With("node", nodeID.String())
	slog.SetDefault(log)

	// Sink: JSONL trace file and/or debug-level log mirror of every event.
	var sinks []obs.Sink
	var traceFile *obs.JSONL
	if *tracePath != "" {
		traceFile, err = obs.NewJSONLFile(*tracePath)
		if err != nil {
			return err
		}
		defer func() {
			if err := traceFile.Close(); err != nil {
				log.Error("trace file", "err", err)
			} else {
				log.Info("trace written", "path", *tracePath, "events", traceFile.Emitted())
			}
		}()
		sinks = append(sinks, traceFile)
	}
	if level <= slog.LevelDebug {
		sinks = append(sinks, obs.NewSlogSink(log))
	}

	var codec tcptransport.Codec
	switch *codecName {
	case "binary":
		codec = tcptransport.CodecBinary
	case "gob":
		codec = tcptransport.CodecGob
	default:
		return fmt.Errorf("-codec: unknown codec %q (want binary or gob)", *codecName)
	}

	options := []tcptransport.Option{tcptransport.WithConfig(tcptransport.Config{
		Codec:             codec,
		FlushDelay:        *flushDelay,
		MaxAttempts:       *attempts,
		BaseBackoff:       *backoff,
		MaxBackoff:        *maxBack,
		QueueLimit:        *queue,
		MaxFrameBytes:     *maxFrame,
		DecodeErrorBudget: *decodeBudget,
		InboundRate:       *inRate,
		InboundBurst:      *inBurst,
		ReadIdleTimeout:   *readIdle,
		WriteTimeout:      *writeTimeout,
		Sink:              obs.Tee(sinks...),
		TraceRing:         *traceRing,
		TraceSample:       *traceSample,
	})}
	opts := core.Options{}
	if !*noGuard {
		opts.Guard = &guard.Policy{
			Threshold: *guardScore,
			Decay:     *guardDecay,
			Cooldown:  *guardCooldown,
		}
	}
	if !*noLive {
		options = append(options, tcptransport.WithLiveness(liveness.Config{
			ProbeInterval:  *probeEvery,
			ProbeTimeout:   *probeTimeout,
			SuspectAfter:   *suspectAfter,
			IndirectProbes: *indirect,
		}))
		opts.Timeouts = core.Timeouts{RetryAfter: *retryAfter}
	}
	if *adaptive {
		options = append(options, tcptransport.WithRTT(rtt.Config{
			MinRTO: *minRTO,
			MaxRTO: *maxRTO,
		}))
	}
	if !*noSync {
		options = append(options, tcptransport.WithAntiEntropy(antientropy.Config{
			Interval: *syncEvery,
		}))
	}
	if !*noSample {
		options = append(options, tcptransport.WithSampling(sampling.Config{
			ViewSize: *viewSize,
			Interval: *sampleEvery,
			Seed:     *sampleSeed,
		}))
	}
	var node *tcptransport.Node
	if *join == "" {
		node, err = tcptransport.StartSeed(p, opts, nodeID, *listen, options...)
	} else {
		node, err = tcptransport.StartJoiner(p, opts, nodeID, *listen, options...)
	}
	if err != nil {
		return err
	}
	defer node.Close()
	log.Info("node listening", "addr", node.Ref().Addr)

	if *admin != "" {
		mux := http.NewServeMux()
		mux.Handle("/", node.AdminHandler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Addr: *admin, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("admin server", "err", err)
			}
		}()
		defer srv.Close()
		log.Info("admin endpoint up", "url", "http://"+*admin,
			"paths", "/status /table /metrics /trace /join /leave /debug/pprof/")
	}

	if *join != "" {
		boot, err := parseBootstrap(p, *join)
		if err != nil {
			return err
		}
		node.SeedSamplingPeers(boot)
		if err := node.Join(boot); err != nil {
			return err
		}
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		err = node.AwaitStatus(ctx, core.StatusInSystem)
		cancel()
		if err != nil {
			return err
		}
		log.Info("joined the network", "bootstrap", boot.ID.String(),
			"tableEntries", node.Snapshot().FilledCount())
	}

	// Wait for shutdown, then leave gracefully so holders can repair.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Info("shutting down: announcing departure")
	if node.Status() == core.StatusInSystem {
		if err := node.Leave(); err != nil {
			log.Error("leave", "err", err)
		} else {
			ctx, cancel := context.WithTimeout(context.Background(), *timeout)
			if err := node.AwaitStatus(ctx, core.StatusLeft); err != nil {
				log.Error("departure not acknowledged", "err", err)
			} else {
				log.Info("departure acknowledged by all holders")
			}
			cancel()
		}
	}
	if *dump != "" {
		// Persist the sampler's long-term sample alongside the table: on
		// restart it is the rejoin bootstrap of last resort when every
		// table neighbor has moved on.
		if err := persist.SaveFileState(*dump, node.Snapshot(), node.SampledPeers(32)); err != nil {
			return err
		}
		log.Info("table written", "path", *dump)
	}
	return nil
}

func resolveID(p id.Params, idStr, name, listen string) (id.ID, error) {
	if idStr != "" {
		return id.Parse(p, idStr)
	}
	if name == "" {
		name = listen
	}
	return id.FromName(p, name), nil
}

func parseBootstrap(p id.Params, s string) (table.Ref, error) {
	at := strings.IndexByte(s, '@')
	if at <= 0 || at == len(s)-1 {
		return table.Ref{}, fmt.Errorf("-join must be id@host:port, got %q", s)
	}
	bootID, err := id.Parse(p, s[:at])
	if err != nil {
		return table.Ref{}, fmt.Errorf("-join id: %w", err)
	}
	return table.Ref{ID: bootID, Addr: s[at+1:]}, nil
}
