package id

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

var p45 = Params{B: 4, D: 5} // the paper's Figure 1 space
var p85 = Params{B: 8, D: 5} // the paper's Figure 2 space
var p168 = Params{B: 16, D: 8}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"hex8", Params{16, 8}, false},
		{"hex40", Params{16, 40}, false},
		{"binary", Params{2, 1}, false},
		{"base36", Params{36, 4}, false},
		{"baseTooSmall", Params{1, 4}, true},
		{"baseTooLarge", Params{37, 4}, true},
		{"zeroDigits", Params{16, 0}, true},
		{"negativeDigits", Params{16, -3}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestParamsSize(t *testing.T) {
	tests := []struct {
		p    Params
		want float64
	}{
		{Params{2, 3}, 8},
		{Params{4, 5}, 1024},
		{Params{16, 8}, 4294967296},
	}
	for _, tt := range tests {
		if got := tt.p.Size(); got != tt.want {
			t.Errorf("Size(%+v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	tests := []struct {
		p Params
		s string
	}{
		{p45, "21233"},
		{p45, "00000"},
		{p45, "33333"},
		{p85, "10261"},
		{p85, "47051"},
		{p168, "0123abcd"},
		{Params{36, 3}, "zz9"},
	}
	for _, tt := range tests {
		x, err := Parse(tt.p, tt.s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tt.s, err)
		}
		if got := x.String(); got != tt.s {
			t.Errorf("Parse(%q).String() = %q", tt.s, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		p    Params
		s    string
	}{
		{"tooShort", p45, "2123"},
		{"tooLong", p45, "212333"},
		{"digitOutOfBase", p45, "21243"},
		{"nonDigit", p45, "21_33"},
		{"hexInDecimalBase", Params{10, 4}, "12af"},
		{"badParams", Params{1, 4}, "0000"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.p, tt.s); err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", tt.s)
			}
		})
	}
}

func TestDigitIndexing(t *testing.T) {
	// The 0th digit is the rightmost digit (paper notation).
	x := MustParse(p45, "21233")
	want := []int{3, 3, 2, 1, 2}
	for i, w := range want {
		if got := x.Digit(i); got != w {
			t.Errorf("Digit(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestDigitPanics(t *testing.T) {
	x := MustParse(p45, "21233")
	for _, i := range []int{-1, 5, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Digit(%d) did not panic", i)
				}
			}()
			x.Digit(i)
		}()
	}
}

func TestCommonSuffixLen(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"21233", "21233", 5},
		{"21233", "03233", 3},
		{"21233", "11233", 4},
		{"21233", "21231", 0},
		{"10233", "21233", 3},
		{"00000", "10000", 4},
		{"12345", "54321", 0},
	}
	p := Params{B: 8, D: 5}
	for _, tt := range tests {
		a, b := MustParse(p, tt.a), MustParse(p, tt.b)
		if got := a.CommonSuffixLen(b); got != tt.want {
			t.Errorf("csuf(%s,%s) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
		if got := b.CommonSuffixLen(a); got != tt.want {
			t.Errorf("csuf(%s,%s) = %d, want %d (symmetry)", tt.b, tt.a, got, tt.want)
		}
	}
}

func TestNullID(t *testing.T) {
	if !Null.IsNull() {
		t.Error("Null.IsNull() = false")
	}
	if Null.Len() != 0 {
		t.Errorf("Null.Len() = %d", Null.Len())
	}
	if Null.String() != "<null>" {
		t.Errorf("Null.String() = %q", Null.String())
	}
	x := MustParse(p45, "21233")
	if x.IsNull() {
		t.Error("valid ID reported null")
	}
	if x == Null {
		t.Error("valid ID compares equal to Null")
	}
}

func TestSuffix(t *testing.T) {
	x := MustParse(p45, "21233")
	tests := []struct {
		k    int
		want string
	}{
		{0, "ε"},
		{1, "3"},
		{2, "33"},
		{3, "233"},
		{5, "21233"},
	}
	for _, tt := range tests {
		if got := x.Suffix(tt.k).String(); got != tt.want {
			t.Errorf("Suffix(%d) = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestSuffixExtendParentLeading(t *testing.T) {
	s := MustParseSuffix(p85, "61") // suffix "61": digit0=1, digit1=6
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	ext := s.Extend(2)
	if got := ext.String(); got != "261" {
		t.Errorf("Extend(2) = %q, want 261", got)
	}
	if got := ext.Leading(); got != 2 {
		t.Errorf("Leading = %d, want 2", got)
	}
	if got := ext.Parent(); got != s {
		t.Errorf("Parent = %q, want %q", got.String(), s.String())
	}
}

func TestSuffixMatching(t *testing.T) {
	x := MustParse(p85, "10261")
	y := MustParse(p85, "47051")
	s261 := MustParseSuffix(p85, "261")
	s61 := MustParseSuffix(p85, "61")
	s1 := MustParseSuffix(p85, "1")
	if !x.HasSuffix(s261) || !x.HasSuffix(s61) || !x.HasSuffix(s1) || !x.HasSuffix(EmptySuffix) {
		t.Error("10261 should match 261, 61, 1 and ε")
	}
	if y.HasSuffix(s261) || y.HasSuffix(s61) {
		t.Error("47051 should not match 261 or 61")
	}
	if !y.HasSuffix(s1) {
		t.Error("47051 should match suffix 1")
	}
	if !s61.IsSuffixOf(s261) {
		t.Error("61 is a suffix of 261")
	}
	if s261.IsSuffixOf(s61) {
		t.Error("261 is not a suffix of 61")
	}
	if !EmptySuffix.IsSuffixOf(s261) {
		t.Error("ε is a suffix of everything")
	}
}

func TestSuffixAsID(t *testing.T) {
	s := MustParseSuffix(p85, "10261")
	if got := s.AsID(p85); got != MustParse(p85, "10261") {
		t.Errorf("AsID = %s", got)
	}
	short := MustParseSuffix(p85, "261")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AsID on short suffix did not panic")
			}
		}()
		short.AsID(p85)
	}()
}

func TestFromDigits(t *testing.T) {
	x, err := FromDigits(p45, []int{3, 3, 2, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := x.String(); got != "21233" {
		t.Errorf("FromDigits = %q, want 21233", got)
	}
	if _, err := FromDigits(p45, []int{1, 2}); err == nil {
		t.Error("short digit slice accepted")
	}
	if _, err := FromDigits(p45, []int{0, 0, 0, 0, 9}); err == nil {
		t.Error("out-of-base digit accepted")
	}
}

func TestRandomUniqueAndInRange(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	seen := make(map[ID]bool, 1000)
	for i := 0; i < 1000; i++ {
		x := Random(p168, r)
		if x.Len() != p168.D {
			t.Fatalf("Random ID has %d digits", x.Len())
		}
		for j := 0; j < p168.D; j++ {
			if d := x.Digit(j); d < 0 || d >= p168.B {
				t.Fatalf("digit %d out of range", d)
			}
		}
		seen[x] = true
	}
	// With 2^32 IDs, 1000 draws should essentially never collide.
	if len(seen) < 999 {
		t.Errorf("unexpectedly many collisions: %d unique of 1000", len(seen))
	}
}

func TestFromNameDeterministicAndSpread(t *testing.T) {
	a := FromName(p168, "node-1.example.com:4000")
	b := FromName(p168, "node-1.example.com:4000")
	c := FromName(p168, "node-2.example.com:4000")
	if a != b {
		t.Error("FromName not deterministic")
	}
	if a == c {
		t.Error("distinct names hashed to same ID")
	}
	// Long IDs exercise the block-extension path.
	long := FromName(Params{16, 40}, "x")
	if long.Len() != 40 {
		t.Fatalf("long ID has %d digits", long.Len())
	}
	// Digit histogram over many names should hit every value for b=16.
	counts := make([]int, 16)
	for i := 0; i < 200; i++ {
		x := FromName(p168, strings.Repeat("n", i+1))
		for j := 0; j < x.Len(); j++ {
			counts[x.Digit(j)]++
		}
	}
	for v, c := range counts {
		if c == 0 {
			t.Errorf("digit value %d never produced", v)
		}
	}
}

func TestWithDigit(t *testing.T) {
	x := MustParse(p45, "21233")
	y := x.WithDigit(0, 1)
	if got := y.String(); got != "21231" {
		t.Errorf("WithDigit(0,1) = %q", got)
	}
	if x.String() != "21233" {
		t.Error("WithDigit mutated the receiver")
	}
	if got := x.WithDigit(4, 0).String(); got != "01233" {
		t.Errorf("WithDigit(4,0) = %q", got)
	}
	if got := x.WithDigit(2, 2); got != x {
		t.Errorf("identity WithDigit changed ID to %v", got)
	}
	for _, bad := range []func(){
		func() { x.WithDigit(-1, 0) },
		func() { x.WithDigit(5, 0) },
		func() { x.WithDigit(0, -1) },
		func() { x.WithDigit(0, MaxBase) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("WithDigit out of range did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestLessIsTotalOrder(t *testing.T) {
	ids := []string{"00000", "00001", "10000", "21233", "33333"}
	for i := range ids {
		for j := range ids {
			a, b := MustParse(p45, ids[i]), MustParse(p45, ids[j])
			switch {
			case i < j && !a.Less(b):
				t.Errorf("%s should be Less than %s", ids[i], ids[j])
			case i >= j && a.Less(b):
				t.Errorf("%s should not be Less than %s", ids[i], ids[j])
			}
		}
	}
}

// Property: csuf(x,y) == k implies the k rightmost digits agree and, when
// k < D, digit k differs.
func TestQuickCommonSuffix(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x, y := Random(p168, rr), Random(p168, rr)
		k := x.CommonSuffixLen(y)
		for i := 0; i < k; i++ {
			if x.Digit(i) != y.Digit(i) {
				return false
			}
		}
		if k < p168.D && x.Digit(k) == y.Digit(k) {
			return false
		}
		return x.HasSuffix(y.Suffix(k)) && y.HasSuffix(x.Suffix(k))
	}
	cfg := &quick.Config{MaxCount: 500, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: parse/format round-trips for random IDs in several spaces.
func TestQuickRoundTrip(t *testing.T) {
	spaces := []Params{{2, 16}, {4, 5}, {8, 5}, {16, 8}, {16, 40}, {36, 6}}
	r := rand.New(rand.NewSource(7))
	for _, p := range spaces {
		f := func(seed int64) bool {
			rr := rand.New(rand.NewSource(seed))
			x := Random(p, rr)
			y, err := Parse(p, x.String())
			return err == nil && x == y
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
			t.Errorf("space %+v: %v", p, err)
		}
	}
}

// Property: Suffix/Extend/Parent are inverses and HasSuffix is monotone in
// suffix length.
func TestQuickSuffixAlgebra(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x := Random(p168, rr)
		k := rr.Intn(p168.D)
		s := x.Suffix(k)
		ext := s.Extend(x.Digit(k))
		if ext != x.Suffix(k+1) {
			return false
		}
		if ext.Parent() != s {
			return false
		}
		// Monotonicity: matching a longer suffix implies matching shorter.
		return !x.HasSuffix(ext) || x.HasSuffix(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: r}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCommonSuffixLen(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	p := Params{16, 40}
	x, y := Random(p, r), Random(p, r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.CommonSuffixLen(y)
	}
}

func BenchmarkRandomID(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	p := Params{16, 40}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Random(p, r)
	}
}

func TestSuffixMatch(t *testing.T) {
	x := MustParse(p85, "10261")
	tests := []struct {
		suffix string
		want   int
	}{
		{"ε", 0},
		{"1", 1},
		{"61", 2},
		{"261", 3},
		{"0261", 4},
		{"10261", 5},
		{"71", 1},  // digit 0 matches, digit 1 differs
		{"3", 0},   // immediate mismatch
		{"461", 2}, // two digits then mismatch
	}
	for _, tt := range tests {
		s := MustParseSuffix(p85, tt.suffix)
		if got := x.SuffixMatch(s); got != tt.want {
			t.Errorf("SuffixMatch(%q) = %d, want %d", tt.suffix, got, tt.want)
		}
	}
}

func TestEqualAndSuffixDigit(t *testing.T) {
	a := MustParse(p45, "21233")
	b := MustParse(p45, "21233")
	c := MustParse(p45, "21230")
	if !a.Equal(b) || a.Equal(c) {
		t.Error("Equal wrong")
	}
	s := MustParseSuffix(p45, "233")
	if s.Digit(0) != 3 || s.Digit(1) != 3 || s.Digit(2) != 2 {
		t.Error("Suffix.Digit values wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Suffix.Digit out of range did not panic")
			}
		}()
		s.Digit(3)
	}()
}

func TestSuffixEdgePanics(t *testing.T) {
	x := MustParse(p45, "21233")
	for _, bad := range []func(){
		func() { x.Suffix(-1) },
		func() { x.Suffix(6) },
		func() { EmptySuffix.Parent() },
		func() { EmptySuffix.Leading() },
		func() { EmptySuffix.Extend(-1) },
		func() { EmptySuffix.Extend(MaxBase) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestMustParsePanics(t *testing.T) {
	for _, bad := range []func(){
		func() { MustParse(p45, "bad!") },
		func() { MustParseSuffix(p45, "999999") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestHasSuffixLongerThanID(t *testing.T) {
	// A suffix longer than the ID cannot match (null ID vs real suffix).
	s := MustParseSuffix(p45, "233")
	if Null.HasSuffix(s) {
		t.Error("null ID matched a non-empty suffix")
	}
	if !Null.HasSuffix(EmptySuffix) {
		t.Error("ε should match even the null ID")
	}
	if got := Null.CommonSuffixLen(MustParse(p45, "21233")); got != 0 {
		t.Errorf("csuf(null, x) = %d", got)
	}
	if got := Null.SuffixMatch(s); got != 0 {
		t.Errorf("SuffixMatch on null = %d", got)
	}
}
