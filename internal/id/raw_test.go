package id

import (
	"bytes"
	"testing"
)

// Raw-digit accessors are the binary codec's view of IDs: append must be
// the exact inverse of FromRawDigits, and hostile lengths/digits must be
// rejected rather than smuggled into an ID value.
func TestRawDigitsRoundTrip(t *testing.T) {
	p := Params{B: 8, D: 5}
	x := MustParse(p, "21233")
	raw := x.AppendRawDigits(nil)
	if len(raw) != p.D {
		t.Fatalf("AppendRawDigits wrote %d bytes, want %d", len(raw), p.D)
	}
	back, err := FromRawDigits(p, raw)
	if err != nil {
		t.Fatalf("FromRawDigits: %v", err)
	}
	if back != x {
		t.Fatalf("round trip %v != %v", back, x)
	}
	// Wire order: index 0 is the rightmost digit.
	if int(raw[0]) != x.Digit(0) {
		t.Fatalf("raw[0] = %d, want rightmost digit %d", raw[0], x.Digit(0))
	}
	// Appending extends, not overwrites.
	pre := []byte{0xff}
	ext := x.AppendRawDigits(pre)
	if !bytes.Equal(ext[:1], []byte{0xff}) || !bytes.Equal(ext[1:], raw) {
		t.Fatalf("AppendRawDigits does not append: %v", ext)
	}
	// Null ID appends nothing.
	if got := Null.AppendRawDigits(nil); len(got) != 0 {
		t.Fatalf("null ID appended %v", got)
	}
}

func TestFromRawDigitsRejectsHostile(t *testing.T) {
	p := Params{B: 8, D: 5}
	cases := [][]byte{
		{1, 2, 3},          // too short
		{1, 2, 3, 4, 5, 6}, // too long
		{1, 2, 3, 4, 8},    // digit >= base
		{1, 2, 3, 4, 0xff}, // wildly out of range
		nil,                // empty
	}
	for _, raw := range cases {
		if _, err := FromRawDigits(p, raw); err == nil {
			t.Errorf("FromRawDigits(%v) accepted", raw)
		}
	}
}

func TestSuffixRawDigitsRoundTrip(t *testing.T) {
	p := Params{B: 8, D: 5}
	for _, s := range []string{"", "3", "233", "21233"} {
		sf := MustParseSuffix(p, s)
		raw := sf.AppendRawDigits(nil)
		back, err := SuffixFromRawDigits(p, raw)
		if err != nil {
			t.Fatalf("SuffixFromRawDigits(%q): %v", s, err)
		}
		if back != sf {
			t.Fatalf("round trip %v != %v", back, sf)
		}
	}
	if _, err := SuffixFromRawDigits(p, []byte{1, 2, 3, 4, 5, 6}); err == nil {
		t.Error("over-length raw suffix accepted")
	}
	if _, err := SuffixFromRawDigits(p, []byte{9}); err == nil {
		t.Error("out-of-base raw suffix digit accepted")
	}
}
