package baseline

import (
	"testing"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/overlay"
)

var p164 = id.Params{B: 16, D: 4}

func TestInvalidConfig(t *testing.T) {
	if _, err := RunWave(Config{Params: p164, N: 0, M: 1}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := RunWave(Config{Params: p164, N: 1, M: -1}); err == nil {
		t.Error("m<0 accepted")
	}
}

func TestSingleJoinConsistent(t *testing.T) {
	res, err := RunWave(Config{Params: p164, N: 50, M: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Errorf("single multicast join inconsistent: %d violations", res.Violations)
	}
	if res.TotalMessages == 0 {
		t.Error("no messages counted")
	}
}

func TestBaselineHoldsStateOnExistingNodes(t *testing.T) {
	res, err := RunWave(Config{Params: p164, N: 200, M: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's critique: the multicast join parks per-join state on
	// established nodes while announcements are in flight.
	if res.PeakPendingState == 0 {
		t.Error("baseline held no pending state — multicast not exercised")
	}
	if res.PeakPendingPerNode == 0 {
		t.Error("per-node pending state never grew")
	}
	if res.AnnounceMessages == 0 || res.AnnounceMessages >= res.TotalMessages {
		t.Errorf("announce/total = %d/%d implausible", res.AnnounceMessages, res.TotalMessages)
	}
}

// TestConcurrentSameSuffixJoinsLoseUpdates demonstrates the failure mode
// Liu & Lam's protocol eliminates: with many concurrent joins in a small
// ID space, the first-writer-wins multicast loses updates, leaving
// Definition 3.8 violations. (This is statistical: across several seeds,
// at least one wave must exhibit a violation, while Liu & Lam's protocol
// must exhibit zero across all of them — see the comparison test.)
func TestConcurrentSameSuffixJoinsLoseUpdates(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	sawViolation := false
	for seed := int64(1); seed <= 8; seed++ {
		res, err := RunWave(Config{Params: p, N: 40, M: 60, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violations > 0 {
			sawViolation = true
		}
	}
	if !sawViolation {
		t.Error("baseline never lost an update under heavy same-suffix contention; comparison claim untestable")
	}
}

func TestComparisonWithJoinProtocol(t *testing.T) {
	// Same workload shape through both systems: Liu & Lam's protocol must
	// stay consistent on every seed where the baseline breaks.
	p := id.Params{B: 4, D: 4}
	for seed := int64(1); seed <= 8; seed++ {
		res, err := overlay.RunWave(overlay.WaveConfig{Params: p, N: 40, M: 60, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Consistent() || !res.AllSNodes {
			t.Fatalf("seed %d: paper protocol inconsistent — comparison inverted", seed)
		}
	}
}

func TestLatencyDefaulting(t *testing.T) {
	res, err := RunWave(Config{Params: p164, N: 20, M: 2, Seed: 1, Latency: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMessages == 0 {
		t.Error("defaulted latency produced no run")
	}
	res2, err := RunWave(Config{Params: p164, N: 20, M: 2, Seed: 1, Latency: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, different latency: with uniform constant latency the
	// message counts are identical (order is latency-invariant here).
	if res.TotalMessages != res2.TotalMessages {
		t.Logf("message counts differ across latencies: %d vs %d (acceptable, order-dependent)",
			res.TotalMessages, res2.TotalMessages)
	}
}
