package overlay

import (
	"math/rand"
	"path/filepath"
	"testing"

	"hypercube/internal/id"
	"hypercube/internal/persist"
)

// TestPersistRestartRejoin is the end-to-end restart story persist
// exists for: a member dumps its table to disk, crashes, restarts from
// the snapshot as an established node, and re-announces itself with
// StartRejoin. The survivors never repaired the crash (the restart is
// immediate), so their tables still point at the victim; after the
// re-announce drains, the whole network must pass netcheck.
func TestPersistRestartRejoin(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	rng := rand.New(rand.NewSource(11))
	net := New(Config{Params: p})
	refs := RandomRefs(p, 16, rng, nil)
	net.BuildDirect(refs, rng)
	if v := net.CheckConsistency(); len(v) != 0 {
		t.Fatalf("pre-crash network inconsistent: %v", v[0])
	}

	// Dump the victim's table through a real file round-trip.
	victim := refs[3]
	tbl, ok := net.TableOf(victim.ID)
	if !ok {
		t.Fatalf("victim %v has no table", victim.ID)
	}
	filled := tbl.FilledCount()
	path := filepath.Join(t.TempDir(), "victim.json")
	if err := persist.SaveFile(path, tbl.Snapshot()); err != nil {
		t.Fatal(err)
	}

	if err := net.InjectFailure(victim.ID); err != nil {
		t.Fatal(err)
	}

	// Restart from disk: load the dump, materialize the table, and
	// rejoin through any survivor.
	snap, err := persist.LoadFile(path, p)
	if err != nil {
		t.Fatal(err)
	}
	restored := persist.Restore(snap)
	if restored.FilledCount() != filled {
		t.Fatalf("restored table has %d entries, want %d", restored.FilledCount(), filled)
	}
	m := net.AddEstablished(victim, restored)
	out, err := m.StartRejoin(refs[0])
	if err != nil {
		t.Fatal(err)
	}
	net.transmit(out)
	net.Run()

	if !m.IsSNode() {
		t.Fatalf("restarted node stuck in %v", m.Status())
	}
	if v := net.CheckConsistency(); len(v) != 0 {
		t.Fatalf("inconsistent after restart+rejoin: %d violations, first: %v", len(v), v[0])
	}
}
