package table

import "testing"

// Word/WordCount/SetWord are the codec-facing accessors: reading must
// match Words without copying, and SetWord must mask bits beyond Len so
// a hostile final word cannot carry phantom bits.
func TestBitVectorWordAccessors(t *testing.T) {
	v := NewBitVector(70)
	v.Set(0)
	v.Set(63)
	v.Set(69)
	if got, want := v.WordCount(), 2; got != want {
		t.Fatalf("WordCount = %d, want %d", got, want)
	}
	words := v.Words()
	for i := range words {
		if v.Word(i) != words[i] {
			t.Fatalf("Word(%d) = %#x, want %#x", i, v.Word(i), words[i])
		}
	}

	u := NewBitVector(70)
	for i := 0; i < u.WordCount(); i++ {
		u.SetWord(i, v.Word(i))
	}
	for i := 0; i < 70; i++ {
		if u.Get(i) != v.Get(i) {
			t.Fatalf("bit %d diverged after SetWord rebuild", i)
		}
	}
}

func TestBitVectorSetWordMasksPadding(t *testing.T) {
	v := NewBitVector(70) // 6 valid bits in the final word
	v.SetWord(1, ^uint64(0))
	if got := v.Word(1); got != (1<<6)-1 {
		t.Fatalf("final word = %#x, want %#x (padding must be masked)", got, uint64((1<<6)-1))
	}
	if v.Count() != 6 {
		t.Fatalf("Count = %d, want 6", v.Count())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range SetWord did not panic")
		}
	}()
	v.SetWord(2, 1)
}
