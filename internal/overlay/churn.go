package overlay

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/table"
)

// ScheduleLeave schedules node x's graceful departure (the §7 leave
// extension) at virtual time at. After Run, call FinalizeLeaves to
// unregister nodes that completed their departure. A node no longer in
// system when the time arrives (it crashed or already left) is skipped.
func (n *Network) ScheduleLeave(x id.ID, at time.Duration) error {
	m, ok := n.machines[x]
	if !ok {
		return fmt.Errorf("overlay: leave of unknown node %v", x)
	}
	n.engine.ScheduleAt(at, func() {
		out, err := m.StartLeave()
		if err != nil {
			return
		}
		n.transmit(out)
	})
	return nil
}

// FinalizeLeaves unregisters every machine that reached StatusLeft and
// returns their IDs. Late in-flight messages to them are dropped.
func (n *Network) FinalizeLeaves() []id.ID {
	var gone []id.ID
	for x, m := range n.machines {
		if m.Status() == core.StatusLeft {
			gone = append(gone, x)
		}
	}
	for _, x := range gone {
		delete(n.machines, x)
		delete(n.probers, x)
		delete(n.engines, x)
		delete(n.samplers, x)
		n.removed[x] = true
	}
	return gone
}

// InjectFailure removes node x abruptly: no goodbye, its in-flight and
// future messages are dropped. Use RecoverFailure afterwards to repair
// the survivors' tables.
func (n *Network) InjectFailure(x id.ID) error {
	if _, ok := n.machines[x]; !ok {
		return fmt.Errorf("overlay: failure of unknown node %v", x)
	}
	delete(n.machines, x)
	delete(n.probers, x)
	delete(n.engines, x)
	delete(n.samplers, x)
	n.removed[x] = true
	return nil
}

// RecoveryStats summarizes a RecoverFailure run.
type RecoveryStats struct {
	// Holders is the number of surviving nodes that stored the dead node.
	Holders int
	// LocalRepairs counts entries refilled from the holder's own table.
	LocalRepairs int
	// RoutedRepairs counts entries refilled through Find queries.
	RoutedRepairs int
	// Rejoined counts orphaned holders that re-ran the join protocol.
	Rejoined int
	// Emptied counts entries whose suffix provably died with the node.
	Emptied int
	// Rounds is the number of query rounds run.
	Rounds int
	// Unrepaired counts entries still broken at the end (0 on success).
	Unrepaired int
}

// RecoverFailure repairs all surviving tables after the crash of dead.
// It is the single-crash form of RecoverFailures.
func (n *Network) RecoverFailure(dead id.ID, rng *rand.Rand, maxRounds int) RecoveryStats {
	return n.RecoverFailures([]id.ID{dead}, rng, maxRounds)
}

// RecoverFailures is the offline/batch repair path: given the set of
// crashed nodes (named by an oracle, e.g. a test harness), every
// surviving holder first repairs locally (DropFailed), then unresolved
// entries are refilled through the machines' own repair jobs —
// KickRepairs, the same trigger code the autonomous failure-detection
// path runs from Machine.Tick — forced in rounds to quiescence.
//
// The autonomous path (Config.Liveness plus core.Options.Timeouts) makes
// this oracle unnecessary; it remains for deterministic experiments and
// for repairing after simulated crashes without running virtual time.
func (n *Network) RecoverFailures(dead []id.ID, rng *rand.Rand, maxRounds int) RecoveryStats {
	if maxRounds <= 0 {
		maxRounds = 2*n.cfg.Params.D + 6
	}
	var st RecoveryStats

	// Round 0: local repair everywhere; remember which holders lost their
	// deepest-known neighbor. DropFailed runs on every machine, holder or
	// not: non-holders may still reference a dead node in their
	// reverse-neighbor sets, and a stale reverse entry would make a later
	// graceful leave wait forever for an acknowledgment that never comes.
	// Deterministic iteration: simulation runs must replay identically.
	ids := make([]id.ID, 0, len(n.machines))
	for x := range n.machines {
		ids = append(ids, x)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	var orphans []*core.Machine
	for _, x := range ids {
		m := n.machines[x]
		held := 0
		orphan := false
		for _, d := range dead {
			if c := countEntriesOf(m, d); c > 0 {
				held += c
				if m.DeepestNeighborIs(d) {
					orphan = true
				}
			}
		}
		if held > 0 {
			st.Holders++
			if orphan {
				orphans = append(orphans, m)
			}
		}
		for _, d := range dead {
			m.DropFailed(d)
		}
		st.LocalRepairs += held - len(m.RepairsPending())
	}

	// Orphan re-join: a node whose deepest neighbor crashed may have been
	// stored nowhere else (its join notified only nodes sharing its
	// deepest suffix, possibly just the dead node), making it unfindable
	// by search. It re-announces itself by re-running the join protocol;
	// Theorem 1 then refills every entry its notification set lost.
	//
	// Re-joins run one at a time: Theorem 2's termination argument for
	// concurrent joins relies on a joining node not yet being stored
	// anywhere (so JoinWait dependencies are acyclic), but re-joining
	// nodes already appear in each other's tables and could park each
	// other in Qj forever.
	deadSet := make(map[id.ID]bool, len(dead))
	for _, d := range dead {
		deadSet[d] = true
	}
	for _, m := range orphans {
		helper := pickHelper(m, deadSet, rng)
		if helper.IsZero() {
			continue
		}
		out, err := m.StartRejoin(helper)
		if err != nil {
			continue // e.g. knocked out of in_system by a concurrent repair
		}
		st.Rejoined++
		n.transmit(out)
		n.Run()
	}
	n.Run()

	// Convergence rule: when a dead node was the sole carrier of a
	// suffix, every node that could certify the suffix's status is itself
	// waiting for a repair, and all queries block on each other. A live
	// carrier, in contrast, answers any query that reaches it, so forced
	// rounds (each rotating to fresh helpers) make progress while any
	// live carrier exists. After zeroProgressLimit consecutive rounds
	// without a single resolution, the remaining suffixes are concluded
	// dead and their entries stay (correctly) empty.
	const zeroProgressLimit = 3
	settleAll := func() (progress int) {
		for _, x := range ids {
			filled, emptied := n.machines[x].SettleRepairs()
			st.RoutedRepairs += filled
			st.Emptied += emptied
			progress += filled + emptied
		}
		return progress
	}
	pendingAll := func() int {
		total := 0
		for _, x := range ids {
			total += len(n.machines[x].RepairsPending())
		}
		return total
	}
	zeroProgress := 0
	for round := 0; round < maxRounds; round++ {
		progress := settleAll()
		if round > 0 {
			if progress > 0 {
				zeroProgress = 0
			} else {
				zeroProgress++
			}
		}
		if zeroProgress >= zeroProgressLimit {
			for _, x := range ids {
				m := n.machines[x]
				for _, e := range m.RepairsPending() {
					m.AbandonRepair(e[0], e[1])
					st.Emptied++
				}
			}
		}
		if pendingAll() == 0 {
			break
		}
		st.Rounds++
		for _, x := range ids {
			n.transmit(n.machines[x].KickRepairs(n.engine.Now(), true))
		}
		n.Run()
	}
	settleAll()
	st.Unrepaired = pendingAll()
	return st
}

func countEntriesOf(m *core.Machine, who id.ID) int {
	c := 0
	m.Table().ForEach(func(_, _ int, nb table.Neighbor) {
		if nb.ID == who {
			c++
		}
	})
	return c
}

// pickHelper chooses a random live neighbor to start a rejoin from.
func pickHelper(m *core.Machine, dead map[id.ID]bool, rng *rand.Rand) table.Ref {
	var candidates []table.Ref
	seen := make(map[id.ID]bool)
	m.Table().ForEach(func(_, _ int, nb table.Neighbor) {
		if dead[nb.ID] || nb.ID == m.Self().ID || seen[nb.ID] {
			return
		}
		seen[nb.ID] = true
		candidates = append(candidates, nb.Ref())
	})
	if len(candidates) == 0 {
		return table.Ref{}
	}
	return candidates[rng.Intn(len(candidates))]
}
