package overlay

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/netcheck"
	"hypercube/internal/table"
)

func requireConsistent(t *testing.T, net *Network) {
	t.Helper()
	if v := net.CheckConsistency(); len(v) != 0 {
		t.Fatalf("network inconsistent (%d violations), first: %v", len(v), v[0])
	}
}

func TestGracefulLeaveSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := New(Config{Params: p164})
	refs := RandomRefs(p164, 60, rng, nil)
	net.BuildDirect(refs, rng)

	leaver := refs[10].ID
	if err := net.ScheduleLeave(leaver, 0); err != nil {
		t.Fatal(err)
	}
	net.Run()
	gone := net.FinalizeLeaves()
	if len(gone) != 1 || gone[0] != leaver {
		t.Fatalf("FinalizeLeaves = %v", gone)
	}
	if net.Size() != 59 {
		t.Fatalf("Size = %d", net.Size())
	}
	requireConsistent(t, net)
	// No survivor may still point at the leaver.
	for x, tbl := range net.Tables() {
		tbl.ForEach(func(level, digit int, n table.Neighbor) {
			if n.ID == leaver {
				t.Errorf("node %v still stores leaver at (%d,%d)", x, level, digit)
			}
		})
	}
}

func TestGracefulLeaveSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := New(Config{Params: p164})
	refs := RandomRefs(p164, 80, rng, nil)
	net.BuildDirect(refs, rng)

	// 30 nodes leave one at a time; consistency must hold after each.
	perm := rng.Perm(len(refs))
	for i := 0; i < 30; i++ {
		leaver := refs[perm[i]].ID
		if err := net.ScheduleLeave(leaver, net.Engine().Now()); err != nil {
			t.Fatal(err)
		}
		net.Run()
		if gone := net.FinalizeLeaves(); len(gone) != 1 {
			t.Fatalf("leave %d: FinalizeLeaves = %v", i, gone)
		}
		requireConsistent(t, net)
	}
	if net.Size() != 50 {
		t.Fatalf("Size = %d", net.Size())
	}
}

func TestGracefulLeaveConcurrent(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			net := New(Config{
				Params:  p164,
				Latency: HashedUniformLatency(5*time.Millisecond, 90*time.Millisecond, seed),
			})
			refs := RandomRefs(p164, 100, rng, nil)
			net.BuildDirect(refs, rng)

			// 20 nodes leave at the same instant — leavers may have been
			// each other's repair candidates; the RvNghNoti/Leave handshake
			// must re-repair those cases.
			perm := rng.Perm(len(refs))
			for i := 0; i < 20; i++ {
				if err := net.ScheduleLeave(refs[perm[i]].ID, 0); err != nil {
					t.Fatal(err)
				}
			}
			net.Run()
			gone := net.FinalizeLeaves()
			if len(gone) != 20 {
				t.Fatalf("only %d of 20 leaves completed", len(gone))
			}
			requireConsistent(t, net)
		})
	}
}

func TestLeaveLastMemberOfSuffix(t *testing.T) {
	// A leaver that is the sole member of deep suffixes must leave the
	// corresponding entries empty (false-positive freedom), which
	// CheckConsistency verifies on the shrunken member set.
	p := id.Params{B: 4, D: 5}
	rng := rand.New(rand.NewSource(3))
	net := New(Config{Params: p})
	refs := RandomRefs(p, 12, rng, nil) // sparse: most deep suffixes are singletons
	net.BuildDirect(refs, rng)
	if err := net.ScheduleLeave(refs[0].ID, 0); err != nil {
		t.Fatal(err)
	}
	net.Run()
	net.FinalizeLeaves()
	requireConsistent(t, net)
}

func TestLeaveUnknownNode(t *testing.T) {
	net := New(Config{Params: p164})
	if err := net.ScheduleLeave(id.MustParse(p164, "dead"), 0); err == nil {
		t.Fatal("leave of unknown node accepted")
	}
}

func TestLeaveThenJoin(t *testing.T) {
	// Churn both ways: nodes leave, then new nodes join; the network must
	// absorb both transitions.
	rng := rand.New(rand.NewSource(4))
	net := New(Config{Params: p164})
	taken := make(map[id.ID]bool)
	refs := RandomRefs(p164, 70, rng, taken)
	net.BuildDirect(refs, rng)

	for i := 0; i < 10; i++ {
		if err := net.ScheduleLeave(refs[i].ID, 0); err != nil {
			t.Fatal(err)
		}
	}
	net.Run()
	net.FinalizeLeaves()
	requireConsistent(t, net)

	joiners := RandomRefs(p164, 25, rng, taken)
	for _, j := range joiners {
		net.ScheduleJoin(j, refs[30], net.Engine().Now())
	}
	net.Run()
	requireConsistent(t, net)
	for _, j := range joiners {
		m, _ := net.Machine(j.ID)
		if !m.IsSNode() {
			t.Errorf("joiner %v stuck in %v", j.ID, m.Status())
		}
	}
}

func TestFailureRecoverySingle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := New(Config{Params: p164})
	refs := RandomRefs(p164, 80, rng, nil)
	net.BuildDirect(refs, rng)

	dead := refs[7].ID
	if err := net.InjectFailure(dead); err != nil {
		t.Fatal(err)
	}
	st := net.RecoverFailure(dead, rng, 0)
	if st.Holders == 0 {
		t.Fatal("nobody stored the dead node — setup broken")
	}
	if st.Unrepaired != 0 {
		t.Fatalf("recovery left %d entries broken: %+v", st.Unrepaired, st)
	}
	requireConsistent(t, net)
	if st.LocalRepairs+st.RoutedRepairs+st.Emptied == 0 {
		t.Errorf("no repairs recorded: %+v", st)
	}
}

func TestFailureRecoverySeries(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := New(Config{Params: p164})
	refs := RandomRefs(p164, 100, rng, nil)
	net.BuildDirect(refs, rng)

	perm := rng.Perm(len(refs))
	for i := 0; i < 15; i++ {
		dead := refs[perm[i]].ID
		if err := net.InjectFailure(dead); err != nil {
			t.Fatal(err)
		}
		st := net.RecoverFailure(dead, rng, 0)
		if st.Unrepaired != 0 {
			t.Fatalf("failure %d: %d entries unrepaired (%+v)", i, st.Unrepaired, st)
		}
		requireConsistent(t, net)
	}
	if net.Size() != 85 {
		t.Fatalf("Size = %d", net.Size())
	}
}

func TestFailureRecoveryRoutedPath(t *testing.T) {
	// In small dense ID spaces most repairs are local; force routed ones
	// by using a large sparse space where holders rarely know an
	// alternative member of the dead node's suffix sets.
	p := id.Params{B: 16, D: 8}
	rng := rand.New(rand.NewSource(7))
	net := New(Config{Params: p})
	refs := RandomRefs(p, 300, rng, nil)
	net.BuildDirect(refs, rng)

	routed := 0
	perm := rng.Perm(len(refs))
	for i := 0; i < 10; i++ {
		dead := refs[perm[i]].ID
		if err := net.InjectFailure(dead); err != nil {
			t.Fatal(err)
		}
		st := net.RecoverFailure(dead, rng, 0)
		if st.Unrepaired != 0 {
			t.Fatalf("failure %d unrepaired: %+v", i, st)
		}
		routed += st.RoutedRepairs
		requireConsistent(t, net)
	}
	if routed == 0 {
		t.Error("no routed repairs exercised; Find path untested at this scale")
	}
}

func TestInjectFailureUnknown(t *testing.T) {
	net := New(Config{Params: p164})
	if err := net.InjectFailure(id.MustParse(p164, "beef")); err == nil {
		t.Fatal("failure of unknown node accepted")
	}
}

func TestLeaveStatusTransitions(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := New(Config{Params: p164})
	refs := RandomRefs(p164, 20, rng, nil)
	net.BuildDirect(refs, rng)
	m, _ := net.Machine(refs[0].ID)
	if err := net.ScheduleLeave(refs[0].ID, 0); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if m.Status() != core.StatusLeft {
		t.Fatalf("leaver status %v, want left", m.Status())
	}
	if got := core.StatusLeaving.String(); got != "leaving" {
		t.Errorf("StatusLeaving renders %q", got)
	}
	if got := core.StatusLeft.String(); got != "left" {
		t.Errorf("StatusLeft renders %q", got)
	}
}

func TestStartLeaveErrorsOnJoiner(t *testing.T) {
	j := core.NewJoiner(p164, table.Ref{ID: id.MustParse(p164, "1234"), Addr: "x"}, core.Options{})
	if _, err := j.StartLeave(); err == nil {
		t.Error("StartLeave on joiner did not error")
	}
	if j.Status() != core.StatusCopying {
		t.Errorf("failed StartLeave changed status to %v", j.Status())
	}
}

func TestChurnMixKeepsReachability(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			churnMix(t, seed)
		})
	}
}

// churnMix runs a long mixed scenario: waves of joins, graceful leaves and
// crashes; after every quiescent phase the survivors form a consistent
// network and can all reach each other.
func churnMix(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	net := New(Config{Params: p164})
	taken := make(map[id.ID]bool)
	refs := RandomRefs(p164, 60, rng, taken)
	net.BuildDirect(refs, rng)
	// live is kept sorted for deterministic selection.
	var live []table.Ref
	live = append(live, refs...)

	pickLive := func() table.Ref { return live[rng.Intn(len(live))] }
	removeLive := func(i int) table.Ref {
		r := live[i]
		live = append(live[:i], live[i+1:]...)
		return r
	}

	for phase := 0; phase < 8; phase++ {
		switch phase % 3 {
		case 0: // join wave
			joiners := RandomRefs(p164, 10, rng, taken)
			for _, j := range joiners {
				net.ScheduleJoin(j, pickLive(), net.Engine().Now())
				live = append(live, j)
			}
			net.Run()
		case 1: // graceful leaves
			for count := 0; count < 5 && len(live) >= 20; count++ {
				x := removeLive(rng.Intn(len(live)))
				if err := net.ScheduleLeave(x.ID, net.Engine().Now()); err != nil {
					t.Fatal(err)
				}
			}
			net.Run()
			net.FinalizeLeaves()
		case 2: // crash + recovery
			if len(live) >= 20 {
				x := removeLive(rng.Intn(len(live)))
				if err := net.InjectFailure(x.ID); err != nil {
					t.Fatal(err)
				}
				st := net.RecoverFailure(x.ID, rng, 0)
				if st.Unrepaired != 0 {
					t.Fatalf("phase %d: unrepaired %d", phase, st.Unrepaired)
				}
			}
		}
		if v := net.CheckConsistency(); len(v) != 0 {
			t.Fatalf("phase %d: network inconsistent (%d violations), first: %v", phase, len(v), v[0])
		}
		if bad := netcheck.CheckAllPairsReachability(p164, net.Tables()); len(bad) != 0 {
			t.Fatalf("phase %d: %d unreachable pairs", phase, len(bad))
		}
	}
}

func TestGracefulLeaveUnderLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := New(Config{
		Params: p164,
		Loss:   &Loss{Rate: 0.10, RetryDelay: 20 * time.Millisecond, MaxAttempts: 8, Seed: 29},
	})
	refs := RandomRefs(p164, 50, rng, nil)
	net.BuildDirect(refs, rng)

	leaver := refs[7].ID
	if err := net.ScheduleLeave(leaver, 0); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if gone := net.FinalizeLeaves(); len(gone) != 1 {
		t.Fatalf("leave did not complete under loss: FinalizeLeaves = %v", gone)
	}
	requireConsistent(t, net)
	for x, tbl := range net.Tables() {
		tbl.ForEach(func(level, digit int, n table.Neighbor) {
			if n.ID == leaver {
				t.Errorf("node %v still stores leaver at (%d,%d)", x, level, digit)
			}
		})
	}
	if net.Retransmits() == 0 {
		t.Error("loss model inert during leave")
	}
	if net.LostMessages() != 0 {
		t.Errorf("%d leave-protocol messages dead-lettered", net.LostMessages())
	}
}
