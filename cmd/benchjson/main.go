// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout: a run-metadata header (git commit, UTC
// timestamp, go version, host arch) plus one object per benchmark with
// its iteration count and every reported metric (ns/op, B/op,
// allocs/op, and custom metrics like wirebytes). The Makefile's bench-*
// targets use it to commit machine-readable numbers (BENCH_wire.json
// and friends) next to the human-readable log, and -history appends the
// same document as one compact JSONL line so regressions can be traced
// across commits:
//
//	go test -bench BenchmarkWire -benchmem ./internal/wire | \
//	    benchjson -suite wire -history BENCH_history.jsonl > BENCH_wire.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// run is the full document: where and when the numbers were taken,
// then the numbers. Old consumers that ranged over a bare array must
// read .results instead.
type run struct {
	Suite   string   `json:"suite,omitempty"`
	Commit  string   `json:"commit,omitempty"`
	Date    string   `json:"date"`
	Go      string   `json:"go"`
	Arch    string   `json:"arch"`
	Results []result `json:"results"`
}

func main() {
	if err := mainErr(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func mainErr() error {
	suite := flag.String("suite", "", "suite name recorded in the output (e.g. wire, join)")
	history := flag.String("history", "", "append the run as one compact JSON line to this file")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	doc := run{
		Suite:   *suite,
		Commit:  gitCommit(),
		Date:    time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		Arch:    runtime.GOOS + "/" + runtime.GOARCH,
		Results: results,
	}
	if *history != "" {
		if err := appendHistory(*history, doc); err != nil {
			return err
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func parse(f *os.File) ([]result, error) {
	var results []result
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

// gitCommit returns the short HEAD SHA (with a -dirty suffix when the
// tree has uncommitted changes), or "" outside a git checkout — the
// numbers are still useful without provenance.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	sha := strings.TrimSpace(string(out))
	if err := exec.Command("git", "diff", "--quiet", "HEAD").Run(); err != nil {
		sha += "-dirty"
	}
	return sha
}

func appendHistory(path string, doc run) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	line, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	_, err = f.Write(line)
	return err
}
