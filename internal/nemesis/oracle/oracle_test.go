package oracle

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/obs"
	"hypercube/internal/overlay"
	"hypercube/internal/table"
)

// buildNet constructs a small converged network whose live tables the
// tests then corrupt through Tables() to seed exact violation kinds.
func buildNet(t *testing.T, n int) (*overlay.Network, []table.Ref) {
	t.Helper()
	cfg := overlay.Config{
		Params:  id.Params{B: 4, D: 4},
		Latency: overlay.ConstantLatency(5 * time.Millisecond),
	}
	rng := rand.New(rand.NewSource(3))
	net := overlay.New(cfg)
	refs := overlay.RandomRefs(cfg.Params, n, rng, nil)
	net.BuildDirect(refs, rng)
	net.RunFor(time.Second)
	if v := net.CheckConsistency(); len(v) != 0 {
		t.Fatalf("setup: built network inconsistent: %v", v[0])
	}
	return net, refs
}

func TestAuditCleanNetwork(t *testing.T) {
	net, _ := buildNet(t, 8)
	if f := Audit(net, 32, 1, 0); len(f) != 0 {
		t.Fatalf("audit of a consistent network found %v", f)
	}
}

func TestAuditDeterministicSample(t *testing.T) {
	net, _ := buildNet(t, 8)
	a := Audit(net, 16, 9, 3)
	b := Audit(net, 16, 9, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same (seed, step) audited differently:\n%v\n%v", a, b)
	}
}

func TestAuditSeededGhost(t *testing.T) {
	net, refs := buildNet(t, 8)
	p := net.Params()
	// A ghost shares every suffix with a real member except the top
	// (most significant, printed-first) digit, so it passes the suffix
	// check at sub-top levels and trips only membership.
	victim := refs[0].ID
	ghost := id.Null
	members := make(map[id.ID]bool, len(refs))
	for _, r := range refs {
		members[r.ID] = true
	}
	printed := []byte(victim.String())
	for c := byte('0'); c <= byte('0'+p.B-1); c++ {
		if c == printed[0] {
			continue
		}
		printed[0] = c
		if cand := id.MustParse(p, string(printed)); !members[cand] {
			ghost = cand
			break
		}
	}
	if ghost.IsNull() {
		t.Fatal("setup: no non-member ghost candidate")
	}
	tbl := net.Tables()[refs[1].ID]
	k := refs[1].ID.CommonSuffixLen(ghost)
	tbl.Set(k, ghost.Digit(k), table.Neighbor{ID: ghost, State: table.StateS})

	f := Audit(net, 0, 1, 4)
	if len(f) == 0 {
		t.Fatal("seeded ghost entry not detected")
	}
	found := false
	for _, x := range f {
		if x.Check != CheckConsistency {
			t.Fatalf("unexpected check %q: %v", x.Check, x)
		}
		if x.Step != 4 {
			t.Fatalf("finding stamped step %d, want 4", x.Step)
		}
		if strings.Contains(x.Detail, "ghost") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no ghost-kind violation among %v", f)
	}
}

func TestAuditSeededWrongSuffix(t *testing.T) {
	net, refs := buildNet(t, 8)
	// Overwrite a filled entry of refs[1] with a member that does not
	// carry the entry's desired suffix.
	owner, imposter := refs[1].ID, refs[2].ID
	tbl := net.Tables()[owner]
	k := owner.CommonSuffixLen(imposter)
	seeded := false
	for j := 0; j < net.Params().B && !seeded; j++ {
		if j == imposter.Digit(k) || tbl.Get(k, j).IsZero() {
			continue
		}
		tbl.Set(k, j, table.Neighbor{ID: imposter, State: table.StateS})
		seeded = true
	}
	if !seeded {
		t.Skip("no filled entry to corrupt at the csuf level")
	}
	f := Audit(net, 0, 1, 0)
	found := false
	for _, x := range f {
		if x.Check == CheckConsistency && strings.Contains(x.Detail, "wrong-suffix") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no wrong-suffix violation among %v", f)
	}
}

func TestAuditUnreachablePair(t *testing.T) {
	net, refs := buildNet(t, 8)
	// Empty every entry that points at the victim: condition (a) breaks
	// at each erased entry, and the sampled router can no longer take
	// the final hop to it.
	victim := refs[3].ID
	for owner, tbl := range net.Tables() {
		if owner == victim {
			continue
		}
		for i := 0; i < net.Params().D; i++ {
			for j := 0; j < net.Params().B; j++ {
				if tbl.Get(i, j).ID == victim {
					tbl.Set(i, j, table.Neighbor{})
				}
			}
		}
	}
	f := Audit(net, 64, 7, 2)
	var haveConsistency, haveReach bool
	for _, x := range f {
		switch x.Check {
		case CheckConsistency:
			haveConsistency = true
		case CheckReachable:
			haveReach = true
		}
	}
	if !haveConsistency {
		t.Fatalf("erased entries produced no consistency finding: %v", f)
	}
	if !haveReach {
		t.Fatalf("64 sampled pairs over 8 nodes never routed to the cut-off victim: %v", f)
	}
}

func TestAuditCapsPerCheck(t *testing.T) {
	net, _ := buildNet(t, 8)
	// Blanking whole tables floods the checker with false negatives; the
	// audit must cap at maxPerCheck and summarize the rest.
	for _, tbl := range net.Tables() {
		for i := 0; i < net.Params().D; i++ {
			for j := 0; j < net.Params().B; j++ {
				tbl.Set(i, j, table.Neighbor{})
			}
		}
	}
	f := Audit(net, 0, 1, 0)
	if len(f) != maxPerCheck+1 {
		t.Fatalf("%d consistency findings, want %d capped + 1 summary", len(f), maxPerCheck)
	}
	last := f[len(f)-1]
	if !strings.Contains(last.Detail, "more violations") {
		t.Fatalf("final finding is not the overflow summary: %v", last)
	}
}

func TestDeclWatchClassification(t *testing.T) {
	w := NewDeclWatch()
	p := id.Params{B: 4, D: 4}
	dead := id.MustParse(p, "0123")
	live := id.MustParse(p, "3210")
	w.MarkDeadAt(2*time.Second, dead)

	w.Emit(obs.Event{Kind: obs.KindDeclared, Peer: dead.String(), T: 5 * time.Second})
	w.Emit(obs.Event{Kind: obs.KindDeclared, Peer: dead.String(), T: 6 * time.Second})
	w.Emit(obs.Event{Kind: obs.KindDeclared, Peer: live.String(), T: 7 * time.Second})
	w.Emit(obs.Event{Kind: obs.KindSuspect, Peer: live.String(), T: 7 * time.Second}) // ignored

	if w.Genuine() != 2 || w.FalsePositives() != 1 || w.Total() != 3 {
		t.Fatalf("genuine=%d false=%d total=%d, want 2/1/3", w.Genuine(), w.FalsePositives(), w.Total())
	}
	if w.Detected() != 1 {
		t.Fatalf("Detected = %d, want 1", w.Detected())
	}
	// First declaration at 5s, crash at 2s.
	if got := w.MeanDetection(); got != 3*time.Second {
		t.Fatalf("MeanDetection = %v, want 3s", got)
	}
	if ex := w.Examples(); len(ex) != 1 || ex[0] != live.String() {
		t.Fatalf("Examples = %v", ex)
	}

	f := AuditDeclarations(w, 6)
	if len(f) != 1 || f[0].Check != CheckFalseDecl || f[0].Step != 6 {
		t.Fatalf("AuditDeclarations = %v", f)
	}
	if !strings.Contains(f[0].Detail, live.String()) {
		t.Fatalf("finding does not name the falsely declared peer: %v", f[0])
	}
}

func TestAuditDeclarationsQuietWatcher(t *testing.T) {
	w := NewDeclWatch()
	p := id.Params{B: 4, D: 4}
	dead := id.MustParse(p, "2222")
	w.MarkDead(dead)
	w.Emit(obs.Event{Kind: obs.KindDeclared, Peer: dead.String()})
	if f := AuditDeclarations(w, 0); f != nil {
		t.Fatalf("genuine-only watcher produced findings: %v", f)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Check: CheckReachable, Detail: "x cannot reach y", Step: 3}
	if got := f.String(); got != "[step 3] reachability: x cannot reach y" {
		t.Errorf("String() = %q", got)
	}
	f.Step = -1
	if got := f.String(); got != "[final] reachability: x cannot reach y" {
		t.Errorf("final String() = %q", got)
	}
}
