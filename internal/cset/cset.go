// Package cset implements the conceptual foundation of Liu & Lam
// (ICDCS 2003, §3): notification sets, the classification of multiple
// joins (sequential / concurrent, independent / dependent), C-set tree
// templates C(V,W) (Definition 3.9), realized C-set trees cset(V,W)
// (Definition 5.1), and checkers for the three consistency conditions of
// §3.3.
//
// C-set trees are conceptual structures used for reasoning about
// consistency — the paper is explicit that they are not implemented in
// any node. Accordingly this package is a verification and analysis tool:
// simulations and tests use it to confirm that a finished join wave
// realized the tree that the theory predicts.
package cset

import (
	"fmt"
	"sort"
	"strings"

	"hypercube/internal/id"
	"hypercube/internal/netcheck"
	"hypercube/internal/table"
)

// NotifySuffix computes the suffix ω identifying the notification set
// V_ω of joining node x regarding the member set indexed by reg
// (Definition 3.4): ω is the longest suffix of x.ID carried by at least
// one member. The empty suffix means the notification set is all of V.
func NotifySuffix(p id.Params, reg *netcheck.SuffixRegistry, x id.ID) id.Suffix {
	k := 0
	for k < p.D && reg.Has(x.Suffix(k+1)) {
		k++
	}
	return x.Suffix(k)
}

// Interval is a joining period [Begin, End] (Definition 3.1).
type Interval struct {
	Begin, End float64
}

func (iv Interval) overlaps(other Interval) bool {
	return iv.Begin <= other.End && other.Begin <= iv.End
}

// Sequential reports whether the joining periods are pairwise
// non-overlapping (Definition 3.2).
func Sequential(periods []Interval) bool {
	for i := range periods {
		for j := i + 1; j < len(periods); j++ {
			if periods[i].overlaps(periods[j]) {
				return false
			}
		}
	}
	return true
}

// Concurrent reports whether the joins are concurrent per Definition 3.3:
// every period overlaps some other period, and the union of the periods
// covers [min Begin, max End] without gaps.
func Concurrent(periods []Interval) bool {
	if len(periods) < 2 {
		return false
	}
	for i := range periods {
		any := false
		for j := range periods {
			if i != j && periods[i].overlaps(periods[j]) {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	sorted := make([]Interval, len(periods))
	copy(sorted, periods)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Begin < sorted[j].Begin })
	reach := sorted[0].End
	for _, iv := range sorted[1:] {
		if iv.Begin > reach {
			return false // a sub-interval overlaps no joining period
		}
		if iv.End > reach {
			reach = iv.End
		}
	}
	return true
}

// comparable reports whether one suffix is a suffix of the other, which
// for non-empty notification sets is equivalent to the sets intersecting.
func comparableSuffixes(a, b id.Suffix) bool {
	return a.IsSuffixOf(b) || b.IsSuffixOf(a)
}

// Independent reports whether the joins of W into the network indexed by
// reg are independent (Definition 3.5): pairwise disjoint notification
// sets.
func Independent(p id.Params, reg *netcheck.SuffixRegistry, w []id.ID) bool {
	suffixes := make([]id.Suffix, len(w))
	for i, x := range w {
		suffixes[i] = NotifySuffix(p, reg, x)
	}
	for i := range suffixes {
		for j := i + 1; j < len(suffixes); j++ {
			if comparableSuffixes(suffixes[i], suffixes[j]) {
				return false
			}
		}
	}
	return true
}

// DependencyGroups partitions W into maximal groups of mutually dependent
// joins, following the grouping procedure in the proof of Lemma 5.5.
// Joins in the same group are dependent (directly or through a chain);
// joins in different groups are mutually independent. Groups preserve the
// input order of their members; groups are ordered by first member.
func DependencyGroups(p id.Params, reg *netcheck.SuffixRegistry, w []id.ID) [][]id.ID {
	n := len(w)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	suffixes := make([]id.Suffix, n)
	for i, x := range w {
		suffixes[i] = NotifySuffix(p, reg, x)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if comparableSuffixes(suffixes[i], suffixes[j]) {
				union(i, j)
			}
		}
	}
	groups := make(map[int][]id.ID)
	var order []int
	for i, x := range w {
		root := find(i)
		if _, seen := groups[root]; !seen {
			order = append(order, root)
		}
		groups[root] = append(groups[root], x)
	}
	out := make([][]id.ID, 0, len(order))
	for _, root := range order {
		out = append(out, groups[root])
	}
	return out
}

// Node is one C-set in a C-set tree. In a template, Members is nil; in a
// realized tree it lists the nodes filled into the C-set.
type Node struct {
	Suffix   id.Suffix
	Children []*Node // sorted by leading digit
	Members  []id.ID // realized members, sorted; nil in templates
}

// Child returns the child with leading digit j, or nil.
func (n *Node) Child(j int) *Node {
	for _, c := range n.Children {
		if c.Suffix.Leading() == j {
			return c
		}
	}
	return nil
}

// Tree is a C-set tree: the root represents the suffix set V_ω (which is
// not itself a C-set); every descendant is a C-set.
type Tree struct {
	// RootSuffix is ω, the suffix of the notification set at the root.
	RootSuffix id.Suffix
	// Roots are the children of V_ω, i.e. the first-level C-sets.
	Roots []*Node
}

// Walk visits every C-set in depth-first order.
func (t *Tree) Walk(fn func(n *Node, depth int)) {
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		fn(n, depth)
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		rec(r, 1)
	}
}

// Find returns the C-set with the given suffix, or nil.
func (t *Tree) Find(s id.Suffix) *Node {
	var found *Node
	t.Walk(func(n *Node, _ int) {
		if n.Suffix == s {
			found = n
		}
	})
	return found
}

// Size returns the number of C-sets in the tree.
func (t *Tree) Size() int {
	c := 0
	t.Walk(func(*Node, int) { c++ })
	return c
}

// String renders the tree with indentation, Figure-2 style.
func (t *Tree) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "V_%v\n", t.RootSuffix)
	t.Walk(func(n *Node, depth int) {
		fmt.Fprintf(&sb, "%sC_%v", strings.Repeat("  ", depth), n.Suffix)
		if n.Members != nil {
			ids := make([]string, len(n.Members))
			for i, m := range n.Members {
				ids[i] = m.String()
			}
			fmt.Fprintf(&sb, " = {%s}", strings.Join(ids, ", "))
		}
		sb.WriteByte('\n')
	})
	return sb.String()
}

// Template builds the C-set tree template C(V,W) of Definition 3.9 for
// the joining nodes w whose notification suffix is omega: the tree
// contains a C-set for every suffix extending omega that is carried by at
// least one node in w.
func Template(p id.Params, w []id.ID, omega id.Suffix) *Tree {
	t := &Tree{RootSuffix: omega}
	var build func(parentSuffix id.Suffix) []*Node
	build = func(parentSuffix id.Suffix) []*Node {
		if parentSuffix.Len() >= p.D {
			return nil
		}
		var kids []*Node
		for j := 0; j < p.B; j++ {
			s := parentSuffix.Extend(j)
			if !anyHasSuffix(w, s) {
				continue
			}
			n := &Node{Suffix: s}
			n.Children = build(s)
			kids = append(kids, n)
		}
		return kids
	}
	t.Roots = build(omega)
	return t
}

func anyHasSuffix(w []id.ID, s id.Suffix) bool {
	for _, x := range w {
		if x.HasSuffix(s) {
			return true
		}
	}
	return false
}

// Realized builds cset(V,W) per Definition 5.1 from the final neighbor
// tables: C_{l·ω} is the set of nodes of W with suffix l·ω stored as the
// (|ω|, l)-neighbor of at least one node in V_ω; deeper C-sets chain from
// their parent's members.
func Realized(p id.Params, v, w []id.ID, omega id.Suffix, tables map[id.ID]*table.Table) *Tree {
	t := &Tree{RootSuffix: omega}
	wSet := make(map[id.ID]struct{}, len(w))
	for _, x := range w {
		wSet[x] = struct{}{}
	}
	vOmega := make([]id.ID, 0, len(v))
	for _, u := range v {
		if u.HasSuffix(omega) {
			vOmega = append(vOmega, u)
		}
	}

	k := omega.Len()
	var build func(parents []id.ID, parentSuffix id.Suffix, level int) []*Node
	build = func(parents []id.ID, parentSuffix id.Suffix, level int) []*Node {
		if level >= p.D {
			return nil
		}
		var kids []*Node
		for j := 0; j < p.B; j++ {
			s := parentSuffix.Extend(j)
			memberSet := make(map[id.ID]struct{})
			for _, u := range parents {
				tbl, ok := tables[u]
				if !ok {
					continue
				}
				e := tbl.Get(level, j)
				if e.IsZero() {
					continue
				}
				if _, inW := wSet[e.ID]; inW && e.ID.HasSuffix(s) {
					memberSet[e.ID] = struct{}{}
				}
			}
			if len(memberSet) == 0 {
				continue
			}
			members := make([]id.ID, 0, len(memberSet))
			for x := range memberSet {
				members = append(members, x)
			}
			sort.Slice(members, func(a, b int) bool { return members[a].Less(members[b]) })
			n := &Node{Suffix: s, Members: members}
			n.Children = build(members, s, level+1)
			kids = append(kids, n)
		}
		return kids
	}
	t.Roots = build(vOmega, omega, k)
	return t
}

// Problem describes a violation of one of the §3.3 conditions.
type Problem struct {
	Condition int // 1, 2, or 3
	Detail    string
}

// String renders the problem.
func (p Problem) String() string { return fmt.Sprintf("condition (%d): %s", p.Condition, p.Detail) }

// VerifyConditions checks the three conditions of §3.3 on a realized tree
// against its template:
//
//	(1) cset(V,W) has the template's structure and no C-set is empty;
//	(2) every node of V_ω stores, for each child C-set of the root, a node
//	    with that C-set's suffix;
//	(3) every x in W stores, for each sibling C-set along the path from
//	    its leaf to the root, a node with the sibling's suffix.
func VerifyConditions(p id.Params, template, realized *Tree, v, w []id.ID, tables map[id.ID]*table.Table) []Problem {
	var out []Problem

	// Condition (1): identical structure, all realized C-sets non-empty.
	var walk func(tn, rn *Node)
	walk = func(tn, rn *Node) {
		if rn == nil {
			out = append(out, Problem{1, fmt.Sprintf("C-set %v in template but not realized", tn.Suffix)})
			return
		}
		if len(rn.Members) == 0 {
			out = append(out, Problem{1, fmt.Sprintf("realized C-set %v is empty", rn.Suffix)})
		}
		for _, tc := range tn.Children {
			walk(tc, rn.Child(tc.Suffix.Leading()))
		}
		for _, rc := range rn.Children {
			if tn.Child(rc.Suffix.Leading()) == nil {
				out = append(out, Problem{1, fmt.Sprintf("realized C-set %v not in template", rc.Suffix)})
			}
		}
	}
	rootByDigit := func(tr *Tree, j int) *Node {
		for _, r := range tr.Roots {
			if r.Suffix.Leading() == j {
				return r
			}
		}
		return nil
	}
	for _, tn := range template.Roots {
		walk(tn, rootByDigit(realized, tn.Suffix.Leading()))
	}
	for _, rn := range realized.Roots {
		if rootByDigit(template, rn.Suffix.Leading()) == nil {
			out = append(out, Problem{1, fmt.Sprintf("realized root C-set %v not in template", rn.Suffix)})
		}
	}

	// Condition (2): V_ω members cover every root child.
	k := template.RootSuffix.Len()
	for _, u := range v {
		if !u.HasSuffix(template.RootSuffix) {
			continue
		}
		tbl, ok := tables[u]
		if !ok {
			out = append(out, Problem{2, fmt.Sprintf("no table for V_ω member %v", u)})
			continue
		}
		for _, child := range template.Roots {
			e := tbl.Get(k, child.Suffix.Leading())
			if e.IsZero() || !e.ID.HasSuffix(child.Suffix) {
				out = append(out, Problem{2, fmt.Sprintf("node %v lacks a neighbor with suffix %v", u, child.Suffix)})
			}
		}
	}

	// Condition (3): sibling coverage along each joiner's leaf-to-root path.
	for _, x := range w {
		tbl, ok := tables[x]
		if !ok {
			out = append(out, Problem{3, fmt.Sprintf("no table for joiner %v", x)})
			continue
		}
		// The path from the root to x's leaf: suffixes of x extending ω.
		parent := template.RootSuffix
		parentChildren := template.Roots
		for depth := k; depth < p.D; depth++ {
			own := x.Suffix(depth + 1)
			var ownNode *Node
			for _, c := range parentChildren {
				if c.Suffix != own {
					// Sibling C-set: x must store a node with its suffix
					// in entry (depth, leading digit).
					e := tbl.Get(depth, c.Suffix.Leading())
					if e.IsZero() || !e.ID.HasSuffix(c.Suffix) {
						out = append(out, Problem{3, fmt.Sprintf("joiner %v lacks a neighbor with sibling suffix %v", x, c.Suffix)})
					}
				} else {
					ownNode = c
				}
			}
			if ownNode == nil {
				out = append(out, Problem{3, fmt.Sprintf("template has no C-set %v on joiner %v's path", own, x)})
				break
			}
			if own.Len() == p.D {
				break // reached x's leaf
			}
			parent = own
			parentChildren = ownNode.Children
		}
		_ = parent
	}
	return out
}
