package core_test

import (
	"testing"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
)

// syncNet builds a consistent 6-node network for sync/audit tests.
func syncNet(t *testing.T) (*pump, id.Params) {
	t.Helper()
	p := id.Params{B: 4, D: 4}
	pp := newPump(t, p, nil)
	seed := core.NewSeed(p, ref(p, "0000"), core.Options{})
	pp.add(seed)
	var joiners []*core.Machine
	for _, s := range []string{"1111", "2222", "3333", "0011", "0101"} {
		joiners = append(joiners, core.NewJoiner(p, ref(p, s), core.Options{}))
	}
	joinAll(pp, seed.Self(), joiners)
	pp.requireConsistent()
	return pp, p
}

// occupants returns the set of distinct non-self occupants of m's table.
func occupants(m *core.Machine) map[id.ID]bool {
	out := make(map[id.ID]bool)
	self := m.Self().ID
	m.Table().ForEach(func(_, _ int, n table.Neighbor) {
		if n.ID != self {
			out[n.ID] = true
		}
	})
	return out
}

func TestSyncRoundRepairsDivergence(t *testing.T) {
	pp, p := syncNet(t)
	a := pp.machines[id.MustParse(p, "1111")]
	b := pp.machines[id.MustParse(p, "2222")]
	inB := occupants(b)
	inA := occupants(a)

	// Simulate lost notifications: blank one entry on each side, each
	// holding a node the other side still knows. The sets are disjoint so
	// the A<->B exchange is the only way back.
	var coordA, coordB [2]int
	var lostA, lostB id.ID
	a.Table().ForEach(func(level, digit int, n table.Neighbor) {
		if lostA.IsNull() && n.ID != a.Self().ID && inB[n.ID] {
			coordA, lostA = [2]int{level, digit}, n.ID
		}
	})
	b.Table().ForEach(func(level, digit int, n table.Neighbor) {
		if lostB.IsNull() && n.ID != b.Self().ID && n.ID != lostA && inA[n.ID] {
			coordB, lostB = [2]int{level, digit}, n.ID
		}
	})
	if lostA.IsNull() || lostB.IsNull() {
		t.Fatal("test network too sparse to stage divergence")
	}
	a.Table().Set(coordA[0], coordA[1], table.Neighbor{})
	b.Table().Set(coordB[0], coordB[1], table.Neighbor{})

	// One push-pull round initiated by A repairs both sides.
	pp.enqueue(a.StartSync(b.Self()))
	pp.run()
	if got := a.Table().Get(coordA[0], coordA[1]).ID; got != lostA {
		t.Fatalf("A entry %v = %v after sync, want %v", coordA, got, lostA)
	}
	if got := b.Table().Get(coordB[0], coordB[1]).ID; got != lostB {
		t.Fatalf("B entry %v = %v after sync (push leg), want %v", coordB, got, lostB)
	}
	if a.SyncPulled() == 0 {
		t.Fatal("SyncPulled did not count the repaired entry")
	}
	pp.requireConsistent()
}

func TestSyncGatedToSNodes(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	pp := newPump(t, p, nil)
	seed := core.NewSeed(p, ref(p, "0000"), core.Options{})
	pp.add(seed)
	joiner := core.NewJoiner(p, ref(p, "1111"), core.Options{})
	pp.add(joiner)
	// A node that has not joined yet neither initiates nor answers syncs.
	if out := joiner.StartSync(seed.Self()); out != nil {
		t.Fatalf("joiner initiated a sync: %v", out)
	}
	fill := seed.Table().FillVector()
	out := joiner.Deliver(msg.Envelope{From: seed.Self(), To: joiner.Self(), Msg: msg.SyncReq{Fill: fill}})
	if len(out) != 0 {
		t.Fatalf("joiner answered a sync request: %v", out)
	}
	// Self- and zero-peer syncs are no-ops.
	if out := seed.StartSync(seed.Self()); out != nil {
		t.Fatalf("self-sync produced traffic: %v", out)
	}
	if out := seed.StartSync(table.Ref{}); out != nil {
		t.Fatalf("zero-peer sync produced traffic: %v", out)
	}
}

func TestAuditPurgesGhostAndWrongSuffix(t *testing.T) {
	pp, p := syncNet(t)
	a := pp.machines[id.MustParse(p, "1111")]
	victim := pp.machines[id.MustParse(p, "2222")]
	stray := pp.machines[id.MustParse(p, "3333")] // distinct from victim: DeclareFailed below wipes victim everywhere

	// Wrong suffix: plant a live node in an entry it does not qualify
	// for. In a consistent table every empty entry has no qualifying
	// member, so after the purge it legally stays empty.
	var wrongCoord [2]int
	found := false
	for level := 0; level < p.D && !found; level++ {
		for digit := 0; digit < p.B && !found; digit++ {
			if a.Table().Get(level, digit).IsZero() && !a.Table().Qualifies(level, digit, stray.Self().ID) {
				wrongCoord = [2]int{level, digit}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no empty non-qualifying entry to corrupt")
	}
	a.Table().Set(wrongCoord[0], wrongCoord[1], table.Neighbor{ID: stray.Self().ID, Addr: stray.Self().Addr, State: table.StateS})

	// Ghost: a node A knows failed creeps back in (e.g. via a stale
	// peer's table copy) at its canonical coordinate.
	_ = a.DeclareFailed(victim.Self()) // traffic dropped: only A's verdict matters here
	k := a.Self().ID.CommonSuffixLen(victim.Self().ID)
	ghostCoord := [2]int{k, victim.Self().ID.Digit(k)}
	a.Table().Set(ghostCoord[0], ghostCoord[1], table.Neighbor{ID: victim.Self().ID, Addr: victim.Self().Addr, State: table.StateS})

	purged, _ := a.AuditTable()
	if purged != 2 || a.AuditPurged() != 2 {
		t.Fatalf("purged %d (total %d), want both corruptions gone", purged, a.AuditPurged())
	}
	if got := a.Table().Get(wrongCoord[0], wrongCoord[1]); !got.IsZero() {
		t.Fatalf("wrong-suffix entry still occupied: %+v", got)
	}
	if got := a.Table().Get(ghostCoord[0], ghostCoord[1]).ID; got == victim.Self().ID {
		t.Fatal("ghost survived the audit")
	}

	// Audit is idempotent once the table is clean.
	if again, _ := a.AuditTable(); again != 0 {
		t.Fatalf("second audit purged %d entries from a clean table", again)
	}
}
