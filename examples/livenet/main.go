// Live network: the join protocol running for real — first on the
// goroutine-per-node runtime (scheduler-driven concurrency), then over
// actual TCP sockets on localhost, and finally over TCP with an
// injected 10% write-drop rate plus periodic connection kills to show
// the reliable-delivery layer (retry + backoff + redial) earning the
// paper's reliable-network assumption. The same core.Machine state
// machine drives all three; no simulation involved.
package main

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"sync"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/overlay"
	"hypercube/internal/transport"
	"hypercube/internal/transport/tcptransport"
)

func main() {
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	p := id.Params{B: 16, D: 4}
	if err := runGoroutines(p); err != nil {
		log.Error("goroutine runtime failed", "err", err)
		os.Exit(1)
	}
	if err := runTCP(p); err != nil {
		log.Error("TCP runtime failed", "err", err)
		os.Exit(1)
	}
	if err := runLossyTCP(p); err != nil {
		log.Error("lossy TCP runtime failed", "err", err)
		os.Exit(1)
	}
}

// runGoroutines joins 64 nodes concurrently, one goroutine per node.
func runGoroutines(p id.Params) error {
	fmt.Println("== goroutine runtime: 64 nodes, all joining at once ==")
	rt := transport.NewRuntime(p, core.Options{})
	defer rt.Close()

	rng := rand.New(rand.NewSource(5))
	refs := overlay.RandomRefs(p, 64, rng, nil)
	if err := rt.AddSeed(refs[0]); err != nil {
		return err
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, len(refs))
	for _, ref := range refs[1:] {
		ref := ref
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- rt.Join(ref, refs[0])
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := rt.AwaitQuiescence(ctx); err != nil {
		return err
	}
	if v := rt.CheckConsistency(); len(v) != 0 {
		return fmt.Errorf("inconsistent: %v", v[0])
	}
	fmt.Printf("63 concurrent joins quiesced in %v; network consistent\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runTCP joins 12 nodes over real localhost TCP connections.
func runTCP(p id.Params) error {
	fmt.Println("== TCP runtime: 12 nodes over localhost sockets ==")
	rng := rand.New(rand.NewSource(9))
	seen := make(map[id.ID]bool)
	draw := func() id.ID {
		for {
			x := id.Random(p, rng)
			if !seen[x] {
				seen[x] = true
				return x
			}
		}
	}
	seed, err := tcptransport.StartSeed(p, core.Options{}, draw(), "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer seed.Close()
	fmt.Printf("seed %v listening on %s\n", seed.Ref().ID, seed.Ref().Addr)

	start := time.Now()
	nodes := []*tcptransport.Node{seed}
	for i := 0; i < 11; i++ {
		n, err := tcptransport.StartJoiner(p, core.Options{}, draw(), "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer n.Close()
		if err := n.Join(seed.Ref()); err != nil {
			return err
		}
		nodes = append(nodes, n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, n := range nodes[1:] {
		if err := n.AwaitStatus(ctx, core.StatusInSystem); err != nil {
			return err
		}
	}
	fmt.Printf("11 TCP joins completed in %v\n", time.Since(start).Round(time.Millisecond))
	for _, n := range nodes {
		c := n.Counters()
		fmt.Printf("  node %v @ %-21s status %-9v  sent %3d msgs (%d bytes)\n",
			n.Ref().ID, n.Ref().Addr, n.Status(), c.TotalSent(), c.BytesSent)
	}
	return nil
}

// runLossyTCP joins 8 nodes over TCP while the fault injector drops 10%
// of write attempts and kills every 30th connection write; the delivery
// layer's retries keep every join on track.
func runLossyTCP(p id.Params) error {
	fmt.Println("\n== lossy TCP runtime: 8 nodes, 10% write drops + connection kills ==")
	faults := tcptransport.NewFaults(3)
	faults.DropRate = 0.10
	faults.KillEvery = 30
	opts := []tcptransport.Option{
		tcptransport.WithFaults(faults),
		tcptransport.WithMaxAttempts(10),
		tcptransport.WithBackoff(2*time.Millisecond, 50*time.Millisecond),
	}

	rng := rand.New(rand.NewSource(17))
	seen := make(map[id.ID]bool)
	draw := func() id.ID {
		for {
			x := id.Random(p, rng)
			if !seen[x] {
				seen[x] = true
				return x
			}
		}
	}
	seed, err := tcptransport.StartSeed(p, core.Options{}, draw(), "127.0.0.1:0", opts...)
	if err != nil {
		return err
	}
	defer seed.Close()

	start := time.Now()
	nodes := []*tcptransport.Node{seed}
	for i := 0; i < 7; i++ {
		n, err := tcptransport.StartJoiner(p, core.Options{}, draw(), "127.0.0.1:0", opts...)
		if err != nil {
			return err
		}
		defer n.Close()
		if err := n.Join(seed.Ref()); err != nil {
			return err
		}
		nodes = append(nodes, n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, n := range nodes[1:] {
		if err := n.AwaitStatus(ctx, core.StatusInSystem); err != nil {
			return err
		}
	}
	retried, dropped := 0, 0
	for _, n := range nodes {
		c := n.Counters()
		retried += c.TotalRetried()
		dropped += c.TotalDropped()
	}
	fmt.Printf("7 joins completed in %v despite %d injected drops and %d kills\n",
		time.Since(start).Round(time.Millisecond), faults.Drops(), faults.Kills())
	fmt.Printf("delivery layer: %d retries, %d dead-letters\n", retried, dropped)
	return nil
}
