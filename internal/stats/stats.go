// Package stats provides the small statistical toolkit the experiment
// harness needs: empirical CDFs (Figure 15(b) is a CDF plot), histograms,
// and summary statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual summary statistics of an integer sample.
type Summary struct {
	Count  int
	Min    int
	Max    int
	Mean   float64
	Median float64
	P90    float64
	P99    float64
	StdDev float64
}

// Summarize computes summary statistics; the zero Summary for empty input.
func Summarize(samples []int) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := make([]int, len(samples))
	copy(sorted, samples)
	sort.Ints(sorted)
	s := Summary{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
	}
	total := 0.0
	for _, v := range sorted {
		total += float64(v)
	}
	s.Mean = total / float64(len(sorted))
	var sq float64
	for _, v := range sorted {
		d := float64(v) - s.Mean
		sq += d * d
	}
	s.StdDev = math.Sqrt(sq / float64(len(sorted)))
	s.Median = Percentile(sorted, 0.5)
	s.P90 = Percentile(sorted, 0.9)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-quantile (0<=p<=1) of a sorted sample using
// linear interpolation. It panics on an empty sample or p outside [0,1].
func Percentile(sorted []int, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,1]", p))
	}
	if len(sorted) == 1 {
		return float64(sorted[0])
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return float64(sorted[lo])
	}
	frac := pos - float64(lo)
	return float64(sorted[lo])*(1-frac) + float64(sorted[hi])*frac
}

// CDF is an empirical cumulative distribution over integer values.
type CDF struct {
	sorted []int
}

// NewCDF builds the CDF of the sample (which is copied).
func NewCDF(samples []int) CDF {
	sorted := make([]int, len(samples))
	copy(sorted, samples)
	sort.Ints(sorted)
	return CDF{sorted: sorted}
}

// Len returns the sample size.
func (c CDF) Len() int { return len(c.sorted) }

// At returns P[X <= x].
func (c CDF) At(x int) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.SearchInts(c.sorted, x+1)
	return float64(i) / float64(len(c.sorted))
}

// Points evaluates the CDF at every integer in [lo, hi], producing the
// series a plot like Figure 15(b) needs.
func (c CDF) Points(lo, hi int) []Point {
	out := make([]Point, 0, hi-lo+1)
	for x := lo; x <= hi; x++ {
		out = append(out, Point{X: float64(x), Y: c.At(x)})
	}
	return out
}

// Point is one (x,y) pair of a series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points, the unit the experiment tools
// print.
type Series struct {
	Label  string
	Points []Point
}

// FormatTable renders series as an aligned text table with a shared X
// column, suitable for terminal output or gnuplot.
func FormatTable(series []Series, xName string) string {
	if len(series) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s", xName)
	for _, s := range series {
		fmt.Fprintf(&sb, " %24s", s.Label)
	}
	sb.WriteByte('\n')
	n := 0
	for _, s := range series {
		if len(s.Points) > n {
			n = len(s.Points)
		}
	}
	for i := 0; i < n; i++ {
		var x float64
		for _, s := range series {
			if i < len(s.Points) {
				x = s.Points[i].X
				break
			}
		}
		fmt.Fprintf(&sb, "%-12g", x)
		for _, s := range series {
			if i < len(s.Points) {
				fmt.Fprintf(&sb, " %24.4f", s.Points[i].Y)
			} else {
				fmt.Fprintf(&sb, " %24s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Histogram counts integer samples into unit-width bins.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram builds a histogram from samples.
func NewHistogram(samples []int) *Histogram {
	h := &Histogram{counts: make(map[int]int)}
	for _, v := range samples {
		h.counts[v]++
		h.total++
	}
	return h
}

// Count returns the number of samples equal to x.
func (h *Histogram) Count(x int) int { return h.counts[x] }

// Total returns the sample size.
func (h *Histogram) Total() int { return h.total }

// String renders the histogram with proportional bars.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "(empty)\n"
	}
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	maxCount := 0
	for _, k := range keys {
		if h.counts[k] > maxCount {
			maxCount = h.counts[k]
		}
	}
	var sb strings.Builder
	for _, k := range keys {
		bar := int(math.Round(40 * float64(h.counts[k]) / float64(maxCount)))
		fmt.Fprintf(&sb, "%6d | %-40s %d\n", k, strings.Repeat("#", bar), h.counts[k])
	}
	return sb.String()
}
