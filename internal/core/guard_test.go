package core_test

import (
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/guard"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
)

// hostileMsg is a message type no protocol handler knows about.
type hostileMsg struct{}

func (hostileMsg) Type() msg.Type { return msg.Type(77) }
func (hostileMsg) Big() bool      { return false }
func (hostileMsg) WireSize() int  { return 1 }

// Regression for the Deliver panic on unknown message types: the machine
// must count and drop, never crash.
func TestDeliverUnknownTypeDropped(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	seed := core.NewSeed(p, ref(p, "3210"), core.Options{})
	out := seed.Deliver(msg.Envelope{From: ref(p, "0123"), To: seed.Self(), Msg: hostileMsg{}})
	if len(out) != 0 {
		t.Errorf("unknown message produced %d replies, want 0", len(out))
	}
	if got := seed.GuardStats().Rejected; got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}
	if got := seed.Counters().TotalRejected(); got != 1 {
		t.Errorf("TotalRejected = %d, want 1", got)
	}
}

// Regression: a hostile RvNghNotiRly with out-of-range coordinates used to
// reach Table.SetState and panic.
func TestDeliverOutOfRangeCoordsRejected(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	seed := core.NewSeed(p, ref(p, "3210"), core.Options{})
	for _, pm := range []msg.Message{
		msg.RvNghNotiRly{Level: 17, Digit: 0, State: table.StateS},
		msg.RvNghNotiRly{Level: 0, Digit: -4, State: table.StateS},
		msg.RvNghNoti{Level: -1, Digit: 0, State: table.StateS},
		msg.CpRst{Level: p.D},
	} {
		out := seed.Deliver(msg.Envelope{From: ref(p, "0123"), To: seed.Self(), Msg: pm})
		if len(out) != 0 {
			t.Errorf("%v: produced %d replies, want 0", pm.Type(), len(out))
		}
	}
	if got := seed.GuardStats().Rejected; got != 4 {
		t.Errorf("Rejected = %d, want 4", got)
	}
}

// Regression: a Find whose wanted suffix is fully carried by the receiver
// while the receiver is the avoided node used to index entry (|Want|, ·)
// and panic. It must answer Blocked.
func TestFindAvoidingSelfAnswersBlocked(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	self := ref(p, "3210")
	origin := ref(p, "0123")
	seed := core.NewSeed(p, self, core.Options{})
	out := seed.Deliver(msg.Envelope{From: origin, To: self, Msg: msg.Find{
		Want:   id.MustParseSuffix(p, "3210"),
		Origin: origin,
		Avoid:  self.ID,
	}})
	if len(out) != 1 {
		t.Fatalf("produced %d replies, want 1", len(out))
	}
	rly, ok := out[0].Msg.(msg.FindRly)
	if !ok || !rly.Blocked {
		t.Fatalf("reply = %#v, want blocked FindRly", out[0].Msg)
	}
}

// TestMachineQuarantineLifecycle drives the full quarantine loop through
// Deliver: repeated malformed messages quarantine the sender, whose
// traffic is then dropped at ingress until the cooldown expires.
func TestMachineQuarantineLifecycle(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	self := ref(p, "3210")
	attacker := ref(p, "0123")
	pol := guard.Policy{Threshold: 3, Decay: time.Second, Cooldown: 10 * time.Second}
	seed := core.NewSeed(p, self, core.Options{Guard: &pol})
	var now time.Duration
	seed.SetClock(func() time.Duration { return now })

	bad := msg.Envelope{From: attacker, To: self, Msg: msg.CpRst{Level: 99}}
	for i := 0; i < 3; i++ {
		seed.Deliver(bad)
	}
	gs := seed.GuardStats()
	if gs.Rejected != 3 || gs.Scorer.Quarantines != 1 || gs.Scorer.Quarantined != 1 {
		t.Fatalf("after charges: %+v, want 3 rejected, 1 quarantine", gs)
	}

	// A perfectly valid request from the quarantined peer is dropped at
	// ingress — no reply, no handler side effects.
	good := msg.Envelope{From: attacker, To: self, Msg: msg.CpRst{Level: 0}}
	if out := seed.Deliver(good); len(out) != 0 {
		t.Fatalf("quarantined peer got %d replies, want 0", len(out))
	}
	if gs = seed.GuardStats(); gs.IngressDropped != 1 {
		t.Fatalf("IngressDropped = %d, want 1", gs.IngressDropped)
	}

	// The quarantined peer must not be reinstalled from gossip: harvest a
	// table carrying it and check it stays out of ours.
	gossiper := ref(p, "1110")
	gtbl := table.New(p, gossiper.ID)
	gtbl.Set(0, attacker.ID.Digit(0), table.Neighbor{ID: attacker.ID, Addr: attacker.Addr, State: table.StateS})
	seed.Deliver(msg.Envelope{From: gossiper, To: self, Msg: msg.SyncPush{Table: gtbl.Snapshot()}})
	k := self.ID.CommonSuffixLen(attacker.ID)
	if got := seed.Table().Get(k, attacker.ID.Digit(k)); got.ID == attacker.ID {
		t.Fatal("quarantined peer was installed from gossiped table")
	}

	// After the cooldown the peer is released and served again.
	now = 11 * time.Second
	out := seed.Deliver(good)
	if len(out) != 1 {
		t.Fatalf("released peer got %d replies, want 1", len(out))
	}
	if _, ok := out[0].Msg.(msg.CpRly); !ok {
		t.Fatalf("released peer got %T, want CpRly", out[0].Msg)
	}
	if gs = seed.GuardStats(); gs.Scorer.Releases != 1 || gs.Scorer.Quarantined != 0 {
		t.Fatalf("after cooldown: %+v, want 1 release, 0 active", gs)
	}
}

// TestDeferredJoinBudget: a T-node parks at most MaxDeferredJoins waiters;
// excess JoinWaits are shed and counted.
func TestDeferredJoinBudget(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	j := core.NewJoiner(p, ref(p, "3210"), core.Options{Budgets: core.Budgets{MaxDeferredJoins: 2}})
	for _, s := range []string{"0123", "1111", "2222"} {
		j.Deliver(msg.Envelope{From: ref(p, s), To: j.Self(), Msg: msg.JoinWait{}})
	}
	gs := j.GuardStats()
	if gs.BusyDeferred != 1 {
		t.Errorf("BusyDeferred = %d, want 1", gs.BusyDeferred)
	}
	if got := j.JoinStateSize(); got != 2 {
		t.Errorf("JoinStateSize = %d, want 2 parked joins", got)
	}
	// A repeat from an already-parked waiter is not shed.
	j.Deliver(msg.Envelope{From: ref(p, "0123"), To: j.Self(), Msg: msg.JoinWait{}})
	if gs = j.GuardStats(); gs.BusyDeferred != 1 {
		t.Errorf("repeat JoinWait shed: BusyDeferred = %d, want 1", gs.BusyDeferred)
	}
}

// TestReverseNeighborBudget: the reverse set stops growing at MaxReverse.
func TestReverseNeighborBudget(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	seed := core.NewSeed(p, ref(p, "3210"), core.Options{Budgets: core.Budgets{MaxReverse: 2}})
	for _, s := range []string{"0123", "1111", "2222", "0001"} {
		seed.AddReverseNeighbor(ref(p, s))
	}
	if got := len(seed.ReverseNeighbors()); got != 2 {
		t.Errorf("reverse set size = %d, want 2", got)
	}
	if gs := seed.GuardStats(); gs.BusyDeferred != 2 {
		t.Errorf("BusyDeferred = %d, want 2", gs.BusyDeferred)
	}
}
