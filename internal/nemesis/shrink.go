package nemesis

import (
	"time"

	"hypercube/internal/nemesis/oracle"
)

// ShrinkResult is a minimized schedule plus the findings it reproduces.
type ShrinkResult struct {
	Schedule Schedule         `json:"schedule"`
	Findings []oracle.Finding `json:"findings"`
	// Executions is how many schedule runs the search consumed.
	Executions int `json:"executions"`
}

// Shrink reduces a violating schedule to a (locally) minimal one that
// still reproduces a finding of the target check, by delta debugging:
// first ddmin over the action list (drop halves, then quarters, down to
// single actions), then per-action parameter shrinking (halve counts,
// durations, and gaps; drop the corrupt flag), then a halving pass over
// the base network size. Each candidate is judged by re-executing it —
// determinism makes one execution a definitive answer — and the search
// is bounded by maxExec runs (0 = default 200).
//
// The target is the Check of the finding being chased (normally the
// first finding of the original run); any finding of that check counts
// as a reproduction, since step indices shift while shrinking.
func Shrink(s Schedule, opt Options, target string, maxExec int) ShrinkResult {
	if maxExec <= 0 {
		maxExec = 200
	}
	sh := &shrinker{opt: opt, target: target, budget: maxExec}

	best, findings := s, []oracle.Finding(nil)
	if got, ok := sh.reproduces(s); !ok {
		// The caller's schedule does not reproduce under these options —
		// nothing to shrink.
		return ShrinkResult{Schedule: s, Executions: sh.executions}
	} else {
		findings = got
	}

	// Pass 1: ddmin over the step list.
	steps := best.Steps
	granularity := 2
	for len(steps) > 1 && granularity <= len(steps) && sh.budget > 0 {
		chunk := (len(steps) + granularity - 1) / granularity
		reduced := false
		for lo := 0; lo < len(steps); lo += chunk {
			hi := lo + chunk
			if hi > len(steps) {
				hi = len(steps)
			}
			cand := best
			cand.Steps = append(append([]Action{}, steps[:lo]...), steps[hi:]...)
			if len(cand.Steps) == 0 {
				continue
			}
			if got, ok := sh.reproduces(cand); ok {
				steps = cand.Steps
				best = cand
				findings = got
				reduced = true
				granularity = 2
				break
			}
		}
		if !reduced {
			granularity *= 2
		}
	}

	// Pass 2: per-action parameter shrinking, repeated to fixpoint.
	for changed := true; changed && sh.budget > 0; {
		changed = false
		for i := range best.Steps {
			for _, cand := range paramShrinks(best, i) {
				if got, ok := sh.reproduces(cand); ok {
					best = cand
					findings = got
					changed = true
					break
				}
			}
		}
	}

	// Pass 3: shrink the base network.
	for best.Nodes/2 >= genMinNodes && sh.budget > 0 {
		cand := best
		cand.Nodes = best.Nodes / 2
		got, ok := sh.reproduces(cand)
		if !ok {
			break
		}
		best = cand
		findings = got
	}

	return ShrinkResult{Schedule: best, Findings: findings, Executions: sh.executions}
}

type shrinker struct {
	opt        Options
	target     string
	budget     int
	executions int
}

// reproduces executes the candidate and reports whether any finding of
// the target check survives.
func (sh *shrinker) reproduces(s Schedule) ([]oracle.Finding, bool) {
	if sh.budget <= 0 {
		return nil, false
	}
	sh.budget--
	sh.executions++
	res, err := Execute(s, Options{SyncEvery: sh.opt.SyncEvery, ReachPairs: sh.opt.ReachPairs})
	if err != nil {
		return nil, false
	}
	for _, f := range res.Findings {
		if f.Check == sh.target {
			return res.Findings, true
		}
	}
	return nil, false
}

// paramShrinks enumerates smaller variants of step i, most aggressive
// first.
func paramShrinks(s Schedule, i int) []Schedule {
	a := s.Steps[i]
	var variants []Action
	if a.Count > 1 {
		variants = append(variants, with(a, func(a *Action) { a.Count /= 2 }))
	}
	if a.Dur > 500*time.Millisecond {
		variants = append(variants, with(a, func(a *Action) { a.Dur /= 2 }))
	}
	if a.Gap > 100*time.Millisecond {
		variants = append(variants, with(a, func(a *Action) { a.Gap /= 2 }))
	}
	if a.Corrupt {
		variants = append(variants, with(a, func(a *Action) { a.Corrupt = false }))
	}
	out := make([]Schedule, 0, len(variants))
	for _, v := range variants {
		cand := s
		cand.Steps = append([]Action{}, s.Steps...)
		cand.Steps[i] = v
		out = append(out, cand)
	}
	return out
}

func with(a Action, f func(*Action)) Action {
	f(&a)
	return a
}
