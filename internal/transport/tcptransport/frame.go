package tcptransport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/msg"
)

// Connections carry length-prefixed frames — a 4-byte big-endian header
// followed by one payload — instead of a single long-lived gob stream.
// Framing is what makes the inbound path defensible: the reader knows a
// frame's size before decoding it (so an oversized frame is rejected for
// the cost of 4 bytes), one undecodable payload no longer poisons the
// whole stream (the next frame starts at a known boundary, so malformed
// frames can be counted against a budget instead of silently killing the
// connection), and read deadlines bound how long a peer may stall
// mid-frame.
//
// The header's top bit discriminates the payload codec: set means a
// binary multi-envelope payload (internal/wire), clear means one
// gob-encoded wireEnvelope (the legacy codec, kept for one release as a
// fallback). The low 31 bits are the payload length, which caps any
// payload at maxFramePayload — large enough for every frame the
// coalescer can build (MaxFrameBytes tops out well below it) and small
// enough that the length prefix can never be silently truncated.

// frameHeaderLen is the size of the length prefix.
const frameHeaderLen = 4

// flagBinary marks a frame whose payload is a binary wire payload rather
// than a gob-encoded wireEnvelope.
const flagBinary = uint32(1) << 31

// maxFramePayload is the largest payload length the 31-bit length field
// can carry.
const maxFramePayload = int(flagBinary) - 1

// errFrameTooBig marks a frame whose declared payload exceeds the
// configured maximum: the reader disconnects without reading the payload.
var errFrameTooBig = errors.New("tcptransport: frame exceeds size limit")

// errPayloadTooBig marks an outbound payload too large for the 31-bit
// length field; encoding fails instead of truncating the prefix.
var errPayloadTooBig = errors.New("tcptransport: frame payload exceeds 31-bit length field")

// encodeFrame renders env as one gob wire frame, ready to write.
func encodeFrame(env wireEnvelope) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(make([]byte, frameHeaderLen))
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return nil, fmt.Errorf("tcptransport: encode frame: %w", err)
	}
	b := buf.Bytes()
	if len(b)-frameHeaderLen > maxFramePayload {
		return nil, errPayloadTooBig
	}
	binary.BigEndian.PutUint32(b[:frameHeaderLen], uint32(len(b)-frameHeaderLen))
	return b, nil
}

// finishBinaryFrame stamps the binary-codec header onto a frame whose
// first frameHeaderLen bytes were reserved by the caller and whose
// remainder is the payload.
func finishBinaryFrame(frame []byte) error {
	if len(frame)-frameHeaderLen > maxFramePayload {
		return errPayloadTooBig
	}
	binary.BigEndian.PutUint32(frame[:frameHeaderLen], uint32(len(frame)-frameHeaderLen)|flagBinary)
	return nil
}

// writeFrame writes one pre-encoded frame under a write deadline (0
// disables the deadline).
func writeFrame(conn net.Conn, frame []byte, timeout time.Duration) error {
	if timeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
		defer conn.SetWriteDeadline(time.Time{})
	}
	_, err := conn.Write(frame)
	return err
}

// readFrame reads one frame payload, enforcing the size limit and an
// idle deadline covering the whole frame (0 disables the deadline).
// isBinary reports which codec the sender used (the header's top bit).
// Oversized frames return errFrameTooBig without reading the payload.
func readFrame(conn net.Conn, maxBytes int, idle time.Duration) (payload []byte, isBinary bool, err error) {
	if idle > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(idle)); err != nil {
			return nil, false, err
		}
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, false, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	isBinary = n&flagBinary != 0
	n &^= flagBinary
	if int64(n) > int64(maxBytes) {
		return nil, isBinary, errFrameTooBig
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, isBinary, err
	}
	return payload, isBinary, nil
}

// decodeFrame parses one gob frame payload back into a wireEnvelope.
func decodeFrame(payload []byte) (wireEnvelope, error) {
	var w wireEnvelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&w); err != nil {
		return wireEnvelope{}, fmt.Errorf("tcptransport: decode frame: %w", err)
	}
	return w, nil
}

// EncodeGobPayload renders env as one gob frame payload (no length
// header). Exported for size measurements (cmd/msgsize) and differential
// codec tests; the transport itself uses the framed writers above.
func EncodeGobPayload(env msg.Envelope) ([]byte, error) {
	w, err := encodeEnvelope(env)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("tcptransport: encode frame: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeGobPayload parses one gob frame payload into a protocol
// envelope, applying the same codec-boundary validation the inbound
// path uses. Exported for differential codec tests.
func DecodeGobPayload(p id.Params, payload []byte) (msg.Envelope, error) {
	w, err := decodeFrame(payload)
	if err != nil {
		return msg.Envelope{}, err
	}
	return decodeEnvelope(p, w)
}
