// Package persist serializes neighbor-table snapshots to a stable JSON
// format, so a node can dump its routing state for diagnostics or reload
// it after a restart (restart + StartRejoin re-announces the node without
// rebuilding the table from scratch).
package persist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"hypercube/internal/id"
	"hypercube/internal/table"
)

// formatVersion guards against silently reading an incompatible dump.
const formatVersion = 1

// fileEntry is one non-empty table entry on disk.
type fileEntry struct {
	Level int    `json:"level"`
	Digit int    `json:"digit"`
	ID    string `json:"id"`
	Addr  string `json:"addr,omitempty"`
	State string `json:"state"`
}

// fileSnapshot is the on-disk form of a snapshot.
type fileSnapshot struct {
	Version int         `json:"version"`
	B       int         `json:"b"`
	D       int         `json:"d"`
	Owner   string      `json:"owner"`
	Lo      int         `json:"lo"`
	Hi      int         `json:"hi"`
	Entries []fileEntry `json:"entries"`
}

// Save writes the snapshot to w as JSON.
func Save(w io.Writer, snap table.Snapshot) error {
	if snap.IsZero() {
		return fmt.Errorf("persist: cannot save a zero snapshot")
	}
	p := snap.Params()
	lo, hi := snap.LevelRange()
	out := fileSnapshot{
		Version: formatVersion,
		B:       p.B,
		D:       p.D,
		Owner:   snap.Owner().String(),
		Lo:      lo,
		Hi:      hi,
	}
	snap.ForEach(func(level, digit int, n table.Neighbor) {
		out.Entries = append(out.Entries, fileEntry{
			Level: level, Digit: digit,
			ID: n.ID.String(), Addr: n.Addr, State: n.State.String(),
		})
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("persist: encode: %w", err)
	}
	return nil
}

// Load reads a snapshot from r, verifying it matches the expected ID
// space.
func Load(r io.Reader, p id.Params) (table.Snapshot, error) {
	var in fileSnapshot
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return table.Snapshot{}, fmt.Errorf("persist: decode: %w", err)
	}
	if in.Version != formatVersion {
		return table.Snapshot{}, fmt.Errorf("persist: format version %d, want %d", in.Version, formatVersion)
	}
	if in.B != p.B || in.D != p.D {
		return table.Snapshot{}, fmt.Errorf("persist: dump is for b=%d d=%d, want b=%d d=%d", in.B, in.D, p.B, p.D)
	}
	owner, err := id.Parse(p, in.Owner)
	if err != nil {
		return table.Snapshot{}, fmt.Errorf("persist: owner: %w", err)
	}
	entries := make(map[[2]int]table.Neighbor, len(in.Entries))
	for _, e := range in.Entries {
		x, err := id.Parse(p, e.ID)
		if err != nil {
			return table.Snapshot{}, fmt.Errorf("persist: entry (%d,%d): %w", e.Level, e.Digit, err)
		}
		var st table.State
		switch e.State {
		case "T":
			st = table.StateT
		case "S":
			st = table.StateS
		default:
			return table.Snapshot{}, fmt.Errorf("persist: entry (%d,%d): unknown state %q", e.Level, e.Digit, e.State)
		}
		entries[[2]int{e.Level, e.Digit}] = table.Neighbor{ID: x, Addr: e.Addr, State: st}
	}
	snap, err := table.NewSnapshot(p, owner, in.Lo, in.Hi, entries)
	if err != nil {
		return table.Snapshot{}, fmt.Errorf("persist: %w", err)
	}
	return snap, nil
}

// saveHook, when non-nil, runs after the snapshot bytes are written to
// the temp file but before it is synced and renamed into place. Tests
// use it to kill a save midway and prove the previous dump survives.
var saveHook func(tmp *os.File) error

// SaveFile writes the snapshot atomically: the bytes go to a temp file
// in the same directory, are fsynced, and only then renamed over path.
// A crash at any point leaves either the old dump or the new one, never
// a torn file — the rename is the commit point, and the fsync ensures
// the data is durable before the name flips to it.
func SaveFile(path string, snap table.Snapshot) error {
	tmp, err := os.CreateTemp(dirOf(path), ".table-*.json")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Save(tmp, snap); err != nil {
		tmp.Close()
		return err
	}
	if saveHook != nil {
		if err := saveHook(tmp); err != nil {
			tmp.Close()
			return fmt.Errorf("persist: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	syncDir(dirOf(path))
	return nil
}

// syncDir flushes the directory so the rename itself survives a crash.
// Best-effort: some filesystems refuse to sync directories, and the
// data file is already durable at this point.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	defer d.Close()
	_ = d.Sync()
}

// LoadFile reads a snapshot previously written by SaveFile.
func LoadFile(path string, p id.Params) (table.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return table.Snapshot{}, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	return Load(f, p)
}

// Restore materializes a mutable table from a snapshot.
func Restore(snap table.Snapshot) *table.Table {
	tbl := table.New(snap.Params(), snap.Owner())
	snap.ForEach(func(level, digit int, n table.Neighbor) {
		tbl.Set(level, digit, n)
	})
	return tbl
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
