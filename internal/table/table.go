// Package table implements the neighbor tables of the hypercube routing
// scheme: d levels of b entries, where the (i,j)-entry of node x points to
// a node whose ID shares the rightmost i digits with x.ID and whose i-th
// digit is j (Liu & Lam, ICDCS 2003, §2.1).
//
// As in the paper's join-protocol analysis, each entry stores a single
// primary neighbor together with a state bit (T = still joining,
// S = in system). Tables attached to protocol messages travel as
// immutable Snapshots.
package table

import (
	"fmt"
	"strings"

	"hypercube/internal/id"
)

// State records what the table owner believes about a neighbor's status.
type State uint8

const (
	// StateT marks a neighbor believed to still be joining (a T-node).
	StateT State = iota + 1
	// StateS marks a neighbor known to have status in_system (an S-node).
	StateS
)

// String renders the state as the paper's single-letter form.
func (s State) String() string {
	switch s {
	case StateT:
		return "T"
	case StateS:
		return "S"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Neighbor is the link information stored in a table entry: the neighbor's
// ID, its network address, and the owner's view of its state. The zero
// value represents an empty entry.
type Neighbor struct {
	ID    id.ID
	Addr  string // opaque transport address (IP:port in a deployment)
	State State
}

// IsZero reports whether the entry is empty (no neighbor).
func (n Neighbor) IsZero() bool { return n.ID.IsNull() }

// Ref is the ID/address pair without the state bit, used to identify a
// node in message envelopes.
type Ref struct {
	ID   id.ID
	Addr string
}

// IsZero reports whether the reference is empty.
func (r Ref) IsZero() bool { return r.ID.IsNull() }

// Ref extracts the neighbor's identity, dropping the state bit.
func (n Neighbor) Ref() Ref { return Ref{ID: n.ID, Addr: n.Addr} }

// Table is the mutable neighbor table owned by one node. It is not safe
// for concurrent use; every runtime drives a node from a single goroutine
// (or under a lock) and shares tables across nodes only via Snapshot.
type Table struct {
	params  id.Params
	owner   id.ID
	entries []Neighbor // d*b entries, row-major by level
	version uint64     // bumped on every mutation

	// Snapshot cache: protocol nodes snapshot their table far more often
	// than they mutate it (every reply carries a copy), so Snapshot
	// memoizes the last copy until the next mutation. Snapshots are
	// immutable, making the shared copy safe.
	snapCache   Snapshot
	snapVersion uint64
	snapValid   bool
}

// New returns an empty table for the given owner in space p.
func New(p id.Params, owner id.ID) *Table {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("table: invalid params: %v", err))
	}
	if owner.Len() != p.D {
		panic(fmt.Sprintf("table: owner %v has %d digits, want %d", owner, owner.Len(), p.D))
	}
	return &Table{
		params:  p,
		owner:   owner,
		entries: make([]Neighbor, p.D*p.B),
	}
}

// Params returns the ID-space parameters of the table.
func (t *Table) Params() id.Params { return t.params }

// Owner returns the ID of the node owning this table.
func (t *Table) Owner() id.ID { return t.owner }

func (t *Table) index(level, digit int) int {
	if level < 0 || level >= t.params.D || digit < 0 || digit >= t.params.B {
		panic(fmt.Sprintf("table: entry (%d,%d) out of range for b=%d d=%d",
			level, digit, t.params.B, t.params.D))
	}
	return level*t.params.B + digit
}

// Get returns the (level,digit)-entry; the zero Neighbor if empty.
func (t *Table) Get(level, digit int) Neighbor {
	return t.entries[t.index(level, digit)]
}

// Set stores n in the (level,digit)-entry, overwriting any previous value.
// Callers are responsible for the protocol rule of only filling empty
// entries; Set itself is unconditional so that the diagonal self-entries
// can be installed.
func (t *Table) Set(level, digit int, n Neighbor) {
	i := t.index(level, digit)
	if t.entries[i] == n {
		return
	}
	t.entries[i] = n
	t.version++
}

// SetState updates the state bit of the (level,digit)-entry if it
// currently holds node x; it reports whether an update happened.
func (t *Table) SetState(level, digit int, x id.ID, s State) bool {
	i := t.index(level, digit)
	if t.entries[i].ID != x {
		return false
	}
	if t.entries[i].State != s {
		t.entries[i].State = s
		t.version++
	}
	return true
}

// Version returns the mutation counter, usable for change detection.
func (t *Table) Version() uint64 { return t.version }

// DesiredSuffix returns the ID suffix every occupant of the (level,digit)-
// entry must have: digit · owner[level-1..0].
func (t *Table) DesiredSuffix(level, digit int) id.Suffix {
	if level < 0 || level >= t.params.D || digit < 0 || digit >= t.params.B {
		panic(fmt.Sprintf("table: entry (%d,%d) out of range", level, digit))
	}
	return t.owner.Suffix(level).Extend(digit)
}

// Qualifies reports whether node x may legally occupy the (level,digit)-
// entry, i.e. x has the entry's desired suffix.
func (t *Table) Qualifies(level, digit int, x id.ID) bool {
	return x.HasSuffix(t.DesiredSuffix(level, digit))
}

// FilledCount returns the number of non-empty entries.
func (t *Table) FilledCount() int {
	c := 0
	for _, e := range t.entries {
		if !e.IsZero() {
			c++
		}
	}
	return c
}

// ForEach calls fn for every non-empty entry in (level, digit) order.
func (t *Table) ForEach(fn func(level, digit int, n Neighbor)) {
	for i, e := range t.entries {
		if !e.IsZero() {
			fn(i/t.params.B, i%t.params.B, e)
		}
	}
}

// Snapshot returns an immutable deep copy suitable for embedding in a
// protocol message. Consecutive calls between mutations return the same
// shared (immutable) copy.
func (t *Table) Snapshot() Snapshot {
	if t.snapValid && t.snapVersion == t.version {
		return t.snapCache
	}
	entries := make([]Neighbor, len(t.entries))
	copy(entries, t.entries)
	t.snapCache = Snapshot{params: t.params, owner: t.owner, lo: 0, hi: t.params.D - 1, entries: entries}
	t.snapVersion = t.version
	t.snapValid = true
	return t.snapCache
}

// SnapshotLevels returns a snapshot restricted to levels lo..hi inclusive,
// implementing the paper's §6.2 message-size reduction (only the levels a
// receiver can use are shipped). Entries outside the range read as empty.
func (t *Table) SnapshotLevels(lo, hi int) Snapshot {
	if lo < 0 {
		lo = 0
	}
	if hi >= t.params.D {
		hi = t.params.D - 1
	}
	if lo > hi {
		return Snapshot{params: t.params, owner: t.owner, lo: 0, hi: -1}
	}
	n := (hi - lo + 1) * t.params.B
	entries := make([]Neighbor, n)
	copy(entries, t.entries[lo*t.params.B:(hi+1)*t.params.B])
	return Snapshot{params: t.params, owner: t.owner, lo: lo, hi: hi, entries: entries}
}

// FillVector returns the bit vector of §6.2: bit (level*b+digit) is set
// iff the entry is filled. A peer replying to a JoinNotiMsg uses it to
// ship only neighbors the requester is missing.
func (t *Table) FillVector() BitVector {
	v := NewBitVector(t.params.D * t.params.B)
	for i, e := range t.entries {
		if !e.IsZero() {
			v.Set(i)
		}
	}
	return v
}

// String renders the table in the style of the paper's Figure 1: levels
// from high to low, one row per digit value, empty entries blank.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Neighbor table of node %v (b=%d, d=%d)\n", t.owner, t.params.B, t.params.D)
	for j := 0; j < t.params.B; j++ {
		for i := t.params.D - 1; i >= 0; i-- {
			e := t.Get(i, j)
			cell := strings.Repeat(".", t.params.D)
			if !e.IsZero() {
				cell = fmt.Sprintf("%v/%v", e.ID, e.State)
			} else {
				cell += "  "
			}
			fmt.Fprintf(&sb, "%-*s ", t.params.D+2, cell)
		}
		fmt.Fprintf(&sb, "| digit %d\n", j)
	}
	return sb.String()
}

// Snapshot is an immutable copy of a table (possibly restricted to a level
// range). It is safe to share across goroutines.
type Snapshot struct {
	params  id.Params
	owner   id.ID
	lo, hi  int // inclusive level range; hi < lo means empty
	entries []Neighbor
}

// NewSnapshot assembles a snapshot from explicit parts — the inverse of a
// wire decoding. entries lists the non-empty entries with their
// coordinates; levels outside [lo,hi] are rejected. The input map is
// copied.
func NewSnapshot(p id.Params, owner id.ID, lo, hi int, entries map[[2]int]Neighbor) (Snapshot, error) {
	if err := p.Validate(); err != nil {
		return Snapshot{}, err
	}
	if owner.Len() != p.D {
		return Snapshot{}, fmt.Errorf("table: snapshot owner %v has %d digits, want %d", owner, owner.Len(), p.D)
	}
	if hi < lo {
		return Snapshot{params: p, owner: owner, lo: 0, hi: -1}, nil
	}
	if lo < 0 || hi >= p.D {
		return Snapshot{}, fmt.Errorf("table: snapshot level range [%d,%d] out of bounds", lo, hi)
	}
	out := make([]Neighbor, (hi-lo+1)*p.B)
	for pos, n := range entries {
		level, digit := pos[0], pos[1]
		if level < lo || level > hi || digit < 0 || digit >= p.B {
			return Snapshot{}, fmt.Errorf("table: snapshot entry (%d,%d) outside range", level, digit)
		}
		out[(level-lo)*p.B+digit] = n
	}
	return Snapshot{params: p, owner: owner, lo: lo, hi: hi, entries: out}, nil
}

// Validate checks the invariants a snapshot received from an untrusted
// peer must satisfy before any entry of it is harvested: every occupant's
// state is T or S, its ID has exactly d digits, and it carries the
// entry's desired suffix — digit · owner[level-1..0] (§2.1). NewSnapshot
// already enforces coordinate ranges; Validate covers the semantic rest.
// The zero snapshot (no table attached) is valid.
func (s Snapshot) Validate() error {
	if s.IsZero() {
		return nil
	}
	var bad error
	s.ForEach(func(level, digit int, n Neighbor) {
		if bad != nil {
			return
		}
		switch {
		case n.State != StateT && n.State != StateS:
			bad = fmt.Errorf("table: entry (%d,%d) has invalid state %d", level, digit, n.State)
		case n.ID.Len() != s.params.D:
			bad = fmt.Errorf("table: entry (%d,%d) occupant %v has %d digits, want %d",
				level, digit, n.ID, n.ID.Len(), s.params.D)
		case !n.ID.HasSuffix(s.owner.Suffix(level).Extend(digit)):
			bad = fmt.Errorf("table: entry (%d,%d) occupant %v lacks suffix %v",
				level, digit, n.ID, s.owner.Suffix(level).Extend(digit))
		}
	})
	return bad
}

// Params returns the ID-space parameters of the snapshot.
func (s Snapshot) Params() id.Params { return s.params }

// Owner returns the node whose table was snapshotted.
func (s Snapshot) Owner() id.ID { return s.owner }

// LevelRange returns the inclusive level range captured by the snapshot.
// An empty snapshot returns hi < lo.
func (s Snapshot) LevelRange() (lo, hi int) { return s.lo, s.hi }

// IsZero reports whether the snapshot carries no table at all (the zero
// value), as opposed to a snapshot of an empty table.
func (s Snapshot) IsZero() bool { return s.owner.IsNull() }

// Get returns the (level,digit)-entry, or the zero Neighbor if the entry
// is empty or outside the captured level range.
func (s Snapshot) Get(level, digit int) Neighbor {
	if level < s.lo || level > s.hi || digit < 0 || digit >= s.params.B {
		return Neighbor{}
	}
	return s.entries[(level-s.lo)*s.params.B+digit]
}

// ForEach calls fn for every non-empty captured entry in (level, digit)
// order.
func (s Snapshot) ForEach(fn func(level, digit int, n Neighbor)) {
	for i, e := range s.entries {
		if !e.IsZero() {
			fn(s.lo+i/s.params.B, i%s.params.B, e)
		}
	}
}

// FilledCount returns the number of non-empty entries captured.
func (s Snapshot) FilledCount() int {
	c := 0
	for _, e := range s.entries {
		if !e.IsZero() {
			c++
		}
	}
	return c
}

// WireSize estimates the encoded size of the snapshot in bytes, used by
// the cost accounting of §5.2. Each filled entry costs the ID digits plus
// a 6-byte address and a state byte; empty entries cost one presence bit.
func (s Snapshot) WireSize() int {
	bits := len(s.entries)
	filled := s.FilledCount()
	return (bits+7)/8 + filled*(s.params.D+6+1)
}

// Filtered returns a copy of the snapshot containing only entries whose
// index bit is clear in mask, i.e. entries the requester reported missing.
// Levels at or above keepFrom are always included, matching §6.2 ("as well
// as all level-i' neighbors, noti_level <= i' <= d-1").
func (s Snapshot) Filtered(mask BitVector, keepFrom int) Snapshot {
	out := make([]Neighbor, len(s.entries))
	for i, e := range s.entries {
		if e.IsZero() {
			continue
		}
		level := s.lo + i/s.params.B
		digit := i % s.params.B
		if level >= keepFrom || !mask.Get(level*s.params.B+digit) {
			out[i] = e
		}
	}
	return Snapshot{params: s.params, owner: s.owner, lo: s.lo, hi: s.hi, entries: out}
}

// MissingIn returns a copy of the snapshot containing only the occupants
// whose canonical entry in peer's table is empty according to peer's fill
// vector. An occupant u of any entry belongs, in peer's table, at
// (k, u[k]) with k = |csuf(peer, u)| — computable from the two IDs alone —
// so the result carries exactly the nodes peer is missing: between two
// converged tables it is empty, and after a partition heals it shrinks to
// nothing as the anti-entropy rounds progress.
func (s Snapshot) MissingIn(peer id.ID, fill BitVector) Snapshot {
	out := make([]Neighbor, len(s.entries))
	for i, e := range s.entries {
		if e.IsZero() || e.ID == peer {
			continue
		}
		k := peer.CommonSuffixLen(e.ID)
		if k >= s.params.D {
			continue // e is peer itself under a different address
		}
		if !fill.Get(k*s.params.B + e.ID.Digit(k)) {
			out[i] = e
		}
	}
	return Snapshot{params: s.params, owner: s.owner, lo: s.lo, hi: s.hi, entries: out}
}

// BitVector is a fixed-size bit set indexed by entry number
// (level*b + digit), used for the §6.2 message-size reduction.
type BitVector struct {
	bits []uint64
	n    int
}

// NewBitVector returns a vector of n clear bits.
func NewBitVector(n int) BitVector {
	return BitVector{bits: make([]uint64, (n+63)/64), n: n}
}

// BitVectorFromWords rebuilds a vector from its word representation (the
// inverse of Words, for wire decoding). The slice is copied.
func BitVectorFromWords(words []uint64, n int) BitVector {
	v := NewBitVector(n)
	copy(v.bits, words)
	return v
}

// Words exposes the vector's backing words for wire encoding. The
// returned slice is a copy.
func (v BitVector) Words() []uint64 {
	out := make([]uint64, len(v.bits))
	copy(out, v.bits)
	return out
}

// WordCount returns the number of 64-bit words backing the vector,
// always ⌈Len/64⌉. With Word it gives codecs allocation-free access to
// the wire representation (Words copies).
func (v BitVector) WordCount() int { return len(v.bits) }

// Word returns the i-th backing word (bits 64i..64i+63, LSB first).
func (v BitVector) Word(i int) uint64 { return v.bits[i] }

// SetWord stores the i-th backing word, the decode-side counterpart of
// Word. Bits beyond Len in the final word are masked off so a hostile
// word can never make a vector carry phantom bits.
func (v BitVector) SetWord(i int, w uint64) {
	if i < 0 || i >= len(v.bits) {
		panic(fmt.Sprintf("table: word %d out of range %d", i, len(v.bits)))
	}
	if i == len(v.bits)-1 && v.n%64 != 0 {
		w &= (1 << (v.n % 64)) - 1
	}
	v.bits[i] = w
}

// Len returns the number of bits.
func (v BitVector) Len() int { return v.n }

// Set sets bit i.
func (v BitVector) Set(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("table: bit %d out of range %d", i, v.n))
	}
	v.bits[i/64] |= 1 << (i % 64)
}

// Get reports bit i; out-of-range bits read as clear so that vectors from
// smaller tables compose safely.
func (v BitVector) Get(i int) bool {
	if i < 0 || i >= v.n {
		return false
	}
	return v.bits[i/64]&(1<<(i%64)) != 0
}

// Count returns the number of set bits.
func (v BitVector) Count() int {
	c := 0
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			c++
		}
	}
	return c
}

// WireSize is the encoded size of the vector in bytes.
func (v BitVector) WireSize() int { return (v.n + 7) / 8 }
