package core_test

import (
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/guard"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
)

// The fuzz decoder turns a byte string into a sequence of envelopes: one
// byte picks the sender, one the recipient, one the message type, and the
// following bytes index pools of valid AND hostile field values (index 0
// of every pool is a valid choice, so the seed corpus below encodes one
// well-formed envelope per message type). Everything is delivered to one
// machine; whatever arrives, the machine must not panic and its table
// must stay well-formed.

type byteReader struct {
	data []byte
	i    int
}

func (r *byteReader) done() bool { return r.i >= len(r.data) }

func (r *byteReader) next() int {
	if r.done() {
		return 0
	}
	b := r.data[r.i]
	r.i++
	return int(b)
}

func pick[T any](r *byteReader, pool []T) T { return pool[r.next()%len(pool)] }

type fuzzPools struct {
	p       id.Params
	self    table.Ref
	refs    []table.Ref
	suffixe []id.Suffix
	avoids  []id.ID
	levels  []int
	digits  []int
	states  []table.State
	results []msg.Result
	fills   []table.BitVector
	founds  []table.Neighbor
}

func newFuzzPools(p id.Params, self table.Ref) *fuzzPools {
	short := id.MustParse(id.Params{B: 4, D: 2}, "10")
	wide := id.MustParse(id.Params{B: 8, D: 4}, "7654")
	return &fuzzPools{
		p:    p,
		self: self,
		refs: []table.Ref{
			{ID: id.MustParse(p, "0123"), Addr: "sim://a"},
			{ID: id.MustParse(p, "1110"), Addr: "sim://b"},
			{ID: id.MustParse(p, "2210"), Addr: "sim://c"},
			self,
			{},
			{ID: short, Addr: "sim://short"},
			{ID: wide, Addr: "sim://wide"},
		},
		suffixe: []id.Suffix{
			id.MustParseSuffix(p, "0"),
			id.MustParseSuffix(p, "10"),
			id.MustParseSuffix(p, "3210"),
			{},
			id.MustParseSuffix(p, "3210").Extend(1), // 5 digits > d
		},
		avoids:  []id.ID{{}, self.ID, id.MustParse(p, "0123"), short},
		levels:  []int{0, 1, 2, 3, -1, 99, p.D},
		digits:  []int{0, 1, 2, 3, -7, 64},
		states:  []table.State{table.StateS, table.StateT, 0, 9},
		results: []msg.Result{msg.Positive, msg.Negative, 0, 9},
		fills: []table.BitVector{
			{},
			table.NewBitVector(p.D * p.B),
			table.NewBitVector(17),
			table.NewBitVector(1 << 12),
		},
		founds: []table.Neighbor{
			{},
			{ID: id.MustParse(p, "0000"), Addr: "sim://f", State: table.StateS},
			{ID: id.MustParse(p, "1230"), Addr: "sim://g", State: table.State(9)},
			{ID: wide, State: table.StateS},
		},
	}
}

// snapFor returns a table snapshot whose validity depends on sel: 0 is the
// sender's own diagonal table (well-formed), then the zero snapshot, a
// wrong-owner snapshot, and a corrupted one.
func (fp *fuzzPools) snapFor(from table.Ref, sel int) table.Snapshot {
	mk := func(owner id.ID) table.Snapshot {
		tbl := table.New(fp.p, owner)
		for i := 0; i < fp.p.D; i++ {
			tbl.Set(i, owner.Digit(i), table.Neighbor{ID: owner, Addr: "sim://o", State: table.StateS})
		}
		return tbl.Snapshot()
	}
	owner := from.ID
	hostable := !from.IsZero() && owner.Len() == fp.p.D
	for i := 0; hostable && i < owner.Len(); i++ {
		hostable = owner.Digit(i) < fp.p.B
	}
	if !hostable {
		owner = id.MustParse(fp.p, "1110")
	}
	switch sel % 4 {
	case 0:
		return mk(owner)
	case 1:
		return table.Snapshot{}
	case 2:
		return mk(id.MustParse(fp.p, "2210"))
	default:
		tbl := table.New(fp.p, owner)
		tbl.Set(0, 3, table.Neighbor{ID: id.MustParse(fp.p, "0000"), State: table.State(7)})
		return tbl.Snapshot()
	}
}

func (fp *fuzzPools) decodeEnv(r *byteReader) msg.Envelope {
	from := pick(r, fp.refs)
	to := fp.self
	if r.next()%8 == 7 {
		to = pick(r, fp.refs) // occasionally misaddressed
	}
	var pm msg.Message
	switch r.next() % 22 {
	case 0:
		pm = msg.CpRst{Level: pick(r, fp.levels)}
	case 1:
		pm = msg.CpRly{Table: fp.snapFor(from, r.next())}
	case 2:
		pm = msg.JoinWait{}
	case 3:
		pm = msg.JoinWaitRly{R: pick(r, fp.results), U: pick(r, fp.refs), Table: fp.snapFor(from, r.next())}
	case 4:
		pm = msg.JoinNoti{Table: fp.snapFor(from, r.next()), NotiLevel: pick(r, fp.levels), FillVector: pick(r, fp.fills)}
	case 5:
		pm = msg.JoinNotiRly{R: pick(r, fp.results), Table: fp.snapFor(from, r.next()), F: r.next()%2 == 1}
	case 6:
		pm = msg.InSysNoti{}
	case 7:
		pm = msg.SpeNoti{X: pick(r, fp.refs), Y: pick(r, fp.refs)}
	case 8:
		pm = msg.SpeNotiRly{X: pick(r, fp.refs), Y: pick(r, fp.refs)}
	case 9:
		pm = msg.RvNghNoti{Level: pick(r, fp.levels), Digit: pick(r, fp.digits), State: pick(r, fp.states)}
	case 10:
		pm = msg.RvNghNotiRly{Level: pick(r, fp.levels), Digit: pick(r, fp.digits), State: pick(r, fp.states)}
	case 11:
		pm = msg.Leave{Table: fp.snapFor(from, r.next())}
	case 12:
		pm = msg.LeaveRly{}
	case 13:
		pm = msg.Find{Want: pick(r, fp.suffixe), Origin: pick(r, fp.refs), Avoid: pick(r, fp.avoids)}
	case 14:
		pm = msg.FindRly{Want: pick(r, fp.suffixe), Found: pick(r, fp.founds), Blocked: r.next()%2 == 1}
	case 15:
		pm = msg.Ping{Seq: uint64(r.next()), Origin: pick(r, fp.refs), Target: pick(r, fp.refs)}
	case 16:
		pm = msg.Pong{Seq: uint64(r.next())}
	case 17:
		pm = msg.FailedNoti{Failed: pick(r, fp.refs)}
	case 18:
		pm = msg.SyncReq{Fill: pick(r, fp.fills)}
	case 19:
		pm = msg.SyncRly{Table: fp.snapFor(from, r.next()), Fill: pick(r, fp.fills)}
	case 20:
		pm = msg.SyncPush{Table: fp.snapFor(from, r.next())}
	default:
		pm = hostileMsg{}
	}
	return msg.Envelope{From: from, To: to, Msg: pm}
}

func FuzzMachineDeliver(f *testing.F) {
	// One well-formed envelope per message type: sender refs[0], recipient
	// self, type t, then zero bytes picking the valid (index-0) variant of
	// every field.
	for t := 0; t < 22; t++ {
		f.Add([]byte{0, 0, byte(t), 0, 0, 0, 0, 0, 0, 0})
	}
	// A couple of hostile openers: misaddressed, null sender, unknown type.
	f.Add([]byte{0, 7, 0, 0})
	f.Add([]byte{4, 0, 2})
	f.Add([]byte{0, 0, 21})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := id.Params{B: 4, D: 4}
		self := table.Ref{ID: id.MustParse(p, "3210"), Addr: "sim://self"}
		pol := guard.Policy{Threshold: 4, Decay: time.Second, Cooldown: 5 * time.Second}
		m := core.NewSeed(p, self, core.Options{
			ReduceLevels: true,
			BitVector:    true,
			Guard:        &pol,
			Budgets:      core.Budgets{MaxDeferredJoins: 8, MaxSpeNoti: 8, MaxReverse: 8},
		})
		var now time.Duration
		m.SetClock(func() time.Duration { return now })
		fp := newFuzzPools(p, self)
		if len(data) > 4096 {
			data = data[:4096] // bound per-input work; 4 KiB is ~500 envelopes
		}
		r := &byteReader{data: data}
		for !r.done() {
			m.Deliver(fp.decodeEnv(r))
			now += 50 * time.Millisecond
		}
		// Whatever arrived, the table must still be well-formed: every
		// occupant carries its entry's desired suffix with a legal state.
		if err := m.Snapshot().Validate(); err != nil {
			t.Fatalf("table corrupted by hostile input: %v", err)
		}
		if m.Status() != core.StatusInSystem {
			t.Fatalf("seed node left in_system: %v", m.Status())
		}
	})
}
