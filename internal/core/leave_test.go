package core_test

import (
	"math/rand"
	"testing"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/netcheck"
	"hypercube/internal/table"
)

// buildSmallNetwork creates a consistent network of machines via the pump
// (protocol joins), returning the pump and the member refs.
func buildSmallNetwork(t *testing.T, p id.Params, n int, seed int64) (*pump, []table.Ref) {
	t.Helper()
	pp := newPump(t, p, nil)
	rng := rand.New(rand.NewSource(seed))
	seedRef := table.Ref{ID: id.Random(p, rng), Addr: "sim://seed"}
	seedM := core.NewSeed(p, seedRef, core.Options{})
	pp.add(seedM)
	members := []table.Ref{seedRef}
	seen := map[id.ID]bool{seedRef.ID: true}
	for len(members) < n {
		x := id.Random(p, rng)
		if seen[x] {
			continue
		}
		seen[x] = true
		j := core.NewJoiner(p, table.Ref{ID: x, Addr: "sim://" + x.String()}, core.Options{})
		pp.add(j)
		pp.enqueue(must(j.StartJoin(members[rng.Intn(len(members))])))
		pp.run()
		members = append(members, j.Self())
	}
	pp.requireConsistent()
	return pp, members
}

func TestLeaveProtocolMessages(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	pp, members := buildSmallNetwork(t, p, 12, 1)
	leaver := pp.machines[members[5].ID]

	envs := must(leaver.StartLeave())
	if leaver.Status() != core.StatusLeaving {
		t.Fatalf("status after StartLeave: %v", leaver.Status())
	}
	if len(envs) == 0 {
		t.Fatal("StartLeave produced no announcements")
	}
	for _, env := range envs {
		if env.Msg.Type() != msg.TLeave {
			t.Fatalf("unexpected message %v", env.Msg.Type())
		}
	}
	if pending := leaver.LeaveAcksPending(); len(pending) != len(envs) {
		t.Fatalf("%d acks pending for %d announcements", len(pending), len(envs))
	}
	pp.enqueue(envs)
	pp.run()
	if leaver.Status() != core.StatusLeft {
		t.Fatalf("status after quiescence: %v (pending %v)", leaver.Status(), leaver.LeaveAcksPending())
	}
	// Check consistency over the survivors.
	tables := pp.tables()
	delete(tables, leaver.Self().ID)
	if v := netcheck.CheckConsistency(p, tables); len(v) != 0 {
		t.Fatalf("survivors inconsistent: %v", v[0])
	}
}

func TestLeaveCountersBigMessages(t *testing.T) {
	// LeaveMsg is a big message (carries a table); the counters must
	// classify it accordingly.
	p := id.Params{B: 4, D: 4}
	pp, members := buildSmallNetwork(t, p, 8, 2)
	leaver := pp.machines[members[3].ID]
	bigBefore := leaver.Counters().BigSent()
	envs := must(leaver.StartLeave())
	_ = envs
	if got := leaver.Counters().SentOf(msg.TLeave); got == 0 {
		t.Fatal("no LeaveMsg counted")
	}
	if leaver.Counters().BigSent() != bigBefore {
		// BigSent counts only the §5.2 classes (join-protocol tables);
		// Leave is big on the wire but not part of the paper's class.
		t.Log("LeaveMsg not in §5.2 big class (expected)")
	}
}

func TestDropFailedLocalRepair(t *testing.T) {
	// Dense small space: local repair succeeds because tables contain
	// alternates for every suffix.
	p := id.Params{B: 2, D: 4} // 16 IDs
	pp, members := buildSmallNetwork(t, p, 12, 3)
	dead := members[4].ID
	for _, ref := range members {
		if ref.ID == dead {
			continue
		}
		m := pp.machines[ref.ID]
		before := 0
		m.Table().ForEach(func(_, _ int, nb table.Neighbor) {
			if nb.ID == dead {
				before++
			}
		})
		unrepaired := m.DropFailed(dead)
		after := 0
		m.Table().ForEach(func(_, _ int, nb table.Neighbor) {
			if nb.ID == dead {
				after++
			}
		})
		if after != 0 {
			t.Fatalf("node %v still holds dead node after DropFailed", ref.ID)
		}
		// In a b=2 network of 12 nodes every 1-digit suffix has many
		// members, so level-0 entries always repair locally.
		for _, e := range unrepaired {
			if e[0] == 0 {
				t.Errorf("node %v could not locally repair level-0 entry %v", ref.ID, e)
			}
		}
		_ = before
	}
}

func TestFindRoutesToCarrier(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	pp, members := buildSmallNetwork(t, p, 14, 4)
	// Repair an entry whose desired suffix is inhabited: the entry
	// (k, target[k]) where k = csuf(origin, target) wants the suffix
	// target[k..0], which target itself carries.
	origin := pp.machines[members[2].ID]
	target := members[9].ID
	k := origin.Self().ID.CommonSuffixLen(target)
	want := target.Suffix(k + 1)
	origin.Table().Set(k, target.Digit(k), table.Neighbor{})
	envs := origin.RepairEntry(k, target.Digit(k), members[5], id.Null)
	pp.enqueue(envs)
	pp.run()
	outcome := origin.ResolveRepair(k, target.Digit(k))
	if outcome != core.RepairFilled {
		t.Fatalf("outcome = %v, want filled (want suffix %v)", outcome, want)
	}
	got := origin.Table().Get(k, target.Digit(k))
	if !got.ID.HasSuffix(want) {
		t.Fatalf("repair installed %v which lacks suffix %v", got.ID, want)
	}
}

func TestFindProvesAbsence(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	pp, members := buildSmallNetwork(t, p, 10, 5)
	origin := pp.machines[members[1].ID]
	// Hunt for a suffix nobody has: extend a member's suffix with a digit
	// such that no member matches.
	var want id.Suffix
	reg := netcheck.NewSuffixRegistry(p, idsOf(members))
search:
	for k := 1; k <= p.D; k++ {
		for j := 0; j < p.B; j++ {
			cand := members[0].ID.Suffix(k - 1).Extend(j)
			if !reg.Has(cand) {
				want = cand
				break search
			}
		}
	}
	if want.Len() == 0 {
		t.Skip("dense network: every suffix inhabited")
	}
	level, digit := want.Len()-1, want.Leading()
	// The origin's entry for that suffix must be empty already (consistent
	// network, uninhabited suffix) unless origin doesn't match the parent;
	// route the query regardless and expect a not-found -> RepairEmpty.
	if origin.Self().ID.SuffixMatch(want) != want.Len()-1 {
		t.Skip("origin does not border the wanted suffix; pick is entry-dependent")
	}
	envs := origin.RepairEntry(level, digit, members[3], id.Null)
	pp.enqueue(envs)
	pp.run()
	if outcome := origin.ResolveRepair(level, digit); outcome != core.RepairEmpty {
		t.Fatalf("outcome = %v, want empty", outcome)
	}
}

func idsOf(refs []table.Ref) []id.ID {
	out := make([]id.ID, len(refs))
	for i, r := range refs {
		out[i] = r.ID
	}
	return out
}

func TestDeepestNeighborIs(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	self := table.Ref{ID: id.MustParse(p, "3210"), Addr: "a"}
	m := core.NewSeed(p, self, core.Options{})
	deep := id.MustParse(p, "0210")    // shares 3 digits
	shallow := id.MustParse(p, "1100") // shares 1 digit
	m.Table().Set(3, 0, table.Neighbor{ID: deep, State: table.StateS})
	m.Table().Set(1, 0, table.Neighbor{ID: shallow, State: table.StateS})
	if !m.DeepestNeighborIs(deep) {
		t.Error("deep neighbor not recognized as deepest")
	}
	if m.DeepestNeighborIs(shallow) {
		t.Error("shallow neighbor reported deepest despite deeper entry")
	}
	// Ties count as deepest (orphan heuristic errs toward re-joining).
	tie := id.MustParse(p, "1210") // also shares 3 digits
	m.Table().Set(3, 1, table.Neighbor{ID: tie, State: table.StateS})
	if !m.DeepestNeighborIs(deep) || !m.DeepestNeighborIs(tie) {
		t.Error("tied deepest neighbors should both trigger the heuristic")
	}
}

func TestRejoinRestoresAnnouncement(t *testing.T) {
	// Force the orphan scenario deterministically: y's only storer dies.
	p := id.Params{B: 4, D: 4}
	pp, members := buildSmallNetwork(t, p, 12, 6)

	y := pp.machines[members[7].ID]
	// Emulate the orphan condition: every other node treats y as crashed
	// (drops it and repairs locally where alternates exist). Entries whose
	// only carrier was y stay empty — exactly the state after a bridge
	// failure erases the network's knowledge of y.
	unrepaired := make(map[id.ID][][2]int)
	for _, ref := range members {
		if ref.ID == y.Self().ID {
			continue
		}
		if un := pp.machines[ref.ID].DropFailed(y.Self().ID); len(un) > 0 {
			unrepaired[ref.ID] = un
		}
	}
	// y re-joins through any live node; the notifying phase must restore
	// its reachability (Theorem 1 reused as a repair guarantee).
	pp.enqueue(must(y.StartRejoin(members[0])))
	pp.run()
	if !y.IsSNode() {
		t.Fatalf("rejoiner stuck in %v", y.Status())
	}
	// Routed-repair round for the entries local repair could not fix
	// (nodes too shallow for y's re-announcement) — the same step
	// overlay.RecoverFailure performs after rejoins.
	for x, entries := range unrepaired {
		m := pp.machines[x]
		for _, e := range entries {
			if !m.Table().Get(e[0], e[1]).IsZero() {
				continue
			}
			pp.enqueue(m.RepairEntry(e[0], e[1], members[0], id.Null))
		}
	}
	pp.run()
	tables := pp.tables()
	for _, ref := range members {
		if ref.ID == y.Self().ID {
			continue
		}
		if _, ok := netcheck.Reachable(p, tables, ref.ID, y.Self().ID); !ok {
			t.Errorf("node %v cannot reach the rejoined orphan", ref.ID)
		}
	}
}

func TestStartRejoinErrors(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	j := core.NewJoiner(p, table.Ref{ID: id.MustParse(p, "0123"), Addr: "x"}, core.Options{})
	if _, err := j.StartRejoin(table.Ref{ID: id.MustParse(p, "3210"), Addr: "y"}); err == nil {
		t.Error("StartRejoin on joiner did not error")
	}
	s := core.NewSeed(p, table.Ref{ID: id.MustParse(p, "3210"), Addr: "y"}, core.Options{})
	if _, err := s.StartRejoin(s.Self()); err == nil {
		t.Error("StartRejoin with self bootstrap did not error")
	}
	if s.Status() != core.StatusInSystem {
		t.Errorf("failed StartRejoin changed status to %v", s.Status())
	}
}

func TestAbandonRepairClearsState(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	pp, members := buildSmallNetwork(t, p, 8, 7)
	m := pp.machines[members[2].ID]
	level, digit := 2, 1
	m.Table().Set(level, digit, table.Neighbor{})
	envs := m.RepairEntry(level, digit, members[4], id.Null)
	_ = envs // never delivered: simulate a lost query
	if outcome := m.ResolveRepair(level, digit); outcome != core.RepairPending {
		t.Fatalf("outcome before reply = %v, want pending", outcome)
	}
	m.AbandonRepair(level, digit)
	if outcome := m.ResolveRepair(level, digit); outcome != core.RepairPending {
		// After abandonment the state is gone; ResolveRepair reports
		// pending (no record), and the entry stays as-is.
		t.Fatalf("outcome after abandon = %v", outcome)
	}
}

// TestLeaveChaseThroughDepartedCarrier constructs the concurrent-leave
// corner case explicitly: a holder repairs an entry whose donor table
// only references another departing carrier, forcing the BFS chase
// (CpRst to the departed node) that ends at the one live carrier.
func TestLeaveChaseThroughDepartedCarrier(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	pp := newPump(t, p, nil)

	// Suffix family "2": z1, z2 (both will leave) and y (lives). The IDs
	// are chosen so that z1's consistent table can avoid y entirely
	// (csuf(z1,y)=1 and z2 also carries the suffix "02" wanted by z1's
	// only y-qualifying entry), while z2's table must contain y
	// (csuf(z2,y)=3 makes y the only candidate for z2's (3,2)-entry).
	// The chase is then the only way u can find y.
	u := table.Ref{ID: id.MustParse(p, "1111"), Addr: "sim://u"}
	z1 := table.Ref{ID: id.MustParse(p, "1132"), Addr: "sim://z1"}
	z2 := table.Ref{ID: id.MustParse(p, "3302"), Addr: "sim://z2"}
	y := table.Ref{ID: id.MustParse(p, "2302"), Addr: "sim://y"}
	refs := []table.Ref{u, z1, z2, y}

	// Hand-build a consistent network over exactly these four nodes, but
	// bias the tables: u's (0,2) entry holds z1; z1's tables reference z2
	// for the "2" family (not y); z2's tables reference y.
	members := idsOf(refs)
	reg := netcheck.NewSuffixRegistry(p, members)
	pick := func(owner table.Ref, prefer map[string]table.Ref) *core.Machine {
		tbl := table.New(p, owner.ID)
		for i := 0; i < p.D; i++ {
			for j := 0; j < p.B; j++ {
				want := tbl.DesiredSuffix(i, j)
				if owner.ID.HasSuffix(want) {
					tbl.Set(i, j, table.Neighbor{ID: owner.ID, Addr: owner.Addr, State: table.StateS})
					continue
				}
				if !reg.Has(want) {
					continue
				}
				if r, ok := prefer[want.String()]; ok && r.ID.HasSuffix(want) {
					tbl.Set(i, j, table.Neighbor{ID: r.ID, Addr: r.Addr, State: table.StateS})
					continue
				}
				for _, cand := range refs {
					if cand.ID != owner.ID && cand.ID.HasSuffix(want) {
						tbl.Set(i, j, table.Neighbor{ID: cand.ID, Addr: cand.Addr, State: table.StateS})
						break
					}
				}
			}
		}
		return core.NewEstablished(p, owner, tbl, core.Options{})
	}
	mu := pick(u, map[string]table.Ref{"2": z1, "32": z1, "02": z2})
	mz1 := pick(z1, map[string]table.Ref{"02": z2})
	mz2 := pick(z2, map[string]table.Ref{})
	my := pick(y, map[string]table.Ref{"02": z2})
	for _, m := range []*core.Machine{mu, mz1, mz2, my} {
		pp.add(m)
	}
	// Register reverse sets with global knowledge.
	for _, m := range []*core.Machine{mu, mz1, mz2, my} {
		m.Table().ForEach(func(_, _ int, nb table.Neighbor) {
			if nb.ID != m.Self().ID {
				pp.machines[nb.ID].AddReverseNeighbor(m.Self())
			}
		})
	}
	if v := netcheck.CheckConsistency(p, pp.tables()); len(v) != 0 {
		t.Fatalf("setup inconsistent: %v", v[0])
	}

	// Concurrent leaves, with z2's announcements enqueued first: u marks
	// z2 departed before processing z1's LeaveMsg, whose attached table
	// (snapshotted at StartLeave, before z1 heard about z2) references z2
	// as the only other "2"-carrier. u must chase z2's table to find y.
	pp.enqueue(must(mz2.StartLeave()))
	pp.enqueue(must(mz1.StartLeave()))
	pp.run()
	if mz1.Status() != core.StatusLeft || mz2.Status() != core.StatusLeft {
		t.Fatalf("leavers stuck: z1=%v z2=%v", mz1.Status(), mz2.Status())
	}
	tables := pp.tables()
	delete(tables, z1.ID)
	delete(tables, z2.ID)
	if v := netcheck.CheckConsistency(p, tables); len(v) != 0 {
		t.Fatalf("survivors inconsistent: %v", v[0])
	}
	// u must have found y for the "2"-family entries.
	if got := mu.Table().Get(0, 2); got.ID != y.ID {
		t.Fatalf("u's (0,2) entry = %v, want %v (found via the chase)", got.ID, y.ID)
	}
	// And it must have found it THROUGH the chase: u requested at least
	// one table copy (CpRst) even though it never ran a copying phase.
	if got := mu.Counters().SentOf(msg.TCpRst); got == 0 {
		t.Fatal("u repaired without chasing a departed carrier's table — scenario lost its point")
	}
}
