package nemesis

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"hypercube/internal/antientropy"
	"hypercube/internal/core"
	"hypercube/internal/guard"
	"hypercube/internal/id"
	"hypercube/internal/liveness"
	"hypercube/internal/nemesis/oracle"
	"hypercube/internal/overlay"
	"hypercube/internal/persist"
	"hypercube/internal/rtt"
	"hypercube/internal/sampling"
	"hypercube/internal/table"
)

// Options tunes an execution without affecting its verdicts' meaning.
// The zero value is usable.
type Options struct {
	// SyncEvery is the anti-entropy/sampling interval and the settle
	// round length. Default 500ms.
	SyncEvery time.Duration
	// ReachPairs is how many sampled ordered pairs each audit routes via
	// Definition 3.7. Default 16.
	ReachPairs int
	// Log, when non-nil, receives one progress line per executed step.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 500 * time.Millisecond
	}
	if o.ReachPairs <= 0 {
		o.ReachPairs = 16
	}
	return o
}

// Result is the outcome of executing one schedule. With an identical
// Schedule, every field is identical across runs — findings included —
// which is what lets a replay compare itself against a recording.
type Result struct {
	Schedule Schedule         `json:"schedule"`
	Findings []oracle.Finding `json:"findings,omitempty"`
	// Counters summarizing what the schedule actually did.
	Joined       int `json:"joined"`
	Left         int `json:"left"`
	Crashed      int `json:"crashed"`
	Restarted    int `json:"restarted"`
	CorruptDumps int `json:"corruptDumps"`
	Paused       int `json:"paused"`
	// Final virtual clock and network size, cheap cross-run checksums of
	// the whole execution.
	VirtualEnd time.Duration `json:"virtualEnd"`
	FinalSize  int           `json:"finalSize"`
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Findings) != 0 }

// Execute runs one schedule against a freshly built network and returns
// its findings. The error return covers infrastructure problems (bad
// schedule, filesystem) only; protocol misbehavior is reported through
// Result.Findings, never through the error.
func Execute(s Schedule, opt Options) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	dir, err := os.MkdirTemp("", "nemesis-")
	if err != nil {
		return nil, fmt.Errorf("nemesis: %w", err)
	}
	defer os.RemoveAll(dir)

	e := &executor{s: s, opt: opt, dir: dir, res: &Result{Schedule: s}}
	e.build()
	for i, a := range s.Steps {
		e.step(i, a)
	}
	e.finish()
	e.res.VirtualEnd = e.net.Engine().Now()
	e.res.FinalSize = e.net.Size()
	e.res.Findings = e.findings
	return e.res, nil
}

// executor holds the mutable state of one schedule run. All bookkeeping
// uses sorted slices or is keyed per (seed, step) — map iteration never
// decides anything, so runs are bit-reproducible.
type executor struct {
	s   Schedule
	opt Options
	dir string
	res *Result

	net   *overlay.Network
	watch *oracle.DeclWatch
	p     id.Params

	members []table.Ref    // established members, sorted by ID
	taken   map[id.ID]bool // every ID ever issued
	byz     map[id.ID]bool // hostile members
	slow    map[id.ID]bool // gray members
	pending []pendingJoin  // scheduled joiners not yet admitted
	leaves  map[id.ID]int  // scheduled graceful leaves -> step
	machs   map[id.ID]*core.Machine

	byzEver  bool
	lossEver bool
	findings []oracle.Finding
}

type pendingJoin struct {
	ref  table.Ref
	m    *core.Machine
	step int
}

// build mirrors cmd/churn's scenarioConfig: the full robustness stack —
// guard layer, latency-tolerant adaptive failure detection, anti-entropy
// and gossip sampling — plus every injector armed (loss at rate 0, slow
// and byzantine models with executor-driven selection). The liveness
// PartitionThreshold is lowered to 0.3 so both sides of a generated
// 40–50% partition enter partition mode and freeze declarations.
func (e *executor) build() {
	e.p = id.Params{B: e.s.B, D: e.s.D}
	e.watch = oracle.NewDeclWatch()
	seed := int64(e.s.Seed)
	cfg := overlay.Config{
		Params:  e.p,
		Latency: overlay.ConstantLatency(10 * time.Millisecond),
		Opts: core.Options{
			Timeouts: core.Timeouts{
				RetryAfter:  500 * time.Millisecond,
				MaxAttempts: 6,
				RepairAfter: 600 * time.Millisecond,
			},
			Guard: &guard.Policy{},
		},
		Liveness: &liveness.Config{
			ProbeInterval:      250 * time.Millisecond,
			ProbeTimeout:       time.Second,
			SuspectAfter:       4,
			IndirectProbes:     3,
			ConfirmRounds:      4,
			PartitionThreshold: 0.3,
		},
		RTT:          &rtt.Config{MinRTO: 100 * time.Millisecond, MaxRTO: 5 * time.Second},
		AntiEntropy:  &antientropy.Config{Interval: e.opt.SyncEvery},
		Sampling:     &sampling.Config{ViewSize: 16, Interval: e.opt.SyncEvery, Seed: seed},
		SlowNodes:    &overlay.SlowNodes{Delay: 400 * time.Millisecond, Ramp: 2 * time.Second, Seed: seed},
		Byzantine:    &overlay.Byzantine{Seed: seed},
		Loss:         &overlay.Loss{Rate: 0, Seed: seed},
		TickInterval: 100 * time.Millisecond,
	}
	cfg.Sink = e.watch
	e.net = overlay.New(cfg)

	e.taken = make(map[id.ID]bool)
	e.byz = make(map[id.ID]bool)
	e.slow = make(map[id.ID]bool)
	e.leaves = make(map[id.ID]int)
	e.machs = make(map[id.ID]*core.Machine)
	rng := rand.New(rand.NewSource(int64(e.s.Seed)))
	refs := overlay.RandomRefs(e.p, e.s.Nodes, rng, e.taken)
	e.net.BuildDirect(refs, rng)
	e.members = append(e.members, refs...)
	e.sortMembers()
	e.net.RunFor(3 * time.Second) // warm-up: probers acquire, views fill
}

func (e *executor) sortMembers() {
	sort.Slice(e.members, func(i, j int) bool { return e.members[i].ID.Less(e.members[j].ID) })
}

func (e *executor) logf(format string, args ...any) {
	if e.opt.Log != nil {
		fmt.Fprintf(e.opt.Log, format+"\n", args...)
	}
}

func (e *executor) fail(check string, step int, format string, args ...any) {
	e.findings = append(e.findings, oracle.Finding{
		Check: check, Step: step, Detail: fmt.Sprintf(format, args...),
	})
}

// pick removes up to n eligible members from the candidate pool by a
// deterministic partial Fisher–Yates over the sorted member list.
func (e *executor) pick(r *rng, n int, eligible func(table.Ref) bool) []table.Ref {
	var cand []table.Ref
	for _, m := range e.members {
		if eligible == nil || eligible(m) {
			cand = append(cand, m)
		}
	}
	out := make([]table.Ref, 0, n)
	for i := 0; i < n && len(cand) > 0; i++ {
		j := r.intn(len(cand))
		out = append(out, cand[j])
		cand = append(cand[:j], cand[j+1:]...)
	}
	return out
}

func (e *executor) honest(m table.Ref) bool { return !e.byz[m.ID] }
func (e *executor) fastHonest(m table.Ref) bool {
	return !e.byz[m.ID] && !e.slow[m.ID] && e.leaves[m.ID] == 0 && !e.leaving(m.ID)
}

func (e *executor) leaving(x id.ID) bool { _, ok := e.leaves[x]; return ok }

func (e *executor) dropMember(x id.ID) {
	for i, m := range e.members {
		if m.ID == x {
			e.members = append(e.members[:i], e.members[i+1:]...)
			return
		}
	}
}

func (e *executor) step(i int, a Action) {
	e.logf("step %2d: %v", i, a)
	r := newRNG(e.s.Seed, uint64(i))
	switch a.Op {
	case OpJoinWave:
		e.joinWave(i, a, r)
	case OpLeave:
		e.leave(i, a, r)
	case OpCrash:
		e.crash(i, a, r)
	case OpPartition:
		e.partition(i, a, r)
	case OpSlow:
		for _, m := range e.pick(r, a.Count, e.fastHonest) {
			e.slow[m.ID] = true
			e.net.MarkSlow(m.ID)
		}
	case OpByzantine:
		n := int(a.Frac * float64(len(e.members)))
		if n == 0 {
			n = 1
		}
		for _, m := range e.pick(r, n, e.fastHonest) {
			e.byz[m.ID] = true
			e.net.MarkByzantine(m.ID)
			e.byzEver = true
		}
	case OpLoss:
		e.lossEver = true
		if err := e.net.SetLossRate(a.Rate); err != nil {
			e.fail(oracle.CheckDeadLetter, i, "SetLossRate: %v", err)
			break
		}
		e.net.RunFor(a.Dur)
		_ = e.net.SetLossRate(0)
	case OpPause:
		for _, m := range e.pick(r, a.Count, e.honest) {
			if err := e.net.PauseNode(m.ID, a.Dur); err == nil {
				e.res.Paused++
			}
		}
		// Run past the pause so no node is still stalled when the next
		// action selects its targets.
		e.net.RunFor(a.Dur)
	case OpRestart:
		e.restart(i, a, r)
	case OpQuiesce:
		e.quiesce(i)
	}
	e.net.RunFor(a.Gap)
}

// joinWave admits Count fresh joiners through up to three fast honest
// gateways and waits (bounded) for the whole wave to reach S-node.
// Joiners that miss the bound stay tracked and are judged at the final
// audit — a join may legitimately still be retrying here.
func (e *executor) joinWave(i int, a Action, r *rng) {
	gws := e.pick(r, 3, e.fastHonest)
	if len(gws) == 0 {
		e.fail(oracle.CheckStuckJoin, i, "no eligible gateway for a %d-joiner wave", a.Count)
		return
	}
	jrng := rand.New(rand.NewSource(int64(r.next())))
	joiners := overlay.RandomRefs(e.p, a.Count, jrng, e.taken)
	start := e.net.Engine().Now() + 100*time.Millisecond
	for k, j := range joiners {
		g := gws[k%len(gws)]
		fb1 := gws[(k+1)%len(gws)]
		fb2 := gws[(k+2)%len(gws)]
		m := e.net.ScheduleJoin(j, g, start, fb1, fb2)
		e.pending = append(e.pending, pendingJoin{ref: j, m: m, step: i})
	}
	e.settleJoins(200)
}

// settleJoins advances sync rounds until every pending joiner is
// admitted or the round budget runs out, then promotes the admitted.
func (e *executor) settleJoins(maxRounds int) {
	for rounds := 0; rounds < maxRounds; rounds++ {
		stuck := false
		for _, pj := range e.pending {
			if !pj.m.IsSNode() {
				stuck = true
				break
			}
		}
		if !stuck {
			break
		}
		e.net.RunFor(e.opt.SyncEvery)
	}
	var still []pendingJoin
	for _, pj := range e.pending {
		if pj.m.IsSNode() {
			e.members = append(e.members, pj.ref)
			e.machs[pj.ref.ID] = pj.m
			e.res.Joined++
		} else {
			still = append(still, pj)
		}
	}
	e.pending = still
	e.sortMembers()
}

func (e *executor) leave(i int, a Action, r *rng) {
	targets := e.pick(r, a.Count, e.fastHonest)
	now := e.net.Engine().Now()
	for _, m := range targets {
		if err := e.net.ScheduleLeave(m.ID, now+50*time.Millisecond); err != nil {
			e.fail(oracle.CheckStuckLeave, i, "%v", err)
			continue
		}
		// A departed node is genuinely gone: a peer that misses the
		// goodbye and declares it afterwards is behaving correctly, so
		// leavers never count as false positives.
		e.watch.MarkDead(m.ID)
		e.leaves[m.ID] = i + 1 // +1 so the zero value means "not leaving"
	}
	// Bounded wait for the departures to finalize; stragglers are judged
	// at the final audit.
	for rounds := 0; rounds < 100 && len(e.leaves) > 0; rounds++ {
		e.net.RunFor(e.opt.SyncEvery)
		for _, x := range e.net.FinalizeLeaves() {
			delete(e.leaves, x)
			e.dropMember(x)
			e.res.Left++
		}
	}
}

func (e *executor) crash(i int, a Action, r *rng) {
	targets := e.pick(r, a.Count, func(m table.Ref) bool { return !e.leaving(m.ID) })
	now := e.net.Engine().Now()
	for _, m := range targets {
		e.watch.MarkDeadAt(now, m.ID)
		if err := e.net.InjectFailure(m.ID); err != nil {
			continue
		}
		e.dropMember(m.ID)
		e.res.Crashed++
	}
}

// partition cuts a Frac minority away, holds the cut for Dur, heals, and
// lets the Gap absorb the reconciliation. Both sides must freeze
// declarations (partition mode); any declaration during the cut names a
// live node and surfaces as a false-positive finding.
func (e *executor) partition(i int, a Action, r *rng) {
	k := int(a.Frac * float64(len(e.members)))
	if k < 1 {
		k = 1
	}
	minority := e.pick(r, k, nil)
	inMinority := make(map[id.ID]bool, len(minority))
	var minIDs []id.ID
	for _, m := range minority {
		inMinority[m.ID] = true
		minIDs = append(minIDs, m.ID)
	}
	var majIDs []id.ID
	for _, m := range e.members {
		if !inMinority[m.ID] {
			majIDs = append(majIDs, m.ID)
		}
	}
	e.net.Partition(minIDs, majIDs)
	e.net.RunFor(a.Dur)
	e.net.Heal()
}

// restart persists each target, crashes it, and immediately brings it
// back: from the dump via rejoin when the dump is intact, via a fresh
// join when the dump was (deliberately) corrupted. Restarts are
// serialized — concurrently rejoining members already appear in each
// other's tables and could park each other in join-wait forever.
func (e *executor) restart(i int, a Action, r *rng) {
	targets := e.pick(r, a.Count, e.fastHonest)
	for _, m := range targets {
		tbl, ok := e.net.TableOf(m.ID)
		if !ok {
			continue
		}
		var sampled []table.Ref
		if s, ok := e.net.Sampler(m.ID); ok {
			sampled = s.View()
		}
		path := filepath.Join(e.dir, m.ID.String()+".json")
		if err := persist.SaveFileState(path, tbl.Snapshot(), sampled); err != nil {
			e.fail(oracle.CheckPersist, i, "save: %v", err)
			continue
		}
		if a.Corrupt {
			e.flipByte(path, r)
		}
		if err := e.net.InjectFailure(m.ID); err != nil {
			continue
		}
		e.dropMember(m.ID)

		helper := e.pickHelper(r, m.ID)
		if helper.IsZero() {
			e.fail(oracle.CheckStuckJoin, i, "no live helper for restarting %v", m.ID)
			continue
		}
		snap, bootPeers, err := persist.LoadFileState(path, e.p)
		switch {
		case err == nil && a.Corrupt:
			// The dump was bit-flipped and load did not notice: the
			// checksum layer failed. This is exactly the class of bug the
			// corrupt flag exists to catch.
			e.fail(oracle.CheckPersist, i, "corrupted dump of %v loaded without error", m.ID)
			continue
		case err != nil && !persist.IsCorrupt(err):
			e.fail(oracle.CheckPersist, i, "load: %v", err)
			continue
		case err != nil:
			// Detected corruption: no state, fresh join.
			e.res.CorruptDumps++
			mach := e.net.ScheduleJoin(m, helper, e.net.Engine().Now())
			e.pending = append(e.pending, pendingJoin{ref: m, m: mach, step: i})
			e.settleJoins(200)
			e.res.Restarted++
			continue
		}
		mach := e.net.AddEstablished(m, persist.Restore(snap))
		if s, ok := e.net.Sampler(m.ID); ok && len(bootPeers) > 0 {
			s.SeedPeers(bootPeers...)
		}
		out, err := mach.StartRejoin(helper)
		if err != nil {
			e.fail(oracle.CheckStuckJoin, i, "rejoin of %v: %v", m.ID, err)
			continue
		}
		e.net.Transmit(out)
		e.net.Run()
		e.members = append(e.members, m)
		e.machs[m.ID] = mach
		e.res.Restarted++
	}
	e.sortMembers()
}

// flipByte XORs one deterministic bit of the dump's owner value,
// modeling silent disk corruption. The flip targets a value byte, not
// whitespace: the checksum is over the canonical (re-encoded) form, so
// indentation damage is legitimately invisible to it and flipping there
// would under-test the detection layer.
func (e *executor) flipByte(path string, r *rng) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return
	}
	marker := []byte(`"owner": "`)
	off := bytes.Index(data, marker)
	if off >= 0 {
		off += len(marker)
	} else {
		off = len(data) / 2
	}
	data[off] ^= 1 << uint(r.intn(4))
	_ = os.WriteFile(path, data, 0o644)
}

// pickHelper returns a fast honest live member other than self.
func (e *executor) pickHelper(r *rng, self id.ID) table.Ref {
	c := e.pick(r, 1, func(m table.Ref) bool { return m.ID != self && e.fastHonest(m) })
	if len(c) == 0 {
		return table.Ref{}
	}
	return c[0]
}

// quiesce settles to Definition 3.8 consistency (bounded) and runs the
// invariant oracle, stamping the step into any findings.
func (e *executor) quiesce(step int) {
	e.settleJoins(50)
	converged := false
	for rounds := 0; rounds < 60; rounds++ {
		if len(e.net.CheckConsistency()) == 0 {
			converged = true
			break
		}
		e.net.RunFor(e.opt.SyncEvery)
	}
	if !converged {
		e.fail(oracle.CheckConverge, step, "still inconsistent after 60 settle rounds")
	}
	e.findings = append(e.findings, oracle.Audit(e.net, e.opt.ReachPairs, e.s.Seed, step)...)
	e.findings = append(e.findings, oracle.AuditDeclarations(e.watch, step)...)
}

// finish restores a fault-free network (heal, full speed, no loss),
// settles, and runs the complete end-of-run oracle: consistency,
// reachability, declarations, stuck joiners and leavers, guard honesty,
// and dead letters.
func (e *executor) finish() {
	e.net.Heal()
	_ = e.net.SetLossRate(0)
	var slowIDs []id.ID
	for _, m := range e.members {
		if e.slow[m.ID] {
			slowIDs = append(slowIDs, m.ID)
		}
	}
	e.net.UnmarkSlow(slowIDs...)
	e.net.RunFor(2 * time.Second)
	e.settleJoins(100)
	for rounds := 0; rounds < 100 && len(e.leaves) > 0; rounds++ {
		e.net.RunFor(e.opt.SyncEvery)
		for _, x := range e.net.FinalizeLeaves() {
			delete(e.leaves, x)
			e.dropMember(x)
			e.res.Left++
		}
	}
	converged := false
	for rounds := 0; rounds < 100; rounds++ {
		if len(e.net.CheckConsistency()) == 0 {
			converged = true
			break
		}
		e.net.RunFor(e.opt.SyncEvery)
	}
	if !converged {
		e.fail(oracle.CheckConverge, -1, "still inconsistent after 100 final settle rounds")
	}

	for _, pj := range e.pending {
		e.fail(oracle.CheckStuckJoin, -1, "joiner %v from step %d never admitted (status %v)",
			pj.ref.ID, pj.step, pj.m.Status())
	}
	var stuckLeaves []id.ID
	for x := range e.leaves {
		stuckLeaves = append(stuckLeaves, x)
	}
	sort.Slice(stuckLeaves, func(i, j int) bool { return stuckLeaves[i].Less(stuckLeaves[j]) })
	for _, x := range stuckLeaves {
		e.fail(oracle.CheckStuckLeave, -1, "leave of %v from step %d never completed", x, e.leaves[x]-1)
	}

	e.findings = append(e.findings, oracle.Audit(e.net, e.opt.ReachPairs, e.s.Seed, -1)...)
	e.findings = append(e.findings, oracle.AuditDeclarations(e.watch, -1)...)

	if !e.byzEver {
		// Individual rejections are expected noise under churn (stale
		// envelopes referencing crashed nodes fail semantic validation),
		// but an all-honest run must never escalate to quarantining a
		// peer — that would let ordinary churn partition honest nodes.
		if gs := e.net.GuardStats(); gs.Scorer.Quarantines > 0 {
			e.fail(oracle.CheckGuardHonest, -1, "%d honest peers quarantined with no adversary marked", gs.Scorer.Quarantines)
		}
	}
	if !e.lossEver {
		if lost := e.net.LostMessages(); lost > 0 {
			e.fail(oracle.CheckDeadLetter, -1, "%d messages dead-lettered with loss never raised", lost)
		}
	}
}
