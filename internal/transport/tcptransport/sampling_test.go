package tcptransport

import (
	"context"
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/sampling"
)

// TestTCPSamplingRounds runs a live four-node network with the gossip
// peer-sampling layer on: every node's view must fill from real
// push-pull traffic over TCP, and /status must expose the sampling
// counters.
func TestTCPSamplingRounds(t *testing.T) {
	sc := sampling.Config{
		ViewSize: 8,
		Interval: 100 * time.Millisecond,
		Seed:     31,
	}
	options := []Option{WithSampling(sc), WithMaxAttempts(2), WithBackoff(5*time.Millisecond, 50*time.Millisecond)}

	seed, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "abc"), "127.0.0.1:0", options...)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	nodes := []*Node{seed}
	for _, s := range []string{"123", "2b3", "3ac"} {
		j, err := StartJoiner(p163, core.Options{}, id.MustParse(p163, s), "127.0.0.1:0", options...)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		if err := j.Join(seed.Ref()); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := j.AwaitStatus(ctx, core.StatusInSystem); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
		nodes = append(nodes, j)
	}

	// Wait until every node's view is populated and gossip flowed both
	// ways (pushes received, pulls answered somewhere in the network).
	deadline := time.Now().Add(20 * time.Second)
	for _, n := range nodes {
		for {
			st, ok := n.SamplingStats()
			if !ok {
				t.Fatalf("node %v reports no sampling despite WithSampling", n.Ref().ID)
			}
			if st.Rounds > 0 && st.ViewSize > 0 && st.SamplerFill > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %v sampling never converged: %+v", n.Ref().ID, st)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	total := sampling.Stats{}
	for _, n := range nodes {
		st, _ := n.SamplingStats()
		total.PushesReceived += st.PushesReceived
		total.PullsAnswered += st.PullsAnswered
	}
	if total.PushesReceived == 0 || total.PullsAnswered == 0 {
		t.Errorf("no gossip traffic crossed the wire: %+v", total)
	}

	st := adminStatus(t, seed)
	if st.Sampling == nil || st.Sampling.Rounds == 0 {
		t.Errorf("/status sampling section missing or dead: %+v", st.Sampling)
	}
}
