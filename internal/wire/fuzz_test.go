package wire

import (
	"bytes"
	"testing"

	"hypercube/internal/id"
	"hypercube/internal/msg"
)

// FuzzBinaryDecode feeds arbitrary bytes through DecodePayload: it must
// never panic, and — because the codec is canonical — any payload it
// accepts must re-encode byte-identically.
func FuzzBinaryDecode(f *testing.F) {
	p := id.Params{B: 8, D: 5}
	t := &testing.T{}
	for _, env := range sampleEnvelopes(t) {
		if payload, err := EncodePayload(p, env); err == nil {
			f.Add(payload)
		}
	}
	if envs := sampleEnvelopes(t); len(envs) > 3 {
		if payload, err := EncodePayload(p, envs[:3]...); err == nil {
			f.Add(payload)
		}
	}
	// Hostile shapes: truncations, bad versions, padded fill vectors.
	f.Add([]byte{Version, 1, 3, byte(msg.TPong), 0, 0})
	f.Add([]byte{Version, 2, 1, 0})
	f.Add([]byte{99, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var envs []msg.Envelope
		if err := DecodePayload(p, data, func(env msg.Envelope) error {
			envs = append(envs, env)
			return nil
		}); err != nil {
			return
		}
		re, err := EncodePayload(p, envs...)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode not byte-identical\n got %x\nwant %x", re, data)
		}
	})
}
