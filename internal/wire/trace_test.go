package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hypercube/internal/msg"
	"hypercube/internal/trace"
)

// sampleTraceContext builds a deterministic non-zero context from one
// seed byte, so golden vectors stay stable.
func sampleTraceContext(seed byte) trace.Context {
	var c trace.Context
	for i := range c.Trace {
		c.Trace[i] = seed + byte(i)
	}
	for i := range c.Span {
		c.Span[i] = seed ^ byte(0xa0+i)
	}
	if !c.Sampled() || c.Span.IsZero() {
		panic("sampleTraceContext built a zero context")
	}
	return c
}

// Traced envelopes must round-trip through the v2 payload with their
// context intact, canonically (re-encode byte-identical), and the
// version must be auto-selected: any traced record makes the payload
// v2, none keeps it v1 — byte-identical to the pre-v2 encoder.
func TestTraceContextRoundTrip(t *testing.T) {
	for i, env := range sampleEnvelopes(t) {
		env.Trace = sampleTraceContext(byte(i + 1))
		payload, err := EncodePayload(tp, env)
		if err != nil {
			t.Fatalf("sample %d (%v): encode: %v", i, env.Msg.Type(), err)
		}
		if payload[0] != VersionTraced {
			t.Fatalf("sample %d: traced payload has version %d, want %d", i, payload[0], VersionTraced)
		}
		back, err := DecodeOne(tp, payload)
		if err != nil {
			t.Fatalf("sample %d (%v): decode: %v", i, env.Msg.Type(), err)
		}
		if back.Trace != env.Trace {
			t.Fatalf("sample %d (%v): context diverged: got %v/%v want %v/%v",
				i, env.Msg.Type(), back.Trace.Trace, back.Trace.Span, env.Trace.Trace, env.Trace.Span)
		}
		re, err := EncodePayload(tp, back)
		if err != nil {
			t.Fatalf("sample %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(re, payload) {
			t.Fatalf("sample %d (%v): re-encode not byte-identical", i, env.Msg.Type())
		}
		assertEnvelopeEqual(t, env, back)
	}
}

// A mixed payload — some records traced, some not — is v2 with per-
// record flags, and each record keeps its own context.
func TestTraceMixedBatch(t *testing.T) {
	envs := sampleEnvelopes(t)[:6]
	envs[1].Trace = sampleTraceContext(7)
	envs[4].Trace = sampleTraceContext(9)
	payload, err := EncodePayload(tp, envs...)
	if err != nil {
		t.Fatal(err)
	}
	if payload[0] != VersionTraced {
		t.Fatalf("mixed payload has version %d, want %d", payload[0], VersionTraced)
	}
	var got []msg.Envelope
	if err := DecodePayload(tp, payload, func(env msg.Envelope) error {
		got = append(got, env)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range envs {
		if got[i].Trace != envs[i].Trace {
			t.Fatalf("record %d context diverged", i)
		}
	}
	// Untraced batches must stay v1 — byte-identical to the old encoder.
	plain, err := EncodePayload(tp, sampleEnvelopes(t)[:6]...)
	if err != nil {
		t.Fatal(err)
	}
	if plain[0] != Version {
		t.Fatalf("untraced payload has version %d, want %d", plain[0], Version)
	}
}

// StripTraceTrailers rewrites a v2 payload into the v1 payload a
// version-1-only node would have produced for the same envelopes: the
// version byte drops to 1 and every record's trailer is removed. Test
// helper shared with the differential fuzz target.
func stripTraceTrailers(t *testing.T, payload []byte) []byte {
	t.Helper()
	if len(payload) < headerLen || payload[0] != VersionTraced {
		t.Fatalf("not a v2 payload")
	}
	out := []byte{Version, payload[1]}
	pos := headerLen
	for i := 0; i < int(payload[1]); i++ {
		bodyLen, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			t.Fatalf("bad record %d", i)
		}
		end := pos + n + int(bodyLen)
		out = append(out, payload[pos:end]...)
		pos = end
		switch payload[pos] {
		case 0:
			pos++
		case 1:
			pos += 1 + traceCtxLen
		default:
			t.Fatalf("record %d: bad trailer flags %d", i, payload[pos])
		}
	}
	if pos != len(payload) {
		t.Fatalf("%d trailing bytes", len(payload)-pos)
	}
	return out
}

// Differential v2↔v1: stripping the trailers from any traced payload
// must yield a valid v1 payload decoding to the same envelopes minus
// their trace context — the exact view a v1-only decoder has of traced
// traffic after a re-encode hop.
func TestTraceStripDifferential(t *testing.T) {
	envs := sampleEnvelopes(t)
	for i := range envs {
		if i%2 == 0 {
			envs[i].Trace = sampleTraceContext(byte(i + 1))
		}
	}
	for n := 1; n <= len(envs); n += 7 {
		batch := envs[:n]
		v2, err := EncodePayloadV(tp, VersionTraced, batch...)
		if err != nil {
			t.Fatal(err)
		}
		v1 := stripTraceTrailers(t, v2)
		var got []msg.Envelope
		if err := DecodePayload(tp, v1, func(env msg.Envelope) error {
			got = append(got, env)
			return nil
		}); err != nil {
			t.Fatalf("stripped payload rejected: %v", err)
		}
		if len(got) != len(batch) {
			t.Fatalf("stripped payload decoded %d envelopes, want %d", len(got), len(batch))
		}
		for j := range batch {
			if got[j].Trace.Sampled() {
				t.Fatalf("record %d kept a trace context through the strip", j)
			}
			want := batch[j]
			want.Trace = trace.Context{}
			assertEnvelopeEqual(t, want, got[j])
			if got[j].From != want.From || got[j].To != want.To {
				t.Fatalf("record %d refs diverged", j)
			}
		}
	}
}

// Hostile trailer shapes must be rejected, loudly and as malformed.
func TestTraceTrailerRejectsHostile(t *testing.T) {
	env := sampleEnvelopes(t)[0]
	env.Trace = sampleTraceContext(3)
	good, err := EncodePayload(tp, env)
	if err != nil {
		t.Fatal(err)
	}
	trailerAt := len(good) - 1 - traceCtxLen
	if good[trailerAt] != 1 {
		t.Fatalf("trailer flags not where expected")
	}
	mut := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	cases := map[string][]byte{
		"flags byte 2":      mut(func(b []byte) []byte { b[trailerAt] = 2; return b }),
		"truncated trailer": good[:len(good)-4],
		"zero trace ID": mut(func(b []byte) []byte {
			for i := 0; i < traceIDLen; i++ {
				b[trailerAt+1+i] = 0
			}
			return b
		}),
		"zero span ID": mut(func(b []byte) []byte {
			for i := 0; i < spanIDLen; i++ {
				b[trailerAt+1+traceIDLen+i] = 0
			}
			return b
		}),
		"v1 with trailer": mut(func(b []byte) []byte { b[0] = Version; return b }),
		"v2 missing trailer": func() []byte {
			v1, err := EncodePayloadV(tp, Version, sampleEnvelopes(t)[0])
			if err != nil {
				t.Fatal(err)
			}
			v1[0] = VersionTraced
			return v1
		}(),
	}
	for name, data := range cases {
		if _, err := DecodeOne(tp, data); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !IsMalformed(err) {
			t.Errorf("%s: error not marked malformed: %v", name, err)
		}
	}
	// Encoder-side guards: traced envelope under v1, zero span with a
	// live trace ID.
	if _, err := EncodePayloadV(tp, Version, env); err == nil {
		t.Error("EncodePayloadV(v1) accepted a traced envelope")
	}
	bad := env
	bad.Trace.Span = trace.SpanID{}
	if _, err := EncodePayload(tp, bad); err == nil {
		t.Error("encoder accepted a context with zero span ID")
	}
}

// Golden vectors for the v2 trailer: any layout change must be
// deliberate. Regenerate with
//
//	go test ./internal/wire -run TestTraceGoldenVectors -update
func TestTraceGoldenVectors(t *testing.T) {
	envs := sampleEnvelopes(t)
	for i := range envs {
		envs[i].Trace = sampleTraceContext(byte(i + 1))
	}
	// One untraced record inside a v2 payload (flags 0) is part of the
	// format too.
	plain := sampleEnvelopes(t)[0]
	path := filepath.Join("testdata", "golden_v2.txt")
	encode := func(i int) []byte {
		var payload []byte
		var err error
		if i < len(envs) {
			payload, err = EncodePayload(tp, envs[i])
		} else {
			payload, err = EncodePayloadV(tp, VersionTraced, plain)
		}
		if err != nil {
			t.Fatal(err)
		}
		return payload
	}
	names := func(i int) string {
		if i < len(envs) {
			return envs[i].Msg.Type().String()
		}
		return plain.Msg.Type().String() + "-untraced"
	}
	total := len(envs) + 1
	if *update {
		var sb strings.Builder
		sb.WriteString("# Golden v2 wire vectors: <kind> <hex payload>, one per sample envelope.\n")
		sb.WriteString("# Regenerate with: go test ./internal/wire -run TestTraceGoldenVectors -update\n")
		for i := 0; i < total; i++ {
			fmt.Fprintf(&sb, "%s %s\n", names(i), hex.EncodeToString(encode(i)))
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != total {
		t.Fatalf("golden file has %d vectors, want %d (regenerate with -update)", len(lines), total)
	}
	for i := 0; i < total; i++ {
		payload := encode(i)
		fields := strings.Fields(lines[i])
		if len(fields) != 2 {
			t.Fatalf("golden line %d malformed: %q", i, lines[i])
		}
		want, err := hex.DecodeString(fields[1])
		if err != nil {
			t.Fatalf("golden line %d: %v", i, err)
		}
		if fields[0] != names(i) {
			t.Fatalf("golden line %d is %s, sample is %s (regenerate with -update)", i, fields[0], names(i))
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("v2 wire layout changed for %s\n got %x\nwant %x\nif deliberate, bump VersionTraced and regenerate with -update",
				names(i), payload, want)
		}
		back, err := DecodeOne(tp, want)
		if err != nil {
			t.Fatalf("golden %s no longer decodes: %v", names(i), err)
		}
		if i < len(envs) {
			if back.Trace != envs[i].Trace {
				t.Fatalf("golden %s context diverged", names(i))
			}
			assertEnvelopeEqual(t, envs[i], back)
		} else if back.Trace.Sampled() {
			t.Fatalf("untraced golden decoded with a context")
		}
	}
}
