package nemesis

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/nemesis/oracle"
)

var p164 = id.Params{B: 16, D: 4}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, p164, 32, 8)
	b := Generate(42, p164, 32, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	c := Generate(43, p164, 32, 8)
	if reflect.DeepEqual(a.Steps, c.Steps) {
		t.Fatal("different seeds produced identical step lists")
	}
	for seed := uint64(0); seed < 50; seed++ {
		s := Generate(seed, p164, 32, 8)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d generated an invalid schedule: %v", seed, err)
		}
		if len(s.Steps) != 8 {
			t.Fatalf("seed %d: %d steps, want 8", seed, len(s.Steps))
		}
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := Generate(7, p164, 24, 8)
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip changed the schedule:\n%v\n%v", s, back)
	}
	if _, err := ParseSchedule([]byte(`{"seed":1,"b":16,"d":4,"nodes":16,"steps":[{"op":"warp-core-breach"}]}`)); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestExecuteDeterministic(t *testing.T) {
	s := Generate(11, p164, 16, 5)
	opt := Options{SyncEvery: 500 * time.Millisecond, ReachPairs: 8}
	a, err := Execute(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same schedule, different results:\nrun1: %+v\nrun2: %+v", a, b)
	}
}

// injectedViolation is a hand-written schedule that is guaranteed to
// violate an invariant: the 30s clock pause is far beyond the
// declaration window (the generator caps pauses at 2.5s), so the paused
// node — alive the whole time — is declared failed: a false positive.
// The surrounding steps are noise for the shrinker to discard.
func injectedViolation() Schedule {
	return Schedule{
		Seed: 5, B: 16, D: 4, Nodes: 16,
		Steps: []Action{
			{Op: OpJoinWave, Count: 3, Gap: time.Second},
			{Op: OpLoss, Rate: 0.08, Dur: 2 * time.Second, Gap: time.Second},
			{Op: OpPause, Count: 1, Dur: 30 * time.Second, Gap: 2 * time.Second},
			{Op: OpQuiesce, Gap: time.Second},
			{Op: OpRestart, Count: 1, Gap: time.Second},
		},
	}
}

func TestShrinkInjectedViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking runs dozens of simulations")
	}
	opt := Options{SyncEvery: 500 * time.Millisecond, ReachPairs: 8}
	s := injectedViolation()
	res, err := Execute(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatal("the injected schedule produced no findings")
	}
	target := res.Findings[0].Check
	if target != oracle.CheckFalseDecl {
		t.Logf("primary finding is %q (findings: %v)", target, res.Findings)
	}

	sh := Shrink(s, opt, target, 150)
	if len(sh.Findings) == 0 {
		t.Fatal("shrink lost the violation")
	}
	if len(sh.Schedule.Steps) >= len(s.Steps) {
		t.Fatalf("shrink did not drop any step: %d -> %d", len(s.Steps), len(sh.Schedule.Steps))
	}
	found := false
	for _, f := range sh.Findings {
		if f.Check == target {
			found = true
		}
	}
	if !found {
		t.Fatalf("shrunk schedule reproduces %v, not the target %q", sh.Findings, target)
	}
	t.Logf("shrunk %d steps -> %d (nodes %d -> %d) in %d executions",
		len(s.Steps), len(sh.Schedule.Steps), s.Nodes, sh.Schedule.Nodes, sh.Executions)

	// The shrinker's output must itself be deterministic.
	sh2 := Shrink(s, opt, target, 150)
	if !reflect.DeepEqual(sh.Schedule, sh2.Schedule) || !reflect.DeepEqual(sh.Findings, sh2.Findings) {
		t.Fatal("two shrinks of the same schedule diverged")
	}
}

func TestReproReplayRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("executes two full simulations")
	}
	opt := Options{SyncEvery: 500 * time.Millisecond, ReachPairs: 8}
	s := Schedule{
		Seed: 5, B: 16, D: 4, Nodes: 16,
		Steps: []Action{{Op: OpPause, Count: 1, Dur: 30 * time.Second, Gap: 2 * time.Second}},
	}
	res, err := Execute(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatal("over-window pause produced no findings")
	}
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := WriteRepro(path, Repro{Schedule: s, Findings: res.Findings}); err != nil {
		t.Fatal(err)
	}
	r, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	got, match, err := Replay(r, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !match {
		t.Fatalf("replay diverged from recording:\nrecorded: %v\nreplayed: %v", r.Findings, got)
	}
}
