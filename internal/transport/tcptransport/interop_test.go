package tcptransport

import (
	"context"
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
)

// TestMixedVersionInterop is the wire-v2 rollout test: a cluster of
// traced nodes speaks v2 payloads (trace trailers on every sampled
// record) while one tracerless node — exactly what a binary from
// before the tracing release looks like on the wire, since a node
// without a tracer emits v1 and drops inbound trace context — joins
// and serves as a bootstrap gateway. Joins through and around the
// opaque hop must succeed, traced nodes must keep producing spans, and
// the opaque node must emit no trace state at all.
func TestMixedVersionInterop(t *testing.T) {
	traced := []Option{WithTraceSample(1), WithTraceRing(8192)}
	seed, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "a1c"), "127.0.0.1:0", traced...)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	join := func(n *Node, via *Node) {
		t.Helper()
		if err := n.Join(via.Ref()); err != nil {
			t.Fatal(err)
		}
		if err := n.AwaitStatus(ctx, core.StatusInSystem); err != nil {
			t.Fatal(err)
		}
	}

	// A traced node joins the traced seed: pure v2 traffic.
	a, err := StartJoiner(p163, core.Options{}, id.MustParse(p163, "b2d"), "127.0.0.1:0", traced...)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	join(a, seed)

	// The "old binary": no WithTraceSample, so no tracer — it decodes
	// the cluster's v2 frames, ignores the trailers, and emits v1. The
	// ring is tracing-agnostic, so we can still watch its events.
	old, err := StartJoiner(p163, core.Options{}, id.MustParse(p163, "c3e"), "127.0.0.1:0", WithTraceRing(8192))
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	join(old, seed)

	// A traced node bootstraps THROUGH the opaque node: its join's
	// first hop lands on a peer that strips trace context.
	c, err := StartJoiner(p163, core.Options{}, id.MustParse(p163, "d4f"), "127.0.0.1:0", traced...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	join(c, old)

	// Traced nodes produced sampled spans despite the mixed cluster.
	events, ok := seed.DrainTrace()
	if !ok {
		t.Fatal("seed has no trace ring")
	}
	sampled := 0
	for _, e := range events {
		if e.Trace != "" {
			sampled++
		}
	}
	if sampled == 0 {
		t.Error("traced seed emitted no events with trace context")
	}

	// The opaque node never originates or propagates trace state.
	events, ok = old.DrainTrace()
	if !ok {
		t.Fatal("old node has no trace ring")
	}
	if len(events) == 0 {
		t.Fatal("old node emitted no events")
	}
	for _, e := range events {
		if e.Trace != "" || e.Span != "" || e.Parent != "" {
			t.Fatalf("tracerless node emitted trace state: %+v", e)
		}
	}
}
