// Command churn exercises the §7 extension protocols (leave, failure
// recovery, table optimization) at scale and reports their cost and
// outcome: the paper proposes the conceptual foundation for these
// protocols as future work; this tool measures the implementation built
// on it.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"time"

	"hypercube/internal/antientropy"
	"hypercube/internal/core"
	"hypercube/internal/guard"
	"hypercube/internal/id"
	"hypercube/internal/liveness"
	"hypercube/internal/msg"
	"hypercube/internal/nemesis/oracle"
	"hypercube/internal/netcheck"
	"hypercube/internal/obs"
	"hypercube/internal/overlay"
	"hypercube/internal/table"
	"hypercube/internal/topology"
)

// traceSample is package-level because scenarioConfig (scenarios.go)
// reads it alongside the per-mode configs built here.
var traceSample = flag.Float64("trace-sample", 1, "causal-trace head-sampling rate in [0,1]; effective only with -trace (reconstruct with fleettrace)")

func main() {
	var (
		b      = flag.Int("b", 16, "digit base")
		d      = flag.Int("d", 8, "digits per ID")
		n      = flag.Int("n", 1000, "initial network size")
		leaves = flag.Int("leaves", 100, "graceful leaves (concurrent wave)")
		crash  = flag.Int("crashes", 20, "crash/recovery cycles")
		seed   = flag.Int64("seed", 1, "seed")
		auto   = flag.Bool("crash", false, "self-healing crash mode: nodes detect and repair crashes themselves (no recovery oracle)")
		heal   = flag.Duration("heal", 20*time.Second, "virtual healing window per crash in -crash mode")

		trace = flag.String("trace", "", "write every protocol event as JSONL to this file (analyze with tracestat or fleettrace)")

		partition = flag.Bool("partition", false, "partition experiment: split the network into halves, verify declarations are held, heal, and measure anti-entropy reconvergence (replaces the churn phases)")
		split     = flag.Duration("split", 15*time.Second, "virtual duration of the partition in -partition mode")
		syncEvery = flag.Duration("sync-interval", time.Second, "anti-entropy round interval in -partition and -byzantine modes")
		joins     = flag.Int("joins", 2, "nodes joining mid-experiment in -partition and -byzantine modes")

		byzantine = flag.Bool("byzantine", false, "byzantine experiment: a fraction of members mutate, withhold, and replay their outgoing messages under 10% loss; the guard layer must absorb it and the network must stay consistent (replaces the churn phases)")
		byzFrac   = flag.Float64("byz-fraction", 0.1, "fraction of established members marked byzantine in -byzantine mode and under -with-byzantine")
		byzRate   = flag.Float64("byz-corrupt", 0.25, "per-envelope corruption probability of a byzantine sender in -byzantine mode and under -with-byzantine")
		byzWindow = flag.Duration("byz-window", 60*time.Second, "virtual run length of -byzantine mode")

		flashcrowd = flag.Bool("flashcrowd", false, "flash-crowd experiment: a wave of simultaneous joins funnels through a handful of gateways; every joiner must be admitted with zero false declarations (replaces the churn phases)")
		fcJoins    = flag.Int("fc-joins", 256, "simultaneous joiners in -flashcrowd mode")
		fcGateways = flag.Int("fc-gateways", 4, "distinct gateways admitting the -flashcrowd wave (1..4)")
		massfail   = flag.Bool("massfail", false, "mass-failure experiment: every member hosted in the chosen stub domains crashes at one instant; survivors must detect, repair, and reconverge with zero false declarations (replaces the churn phases)")
		mfStubs    = flag.Int("mf-stubs", 2, "stub domains killed in -massfail mode")
		rolling    = flag.Bool("rollingrestart", false, "rolling-restart experiment: every member restarts in waves, persisting its table and sampled peers to disk and rejoining from the dump; zero false declarations allowed (replaces the churn phases)")
		waveSize   = flag.Int("wave", 8, "restart wave size in -rollingrestart mode")
		withByz    = flag.Bool("with-byzantine", false, "compose the byzantine fault model (-byz-fraction, -byz-corrupt) into -flashcrowd, -massfail, -rollingrestart, or -graydegrade")

		gray       = flag.Bool("graydegrade", false, "gray-degradation experiment: a fraction of members turns slow-but-alive; the adaptive-timeout detector must hold every declaration while still catching genuine crashes, contrasted against the fixed-timeout baseline on the same seed (replaces the churn phases)")
		grayFrac   = flag.Float64("gray-fraction", 0.1, "fraction of members marked slow in -graydegrade mode")
		grayDelay  = flag.Duration("gray-delay", 600*time.Millisecond, "full per-side processing delay of a slow member in -graydegrade mode (a round trip through one slow endpoint inflates by twice this)")
		grayRamp   = flag.Duration("gray-ramp", 5*time.Second, "how long a slow member takes to ramp from zero to -gray-delay")
		grayWindow = flag.Duration("gray-window", 30*time.Second, "virtual degradation window of -graydegrade mode before the genuine crashes")
	)
	flag.Parse()
	p := id.Params{B: *b, D: *d}
	if err := p.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "churn: %v\n", err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(*seed))

	// exit flushes the trace (os.Exit skips defers) before terminating.
	var sink *obs.JSONL
	exit := func(code int) {
		if sink != nil {
			if err := sink.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "churn: trace: %v\n", err)
				code = 1
			}
		}
		os.Exit(code)
	}
	if *trace != "" {
		var err error
		if sink, err = obs.NewJSONLFile(*trace); err != nil {
			fmt.Fprintf(os.Stderr, "churn: %v\n", err)
			os.Exit(1)
		}
	}

	topo, err := topology.Generate(topology.Small(*seed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "churn: %v\n", err)
		exit(1)
	}
	tl := overlay.NewTopologyLatency(topo)
	if *partition {
		exit(runPartition(p, *n, *joins, *seed, *split, *syncEvery, topo, tl, sink))
	}
	if *byzantine {
		exit(runByzantine(p, *n, *joins, *seed, *byzFrac, *byzRate, *byzWindow, *syncEvery, topo, tl, sink))
	}
	if *flashcrowd {
		exit(runFlashCrowd(p, *n, *fcJoins, *fcGateways, *seed, *syncEvery, *withByz, *byzFrac, *byzRate, topo, tl, sink))
	}
	if *massfail {
		exit(runMassFail(p, *n, *mfStubs, *seed, *syncEvery, *withByz, *byzFrac, *byzRate, topo, tl, sink))
	}
	if *rolling {
		exit(runRollingRestart(p, *n, *waveSize, *seed, *syncEvery, *withByz, *byzFrac, *byzRate, topo, tl, sink))
	}
	if *gray {
		exit(runGrayDegrade(p, *n, *seed, *grayFrac, *grayDelay, *grayRamp, *grayWindow, *syncEvery, *withByz, *byzFrac, *byzRate, topo, tl, sink))
	}
	cfg := overlay.Config{Params: p, Latency: tl.Func()}
	if sink != nil {
		// Assigning a nil *obs.JSONL directly would make cfg.Sink a
		// non-nil interface holding nil.
		cfg.Sink = sink
		cfg.TraceSample = *traceSample
		cfg.TraceSeed = uint64(*seed)
	}
	if *auto {
		// Self-healing mode: every node runs a failure detector and the
		// clock-driven repair machinery; crashes below are announced to
		// no one.
		cfg.Liveness = &liveness.Config{}
		cfg.Opts.Timeouts = core.Timeouts{RetryAfter: 500 * time.Millisecond}
		cfg.TickInterval = 100 * time.Millisecond
	}
	net := overlay.New(cfg)
	refs := overlay.RandomRefs(p, *n, rng, nil)
	hosts := topo.AttachHosts(len(refs), rng)
	for i, ref := range refs {
		tl.Bind(ref.ID, hosts[i])
	}
	net.BuildDirect(refs, rng)
	fmt.Printf("initial consistent network: %d nodes (b=%d, d=%d)\n\n", net.Size(), p.B, p.D)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)

	// Concurrent graceful leaves. Clamp to the network size so a small -n
	// with the default -leaves doesn't index past the member list.
	if *leaves > len(refs) {
		*leaves = len(refs)
	}
	before := net.Delivered()
	perm := rng.Perm(len(refs))
	for i := 0; i < *leaves; i++ {
		if err := net.ScheduleLeave(refs[perm[i]].ID, 0); err != nil {
			fmt.Fprintf(os.Stderr, "churn: %v\n", err)
			exit(1)
		}
	}
	net.Run()
	gone := net.FinalizeLeaves()
	leaveMsgs := net.Delivered() - before
	violations := len(net.CheckConsistency())
	fmt.Fprintf(w, "graceful leaves\tcompleted %d/%d\tmessages %d (%.1f/leave)\tviolations %d\n",
		len(gone), *leaves, leaveMsgs, float64(leaveMsgs)/float64(*leaves), violations)

	// Crash / recovery cycles: with -crash the survivors' own probe and
	// timeout machinery detects and repairs each crash during a healing
	// window of virtual time; the default path names the dead node to the
	// batch recovery oracle.
	var totalLocal, totalRouted, totalRejoin, totalEmptied, unrepaired int
	survivors := make([]id.ID, 0, net.Size())
	for _, ref := range net.Members() {
		survivors = append(survivors, ref.ID)
	}
	rng.Shuffle(len(survivors), func(i, j int) { survivors[i], survivors[j] = survivors[j], survivors[i] })
	before = net.Delivered()
	for i := 0; i < *crash && i < len(survivors); i++ {
		dead := survivors[i]
		if err := net.InjectFailure(dead); err != nil {
			fmt.Fprintf(os.Stderr, "churn: %v\n", err)
			exit(1)
		}
		if *auto {
			net.RunFor(*heal)
			continue
		}
		st := net.RecoverFailure(dead, rng, 0)
		totalLocal += st.LocalRepairs
		totalRouted += st.RoutedRepairs
		totalRejoin += st.Rejoined
		totalEmptied += st.Emptied
		unrepaired += st.Unrepaired
	}
	crashMsgs := net.Delivered() - before
	violations = len(net.CheckConsistency())
	fmt.Fprintf(w, "crash recovery\t%d crashes\tmessages %d (%.1f/crash)\tviolations %d\n",
		*crash, crashMsgs, float64(crashMsgs)/float64(*crash), violations)
	if *auto {
		ls := net.LivenessStats()
		fmt.Fprintf(w, "\tself-healing: %d probes, %d indirect, %d suspects, %d recovered, %d declared\t\t\n",
			ls.ProbesSent, ls.IndirectSent, ls.Suspects, ls.Recovered, ls.Declared)
	} else {
		fmt.Fprintf(w, "\trepairs: %d local, %d routed, %d rejoins, %d emptied, %d unrepaired\t\t\n",
			totalLocal, totalRouted, totalRejoin, totalEmptied, unrepaired)
	}

	// Table optimization.
	srng := rand.New(rand.NewSource(*seed + 1))
	beforeStretch := net.MeasureStretch(1000, rand.New(rand.NewSource(*seed+2)))
	opt := net.OptimizeTables(2)
	afterStretch := net.MeasureStretch(1000, rand.New(rand.NewSource(*seed+2)))
	_ = srng
	violations = len(net.CheckConsistency())
	fmt.Fprintf(w, "optimization\t%d/%d entries switched\tstretch %.2f -> %.2f (p95 %.2f -> %.2f)\tviolations %d\n",
		opt.Improved, opt.Considered, beforeStretch.Mean, afterStretch.Mean,
		beforeStretch.P95, afterStretch.P95, violations)
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "churn: %v\n", err)
		exit(1)
	}

	// Survivor-side counters (the leavers' machines are gone, so count
	// receipts rather than sends).
	traffic := net.AggregateTraffic()
	fmt.Printf("\n%d LeaveMsg received, %d FindMsg sent in total\n",
		traffic.ReceivedOf(msg.TLeave), traffic.SentOf(msg.TFind))
	if unrepaired != 0 {
		fmt.Fprintf(os.Stderr, "churn: %d table entries left unrepaired\n", unrepaired)
	}
	exit(reportFinal(net, unrepaired != 0))
}

// reportFinal routes every mode through the shared oracle report (node
// count, Definition 3.8 consistency, guard counters) so the exit
// semantics of plain churn runs and every scenario mode — here and in
// cmd/nemesis — stay identical.
func reportFinal(net *overlay.Network, earlierFailure bool) int {
	return oracle.ReportFinal(os.Stdout, os.Stderr, net, earlierFailure)
}

// partitionJoiner constructs a fresh node ID whose rightmost digit
// matches the gateway and whose two-digit suffix no current member
// shares. The first property makes a join routed through the gateway
// resolve its copy phase without crossing the partition (a deeper shared
// suffix could put the copy target on the unreachable side and stall the
// join forever); the second makes its deeper copy levels legally empty.
func partitionJoiner(p id.Params, refs []table.Ref, taken map[id.ID]bool, rng *rand.Rand) (table.Ref, bool) {
	const digits = "0123456789abcdef"
	y0 := refs[0].ID.Digit(0)
	usedY1 := make(map[int]bool)
	for x := range taken {
		if x.Digit(0) == y0 {
			usedY1[x.Digit(1)] = true
		}
	}
	free := make([]int, 0, p.B)
	for y1 := 0; y1 < p.B; y1++ {
		if !usedY1[y1] {
			free = append(free, y1)
		}
	}
	for _, y1 := range rng.Perm(len(free)) {
		for attempt := 0; attempt < 64; attempt++ {
			s := make([]byte, p.D)
			for i := 2; i < p.D; i++ {
				s[p.D-1-i] = digits[rng.Intn(p.B)]
			}
			s[p.D-1] = digits[y0]
			s[p.D-2] = digits[free[y1]]
			x, err := id.Parse(p, string(s))
			if err != nil || taken[x] {
				continue
			}
			taken[x] = true
			return table.Ref{ID: x, Addr: "sim://" + string(s)}, true
		}
	}
	return table.Ref{}, false
}

// printViolations lists every netcheck violation on stderr so a failing
// run names the broken entries instead of just exiting non-zero.
func printViolations(v []netcheck.Violation) {
	oracle.PrintViolations(os.Stderr, v)
}

// runPartition is the -partition experiment: build a consistent network,
// split it into halves for a window long enough that every failure
// detector times out many times over, verify that partition-aware
// liveness held all declarations, then heal and count the anti-entropy
// rounds until Definition 3.8 consistency returns. Exit status is
// non-zero if anything was falsely declared dead or the tables never
// reconverge.
func runPartition(p id.Params, n, joins int, seed int64, split, syncEvery time.Duration, topo *topology.Topology, tl *overlay.TopologyLatency, sink *obs.JSONL) int {
	rng := rand.New(rand.NewSource(seed))
	cfg := overlay.Config{
		Params:  p,
		Latency: tl.Func(),
		Opts:    core.Options{Timeouts: core.Timeouts{RetryAfter: 500 * time.Millisecond}},
		Liveness: &liveness.Config{
			// Probe fast enough that every target accrues several misses
			// within the split window even when the round-robin cycles
			// through a dozen-plus targets per prober.
			ProbeInterval:  100 * time.Millisecond,
			ProbeTimeout:   400 * time.Millisecond,
			SuspectAfter:   3,
			IndirectProbes: 2,
			ConfirmRounds:  3,
			// Halving the network puts ~50% of each node's targets out of
			// reach; 0.3 trips comfortably below that while staying above
			// any plausible crash fraction.
			PartitionThreshold: 0.3,
		},
		AntiEntropy:  &antientropy.Config{Interval: syncEvery},
		TickInterval: 100 * time.Millisecond,
	}
	if sink != nil {
		cfg.Sink = sink
		cfg.TraceSample = *traceSample
		cfg.TraceSeed = uint64(seed)
	}
	net := overlay.New(cfg)
	taken := make(map[id.ID]bool)
	refs := overlay.RandomRefs(p, n, rng, taken)
	hosts := topo.AttachHosts(len(refs), rng)
	for i, ref := range refs {
		tl.Bind(ref.ID, hosts[i])
	}
	net.BuildDirect(refs, rng)
	fmt.Printf("partition experiment: %d nodes (b=%d, d=%d), split %v, sync every %v, %d mid-split joins\n\n",
		net.Size(), p.B, p.D, split, syncEvery, joins)

	net.RunFor(2 * time.Second) // warm-up: probers acquire their targets
	if st := net.LivenessStats(); st.Declared != 0 {
		fmt.Fprintf(os.Stderr, "churn: %d declarations before the split\n", st.Declared)
		return 1
	}

	// Joiners enter through a side-A gateway while the network is split:
	// side B cannot hear about them, so its tables diverge and only the
	// post-heal anti-entropy rounds can reconverge them. Their IDs share
	// the gateway's rightmost digit so the join's copy phase resolves
	// inside side A (a random ID could legitimately need the unreachable
	// side and never finish joining), and they are listed in side A's
	// partition group — an unlisted node would keep full connectivity and
	// defeat the experiment.
	joiners := make([]table.Ref, 0, joins)
	for i := 0; i < joins; i++ {
		j, ok := partitionJoiner(p, refs, taken, rng)
		if !ok {
			// A truncated wave must fail loudly: continuing with fewer
			// joiners would silently run a different experiment than the
			// one the flags requested.
			fmt.Fprintf(os.Stderr, "churn: ID space under the gateway's digit exhausted after %d of %d joiners — rerun with -joins %d or fewer, or raise -b\n", i, joins, i)
			return 1
		}
		joiners = append(joiners, j)
	}
	jhosts := topo.AttachHosts(len(joiners), rng)
	sideA := make([]id.ID, 0, len(refs)/2+len(joiners))
	sideB := make([]id.ID, 0, len(refs)-len(refs)/2)
	for i, r := range refs {
		if i < len(refs)/2 {
			sideA = append(sideA, r.ID)
		} else {
			sideB = append(sideB, r.ID)
		}
	}
	jms := make([]*core.Machine, 0, len(joiners))
	for i, j := range joiners {
		tl.Bind(j.ID, jhosts[i])
		sideA = append(sideA, j.ID)
	}
	net.Partition(sideA, sideB)
	for _, j := range joiners {
		jms = append(jms, net.ScheduleJoin(j, refs[0], 4*time.Second, refs[1], refs[2]))
	}
	net.RunFor(split)
	st := net.LivenessStats()
	fmt.Printf("split %v: %d/%d probers in partition mode, %d messages cut, %d declarations held, %d declared\n",
		split, net.PartitionedCount(), net.Size(), net.PartitionDropped(), st.DeclarationsHeld, st.Declared)
	if st.Declared != 0 {
		fmt.Fprintf(os.Stderr, "churn: %d false-positive declarations during the partition\n", st.Declared)
		printViolations(net.CheckConsistency())
		return 1
	}
	for i, jm := range jms {
		if !jm.IsSNode() {
			fmt.Fprintf(os.Stderr, "churn: joiner %v stuck in %v — a partitioned side must still admit nodes\n",
				joiners[i].ID, jm.Status())
			return 1
		}
	}

	net.Heal()
	diverged := len(net.CheckConsistency())
	const maxRounds = 50
	rounds := 0
	for ; rounds < maxRounds && len(net.CheckConsistency()) != 0; rounds++ {
		net.RunFor(syncEvery)
	}
	ae := net.AntiEntropyStats()
	fmt.Printf("heal: %d violations at heal time, reconverged after %d anti-entropy rounds (%v); pulled %d, purged %d\n",
		diverged, rounds, time.Duration(rounds)*syncEvery, ae.Pulled, ae.Purged)

	// Settle: let the restored pongs clear the held suspicions so every
	// prober leaves partition mode before the final audit.
	net.RunFor(3 * time.Second)
	st = net.LivenessStats()
	fmt.Printf("\n%d declared (want 0), partition mode entered %d / exited %d\n",
		st.Declared, st.PartitionsEntered, st.PartitionsExited)
	if net.PartitionedCount() != 0 {
		fmt.Fprintf(os.Stderr, "churn: %d probers still in partition mode after heal\n", net.PartitionedCount())
	}
	return reportFinal(net, st.Declared != 0 || net.PartitionedCount() != 0)
}

// runByzantine is the -byzantine experiment: an established network in
// which a fraction of members corrupt their outgoing traffic (on top of
// 10% message loss) while honest nodes join through a wave. The guard
// layer must reject and charge every hostile envelope, the wave must
// complete, and the network must end Definition 3.8 consistent — all
// with zero false failure declarations.
func runByzantine(p id.Params, n, joins int, seed int64, frac, corrupt float64, window, syncEvery time.Duration, topo *topology.Topology, tl *overlay.TopologyLatency, sink *obs.JSONL) int {
	rng := rand.New(rand.NewSource(seed))
	cfg := overlay.Config{
		Params:  p,
		Latency: tl.Func(),
		Opts: core.Options{
			Timeouts: core.Timeouts{
				RetryAfter:  500 * time.Millisecond,
				MaxAttempts: 4,
				RepairAfter: 600 * time.Millisecond,
			},
			Guard: &guard.Policy{},
		},
		Loss: &overlay.Loss{Rate: 0.10, Seed: seed},
		Liveness: &liveness.Config{
			// Topology latencies stack up over the four hops of an indirect
			// probe, and 10% symmetric loss eats confirmation rounds;
			// tolerate both, since nothing in this experiment ever crashes.
			ProbeInterval:  100 * time.Millisecond,
			ProbeTimeout:   time.Second,
			SuspectAfter:   4,
			IndirectProbes: 3,
			ConfirmRounds:  4,
		},
		AntiEntropy:  &antientropy.Config{Interval: syncEvery},
		TickInterval: 100 * time.Millisecond,
		Byzantine:    &overlay.Byzantine{Fraction: frac, CorruptRate: corrupt, Seed: seed},
	}
	if sink != nil {
		cfg.Sink = sink
		cfg.TraceSample = *traceSample
		cfg.TraceSeed = uint64(seed)
	}
	net := overlay.New(cfg)
	taken := make(map[id.ID]bool)
	refs := overlay.RandomRefs(p, n, rng, taken)
	hosts := topo.AttachHosts(len(refs), rng)
	for i, ref := range refs {
		tl.Bind(ref.ID, hosts[i])
	}
	net.BuildDirect(refs, rng)
	byz := net.SelectByzantine(refs)
	byzSet := make(map[id.ID]bool, len(byz))
	for _, x := range byz {
		byzSet[x] = true
	}
	// Joiners bootstrap through honest members: trusting an adversarial
	// gateway is the bootstrap-trust problem, out of scope here.
	honest := make([]table.Ref, 0, len(refs)-len(byz))
	for _, r := range refs {
		if !byzSet[r.ID] {
			honest = append(honest, r)
		}
	}
	fmt.Printf("byzantine experiment: %d nodes (b=%d, d=%d), %d byzantine (%.0f%%), corrupt rate %.2f, 10%% loss, %d joins, %v window\n\n",
		net.Size(), p.B, p.D, len(byz), 100*frac, corrupt, joins, window)

	joiners := overlay.RandomRefs(p, joins, rng, taken)
	jhosts := topo.AttachHosts(len(joiners), rng)
	jms := make([]*core.Machine, 0, len(joiners))
	for i, j := range joiners {
		tl.Bind(j.ID, jhosts[i])
		g := honest[rng.Intn(len(honest))]
		jms = append(jms, net.ScheduleJoin(j, g, time.Second, honest[0], honest[1]))
	}
	net.RunFor(window)

	stuck := 0
	for i, jm := range jms {
		if !jm.IsSNode() {
			fmt.Fprintf(os.Stderr, "churn: joiner %v stuck in %v under byzantine noise\n", joiners[i].ID, jm.Status())
			stuck++
		}
	}
	bz := net.ByzantineStats()
	st := net.LivenessStats()
	fmt.Printf("fault model: %d envelopes mutated, %d withheld, %d replayed\n", bz.Mutated, bz.Withheld, bz.Replayed)
	fmt.Printf("liveness: %d declared (want 0), %d suspects, %d recovered\n", st.Declared, st.Suspects, st.Recovered)
	if st.Declared != 0 {
		fmt.Fprintf(os.Stderr, "churn: %d live nodes declared failed under byzantine noise\n", st.Declared)
	}
	if bz.Mutated == 0 {
		fmt.Fprintf(os.Stderr, "churn: fault model never engaged — nothing was tested\n")
	}
	return reportFinal(net, stuck != 0 || st.Declared != 0 || bz.Mutated == 0)
}
