// Package netcheck verifies global properties of a set of neighbor
// tables: the consistency conditions of Definition 3.8 of Liu & Lam
// (ICDCS 2003) and pairwise reachability (Definition 3.7).
//
// The consistency check needs global knowledge and therefore lives in the
// verification harness, never in protocol nodes. It runs in O(N·d·b)
// using a registry of every ID suffix present in the network; by
// Lemma 3.1, condition (a) is equivalent to all-pairs reachability.
package netcheck

import (
	"fmt"
	"sort"

	"hypercube/internal/id"
	"hypercube/internal/table"
)

// ViolationKind classifies a consistency violation.
type ViolationKind uint8

const (
	// FalseNegative: some node has the entry's desired suffix but the
	// entry is empty — condition (a) of Definition 3.8 violated.
	FalseNegative ViolationKind = iota + 1
	// FalsePositive: no node has the desired suffix yet the entry is
	// filled — condition (b) violated.
	FalsePositive
	// WrongSuffix: the entry holds a node that does not have the entry's
	// desired suffix (a corrupted table).
	WrongSuffix
	// Ghost: the entry holds an ID that is not a member of the network.
	Ghost
	// StaleState: the entry's state bit is still T after quiescence.
	StaleState
)

// String names the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case FalseNegative:
		return "false-negative"
	case FalsePositive:
		return "false-positive"
	case WrongSuffix:
		return "wrong-suffix"
	case Ghost:
		return "ghost"
	case StaleState:
		return "stale-state"
	default:
		return fmt.Sprintf("ViolationKind(%d)", uint8(k))
	}
}

// Violation describes one table entry breaking consistency.
type Violation struct {
	Node         id.ID
	Level, Digit int
	Kind         ViolationKind
	Detail       string
}

// String renders the violation for test failure messages.
func (v Violation) String() string {
	return fmt.Sprintf("node %v entry (%d,%d): %v: %s", v.Node, v.Level, v.Digit, v.Kind, v.Detail)
}

// SuffixRegistry answers "does any network member have this suffix?" in
// O(1) after O(N·d) construction.
type SuffixRegistry struct {
	params  id.Params
	members map[id.ID]struct{}
	present map[id.Suffix]int // suffix -> member count
}

// NewSuffixRegistry indexes the given member set.
func NewSuffixRegistry(p id.Params, members []id.ID) *SuffixRegistry {
	r := &SuffixRegistry{
		params:  p,
		members: make(map[id.ID]struct{}, len(members)),
		present: make(map[id.Suffix]int, len(members)*p.D),
	}
	for _, x := range members {
		r.Add(x)
	}
	return r
}

// Add indexes one more member.
func (r *SuffixRegistry) Add(x id.ID) {
	if _, dup := r.members[x]; dup {
		return
	}
	r.members[x] = struct{}{}
	for k := 1; k <= r.params.D; k++ {
		r.present[x.Suffix(k)]++
	}
}

// Has reports whether any member has the suffix.
func (r *SuffixRegistry) Has(s id.Suffix) bool {
	if s.Len() == 0 {
		return len(r.members) > 0
	}
	return r.present[s] > 0
}

// Count returns the number of members with the suffix.
func (r *SuffixRegistry) Count(s id.Suffix) int {
	if s.Len() == 0 {
		return len(r.members)
	}
	return r.present[s]
}

// IsMember reports whether x is in the indexed set.
func (r *SuffixRegistry) IsMember(x id.ID) bool {
	_, ok := r.members[x]
	return ok
}

// Members returns the indexed IDs in sorted order.
func (r *SuffixRegistry) Members() []id.ID {
	out := make([]id.ID, 0, len(r.members))
	for x := range r.members {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// CheckConsistency verifies Definition 3.8 over the given tables: for
// every node x and entry (i,j), if some network member has the desired
// suffix j·x[i-1..0] the entry must hold such a member (condition a,
// false-negative freedom); otherwise the entry must be empty (condition
// b, false-positive freedom). It returns all violations found (nil when
// the network is consistent).
func CheckConsistency(p id.Params, tables map[id.ID]*table.Table) []Violation {
	members := make([]id.ID, 0, len(tables))
	for x := range tables {
		members = append(members, x)
	}
	reg := NewSuffixRegistry(p, members)

	var out []Violation
	// Deterministic iteration order for stable failure messages.
	sort.Slice(members, func(i, j int) bool { return members[i].Less(members[j]) })
	for _, x := range members {
		tbl := tables[x]
		for i := 0; i < p.D; i++ {
			for j := 0; j < p.B; j++ {
				want := tbl.DesiredSuffix(i, j)
				got := tbl.Get(i, j)
				switch {
				case reg.Has(want) && got.IsZero():
					out = append(out, Violation{
						Node: x, Level: i, Digit: j, Kind: FalseNegative,
						Detail: fmt.Sprintf("suffix %v exists in network (count %d) but entry empty", want, reg.Count(want)),
					})
				case !reg.Has(want) && !got.IsZero():
					out = append(out, Violation{
						Node: x, Level: i, Digit: j, Kind: FalsePositive,
						Detail: fmt.Sprintf("no member has suffix %v but entry holds %v", want, got.ID),
					})
				case !got.IsZero() && !got.ID.HasSuffix(want):
					out = append(out, Violation{
						Node: x, Level: i, Digit: j, Kind: WrongSuffix,
						Detail: fmt.Sprintf("entry holds %v which lacks suffix %v", got.ID, want),
					})
				case !got.IsZero() && !reg.IsMember(got.ID):
					out = append(out, Violation{
						Node: x, Level: i, Digit: j, Kind: Ghost,
						Detail: fmt.Sprintf("entry holds %v which is not a network member", got.ID),
					})
				}
			}
		}
	}
	return out
}

// Reachable reports whether dst is reachable from src within d hops by
// following neighbor pointers (Definition 3.7), together with the path
// walked.
func Reachable(p id.Params, tables map[id.ID]*table.Table, src, dst id.ID) (path []id.ID, ok bool) {
	cur := src
	path = append(path, cur)
	for hops := 0; hops <= p.D; hops++ {
		if cur == dst {
			return path, true
		}
		tbl, found := tables[cur]
		if !found {
			return path, false
		}
		k := cur.CommonSuffixLen(dst)
		hop := tbl.Get(k, dst.Digit(k))
		if hop.IsZero() {
			return path, false
		}
		cur = hop.ID
		path = append(path, cur)
	}
	return path, false
}

// CheckAllPairsReachability routes between every ordered pair of nodes and
// returns the pairs that failed. Quadratic; intended for small networks in
// tests (Lemma 3.1 makes it redundant with CheckConsistency, so it serves
// as an independent cross-check of the checker itself).
func CheckAllPairsReachability(p id.Params, tables map[id.ID]*table.Table) [][2]id.ID {
	var bad [][2]id.ID
	for src := range tables {
		for dst := range tables {
			if src == dst {
				continue
			}
			if _, ok := Reachable(p, tables, src, dst); !ok {
				bad = append(bad, [2]id.ID{src, dst})
			}
		}
	}
	return bad
}

// AllStatesS verifies that every *canonical* filled entry carries state S
// once the network is quiescent. An entry (i,j) of node x is canonical for
// occupant u when i == |csuf(x,u)|; a node may additionally appear at
// levels below its csuf (placed there while copying), and the protocol's
// InSysNotiMsg handler (Figure 14) only refreshes the canonical entry, so
// lower-level duplicates may legitimately retain a stale T bit.
func AllStatesS(p id.Params, tables map[id.ID]*table.Table) []Violation {
	var out []Violation
	for x, tbl := range tables {
		tbl.ForEach(func(level, digit int, n table.Neighbor) {
			canonical := x.CommonSuffixLen(n.ID) == level || n.ID == x
			if canonical && n.State != table.StateS {
				out = append(out, Violation{
					Node: x, Level: level, Digit: digit, Kind: StaleState,
					Detail: fmt.Sprintf("entry %v still has state %v", n.ID, n.State),
				})
			}
		})
	}
	return out
}
