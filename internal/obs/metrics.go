package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a dependency-free metrics registry: counters, gauges, and
// fixed-bucket histograms, exported in the Prometheus text exposition
// format. All instruments are safe for concurrent use (lock-free atomics
// on the update path); registration takes a lock and should happen at
// startup. Registering the same name twice returns the existing
// instrument, so packages can share a registry without coordination —
// but the kinds must match, which panics otherwise (a programming
// error, like a duplicate expvar).
type Registry struct {
	mu    sync.Mutex
	named map[string]any
	order []metricEntry
}

type metricEntry struct {
	name, help string
	kind       string // "counter", "gauge", "histogram"
	collect    func(w io.Writer, name string)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{named: make(map[string]any)}
}

func (r *Registry) register(name, help, kind string, m any, collect func(io.Writer, string)) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.named[name]; ok {
		for _, e := range r.order {
			if e.name == name && e.kind != kind {
				panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, e.kind))
			}
		}
		return existing
	}
	r.named[name] = m
	r.order = append(r.order, metricEntry{name: name, help: help, kind: kind, collect: collect})
	return m
}

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; negative deltas are ignored).
func (c *Counter) Add(n int) {
	if n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers (or fetches) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	return r.register(name, help, "counter", c, func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, c.Value())
	}).(*Counter)
}

// CounterVec is a family of counters split by one label.
type CounterVec struct {
	label string
	mu    sync.RWMutex
	by    map[string]*Counter
}

// With returns the counter for the given label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c, ok := v.by[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.by[value]; ok {
		return c
	}
	c = &Counter{}
	v.by[value] = c
	return c
}

// CounterVec registers (or fetches) the named counter family with a
// single label dimension.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{label: label, by: make(map[string]*Counter)}
	return r.register(name, help, "counter", v, func(w io.Writer, n string) {
		v.mu.RLock()
		values := make([]string, 0, len(v.by))
		for val := range v.by {
			values = append(values, val)
		}
		sort.Strings(values)
		for _, val := range values {
			fmt.Fprintf(w, "%s{%s=%q} %d\n", n, v.label, val, v.by[val].Value())
		}
		v.mu.RUnlock()
	}).(*CounterVec)
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers (or fetches) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	return r.register(name, help, "gauge", g, func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %s\n", n, formatFloat(g.Value()))
	}).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the right shape for instantaneous facts like queue depths or uptime.
// fn must be safe to call from the scrape goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", fn, func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %s\n", n, formatFloat(fn()))
	})
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: observation counts per upper bound, plus sum and count.
type Histogram struct {
	bounds []float64       // sorted upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	count  atomic.Uint64
	sumBit atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBit.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBit.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns how many samples were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBit.Load()) }

// Histogram registers (or fetches) the named histogram with the given
// bucket upper bounds (sorted ascending; +Inf is appended implicitly).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	return r.register(name, help, "histogram", h, func(w io.Writer, n string) {
		cum := uint64(0)
		for i, ub := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, formatFloat(ub), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(w, "%s_sum %s\n", n, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count %d\n", n, h.Count())
	}).(*Histogram)
}

// ExpBuckets returns n bucket bounds growing geometrically from start by
// factor — the usual shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, 0, n)
	v := start
	for i := 0; i < n; i++ {
		out = append(out, v)
		v *= factor
	}
	return out
}

// LatencyBuckets is a general-purpose seconds scale: 1ms to ~65s.
func LatencyBuckets() []float64 { return ExpBuckets(0.001, 2, 17) }

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the text exposition
// format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	entries := append([]metricEntry(nil), r.order...)
	r.mu.Unlock()
	for _, e := range entries {
		if e.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", e.name, strings.ReplaceAll(e.help, "\n", " "))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind)
		e.collect(w, e.name)
	}
}

// Handler returns the GET /metrics endpoint for this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
