package netcheck

import (
	"math/rand"
	"strings"
	"testing"

	"hypercube/internal/id"
	"hypercube/internal/table"
)

var p45 = id.Params{B: 4, D: 5}

// buildConsistent constructs consistent tables for the given members with
// global knowledge: every entry whose desired suffix is represented gets
// an arbitrary qualifying member (the owner itself when possible).
func buildConsistent(t *testing.T, p id.Params, ids []string) map[id.ID]*table.Table {
	t.Helper()
	members := make([]id.ID, len(ids))
	for i, s := range ids {
		members[i] = id.MustParse(p, s)
	}
	return buildConsistentIDs(p, members)
}

func buildConsistentIDs(p id.Params, members []id.ID) map[id.ID]*table.Table {
	bySuffix := make(map[id.Suffix][]id.ID)
	for _, x := range members {
		for k := 1; k <= p.D; k++ {
			s := x.Suffix(k)
			bySuffix[s] = append(bySuffix[s], x)
		}
	}
	tables := make(map[id.ID]*table.Table, len(members))
	for _, x := range members {
		tbl := table.New(p, x)
		for i := 0; i < p.D; i++ {
			for j := 0; j < p.B; j++ {
				want := tbl.DesiredSuffix(i, j)
				if x.HasSuffix(want) {
					tbl.Set(i, j, table.Neighbor{ID: x, State: table.StateS})
					continue
				}
				if cands := bySuffix[want]; len(cands) > 0 {
					tbl.Set(i, j, table.Neighbor{ID: cands[0], State: table.StateS})
				}
			}
		}
		tables[x] = tbl
	}
	return tables
}

func TestConsistentNetworkPasses(t *testing.T) {
	tables := buildConsistent(t, p45, []string{"21233", "03231", "10220", "33333", "00000"})
	if v := CheckConsistency(p45, tables); len(v) != 0 {
		t.Fatalf("violations on consistent network: %v", v[0])
	}
	if v := AllStatesS(p45, tables); len(v) != 0 {
		t.Fatalf("state violations: %v", v[0])
	}
	if bad := CheckAllPairsReachability(p45, tables); len(bad) != 0 {
		t.Fatalf("unreachable pairs on consistent network: %v", bad)
	}
}

func TestDetectsFalseNegative(t *testing.T) {
	tables := buildConsistent(t, p45, []string{"21233", "03231", "10220"})
	// Erase an entry that must be filled: 21233's level-0 entry toward
	// digit 03231[0]=1.
	x := id.MustParse(p45, "21233")
	tables[x].Set(0, 1, table.Neighbor{})
	v := CheckConsistency(p45, tables)
	if len(v) == 0 {
		t.Fatal("false negative not detected")
	}
	found := false
	for _, violation := range v {
		if violation.Kind == FalseNegative && violation.Node == x {
			found = true
			if !strings.Contains(violation.String(), "false-negative") {
				t.Errorf("String() = %q", violation.String())
			}
		}
	}
	if !found {
		t.Fatalf("no FalseNegative violation among %v", v)
	}
	// Lemma 3.1 cross-check: a condition-(a) violation breaks reachability.
	if bad := CheckAllPairsReachability(p45, tables); len(bad) == 0 {
		t.Error("false negative did not break reachability")
	}
}

func TestDetectsFalsePositive(t *testing.T) {
	tables := buildConsistent(t, p45, []string{"21233", "03231"})
	// Insert a pointer to a non-member with a suffix nobody has.
	x := id.MustParse(p45, "21233")
	ghost := id.MustParse(p45, "22223")
	if tables[x].Get(0, 3).IsZero() {
		t.Fatal("test setup: expected (0,3) filled (owner suffix 3)")
	}
	// Entry (1,2): desired suffix "23"; no member has it.
	tables[x].Set(1, 2, table.Neighbor{ID: ghost, State: table.StateS})
	v := CheckConsistency(p45, tables)
	if len(v) != 1 || v[0].Kind != FalsePositive {
		t.Fatalf("want exactly one FalsePositive, got %v", v)
	}
}

func TestDetectsWrongSuffix(t *testing.T) {
	tables := buildConsistent(t, p45, []string{"21233", "03231", "10220"})
	x := id.MustParse(p45, "21233")
	// Put 10220 (suffix ...0) into the entry that wants suffix 1.
	tables[x].Set(0, 1, table.Neighbor{ID: id.MustParse(p45, "10220"), State: table.StateS})
	v := CheckConsistency(p45, tables)
	found := false
	for _, violation := range v {
		if violation.Kind == WrongSuffix {
			found = true
		}
	}
	if !found {
		t.Fatalf("WrongSuffix not detected: %v", v)
	}
}

func TestDetectsGhostMember(t *testing.T) {
	tables := buildConsistent(t, p45, []string{"21233", "03231"})
	x := id.MustParse(p45, "21233")
	// 13231 is not a member but has the desired suffix 1 for entry (0,1).
	tables[x].Set(0, 1, table.Neighbor{ID: id.MustParse(p45, "13231"), State: table.StateS})
	v := CheckConsistency(p45, tables)
	found := false
	for _, violation := range v {
		if violation.Kind == Ghost {
			found = true
		}
	}
	if !found {
		t.Fatalf("Ghost not detected: %v", v)
	}
}

func TestAllStatesSFlagsCanonicalTOnly(t *testing.T) {
	tables := buildConsistent(t, p45, []string{"21233", "03231", "10220"})
	x := id.MustParse(p45, "21233")
	y := id.MustParse(p45, "03231")
	k := x.CommonSuffixLen(y)
	// Canonical entry for y holds state T: flagged.
	tables[x].Set(k, y.Digit(k), table.Neighbor{ID: y, State: table.StateT})
	v := AllStatesS(p45, tables)
	if len(v) != 1 || v[0].Kind != StaleState {
		t.Fatalf("want one StaleState, got %v", v)
	}
	// A sub-canonical duplicate with T is tolerated (Figure 14 refreshes
	// only the csuf-level entry).
	tables[x].Set(k, y.Digit(k), table.Neighbor{ID: y, State: table.StateS})
	if k > 0 {
		tables[x].Set(0, y.Digit(0), table.Neighbor{ID: y, State: table.StateT})
		if v := AllStatesS(p45, tables); len(v) != 0 {
			t.Fatalf("sub-canonical T flagged: %v", v)
		}
	}
}

func TestSuffixRegistry(t *testing.T) {
	reg := NewSuffixRegistry(p45, nil)
	if reg.Has(id.EmptySuffix) {
		t.Error("empty registry Has(ε)")
	}
	a := id.MustParse(p45, "21233")
	b := id.MustParse(p45, "03233")
	reg.Add(a)
	reg.Add(a) // duplicate add is a no-op
	reg.Add(b)
	if got := len(reg.Members()); got != 2 {
		t.Fatalf("Members = %d, want 2", got)
	}
	if !reg.Has(id.EmptySuffix) {
		t.Error("Has(ε) false on populated registry")
	}
	s233 := id.MustParseSuffix(p45, "233")
	s1233 := id.MustParseSuffix(p45, "1233")
	if got := reg.Count(s233); got != 2 {
		t.Errorf("Count(233) = %d, want 2", got)
	}
	if got := reg.Count(s1233); got != 1 {
		t.Errorf("Count(1233) = %d, want 1", got)
	}
	if reg.Has(id.MustParseSuffix(p45, "0")) {
		t.Error("Has(0) true, no member ends in 0")
	}
	if !reg.IsMember(a) || reg.IsMember(id.MustParse(p45, "00000")) {
		t.Error("IsMember wrong")
	}
	if got := reg.Count(id.EmptySuffix); got != 2 {
		t.Errorf("Count(ε) = %d, want 2", got)
	}
}

func TestReachableRoutesWithinDHops(t *testing.T) {
	p := id.Params{B: 4, D: 6}
	rng := rand.New(rand.NewSource(8))
	var members []id.ID
	seen := make(map[id.ID]bool)
	for len(members) < 50 {
		x := id.Random(p, rng)
		if seen[x] {
			continue
		}
		seen[x] = true
		members = append(members, x)
	}
	tables := buildConsistentIDs(p, members)
	for trial := 0; trial < 200; trial++ {
		src := members[rng.Intn(len(members))]
		dst := members[rng.Intn(len(members))]
		path, ok := Reachable(p, tables, src, dst)
		if !ok {
			t.Fatalf("unreachable %v -> %v", src, dst)
		}
		if len(path) > p.D+1 {
			t.Fatalf("path longer than d: %v", path)
		}
		// Hop h must share at least h digits with the destination: the
		// defining invariant of hypercube routing.
		for h, node := range path {
			if h > 0 && node.CommonSuffixLen(dst) < path[h-1].CommonSuffixLen(dst)+1 {
				t.Fatalf("suffix match did not grow along path %v (dst %v)", path, dst)
			}
		}
	}
}

func TestReachableFailsOnMissingTable(t *testing.T) {
	tables := buildConsistent(t, p45, []string{"21233", "03231"})
	outsider := id.MustParse(p45, "11111")
	if _, ok := Reachable(p45, tables, outsider, id.MustParse(p45, "21233")); ok {
		t.Error("routing from unknown node succeeded")
	}
}

func TestViolationKindString(t *testing.T) {
	for kind, want := range map[ViolationKind]string{
		FalseNegative: "false-negative",
		FalsePositive: "false-positive",
		WrongSuffix:   "wrong-suffix",
		Ghost:         "ghost",
		StaleState:    "stale-state",
	} {
		if got := kind.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", kind, got, want)
		}
	}
	if got := ViolationKind(88).String(); !strings.Contains(got, "88") {
		t.Errorf("unknown kind renders %q", got)
	}
}
