// Package liveness implements autonomous failure detection for protocol
// nodes: a probe scheduler that cycles through a node's neighbor table
// and reverse-neighbor set, and a suspicion state machine that separates
// transient loss from real crashes.
//
// The detector is deliberately transport-agnostic and clock-driven, like
// core.Machine: Tick(now) consumes virtual or real time and returns the
// probe messages to transmit plus any declared failures. The overlay
// simulator drives it from the discrete-event clock (deterministic
// tests); tcptransport drives it from a timer goroutine.
//
// Suspicion protocol (SWIM-flavored, adapted to the hypercube tables):
//
//   - alive: the target is probed when its turn comes in the round-robin
//     cycle. A probe unanswered within ProbeTimeout is a miss; pongs and
//     any other traffic from the target (Observe) reset the miss count.
//   - suspect: after SuspectAfter consecutive misses. Each confirmation
//     round sends one direct probe plus IndirectProbes relayed probes
//     through distinct other neighbors, so one-way loss on the direct
//     path cannot produce a false declaration.
//   - declared: after ConfirmRounds confirmation rounds with no answer
//     at all. The target is tombstoned (it can never be re-adopted from
//     a stale table) and reported to the caller, which invokes the
//     table-repair machinery (core.Machine.DeclareFailed).
//
// A target that exhausts its confirm rounds without EVER having answered
// from here is not declared but dropped as unreachable: there is no
// evidence it was ever alive, so the silence may equally be a broken
// path or our own side of a partition. Unreachable targets are forgotten
// locally (core.Machine.DropUnreachable) with no tombstone and no
// gossip, and are re-adopted if they later turn up reachable — e.g.
// delivered by an anti-entropy round after a partition heals. This is
// what keeps a node that joined during a partition, whose table is
// mostly one-sided, from poisoning the whole network with false
// FailedNoti gossip about the side it has never met.
//
// Adaptive timeouts (gray failures): with a per-peer RTT estimator
// attached (SetRTT + SetClock), each target's probe deadline derives
// from its own measured round-trips instead of the fixed ProbeTimeout,
// misses accrue as a confidence-weighted suspicion score instead of a
// flat count (a miss against a well-measured fast peer is strong
// evidence; one against a poorly-measured or slow peer is weak), and
// pongs arriving after their probe expired still feed the estimator and
// count as liveness — the feedback loop that lets the deadline chase a
// peer whose latency is ramping up. Without an estimator the detector
// behaves exactly as documented above, bit for bit.
//
// Partition awareness: a network partition is indistinguishable from a
// mass crash to a per-target detector — every cross-partition peer times
// out at once. Declaring (and tombstoning) them all would be wrong twice
// over: the declarations are false positives, and the tombstones would
// prevent re-adoption after the partition heals. When the fraction of
// simultaneously-distressed targets (suspect, or accruing misses toward
// suspicion) reaches PartitionThreshold the prober therefore enters a
// partitioned mode that freezes declarations (confirm rounds keep
// running, so reconnection is noticed promptly) and exits once enough
// targets recover. Held suspects that are genuinely dead are declared
// through the normal path after the mode exits.
package liveness

import (
	"sort"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/obs"
	"hypercube/internal/rtt"
	"hypercube/internal/table"
	"hypercube/internal/trace"
)

// Config tunes the failure detector. The zero value is usable: every
// field falls back to the default documented on it.
type Config struct {
	// ProbeInterval is the gap between successive routine probes (one
	// target per interval, round-robin). Default 250ms.
	ProbeInterval time.Duration
	// ProbeTimeout is how long a probe may stay unanswered before it
	// counts as a miss. Default 1s.
	//
	// Invariant (see the pending==0 guard in Tick): routine probing
	// never launches a second probe at a target whose previous probe is
	// still in flight, so the default ProbeTimeout (1s) exceeding the
	// default ProbeInterval (250ms) does NOT make successive probes to
	// a silent peer overlap in the in-flight set. The round-robin skips
	// a target with an outstanding probe, which means a silent peer
	// accrues misses at one per ProbeTimeout — not one per
	// ProbeInterval — and suspicion takes SuspectAfter × ProbeTimeout,
	// not SuspectAfter × ProbeInterval. Only confirmation rounds put
	// several probes (direct + indirect) in flight for one target at
	// once, and those launch strictly after the previous round fully
	// expired. A per-peer RTT estimator (SetRTT) shortens the effective
	// timeout per target but cannot break the invariant: the guard is
	// on the probe count, not the deadline.
	ProbeTimeout time.Duration
	// SuspectAfter is the number of consecutive missed routine probes
	// that turns an alive target into a suspect. Default 3.
	SuspectAfter int
	// IndirectProbes is the number of relayed probes (via distinct other
	// neighbors) added to the direct probe in each confirmation round.
	// Default 3; 0 disables indirect probing.
	IndirectProbes int
	// ConfirmRounds is the number of fully unanswered confirmation
	// rounds needed to declare a suspect failed. Default 2.
	ConfirmRounds int
	// PartitionThreshold is the fraction of monitored targets that must
	// be simultaneously distressed (suspect or accruing misses) for the
	// prober to enter partitioned mode (declarations frozen, probing
	// continues). The mode exits when the fraction falls to half the
	// threshold or below. Default 0.5; set above 1 to disable partition
	// detection entirely.
	PartitionThreshold float64
	// PartitionMinTargets is the minimum number of monitored targets for
	// partition detection to apply: with very few targets the suspect
	// fraction is too noisy to distinguish a partition from a crash.
	// Default 4.
	PartitionMinTargets int
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3
	}
	if c.IndirectProbes < 0 {
		c.IndirectProbes = 0
	}
	if c.ConfirmRounds <= 0 {
		c.ConfirmRounds = 2
	}
	if c.PartitionThreshold <= 0 {
		c.PartitionThreshold = 0.5
	}
	if c.PartitionMinTargets <= 0 {
		c.PartitionMinTargets = 4
	}
	return c
}

// Stats counts the detector's activity, for admin endpoints and tests.
type Stats struct {
	// ProbesSent counts direct probes; IndirectSent relayed ones.
	ProbesSent   int
	IndirectSent int
	// PongsReceived counts answers attributable to an outstanding probe.
	PongsReceived int
	// Suspects counts alive -> suspect transitions.
	Suspects int
	// Recovered counts suspect -> alive transitions (false alarms caught
	// by the confirmation round).
	Recovered int
	// Declared counts suspect -> declared-failed transitions.
	Declared int
	// PartitionsEntered / PartitionsExited count transitions in and out
	// of partitioned mode.
	PartitionsEntered int
	PartitionsExited  int
	// DeclarationsHeld counts declarations suppressed because the prober
	// was in partitioned mode when the suspect's confirm rounds ran out.
	DeclarationsHeld int
	// Unreachable counts targets dropped without a failure declaration
	// because they never once answered from here: with no evidence they
	// were ever alive, their silence may equally be our own partition, so
	// they are forgotten locally instead of tombstoned and gossiped.
	Unreachable int
	// Adaptive-timeout (gray failure) counters; all stay zero unless a
	// per-peer RTT estimator is attached (SetRTT). AdaptiveDeadlines
	// counts probes whose deadline came from the estimator rather than
	// the fixed ProbeTimeout; LatePongs answers that arrived after
	// their probe expired (still fed to the estimator and counted as
	// liveness); DegradedMarked / DegradedCleared the estimator's
	// degraded-flag transitions observed through probe samples.
	AdaptiveDeadlines int
	LatePongs         int
	DegradedMarked    int
	DegradedCleared   int
}

type targetState uint8

const (
	stateAlive targetState = iota + 1
	stateSuspect
)

type target struct {
	ref      table.Ref
	state    targetState
	missed   int     // consecutive routine-probe misses while alive
	susp     float64 // accrued suspicion; equals missed without an estimator
	rounds   int     // completed confirmation rounds while suspect
	pending  int     // outstanding probes (any kind) for this target
	answered bool    // ever seen alive from here (pong or observed traffic)
}

// probe is one in-flight probe: which target it checks, when it was
// sent (for RTT sampling), when it expires, and whether it was relayed
// (indirect probes measure the relay path, not the peer, so they are
// never sampled).
type probe struct {
	target   id.ID
	sentAt   time.Duration
	deadline time.Duration
	indirect bool
	// ctx is the probe's trace context (zero when unsampled): one span
	// covers the whole round trip — probe, the responder's recv/send
	// pair, and probe_ack all carry it, which is what lets an analyzer
	// recover both the RTT and the responder's clock skew.
	ctx trace.Context
}

// Prober is one node's failure detector. It is not safe for concurrent
// use; drive it from one goroutine or under an external lock (the same
// discipline as core.Machine).
type Prober struct {
	cfg  Config
	self table.Ref

	targets map[id.ID]*target
	tombs   map[id.ID]bool // declared-failed; never re-adopted
	cycle   []id.ID        // round-robin order (sorted, rebuilt on change)
	cycleAt int
	nextDue time.Duration // next routine probe time
	started bool

	seq      uint64
	inflight map[uint64]probe
	helperAt int // rotates indirect-probe helper choice

	// Adaptive-timeout state (nil/unused without SetRTT). recent holds
	// expired probes for a grace window so a late pong can still feed
	// the estimator and clear suspicion; recentQ bounds it FIFO.
	est     *rtt.Estimator
	clock   func() time.Duration
	recent  map[uint64]probe
	recentQ []uint64

	partitioned bool

	// Observability (nil when tracing is off; see SetSink). tracer,
	// when non-nil, roots one span per probe round trip (see SetTracer).
	sink     obs.Sink
	selfName string
	tracer   *trace.Tracer

	stats Stats
	out   []msg.Envelope
}

// SetSink installs the protocol-event sink; nil or obs.Nop turns tracing
// off (the default). Wrap with obs.Clocked so the driving runtime stamps
// Event.T.
func (p *Prober) SetSink(s obs.Sink) {
	if obs.IsNop(s) {
		p.sink = nil
		return
	}
	p.sink = s
	p.selfName = p.self.ID.String()
}

// SetTracer installs the span-context source for causal tracing; nil
// turns it off (the default). Each (sampled) probe is a traced
// operation: ping and pong share one root span end to end, and a
// responding prober echoes an inbound ping's context verbatim — it
// needs no generator of its own to keep the chain intact.
func (p *Prober) SetTracer(t *trace.Tracer) { p.tracer = t }

// SetRTT attaches a per-peer RTT estimator: probe deadlines derive
// from each target's measured round-trips (falling back to
// ProbeTimeout until samples exist), direct-probe pongs feed samples
// back, and misses accrue as confidence-weighted suspicion. The
// estimator is typically shared with core.Machine so exchange
// round-trips and probe RTTs pool into one estimate per peer. Callers
// must also SetClock, or pongs cannot be timed.
func (p *Prober) SetRTT(est *rtt.Estimator) {
	p.est = est
	if est != nil && p.recent == nil {
		p.recent = make(map[uint64]probe)
	}
}

// SetClock supplies the driving runtime's monotonic clock (duration
// since an arbitrary start): virtual time in the overlay simulator,
// wall time since start in tcptransport. Pong arrivals are stamped
// with it to measure probe round-trips.
func (p *Prober) SetClock(f func() time.Duration) { p.clock = f }

// RTT returns the attached estimator (nil without SetRTT), for admin
// endpoints and scenario reports.
func (p *Prober) RTT() *rtt.Estimator { return p.est }

// NewProber creates a detector for the node self.
func NewProber(cfg Config, self table.Ref) *Prober {
	return &Prober{
		cfg:      cfg.withDefaults(),
		self:     self,
		targets:  make(map[id.ID]*target),
		tombs:    make(map[id.ID]bool),
		inflight: make(map[uint64]probe),
	}
}

// Stats returns a copy of the activity counters.
func (p *Prober) Stats() Stats { return p.stats }

// SuspectCount returns how many targets are currently suspects.
func (p *Prober) SuspectCount() int {
	n := 0
	for _, t := range p.targets {
		if t.state == stateSuspect {
			n++
		}
	}
	return n
}

// TargetCount returns how many targets are currently monitored.
func (p *Prober) TargetCount() int { return len(p.targets) }

// Partitioned reports whether the prober is currently in partitioned
// mode (declarations frozen because too many targets are suspect at
// once).
func (p *Prober) Partitioned() bool { return p.partitioned }

// distressedCount returns how many targets are suspect or partway there
// (at least one missed probe). The partition signal is computed over
// distressed targets rather than confirmed suspects because suspicion
// spreads across one round-robin cycle: with many targets, the first
// suspects of a cut cohort would finish their confirm rounds and be
// declared before enough of the cohort turned fully suspect to cross
// the threshold. Misses are reset the moment a target answers anything
// (markAlive), so the broader signal still collapses promptly once
// contact resumes.
func (p *Prober) distressedCount() int {
	n := 0
	for _, t := range p.targets {
		if t.state == stateSuspect || t.missed > 0 {
			n++
		}
	}
	return n
}

// updatePartitionMode re-evaluates the partitioned flag against the
// current distressed-target fraction, with hysteresis: enter at
// PartitionThreshold, exit below half of it (or when the target set
// shrinks under PartitionMinTargets). On exit it restarts every held
// suspect's confirmation rounds at time now.
func (p *Prober) updatePartitionMode(now time.Duration) {
	n := len(p.targets)
	frac := 0.0
	if n > 0 {
		frac = float64(p.distressedCount()) / float64(n)
	}
	if !p.partitioned {
		if n >= p.cfg.PartitionMinTargets && frac >= p.cfg.PartitionThreshold {
			p.partitioned = true
			p.stats.PartitionsEntered++
			if p.sink != nil {
				p.sink.Emit(obs.Event{Node: p.selfName, Kind: obs.KindPartitionEnter, N: p.distressedCount()})
			}
		}
		return
	}
	// Exit at half the entry threshold, inclusive: a residue of exactly
	// threshold/2 distressed targets (say one dead node out of four) is a
	// crash picture, not a partition, and must not latch the mode.
	if n < p.cfg.PartitionMinTargets || frac <= p.cfg.PartitionThreshold/2 {
		p.partitioned = false
		p.stats.PartitionsExited++
		if p.sink != nil {
			p.sink.Emit(obs.Event{Node: p.selfName, Kind: obs.KindPartitionExit, N: p.distressedCount()})
		}
		// Evidence gathered while partitioned is tainted: a confirm probe
		// cut by the split says nothing about its target. Every held
		// suspect therefore restarts its confirmation rounds against the
		// healed network — old probes are orphaned and a fresh round is
		// launched immediately (routine probing skips suspects, so nothing
		// else would ever probe them again). A declaration now requires
		// ConfirmRounds of fresh silence: a genuinely dead suspect still
		// falls, just a few rounds later. Iterate in cycle order so probe
		// sequence numbers stay deterministic.
		for _, x := range p.cycle {
			t, ok := p.targets[x]
			if !ok || t.state != stateSuspect {
				continue
			}
			t.rounds = 0
			t.pending = 0
			for seq, pr := range p.inflight {
				if pr.target == t.ref.ID {
					delete(p.inflight, seq)
				}
			}
			p.confirmRound(t, now)
		}
	}
}

// SetTargets replaces the monitored set with refs (typically the union
// of the node's table entries and reverse neighbors). Existing state for
// retained targets survives; vanished targets are forgotten; tombstoned
// (declared) targets are never re-adopted.
func (p *Prober) SetTargets(refs []table.Ref) {
	seen := make(map[id.ID]bool, len(refs))
	changed := false
	for _, r := range refs {
		if r.ID == p.self.ID || p.tombs[r.ID] || seen[r.ID] {
			continue
		}
		seen[r.ID] = true
		if t, ok := p.targets[r.ID]; ok {
			t.ref = r // refresh address
			continue
		}
		p.targets[r.ID] = &target{ref: r, state: stateAlive}
		changed = true
	}
	for x := range p.targets {
		if !seen[x] {
			delete(p.targets, x)
			changed = true
		}
	}
	if changed {
		p.rebuildCycle()
	}
}

func (p *Prober) rebuildCycle() {
	p.cycle = p.cycle[:0]
	for x := range p.targets {
		p.cycle = append(p.cycle, x)
	}
	sort.Slice(p.cycle, func(i, j int) bool { return p.cycle[i].Less(p.cycle[j]) })
	if p.cycleAt >= len(p.cycle) {
		p.cycleAt = 0
	}
}

// Observe notes non-probe traffic from a peer as evidence of liveness,
// clearing any miss count or suspicion. Runtimes call it for every
// delivered protocol message.
func (p *Prober) Observe(from id.ID) {
	if t, ok := p.targets[from]; ok {
		p.markAlive(t)
	}
}

func (p *Prober) markAlive(t *target) {
	if t.state == stateSuspect {
		p.stats.Recovered++
		if p.sink != nil {
			p.sink.Emit(obs.Event{Node: p.selfName, Kind: obs.KindRecovered, Peer: t.ref.ID.String()})
		}
	}
	t.answered = true
	t.state = stateAlive
	t.missed = 0
	t.susp = 0
	t.rounds = 0
	t.pending = 0
	// Orphan the in-flight probes so their expiry is ignored.
	for seq, pr := range p.inflight {
		if pr.target == t.ref.ID {
			delete(p.inflight, seq)
		}
	}
}

// HandleMessage consumes a Ping or Pong addressed to this node and
// returns any messages to transmit in response (a Pong, or the relayed
// Ping of an indirect probe). Messages of other types are ignored.
func (p *Prober) HandleMessage(env msg.Envelope) []msg.Envelope {
	p.out = p.out[:0]
	switch pm := env.Msg.(type) {
	case msg.Ping:
		replies := RespondPing(p.self, env.From, pm)
		// Echo a sampled inbound context verbatim: the pong (or relayed
		// ping) shares the probe's span, so the four timestamps — probe,
		// recv, send, probe_ack — pair up across the two nodes' clocks.
		// A tracerless prober drops the context (opaque hop).
		if p.tracer != nil && env.Trace.Sampled() {
			if p.sink != nil {
				p.sink.Emit(obs.Event{Node: p.selfName, Kind: obs.KindRecv, Peer: env.From.ID.String(), Msg: env.Msg.Type().String()}.Stamped(env.Trace, trace.SpanID{}))
			}
			for i := range replies {
				replies[i].Trace = env.Trace
				if p.sink != nil {
					p.sink.Emit(obs.Event{Node: p.selfName, Kind: obs.KindSend, Peer: replies[i].To.ID.String(), Msg: replies[i].Msg.Type().String()}.Stamped(env.Trace, trace.SpanID{}))
				}
			}
		}
		p.out = append(p.out, replies...)
	case msg.Pong:
		pr, ok := p.inflight[pm.Seq]
		if !ok {
			// Late answer for an already-expired probe. Without an
			// estimator it is simply dropped (the miss was already
			// charged and any retained state would change declared
			// replay). With one, the late pong is exactly the signal
			// that matters: it carries the peer's true (slow) RTT, so
			// the estimator learns the new latency and the next probe
			// waits long enough — and a peer that answered, however
			// late, is alive.
			if p.est == nil {
				break
			}
			pr, ok = p.recent[pm.Seq]
			if !ok {
				break
			}
			delete(p.recent, pm.Seq)
			p.stats.LatePongs++
			p.sampleRTT(pr)
			if p.sink != nil {
				p.sink.Emit(obs.Event{Node: p.selfName, Kind: obs.KindProbeAck, Peer: pr.target.String(), Seq: pm.Seq, Detail: "late"}.Stamped(pr.ctx, trace.SpanID{}))
			}
			if t, ok := p.targets[pr.target]; ok {
				p.markAlive(t)
			}
			break
		}
		delete(p.inflight, pm.Seq)
		p.stats.PongsReceived++
		p.sampleRTT(pr)
		if p.sink != nil {
			p.sink.Emit(obs.Event{Node: p.selfName, Kind: obs.KindProbeAck, Peer: pr.target.String(), Seq: pm.Seq}.Stamped(pr.ctx, trace.SpanID{}))
		}
		if t, ok := p.targets[pr.target]; ok {
			p.markAlive(t)
		}
	}
	out := make([]msg.Envelope, len(p.out))
	copy(out, p.out)
	p.out = p.out[:0]
	return out
}

// RespondPing implements the receiving side of the probe protocol for
// node self: answer direct pings with a Pong to the origin, relay
// indirect pings to their target. It is a free function so nodes
// without a detector of their own can still be good probe citizens.
func RespondPing(self, from table.Ref, pm msg.Ping) []msg.Envelope {
	origin := pm.Origin
	if origin.IsZero() {
		origin = from
	}
	if !pm.Target.IsZero() && pm.Target.ID != self.ID {
		// Indirect probe: relay unchanged; the target answers the origin.
		return []msg.Envelope{{From: self, To: pm.Target, Msg: pm}}
	}
	if origin.ID == self.ID {
		return nil // degenerate self-probe
	}
	return []msg.Envelope{{From: self, To: origin, Msg: msg.Pong{Seq: pm.Seq}}}
}

// Tick advances the detector to virtual (or real) time now. It returns
// the probes to transmit, the targets newly declared failed, and the
// targets dropped as unreachable (never once seen alive from here). The
// caller feeds declarations to core.Machine.DeclareFailed, unreachable
// drops to core.Machine.DropUnreachable, and transmits all outputs.
func (p *Prober) Tick(now time.Duration) (out []msg.Envelope, declared, unreachable []table.Ref) {
	p.out = p.out[:0]

	// Recoveries since the last tick (Observe, pongs) may have lowered
	// the suspect fraction enough to exit partitioned mode.
	p.updatePartitionMode(now)

	// Expire in-flight probes, collecting misses per target. Each entry
	// is re-checked against inflight at processing time: a partition-mode
	// exit mid-sweep orphans held suspects' old probes and launches fresh
	// rounds, and the orphaned expiries must not be charged against those
	// fresh rounds.
	type expiry struct {
		seq uint64
		pr  probe
	}
	expired := make([]expiry, 0, 4)
	for seq, pr := range p.inflight {
		if pr.deadline <= now {
			expired = append(expired, expiry{seq, pr})
		}
	}
	sort.Slice(expired, func(i, j int) bool {
		if expired[i].pr.target != expired[j].pr.target {
			return expired[i].pr.target.Less(expired[j].pr.target)
		}
		return expired[i].seq < expired[j].seq
	})
	for _, e := range expired {
		if _, ok := p.inflight[e.seq]; !ok {
			continue // orphaned mid-sweep by a partition-mode exit
		}
		delete(p.inflight, e.seq)
		p.remember(e.seq, e.pr)
		t, ok := p.targets[e.pr.target]
		if !ok {
			continue
		}
		t.pending--
		if p.sink != nil {
			p.sink.Emit(obs.Event{Node: p.selfName, Kind: obs.KindProbeMiss, Peer: e.pr.target.String(), Seq: e.seq}.Stamped(e.pr.ctx, trace.SpanID{}))
		}
		switch t.state {
		case stateAlive:
			t.missed++
			t.susp += p.missCharge(t)
			if t.susp >= float64(p.cfg.SuspectAfter) {
				t.state = stateSuspect
				t.rounds = 0
				p.stats.Suspects++
				if p.sink != nil {
					p.sink.Emit(obs.Event{Node: p.selfName, Kind: obs.KindSuspect, Peer: e.pr.target.String(), N: t.missed})
				}
				p.confirmRound(t, now)
			}
		case stateSuspect:
			if t.pending > 0 {
				continue // round still has probes in flight
			}
			t.rounds++
			if t.rounds >= p.cfg.ConfirmRounds {
				// Suspicions raised earlier in this loop count too: a
				// partition times out a whole cohort within one expiry
				// sweep, and the first of them must already be held.
				p.updatePartitionMode(now)
				if p.partitioned {
					// Partitioned mode: hold the declaration. The target
					// stays a suspect and keeps getting confirm rounds so
					// the first answer after the heal clears it; if it is
					// genuinely dead it is declared once the mode exits.
					p.stats.DeclarationsHeld++
					p.confirmRound(t, now)
					continue
				}
				if t.rounds < p.cfg.ConfirmRounds {
					// The call above just exited partitioned mode: it wiped
					// this suspect's partition-tainted evidence and already
					// relaunched its confirm rounds, so declaring now would
					// use exactly the evidence the wipe discarded.
					continue
				}
				if !t.answered {
					// Never seen alive from here: a node adopted from
					// someone else's table that we could not reach even
					// once. Silence proves nothing about it — the path,
					// or our own side of a partition, may be the problem —
					// so it is forgotten locally (no tombstone, no gossip)
					// and welcome back the moment it answers.
					delete(p.targets, t.ref.ID)
					if p.est != nil {
						p.est.Forget(t.ref.ID)
					}
					p.stats.Unreachable++
					if p.sink != nil {
						p.sink.Emit(obs.Event{Node: p.selfName, Kind: obs.KindUnreachable, Peer: t.ref.ID.String()})
					}
					unreachable = append(unreachable, t.ref)
					p.rebuildCycle()
					continue
				}
				delete(p.targets, t.ref.ID)
				if p.est != nil {
					p.est.Forget(t.ref.ID)
				}
				p.tombs[t.ref.ID] = true
				p.stats.Declared++
				if p.sink != nil {
					p.sink.Emit(obs.Event{Node: p.selfName, Kind: obs.KindDeclared, Peer: t.ref.ID.String(), N: t.rounds})
				}
				declared = append(declared, t.ref)
				p.rebuildCycle()
				continue
			}
			p.confirmRound(t, now)
		}
	}

	// Age out parked expired probes whose late-pong grace has lapsed.
	if p.est != nil && len(p.recentQ) > 0 {
		grace := p.est.Config().MaxRTO
		keep := p.recentQ[:0]
		for _, seq := range p.recentQ {
			pr, ok := p.recent[seq]
			if !ok {
				continue // already consumed by a late pong
			}
			if pr.deadline+grace <= now {
				delete(p.recent, seq)
				continue
			}
			keep = append(keep, seq)
		}
		p.recentQ = keep
	}

	// Routine round-robin probing of alive targets.
	if !p.started {
		p.started = true
		p.nextDue = now
	}
	for p.nextDue <= now {
		p.nextDue += p.cfg.ProbeInterval
		t := p.nextAlive()
		if t == nil {
			break
		}
		// One routine probe per target at a time: a slow target must not
		// accumulate overlapping probes that all expire as misses.
		if t.pending == 0 {
			p.sendProbe(t, table.Ref{}, now)
		}
	}

	out = make([]msg.Envelope, len(p.out))
	copy(out, p.out)
	p.out = p.out[:0]
	return out, declared, unreachable
}

// nextAlive advances the round-robin cursor to the next alive target.
func (p *Prober) nextAlive() *target {
	for range p.cycle {
		if len(p.cycle) == 0 {
			return nil
		}
		x := p.cycle[p.cycleAt%len(p.cycle)]
		p.cycleAt = (p.cycleAt + 1) % len(p.cycle)
		if t, ok := p.targets[x]; ok && t.state == stateAlive {
			return t
		}
	}
	return nil
}

// confirmRound launches one confirmation round for a suspect: a direct
// probe plus IndirectProbes relayed probes via distinct other targets.
func (p *Prober) confirmRound(t *target, now time.Duration) {
	p.sendProbe(t, table.Ref{}, now)
	helpers := p.pickHelpers(t.ref.ID, p.cfg.IndirectProbes)
	for _, h := range helpers {
		p.sendProbe(t, h, now)
	}
}

// probeBudget derives the wait for one probe. Without an estimator it
// is the fixed ProbeTimeout. With one, a direct probe waits the
// target's per-peer RTO; an indirect probe crosses two round-trips
// (origin→relay ping, relay→target probe) so it waits the sum of the
// relay's and the target's RTOs. Any leg without samples yet falls
// back to the fixed default for the whole probe — a half-adaptive
// budget would be neither calibrated nor comparable.
//
// Confirmation-round probes (suspect state) are additionally floored
// at the fixed ProbeTimeout: they decide declarations, and a peer that
// was fast and just turned gray would otherwise burn through all its
// confirm rounds in a few small RTOs — before its first late pong can
// teach the estimator the new latency. Adaptivity may extend the
// declaration window for known-slow peers, never shrink it.
func (p *Prober) probeBudget(t *target, via table.Ref) time.Duration {
	if p.est == nil {
		return p.cfg.ProbeTimeout
	}
	budget := time.Duration(0)
	if via.IsZero() {
		rto, ok := p.est.RTO(t.ref.ID)
		if !ok {
			return p.cfg.ProbeTimeout
		}
		budget = rto
	} else {
		rtoT, okT := p.est.RTO(t.ref.ID)
		rtoV, okV := p.est.RTO(via.ID)
		if !okT || !okV {
			return p.cfg.ProbeTimeout
		}
		budget = rtoT + rtoV
	}
	if t.state == stateSuspect && budget < p.cfg.ProbeTimeout {
		budget = p.cfg.ProbeTimeout
	}
	p.stats.AdaptiveDeadlines++
	return budget
}

// missCharge converts one expired probe into suspicion. Without an
// estimator — or before this peer has samples — a miss charges exactly
// 1.0, keeping the accrual score numerically identical to the legacy
// missed counter (small-integer float arithmetic is exact, so the
// suspect threshold fires on the same tick). With samples, the charge
// is ProbeTimeout/RTO clamped to [0.5, 2.0]: a miss against a fast
// peer (RTO well under the fixed timeout) weighs up to double — a dead
// peer on a fast link is declared sooner — while a miss against a
// known-slow peer weighs as little as half.
func (p *Prober) missCharge(t *target) float64 {
	if p.est == nil {
		return 1
	}
	rto, ok := p.est.RTO(t.ref.ID)
	if !ok || rto <= 0 {
		return 1
	}
	c := float64(p.cfg.ProbeTimeout) / float64(rto)
	if c < 0.5 {
		c = 0.5
	}
	if c > 2 {
		c = 2
	}
	return c
}

// sampleRTT feeds one answered probe's round-trip into the estimator
// and emits degraded-flag transition events. Karn's rule, adapted:
// indirect probes are never sampled — their round-trip measures the
// relay's path as much as the target's.
func (p *Prober) sampleRTT(pr probe) {
	if p.est == nil || p.clock == nil || pr.indirect {
		return
	}
	u := p.est.Observe(pr.target, p.clock()-pr.sentAt)
	if !u.Changed {
		return
	}
	kind := obs.KindDegraded
	if u.Degraded {
		p.stats.DegradedMarked++
	} else {
		p.stats.DegradedCleared++
		kind = obs.KindDegradedClear
	}
	if p.sink != nil {
		p.sink.Emit(obs.Event{Node: p.selfName, Kind: kind, Peer: pr.target.String()})
	}
}

// remember parks an expired direct probe so a late pong can still feed
// the estimator and revive the target (adaptive mode only — without an
// estimator late pongs are dropped as before, keeping declared replay
// unchanged). Bounded two ways: a FIFO cap here and the grace sweep in
// Tick.
const recentCap = 1024

func (p *Prober) remember(seq uint64, pr probe) {
	if p.est == nil || pr.indirect {
		return
	}
	p.recent[seq] = pr
	p.recentQ = append(p.recentQ, seq)
	for len(p.recentQ) > recentCap {
		s := p.recentQ[0]
		p.recentQ = p.recentQ[1:]
		delete(p.recent, s)
	}
}

// pickHelpers returns up to n other non-suspect targets, rotating the
// starting point so consecutive rounds try different relays.
func (p *Prober) pickHelpers(suspect id.ID, n int) []table.Ref {
	if n <= 0 || len(p.cycle) == 0 {
		return nil
	}
	var out []table.Ref
	start := p.helperAt
	p.helperAt++
	for i := 0; i < len(p.cycle) && len(out) < n; i++ {
		x := p.cycle[(start+i)%len(p.cycle)]
		t, ok := p.targets[x]
		if !ok || x == suspect || t.state != stateAlive {
			continue
		}
		out = append(out, t.ref)
	}
	return out
}

// sendProbe emits one probe for target t: direct when via is zero,
// relayed through via otherwise.
func (p *Prober) sendProbe(t *target, via table.Ref, now time.Duration) {
	p.seq++
	ping := msg.Ping{Seq: p.seq, Origin: p.self}
	to := t.ref
	if !via.IsZero() {
		ping.Target = t.ref
		to = via
		p.stats.IndirectSent++
	} else {
		p.stats.ProbesSent++
	}
	var ctx trace.Context
	if p.tracer != nil {
		ctx = p.tracer.Root()
	}
	p.inflight[p.seq] = probe{
		target:   t.ref.ID,
		sentAt:   now,
		deadline: now + p.probeBudget(t, via),
		indirect: !via.IsZero(),
		ctx:      ctx,
	}
	t.pending++
	if p.sink != nil {
		e := obs.Event{Node: p.selfName, Kind: obs.KindProbe, Peer: t.ref.ID.String(), Seq: p.seq}
		if !via.IsZero() {
			e.Detail = "indirect"
		}
		p.sink.Emit(e.Stamped(ctx, trace.SpanID{}))
	}
	p.out = append(p.out, msg.Envelope{From: p.self, To: to, Msg: ping, Trace: ctx})
}
