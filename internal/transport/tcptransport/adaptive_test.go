package tcptransport

import (
	"context"
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/liveness"
	"hypercube/internal/rtt"
)

// TestTCPAdaptiveRTTSampling: with WithRTT, a live two-node network
// feeds the shared estimator from real probe and exchange round trips,
// and the counters surface on /status.
func TestTCPAdaptiveRTTSampling(t *testing.T) {
	lc := liveness.Config{
		ProbeInterval:  50 * time.Millisecond,
		ProbeTimeout:   300 * time.Millisecond,
		SuspectAfter:   3,
		IndirectProbes: 2,
		ConfirmRounds:  2,
	}
	rc := rtt.Config{MinRTO: 20 * time.Millisecond, MaxRTO: 2 * time.Second}
	opts := core.Options{Timeouts: core.Timeouts{
		RetryAfter:  250 * time.Millisecond,
		MaxAttempts: 4,
	}}
	options := []Option{WithLiveness(lc), WithRTT(rc)}

	seed, err := StartSeed(p163, opts, id.MustParse(p163, "abc"), "127.0.0.1:0", options...)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	j, err := StartJoiner(p163, opts, id.MustParse(p163, "123"), "127.0.0.1:0", options...)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Join(seed.Ref()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := j.AwaitStatus(ctx, core.StatusInSystem); err != nil {
		t.Fatal(err)
	}

	// The join exchanges alone seed the estimator; probes keep feeding
	// it. Wait for both nodes to accumulate samples.
	deadline := time.Now().Add(10 * time.Second)
	for _, n := range []*Node{seed, j} {
		for {
			st, ok := n.RTTStats()
			if !ok {
				t.Fatalf("node %v reports no RTT stats despite WithRTT", n.Ref().ID)
			}
			if st.Samples > 0 && st.Tracked > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %v never sampled an RTT: %+v", n.Ref().ID, st)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// On a loopback link nobody is degraded, and /status carries the
	// estimator section.
	st := adminStatus(t, seed)
	if st.RTT == nil {
		t.Fatal("/status has no rtt section despite WithRTT")
	}
	if st.RTT.Samples == 0 || st.RTT.Tracked == 0 {
		t.Fatalf("/status rtt counters empty: %+v", st.RTT)
	}
	if st.RTT.Degraded != 0 {
		t.Fatalf("loopback peer flagged degraded: %+v", st.RTT)
	}
	if n, ok := seed.RTTStats(); !ok || n.Samples != st.RTT.Samples && n.Samples < st.RTT.Samples {
		t.Fatalf("RTTStats regressed vs /status: %+v vs %+v", n, st.RTT)
	}
}

// TestFaultsStallInjection: every StallEvery-th write succeeds but only
// after the extra StallFor delay, and the counter tracks it.
func TestFaultsStallInjection(t *testing.T) {
	f := NewFaults(1)
	f.StallEvery = 3
	f.StallFor = 40 * time.Millisecond
	var stalled, clean int
	for i := 0; i < 9; i++ {
		drop, kill, delay := f.nextWrite()
		if drop || kill {
			t.Fatalf("write %d: unexpected drop=%v kill=%v", i, drop, kill)
		}
		if delay >= 40*time.Millisecond {
			stalled++
		} else {
			clean++
		}
	}
	if stalled != 3 || clean != 6 {
		t.Fatalf("9 writes at StallEvery=3: %d stalled, %d clean; want 3/6", stalled, clean)
	}
	if f.Stalls() != 3 {
		t.Fatalf("Stalls() = %d, want 3", f.Stalls())
	}

	// Default StallFor when unset.
	g := NewFaults(1)
	g.StallEvery = 1
	if _, _, delay := g.nextWrite(); delay != time.Second {
		t.Fatalf("default stall delay = %v, want 1s", delay)
	}
}
