// Command jointable regenerates the in-text comparison of §5.2 of
// Liu & Lam (ICDCS 2003): the average number of JoinNotiMsg sent per
// joining node in simulation (paper: 6.117, 6.051, 5.026, 5.399) against
// the Theorem-5 upper bounds (paper: 8.001, 8.001, 6.986, 6.986), plus
// Theorem-3 and Theorem-4 columns and the SpeNotiMsg frequency (paper
// footnote 8: "rarely sent").
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"hypercube/internal/analysis"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/overlay"
	"hypercube/internal/topology"
)

func main() {
	var (
		seed  = flag.Int64("seed", 1, "simulation seed")
		m     = flag.Int("m", 1000, "number of concurrently joining nodes")
		small = flag.Bool("small", false, "run a reduced-scale variant")
	)
	flag.Parse()

	setups := []struct{ n, d int }{
		{3096, 8}, {3096, 40}, {7192, 8}, {7192, 40},
	}
	joiners := *m
	topoCfg := topology.Default8320(*seed)
	if *small {
		for i := range setups {
			setups[i].n /= 16
		}
		joiners = *m / 16
		topoCfg = topology.Small(*seed)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "n\td\tm\tavg JoinNoti\tThm5 bound\tThm4 E(J)\tmax CpRst+JoinWait\tThm3 bound\tSpeNoti/join\tconsistent")
	var last *overlay.WaveResult
	for _, su := range setups {
		topo, err := topology.Generate(topoCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jointable: %v\n", err)
			os.Exit(1)
		}
		res, err := overlay.RunWave(overlay.WaveConfig{
			Params:   id.Params{B: 16, D: su.d},
			N:        su.n,
			M:        joiners,
			Seed:     *seed,
			Topology: topo,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "jointable: %v\n", err)
			os.Exit(1)
		}
		last = res
		maxSetup := 0
		totalSpe := 0
		for _, rec := range res.Records {
			if s := rec.CpRstSent + rec.JoinWaitSent; s > maxSetup {
				maxSetup = s
			}
			totalSpe += rec.SpeNotiSent
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%.3f\t%.3f\t%.3f\t%d\t%d\t%.4f\t%v\n",
			su.n, su.d, joiners,
			res.MeanJoinNoti(),
			analysis.UpperBoundJoinNoti(16, su.d, su.n, joiners),
			analysis.ExpectedJoinNoti(16, su.d, su.n),
			maxSetup,
			analysis.Theorem3Bound(su.d),
			float64(totalSpe)/float64(len(res.Records)),
			res.Consistent() && res.AllSNodes,
		)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "jointable: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\npaper §5.2: averages 6.117, 6.051, 5.026, 5.399; bounds 8.001, 8.001, 6.986, 6.986")

	if last != nil {
		fmt.Println("\nper-join message breakdown (last setup, all types, sent by joiners):")
		bw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		for _, typ := range msg.Types() {
			if v := last.SentPerJoin[typ]; v > 0 {
				fmt.Fprintf(bw, "  %v\t%.3f\n", typ, v)
			}
		}
		if err := bw.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "jointable: %v\n", err)
			os.Exit(1)
		}
	}
}
