package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
)

// JSONL writes one JSON object per event, newline-delimited — the trace
// format cmd/tracestat consumes. Writes are buffered; call Flush (or
// Close, which also closes an owned file) before reading the output.
// Safe for concurrent use.
type JSONL struct {
	mu      sync.Mutex
	w       *bufio.Writer
	closer  io.Closer
	emitted int
	err     error
}

// NewJSONL wraps an open writer. The caller keeps ownership of w; Close
// only flushes.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriterSize(w, 1<<16)}
}

// NewJSONLFile creates (truncating) the file at path and owns it: Close
// flushes and closes it.
func NewJSONLFile(path string) (*JSONL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: trace file: %w", err)
	}
	s := NewJSONL(f)
	s.closer = f
	return s, nil
}

// Emit implements Sink. Encoding errors are sticky and surfaced by
// Flush/Close; tracing must never take the protocol down.
func (s *JSONL) Emit(e Event) {
	buf, err := json.Marshal(e)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err != nil {
		s.err = err
		return
	}
	buf = append(buf, '\n')
	if _, err := s.w.Write(buf); err != nil {
		s.err = err
		return
	}
	s.emitted++
}

// Emitted returns how many events were written so far.
func (s *JSONL) Emitted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.emitted
}

// Flush drains the buffer and returns the first sticky error, if any.
func (s *JSONL) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Close flushes and, for file-owning sinks, closes the file.
func (s *JSONL) Close() error {
	err := s.Flush()
	s.mu.Lock()
	c := s.closer
	s.closer = nil
	s.mu.Unlock()
	if c != nil {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadJSONL decodes a JSONL trace stream back into events, in order.
// Blank lines are skipped; a malformed line aborts with an error naming
// its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: trace read: %w", err)
	}
	return out, nil
}

// Ring is a bounded in-memory sink: the newest Cap events are kept, the
// oldest silently overwritten. An admin endpoint (or a test) drains it
// for a recent-history view without unbounded growth. Safe for
// concurrent use.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest event
	n       int // live events in buf
	dropped int
}

// NewRing creates a ring holding at most capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
		return
	}
	r.buf[r.start] = e
	r.start = (r.start + 1) % len(r.buf)
	r.dropped++
}

// Drain returns the buffered events oldest-first and empties the ring.
func (r *Ring) Drain() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	r.start, r.n = 0, 0
	return out
}

// Len returns how many events are currently buffered.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many events were overwritten before being drained.
func (r *Ring) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// SlogSink renders events as structured debug logs, so a trace can
// double as a -log-level=debug stream without a second emit path.
type SlogSink struct {
	log *slog.Logger
}

// NewSlogSink wraps a logger; events log at Debug level.
func NewSlogSink(l *slog.Logger) *SlogSink { return &SlogSink{log: l} }

// Emit implements Sink.
func (s *SlogSink) Emit(e Event) {
	if !s.log.Enabled(context.Background(), slog.LevelDebug) {
		return
	}
	attrs := make([]any, 0, 12)
	attrs = append(attrs, "t", e.T, "node", e.Node)
	if e.Peer != "" {
		attrs = append(attrs, "peer", e.Peer)
	}
	if e.Msg != "" {
		attrs = append(attrs, "msg", e.Msg)
	}
	if e.Detail != "" {
		attrs = append(attrs, "detail", e.Detail)
	}
	if e.Seq != 0 {
		attrs = append(attrs, "seq", e.Seq)
	}
	if e.N != 0 {
		attrs = append(attrs, "n", e.N)
	}
	s.log.Debug(string(e.Kind), attrs...)
}
