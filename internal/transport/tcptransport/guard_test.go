package tcptransport

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
)

// dialNode opens a raw TCP connection to a node's listener, bypassing
// the delivery layer, so tests can speak the frame protocol by hand.
func dialNode(t *testing.T, n *Node) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", n.Ref().Addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// validFrame encodes a well-formed CpRst addressed to the node from a
// fictitious peer.
func validFrame(t *testing.T, n *Node, from string) []byte {
	t.Helper()
	env := msg.Envelope{
		From: table.Ref{ID: id.MustParse(p163, from), Addr: "127.0.0.1:1"},
		To:   n.Ref(),
		Msg:  msg.CpRst{Level: 0},
	}
	w, err := encodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := encodeFrame(w)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// junkFrame is a correctly length-prefixed frame whose payload is not a
// gob-encoded wireEnvelope.
func junkFrame(size int) []byte {
	frame := make([]byte, frameHeaderLen+size)
	binary.BigEndian.PutUint32(frame, uint32(size))
	for i := frameHeaderLen; i < len(frame); i++ {
		frame[i] = 0xff
	}
	return frame
}

// awaitClosed asserts the remote end tears the connection down.
func awaitClosed(t *testing.T, conn net.Conn) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection still open, want remote close")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("connection not closed within deadline")
	}
}

// A frame declaring more bytes than MaxFrameBytes must cost the peer its
// connection before the payload is read, and be visible in the counters.
func TestOversizedFrameDisconnects(t *testing.T) {
	n, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "a10"), "127.0.0.1:0",
		WithMaxFrameBytes(1024))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	conn := dialNode(t, n)
	header := make([]byte, frameHeaderLen)
	binary.BigEndian.PutUint32(header, 1<<20)
	if _, err := conn.Write(header); err != nil {
		t.Fatal(err)
	}
	awaitClosed(t, conn)
	awaitInt64(t, "oversized frames", func() int64 { return n.TransportGuardStats().OversizedFrames }, 1)
	awaitInt64(t, "guard disconnects", func() int64 { return n.TransportGuardStats().Disconnects }, 1)
}

// Frame boundaries isolate malformed payloads: a connection survives
// bad frames up to the decode-error budget — and still delivers valid
// frames in between — then is torn down when the budget is exhausted.
func TestDecodeErrorBudgetDisconnects(t *testing.T) {
	n, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "a11"), "127.0.0.1:0",
		WithDecodeErrorBudget(3),
		WithMaxAttempts(1), WithBackoff(time.Millisecond, 2*time.Millisecond),
		WithDialTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	conn := dialNode(t, n)
	// Two junk frames: within budget, connection must survive.
	for i := 0; i < 2; i++ {
		if _, err := conn.Write(junkFrame(16)); err != nil {
			t.Fatal(err)
		}
	}
	// A valid frame after garbage still delivers — proof the stream
	// resynchronizes at frame boundaries.
	if _, err := conn.Write(validFrame(t, n, "b20")); err != nil {
		t.Fatal(err)
	}
	awaitInt64(t, "CpRst received", func() int64 {
		c := n.Counters()
		return int64(c.ReceivedOf(msg.TCpRst))
	}, 1)
	if got := n.TransportGuardStats().Disconnects; got != 0 {
		t.Fatalf("disconnects = %d before budget exhausted, want 0", got)
	}
	// Third junk frame exhausts the budget.
	if _, err := conn.Write(junkFrame(16)); err != nil {
		t.Fatal(err)
	}
	awaitClosed(t, conn)
	awaitInt64(t, "decode errors", func() int64 { return n.TransportGuardStats().DecodeErrors }, 3)
	awaitInt64(t, "guard disconnects", func() int64 { return n.TransportGuardStats().Disconnects }, 1)
}

// A peer pushing envelopes faster than the inbound rate limit is
// stalled (backpressured through TCP), and the stalls are counted.
func TestInboundRateLimitThrottles(t *testing.T) {
	n, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "a12"), "127.0.0.1:0",
		WithInboundRate(20, 2),
		WithMaxAttempts(1), WithBackoff(time.Millisecond, 2*time.Millisecond),
		WithDialTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	conn := dialNode(t, n)
	for i := 0; i < 5; i++ {
		if _, err := conn.Write(validFrame(t, n, "b21")); err != nil {
			t.Fatal(err)
		}
	}
	awaitInt64(t, "throttled inbound", func() int64 { return n.TransportGuardStats().ThrottledInbound }, 1)
	awaitInt64(t, "CpRst received", func() int64 {
		c := n.Counters()
		return int64(c.ReceivedOf(msg.TCpRst))
	}, 5)
}

// The guard block is always present on /status, and the hostile-input
// gauges are exported on /metrics.
func TestAdminExposesGuardCounters(t *testing.T) {
	n, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "a13"), "127.0.0.1:0",
		WithDecodeErrorBudget(8))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	conn := dialNode(t, n)
	if _, err := conn.Write(junkFrame(16)); err != nil {
		t.Fatal(err)
	}
	awaitInt64(t, "decode errors", func() int64 { return n.TransportGuardStats().DecodeErrors }, 1)

	srv := httptest.NewServer(n.AdminHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Guard *guardStatus `json:"guard"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Guard == nil {
		t.Fatal("/status has no guard block")
	}
	if status.Guard.DecodeErrors != 1 {
		t.Fatalf("guard.decodeErrors = %d, want 1", status.Guard.DecodeErrors)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{
		"hypercube_guard_rejected_total",
		"hypercube_guard_quarantined",
		"hypercube_inbound_decode_errors_total",
		"hypercube_inbound_throttled_total",
		"hypercube_guard_disconnects_total",
	} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}
}
