package nemesis

import (
	"encoding/json"
	"fmt"
	"os"

	"hypercube/internal/nemesis/oracle"
)

// Repro is the repro-file format: the (minimal) schedule plus the exact
// findings its execution produced. Because executions are
// bit-reproducible, a replay can demand finding-for-finding equality —
// a weaker "some failure occurred" check would let a different bug
// masquerade as the recorded one.
type Repro struct {
	Schedule Schedule         `json:"schedule"`
	Findings []oracle.Finding `json:"findings"`
}

// WriteRepro writes the repro as indented JSON.
func WriteRepro(path string, r Repro) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("nemesis: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("nemesis: %w", err)
	}
	return nil
}

// LoadRepro reads and validates a repro file.
func LoadRepro(path string) (Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Repro{}, fmt.Errorf("nemesis: %w", err)
	}
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return Repro{}, fmt.Errorf("nemesis: parse repro: %w", err)
	}
	if err := r.Schedule.Validate(); err != nil {
		return Repro{}, err
	}
	return r, nil
}

// Replay re-executes the repro's schedule and compares the findings
// against the recording. It returns the fresh findings and whether they
// match exactly (same checks, steps, and details, in order).
func Replay(r Repro, opt Options) ([]oracle.Finding, bool, error) {
	res, err := Execute(r.Schedule, opt)
	if err != nil {
		return nil, false, err
	}
	return res.Findings, sameFindings(res.Findings, r.Findings), nil
}

func sameFindings(a, b []oracle.Finding) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
