package overlay

// Gray-failure fault injection: slow nodes (per-node processing delay
// with a ramp) and asymmetric link latency. Unlike the crash and
// byzantine models, a gray node runs the correct protocol and answers
// every message — just late. A fixed-timeout failure detector cannot
// tell this from a crash; the adaptive (RTT-estimating) detector must.

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/rtt"
	"hypercube/internal/table"
)

// SlowNodes configures per-node processing-delay injection. A marked
// node processes slowly in both directions: every message it sends or
// receives is delayed by the current per-side delay, so a round trip
// involving one slow endpoint inflates by 2x the delay. The delay
// ramps linearly from zero to Delay over Ramp — modeling gradual
// degradation (GC pressure, disk stalls, thermal throttling) rather
// than a step change, which is the harder case for an estimator that
// must chase a moving target.
type SlowNodes struct {
	// Delay is the full per-side processing delay once the ramp
	// completes. Default 500ms.
	Delay time.Duration
	// Ramp is how long a newly marked node takes to reach Delay;
	// 0 applies the full delay immediately.
	Ramp time.Duration
	// Fraction of the candidates SelectSlow marks, in [0,1].
	Fraction float64
	// Seed feeds the deterministic selection.
	Seed int64
}

func (s *SlowNodes) delay() time.Duration {
	if s.Delay <= 0 {
		return 500 * time.Millisecond
	}
	return s.Delay
}

// MarkSlow marks the given members slow starting now (their delay
// begins ramping). Panics unless the network was configured with
// Config.SlowNodes.
func (n *Network) MarkSlow(ids ...id.ID) {
	if n.cfg.SlowNodes == nil {
		panic("overlay: MarkSlow without Config.SlowNodes")
	}
	now := n.engine.Now()
	for _, x := range ids {
		if _, dup := n.slow[x]; !dup {
			n.slow[x] = now
		}
	}
}

// UnmarkSlow restores the given members to full speed (recovery).
func (n *Network) UnmarkSlow(ids ...id.ID) {
	for _, x := range ids {
		delete(n.slow, x)
	}
}

// SlowIDs returns the currently slow members, unsorted.
func (n *Network) SlowIDs() []id.ID {
	out := make([]id.ID, 0, len(n.slow))
	for x := range n.slow {
		out = append(out, x)
	}
	return out
}

// SelectSlow deterministically draws Fraction of the candidates
// (rounded down, minimum 1 when Fraction > 0), marks them slow, and
// returns their IDs. The draw depends only on SlowNodes.Seed and the
// candidate order — the same discipline as SelectByzantine, with an
// independent stream so the two fault sets are uncorrelated.
func (n *Network) SelectSlow(candidates []table.Ref) []id.ID {
	s := n.cfg.SlowNodes
	if s == nil {
		panic("overlay: SelectSlow without Config.SlowNodes")
	}
	count := int(s.Fraction * float64(len(candidates)))
	if count == 0 && s.Fraction > 0 && len(candidates) > 0 {
		count = 1
	}
	rng := rand.New(rand.NewSource(s.Seed ^ 0x536c6f77)) // "Slow"
	perm := rng.Perm(len(candidates))
	out := make([]id.ID, 0, count)
	for _, i := range perm[:count] {
		out = append(out, candidates[i].ID)
	}
	n.MarkSlow(out...)
	return out
}

// slowDelay returns node x's current per-side processing delay: zero
// for fast nodes, Delay scaled by ramp progress for slow ones.
func (n *Network) slowDelay(x id.ID, now time.Duration) time.Duration {
	since, ok := n.slow[x]
	if !ok {
		return 0
	}
	s := n.cfg.SlowNodes
	d := s.delay()
	if s.Ramp <= 0 || now-since >= s.Ramp {
		return d
	}
	return time.Duration(int64(d) * int64(now-since) / int64(s.Ramp))
}

// SlowDelayed returns how many message transmissions were delayed by
// the slow-node model so far.
func (n *Network) SlowDelayed() uint64 { return n.slowDelayed }

// AsymmetricLatency wraps a LatencyFunc with directional skew: a
// hash-chosen fraction of node pairs have one direction's latency
// multiplied by factor while the reverse stays at base — the
// "asymmetric link" gray failure, where A hears B promptly but B's
// replies to A crawl. The skewed direction is chosen per pair from the
// seed, so the wrapper is deterministic and the skew survives replays.
func AsymmetricLatency(base LatencyFunc, fraction, factor float64, seed int64) LatencyFunc {
	if factor < 1 {
		panic(fmt.Sprintf("overlay: asymmetric factor %v < 1", factor))
	}
	return func(from, to table.Ref) time.Duration {
		d := base(from, to)
		a, b := from.ID.String(), to.ID.String()
		flip := false
		if b < a {
			a, b = b, a
			flip = true
		}
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%s|%s", seed, a, b)
		sum := h.Sum64()
		// Low 52 bits select the pair; bit 52 picks the slow direction.
		if float64(sum&((1<<52)-1))/float64(uint64(1)<<52) >= fraction {
			return d
		}
		lowToHigh := sum&(1<<52) == 0
		if lowToHigh != flip {
			return time.Duration(float64(d) * factor)
		}
		return d
	}
}

// RTT returns node x's estimator, if Config.RTT attached one.
func (n *Network) RTT(x id.ID) (*rtt.Estimator, bool) {
	e, ok := n.ests[x]
	return e, ok
}

// RTTStats aggregates estimator counters over all live nodes.
func (n *Network) RTTStats() rtt.Stats {
	var total rtt.Stats
	for _, e := range n.ests {
		s := e.Stats()
		total.Tracked += s.Tracked
		total.Degraded += s.Degraded
		total.Samples += s.Samples
		total.Marked += s.Marked
		total.Cleared += s.Cleared
	}
	return total
}
