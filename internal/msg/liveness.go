// Liveness messages — the probe layer of the failure-detection extension
// (§7 names failure recovery as future work; the paper itself assumes
// reliable nodes). Ping/Pong are the smallest message class: they carry a
// sequence number and, for indirect probes, a relay target. FailedNoti
// gossips a declared crash to co-holders so repairs converge without a
// global oracle.
package msg

import "hypercube/internal/table"

// Ping probes a node for liveness. A direct probe has a zero Target and
// is answered by a Pong to Origin. An indirect probe (sent to a shared
// neighbor to rule out one-way loss on the direct path) carries the
// suspect in Target; the receiver relays the ping unchanged, and the
// suspect answers Origin directly.
type Ping struct {
	Seq    uint64
	Origin table.Ref
	Target table.Ref
}

// Type implements Message.
func (Ping) Type() Type { return TPing }

// Big implements Message.
func (Ping) Big() bool { return false }

// WireSize implements Message.
func (m Ping) WireSize() int { return smallHeader + 8 + refSize(m.Origin) + refSize(m.Target) }

// Pong answers a Ping back to its Origin, echoing the sequence number.
type Pong struct {
	Seq uint64
}

// Type implements Message.
func (Pong) Type() Type { return TPong }

// Big implements Message.
func (Pong) Big() bool { return false }

// WireSize implements Message.
func (Pong) WireSize() int { return smallHeader + 8 }

// FailedNoti tells the receiver that Failed was declared crashed by the
// sender's failure detector. Receivers drop the node from their tables,
// repair autonomously, and gossip the declaration onward (once per
// failed node), so every co-holder converges without central
// coordination.
type FailedNoti struct {
	Failed table.Ref
}

// Type implements Message.
func (FailedNoti) Type() Type { return TFailedNoti }

// Big implements Message.
func (FailedNoti) Big() bool { return false }

// WireSize implements Message.
func (m FailedNoti) WireSize() int { return smallHeader + refSize(m.Failed) }
