package msg

import (
	"strings"
	"testing"

	"hypercube/internal/id"
	"hypercube/internal/table"
)

var p168 = id.Params{B: 16, D: 8}

func sampleSnapshot(t *testing.T) table.Snapshot {
	t.Helper()
	owner := id.MustParse(p168, "00123456")
	tbl := table.New(p168, owner)
	tbl.Set(0, 1, table.Neighbor{ID: id.MustParse(p168, "abcdef01"), State: table.StateS})
	tbl.Set(3, 2, table.Neighbor{ID: id.MustParse(p168, "00002456"), State: table.StateT})
	return tbl.Snapshot()
}

func TestTypeNamesMatchPaper(t *testing.T) {
	want := map[Type]string{
		TCpRst:        "CpRstMsg",
		TCpRly:        "CpRlyMsg",
		TJoinWait:     "JoinWaitMsg",
		TJoinWaitRly:  "JoinWaitRlyMsg",
		TJoinNoti:     "JoinNotiMsg",
		TJoinNotiRly:  "JoinNotiRlyMsg",
		TInSysNoti:    "InSysNotiMsg",
		TSpeNoti:      "SpeNotiMsg",
		TSpeNotiRly:   "SpeNotiRlyMsg",
		TRvNghNoti:    "RvNghNotiMsg",
		TRvNghNotiRly: "RvNghNotiRlyMsg",
	}
	for typ, name := range want {
		if got := typ.String(); got != name {
			t.Errorf("%d.String() = %q, want %q", typ, got, name)
		}
	}
	if got := Type(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown type renders %q", got)
	}
}

func TestTypesEnumeratesAll(t *testing.T) {
	types := Types()
	// 11 message types of Figure 4, the four §7-extension messages
	// (Leave, LeaveRly, Find, FindRly), the three liveness messages
	// (Ping, Pong, FailedNoti), the three anti-entropy messages
	// (SyncReq, SyncRly, SyncPush), and the three peer-sampling messages
	// (SamplePush, SamplePullReq, SamplePullRly).
	if len(types) != 24 {
		t.Fatalf("Types() has %d entries, want 24", len(types))
	}
	seen := make(map[Type]bool)
	for _, typ := range types {
		if seen[typ] {
			t.Errorf("duplicate type %v", typ)
		}
		seen[typ] = true
	}
}

func TestBigClassification(t *testing.T) {
	// §5.2: messages that may carry a table copy are big.
	snap := sampleSnapshot(t)
	big := []Message{
		CpRly{Table: snap},
		JoinWaitRly{R: Positive, Table: snap},
		JoinNoti{Table: snap},
		JoinNotiRly{R: Negative, Table: snap},
		Leave{Table: snap},
		SyncRly{Table: snap},
		SyncPush{Table: snap},
	}
	small := []Message{
		CpRst{}, JoinWait{}, InSysNoti{},
		SpeNoti{}, SpeNotiRly{}, RvNghNoti{}, RvNghNotiRly{},
		LeaveRly{}, Find{}, FindRly{},
		Ping{}, Pong{}, FailedNoti{}, SyncReq{},
		SamplePush{}, SamplePullReq{}, SamplePullRly{},
	}
	for _, m := range big {
		if !m.Big() {
			t.Errorf("%v should be big", m.Type())
		}
	}
	for _, m := range small {
		if m.Big() {
			t.Errorf("%v should be small", m.Type())
		}
	}
}

func TestWireSizeOrdering(t *testing.T) {
	snap := sampleSnapshot(t)
	if (JoinNoti{Table: snap}).WireSize() <= (JoinWait{}).WireSize() {
		t.Error("table-carrying message not larger than small message")
	}
	if (CpRst{}).WireSize() <= 0 {
		t.Error("CpRst has non-positive size")
	}
	withRef := SpeNoti{X: table.Ref{ID: snap.Owner(), Addr: "10.0.0.1:1"}}
	if withRef.WireSize() <= (SpeNoti{}).WireSize() {
		t.Error("populated refs should grow the message")
	}
}

func TestResultString(t *testing.T) {
	if Positive.String() != "positive" || Negative.String() != "negative" {
		t.Error("Result strings wrong")
	}
	if got := Result(7).String(); !strings.Contains(got, "7") {
		t.Errorf("unknown result renders %q", got)
	}
}

func TestEnvelopeString(t *testing.T) {
	a := id.MustParse(p168, "00000001")
	b := id.MustParse(p168, "00000002")
	e := Envelope{From: table.Ref{ID: a}, To: table.Ref{ID: b}, Msg: JoinWait{}}
	s := e.String()
	if !strings.Contains(s, "00000001") || !strings.Contains(s, "JoinWaitMsg") {
		t.Errorf("envelope renders %q", s)
	}
	if e.WireSize() != (JoinWait{}).WireSize() {
		t.Error("envelope size != message size")
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	snap := sampleSnapshot(t)
	c.CountSent(JoinNoti{Table: snap})
	c.CountSent(JoinNoti{Table: snap})
	c.CountSent(JoinWait{})
	c.CountReceived(CpRly{Table: snap})
	if got := c.SentOf(TJoinNoti); got != 2 {
		t.Errorf("SentOf(JoinNoti) = %d", got)
	}
	if got := c.SentOf(TJoinWait); got != 1 {
		t.Errorf("SentOf(JoinWait) = %d", got)
	}
	if got := c.ReceivedOf(TCpRly); got != 1 {
		t.Errorf("ReceivedOf(CpRly) = %d", got)
	}
	if got := c.TotalSent(); got != 3 {
		t.Errorf("TotalSent = %d", got)
	}
	if c.BytesSent <= 0 {
		t.Error("BytesSent not accumulated")
	}

	var d Counters
	d.CountSent(JoinNotiRly{Table: snap})
	d.CountSent(CpRly{Table: snap})
	c.Add(&d)
	if got := c.BigSent(); got != 4 { // 2 JoinNoti + 1 JoinNotiRly + 1 CpRly
		t.Errorf("BigSent = %d, want 4", got)
	}
	if got := c.TotalSent(); got != 5 {
		t.Errorf("after Add TotalSent = %d, want 5", got)
	}
}

func TestCountersDelivery(t *testing.T) {
	var c Counters
	c.CountRetried(TJoinNoti)
	c.CountRetried(TJoinNoti)
	c.CountRetried(TCpRst)
	c.CountDropped(TJoinWait)
	if got := c.RetriedOf(TJoinNoti); got != 2 {
		t.Errorf("RetriedOf(JoinNoti) = %d", got)
	}
	if got := c.TotalRetried(); got != 3 {
		t.Errorf("TotalRetried = %d", got)
	}
	if got := c.DroppedOf(TJoinWait); got != 1 {
		t.Errorf("DroppedOf(JoinWait) = %d", got)
	}
	if got := c.TotalDropped(); got != 1 {
		t.Errorf("TotalDropped = %d", got)
	}

	var d Counters
	d.CountRetried(TCpRst)
	d.CountDropped(TCpRst)
	c.Add(&d)
	if got := c.RetriedOf(TCpRst); got != 2 {
		t.Errorf("after Add RetriedOf(CpRst) = %d", got)
	}
	if got := c.TotalDropped(); got != 2 {
		t.Errorf("after Add TotalDropped = %d", got)
	}
}

func TestAllMessagesTypeAndSize(t *testing.T) {
	snap := sampleSnapshot(t)
	ref := table.Ref{ID: snap.Owner(), Addr: "10.0.0.1:9000"}
	nb := table.Neighbor{ID: snap.Owner(), Addr: "10.0.0.1:9000", State: table.StateS}
	suffix := snap.Owner().Suffix(3)
	cases := []struct {
		m    Message
		want Type
	}{
		{CpRst{Level: 2}, TCpRst},
		{CpRly{Table: snap}, TCpRly},
		{JoinWait{}, TJoinWait},
		{JoinWaitRly{R: Positive, U: ref, Table: snap}, TJoinWaitRly},
		{JoinNoti{Table: snap, NotiLevel: 1}, TJoinNoti},
		{JoinNotiRly{R: Negative, Table: snap, F: true}, TJoinNotiRly},
		{InSysNoti{}, TInSysNoti},
		{SpeNoti{X: ref, Y: ref}, TSpeNoti},
		{SpeNotiRly{X: ref, Y: ref}, TSpeNotiRly},
		{RvNghNoti{Level: 1, Digit: 2, State: table.StateT}, TRvNghNoti},
		{RvNghNotiRly{Level: 1, Digit: 2, State: table.StateS}, TRvNghNotiRly},
		{Leave{Table: snap}, TLeave},
		{LeaveRly{}, TLeaveRly},
		{Find{Want: suffix, Origin: ref, Avoid: snap.Owner()}, TFind},
		{FindRly{Want: suffix, Found: nb}, TFindRly},
		{Ping{Seq: 7, Origin: ref, Target: ref}, TPing},
		{Pong{Seq: 7}, TPong},
		{FailedNoti{Failed: ref}, TFailedNoti},
		{SyncReq{Fill: table.NewBitVector(p168.B * p168.D)}, TSyncReq},
		{SyncRly{Table: snap, Fill: table.NewBitVector(p168.B * p168.D)}, TSyncRly},
		{SyncPush{Table: snap}, TSyncPush},
		{SamplePush{}, TSamplePush},
		{SamplePullReq{}, TSamplePullReq},
		{SamplePullRly{Refs: []table.Ref{ref}}, TSamplePullRly},
	}
	if len(cases) != len(Types()) {
		t.Fatalf("case list covers %d of %d message types", len(cases), len(Types()))
	}
	for _, tc := range cases {
		if got := tc.m.Type(); got != tc.want {
			t.Errorf("%T.Type() = %v, want %v", tc.m, got, tc.want)
		}
		if size := tc.m.WireSize(); size <= 0 {
			t.Errorf("%v.WireSize() = %d", tc.want, size)
		}
	}
	// Populated messages are larger than their zero forms.
	if (Find{Want: suffix, Origin: ref}).WireSize() <= (Find{}).WireSize() {
		t.Error("populated Find not larger than empty Find")
	}
	if (FindRly{Found: nb}).WireSize() <= (FindRly{}).WireSize() {
		t.Error("populated FindRly not larger than empty FindRly")
	}
	if (Leave{Table: snap}).WireSize() <= (LeaveRly{}).WireSize() {
		t.Error("Leave with table not larger than its ack")
	}
}
