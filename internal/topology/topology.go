// Package topology generates transit-stub router topologies in the style
// of GT-ITM (Calvert, Doar & Zegura), the tool used for the simulations in
// Liu & Lam's §5.2, and answers exact shortest-path latency queries
// between attached end hosts.
//
// Structure: T transit domains, each of Nt transit routers; every transit
// router hosts S stub domains of Ns routers each. Stub domains connect to
// the core through exactly one gateway edge. The default configuration
// reproduces the paper's scale: 8320 routers.
//
// Latencies are exact shortest paths, computed without an all-pairs
// matrix: every stub domain has a single gateway, so intra-stub distances
// close under the stub subgraph, and any inter-stub path crosses at least
// one transit router, making dist(u,v) = min over transit routers t of
// dist(t,u)+dist(t,v); the package precomputes one Dijkstra per transit
// router and all-pairs within each (small) stub domain.
package topology

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// LatencyRange is a uniform latency interval for one link class.
type LatencyRange struct {
	Min, Max time.Duration
}

func (r LatencyRange) draw(rng *rand.Rand) time.Duration {
	if r.Max <= r.Min {
		return r.Min
	}
	return r.Min + time.Duration(rng.Int63n(int64(r.Max-r.Min)))
}

// Config parameterizes the generator.
type Config struct {
	TransitDomains        int
	RoutersPerTransit     int
	StubsPerTransitRouter int
	RoutersPerStub        int

	// Link latency classes.
	IntraStub    LatencyRange // links inside a stub domain
	StubTransit  LatencyRange // stub gateway to its transit router
	IntraTransit LatencyRange // links inside a transit domain
	InterTransit LatencyRange // links between transit domains

	// ExtraStubEdges adds this many extra random edges per stub domain on
	// top of the spanning tree, creating path diversity.
	ExtraStubEdges int
	// TransitChordProb is the probability of a chord between any two
	// routers of the same transit domain beyond the connecting ring.
	TransitChordProb float64

	Seed int64
}

// Validate reports whether the configuration is generable.
func (c Config) Validate() error {
	switch {
	case c.TransitDomains < 1:
		return fmt.Errorf("topology: need at least 1 transit domain, have %d", c.TransitDomains)
	case c.RoutersPerTransit < 1:
		return fmt.Errorf("topology: need at least 1 router per transit domain, have %d", c.RoutersPerTransit)
	case c.StubsPerTransitRouter < 0 || c.RoutersPerStub < 0:
		return fmt.Errorf("topology: negative stub parameters")
	case c.StubsPerTransitRouter > 0 && c.RoutersPerStub < 1:
		return fmt.Errorf("topology: stub domains need at least 1 router")
	case c.TransitChordProb < 0 || c.TransitChordProb > 1:
		return fmt.Errorf("topology: chord probability %v out of [0,1]", c.TransitChordProb)
	default:
		return nil
	}
}

// RouterCount returns the total number of routers the config generates.
func (c Config) RouterCount() int {
	transit := c.TransitDomains * c.RoutersPerTransit
	return transit + transit*c.StubsPerTransitRouter*c.RoutersPerStub
}

// Default8320 reproduces the paper's simulation scale: a topology with
// 8320 routers (4 transit domains of 8 routers; 7 stub domains per
// transit router with 37 routers each: 32 + 32*7*37 = 8320).
func Default8320(seed int64) Config {
	return Config{
		TransitDomains:        4,
		RoutersPerTransit:     8,
		StubsPerTransitRouter: 7,
		RoutersPerStub:        37,
		IntraStub:             LatencyRange{1 * time.Millisecond, 5 * time.Millisecond},
		StubTransit:           LatencyRange{8 * time.Millisecond, 16 * time.Millisecond},
		IntraTransit:          LatencyRange{15 * time.Millisecond, 30 * time.Millisecond},
		InterTransit:          LatencyRange{40 * time.Millisecond, 80 * time.Millisecond},
		ExtraStubEdges:        8,
		TransitChordProb:      0.3,
		Seed:                  seed,
	}
}

// Small returns a reduced configuration (~1/16 scale) for fast tests.
func Small(seed int64) Config {
	c := Default8320(seed)
	c.TransitDomains = 2
	c.RoutersPerTransit = 4
	c.StubsPerTransitRouter = 3
	c.RoutersPerStub = 10
	c.ExtraStubEdges = 3
	return c
}

type edge struct {
	to int
	w  time.Duration
}

// Topology is a generated router graph with attached end hosts.
type Topology struct {
	cfg        Config
	adj        [][]edge
	stubOf     []int // router -> stub index, -1 for transit routers
	domainOf   []int // router -> transit domain index
	transit    []int // transit router ids
	stubs      [][]int
	gatewayOf  []int // stub -> its transit router
	edgeCount  int
	distTrans  [][]time.Duration // [transit idx][router] exact distance
	stubDist   []map[[2]int]time.Duration
	hostRouter []int
	accessLat  []time.Duration // per-host access-link latency
}

// Generate builds a topology from the configuration. The same
// configuration (including seed) always yields the same topology.
func Generate(cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.RouterCount()
	t := &Topology{
		cfg:      cfg,
		adj:      make([][]edge, n),
		stubOf:   make([]int, n),
		domainOf: make([]int, n),
	}
	for i := range t.stubOf {
		t.stubOf[i] = -1
		t.domainOf[i] = -1
	}

	addEdge := func(a, b int, w time.Duration) {
		t.adj[a] = append(t.adj[a], edge{to: b, w: w})
		t.adj[b] = append(t.adj[b], edge{to: a, w: w})
		t.edgeCount++
	}

	// Transit core: routers 0..T*Nt-1, domain d owns a contiguous block.
	next := 0
	domains := make([][]int, cfg.TransitDomains)
	for d := range domains {
		for r := 0; r < cfg.RoutersPerTransit; r++ {
			domains[d] = append(domains[d], next)
			t.domainOf[next] = d
			t.transit = append(t.transit, next)
			next++
		}
		// Ring plus random chords within the domain.
		rs := domains[d]
		for i := range rs {
			if len(rs) > 1 {
				addEdge(rs[i], rs[(i+1)%len(rs)], cfg.IntraTransit.draw(rng))
			}
			for j := i + 2; j < len(rs); j++ {
				if rng.Float64() < cfg.TransitChordProb {
					addEdge(rs[i], rs[j], cfg.IntraTransit.draw(rng))
				}
			}
		}
	}
	// Inter-domain: connect consecutive domains (guaranteeing a connected
	// core) plus one random extra edge per domain pair with probability ½.
	for d := 1; d < cfg.TransitDomains; d++ {
		a := domains[d-1][rng.Intn(len(domains[d-1]))]
		b := domains[d][rng.Intn(len(domains[d]))]
		addEdge(a, b, cfg.InterTransit.draw(rng))
	}
	for d1 := 0; d1 < cfg.TransitDomains; d1++ {
		for d2 := d1 + 1; d2 < cfg.TransitDomains; d2++ {
			if rng.Float64() < 0.5 {
				a := domains[d1][rng.Intn(len(domains[d1]))]
				b := domains[d2][rng.Intn(len(domains[d2]))]
				addEdge(a, b, cfg.InterTransit.draw(rng))
			}
		}
	}

	// Stub domains: a random spanning tree plus extra edges, one gateway
	// edge to the owning transit router.
	for _, tr := range t.transit {
		for s := 0; s < cfg.StubsPerTransitRouter; s++ {
			stubIdx := len(t.stubs)
			var routers []int
			for r := 0; r < cfg.RoutersPerStub; r++ {
				routers = append(routers, next)
				t.stubOf[next] = stubIdx
				t.domainOf[next] = t.domainOf[tr]
				next++
			}
			for i := 1; i < len(routers); i++ {
				addEdge(routers[i], routers[rng.Intn(i)], cfg.IntraStub.draw(rng))
			}
			for e := 0; e < cfg.ExtraStubEdges && len(routers) > 2; e++ {
				a, b := routers[rng.Intn(len(routers))], routers[rng.Intn(len(routers))]
				if a != b {
					addEdge(a, b, cfg.IntraStub.draw(rng))
				}
			}
			gateway := routers[rng.Intn(len(routers))]
			addEdge(gateway, tr, cfg.StubTransit.draw(rng))
			t.stubs = append(t.stubs, routers)
			t.gatewayOf = append(t.gatewayOf, tr)
		}
	}

	t.precompute()
	return t, nil
}

// precompute runs one full-graph Dijkstra per transit router and all-pairs
// Dijkstra within each stub subgraph.
func (t *Topology) precompute() {
	t.distTrans = make([][]time.Duration, len(t.transit))
	for i, tr := range t.transit {
		t.distTrans[i] = t.dijkstra(tr, nil)
	}
	t.stubDist = make([]map[[2]int]time.Duration, len(t.stubs))
	for s, routers := range t.stubs {
		inStub := make(map[int]bool, len(routers))
		for _, r := range routers {
			inStub[r] = true
		}
		pairs := make(map[[2]int]time.Duration, len(routers)*len(routers))
		for _, src := range routers {
			d := t.dijkstra(src, inStub)
			for _, dst := range routers {
				pairs[[2]int{src, dst}] = d[dst]
			}
		}
		t.stubDist[s] = pairs
	}
}

type pqItem struct {
	router int
	dist   time.Duration
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

const unreachable = time.Duration(1<<62 - 1)

// dijkstra returns distances from src; when restrict is non-nil only
// routers in the set are traversed.
func (t *Topology) dijkstra(src int, restrict map[int]bool) []time.Duration {
	dist := make([]time.Duration, len(t.adj))
	for i := range dist {
		dist[i] = unreachable
	}
	dist[src] = 0
	q := pq{{router: src}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.dist > dist[it.router] {
			continue
		}
		for _, e := range t.adj[it.router] {
			if restrict != nil && !restrict[e.to] {
				continue
			}
			if nd := it.dist + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(&q, pqItem{router: e.to, dist: nd})
			}
		}
	}
	return dist
}

// RouterCount returns the number of routers.
func (t *Topology) RouterCount() int { return len(t.adj) }

// EdgeCount returns the number of undirected links.
func (t *Topology) EdgeCount() int { return t.edgeCount }

// StubCount returns the number of stub domains.
func (t *Topology) StubCount() int { return len(t.stubs) }

// TransitRouterCount returns the number of transit routers.
func (t *Topology) TransitRouterCount() int { return len(t.transit) }

// HostCount returns the number of attached end hosts.
func (t *Topology) HostCount() int { return len(t.hostRouter) }

// AttachHosts attaches n end hosts to uniformly random stub routers, each
// over an access link with an intra-stub-class latency, and returns the
// host indices [prev, prev+n). Hosts may share routers.
func (t *Topology) AttachHosts(n int, rng *rand.Rand) []int {
	var stubRouters []int
	for _, routers := range t.stubs {
		stubRouters = append(stubRouters, routers...)
	}
	if len(stubRouters) == 0 {
		stubRouters = t.transit // degenerate config without stubs
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, len(t.hostRouter))
		t.hostRouter = append(t.hostRouter, stubRouters[rng.Intn(len(stubRouters))])
		t.accessLat = append(t.accessLat, t.cfg.IntraStub.draw(rng))
	}
	return out
}

// HostRouter returns the router host h is attached to.
func (t *Topology) HostRouter(h int) int { return t.hostRouter[h] }

// StubOf returns the stub-domain index router r belongs to, or -1 for
// transit routers. Fault injectors use it to take down whole stub
// domains (every host attached under the domain) at once.
func (t *Topology) StubOf(r int) int { return t.stubOf[r] }

// RouterDistance returns the exact shortest-path latency between two
// routers.
func (t *Topology) RouterDistance(a, b int) time.Duration {
	if a == b {
		return 0
	}
	sa, sb := t.stubOf[a], t.stubOf[b]
	if sa >= 0 && sa == sb {
		return t.stubDist[sa][[2]int{a, b}]
	}
	// Any path between different stubs (or involving the core) crosses a
	// transit router, so min over transit pivots is exact.
	best := unreachable
	for i := range t.distTrans {
		if d := t.distTrans[i][a] + t.distTrans[i][b]; d < best {
			best = d
		}
	}
	return best
}

// Latency returns the end-to-end latency between two hosts: access links
// plus exact router shortest path. Two hosts on the same router still pay
// their access links, so latency between distinct hosts is never zero.
func (t *Topology) Latency(hostA, hostB int) time.Duration {
	if hostA == hostB {
		return 0
	}
	ra, rb := t.hostRouter[hostA], t.hostRouter[hostB]
	return t.accessLat[hostA] + t.RouterDistance(ra, rb) + t.accessLat[hostB]
}

// Stats summarizes the topology for reporting tools.
type Stats struct {
	Routers, Edges, TransitRouters, Stubs, Hosts int
	MeanHostLatency, MaxHostLatency              time.Duration
	SampledPairs                                 int
}

// SampleStats estimates host-to-host latency statistics over pairs
// sampled with rng.
func (t *Topology) SampleStats(pairs int, rng *rand.Rand) Stats {
	st := Stats{
		Routers:        t.RouterCount(),
		Edges:          t.EdgeCount(),
		TransitRouters: t.TransitRouterCount(),
		Stubs:          t.StubCount(),
		Hosts:          t.HostCount(),
	}
	if t.HostCount() < 2 {
		return st
	}
	var total time.Duration
	for i := 0; i < pairs; i++ {
		a, b := rng.Intn(t.HostCount()), rng.Intn(t.HostCount())
		if a == b {
			continue
		}
		l := t.Latency(a, b)
		total += l
		if l > st.MaxHostLatency {
			st.MaxHostLatency = l
		}
		st.SampledPairs++
	}
	if st.SampledPairs > 0 {
		st.MeanHostLatency = total / time.Duration(st.SampledPairs)
	}
	return st
}
