// Package overlay is the simulation harness: it wires protocol machines
// (internal/core) to the discrete-event engine (internal/sim) through a
// pluggable latency model, builds initial consistent networks, schedules
// join waves, and verifies the results.
//
// This is the layer that reproduces the paper's simulation methodology:
// an initial consistent network of n nodes, m nodes joining concurrently
// at t=0, end-host latencies drawn from a transit-stub topology, and
// per-join message statistics.
package overlay

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"hypercube/internal/antientropy"
	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/liveness"
	"hypercube/internal/msg"
	"hypercube/internal/netcheck"
	"hypercube/internal/obs"
	"hypercube/internal/rtt"
	"hypercube/internal/sampling"
	"hypercube/internal/sim"
	"hypercube/internal/table"
	"hypercube/internal/topology"
	"hypercube/internal/trace"
)

// LatencyFunc returns the one-way delivery latency between two nodes.
type LatencyFunc func(from, to table.Ref) time.Duration

// ConstantLatency returns a LatencyFunc with a fixed delay.
func ConstantLatency(d time.Duration) LatencyFunc {
	return func(_, _ table.Ref) time.Duration { return d }
}

// HashedUniformLatency returns a deterministic, symmetric LatencyFunc
// drawing each pair's latency uniformly from [min,max) by hashing the
// pair (plus seed). Useful when no router topology is wanted.
func HashedUniformLatency(min, max time.Duration, seed int64) LatencyFunc {
	if max < min {
		panic(fmt.Sprintf("overlay: latency range [%v,%v) inverted", min, max))
	}
	span := int64(max - min)
	return func(from, to table.Ref) time.Duration {
		a, b := from.ID.String(), to.ID.String()
		if b < a {
			a, b = b, a
		}
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%s|%s", seed, a, b)
		if span == 0 {
			return min
		}
		return min + time.Duration(int64(h.Sum64()%uint64(span)))
	}
}

// TopologyLatency maps node IDs to attached hosts of a transit-stub
// topology. Nodes must be registered with HostOf before use.
type TopologyLatency struct {
	Topo  *topology.Topology
	hosts map[id.ID]int
}

// NewTopologyLatency creates an empty mapping over topo.
func NewTopologyLatency(topo *topology.Topology) *TopologyLatency {
	return &TopologyLatency{Topo: topo, hosts: make(map[id.ID]int)}
}

// Bind assigns node x to host h.
func (tl *TopologyLatency) Bind(x id.ID, host int) { tl.hosts[x] = host }

// Func returns the LatencyFunc backed by the topology.
func (tl *TopologyLatency) Func() LatencyFunc {
	return func(from, to table.Ref) time.Duration {
		ha, okA := tl.hosts[from.ID]
		hb, okB := tl.hosts[to.ID]
		if !okA || !okB {
			panic(fmt.Sprintf("overlay: unbound node in latency query (%v->%v)", from.ID, to.ID))
		}
		return tl.Topo.Latency(ha, hb)
	}
}

// Loss injects message loss with sender retransmission into the
// simulated delivery path — the discrete-event analogue of
// tcptransport's reliable-delivery layer. Each transmission is lost
// with probability Rate; a lost transmission is retried after an
// exponentially growing timeout until MaxAttempts is exhausted, at
// which point the message is dead-lettered. It lets join waves and the
// §7 churn scenarios run over an unreliable network while preserving
// seeded determinism.
type Loss struct {
	// Rate is the per-transmission loss probability in [0,1].
	Rate float64
	// RetryDelay is the first retransmission timeout; it doubles per
	// further attempt. Default 50ms.
	RetryDelay time.Duration
	// MaxAttempts is the total transmissions per message. Default 5.
	MaxAttempts int
	// Seed feeds the deterministic loss stream.
	Seed int64
	// OneWay restricts loss to a single direction per node pair (picked
	// by hashing the pair), modeling asymmetric path failures — the
	// scenario indirect probes exist for. The reverse direction delivers
	// reliably.
	OneWay bool
}

func (l *Loss) retryDelay() time.Duration {
	if l.RetryDelay <= 0 {
		return 50 * time.Millisecond
	}
	return l.RetryDelay
}

func (l *Loss) maxAttempts() int {
	if l.MaxAttempts <= 0 {
		return 5
	}
	return l.MaxAttempts
}

// Config parameterizes a simulated network.
type Config struct {
	Params id.Params
	Opts   core.Options
	// Latency models message delivery delay; nil means 10ms constant.
	Latency LatencyFunc
	// MaxEvents bounds the event count per Run (0 = default 500M).
	MaxEvents uint64
	// Loss optionally subjects deliveries to message loss with
	// retransmission; nil means the reliable network of the paper.
	Loss *Loss
	// Liveness attaches a failure detector (internal/liveness) to every
	// machine; nil disables autonomous failure detection.
	Liveness *liveness.Config
	// AntiEntropy attaches a table-audit engine (internal/antientropy)
	// to every machine, scheduled off the same virtual-clock pump as the
	// probers; nil disables anti-entropy rounds.
	AntiEntropy *antientropy.Config
	// Sampling attaches a gossip peer-sampling engine
	// (internal/sampling) to every machine, scheduled off the clock pump.
	// The machine's gateway selection, the anti-entropy engine's peer
	// choice, and restart bootstrap all gain the sampled-peer fallback;
	// nil disables the sampling layer.
	Sampling *sampling.Config
	// TickInterval is the cadence of the clock pump driving probers and
	// Machine.Tick during RunFor. Default 50ms.
	TickInterval time.Duration
	// Byzantine enables the adversarial fault model: members marked via
	// MarkByzantine/SelectByzantine have their outgoing protocol traffic
	// randomly mutated, withheld, or replayed (see Byzantine). Nil keeps
	// every member honest.
	Byzantine *Byzantine
	// RTT attaches a per-peer round-trip estimator (internal/rtt) to
	// every node, shared by its prober (adaptive probe deadlines, accrual
	// suspicion, late-pong learning) and its machine (per-peer seeded
	// exchange backoff); anti-entropy partner choice and the sampling
	// validator deprioritize peers the estimator flags degraded. Nil
	// keeps the fixed timeouts — and, because every adaptive path is
	// gated on the estimator, bit-identical legacy behavior.
	RTT *rtt.Config
	// SlowNodes enables the gray-failure fault model: members marked via
	// MarkSlow/SelectSlow process all traffic with a ramping per-side
	// delay (see SlowNodes). Nil keeps every member fast.
	SlowNodes *SlowNodes
	// Sink, when non-nil, receives every protocol event from every
	// machine, prober, and anti-entropy engine, stamped with the virtual
	// clock — the same trace schema live TCP runs produce, so
	// cmd/tracestat works on either.
	Sink obs.Sink
	// TraceSample enables causal tracing: protocol-operation roots
	// (joins, probe round trips, sync and gossip rounds, DHT walks) are
	// head-sampled at this rate (0 = off, 1 = every operation), their
	// messages carry trace contexts on the wire, and events arrive at
	// the Sink span-stamped. Span IDs come from a deterministic
	// per-(TraceSeed, node) splitmix64 stream, so the same run always
	// traces identically.
	TraceSample float64
	// TraceSeed varies the deterministic span-ID streams between runs;
	// the zero seed is fine for single runs.
	TraceSeed uint64
}

// JoinRecord captures one node's completed join.
type JoinRecord struct {
	Ref     table.Ref
	Started time.Duration
	Ended   time.Duration
	// JoinNotiSent et al. snapshot the §5.2 cost metrics at completion.
	JoinNotiSent int
	CpRstSent    int
	JoinWaitSent int
	SpeNotiSent  int
	BytesSent    int
}

// Network is a simulated overlay network.
type Network struct {
	cfg      Config
	engine   *sim.Engine
	machines map[id.ID]*core.Machine
	// joinersInFlight tracks joining machines not yet in system.
	joinersInFlight map[id.ID]time.Duration // start time
	joins           []JoinRecord
	delivered       uint64
	// removed marks nodes that left or failed; messages to them drop.
	removed map[id.ID]bool
	dropped uint64
	// lossRng drives Config.Loss; retransmits/lost tally its effects.
	lossRng     *rand.Rand
	retransmits uint64
	lost        uint64
	// probers holds each node's failure detector (Config.Liveness).
	probers map[id.ID]*liveness.Prober
	// engines holds each node's anti-entropy engine (Config.AntiEntropy).
	engines map[id.ID]*antientropy.Engine
	// samplers holds each node's peer-sampling engine (Config.Sampling).
	samplers map[id.ID]*sampling.Engine
	// partition maps nodes to their partition group; messages between
	// different groups drop in flight (Partition/Heal fault injection).
	partition        map[id.ID]int
	partitionDropped uint64
	// ests holds each node's RTT estimator (Config.RTT); slow maps
	// gray-marked nodes to their mark time (Config.SlowNodes), and
	// slowDelayed counts transmissions the model delayed.
	ests        map[id.ID]*rtt.Estimator
	slow        map[id.ID]time.Duration
	slowDelayed uint64
	// byz marks byzantine members (Config.Byzantine); byzHistory is the
	// bounded replay ring of recently sent honest envelopes.
	byz            map[id.ID]bool
	byzRng         *rand.Rand
	byzHistory     []msg.Envelope
	byzHistoryNext int
	byzMutated     uint64
	byzWithheld    uint64
	byzReplayed    uint64
	// paused maps clock-paused nodes to their resume time (PauseNode);
	// pauseDeferred counts deliveries deferred into resume bursts.
	paused        map[id.ID]time.Duration
	pauseDeferred uint64
	// livenessUntil bounds tick-pump rescheduling so Run() can quiesce.
	livenessUntil time.Duration
	tickPending   bool
	// sink is Config.Sink wrapped with the virtual clock (nil when off).
	sink obs.Sink
}

// New creates an empty network.
func New(cfg Config) *Network {
	if err := cfg.Params.Validate(); err != nil {
		panic(fmt.Sprintf("overlay: invalid params: %v", err))
	}
	if cfg.Latency == nil {
		cfg.Latency = ConstantLatency(10 * time.Millisecond)
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 500_000_000
	}
	n := &Network{
		cfg:             cfg,
		engine:          sim.NewEngine(),
		machines:        make(map[id.ID]*core.Machine),
		joinersInFlight: make(map[id.ID]time.Duration),
		removed:         make(map[id.ID]bool),
		probers:         make(map[id.ID]*liveness.Prober),
		engines:         make(map[id.ID]*antientropy.Engine),
		samplers:        make(map[id.ID]*sampling.Engine),
		ests:            make(map[id.ID]*rtt.Estimator),
		paused:          make(map[id.ID]time.Duration),
	}
	if cfg.SlowNodes != nil {
		n.slow = make(map[id.ID]time.Duration)
	}
	if cfg.Loss != nil {
		n.lossRng = rand.New(rand.NewSource(cfg.Loss.Seed))
	}
	if cfg.Byzantine != nil {
		n.byz = make(map[id.ID]bool)
		n.byzRng = rand.New(rand.NewSource(cfg.Byzantine.Seed))
	}
	n.sink = obs.Clocked(cfg.Sink, n.engine.Now)
	return n
}

// traceGenSeed folds a node's ID digits into the run's trace seed so
// each node draws a distinct — but per-(seed, node) deterministic —
// span-ID stream.
func traceGenSeed(seed uint64, x id.ID) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	for i := 0; i < x.Len(); i++ {
		h = h*0x100000001b3 + uint64(x.Digit(i)) + 1
	}
	return h
}

// Engine exposes the underlying event engine (e.g. for custom schedules).
func (n *Network) Engine() *sim.Engine { return n.engine }

// Params returns the ID-space parameters.
func (n *Network) Params() id.Params { return n.cfg.Params }

// Size returns the number of nodes (machines) in the network.
func (n *Network) Size() int { return len(n.machines) }

// AddSeed installs the first node of a network (§6.1).
func (n *Network) AddSeed(ref table.Ref) *core.Machine {
	m := core.NewSeed(n.cfg.Params, ref, n.cfg.Opts)
	n.addMachine(m)
	return m
}

func (n *Network) addMachine(m *core.Machine) {
	if _, dup := n.machines[m.Self().ID]; dup {
		panic(fmt.Sprintf("overlay: duplicate node %v", m.Self().ID))
	}
	n.machines[m.Self().ID] = m
	m.SetSink(n.sink)
	// Quarantine cooldowns age on the virtual clock.
	m.SetClock(n.engine.Now)
	var tr *trace.Tracer
	if n.cfg.TraceSample > 0 {
		tr = trace.NewTracer(trace.NewDeterministicGen(traceGenSeed(n.cfg.TraceSeed, m.Self().ID)), n.cfg.TraceSample)
		m.SetTracer(tr)
	}
	var est *rtt.Estimator
	if n.cfg.RTT != nil {
		// One estimator per node, shared by prober and machine so probe
		// and exchange samples pool into the same per-peer estimates.
		est = rtt.New(*n.cfg.RTT)
		n.ests[m.Self().ID] = est
		m.SetRTT(est)
	}
	if n.cfg.Liveness != nil {
		p := liveness.NewProber(*n.cfg.Liveness, m.Self())
		p.SetSink(n.sink)
		p.SetTracer(tr)
		if est != nil {
			p.SetRTT(est)
			p.SetClock(n.engine.Now)
		}
		n.probers[m.Self().ID] = p
	}
	if n.cfg.AntiEntropy != nil {
		e := antientropy.New(*n.cfg.AntiEntropy, m)
		e.SetSink(n.sink)
		e.SetTracer(tr)
		if est != nil {
			e.SetHealth(func(x id.ID) bool { return !est.Degraded(x) })
		}
		n.engines[m.Self().ID] = e
	}
	if n.cfg.Sampling != nil {
		s := sampling.New(*n.cfg.Sampling, m.Self())
		// Quarantined peers are inadmissible; live table neighbors re-prime
		// an emptied view; the machine (and its anti-entropy engine) draw
		// restart gateways and sync peers from the min-wise samplers.
		// With an estimator, degraded peers are inadmissible too — a gray
		// node should fall out of sampled views while it crawls.
		s.SetValidator(func(r table.Ref) bool {
			if m.PeerQuarantined(r.ID) {
				return false
			}
			return est == nil || !est.Degraded(r.ID)
		})
		s.SetBootstrap(m.SyncPeers)
		s.SetSink(n.sink)
		s.SetTracer(tr)
		m.SetPeerSampler(s.Sample)
		if e := n.engines[m.Self().ID]; e != nil {
			e.SetPeerSampler(s.Sample)
		}
		n.samplers[m.Self().ID] = s
	}
}

// BuildDirect installs a consistent network over the given members using
// global knowledge (each entry gets a random qualifying member). This
// realizes the paper's premise of an existing consistent network without
// paying for n sequential joins; BuildByJoins is the protocol-driven
// alternative.
func (n *Network) BuildDirect(members []table.Ref, rng *rand.Rand) {
	bySuffix := make(map[id.Suffix][]table.Ref)
	for _, ref := range members {
		for k := 1; k <= n.cfg.Params.D; k++ {
			s := ref.ID.Suffix(k)
			bySuffix[s] = append(bySuffix[s], ref)
		}
	}
	for _, ref := range members {
		tbl := table.New(n.cfg.Params, ref.ID)
		for i := 0; i < n.cfg.Params.D; i++ {
			for j := 0; j < n.cfg.Params.B; j++ {
				want := tbl.DesiredSuffix(i, j)
				if ref.ID.HasSuffix(want) {
					tbl.Set(i, j, table.Neighbor{ID: ref.ID, Addr: ref.Addr, State: table.StateS})
					continue
				}
				cands := bySuffix[want]
				if len(cands) == 0 {
					continue
				}
				pick := cands[rng.Intn(len(cands))]
				tbl.Set(i, j, table.Neighbor{ID: pick.ID, Addr: pick.Addr, State: table.StateS})
			}
		}
		n.addMachine(core.NewEstablished(n.cfg.Params, ref, tbl, n.cfg.Opts))
	}
	// Register reverse neighbors with global knowledge: these tables never
	// exchanged RvNghNotiMsg, but the leave protocol requires every node
	// to know its holders.
	for holder, m := range n.machines {
		holderRef := m.Self()
		m.Table().ForEach(func(_, _ int, nb table.Neighbor) {
			if nb.ID == holder {
				return
			}
			if stored, ok := n.machines[nb.ID]; ok {
				stored.AddReverseNeighbor(holderRef)
			}
		})
	}
}

// BuildByJoins constructs the network via the join protocol itself
// (§6.1): the first member seeds the network and the rest join
// sequentially, each bootstrapping from a random established member.
func (n *Network) BuildByJoins(members []table.Ref, rng *rand.Rand) error {
	if len(members) == 0 {
		return fmt.Errorf("overlay: no members")
	}
	n.AddSeed(members[0])
	established := []table.Ref{members[0]}
	for _, ref := range members[1:] {
		g0 := established[rng.Intn(len(established))]
		m := n.ScheduleJoin(ref, g0, n.engine.Now())
		n.Run()
		if !m.IsSNode() {
			return fmt.Errorf("overlay: node %v failed to join (status %v)", ref.ID, m.Status())
		}
		established = append(established, ref)
	}
	return nil
}

// ScheduleJoin creates a joiner machine and schedules its StartJoin at
// the given virtual time. Optional fallback refs are registered as
// restart gateways: if the bootstrap crashes mid-join, the machine's
// timeout handling re-runs the join through one of them.
func (n *Network) ScheduleJoin(ref table.Ref, g0 table.Ref, at time.Duration, fallbacks ...table.Ref) *core.Machine {
	m := core.NewJoiner(n.cfg.Params, ref, n.cfg.Opts)
	m.AddGateways(fallbacks...)
	n.addMachine(m)
	n.engine.ScheduleAt(at, func() {
		n.joinersInFlight[ref.ID] = n.engine.Now()
		out, err := m.StartJoin(g0)
		if err != nil {
			panic(fmt.Sprintf("overlay: scheduled join of %v: %v", ref.ID, err))
		}
		n.transmit(out)
	})
	return m
}

// Transmit schedules delivery of envelopes produced outside the
// network's own pumps — e.g. a driver calling a machine method such as
// StartRejoin directly — applying the same latency, loss, partition,
// and byzantine fault models as internally generated traffic.
func (n *Network) Transmit(envs []msg.Envelope) { n.transmit(envs) }

// transmit schedules delivery of each envelope after its pair latency.
// Envelopes leaving a byzantine member pass through the fault model
// first (see byzantine.go); honest traffic feeds the replay history.
func (n *Network) transmit(envs []msg.Envelope) {
	for _, env := range envs {
		if n.cfg.Byzantine != nil && n.byz[env.From.ID] {
			for _, e := range n.corruptOutgoing(env) {
				n.post(e, 1)
			}
			continue
		}
		n.recordHistory(env)
		n.post(env, 1)
	}
}

// post schedules one transmission attempt of env. Under Config.Loss a
// transmission may be lost in flight; the sender then retransmits
// after an exponential timeout, and gives up (dead-letter) after
// MaxAttempts transmissions. Probes (Ping/Pong) are never retransmitted:
// detecting their loss is the failure detector's whole job, and a
// reliable probe channel would mask exactly the signal it measures.
func (n *Network) post(env msg.Envelope, attempt int) {
	delay := n.cfg.Latency(env.From, env.To)
	if attempt > 1 {
		delay += n.cfg.Loss.retryDelay() << (attempt - 2)
	}
	if len(n.slow) > 0 {
		// Gray nodes are slow on both sides: sending late and processing
		// received traffic late. Both legs of a round trip through a slow
		// node inflate, which is what its peers' estimators must learn.
		now := n.engine.Now()
		if extra := n.slowDelay(env.From.ID, now) + n.slowDelay(env.To.ID, now); extra > 0 {
			delay += extra
			n.slowDelayed++
		}
	}
	n.engine.Schedule(delay, func() {
		// Partition cut: checked at delivery time so a Heal() scheduled
		// mid-flight takes effect immediately. The drop is final — no
		// retransmission reaches across a partition; the senders'
		// exchange timeouts and the failure detector see the silence.
		if n.partitionCut(env.From.ID, env.To.ID) {
			n.partitionDropped++
			return
		}
		if l := n.cfg.Loss; l != nil && n.lossDrop(env) {
			t := env.Msg.Type()
			if t == msg.TPing || t == msg.TPong || attempt >= l.maxAttempts() {
				n.lost++
				return
			}
			n.retransmits++
			n.post(env, attempt+1)
			return
		}
		n.deliver(env)
	})
}

// Partition splits the network into disconnected groups: every message
// between nodes of different groups is dropped in flight until Heal.
// Nodes not listed in any group keep connectivity to everyone (they
// model nodes outside the failure domain). Calling Partition again
// replaces the current grouping.
func (n *Network) Partition(groups ...[]id.ID) {
	n.partition = make(map[id.ID]int)
	for gi, g := range groups {
		for _, x := range g {
			n.partition[x] = gi
		}
	}
}

// Heal removes the partition: all pending and future messages deliver
// normally again.
func (n *Network) Heal() { n.partition = nil }

// SetLossRate changes the per-transmission loss probability mid-run —
// the "loss-rate change" fault action. The network must have been
// configured with a Loss model (possibly Rate 0); retry and seed
// parameters are unchanged, so a run that ramps loss up and back down
// stays deterministic.
func (n *Network) SetLossRate(rate float64) error {
	if n.cfg.Loss == nil {
		return fmt.Errorf("overlay: SetLossRate without Config.Loss")
	}
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("overlay: loss rate %v outside [0,1)", rate)
	}
	n.cfg.Loss.Rate = rate
	return nil
}

// PartitionDropped returns how many messages the partition cut so far.
func (n *Network) PartitionDropped() uint64 { return n.partitionDropped }

// partitionCut reports whether a message from -> to crosses the current
// partition boundary.
func (n *Network) partitionCut(from, to id.ID) bool {
	if len(n.partition) == 0 {
		return false
	}
	gf, okf := n.partition[from]
	gt, okt := n.partition[to]
	return okf && okt && gf != gt
}

// lossDrop decides whether this transmission is lost. Under Loss.OneWay
// only the pair's hash-chosen lossy direction ever drops.
func (n *Network) lossDrop(env msg.Envelope) bool {
	l := n.cfg.Loss
	if l.OneWay && !n.lossyDirection(env.From.ID, env.To.ID) {
		return false
	}
	return n.lossRng.Float64() < l.Rate
}

// lossyDirection reports whether from->to is the lossy direction of the
// unordered pair {from,to}, chosen deterministically from the seed.
func (n *Network) lossyDirection(from, to id.ID) bool {
	a, b := from.String(), to.String()
	flip := false
	if b < a {
		a, b = b, a
		flip = true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", n.cfg.Loss.Seed, a, b)
	lowToHigh := h.Sum64()&1 == 0
	if flip {
		return !lowToHigh
	}
	return lowToHigh
}

func (n *Network) deliver(env msg.Envelope) {
	m, ok := n.machines[env.To.ID]
	if !ok {
		if n.removed[env.To.ID] {
			n.dropped++ // late message to a departed node
			return
		}
		panic(fmt.Sprintf("overlay: envelope for unknown node %v: %v", env.To.ID, env))
	}
	if n.pausedNow(env.To.ID, n.engine.Now()) {
		// Clock-pause fault: the recipient is stalled, so the message
		// waits in its (virtual) socket buffer and bursts at resume.
		n.pauseDeferred++
		n.engine.ScheduleAt(n.paused[env.To.ID], func() { n.deliver(env) })
		return
	}
	n.delivered++
	if p := n.probers[env.To.ID]; p != nil {
		t := env.Msg.Type()
		if t == msg.TPing || t == msg.TPong {
			// The detector owns the probe protocol; the machine never
			// sees probes when a prober is attached.
			n.transmit(p.HandleMessage(env))
			return
		}
		// Any other traffic from a peer is evidence of its liveness.
		p.Observe(env.From.ID)
	}
	if s := n.samplers[env.To.ID]; s != nil {
		// The sampling engine owns its message types, like the prober owns
		// probes; the machine never sees them.
		switch env.Msg.Type() {
		case msg.TSamplePush, msg.TSamplePullReq, msg.TSamplePullRly:
			n.transmit(s.Deliver(env))
			return
		}
	}
	out := m.Deliver(env)
	if started, joining := n.joinersInFlight[env.To.ID]; joining && m.IsSNode() {
		c := m.Counters()
		n.joins = append(n.joins, JoinRecord{
			Ref:          m.Self(),
			Started:      started,
			Ended:        n.engine.Now(),
			JoinNotiSent: c.SentOf(msg.TJoinNoti),
			CpRstSent:    c.SentOf(msg.TCpRst),
			JoinWaitSent: c.SentOf(msg.TJoinWait),
			SpeNotiSent:  c.SentOf(msg.TSpeNoti),
			BytesSent:    c.BytesSent,
		})
		delete(n.joinersInFlight, env.To.ID)
	}
	n.transmit(out)
}

// Run drains the event queue and returns the number of events processed.
func (n *Network) Run() uint64 {
	return n.engine.Run(n.cfg.MaxEvents)
}

func (n *Network) tickInterval() time.Duration {
	if n.cfg.TickInterval > 0 {
		return n.cfg.TickInterval
	}
	return 50 * time.Millisecond
}

// RunFor advances the network by d of virtual time with the clock pump
// running: every TickInterval each prober probes and each machine's
// Tick fires (timeout resends, repair queries, rejoins). After the
// deadline the pump stops rescheduling and remaining in-flight messages
// drain, so the network quiesces like Run. Returns events processed.
func (n *Network) RunFor(d time.Duration) uint64 {
	deadline := n.engine.Now() + d
	if deadline > n.livenessUntil {
		n.livenessUntil = deadline
	}
	n.scheduleTick()
	ev := n.engine.RunUntil(deadline)
	return ev + n.engine.Run(n.cfg.MaxEvents)
}

// scheduleTick arms the recurring clock pump. It reschedules itself only
// while before livenessUntil, so plain Run() calls still quiesce.
func (n *Network) scheduleTick() {
	if n.tickPending {
		return
	}
	if n.cfg.Liveness == nil && n.cfg.AntiEntropy == nil && n.cfg.Sampling == nil && !n.cfg.Opts.Timeouts.Enabled() {
		return
	}
	n.tickPending = true
	n.engine.Schedule(n.tickInterval(), func() {
		n.tickPending = false
		n.tick()
		if n.engine.Now() < n.livenessUntil {
			n.scheduleTick()
		}
	})
}

// tick runs one clock-pump round over all machines in sorted order
// (determinism: declarations and repairs must replay identically).
func (n *Network) tick() {
	now := n.engine.Now()
	ids := make([]id.ID, 0, len(n.machines))
	for x := range n.machines {
		ids = append(ids, x)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	for _, x := range ids {
		if n.pausedNow(x, now) {
			// Clock-pause fault: the node's local timers stall; it will
			// catch up on the first pump round after its resume.
			continue
		}
		m := n.machines[x]
		if p := n.probers[x]; p != nil {
			p.SetTargets(probeTargets(m))
			out, declared, unreachable := p.Tick(now)
			n.transmit(out)
			for _, ref := range declared {
				n.transmit(m.DeclareFailed(ref))
			}
			for _, ref := range unreachable {
				n.transmit(m.DropUnreachable(ref))
			}
		}
		n.transmit(m.Tick(now))
		if e := n.engines[x]; e != nil {
			n.transmit(e.Tick(now))
		}
		if s := n.samplers[x]; s != nil {
			n.transmit(s.Tick(now))
		}
	}
}

// probeTargets collects a machine's monitoring set: every table entry
// plus every reverse neighbor.
func probeTargets(m *core.Machine) []table.Ref {
	var out []table.Ref
	m.Table().ForEach(func(_, _ int, nb table.Neighbor) {
		if nb.ID != m.Self().ID {
			out = append(out, nb.Ref())
		}
	})
	return append(out, m.ReverseNeighbors()...)
}

// LivenessStats aggregates detector counters over all live nodes.
func (n *Network) LivenessStats() liveness.Stats {
	var total liveness.Stats
	for _, p := range n.probers {
		s := p.Stats()
		total.ProbesSent += s.ProbesSent
		total.IndirectSent += s.IndirectSent
		total.PongsReceived += s.PongsReceived
		total.Suspects += s.Suspects
		total.Recovered += s.Recovered
		total.Declared += s.Declared
		total.PartitionsEntered += s.PartitionsEntered
		total.PartitionsExited += s.PartitionsExited
		total.DeclarationsHeld += s.DeclarationsHeld
		total.Unreachable += s.Unreachable
		total.AdaptiveDeadlines += s.AdaptiveDeadlines
		total.LatePongs += s.LatePongs
		total.DegradedMarked += s.DegradedMarked
		total.DegradedCleared += s.DegradedCleared
	}
	return total
}

// PartitionedCount returns how many probers are currently in
// partitioned mode.
func (n *Network) PartitionedCount() int {
	c := 0
	for _, p := range n.probers {
		if p.Partitioned() {
			c++
		}
	}
	return c
}

// GuardStats aggregates the machines' hostile-input counters over all
// live nodes: rejections, quarantine activity, budget deferrals.
func (n *Network) GuardStats() core.GuardStats {
	var total core.GuardStats
	for _, m := range n.machines {
		g := m.GuardStats()
		total.Rejected += g.Rejected
		total.UnknownDropped += g.UnknownDropped
		total.IngressDropped += g.IngressDropped
		total.BusyDeferred += g.BusyDeferred
		total.Scorer.Charges += g.Scorer.Charges
		total.Scorer.Quarantines += g.Scorer.Quarantines
		total.Scorer.Releases += g.Scorer.Releases
		total.Scorer.Evictions += g.Scorer.Evictions
		total.Scorer.Quarantined += g.Scorer.Quarantined
	}
	return total
}

// AntiEntropyStats aggregates anti-entropy counters over all live nodes.
func (n *Network) AntiEntropyStats() antientropy.Stats {
	var total antientropy.Stats
	for _, e := range n.engines {
		s := e.Stats()
		total.Rounds += s.Rounds
		total.Pulled += s.Pulled
		total.Purged += s.Purged
		total.Deprioritized += s.Deprioritized
	}
	return total
}

// SamplingStats aggregates peer-sampling counters over all live nodes.
func (n *Network) SamplingStats() sampling.Stats {
	var total sampling.Stats
	for _, s := range n.samplers {
		st := s.Stats()
		total.Rounds += st.Rounds
		total.PushesSent += st.PushesSent
		total.PushesReceived += st.PushesReceived
		total.PullsSent += st.PullsSent
		total.PullsAnswered += st.PullsAnswered
		total.FloodsDetected += st.FloodsDetected
		total.Ejected += st.Ejected
		total.ViewSize += st.ViewSize
		total.SamplerFill += st.SamplerFill
	}
	return total
}

// Sampler returns node x's peer-sampling engine, if sampling is enabled.
func (n *Network) Sampler(x id.ID) (*sampling.Engine, bool) {
	s, ok := n.samplers[x]
	return s, ok
}

// Prober returns node x's failure detector, if liveness is enabled.
func (n *Network) Prober(x id.ID) (*liveness.Prober, bool) {
	p, ok := n.probers[x]
	return p, ok
}

// AddEstablished installs an in_system machine wrapping a pre-built
// table — e.g. one restored from a persisted snapshot — and clears any
// removed mark for the node, modeling a crashed node restarting from
// disk. The table is adopted, not copied. The caller re-announces the
// node via core's StartRejoin so survivors relearn it.
func (n *Network) AddEstablished(ref table.Ref, tbl *table.Table) *core.Machine {
	delete(n.removed, ref.ID)
	m := core.NewEstablished(n.cfg.Params, ref, tbl, n.cfg.Opts)
	n.addMachine(m)
	return m
}

// Delivered returns the total number of messages delivered so far.
func (n *Network) Delivered() uint64 { return n.delivered }

// Dropped returns the number of messages dropped because their recipient
// had left or failed.
func (n *Network) Dropped() uint64 { return n.dropped }

// Retransmits returns how many lost transmissions were retried under
// Config.Loss.
func (n *Network) Retransmits() uint64 { return n.retransmits }

// LostMessages returns how many messages were dead-lettered after
// exhausting their transmissions under Config.Loss.
func (n *Network) LostMessages() uint64 { return n.lost }

// Joins returns the completed join records. Records for joins completed
// during BuildByJoins are included; callers measuring a specific wave
// should slice by Started time or reset via JoinsSince.
func (n *Network) Joins() []JoinRecord {
	out := make([]JoinRecord, len(n.joins))
	copy(out, n.joins)
	return out
}

// JoinsSince returns join records whose join began at or after t.
func (n *Network) JoinsSince(t time.Duration) []JoinRecord {
	var out []JoinRecord
	for _, r := range n.joins {
		if r.Started >= t {
			out = append(out, r)
		}
	}
	return out
}

// PendingJoins returns how many scheduled joins have not completed.
func (n *Network) PendingJoins() int { return len(n.joinersInFlight) }

// Machine returns the machine for node x.
func (n *Network) Machine(x id.ID) (*core.Machine, bool) {
	m, ok := n.machines[x]
	return m, ok
}

// TableOf implements core.TableResolver.
func (n *Network) TableOf(x id.ID) (*table.Table, bool) {
	m, ok := n.machines[x]
	if !ok {
		return nil, false
	}
	return m.Table(), true
}

// Tables returns all nodes' tables keyed by ID (live references, not
// copies; do not mutate).
func (n *Network) Tables() map[id.ID]*table.Table {
	out := make(map[id.ID]*table.Table, len(n.machines))
	for x, m := range n.machines {
		out[x] = m.Table()
	}
	return out
}

// Members returns all node refs sorted by ID.
func (n *Network) Members() []table.Ref {
	out := make([]table.Ref, 0, len(n.machines))
	for _, m := range n.machines {
		out = append(out, m.Self())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out
}

// CheckConsistency verifies Definition 3.8 over the whole network.
func (n *Network) CheckConsistency() []netcheck.Violation {
	return netcheck.CheckConsistency(n.cfg.Params, n.Tables())
}

// AggregateTraffic sums message counters over all nodes.
func (n *Network) AggregateTraffic() msg.Counters {
	var total msg.Counters
	for _, m := range n.machines {
		total.Add(m.Counters())
	}
	return total
}

// RandomRefs draws n distinct random IDs and wraps them as refs with
// synthetic addresses. Existing IDs in taken are avoided and the new IDs
// are added to it (pass nil for a fresh namespace).
func RandomRefs(p id.Params, count int, rng *rand.Rand, taken map[id.ID]bool) []table.Ref {
	if taken == nil {
		taken = make(map[id.ID]bool, count)
	}
	if float64(count+len(taken)) > p.Size() {
		panic(fmt.Sprintf("overlay: cannot draw %d distinct IDs from space of %.0f", count, p.Size()))
	}
	out := make([]table.Ref, 0, count)
	for len(out) < count {
		x := id.Random(p, rng)
		if taken[x] {
			continue
		}
		taken[x] = true
		out = append(out, table.Ref{ID: x, Addr: "sim://" + x.String()})
	}
	return out
}
