package core

import (
	"hypercube/internal/id"
	"hypercube/internal/table"
)

// NextHop computes one step of the hypercube routing scheme (§2.2) from
// the owner of tbl toward target. Routing resolves one more suffix digit
// per hop: at a node sharing k rightmost digits with the target, the next
// hop is the (k, target[k])-neighbor.
//
// It returns (hop, arrived): arrived is true when the table owner is the
// target itself; otherwise hop is the next node, or the zero Neighbor if
// the required entry is empty — meaning no node with the needed suffix
// exists (in a consistent network this certifies the target is absent).
func NextHop(tbl *table.Table, target id.ID) (hop table.Neighbor, arrived bool) {
	if tbl.Owner() == target {
		return table.Neighbor{}, true
	}
	k := tbl.Owner().CommonSuffixLen(target)
	return tbl.Get(k, target.Digit(k)), false
}

// TableResolver maps a node ID to its neighbor table; implementations are
// provided by the simulation harness and the runtimes.
type TableResolver interface {
	TableOf(x id.ID) (*table.Table, bool)
}

// Route walks the full route from src toward target using resolver,
// returning the node sequence visited (starting with src) and whether the
// target was reached. Per Definition 3.7 a consistent network reaches any
// existing node within d hops; Route therefore aborts after d hops or on
// an empty entry, returning ok=false.
func Route(resolver TableResolver, src, target id.ID, p id.Params) (path []id.ID, ok bool) {
	cur := src
	path = append(path, cur)
	for hops := 0; hops <= p.D; hops++ {
		if cur == target {
			return path, true
		}
		tbl, found := resolver.TableOf(cur)
		if !found {
			return path, false
		}
		hop, arrived := NextHop(tbl, target)
		if arrived {
			return path, true
		}
		if hop.IsZero() {
			return path, false
		}
		cur = hop.ID
		path = append(path, cur)
	}
	return path, false
}
