package overlay

import (
	"math/rand"
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/liveness"
	"hypercube/internal/table"
)

func selfHealingConfig(seed int64) Config {
	return Config{
		Params:  id.Params{B: 4, D: 4},
		Latency: ConstantLatency(5 * time.Millisecond),
		Opts: core.Options{Timeouts: core.Timeouts{
			RetryAfter:  300 * time.Millisecond,
			MaxAttempts: 4,
			RepairAfter: 400 * time.Millisecond,
		}},
		Loss: &Loss{Rate: 0.10, Seed: seed},
		Liveness: &liveness.Config{
			ProbeInterval:  100 * time.Millisecond,
			ProbeTimeout:   400 * time.Millisecond,
			SuspectAfter:   3,
			IndirectProbes: 2,
			ConfirmRounds:  3,
		},
		TickInterval: 50 * time.Millisecond,
	}
}

// TestSelfHealingSoak is the tentpole scenario: 16 nodes under 10%
// message loss, three unannounced crashes (one of them the gateway of a
// join in progress), no oracle. The only external inputs are the crashes
// themselves; detection, table repair, gossip, and the join restart all
// come from the nodes' own probe and timeout machinery. The test never
// calls RecoverFailure and never tells any survivor who died.
func TestSelfHealingSoak(t *testing.T) {
	cfg := selfHealingConfig(42)
	rng := rand.New(rand.NewSource(42))
	net := New(cfg)
	taken := make(map[id.ID]bool)
	refs := RandomRefs(cfg.Params, 16, rng, taken)
	net.BuildDirect(refs, rng)

	crash := func(at time.Duration, x id.ID) {
		net.Engine().ScheduleAt(at, func() {
			if err := net.InjectFailure(x); err != nil {
				t.Errorf("crash of %v: %v", x, err)
			}
		})
	}
	dead1, gateway, dead3 := refs[3], refs[5], refs[9]
	crash(5*time.Second, dead1.ID)

	// A node joins through `gateway`, which crashes 2ms after the join
	// starts — before the first reply can arrive (5ms latency). The join
	// must reroute itself through a fallback.
	joiner := RandomRefs(cfg.Params, 1, rng, taken)[0]
	jm := net.ScheduleJoin(joiner, gateway, 12*time.Second, refs[6], refs[7])
	crash(12*time.Second+2*time.Millisecond, gateway.ID)

	crash(20*time.Second, dead3.ID)

	net.RunFor(90 * time.Second)

	if !jm.IsSNode() {
		t.Errorf("joiner stuck in %v after its gateway crashed", jm.Status())
	}
	requireConsistent(t, net)
	deadIDs := []id.ID{dead1.ID, gateway.ID, dead3.ID}
	for x, tbl := range net.Tables() {
		tbl.ForEach(func(level, digit int, nb table.Neighbor) {
			for _, d := range deadIDs {
				if nb.ID == d {
					t.Errorf("node %v still stores crashed %v at (%d,%d)", x, d, level, digit)
				}
			}
		})
	}
	st := net.LivenessStats()
	if st.Declared == 0 {
		t.Error("no failures were declared — the crashes went undetected")
	}
	if st.ProbesSent == 0 || st.PongsReceived == 0 {
		t.Errorf("probe machinery idle: %+v", st)
	}
	if net.Size() != 14 { // 16 - 3 crashed + 1 joined
		t.Errorf("Size = %d, want 14", net.Size())
	}
}

// TestNoFalsePositivesUnderOneWayLoss: 20% loss confined to one
// direction per pair starves direct probes on the lossy paths, but the
// indirect probes of the confirmation rounds travel other paths; over 60
// virtual seconds no live node may be declared failed.
func TestNoFalsePositivesUnderOneWayLoss(t *testing.T) {
	cfg := selfHealingConfig(17)
	cfg.Loss = &Loss{Rate: 0.20, Seed: 17, OneWay: true}
	cfg.Opts.Timeouts = core.Timeouts{} // isolate the detector's behavior
	rng := rand.New(rand.NewSource(17))
	net := New(cfg)
	refs := RandomRefs(cfg.Params, 16, rng, nil)
	net.BuildDirect(refs, rng)

	net.RunFor(60 * time.Second)

	st := net.LivenessStats()
	if st.Declared != 0 {
		t.Fatalf("declared %d live nodes failed under one-way loss (stats %+v)", st.Declared, st)
	}
	if st.Suspects == 0 {
		t.Log("note: loss never even caused a suspicion at this seed")
	} else if st.Recovered == 0 {
		t.Error("suspects arose but none recovered — indirect probes ineffective")
	}
	if st.IndirectSent == 0 && st.Suspects > 0 {
		t.Error("suspicions raised without indirect confirmation probes")
	}
	requireConsistent(t, net)
}

// TestRecoverFailuresSimultaneous drives the offline/batch repair path
// with two nodes crashing at the same instant: the shared repair-trigger
// code must converge even when each dead node's potential helpers
// include the other dead node.
func TestRecoverFailuresSimultaneous(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := New(Config{Params: p164})
	refs := RandomRefs(p164, 80, rng, nil)
	net.BuildDirect(refs, rng)

	dead := []id.ID{refs[11].ID, refs[12].ID}
	for _, d := range dead {
		if err := net.InjectFailure(d); err != nil {
			t.Fatal(err)
		}
	}
	st := net.RecoverFailures(dead, rng, 0)
	if st.Holders == 0 {
		t.Fatal("nobody stored the dead nodes — setup broken")
	}
	if st.Unrepaired != 0 {
		t.Fatalf("batch recovery left %d entries broken: %+v", st.Unrepaired, st)
	}
	requireConsistent(t, net)
	for x, tbl := range net.Tables() {
		tbl.ForEach(func(level, digit int, nb table.Neighbor) {
			for _, d := range dead {
				if nb.ID == d {
					t.Errorf("node %v still stores crashed %v at (%d,%d)", x, d, level, digit)
				}
			}
		})
	}
}
