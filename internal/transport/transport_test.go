package transport

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/overlay"
	"hypercube/internal/table"
)

var p164 = id.Params{B: 16, D: 4}

func await(t *testing.T, rt *Runtime) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rt.AwaitQuiescence(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestMailbox(t *testing.T) {
	m := newMailbox()
	env := msg.Envelope{Msg: msg.JoinWait{}}
	if !m.put(env) {
		t.Fatal("put on open mailbox failed")
	}
	got, ok := m.get()
	if !ok || got.Msg.Type() != msg.TJoinWait {
		t.Fatal("get returned wrong envelope")
	}
	// Blocking get wakes on put.
	done := make(chan msg.Envelope, 1)
	go func() {
		e, _ := m.get()
		done <- e
	}()
	time.Sleep(10 * time.Millisecond)
	m.put(env)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked get never woke")
	}
	m.close()
	if m.put(env) {
		t.Error("put on closed mailbox succeeded")
	}
	if _, ok := m.get(); ok {
		t.Error("get on closed empty mailbox returned ok")
	}
}

func TestSingleJoinConcurrentRuntime(t *testing.T) {
	rt := NewRuntime(p164, core.Options{})
	defer rt.Close()
	seed := table.Ref{ID: id.MustParse(p164, "abcd"), Addr: "mem://seed"}
	if err := rt.AddSeed(seed); err != nil {
		t.Fatal(err)
	}
	joiner := table.Ref{ID: id.MustParse(p164, "1234"), Addr: "mem://j"}
	if err := rt.Join(joiner, seed); err != nil {
		t.Fatal(err)
	}
	await(t, rt)
	st, ok := rt.Status(joiner.ID)
	if !ok || st != core.StatusInSystem {
		t.Fatalf("joiner status %v ok=%v", st, ok)
	}
	if v := rt.CheckConsistency(); len(v) != 0 {
		t.Fatalf("inconsistent: %v", v[0])
	}
}

func TestManyConcurrentJoins(t *testing.T) {
	rt := NewRuntime(p164, core.Options{})
	defer rt.Close()
	rng := rand.New(rand.NewSource(42))
	taken := make(map[id.ID]bool)
	refs := overlay.RandomRefs(p164, 60, rng, taken)
	if err := rt.AddSeed(refs[0]); err != nil {
		t.Fatal(err)
	}
	// Fire all joins from separate goroutines simultaneously: scheduler-
	// driven interleaving, the harshest version of "concurrent joins".
	var wg sync.WaitGroup
	errs := make(chan error, len(refs))
	for _, ref := range refs[1:] {
		ref := ref
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- rt.Join(ref, refs[0])
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	await(t, rt)
	for _, ref := range refs {
		st, ok := rt.Status(ref.ID)
		if !ok || st != core.StatusInSystem {
			t.Errorf("node %v status %v (Theorem 2)", ref.ID, st)
		}
	}
	if v := rt.CheckConsistency(); len(v) != 0 {
		t.Fatalf("inconsistent after concurrent joins (Theorem 1): %v (of %d)", v[0], len(v))
	}
	// Theorem 3 under real concurrency.
	for _, ref := range refs[1:] {
		c, ok := rt.Counters(ref.ID)
		if !ok {
			t.Fatalf("no counters for %v", ref.ID)
		}
		if got := c.SentOf(msg.TCpRst) + c.SentOf(msg.TJoinWait); got > p164.D+1 {
			t.Errorf("node %v sent %d CpRst+JoinWait > d+1", ref.ID, got)
		}
	}
}

func TestJoinWavesInBatches(t *testing.T) {
	// Multiple waves against the same runtime: quiescence between waves,
	// consistency after each (sequential groups of concurrent joins —
	// the general case of Theorem 1).
	rt := NewRuntime(p164, core.Options{})
	defer rt.Close()
	rng := rand.New(rand.NewSource(7))
	taken := make(map[id.ID]bool)
	refs := overlay.RandomRefs(p164, 46, rng, taken)
	if err := rt.AddSeed(refs[0]); err != nil {
		t.Fatal(err)
	}
	established := refs[:1]
	rest := refs[1:]
	for wave := 0; wave < 3; wave++ {
		batch := rest[:15]
		rest = rest[15:]
		for _, ref := range batch {
			if err := rt.Join(ref, established[rng.Intn(len(established))]); err != nil {
				t.Fatal(err)
			}
		}
		await(t, rt)
		if v := rt.CheckConsistency(); len(v) != 0 {
			t.Fatalf("wave %d inconsistent: %v", wave, v[0])
		}
		established = append(established, batch...)
	}
}

func TestSnapshotAndMembers(t *testing.T) {
	rt := NewRuntime(p164, core.Options{})
	defer rt.Close()
	seed := table.Ref{ID: id.MustParse(p164, "0000"), Addr: "mem://seed"}
	if err := rt.AddSeed(seed); err != nil {
		t.Fatal(err)
	}
	snap, ok := rt.Snapshot(seed.ID)
	if !ok || snap.Owner() != seed.ID {
		t.Fatal("snapshot of seed missing")
	}
	if got := len(rt.Members()); got != 1 {
		t.Errorf("Members = %d", got)
	}
	if _, ok := rt.Snapshot(id.MustParse(p164, "ffff")); ok {
		t.Error("snapshot of unknown node returned ok")
	}
	if _, ok := rt.Status(id.MustParse(p164, "ffff")); ok {
		t.Error("status of unknown node returned ok")
	}
	if _, ok := rt.Counters(id.MustParse(p164, "ffff")); ok {
		t.Error("counters of unknown node returned ok")
	}
}

func TestAddEstablishedNetwork(t *testing.T) {
	// Build a consistent network offline, host it in the runtime, then
	// join through it.
	rng := rand.New(rand.NewSource(11))
	net := overlay.New(overlay.Config{Params: p164})
	taken := make(map[id.ID]bool)
	members := overlay.RandomRefs(p164, 30, rng, taken)
	net.BuildDirect(members, rng)

	rt := NewRuntime(p164, core.Options{})
	defer rt.Close()
	for _, ref := range members {
		tbl, _ := net.TableOf(ref.ID)
		// Clone: the runtime takes ownership.
		clone := table.New(p164, ref.ID)
		tbl.ForEach(func(level, digit int, n table.Neighbor) {
			clone.Set(level, digit, n)
		})
		if err := rt.AddEstablished(ref, clone); err != nil {
			t.Fatal(err)
		}
	}
	joiners := overlay.RandomRefs(p164, 20, rng, taken)
	for _, ref := range joiners {
		if err := rt.Join(ref, members[rng.Intn(len(members))]); err != nil {
			t.Fatal(err)
		}
	}
	await(t, rt)
	if v := rt.CheckConsistency(); len(v) != 0 {
		t.Fatalf("inconsistent: %v", v[0])
	}
}

func TestDuplicateAndClosedErrors(t *testing.T) {
	rt := NewRuntime(p164, core.Options{})
	seed := table.Ref{ID: id.MustParse(p164, "0001"), Addr: "mem://s"}
	if err := rt.AddSeed(seed); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddSeed(seed); err == nil {
		t.Error("duplicate AddSeed accepted")
	}
	rt.Close()
	rt.Close() // idempotent
	if err := rt.AddSeed(table.Ref{ID: id.MustParse(p164, "0002"), Addr: "mem://t"}); err == nil {
		t.Error("AddSeed after Close accepted")
	}
}

func TestAwaitQuiescenceContextCancel(t *testing.T) {
	rt := NewRuntime(p164, core.Options{})
	defer rt.Close()
	// Force a nonzero in-flight count with a message to a node that will
	// never drain: we cheat by inc'ing the quiescer directly.
	rt.quiet.inc(1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := rt.AwaitQuiescence(ctx); err == nil {
		t.Error("AwaitQuiescence returned despite in-flight message")
	}
	rt.quiet.dec()
	if err := rt.AwaitQuiescence(context.Background()); err != nil {
		t.Errorf("quiescent await failed: %v", err)
	}
}

func TestStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for trial := 0; trial < 4; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rt := NewRuntime(id.Params{B: 4, D: 4}, core.Options{})
			defer rt.Close()
			rng := rand.New(rand.NewSource(int64(trial)))
			refs := overlay.RandomRefs(id.Params{B: 4, D: 4}, 100, rng, nil)
			if err := rt.AddSeed(refs[0]); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for _, ref := range refs[1:] {
				ref := ref
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := rt.Join(ref, refs[0]); err != nil {
						t.Error(err)
					}
				}()
			}
			wg.Wait()
			await(t, rt)
			if v := rt.CheckConsistency(); len(v) != 0 {
				t.Fatalf("inconsistent: %v", v[0])
			}
		})
	}
}

func TestGracefulLeaveOnRuntime(t *testing.T) {
	rt := NewRuntime(p164, core.Options{})
	defer rt.Close()
	rng := rand.New(rand.NewSource(51))
	refs := overlay.RandomRefs(p164, 30, rng, nil)
	if err := rt.AddSeed(refs[0]); err != nil {
		t.Fatal(err)
	}
	for _, ref := range refs[1:] {
		if err := rt.Join(ref, refs[0]); err != nil {
			t.Fatal(err)
		}
	}
	await(t, rt)
	if v := rt.CheckConsistency(); len(v) != 0 {
		t.Fatalf("pre-leave inconsistent: %v", v[0])
	}

	leaver := refs[7].ID
	if err := rt.Leave(leaver); err != nil {
		t.Fatal(err)
	}
	await(t, rt)
	if st, _ := rt.Status(leaver); st != core.StatusLeft {
		t.Fatalf("leaver status %v", st)
	}
	if err := rt.Remove(leaver); err != nil {
		t.Fatal(err)
	}
	if err := rt.Remove(leaver); err == nil {
		t.Error("double Remove accepted")
	}
	if v := rt.CheckConsistency(); len(v) != 0 {
		t.Fatalf("post-leave inconsistent: %v", v[0])
	}
	for _, x := range rt.Members() {
		snap, _ := rt.Snapshot(x)
		snap.ForEach(func(level, digit int, nb table.Neighbor) {
			if nb.ID == leaver {
				t.Errorf("node %v still stores leaver", x)
			}
		})
	}
	if err := rt.Leave(leaver); err == nil {
		t.Error("leave of removed node accepted")
	}
}

func TestRouteUnknownNodePanicsByDefault(t *testing.T) {
	rt := NewRuntime(p164, core.Options{})
	defer rt.Close()
	if err := rt.AddSeed(table.Ref{ID: id.MustParse(p164, "aaaa"), Addr: "m://a"}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("route to unknown node did not panic")
		}
	}()
	// Bootstrap through a node the runtime has never hosted: StartJoin's
	// CpRst is unroutable.
	ghost := table.Ref{ID: id.MustParse(p164, "ffff"), Addr: "m://ghost"}
	rt.Join(table.Ref{ID: id.MustParse(p164, "1234"), Addr: "m://j"}, ghost)
}

func TestRouteDropUnroutable(t *testing.T) {
	rt := NewRuntime(p164, core.Options{})
	defer rt.Close()
	rt.DropUnroutable(true)
	if err := rt.AddSeed(table.Ref{ID: id.MustParse(p164, "aaaa"), Addr: "m://a"}); err != nil {
		t.Fatal(err)
	}
	ghost := table.Ref{ID: id.MustParse(p164, "ffff"), Addr: "m://ghost"}
	if err := rt.Join(table.Ref{ID: id.MustParse(p164, "1234"), Addr: "m://j"}, ghost); err != nil {
		t.Fatal(err)
	}
	// The unroutable CpRst must be dropped and counted, and the runtime
	// must still reach quiescence (in-flight accounting stays balanced).
	await(t, rt)
	if got := rt.UnroutableDropped(); got == 0 {
		t.Error("unroutable envelope not counted")
	}
	// The rest of the runtime still works: a real join completes.
	seedRef := table.Ref{ID: id.MustParse(p164, "aaaa"), Addr: "m://a"}
	if err := rt.Join(table.Ref{ID: id.MustParse(p164, "4321"), Addr: "m://k"}, seedRef); err != nil {
		t.Fatal(err)
	}
	await(t, rt)
	if st, ok := rt.Status(id.MustParse(p164, "4321")); !ok || st != core.StatusInSystem {
		t.Fatalf("join under drop mode stuck: %v", st)
	}
}
