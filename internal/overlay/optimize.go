package overlay

import (
	"math/rand"
	"sort"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/table"
)

// This file implements the third §7 extension: neighbor table
// optimization. The join protocol deliberately relaxes the optimality
// assumption of PRR — any node with the desired suffix is consistent —
// so after joins, entries often point at far-away nodes. Optimization
// replaces each entry's occupant with the nearest known qualifying
// candidate, the concern the paper delegates to Hildrum et al. [5] and
// Castro et al. [2].
//
// Candidates are drawn from the node's current neighbors' tables
// (neighbors-of-neighbors), the same local information a distributed
// implementation would fetch with one table-copy round per neighbor; the
// harness shortcuts the message exchange and reads the tables directly,
// since the measured quantity (route stretch) is not affected by how the
// candidate tables are shipped.

// OptimizeStats reports the effect of an optimization pass.
type OptimizeStats struct {
	Rounds     int
	Considered int // entries examined
	Improved   int // entries switched to a nearer node
}

// OptimizeTables runs the given number of optimization rounds over every
// node. Consistency is preserved: a replacement must carry the entry's
// desired suffix and replacements are only sought among live members.
func (n *Network) OptimizeTables(rounds int) OptimizeStats {
	var st OptimizeStats
	ids := make([]id.ID, 0, len(n.machines))
	for x := range n.machines {
		ids = append(ids, x)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })

	for round := 0; round < rounds; round++ {
		st.Rounds++
		for _, x := range ids {
			m := n.machines[x]
			self := m.Self()
			tbl := m.Table()

			// Gather the candidate pool: occupants of our own table plus
			// our neighbors' tables.
			pool := make(map[id.ID]table.Neighbor)
			collect := func(t *table.Table) {
				t.ForEach(func(_, _ int, nb table.Neighbor) {
					if nb.ID != x {
						pool[nb.ID] = nb
					}
				})
			}
			collect(tbl)
			tbl.ForEach(func(_, _ int, nb table.Neighbor) {
				if peer, ok := n.machines[nb.ID]; ok && nb.ID != x {
					collect(peer.Table())
				}
			})
			candidates := make([]table.Neighbor, 0, len(pool))
			for _, nb := range pool {
				candidates = append(candidates, nb)
			}
			sort.Slice(candidates, func(i, j int) bool { return candidates[i].ID.Less(candidates[j].ID) })

			for level := 0; level < n.cfg.Params.D; level++ {
				for digit := 0; digit < n.cfg.Params.B; digit++ {
					cur := tbl.Get(level, digit)
					if cur.IsZero() || cur.ID == x {
						continue
					}
					st.Considered++
					want := tbl.DesiredSuffix(level, digit)
					best := cur
					bestLat := n.cfg.Latency(self, cur.Ref())
					for _, cand := range candidates {
						if cand.ID == cur.ID || !cand.ID.HasSuffix(want) {
							continue
						}
						if _, live := n.machines[cand.ID]; !live {
							continue
						}
						if l := n.cfg.Latency(self, cand.Ref()); l < bestLat {
							best, bestLat = cand, l
						}
					}
					if best.ID != cur.ID {
						tbl.Set(level, digit, best)
						st.Improved++
						if peer, ok := n.machines[best.ID]; ok {
							peer.AddReverseNeighbor(self)
						}
					}
				}
			}
		}
	}
	return st
}

// StretchStats summarizes routing stretch over sampled pairs: the ratio
// of the latency accumulated along the overlay route to the direct
// latency between the endpoints (the paper's P2 "low stretch" property).
type StretchStats struct {
	Pairs    int
	Mean     float64
	P95      float64
	MeanHops float64
}

// MeasureStretch samples ordered node pairs and routes between them.
func (n *Network) MeasureStretch(pairs int, rng *rand.Rand) StretchStats {
	members := n.Members()
	if len(members) < 2 {
		return StretchStats{}
	}
	var ratios []float64
	totalHops := 0
	for len(ratios) < pairs {
		src := members[rng.Intn(len(members))]
		dst := members[rng.Intn(len(members))]
		if src.ID == dst.ID {
			continue
		}
		direct := n.cfg.Latency(src, dst)
		if direct <= 0 {
			continue
		}
		var routed time.Duration
		cur := src
		hops := 0
		ok := true
		for cur.ID != dst.ID {
			tbl, found := n.TableOf(cur.ID)
			if !found {
				ok = false
				break
			}
			k := cur.ID.CommonSuffixLen(dst.ID)
			next := tbl.Get(k, dst.ID.Digit(k))
			if next.IsZero() {
				ok = false
				break
			}
			routed += n.cfg.Latency(cur, next.Ref())
			cur = next.Ref()
			hops++
			if hops > n.cfg.Params.D {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		ratios = append(ratios, float64(routed)/float64(direct))
		totalHops += hops
	}
	if len(ratios) == 0 {
		return StretchStats{}
	}
	sort.Float64s(ratios)
	sum := 0.0
	for _, r := range ratios {
		sum += r
	}
	return StretchStats{
		Pairs:    len(ratios),
		Mean:     sum / float64(len(ratios)),
		P95:      ratios[int(float64(len(ratios)-1)*0.95)],
		MeanHops: float64(totalHops) / float64(len(ratios)),
	}
}
