// Command workload runs a long random churn scenario — the paper's
// "dynamic peer-to-peer network" — and verifies neighbor-table
// consistency after every membership event. It prints a per-operation
// log and a final summary; a non-zero exit means a consistency violation
// or an incomplete operation, which would falsify the implementation.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"hypercube/internal/id"
	"hypercube/internal/workload"
)

func main() {
	var (
		b       = flag.Int("b", 16, "digit base")
		d       = flag.Int("d", 6, "digits per ID")
		initial = flag.Int("initial", 200, "initial network size")
		ops     = flag.Int("ops", 60, "number of churn operations")
		seed    = flag.Int64("seed", 1, "seed")
		quiet   = flag.Bool("quiet", false, "suppress the per-operation log")
	)
	flag.Parse()
	p := id.Params{B: *b, D: *d}
	if err := p.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "workload: %v\n", err)
		os.Exit(1)
	}

	runner, err := workload.NewRunner(p, *initial, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "workload: %v\n", err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(*seed * 31))
	script := workload.RandomScript(rng, *ops, workload.DefaultMix())

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if !*quiet {
		fmt.Fprintln(w, "#\top\tcount\tapplied\tsize\tmessages\tviolations")
	}
	counts := make(map[workload.Kind]int)
	var totalMsgs uint64
	for i, op := range script {
		rep, err := runner.Apply(op)
		if err != nil {
			fmt.Fprintf(os.Stderr, "workload: op %d: %v\n", i, err)
			os.Exit(1)
		}
		counts[op.Kind] += rep.Applied
		totalMsgs += rep.Messages
		if !*quiet {
			fmt.Fprintf(w, "%d\t%v\t%d\t%d\t%d\t%d\t%d\n",
				i, op.Kind, op.Count, rep.Applied, rep.Size, rep.Messages, rep.Violations)
		}
		if rep.Violations > 0 || rep.Unrepaired > 0 {
			if err := w.Flush(); err == nil {
				fmt.Fprintf(os.Stderr, "workload: op %d left violations=%d unrepaired=%d\n",
					i, rep.Violations, rep.Unrepaired)
			}
			os.Exit(1)
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "workload: %v\n", err)
		os.Exit(1)
	}

	failedRoutes := runner.VerifyReachability(2000)
	fmt.Printf("\n%d operations (%d joins, %d leaves, %d crashes, %d optimizations), %d messages\n",
		*ops, counts[workload.KindJoin], counts[workload.KindLeave],
		counts[workload.KindCrash], counts[workload.KindOptimize], totalMsgs)
	fmt.Printf("final network: %d nodes, consistent after every operation, %d/2000 sampled routes failed\n",
		runner.Size(), failedRoutes)
	if failedRoutes > 0 {
		os.Exit(1)
	}
}
