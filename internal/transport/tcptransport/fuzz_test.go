package tcptransport

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/wire"
)

// FuzzDecodeWire feeds arbitrary bytes through the gob + envelope decode
// path a node applies to data read from the network: it must never panic,
// whatever a malicious or corrupted peer sends.
func FuzzDecodeWire(f *testing.F) {
	// Seed with a few valid frames.
	p := id.Params{B: 8, D: 5}
	for _, kind := range []uint8{1, 3, 7, 12, 14} {
		var buf bytes.Buffer
		w := wireEnvelope{
			Kind: kind,
			From: wireRef{ID: "21233", Addr: "127.0.0.1:1"},
			To:   wireRef{ID: "33121", Addr: "127.0.0.1:2"},
			Want: "233",
		}
		if err := gob.NewEncoder(&buf).Encode(&w); err == nil {
			f.Add(buf.Bytes())
		}
	}
	// Seed the malformed classes the decoder must reject: out-of-range
	// table coordinates and states, arbitrary Lo/Hi, hostile fill-vector
	// lengths, oversized addresses, and an out-of-space ref.
	hostile := []wireEnvelope{
		{Kind: 2, From: wireRef{ID: "21233", Addr: "a"}, To: wireRef{ID: "33121", Addr: "b"},
			HasTable: true, Table: wireTable{Owner: "21233", Lo: 0, Hi: 4,
				Filled: []wireEntry{{Level: 99, Digit: 0, ID: "33121", State: 2}}}},
		{Kind: 2, From: wireRef{ID: "21233"}, To: wireRef{ID: "33121"},
			HasTable: true, Table: wireTable{Owner: "21233", Lo: 0, Hi: 4,
				Filled: []wireEntry{{Level: 0, Digit: -3, ID: "33121", State: 2}}}},
		{Kind: 2, From: wireRef{ID: "21233"}, To: wireRef{ID: "33121"},
			HasTable: true, Table: wireTable{Owner: "21233", Lo: 0, Hi: 4,
				Filled: []wireEntry{{Level: 0, Digit: 0, ID: "33121", State: 9}}}},
		{Kind: 2, From: wireRef{ID: "21233"}, To: wireRef{ID: "33121"},
			HasTable: true, Table: wireTable{Owner: "21233", Lo: -5, Hi: 700}},
		{Kind: 5, From: wireRef{ID: "21233"}, To: wireRef{ID: "33121"},
			Fill: []uint64{1, 2, 3}, FillLen: 1 << 30},
		{Kind: 19, From: wireRef{ID: "21233"}, To: wireRef{ID: "33121"},
			Fill: []uint64{1}, FillLen: -40},
		{Kind: 1, From: wireRef{ID: "21233", Addr: string(make([]byte, 5000))}, To: wireRef{ID: "33121"}},
		{Kind: 1, From: wireRef{ID: "99999"}, To: wireRef{ID: "33121"}},
	}
	for _, w := range hostile {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&w); err == nil {
			f.Add(buf.Bytes())
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var w wireEnvelope
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
			return
		}
		env, err := decodeEnvelope(p, w)
		if err != nil {
			return
		}
		// Anything accepted must re-encode cleanly.
		if _, err := encodeEnvelope(env); err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v", err)
		}
	})
}

// FuzzCodecRoundTrip is the differential target for the binary codec:
// any payload the binary decoder accepts must (a) re-encode
// byte-identically — the codec is canonical — and (b) survive a trip
// through the legacy gob codec decoding to exactly the same envelope,
// so the two codecs can never disagree about an accepted message.
func FuzzCodecRoundTrip(f *testing.F) {
	p := id.Params{B: 8, D: 5}
	samples := codecSampleEnvelopes(f)
	for _, env := range samples {
		if payload, err := wire.EncodePayload(p, env); err == nil {
			f.Add(payload)
		}
	}
	if payload, err := wire.EncodePayload(p, samples...); err == nil {
		f.Add(payload)
	}
	// Hostile shapes near the codec's boundary checks.
	f.Add([]byte{wire.Version, 1, 3, byte(msg.TPong), 0, 0})
	f.Add([]byte{wire.Version, 0})
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var envs []msg.Envelope
		if err := wire.DecodePayload(p, data, func(env msg.Envelope) error {
			envs = append(envs, env)
			return nil
		}); err != nil {
			return
		}
		// Re-encode in the payload's own version so an accepted v2 payload
		// with all-untraced records doesn't collapse to v1.
		re, err := wire.EncodePayloadV(p, data[0], envs...)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode not byte-identical\n got %x\nwant %x", re, data)
		}
		// Binary validation is strictly stricter than gob validation, so
		// every accepted envelope must round-trip the gob codec
		// unchanged.
		for _, env := range envs {
			gp, err := EncodeGobPayload(env)
			if err != nil {
				t.Fatalf("binary-accepted envelope rejected by gob encode: %v", err)
			}
			viaGob, err := DecodeGobPayload(p, gp)
			if err != nil {
				t.Fatalf("binary-accepted envelope rejected by gob decode: %v", err)
			}
			if !reflect.DeepEqual(viaGob, env) {
				t.Fatalf("codecs disagree\n gob: %#v\n bin: %#v", viaGob, env)
			}
		}
	})
}
