// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock and an event queue ordered by (time, sequence number).
// Given the same seed and schedule, a simulation replays identically,
// which the protocol experiments rely on for reproducibility.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler. The zero value is not usable;
// construct with NewEngine. Engines are not safe for concurrent use: the
// whole point is a single deterministic timeline.
type Engine struct {
	now       time.Duration
	seq       uint64
	queue     eventQueue
	processed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn after the given delay of virtual time. A negative
// delay is an error in the caller; it panics to surface the bug.
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e.seq++
	heap.Push(&e.queue, &event{at: e.now + delay, seq: e.seq, fn: fn})
}

// ScheduleAt runs fn at the given absolute virtual time, which must not
// be in the past.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt %v is before now %v", at, e.now))
	}
	e.Schedule(at-e.now, fn)
}

// Step executes the next event, advancing the clock to its timestamp.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run executes events until the queue is empty and returns the number of
// events processed. maxEvents bounds runaway simulations; Run panics when
// the bound is hit because a non-quiescing protocol run is a bug the
// caller must see, never silently truncate. maxEvents <= 0 means no bound.
func (e *Engine) Run(maxEvents uint64) uint64 {
	var n uint64
	for e.Step() {
		n++
		if maxEvents > 0 && n > maxEvents {
			panic(fmt.Sprintf("sim: exceeded %d events without quiescing", maxEvents))
		}
	}
	return n
}

// RunUntil executes events with timestamps <= deadline and returns the
// number processed. Events beyond the deadline stay queued; the clock
// does not advance past the deadline.
func (e *Engine) RunUntil(deadline time.Duration) uint64 {
	var n uint64
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}
