package overlay

import (
	"math/rand"
	"testing"

	"hypercube/internal/netcheck"
	"hypercube/internal/topology"
)

func TestOptimizeReducesStretch(t *testing.T) {
	topo, err := topology.Generate(topology.Small(11))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	tl := NewTopologyLatency(topo)
	net := New(Config{Params: p164, Latency: tl.Func()})
	refs := RandomRefs(p164, 150, rng, nil)
	hosts := topo.AttachHosts(len(refs), rng)
	for i, ref := range refs {
		tl.Bind(ref.ID, hosts[i])
	}
	net.BuildDirect(refs, rng)

	before := net.MeasureStretch(400, rand.New(rand.NewSource(1)))
	if before.Pairs == 0 || before.Mean < 1 {
		t.Fatalf("implausible baseline stretch: %+v", before)
	}
	st := net.OptimizeTables(2)
	if st.Improved == 0 {
		t.Fatal("optimization found nothing to improve on random tables")
	}
	if st.Considered < st.Improved {
		t.Fatalf("stats inconsistent: %+v", st)
	}
	// Optimization must never break consistency (replacements carry the
	// desired suffix).
	if v := net.CheckConsistency(); len(v) != 0 {
		t.Fatalf("optimization broke consistency: %v", v[0])
	}
	after := net.MeasureStretch(400, rand.New(rand.NewSource(1)))
	if after.Mean >= before.Mean {
		t.Errorf("stretch did not improve: %.3f -> %.3f", before.Mean, after.Mean)
	}
	t.Logf("stretch %.3f -> %.3f (p95 %.3f -> %.3f, %d/%d entries switched)",
		before.Mean, after.Mean, before.P95, after.P95, st.Improved, st.Considered)
}

func TestOptimizeIdempotentAtFixedPoint(t *testing.T) {
	topo, err := topology.Generate(topology.Small(13))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	tl := NewTopologyLatency(topo)
	net := New(Config{Params: p164, Latency: tl.Func()})
	refs := RandomRefs(p164, 80, rng, nil)
	hosts := topo.AttachHosts(len(refs), rng)
	for i, ref := range refs {
		tl.Bind(ref.ID, hosts[i])
	}
	net.BuildDirect(refs, rng)

	net.OptimizeTables(3)
	again := net.OptimizeTables(1)
	if again.Improved != 0 {
		// A second sweep over an unchanged candidate pool must be a no-op.
		t.Errorf("fixed point not reached: %d further improvements", again.Improved)
	}
}

func TestOptimizeAfterChurn(t *testing.T) {
	// Optimization composes with joins and leaves.
	topo, err := topology.Generate(topology.Small(15))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	tl := NewTopologyLatency(topo)
	net := New(Config{Params: p164, Latency: tl.Func()})
	refs := RandomRefs(p164, 100, rng, nil)
	hosts := topo.AttachHosts(len(refs)+30, rng)
	for i, ref := range refs {
		tl.Bind(ref.ID, hosts[i])
	}
	net.BuildDirect(refs, rng)
	net.OptimizeTables(1)

	for i := 0; i < 10; i++ {
		if err := net.ScheduleLeave(refs[i].ID, net.Engine().Now()); err != nil {
			t.Fatal(err)
		}
	}
	net.Run()
	net.FinalizeLeaves()
	if v := net.CheckConsistency(); len(v) != 0 {
		t.Fatalf("post-leave inconsistent: %v", v[0])
	}
	net.OptimizeTables(1)
	if v := netcheck.CheckConsistency(p164, net.Tables()); len(v) != 0 {
		t.Fatalf("post-optimize inconsistent: %v", v[0])
	}
}
