package liveness

import (
	"testing"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
)

var p44 = id.Params{B: 4, D: 4}

func mkRef(t *testing.T, s string) table.Ref {
	t.Helper()
	return table.Ref{ID: id.MustParse(p44, s), Addr: "sim://" + s}
}

func cfgFast() Config {
	return Config{
		ProbeInterval:  100 * time.Millisecond,
		ProbeTimeout:   250 * time.Millisecond,
		SuspectAfter:   2,
		IndirectProbes: 1,
		ConfirmRounds:  2,
	}
}

// drive ticks the prober in small steps up to deadline, feeding every
// probe through respond (nil = blackhole) and collecting declarations.
func drive(p *Prober, deadline time.Duration, respond func(env msg.Envelope) []msg.Envelope) []table.Ref {
	var declared []table.Ref
	for now := time.Duration(0); now <= deadline; now += 25 * time.Millisecond {
		out, dec := p.Tick(now)
		declared = append(declared, dec...)
		for len(out) > 0 {
			var next []msg.Envelope
			for _, env := range out {
				if respond == nil {
					continue
				}
				next = append(next, respond(env)...)
			}
			out = next
		}
	}
	return declared
}

func TestRoutineProbeAnswered(t *testing.T) {
	self := mkRef(t, "0000")
	a := mkRef(t, "1111")
	p := NewProber(cfgFast(), self)
	p.SetTargets([]table.Ref{a})

	// A responsive target is never suspected, let alone declared.
	peer := NewProber(cfgFast(), a)
	declared := drive(p, 3*time.Second, func(env msg.Envelope) []msg.Envelope {
		if env.To.ID == a.ID {
			return peer.HandleMessage(env)
		}
		if env.To.ID == self.ID {
			return p.HandleMessage(env)
		}
		return nil
	})
	if len(declared) != 0 {
		t.Fatalf("responsive target declared failed: %v", declared)
	}
	st := p.Stats()
	if st.ProbesSent == 0 || st.PongsReceived == 0 {
		t.Fatalf("no probe round trips recorded: %+v", st)
	}
	if st.Suspects != 0 || st.Declared != 0 {
		t.Fatalf("spurious suspicion: %+v", st)
	}
}

func TestSilentTargetDeclared(t *testing.T) {
	self := mkRef(t, "0000")
	dead := mkRef(t, "1111")
	helper := mkRef(t, "2222")
	p := NewProber(cfgFast(), self)
	p.SetTargets([]table.Ref{dead, helper})

	// The helper answers (and relays indirect probes); dead stays silent.
	relayed := 0
	declared := drive(p, 10*time.Second, func(env msg.Envelope) []msg.Envelope {
		switch env.To.ID {
		case helper.ID:
			out := RespondPing(helper, env.From, env.Msg.(msg.Ping))
			for _, e := range out {
				if e.To.ID == dead.ID {
					relayed++
				}
			}
			// Relayed pings vanish into the dead node.
			var keep []msg.Envelope
			for _, e := range out {
				if e.To.ID != dead.ID {
					keep = append(keep, e)
				}
			}
			return keep
		case self.ID:
			return p.HandleMessage(env)
		case dead.ID:
			return nil
		}
		return nil
	})
	if len(declared) != 1 || declared[0].ID != dead.ID {
		t.Fatalf("declared = %v, want exactly %v", declared, dead.ID)
	}
	st := p.Stats()
	if st.Suspects != 1 || st.Declared != 1 {
		t.Fatalf("stats %+v, want 1 suspect and 1 declaration", st)
	}
	if st.IndirectSent == 0 || relayed == 0 {
		t.Fatalf("confirmation rounds sent no indirect probes (stats %+v, relayed %d)", st, relayed)
	}
	if p.TargetCount() != 1 {
		t.Fatalf("declared target still monitored (%d targets)", p.TargetCount())
	}

	// Tombstone: a stale table re-offering the dead node must not revive it.
	p.SetTargets([]table.Ref{dead, helper})
	if p.TargetCount() != 1 {
		t.Fatal("tombstoned target re-adopted from stale table")
	}
}

func TestObserveClearsSuspicion(t *testing.T) {
	self := mkRef(t, "0000")
	a := mkRef(t, "1111")
	p := NewProber(cfgFast(), self)
	p.SetTargets([]table.Ref{a})

	// Let probes go unanswered until a is a suspect.
	for now := time.Duration(0); p.SuspectCount() == 0 && now < 5*time.Second; now += 25 * time.Millisecond {
		p.Tick(now)
	}
	if p.SuspectCount() != 1 {
		t.Fatal("target never became suspect")
	}
	// Any protocol traffic from a proves it alive.
	p.Observe(a.ID)
	if p.SuspectCount() != 0 {
		t.Fatal("Observe did not clear suspicion")
	}
	if p.Stats().Recovered != 1 {
		t.Fatalf("stats %+v, want Recovered=1", p.Stats())
	}
	// And its orphaned probes expiring later must not re-suspect it.
	out, declared := p.Tick(10 * time.Second)
	_ = out
	if len(declared) != 0 || p.SuspectCount() != 0 {
		t.Fatal("stale probe expiry re-suspected a recovered target")
	}
}

func TestRespondPingDirectAndRelay(t *testing.T) {
	self := mkRef(t, "0000")
	origin := mkRef(t, "1111")
	target := mkRef(t, "2222")

	// Direct probe: pong to the origin.
	out := RespondPing(self, origin, msg.Ping{Seq: 9, Origin: origin})
	if len(out) != 1 || out[0].To.ID != origin.ID {
		t.Fatalf("direct ping answered %v", out)
	}
	if pong, ok := out[0].Msg.(msg.Pong); !ok || pong.Seq != 9 {
		t.Fatalf("direct ping answer = %v, want Pong{9}", out[0].Msg)
	}

	// Indirect probe addressed to someone else: relay unchanged.
	ping := msg.Ping{Seq: 10, Origin: origin, Target: target}
	out = RespondPing(self, origin, ping)
	if len(out) != 1 || out[0].To.ID != target.ID {
		t.Fatalf("indirect ping relayed %v", out)
	}
	if got := out[0].Msg.(msg.Ping); got != ping {
		t.Fatalf("relay mutated the ping: %v", got)
	}

	// Indirect probe that reached its target: pong to the origin, not the relay.
	relay := mkRef(t, "3333")
	out = RespondPing(target, relay, ping)
	if len(out) != 1 || out[0].To.ID != origin.ID {
		t.Fatalf("terminal indirect ping answered %v", out)
	}
}

func TestLatePongIgnored(t *testing.T) {
	self := mkRef(t, "0000")
	a := mkRef(t, "1111")
	p := NewProber(cfgFast(), self)
	p.SetTargets([]table.Ref{a})
	out, _ := p.Tick(0)
	if len(out) != 1 {
		t.Fatalf("first tick sent %d probes", len(out))
	}
	seq := out[0].Msg.(msg.Ping).Seq
	// Let the probe expire, then answer it.
	p.Tick(time.Second)
	p.HandleMessage(msg.Envelope{From: a, To: self, Msg: msg.Pong{Seq: seq}})
	if p.Stats().PongsReceived != 0 {
		t.Fatal("expired probe's pong still counted")
	}
}

func TestSetTargetsRefreshesAndForgets(t *testing.T) {
	self := mkRef(t, "0000")
	a := mkRef(t, "1111")
	b := mkRef(t, "2222")
	p := NewProber(cfgFast(), self)
	p.SetTargets([]table.Ref{a, b, self}) // self is never monitored
	if p.TargetCount() != 2 {
		t.Fatalf("TargetCount = %d, want 2", p.TargetCount())
	}
	// b vanishes from the table (graceful leave): forgotten, not declared.
	p.SetTargets([]table.Ref{a})
	if p.TargetCount() != 1 {
		t.Fatalf("TargetCount = %d after removal, want 1", p.TargetCount())
	}
	_, declared := p.Tick(time.Minute)
	if len(declared) != 0 {
		t.Fatalf("forgotten target declared: %v", declared)
	}
}
