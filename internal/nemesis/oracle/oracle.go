// Package oracle holds the invariant checks a chaos scenario is judged
// by, shared between the hand-scripted cmd/churn modes and the
// generated cmd/nemesis schedules: a false-declaration watcher teed
// into the event stream, the end-of-run consistency report with its
// exit-code semantics, and the quiescence-point audit (Definition 3.8
// consistency plus sampled Definition 3.7 reachability).
//
// Everything here needs global knowledge and therefore lives in the
// verification harness, never in protocol nodes.
package oracle

import (
	"fmt"
	"io"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/netcheck"
	"hypercube/internal/obs"
	"hypercube/internal/overlay"
)

// DeclWatch splits failure declarations into genuine (the declared peer
// was deliberately killed) and false (it was alive when declared).
// Scenario drivers tee it into the network's event sink; the simulator
// emits from a single goroutine, so no lock is needed.
type DeclWatch struct {
	dead     map[string]bool
	genuine  int
	falsePos int
	examples []string

	// Detection latency, populated only through MarkDeadAt: virtual
	// crash time per peer and the virtual time of the first declaration
	// that names it.
	crashedAt map[string]time.Duration
	declAt    map[string]time.Duration
}

// NewDeclWatch returns an empty watcher.
func NewDeclWatch() *DeclWatch {
	return &DeclWatch{
		dead:      make(map[string]bool),
		crashedAt: make(map[string]time.Duration),
		declAt:    make(map[string]time.Duration),
	}
}

// Emit implements obs.Sink: every declared-kind event is classified
// against the marked-dead set.
func (w *DeclWatch) Emit(e obs.Event) {
	if e.Kind != obs.KindDeclared {
		return
	}
	if w.dead[e.Peer] {
		w.genuine++
		if _, seen := w.declAt[e.Peer]; !seen {
			w.declAt[e.Peer] = e.T
		}
		return
	}
	w.falsePos++
	if len(w.examples) < 5 {
		w.examples = append(w.examples, e.Peer)
	}
}

// MarkDead records that the given nodes were deliberately killed, so
// declarations naming them count as genuine.
func (w *DeclWatch) MarkDead(ids ...id.ID) {
	for _, x := range ids {
		w.dead[x.String()] = true
	}
}

// MarkDeadAt is MarkDead plus a crash timestamp, enabling
// MeanDetection for the peers it marks.
func (w *DeclWatch) MarkDeadAt(now time.Duration, ids ...id.ID) {
	w.MarkDead(ids...)
	for _, x := range ids {
		w.crashedAt[x.String()] = now
	}
}

// Genuine returns how many declarations named a deliberately killed
// node.
func (w *DeclWatch) Genuine() int { return w.genuine }

// FalsePositives returns how many declarations named a live node.
func (w *DeclWatch) FalsePositives() int { return w.falsePos }

// Total returns all declarations observed so far.
func (w *DeclWatch) Total() int { return w.genuine + w.falsePos }

// Examples returns up to five falsely declared peers, in declaration
// order.
func (w *DeclWatch) Examples() []string { return w.examples }

// Detected returns how many distinct MarkDeadAt-tracked peers have been
// declared at least once.
func (w *DeclWatch) Detected() int { return len(w.declAt) }

// MeanDetection averages crash-to-first-declaration latency over the
// peers marked via MarkDeadAt that were actually declared; zero when
// none were.
func (w *DeclWatch) MeanDetection() time.Duration {
	var sum time.Duration
	n := 0
	for peer, at := range w.declAt {
		crashed, ok := w.crashedAt[peer]
		if !ok {
			continue
		}
		sum += at - crashed
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// ReportFinal prints the end-of-run summary every scenario shares —
// node count, Definition 3.8 consistency, and the guard layer's
// rejection and quarantine counters — and returns the process exit
// code: non-zero when the network ends inconsistent or the driver
// flagged an earlier failure. Routing every mode through this one path
// keeps the exit semantics of all scenario drivers identical.
func ReportFinal(out, errOut io.Writer, net *overlay.Network, earlierFailure bool) int {
	final := net.CheckConsistency()
	state := "consistent"
	if len(final) != 0 {
		state = fmt.Sprintf("%d violations", len(final))
	}
	gs := net.GuardStats()
	fmt.Fprintf(out, "\nfinal network: %d nodes, %s; guard: %d rejected, %d unknown dropped, %d quarantines (%d active), %d released, %d ingress-dropped, %d busy-deferred\n",
		net.Size(), state, gs.Rejected, gs.UnknownDropped,
		gs.Scorer.Quarantines, gs.Scorer.Quarantined, gs.Scorer.Releases,
		gs.IngressDropped, gs.BusyDeferred)
	if len(final) != 0 || earlierFailure {
		PrintViolations(errOut, final)
		return 1
	}
	return 0
}

// PrintViolations lists every netcheck violation so a failing run names
// the broken entries instead of just exiting non-zero.
func PrintViolations(w io.Writer, v []netcheck.Violation) {
	if len(v) == 0 {
		return
	}
	fmt.Fprintf(w, "netcheck failed with %d violations:\n", len(v))
	for _, x := range v {
		fmt.Fprintf(w, "  %v\n", x)
	}
}
