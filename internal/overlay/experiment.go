package overlay

import (
	"fmt"
	"math/rand"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/netcheck"
	"hypercube/internal/obs"
	"hypercube/internal/topology"
)

// WaveConfig describes one join-wave experiment in the paper's
// methodology (§5.2): an initial consistent network of N nodes, M nodes
// joining concurrently at t=0, each bootstrapping from a random
// established node.
type WaveConfig struct {
	Params id.Params
	N      int // size of the initial consistent network
	M      int // number of concurrently joining nodes
	Opts   core.Options
	Seed   int64

	// Topology, when non-nil, attaches all N+M nodes as end hosts of the
	// router topology and uses exact shortest-path latencies; otherwise a
	// deterministic hashed pairwise latency in [5ms,120ms) is used.
	Topology *topology.Topology

	// Stagger spreads join start times uniformly over the given span
	// instead of starting all joins at exactly t=0 (the paper starts all
	// joins at the same time; staggering is an ablation).
	Stagger time.Duration

	// Sink, when non-nil, receives every protocol event of the wave
	// stamped with the virtual clock (see Config.Sink).
	Sink obs.Sink

	// TraceSample and TraceSeed enable causal tracing for the wave (see
	// Config.TraceSample); 0 leaves every node tracerless.
	TraceSample float64
	TraceSeed   uint64
}

// WaveResult collects the outcome and the §5.2 cost metrics of one wave.
type WaveResult struct {
	Config     WaveConfig
	Records    []JoinRecord
	Violations []netcheck.Violation
	AllSNodes  bool
	// VirtualDuration is the simulated time from first join start to
	// quiescence.
	VirtualDuration time.Duration
	Events          uint64
	// JoinNoti is the per-joiner count of JoinNotiMsg sent, the paper's
	// Figure 15 metric, in join-completion order.
	JoinNoti []int
	// SentPerJoin is the average number of messages a joiner sent, by
	// type — the small-message accounting the paper defers to its
	// technical-report companion [7].
	SentPerJoin map[msg.Type]float64
}

// MeanJoinNoti returns the average number of JoinNotiMsg per join.
func (r *WaveResult) MeanJoinNoti() float64 {
	if len(r.JoinNoti) == 0 {
		return 0
	}
	total := 0
	for _, v := range r.JoinNoti {
		total += v
	}
	return float64(total) / float64(len(r.JoinNoti))
}

// Consistent reports whether the final network satisfied Definition 3.8.
func (r *WaveResult) Consistent() bool { return len(r.Violations) == 0 }

// RunWave executes the experiment: build the initial consistent network
// directly (the paper's premise), then join M nodes concurrently and run
// to quiescence.
func RunWave(cfg WaveConfig) (*WaveResult, error) {
	if cfg.N < 1 || cfg.M < 0 {
		return nil, fmt.Errorf("overlay: invalid wave size n=%d m=%d", cfg.N, cfg.M)
	}
	if float64(cfg.N+cfg.M) > 0.9*cfg.Params.Size() {
		return nil, fmt.Errorf("overlay: n+m=%d nodes exceed 90%% of the %g-ID space (b=%d,d=%d)",
			cfg.N+cfg.M, cfg.Params.Size(), cfg.Params.B, cfg.Params.D)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	taken := make(map[id.ID]bool, cfg.N+cfg.M)
	existing := RandomRefs(cfg.Params, cfg.N, rng, taken)
	joiners := RandomRefs(cfg.Params, cfg.M, rng, taken)

	var latency LatencyFunc
	if cfg.Topology != nil {
		tl := NewTopologyLatency(cfg.Topology)
		hosts := cfg.Topology.AttachHosts(cfg.N+cfg.M, rng)
		for i, ref := range existing {
			tl.Bind(ref.ID, hosts[i])
		}
		for i, ref := range joiners {
			tl.Bind(ref.ID, hosts[cfg.N+i])
		}
		latency = tl.Func()
	} else {
		latency = HashedUniformLatency(5*time.Millisecond, 120*time.Millisecond, cfg.Seed)
	}

	net := New(Config{
		Params: cfg.Params, Opts: cfg.Opts, Latency: latency, Sink: cfg.Sink,
		TraceSample: cfg.TraceSample, TraceSeed: cfg.TraceSeed,
	})
	net.BuildDirect(existing, rng)

	machines := make([]*core.Machine, 0, cfg.M)
	for _, ref := range joiners {
		g0 := existing[rng.Intn(len(existing))]
		at := time.Duration(0)
		if cfg.Stagger > 0 {
			at = time.Duration(rng.Int63n(int64(cfg.Stagger)))
		}
		machines = append(machines, net.ScheduleJoin(ref, g0, at))
	}
	events := net.Run()

	res := &WaveResult{
		Config:          cfg,
		Records:         net.Joins(),
		Violations:      net.CheckConsistency(),
		AllSNodes:       true,
		VirtualDuration: net.Engine().Now(),
		Events:          events,
	}
	for _, m := range machines {
		if !m.IsSNode() {
			res.AllSNodes = false
		}
	}
	res.JoinNoti = make([]int, 0, len(res.Records))
	for _, rec := range res.Records {
		res.JoinNoti = append(res.JoinNoti, rec.JoinNotiSent)
	}
	// Per-type breakdown of messages sent by joiners (the paper's TR
	// companion analyzes the small-message counts; we measure them).
	res.SentPerJoin = make(map[msg.Type]float64, len(msg.Types()))
	for _, m := range machines {
		c := m.Counters()
		for _, typ := range msg.Types() {
			res.SentPerJoin[typ] += float64(c.SentOf(typ))
		}
	}
	if cfg.M > 0 {
		for typ := range res.SentPerJoin {
			res.SentPerJoin[typ] /= float64(cfg.M)
		}
	}
	return res, nil
}
