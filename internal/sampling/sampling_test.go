package sampling

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
)

var sp = id.Params{B: 16, D: 4}

func sref(i int) table.Ref {
	s := fmt.Sprintf("%04x", i&0xffff)
	return table.Ref{ID: id.MustParse(sp, s), Addr: "sim://" + s}
}

// TestSamplerDeterminism drives two engines with identical (seed, self)
// through an identical scripted exchange and requires bit-identical
// behavior: same outgoing envelopes every round, same final view, same
// sampler contents. The whole layer must replay deterministically under
// a fixed seed — simulation results are meaningless otherwise.
func TestSamplerDeterminism(t *testing.T) {
	mk := func() *Engine {
		e := New(Config{ViewSize: 8, Interval: time.Second, Seed: 42}, sref(1))
		e.SeedPeers(sref(2), sref(3), sref(4), sref(5), sref(6), sref(7), sref(8), sref(9))
		return e
	}
	a, b := mk(), mk()

	now := time.Duration(0)
	for round := 0; round < 12; round++ {
		now += time.Second
		outA, outB := a.Tick(now), b.Tick(now)
		if !reflect.DeepEqual(outA, outB) {
			t.Fatalf("round %d: engines diverged:\n a=%v\n b=%v", round, outA, outB)
		}
		// Identical inbound traffic: a couple of pushes, plus a reply to
		// the first pull either engine opened this round.
		for _, e := range []*Engine{a, b} {
			e.Deliver(msg.Envelope{From: sref(10 + round), To: sref(1), Msg: msg.SamplePush{}})
			e.Deliver(msg.Envelope{From: sref(20 + round), To: sref(1), Msg: msg.SamplePush{}})
			for _, env := range outA {
				if _, ok := env.Msg.(msg.SamplePullReq); ok {
					e.Deliver(msg.Envelope{From: env.To, To: sref(1), Msg: msg.SamplePullRly{
						Refs: []table.Ref{sref(30 + round), sref(31 + round)},
					}})
					break
				}
			}
		}
	}
	if !reflect.DeepEqual(a.View(), b.View()) {
		t.Errorf("final views diverged:\n a=%v\n b=%v", a.View(), b.View())
	}
	if !reflect.DeepEqual(a.Sample(16), b.Sample(16)) {
		t.Errorf("final samples diverged:\n a=%v\n b=%v", a.Sample(16), b.Sample(16))
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged:\n a=%+v\n b=%+v", a.Stats(), b.Stats())
	}
}

// soakResult fingerprints the end state of a byzantine soak run.
type soakResult struct {
	fingerprint   string
	floods        int
	viewByzMax    float64 // worst per-node byzantine fraction of the view
	samplerByzAgg float64 // aggregate byzantine fraction of the samplers
}

// runByzantineSoak simulates honest engines gossiping for the given
// number of rounds while byzFlooders hostile identities push-flood every
// honest node every round and answer any pull with an all-hostile view.
// Pure-engine simulation: deterministic under the fixed seeds.
func runByzantineSoak(t *testing.T, honest, byzFlooders, rounds int) soakResult {
	t.Helper()
	cfg := Config{ViewSize: 8, Interval: time.Second, Seed: 99}
	rng := rand.New(rand.NewSource(7))

	refs := make([]table.Ref, honest)
	engines := make(map[id.ID]*Engine, honest)
	for i := range refs {
		refs[i] = sref(i)
		engines[refs[i].ID] = New(cfg, refs[i])
	}
	byzRefs := make([]table.Ref, byzFlooders)
	byzSet := make(map[id.ID]bool, byzFlooders)
	for i := range byzRefs {
		byzRefs[i] = sref(0x1000 + i)
		byzSet[byzRefs[i].ID] = true
	}
	// Seed every honest view with random honest peers so the exchange
	// graph starts connected and diverse.
	for _, r := range refs {
		e := engines[r.ID]
		for _, j := range rng.Perm(honest)[:cfg.ViewSize] {
			if refs[j].ID != r.ID {
				e.SeedPeers(refs[j])
			}
		}
	}
	order := make([]table.Ref, len(refs))
	copy(order, refs)
	sort.Slice(order, func(i, j int) bool { return order[i].ID.Less(order[j].ID) })

	now := time.Duration(0)
	for round := 0; round < rounds; round++ {
		now += cfg.Interval
		var inbox []msg.Envelope
		for _, r := range order {
			inbox = append(inbox, engines[r.ID].Tick(now)...)
		}
		// The flood: every hostile identity pushes itself at every honest
		// node, every round — orders of magnitude above the honest rate.
		for _, b := range byzRefs {
			for _, r := range order {
				inbox = append(inbox, msg.Envelope{From: b, To: r, Msg: msg.SamplePush{}})
			}
		}
		for len(inbox) > 0 {
			var next []msg.Envelope
			for _, env := range inbox {
				if e, ok := engines[env.To.ID]; ok {
					next = append(next, e.Deliver(env)...)
					continue
				}
				if byzSet[env.To.ID] {
					// A pulled flooder answers with an all-hostile view.
					if _, isPull := env.Msg.(msg.SamplePullReq); isPull {
						next = append(next, msg.Envelope{From: env.To, To: env.From,
							Msg: msg.SamplePullRly{Refs: byzRefs}})
					}
				}
			}
			inbox = next
		}
	}

	var res soakResult
	var fp strings.Builder
	samplerByz, samplerTotal := 0, 0
	for _, r := range order {
		e := engines[r.ID]
		view := e.View()
		if len(view) == 0 {
			t.Fatalf("node %v ended with an empty view", r.ID)
		}
		viewByz := 0
		for _, v := range view {
			fp.WriteString(v.ID.String())
			fp.WriteByte(',')
			if byzSet[v.ID] {
				viewByz++
			}
		}
		fp.WriteByte(';')
		if f := float64(viewByz) / float64(len(view)); f > res.viewByzMax {
			res.viewByzMax = f
		}
		sample := e.Sample(2 * cfg.ViewSize)
		if len(sample) == 0 {
			t.Fatalf("node %v ended with empty samplers", r.ID)
		}
		for _, v := range sample {
			fp.WriteString(v.ID.String())
			fp.WriteByte(',')
			samplerTotal++
			if byzSet[v.ID] {
				samplerByz++
			}
		}
		fp.WriteByte('|')
		res.floods += e.Stats().FloodsDetected
	}
	res.fingerprint = fp.String()
	res.samplerByzAgg = float64(samplerByz) / float64(samplerTotal)
	return res
}

// TestByzantinePushFloodConvergence is the byzantine soak of the issue:
// ~10% of identities are hostile push-flooders, yet honest views and
// samplers must converge to an honest majority. The flood must actually
// trigger the Brahms defense (otherwise the run tested nothing), every
// node's view must stay majority-honest, and the min-wise samplers —
// whose replacement probability is volume-independent — must hold the
// hostile fraction near the hostile share of the ID population. A
// repeat run under the same seeds must reproduce the exact end state.
func TestByzantinePushFloodConvergence(t *testing.T) {
	const honest, byz, rounds = 30, 3, 100
	res := runByzantineSoak(t, honest, byz, rounds)

	if res.floods == 0 {
		t.Error("flood defense never triggered — the soak exerted no pressure")
	}
	if res.viewByzMax >= 0.5 {
		t.Errorf("a view lost its honest majority: worst byzantine fraction %.2f", res.viewByzMax)
	}
	if res.samplerByzAgg > 0.25 {
		t.Errorf("samplers captured by flooders: byzantine fraction %.2f (population share %.2f)",
			res.samplerByzAgg, float64(byz)/float64(honest+byz))
	}

	again := runByzantineSoak(t, honest, byz, rounds)
	if res.fingerprint != again.fingerprint {
		t.Error("soak is not deterministic under fixed seeds")
	}
}
