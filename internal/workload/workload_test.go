package workload

import (
	"fmt"
	"math/rand"
	"testing"

	"hypercube/internal/id"
)

var p164 = id.Params{B: 16, D: 4}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindJoin: "join", KindLeave: "leave", KindCrash: "crash", KindOptimize: "optimize",
	}
	for k, name := range want {
		if got := k.String(); got != name {
			t.Errorf("%d.String() = %q", k, got)
		}
	}
	if got := Kind(77).String(); got == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestRandomScriptRespectsMix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	script := RandomScript(rng, 400, DefaultMix())
	if len(script) != 400 {
		t.Fatalf("script length %d", len(script))
	}
	counts := make(map[Kind]int)
	for _, op := range script {
		counts[op.Kind]++
		if op.Count < 1 {
			t.Fatalf("op with count %d", op.Count)
		}
		if (op.Kind == KindJoin || op.Kind == KindLeave) && op.Count > DefaultMix().MaxBatch {
			t.Fatalf("batch %d exceeds max", op.Count)
		}
	}
	// 4:3:2:1 weights: joins most frequent, optimize least.
	if counts[KindJoin] <= counts[KindLeave] || counts[KindLeave] <= counts[KindCrash] {
		t.Errorf("mix not respected: %v", counts)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty mix did not panic")
			}
		}()
		RandomScript(rng, 1, Mix{})
	}()
}

func TestRunnerValidation(t *testing.T) {
	if _, err := NewRunner(p164, 0, 1); err == nil {
		t.Error("zero initial size accepted")
	}
	r, err := NewRunner(p164, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 20 {
		t.Errorf("Size = %d", r.Size())
	}
	if _, err := r.Apply(Op{Kind: Kind(99)}); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestScriptedLifecycle(t *testing.T) {
	r, err := NewRunner(p164, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	script := Script{
		{Kind: KindJoin, Count: 20},
		{Kind: KindLeave, Count: 10},
		{Kind: KindCrash, Count: 2},
		{Kind: KindOptimize, Count: 1},
		{Kind: KindJoin, Count: 5},
		{Kind: KindLeave, Count: 8},
	}
	reports, err := r.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(script) {
		t.Fatalf("reports = %d", len(reports))
	}
	wantSize := 50 + 20 - 10 - 2 + 5 - 8
	if got := reports[len(reports)-1].Size; got != wantSize {
		t.Errorf("final size %d, want %d", got, wantSize)
	}
	for i, rep := range reports {
		if rep.Violations != 0 {
			t.Errorf("op %d: %d violations", i, rep.Violations)
		}
		if rep.Op.Kind != KindOptimize && rep.Messages == 0 {
			t.Errorf("op %d (%v): no messages", i, rep.Op.Kind)
		}
	}
	if failed := r.VerifyReachability(300); failed != 0 {
		t.Errorf("%d sampled routes failed", failed)
	}
}

func TestLongRandomChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("long churn")
	}
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			r, err := NewRunner(p164, 60, seed)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed * 100))
			script := RandomScript(rng, 40, DefaultMix())
			if _, err := r.RunScript(script); err != nil {
				t.Fatal(err)
			}
			if failed := r.VerifyReachability(200); failed != 0 {
				t.Errorf("%d routes failed after churn", failed)
			}
		})
	}
}

func TestMinSizeFloor(t *testing.T) {
	r, err := NewRunner(p164, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	r.MinSize = 9
	rep, err := r.Apply(Op{Kind: KindLeave, Count: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied > 1 {
		t.Errorf("MinSize floor ignored: %d leaves applied", rep.Applied)
	}
	if r.Size() < 9 {
		t.Errorf("network shrank below floor: %d", r.Size())
	}
}
