package tcptransport

import (
	"net/http"
	"sync"
	"time"

	"hypercube/internal/obs"
)

// nodeObs is the per-node observability hub, always installed on TCP
// nodes: every protocol event (machine, prober, anti-entropy engine,
// delivery layer) flows through it, already stamped with wall time
// since node start by the obs.Clocked wrapper. It reduces the stream
// into the node's metrics registry, remembers the last protocol-status
// transition for /status, and forwards to the optional user sink and
// trace ring.
//
// Emitters call it from different goroutines under different locks
// (n.mu, probeMu, writer goroutines), so its own mutex must stay a
// leaf: Emit takes it briefly and calls nothing that locks elsewhere.
// Registry instruments are atomic and need no lock at all.
type nodeObs struct {
	reg     *obs.Registry
	forward obs.Sink // user sink and/or trace ring; nil when none

	sent     *obs.CounterVec
	received *obs.CounterVec
	retried  *obs.CounterVec
	dropped  *obs.CounterVec
	events   *obs.CounterVec
	joinDur  *obs.Histogram
	probeRTT *obs.Histogram
	syncDur  *obs.Histogram

	mu             sync.Mutex
	joinStartAt    time.Duration
	joinInFlight   bool
	probeSentAt    map[uint64]time.Duration
	lastTransition time.Time
	lastStatus     string
}

// probeMapLimit bounds probeSentAt against a pathological stream of
// probes whose acks and misses never arrive (both prune normally).
const probeMapLimit = 4096

func newNodeObs() *nodeObs {
	reg := obs.NewRegistry()
	o := &nodeObs{
		reg:         reg,
		probeSentAt: make(map[uint64]time.Duration),
	}
	o.sent = reg.CounterVec("hypercube_messages_sent_total",
		"Protocol messages sent, by message type.", "type")
	o.received = reg.CounterVec("hypercube_messages_received_total",
		"Protocol messages received, by message type.", "type")
	o.retried = reg.CounterVec("hypercube_messages_retried_total",
		"Delivery-layer retry attempts, by message type.", "type")
	o.dropped = reg.CounterVec("hypercube_messages_dropped_total",
		"Messages dead-lettered after exhausting delivery attempts, by message type.", "type")
	o.events = reg.CounterVec("hypercube_events_total",
		"Protocol events emitted, by event kind.", "kind")
	o.joinDur = reg.Histogram("hypercube_join_duration_seconds",
		"Join latency from join start to the in_system transition.", obs.LatencyBuckets())
	o.probeRTT = reg.Histogram("hypercube_probe_rtt_seconds",
		"Liveness probe round-trip time (send to pong).", obs.ExpBuckets(0.0005, 2, 14))
	o.syncDur = reg.Histogram("hypercube_antientropy_round_seconds",
		"Real time spent executing anti-entropy engine ticks.", obs.ExpBuckets(0.0001, 4, 10))
	return o
}

// Emit implements obs.Sink.
func (o *nodeObs) Emit(e obs.Event) {
	o.events.With(string(e.Kind)).Inc()
	switch e.Kind {
	case obs.KindSend:
		o.sent.With(e.Msg).Inc()
	case obs.KindRecv:
		o.received.With(e.Msg).Inc()
	case obs.KindRetry:
		o.retried.With(e.Msg).Inc()
	case obs.KindDrop:
		o.dropped.With(e.Msg).Inc()
	case obs.KindJoinStart:
		o.mu.Lock()
		if !o.joinInFlight {
			o.joinInFlight = true
			o.joinStartAt = e.T
		}
		o.mu.Unlock()
	case obs.KindStatus:
		o.mu.Lock()
		o.lastTransition = time.Now()
		o.lastStatus = e.Detail
		if e.Detail == "in_system" && o.joinInFlight {
			o.joinInFlight = false
			o.joinDur.Observe((e.T - o.joinStartAt).Seconds())
		}
		o.mu.Unlock()
	case obs.KindProbe:
		o.mu.Lock()
		if len(o.probeSentAt) < probeMapLimit {
			o.probeSentAt[e.Seq] = e.T
		}
		o.mu.Unlock()
	case obs.KindProbeAck:
		o.mu.Lock()
		if at, ok := o.probeSentAt[e.Seq]; ok {
			delete(o.probeSentAt, e.Seq)
			o.probeRTT.Observe((e.T - at).Seconds())
		}
		o.mu.Unlock()
	case obs.KindProbeMiss:
		o.mu.Lock()
		delete(o.probeSentAt, e.Seq)
		o.mu.Unlock()
	}
	if o.forward != nil {
		o.forward.Emit(e)
	}
}

// last returns the wall time and name of the most recent status
// transition; zero time if none happened since start.
func (o *nodeObs) last() (time.Time, string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.lastTransition, o.lastStatus
}

// emitTransport reports a delivery-layer event (retry, drop) through
// the node's sink; a no-op before the sink is installed.
func (n *Node) emitTransport(kind obs.Kind, typeName string) {
	if n.sink != nil {
		n.sink.Emit(obs.Event{Node: n.selfName, Kind: kind, Msg: typeName})
	}
}

// Metrics returns the node's metrics registry (always present), for
// embedding its /metrics endpoint in a larger mux.
func (n *Node) Metrics() *obs.Registry { return n.tobs.reg }

// MetricsHandler returns the Prometheus text-format scrape endpoint.
func (n *Node) MetricsHandler() http.Handler { return n.tobs.reg.Handler() }

// DrainTrace empties the node's in-memory trace ring, oldest event
// first; ok is false when the node was started without WithTraceRing.
func (n *Node) DrainTrace() (events []obs.Event, ok bool) {
	if n.ring == nil {
		return nil, false
	}
	return n.ring.Drain(), true
}

// QueueDepths snapshots the per-peer outbound queue lengths, keyed by
// peer address. Empty queues are included while their writer lives.
func (n *Node) QueueDepths() map[string]int {
	n.peersMu.Lock()
	queues := make(map[string]*peerQueue, len(n.peers))
	for addr, pq := range n.peers {
		queues[addr] = pq
	}
	n.peersMu.Unlock()
	out := make(map[string]int, len(queues))
	for addr, pq := range queues {
		out[addr] = pq.depth()
	}
	return out
}

// Uptime returns how long the node has been running.
func (n *Node) Uptime() time.Duration { return time.Since(n.start) }

// setupObs wires the node's observability hub: the registry's runtime
// gauges, the optional trace ring, and the clocked sink every protocol
// component emits through. Called once from start, before any
// goroutine runs.
func (n *Node) setupObs() {
	n.tobs = newNodeObs()
	n.selfName = n.machine.Self().ID.String()
	if n.cfg.TraceRing > 0 {
		n.ring = obs.NewRing(n.cfg.TraceRing)
	}
	var ringSink obs.Sink
	if n.ring != nil {
		ringSink = n.ring
	}
	n.tobs.forward = obs.Tee(n.cfg.Sink, ringSink)
	n.sink = obs.Clocked(n.tobs, func() time.Duration { return time.Since(n.start) })
	n.tobs.reg.GaugeFunc("hypercube_uptime_seconds",
		"Seconds since the node started.",
		func() float64 { return n.Uptime().Seconds() })
	n.tobs.reg.GaugeFunc("hypercube_outbound_queue_depth",
		"Total envelopes waiting in per-peer outbound queues.",
		func() float64 {
			total := 0
			for _, d := range n.QueueDepths() {
				total += d
			}
			return float64(total)
		})
	n.tobs.reg.GaugeFunc("hypercube_guard_rejected_total",
		"Envelopes rejected by semantic validation.",
		func() float64 { return float64(n.GuardStats().Rejected) })
	n.tobs.reg.GaugeFunc("hypercube_guard_quarantined",
		"Peers currently quarantined by the misbehavior scorer.",
		func() float64 { return float64(n.GuardStats().Scorer.Quarantined) })
	n.tobs.reg.GaugeFunc("hypercube_inbound_decode_errors_total",
		"Malformed inbound frames (counted against the per-connection budget).",
		func() float64 { return float64(n.decodeErrors.Load()) })
	n.tobs.reg.GaugeFunc("hypercube_inbound_throttled_total",
		"Inbound envelopes stalled by the per-connection rate limiter.",
		func() float64 { return float64(n.throttledInbound.Load()) })
	n.tobs.reg.GaugeFunc("hypercube_guard_disconnects_total",
		"Inbound connections dropped for oversized frames or exhausted decode budgets.",
		func() float64 { return float64(n.guardDisconnects.Load()) })
	if n.cfg.RTT != nil {
		n.tobs.reg.GaugeFunc("hypercube_rtt_tracked_peers",
			"Peers with at least one RTT sample in the shared estimator.",
			func() float64 {
				st, _ := n.RTTStats()
				return float64(st.Tracked)
			})
		n.tobs.reg.GaugeFunc("hypercube_rtt_degraded_peers",
			"Peers currently flagged degraded (persistently slow vs the cross-peer median).",
			func() float64 {
				st, _ := n.RTTStats()
				return float64(st.Degraded)
			})
		n.tobs.reg.GaugeFunc("hypercube_rtt_samples_total",
			"RTT samples fed into the shared estimator.",
			func() float64 {
				st, _ := n.RTTStats()
				return float64(st.Samples)
			})
		n.tobs.reg.GaugeFunc("hypercube_rtt_degraded_marked_total",
			"Times any peer was flagged degraded.",
			func() float64 {
				st, _ := n.RTTStats()
				return float64(st.Marked)
			})
	}
	if n.cfg.Sampling != nil {
		n.tobs.reg.GaugeFunc("hypercube_sampling_view_size",
			"Current gossip peer-sampling view occupancy.",
			func() float64 {
				st, _ := n.SamplingStats()
				return float64(st.ViewSize)
			})
		n.tobs.reg.GaugeFunc("hypercube_sampling_flood_rounds_total",
			"Sampling rounds that hit the Brahms push-flood threshold and kept the previous view.",
			func() float64 {
				st, _ := n.SamplingStats()
				return float64(st.FloodsDetected)
			})
	}
}
