// Command msgsize measures the §6.2 message-size reductions of Liu & Lam
// (ICDCS 2003): shipping only the usable level range of the joiner's
// table in JoinNotiMsg, and attaching a bit vector so that replies omit
// entries the joiner already has. It runs the same join wave with each
// option combination and reports bytes and messages.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/overlay"
)

func main() {
	var (
		b    = flag.Int("b", 16, "digit base")
		d    = flag.Int("d", 8, "digits per ID")
		n    = flag.Int("n", 500, "initial network size")
		m    = flag.Int("m", 200, "concurrent joiners")
		seed = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()
	p := id.Params{B: *b, D: *d}
	if err := p.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "msgsize: %v\n", err)
		os.Exit(1)
	}

	variants := []struct {
		name string
		opts core.Options
	}{
		{"full tables (baseline)", core.Options{}},
		{"level-range reduction", core.Options{ReduceLevels: true}},
		{"bit-vector replies", core.Options{BitVector: true}},
		{"both reductions (§6.2)", core.Options{ReduceLevels: true, BitVector: true}},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\ttotal bytes\tbytes/join\tmessages\tconsistent")
	baselineBytes := 0
	for i, variant := range variants {
		res, err := overlay.RunWave(overlay.WaveConfig{
			Params: p, N: *n, M: *m, Seed: *seed, Opts: variant.opts,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "msgsize: %v\n", err)
			os.Exit(1)
		}
		totalBytes := 0
		for _, rec := range res.Records {
			totalBytes += rec.BytesSent
		}
		if i == 0 {
			baselineBytes = totalBytes
		}
		note := ""
		if i > 0 && baselineBytes > 0 {
			note = fmt.Sprintf(" (%.1f%% of baseline)", 100*float64(totalBytes)/float64(baselineBytes))
		}
		fmt.Fprintf(w, "%s\t%d%s\t%d\t%d\t%v\n",
			variant.name, totalBytes, note, totalBytes / *m, res.Events,
			res.Consistent() && res.AllSNodes)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "msgsize: %v\n", err)
		os.Exit(1)
	}
}
