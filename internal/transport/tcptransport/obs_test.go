package tcptransport

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/obs"
)

// TestMetricsEndpointAfterJoin scrapes GET /metrics on a live node after
// one real TCP join and asserts the join-latency histogram is populated
// and the exposition parses as Prometheus text format.
func TestMetricsEndpointAfterJoin(t *testing.T) {
	seed, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "abc"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	joiner, err := StartJoiner(p163, core.Options{}, id.MustParse(p163, "123"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()

	if err := joiner.Join(seed.Ref()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := joiner.AwaitStatus(ctx, core.StatusInSystem); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(joiner.AdminHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}

	// Parse the exposition: every non-comment line must be "name value"
	// or "name{label} value" with a numeric value.
	samples := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Fatalf("non-numeric value in line %q: %v", line, err)
		}
		samples[name] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if got := samples["hypercube_join_duration_seconds_count"]; got != 1 {
		t.Errorf("join-latency histogram count = %v, want 1", got)
	}
	if got := samples["hypercube_join_duration_seconds_sum"]; got <= 0 {
		t.Errorf("join-latency histogram sum = %v, want > 0", got)
	}
	if got := samples[`hypercube_messages_sent_total{type="CpRstMsg"}`]; got < 1 {
		t.Errorf("sent CpRstMsg = %v, want >= 1", got)
	}
	if got := samples[`hypercube_events_total{kind="status"}`]; got < 3 {
		t.Errorf("status events = %v, want >= 3 (copying machine passes waiting+notifying+in_system)", got)
	}
	if samples["hypercube_uptime_seconds"] <= 0 {
		t.Error("uptime gauge not positive")
	}
}

// TestStatusObservabilityFields checks the /status additions: uptime,
// last status transition, per-peer queue depths.
func TestStatusObservabilityFields(t *testing.T) {
	seed, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "abc"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	joiner, err := StartJoiner(p163, core.Options{}, id.MustParse(p163, "321"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	if err := joiner.Join(seed.Ref()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := joiner.AwaitStatus(ctx, core.StatusInSystem); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(joiner.AdminHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		UptimeSeconds  float64        `json:"uptimeSeconds"`
		LastTransition string         `json:"lastTransition"`
		Queues         map[string]int `json:"queues"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptimeSeconds = %v", st.UptimeSeconds)
	}
	if !strings.Contains(st.LastTransition, "in_system") {
		t.Errorf("lastTransition = %q, want the in_system transition", st.LastTransition)
	}
	if _, ok := st.Queues[seed.Ref().Addr]; !ok {
		t.Errorf("queues = %v, want an entry for the seed %s", st.Queues, seed.Ref().Addr)
	}
}

// TestTraceRingAndSink joins over TCP with both a user sink and the
// admin trace ring installed, then drains the ring via GET /trace.
func TestTraceRingAndSink(t *testing.T) {
	user := obs.NewRing(4096)
	seed, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "abc"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	joiner, err := StartJoiner(p163, core.Options{}, id.MustParse(p163, "231"), "127.0.0.1:0",
		WithSink(user), WithTraceRing(1024))
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	if err := joiner.Join(seed.Ref()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := joiner.AwaitStatus(ctx, core.StatusInSystem); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(joiner.AdminHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Events []obs.Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	kinds := make(map[obs.Kind]int)
	for _, e := range body.Events {
		kinds[e.Kind]++
		if e.Node != joiner.Ref().ID.String() {
			t.Fatalf("event from wrong node: %+v", e)
		}
	}
	if kinds[obs.KindJoinStart] != 1 {
		t.Errorf("join_start events = %d, want 1", kinds[obs.KindJoinStart])
	}
	if kinds[obs.KindStatus] < 3 {
		t.Errorf("status events = %d, want >= 3", kinds[obs.KindStatus])
	}
	if kinds[obs.KindSend] == 0 || kinds[obs.KindRecv] == 0 {
		t.Errorf("missing send/recv events: %v", kinds)
	}
	// The user sink saw the same stream.
	if got := len(user.Drain()); got == 0 {
		t.Error("user sink received no events")
	}
	// The ring was drained by the first GET; a second drain is empty.
	resp2, err := srv.Client().Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var body2 struct {
		Events []obs.Event `json:"events"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&body2); err != nil {
		t.Fatal(err)
	}
	if len(body2.Events) != 0 {
		t.Errorf("second drain returned %d events", len(body2.Events))
	}
}

// TestTraceWithoutRing404s confirms GET /trace without WithTraceRing is
// a 404, not a panic or an empty 200.
func TestTraceWithoutRing404s(t *testing.T) {
	seed, err := StartSeed(p163, core.Options{}, id.MustParse(p163, "cba"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	srv := httptest.NewServer(seed.AdminHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("GET /trace without ring = %d, want 404", resp.StatusCode)
	}
}
