package core_test

// Resend scheduling with a per-peer seeded RetryAfter (the adaptive
// gray-failure extension): the backoff base comes from the estimator,
// but the attempt counts, give-up behavior, and join-restart paths
// must be exactly the fixed-timeout ones under any base.

import (
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/rtt"
)

// seedEstimate returns an estimator that has learned peer x at the
// given round-trip (one sample: srtt = s, RTO = 3s clamped).
func seedEstimate(x id.ID, sample time.Duration) *rtt.Estimator {
	est := rtt.New(rtt.Config{MinRTO: 50 * time.Millisecond, MaxRTO: 10 * time.Second})
	est.Observe(x, sample)
	return est
}

// TestSeededBackoffDoublesFromPeerBase: an exchange against a peer
// whose RTO is known uses that RTO as the backoff base — and doubles
// it per resend, exactly like the fixed base would.
func TestSeededBackoffDoublesFromPeerBase(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	opts := core.Options{Timeouts: core.Timeouts{RetryAfter: 100 * time.Millisecond, MaxAttempts: 4}}
	seed := core.NewSeed(p, ref(p, "3210"), opts)
	j := core.NewJoiner(p, ref(p, "0123"), opts)
	// 200ms sample -> RTO = 200 + 4*100 = 600ms, 6x the fixed base.
	j.SetRTT(seedEstimate(seed.Self().ID, 200*time.Millisecond))

	must(j.StartJoin(seed.Self()))
	// The fixed base (100ms) must NOT trigger: the seeded base is 600ms.
	if out := j.Tick(500 * time.Millisecond); len(out) != 0 {
		t.Fatalf("resend before the seeded 600ms base: %v", out)
	}
	if out := j.Tick(700 * time.Millisecond); len(out) != 1 || out[0].Msg.Type() != msg.TCpRst {
		t.Fatalf("first seeded resend: %v, want one CpRst", out)
	}
	// Second resend doubles the seeded base: due at 700ms + 1200ms.
	if out := j.Tick(1800 * time.Millisecond); len(out) != 0 {
		t.Fatalf("resend before the doubled base: %v", out)
	}
	if out := j.Tick(2 * time.Second); len(out) != 1 || out[0].Msg.Type() != msg.TCpRst {
		t.Fatalf("second seeded resend: %v, want one CpRst", out)
	}
	if got := j.Counters().SentOf(msg.TCpRst); got != 3 {
		t.Fatalf("CpRst sent %d times, want 3", got)
	}
}

// TestGiveUpAttemptsUnchangedUnderSeededBase: MaxAttempts counts
// transmissions, not time — a 6x-larger seeded base still gives up
// after exactly the same number of attempts and restarts the join
// through the fallback gateway.
func TestGiveUpAttemptsUnchangedUnderSeededBase(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	opts := timeoutOpts() // RetryAfter 100ms, MaxAttempts 2
	pp := newPump(t, p, nil)
	seed := core.NewSeed(p, ref(p, "3210"), opts)
	pp.add(seed)
	b := core.NewJoiner(p, ref(p, "2101"), opts)
	pp.add(b)
	pp.enqueue(must(b.StartJoin(seed.Self())))
	pp.run()
	if !b.IsSNode() {
		t.Fatalf("setup joiner stuck in %v", b.Status())
	}

	j := core.NewJoiner(p, ref(p, "0123"), opts)
	j.SetRTT(seedEstimate(seed.Self().ID, 200*time.Millisecond))
	j.AddGateways(b.Self())
	must(j.StartJoin(seed.Self())) // lost: the seed is silently dead
	// Attempt 2 (the last allowed) fires at the seeded 600ms base.
	if out := j.Tick(600 * time.Millisecond); len(out) != 1 || out[0].To.ID != seed.Self().ID {
		t.Fatalf("first timeout should retry the seed, got %v", out)
	}
	// Cap reached: the next overdue tick restarts via the fallback.
	out := j.Tick(2 * time.Second)
	if len(out) != 1 || out[0].Msg.Type() != msg.TCpRst || out[0].To.ID != b.Self().ID {
		t.Fatalf("give-up produced %v, want a fresh CpRst to fallback %v", out, b.Self().ID)
	}
	if j.Status() != core.StatusCopying {
		t.Fatalf("status after restart: %v", j.Status())
	}
}

// TestExchangeReplySampledIntoEstimator: a reply to a never-resent
// request feeds the measured round-trip back into the estimator.
func TestExchangeReplySampledIntoEstimator(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	opts := core.Options{Timeouts: core.Timeouts{RetryAfter: time.Second, MaxAttempts: 4}}
	seed := core.NewSeed(p, ref(p, "3210"), opts)
	j := core.NewJoiner(p, ref(p, "0123"), opts)
	est := rtt.New(rtt.Config{})
	j.SetRTT(est)
	now := time.Duration(0)
	j.SetClock(func() time.Duration { return now })

	out := must(j.StartJoin(seed.Self())) // CpRst sent at clock 0
	now = 80 * time.Millisecond           // the reply arrives 80ms later
	replies := seed.Deliver(out[0])
	if len(replies) == 0 {
		t.Fatalf("seed ignored CpRst")
	}
	j.Deliver(replies[0])
	srtt, ok := est.SRTT(seed.Self().ID)
	if !ok || srtt != 80*time.Millisecond {
		t.Fatalf("exchange RTT sample = %v,%v, want 80ms,true", srtt, ok)
	}
}

// TestResentExchangeNotSampled (Karn's rule): once an exchange has
// been resent, its reply is ambiguous and must not feed the estimator.
func TestResentExchangeNotSampled(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	opts := core.Options{Timeouts: core.Timeouts{RetryAfter: 100 * time.Millisecond, MaxAttempts: 4}}
	seed := core.NewSeed(p, ref(p, "3210"), opts)
	j := core.NewJoiner(p, ref(p, "0123"), opts)
	est := rtt.New(rtt.Config{})
	j.SetRTT(est)
	now := time.Duration(0)
	j.SetClock(func() time.Duration { return now })

	must(j.StartJoin(seed.Self())) // lost
	now = 150 * time.Millisecond
	resent := j.Tick(now)
	if len(resent) != 1 {
		t.Fatalf("expected one resend, got %v", resent)
	}
	now = 300 * time.Millisecond
	replies := seed.Deliver(resent[0])
	if len(replies) == 0 {
		t.Fatalf("seed ignored resent CpRst")
	}
	j.Deliver(replies[0])
	if st := est.Stats(); st.Samples != 0 {
		t.Fatalf("resent exchange was sampled: %+v", st)
	}
}
