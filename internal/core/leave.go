// Leave protocol and failure recovery — the extensions §7 of the paper
// names as future work ("we plan to use this conceptual foundation to
// design protocols for leaving, failure recovery, and neighbor table
// optimization"). They follow the paper's design philosophy: the burden
// falls on the departing side where possible, and repairs use only local
// information plus routed queries.
//
// Graceful leave. A leaving node x sends LeaveMsg, carrying x.table, to
// every node known to store x (its reverse-neighbor set) and to every
// node x stores (so they drop x from their reverse sets). A holder u
// repairs each entry occupied by x using the attached table: if the entry
// wants suffix ω' and V∖{x} still has a member with ω', then x's own
// consistent table is guaranteed to contain one — take any y ∈ V_ω'∖{x}
// and let k = |csuf(x,y)| ≥ |ω'|; entry (k, y[k]) of x.table is non-empty
// by consistency and its occupant carries ω' (its desired suffix extends
// ω') — so local repair suffices and consistency is preserved. If no
// replacement exists in either table, the suffix died with x and the
// entry is correctly cleared.
//
// Failure recovery. When x crashes there is no table to repair from. A
// holder u first tries a local scan; failing that it sends a FindMsg
// toward the wanted suffix through a helper. Queries that would route
// through the dead node report Blocked and are retried after other
// holders repair their own entries; Machine.RepairEntry drives one
// attempt and the harness (overlay.Network.RecoverFailure) iterates
// rounds to a fixed point.
package core

import (
	"fmt"
	"sort"

	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
)

// StatusLeaving and StatusLeft extend the paper's status set for the
// leave protocol.
const (
	// StatusLeaving: the node has announced departure and is waiting for
	// LeaveRlyMsg acknowledgments.
	StatusLeaving Status = iota + 10
	// StatusLeft: departure complete; the machine is inert.
	StatusLeft
)

// StartLeave begins a graceful departure (only valid for S-nodes) and
// returns the LeaveMsg announcements. The node leaves once every holder
// acknowledged; Status() then reports StatusLeft. It fails if the node
// is not an S-node (a stray admin call must not crash a live process).
func (m *Machine) StartLeave() ([]msg.Envelope, error) {
	if m.status != StatusInSystem {
		return nil, fmt.Errorf("core: StartLeave on node %v in status %v", m.self.ID, m.status)
	}
	m.out = m.out[:0]
	m.setStatus(StatusLeaving)

	// Announce to everyone who stores us (reverse set) and everyone we
	// store (they must forget us as a reverse neighbor). One message per
	// distinct node.
	targets := make(map[id.ID]table.Ref, len(m.reverse))
	for x, ref := range m.reverse {
		targets[x] = ref
	}
	m.tbl.ForEach(func(_, _ int, n table.Neighbor) {
		if n.ID != m.self.ID {
			targets[n.ID] = n.Ref()
		}
	})
	snap := m.tbl.Snapshot()
	m.leaveAcks = make(map[id.ID]struct{}, len(targets))
	for _, ref := range sortedRefs(targets) {
		m.leaveAcks[ref.ID] = struct{}{}
		m.send(ref, msg.Leave{Table: snap})
	}
	if len(m.leaveAcks) == 0 {
		m.setStatus(StatusLeft)
	}
	return m.take(), nil
}

// LeaveAcksPending returns the nodes whose LeaveRlyMsg a leaving node is
// still waiting for (empty unless status is leaving) — for diagnostics.
func (m *Machine) LeaveAcksPending() []id.ID {
	out := make([]id.ID, 0, len(m.leaveAcks))
	for x := range m.leaveAcks {
		out = append(out, x)
	}
	return out
}

// onLeave repairs every entry occupied by the leaver and acknowledges.
// A node that is itself departing only acknowledges: repairing its own
// soon-to-be-discarded table would send RvNghNoti messages that re-insert
// it into peers' reverse sets after they already processed its departure,
// leaving its own departure waiting for acks from long-gone nodes.
func (m *Machine) onLeave(from table.Ref, pm msg.Leave) {
	delete(m.reverse, from.ID)
	if m.departed == nil {
		m.departed = make(map[id.ID]struct{})
	}
	m.departed[from.ID] = struct{}{}
	if m.status != StatusLeaving && m.status != StatusLeft {
		m.tbl.ForEach(func(level, digit int, n table.Neighbor) {
			if n.ID != from.ID {
				return
			}
			m.repairViaDonor(level, digit, from.ID, pm.Table)
		})
	}
	m.send(from, msg.LeaveRly{})
}

// onLeaveRly counts down the leaver's outstanding acknowledgments.
func (m *Machine) onLeaveRly(from table.Ref) {
	if m.status != StatusLeaving {
		return
	}
	delete(m.leaveAcks, from.ID)
	if len(m.leaveAcks) == 0 {
		m.setStatus(StatusLeft)
		m.trace("%v status -> left", m.self.ID)
	}
}

// scanCandidates searches the donor snapshot and the local table for
// occupants carrying want: live (not known-departed) first, with the
// departed carriers collected for the BFS fallback.
func (m *Machine) scanCandidates(want id.Suffix, gone id.ID, donor table.Snapshot) (live table.Neighbor, departed []table.Neighbor) {
	seenDeparted := make(map[id.ID]bool)
	scan := func(n table.Neighbor) {
		if n.ID == gone || n.ID == m.self.ID || !n.ID.HasSuffix(want) {
			return
		}
		if _, crashed := m.failed[n.ID]; crashed {
			return // a known-crashed node is no replacement and has no table
		}
		if _, left := m.departed[n.ID]; left {
			if !seenDeparted[n.ID] {
				seenDeparted[n.ID] = true
				departed = append(departed, n)
			}
			return
		}
		if live.IsZero() {
			live = n
		}
	}
	if !donor.IsZero() {
		donor.ForEach(func(_, _ int, n table.Neighbor) { scan(n) })
	}
	m.tbl.ForEach(func(_, _ int, n table.Neighbor) { scan(n) })
	return live, departed
}

// repairFromTables refills entry (level,digit) after removing gone,
// searching the donor snapshot and the local table for a live qualifying
// replacement. It reports whether a replacement was installed.
func (m *Machine) repairFromTables(level, digit int, gone id.ID, donor table.Snapshot) bool {
	want := m.tbl.DesiredSuffix(level, digit)
	m.tbl.Set(level, digit, table.Neighbor{})
	live, _ := m.scanCandidates(want, gone, donor)
	if live.IsZero() {
		return false
	}
	m.setNeighbor(level, digit, live, false)
	return true
}

// repairViaDonor is the leave-time repair: install a live replacement if
// one is visible, otherwise chase the tables of departed carriers. Under
// concurrent leaves the donor's carrier for the wanted suffix may itself
// be leaving; departed nodes linger until their own departure is fully
// acknowledged, so their tables remain requestable (CpRstMsg). The chase
// is a breadth-first search with a visited set: for any live carrier y,
// every consistent carrier table contains a carrier strictly closer to y
// in suffix depth, so the BFS reaches y if it exists; exhaustion without
// a live carrier proves the suffix departed entirely.
func (m *Machine) repairViaDonor(level, digit int, gone id.ID, donor table.Snapshot) {
	want := m.tbl.DesiredSuffix(level, digit)
	m.tbl.Set(level, digit, table.Neighbor{})
	live, departedCands := m.scanCandidates(want, gone, donor)
	if !live.IsZero() {
		m.setNeighbor(level, digit, live, false)
		return
	}
	if len(departedCands) == 0 {
		return // suffix provably uninhabited among remaining members
	}
	if m.pendingFinds == nil {
		m.pendingFinds = make(map[id.Suffix]findState)
	}
	st := m.pendingFinds[want]
	st.entries = appendEntryOnce(st.entries, [2]int{level, digit})
	if st.visited == nil {
		st.visited = make(map[id.ID]bool)
	}
	for _, c := range departedCands {
		if st.visited[c.ID] {
			continue
		}
		st.visited[c.ID] = true
		st.outstanding++
		m.send(c.Ref(), msg.CpRst{})
	}
	m.pendingFinds[want] = st
}

// onRepairCpRly consumes a table copy requested while chasing departed
// carriers: fill from a live carrier if the copy reveals one, otherwise
// expand the search to newly discovered departed carriers.
func (m *Machine) onRepairCpRly(from table.Ref, donor table.Snapshot) {
	if m.status == StatusLeaving || m.status == StatusLeft {
		// Our table is being abandoned; drop the chase.
		m.pendingFinds = nil
		return
	}
	wants := make([]id.Suffix, 0, len(m.pendingFinds))
	for want := range m.pendingFinds {
		wants = append(wants, want)
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].String() < wants[j].String() })
	for _, want := range wants {
		st := m.pendingFinds[want]
		if !st.visited[from.ID] || st.outstanding == 0 {
			continue
		}
		st.outstanding--
		live, departedCands := m.scanCandidates(want, from.ID, donor)
		switch {
		case !live.IsZero():
			for _, e := range st.entries {
				if m.tbl.Get(e[0], e[1]).IsZero() {
					m.setNeighbor(e[0], e[1], live, false)
				}
				delete(m.inRepair, e)
			}
			delete(m.pendingFinds, want)
			continue
		default:
			for _, c := range departedCands {
				if st.visited[c.ID] {
					continue
				}
				st.visited[c.ID] = true
				st.outstanding++
				m.send(c.Ref(), msg.CpRst{})
			}
			if st.outstanding == 0 {
				// Search exhausted: every carrier departed; entries
				// correctly stay empty.
				for _, e := range st.entries {
					delete(m.inRepair, e)
				}
				delete(m.pendingFinds, want)
				continue
			}
		}
		m.pendingFinds[want] = st
	}
}

// DropFailed removes a crashed node from every entry and from the reverse
// set, attempting local-only repair, and returns the entries that remain
// unrepaired (their desired suffix may still be inhabited — RepairEntry
// resolves them via routed queries). Unrepaired entries are also
// registered as repair jobs, driven either autonomously by Tick or in
// forced rounds by KickRepairs (the RecoverFailures batch path).
func (m *Machine) DropFailed(gone id.ID) (unrepaired [][2]int) {
	delete(m.reverse, gone)
	delete(m.gateways, gone)
	var held [][2]int
	m.tbl.ForEach(func(level, digit int, n table.Neighbor) {
		if n.ID == gone {
			held = append(held, [2]int{level, digit})
		}
	})
	for _, e := range held {
		if !m.repairFromTables(e[0], e[1], gone, table.Snapshot{}) {
			if m.inRepair == nil {
				m.inRepair = make(map[[2]int]bool)
			}
			m.inRepair[e] = true
			m.addRepairJob(e, gone)
			unrepaired = append(unrepaired, e)
		}
	}
	return unrepaired
}

// RepairEntry launches a routed Find for the desired suffix of the given
// (empty) entry through the helper node, avoiding the failed node. The
// result arrives as a FindRly handled by the machine; ResolveRepair
// reports the outcome.
func (m *Machine) RepairEntry(level, digit int, helper table.Ref, avoid id.ID) []msg.Envelope {
	m.out = m.out[:0]
	m.repairEntry(level, digit, helper, avoid)
	return m.take()
}

// repairEntry launches the Find without resetting m.out, for use inside
// Tick/KickRepairs.
func (m *Machine) repairEntry(level, digit int, helper table.Ref, avoid id.ID) {
	want := m.tbl.DesiredSuffix(level, digit)
	if m.pendingFinds == nil {
		m.pendingFinds = make(map[id.Suffix]findState)
	}
	st := m.pendingFinds[want]
	st.entries = appendEntryOnce(st.entries, [2]int{level, digit})
	st.outstanding++
	m.pendingFinds[want] = st
	m.send(helper, msg.Find{Want: want, Origin: m.self, Avoid: avoid})
}

func appendEntryOnce(entries [][2]int, e [2]int) [][2]int {
	for _, have := range entries {
		if have == e {
			return entries
		}
	}
	return append(entries, e)
}

// RepairOutcome describes the result of a RepairEntry query.
type RepairOutcome uint8

const (
	// RepairPending: no reply yet.
	RepairPending RepairOutcome = iota + 1
	// RepairFilled: a replacement was installed.
	RepairFilled
	// RepairEmpty: provably no member carries the suffix; entry stays empty.
	RepairEmpty
	// RepairBlocked: the route ran through the failed node; retry later.
	RepairBlocked
)

// ResolveRepair reports and clears the outcome for an entry previously
// passed to RepairEntry.
func (m *Machine) ResolveRepair(level, digit int) RepairOutcome {
	want := m.tbl.DesiredSuffix(level, digit)
	st, ok := m.pendingFinds[want]
	if !ok {
		return RepairPending
	}
	if st.outstanding > 0 {
		return RepairPending
	}
	defer delete(m.pendingFinds, want)
	switch {
	case st.blocked:
		return RepairBlocked
	case !m.tbl.Get(level, digit).IsZero():
		return RepairFilled
	default:
		return RepairEmpty
	}
}

// StartRejoin re-runs the join protocol for an established node, keeping
// its table. It exists for failure recovery: if the crashed node was the
// sole node storing this one (its "bridge" — possible when this node's
// join notified only the crashed node), no survivor can find this node by
// search, so it must re-announce itself. Re-joining reuses the notifying
// machinery, whose Theorem-1 guarantee is exactly that every node in the
// notification set ends up storing the (re-)joiner.
func (m *Machine) StartRejoin(g0 table.Ref) ([]msg.Envelope, error) {
	if m.status != StatusInSystem {
		return nil, fmt.Errorf("core: StartRejoin on node %v in status %v", m.self.ID, m.status)
	}
	if g0.IsZero() || g0.ID == m.self.ID {
		return nil, fmt.Errorf("core: StartRejoin with invalid bootstrap %v", g0.ID)
	}
	m.out = m.out[:0]
	m.startRejoin(g0)
	return m.take(), nil
}

// DeepestNeighborIs reports whether who shares at least as many rightmost
// digits with this node as every other node in its table — the orphan
// heuristic: if a deepest-known neighbor crashed, it may have been the
// only node storing us, so we should re-join. Ties count as deepest: a
// same-depth neighbor does not necessarily store us (it may itself have
// joined through the crashed node), and a spurious re-join is cheap and
// harmless while a missed one leaves us unreachable.
func (m *Machine) DeepestNeighborIs(who id.ID) bool {
	kWho := m.self.ID.CommonSuffixLen(who)
	deepest := true
	m.tbl.ForEach(func(_, _ int, n table.Neighbor) {
		if n.ID == m.self.ID || n.ID == who {
			return
		}
		if m.self.ID.CommonSuffixLen(n.ID) > kWho {
			deepest = false
		}
	})
	return deepest
}

// AbandonRepair resolves a pending repair as "suffix no longer
// inhabited": the entry stays empty and stops blocking Find queries. The
// recovery coordinator calls it when repair rounds stop making progress —
// which happens exactly when the dead node was the sole carrier of the
// suffix, so every potential certifier is itself waiting (see
// overlay.RecoverFailure for the convergence rule).
func (m *Machine) AbandonRepair(level, digit int) {
	want := m.tbl.DesiredSuffix(level, digit)
	delete(m.pendingFinds, want)
	delete(m.inRepair, [2]int{level, digit})
	delete(m.repairs, [2]int{level, digit})
}

// findState tracks one outstanding suffix search (crash-repair Find
// queries and leave-repair table chases share it).
type findState struct {
	entries     [][2]int
	outstanding int
	visited     map[id.ID]bool
	blocked     bool
}

// onFind routes a suffix query one hop (or answers it).
func (m *Machine) onFind(pm msg.Find) {
	if m.self.ID.HasSuffix(pm.Want) && m.self.ID != pm.Avoid {
		m.send(pm.Origin, msg.FindRly{
			Want:  pm.Want,
			Found: table.Neighbor{ID: m.self.ID, Addr: m.self.Addr, State: table.StateS},
		})
		return
	}
	k := m.self.ID.SuffixMatch(pm.Want)
	if k >= pm.Want.Len() || k >= m.params.D {
		// We carry the whole wanted suffix but are the avoided node (the
		// HasSuffix branch above did not answer): we cannot vouch for
		// another carrier, and entry (k, Want[k]) does not exist to route
		// on. Report Blocked so the origin retries elsewhere.
		m.send(pm.Origin, msg.FindRly{Want: pm.Want, Blocked: true})
		return
	}
	next := m.tbl.Get(k, pm.Want.Digit(k))
	switch {
	case next.IsZero() && m.inRepair[[2]int{k, pm.Want.Digit(k)}]:
		// The entry was emptied by a crash and is awaiting repair: its
		// emptiness proves nothing yet. Tell the origin to retry.
		m.send(pm.Origin, msg.FindRly{Want: pm.Want, Blocked: true})
	case next.IsZero():
		// No member carries even the shorter suffix Want[k..0], hence
		// none carries Want: provably absent.
		m.send(pm.Origin, msg.FindRly{Want: pm.Want})
	case next.ID == pm.Avoid:
		m.send(pm.Origin, msg.FindRly{Want: pm.Want, Blocked: true})
	case next.ID == m.self.ID:
		// Unreachable for well-formed tables (the occupant's digit k must
		// equal Want[k], which differs from self[k]); report Blocked
		// rather than claiming provable absence.
		m.send(pm.Origin, msg.FindRly{Want: pm.Want, Blocked: true})
	default:
		m.send(next.Ref(), pm)
	}
}

// onFindRly applies a query result to the entries waiting on it.
func (m *Machine) onFindRly(pm msg.FindRly) {
	st, ok := m.pendingFinds[pm.Want]
	if !ok || st.outstanding == 0 {
		return
	}
	st.outstanding--
	st.blocked = pm.Blocked
	m.pendingFinds[pm.Want] = st
	if pm.Blocked {
		return
	}
	if !pm.Found.IsZero() && m.knownBad(pm.Found.ID) {
		// A stale table answered with a node we know crashed or left:
		// treat as blocked so the repair retries elsewhere.
		st.blocked = true
		m.pendingFinds[pm.Want] = st
		return
	}
	for _, e := range st.entries {
		delete(m.inRepair, e) // resolved: filled or provably empty
		if !pm.Found.IsZero() && m.tbl.Get(e[0], e[1]).IsZero() {
			m.setNeighbor(e[0], e[1], pm.Found, false)
		}
	}
}
