package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]int{4, 1, 3, 2, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("count/min/max: %+v", s)
	}
	if s.Mean != 3 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.Median != 3 {
		t.Errorf("median = %v", s.Median)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Errorf("stddev = %v", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]int{7})
	if s.Mean != 7 || s.Median != 7 || s.P90 != 7 || s.StdDev != 0 {
		t.Errorf("singleton: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []int{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	for _, bad := range []func(){
		func() { Percentile(nil, 0.5) },
		func() { Percentile(sorted, -0.1) },
		func() { Percentile(sorted, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]int{1, 1, 2, 5})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	tests := []struct {
		x    int
		want float64
	}{
		{0, 0}, {1, 0.5}, {2, 0.75}, {3, 0.75}, {4, 0.75}, {5, 1}, {10, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); got != tt.want {
			t.Errorf("At(%d) = %v, want %v", tt.x, got, tt.want)
		}
	}
	pts := c.Points(0, 5)
	if len(pts) != 6 {
		t.Fatalf("Points = %d", len(pts))
	}
	if pts[0].Y != 0 || pts[5].Y != 1 {
		t.Errorf("endpoint values: %v %v", pts[0], pts[5])
	}
	// Empty CDF reads as zero everywhere.
	if NewCDF(nil).At(100) != 0 {
		t.Error("empty CDF not zero")
	}
}

// Property: a CDF is monotone, right-continuous on integers, and hits 1 at
// the sample maximum.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		samples := make([]int, n)
		maxV := 0
		for i := range samples {
			samples[i] = rng.Intn(50)
			if samples[i] > maxV {
				maxV = samples[i]
			}
		}
		c := NewCDF(samples)
		prev := 0.0
		for x := -1; x <= 51; x++ {
			y := c.At(x)
			if y < prev || y < 0 || y > 1 {
				return false
			}
			prev = y
		}
		return c.At(maxV) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFormatTable(t *testing.T) {
	series := []Series{
		{Label: "a", Points: []Point{{1, 0.5}, {2, 0.75}}},
		{Label: "b", Points: []Point{{1, 0.25}}},
	}
	out := FormatTable(series, "x")
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "0.7500") {
		t.Errorf("values missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "-") {
		t.Errorf("missing-point marker absent: %q", lines[2])
	}
	if FormatTable(nil, "x") != "" {
		t.Error("empty series renders non-empty")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]int{3, 3, 3, 7})
	if h.Total() != 4 || h.Count(3) != 3 || h.Count(7) != 1 || h.Count(5) != 0 {
		t.Errorf("histogram counts wrong")
	}
	s := h.String()
	if !strings.Contains(s, "3") || !strings.Contains(s, "#") {
		t.Errorf("render: %q", s)
	}
	if got := NewHistogram(nil).String(); got != "(empty)\n" {
		t.Errorf("empty render: %q", got)
	}
}
