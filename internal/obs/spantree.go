package obs

import (
	"sort"
	"time"
)

// This file reconstructs cross-node span trees from traced events: the
// offline half of the causal-tracing pipeline. Emitters stamp events
// with (trace, span, parent) hex IDs via Event.Stamped; BuildTrees
// groups a merged multi-node event stream back into one Tree per
// operation, with one Span per network hop. cmd/fleettrace feeds it
// per-node JSONL files (or live /trace scrapes) and reports on the
// result.

// Span is one hop (or the root) of a traced operation: every event that
// carries the same span ID, across all nodes. A protocol hop's span
// holds the sender's send event and the receiver's recv event; a probe
// span holds all four round-trip events (probe, recv, send, probe_ack);
// a root span holds the operation's root event plus whatever same-node
// events were stamped with the root context (status transitions).
type Span struct {
	ID string
	// Parent is the causing span's ID, learned from whichever of the
	// span's events carries one (send-side events do; recv sides and
	// roots don't). Empty for operation roots — and for spans whose
	// send event never reached the trace, which Tree.Orphans exposes.
	Parent   string
	Events   []Event
	Children []*Span
}

// firstOfKind returns the span's earliest event of the given kind.
func (s *Span) firstOfKind(k Kind) (Event, bool) {
	for _, e := range s.Events {
		if e.Kind == k {
			return e, true
		}
	}
	return Event{}, false
}

// rootKinds are the event kinds that legitimately start an operation;
// a parentless span containing none of them is a broken tree, not a
// root (its send-side event is missing).
var rootKinds = map[Kind]bool{
	KindJoinStart:   true,
	KindProbe:       true,
	KindSyncRound:   true,
	KindSampleRound: true,
	KindDHTPublish:  true,
	KindDHTLookup:   true,
}

func (s *Span) isRoot() bool {
	if s.Parent != "" {
		return false
	}
	for _, e := range s.Events {
		if rootKinds[e.Kind] {
			return true
		}
	}
	return false
}

// Tree is one traced operation reconstructed across every node it
// touched.
type Tree struct {
	Trace string
	Spans map[string]*Span
	// Root is the operation's root span, nil when it is missing from
	// the stream (e.g. rotated out of a bounded trace ring).
	Root *Span
	// Orphans are non-root spans whose parent span is absent: evidence
	// the reconstruction is partial.
	Orphans []*Span
}

// Complete reports whether the tree reconstructs end to end: the root
// span is present and every other span's parent resolves inside the
// tree. A send without a matching recv does NOT break completeness —
// that is a leaf (the message was in flight, lost, or its receiver was
// an untraced opaque hop).
func (t *Tree) Complete() bool {
	return t.Root != nil && len(t.Orphans) == 0
}

// RootKind returns the kind of the operation's root event (join_start,
// probe, sync_round, sample_round, dht_publish, dht_lookup), or "" when
// the root is missing.
func (t *Tree) RootKind() Kind {
	if t.Root == nil {
		return ""
	}
	for _, e := range t.Root.Events {
		if rootKinds[e.Kind] {
			return e.Kind
		}
	}
	return ""
}

// RootNode returns the node that started the operation, or "" when the
// root is missing.
func (t *Tree) RootNode() string {
	if t.Root == nil {
		return ""
	}
	for _, e := range t.Root.Events {
		if rootKinds[e.Kind] {
			return e.Node
		}
	}
	return ""
}

// HasStatus reports whether any event in the tree is a status
// transition to the given detail (e.g. "in_system").
func (t *Tree) HasStatus(detail string) bool {
	for _, s := range t.Spans {
		for _, e := range s.Events {
			if e.Kind == KindStatus && e.Detail == detail {
				return true
			}
		}
	}
	return false
}

// JoinComplete reports whether a join operation reconstructs end to
// end: rooted at a join_start, structurally complete, and containing
// the in_system transition that proves the join finished inside the
// trace.
func (t *Tree) JoinComplete() bool {
	return t.RootKind() == KindJoinStart && t.Complete() && t.HasStatus("in_system")
}

// Depth returns the longest root-to-leaf path length in spans (a lone
// root is depth 1); 0 when the root is missing.
func (t *Tree) Depth() int {
	if t.Root == nil {
		return 0
	}
	var walk func(s *Span) int
	walk = func(s *Span) int {
		d := 0
		for _, c := range s.Children {
			if cd := walk(c); cd > d {
				d = cd
			}
		}
		return d + 1
	}
	return walk(t.Root)
}

// Hop is one reconstructed network hop: a span whose send and recv
// sides both made it into the stream.
type Hop struct {
	Span *Span
	// From/To are the sender and receiver nodes, Msg the message type.
	From, To string
	Msg      string
	Send     Event
	Recv     Event
}

// Latency is the hop's recv-minus-send time. Both stamps come from the
// emitting node's own clock, so cross-node hops carry the receivers'
// clock offsets; correct with the skew estimates from ProbeSamples
// before trusting small values.
func (h Hop) Latency() time.Duration { return h.Recv.T - h.Send.T }

// Hops returns every send/recv pair in the tree, matched within each
// span by message type (a probe span holds both the ping's recv and the
// pong's send on the target node; the type keeps them apart).
func (t *Tree) Hops() []Hop {
	var hops []Hop
	for _, s := range t.Spans {
		for _, send := range s.Events {
			if send.Kind != KindSend {
				continue
			}
			for _, recv := range s.Events {
				if recv.Kind == KindRecv && recv.Msg == send.Msg && recv.Node != send.Node {
					hops = append(hops, Hop{
						Span: s, From: send.Node, To: recv.Node,
						Msg: send.Msg, Send: send, Recv: recv,
					})
					break
				}
			}
		}
	}
	sort.Slice(hops, func(i, j int) bool { return hops[i].Send.T < hops[j].Send.T })
	return hops
}

// ProbeSample is the measurement a fully reconstructed probe round trip
// yields. The ping envelope carries the root span itself, so all four
// timestamps — probe (t1) and probe_ack (t4) on the prober, recv (t2)
// and send (t3) on the target — share one span, and the NTP
// intersection gives both quantities at once.
type ProbeSample struct {
	Prober, Target string
	// RTT is the network round trip with the target's processing time
	// removed: (t4-t1) - (t3-t2). Both differences are same-clock.
	RTT time.Duration
	// Skew estimates the target's clock minus the prober's clock:
	// ((t2-t1) + (t3-t4)) / 2. Exact when the path is symmetric.
	Skew time.Duration
}

// ProbeSample extracts the round-trip measurement from a probe-rooted
// tree; ok is false unless all four events are present on exactly two
// nodes (indirect/relayed probes are skipped — their path is not a
// two-clock round trip).
func (t *Tree) ProbeSample() (ProbeSample, bool) {
	if t.RootKind() != KindProbe || t.Root == nil {
		return ProbeSample{}, false
	}
	probe, ok1 := t.Root.firstOfKind(KindProbe)
	recv, ok2 := t.Root.firstOfKind(KindRecv)
	send, ok3 := t.Root.firstOfKind(KindSend)
	ack, ok4 := t.Root.firstOfKind(KindProbeAck)
	if !ok1 || !ok2 || !ok3 || !ok4 || probe.Detail == "indirect" {
		return ProbeSample{}, false
	}
	if recv.Node != send.Node || probe.Node != ack.Node || probe.Node == recv.Node {
		return ProbeSample{}, false
	}
	t1, t2, t3, t4 := probe.T, recv.T, send.T, ack.T
	return ProbeSample{
		Prober: probe.Node,
		Target: recv.Node,
		RTT:    (t4 - t1) - (t3 - t2),
		Skew:   ((t2 - t1) + (t3 - t4)) / 2,
	}, true
}

// BuildTrees groups a merged event stream into one Tree per trace ID,
// ordered by each trace's earliest event time. Events without trace
// context are ignored; feed them to Analyzer instead.
func BuildTrees(events []Event) []*Tree {
	byTrace := make(map[string]*Tree)
	first := make(map[string]time.Duration)
	var order []string
	for _, e := range events {
		if e.Trace == "" || e.Span == "" {
			continue
		}
		tr, ok := byTrace[e.Trace]
		if !ok {
			tr = &Tree{Trace: e.Trace, Spans: make(map[string]*Span)}
			byTrace[e.Trace] = tr
			first[e.Trace] = e.T
			order = append(order, e.Trace)
		}
		sp, ok := tr.Spans[e.Span]
		if !ok {
			sp = &Span{ID: e.Span}
			tr.Spans[e.Span] = sp
		}
		sp.Events = append(sp.Events, e)
		if e.Parent != "" && sp.Parent == "" {
			sp.Parent = e.Parent
		}
	}
	for _, tr := range byTrace {
		// Deterministic child order regardless of map iteration.
		ids := make([]string, 0, len(tr.Spans))
		for id := range tr.Spans {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			sp := tr.Spans[id]
			switch {
			case sp.isRoot():
				if tr.Root == nil {
					tr.Root = sp
				} else {
					tr.Orphans = append(tr.Orphans, sp)
				}
			case sp.Parent == "":
				tr.Orphans = append(tr.Orphans, sp)
			default:
				parent, ok := tr.Spans[sp.Parent]
				if !ok {
					tr.Orphans = append(tr.Orphans, sp)
					continue
				}
				parent.Children = append(parent.Children, sp)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if first[order[i]] != first[order[j]] {
			return first[order[i]] < first[order[j]]
		}
		return order[i] < order[j]
	})
	out := make([]*Tree, len(order))
	for i, id := range order {
		out[i] = byTrace[id]
	}
	return out
}
