// Quickstart: build a small hypercube-routing network with the join
// protocol, inspect a neighbor table (the paper's Figure 1 layout), and
// route messages between nodes.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/overlay"
)

func main() {
	// IDs have 5 digits of base 4, the space of the paper's Figure 1.
	p := id.Params{B: 4, D: 5}
	rng := rand.New(rand.NewSource(7))

	// A network starts from a single seed node (§6.1); everyone else
	// joins through the protocol. overlay.Network simulates message
	// exchange with realistic latencies.
	net := overlay.New(overlay.Config{Params: p})
	members := overlay.RandomRefs(p, 16, rng, nil)
	if err := net.BuildByJoins(members, rng); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("built a %d-node network through %d protocol joins\n\n", net.Size(), len(net.Joins()))

	// Inspect a node's neighbor table: d levels of b entries; the
	// (i,j)-entry points to a node sharing i rightmost digits whose next
	// digit is j.
	someNode := members[3].ID
	tbl, _ := net.TableOf(someNode)
	fmt.Println(tbl)

	// Route messages: each hop resolves one more suffix digit (§2.2).
	src, dst := members[1].ID, members[14].ID
	path, ok := core.Route(net, src, dst, p)
	if !ok {
		fmt.Fprintf(os.Stderr, "quickstart: routing failed — network inconsistent?\n")
		os.Exit(1)
	}
	fmt.Printf("route %v -> %v (suffix matching grows each hop):\n ", src, dst)
	for _, hop := range path {
		fmt.Printf(" %v", hop)
	}
	fmt.Println()

	// The network is consistent: every node can reach every other node
	// within d hops (Definition 3.8 / Lemma 3.1).
	if v := net.CheckConsistency(); len(v) != 0 {
		fmt.Fprintf(os.Stderr, "quickstart: inconsistent: %v\n", v[0])
		os.Exit(1)
	}
	fmt.Println("\nnetwork is consistent (Definition 3.8): no false negatives, no false positives")
}
