package guard

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
)

var tp = id.Params{B: 4, D: 4}

func ref(t *testing.T, s string) table.Ref {
	t.Helper()
	return table.Ref{ID: id.MustParse(tp, s), Addr: "sim://" + s}
}

// snapOf builds a minimal valid snapshot owned by owner: just the
// owner's diagonal entries, like a fresh seed table.
func snapOf(t *testing.T, owner table.Ref) table.Snapshot {
	t.Helper()
	tbl := table.New(tp, owner.ID)
	for i := 0; i < tp.D; i++ {
		tbl.Set(i, owner.ID.Digit(i), table.Neighbor{ID: owner.ID, Addr: owner.Addr, State: table.StateS})
	}
	return tbl.Snapshot()
}

// TestCheckValidMessages asserts Check accepts one well-formed envelope
// of every message type — the guard must never reject honest traffic.
func TestCheckValidMessages(t *testing.T) {
	self := ref(t, "0321")
	from := ref(t, "1201")
	snap := snapOf(t, from)
	fill := table.NewBitVector(tp.D * tp.B)
	valid := []msg.Message{
		msg.CpRst{Level: 2},
		msg.CpRly{Table: snap},
		msg.JoinWait{},
		msg.JoinWaitRly{R: msg.Positive, U: self, Table: snap},
		msg.JoinNoti{Table: snap, NotiLevel: 1, FillVector: fill},
		msg.JoinNotiRly{R: msg.Negative, Table: snap, F: true},
		msg.InSysNoti{},
		msg.SpeNoti{X: from, Y: ref(t, "2211")},
		msg.SpeNotiRly{X: self, Y: ref(t, "2211")},
		msg.RvNghNoti{Level: 0, Digit: self.ID.Digit(0), State: table.StateS},
		msg.RvNghNotiRly{Level: 1, Digit: 2, State: table.StateT},
		msg.Leave{Table: snap},
		msg.LeaveRly{},
		msg.Find{Want: id.MustParseSuffix(tp, "21"), Origin: from},
		msg.FindRly{Want: id.MustParseSuffix(tp, "21"), Found: table.Neighbor{ID: id.MustParse(tp, "3021"), State: table.StateS}},
		msg.Ping{Seq: 7, Origin: from, Target: ref(t, "2211")},
		msg.Pong{Seq: 7},
		msg.FailedNoti{Failed: ref(t, "2211")},
		msg.SyncReq{Fill: fill},
		msg.SyncRly{Table: snap, Fill: fill},
		msg.SyncPush{Table: snap},
		msg.SamplePush{},
		msg.SamplePullReq{},
		msg.SamplePullRly{Refs: ascending(t)},
	}
	if len(valid) != len(msg.Types()) {
		t.Fatalf("valid list covers %d types, want %d", len(valid), len(msg.Types()))
	}
	seen := make(map[msg.Type]bool)
	for _, m := range valid {
		seen[m.Type()] = true
		env := msg.Envelope{From: from, To: self, Msg: m}
		if err := Check(tp, self.ID, env); err != nil {
			t.Errorf("Check rejected valid %v: %v", m.Type(), err)
		}
	}
	if len(seen) != len(msg.Types()) {
		t.Errorf("valid list covers %d distinct types, want %d", len(seen), len(msg.Types()))
	}
}

// ascending returns two valid refs in ascending ID order.
func ascending(t *testing.T) []table.Ref {
	t.Helper()
	a, b := ref(t, "1201"), ref(t, "2211")
	if a.ID.Less(b.ID) {
		return []table.Ref{a, b}
	}
	return []table.Ref{b, a}
}

// outOfOrder returns two valid refs in descending ID order.
func outOfOrder(t *testing.T) []table.Ref {
	t.Helper()
	a, b := ref(t, "1201"), ref(t, "2211")
	if a.ID.Less(b.ID) {
		return []table.Ref{b, a}
	}
	return []table.Ref{a, b}
}

type unknownMsg struct{}

func (unknownMsg) Type() msg.Type { return msg.Type(99) }
func (unknownMsg) Big() bool      { return false }
func (unknownMsg) WireSize() int  { return 1 }

// TestCheckRejectsMalformed drives one malformed variant of every attack
// class through Check; each must be rejected with a descriptive error.
func TestCheckRejectsMalformed(t *testing.T) {
	self := ref(t, "0321")
	from := ref(t, "1201")
	other := ref(t, "2211")
	snap := snapOf(t, from)
	shortID := id.MustParse(id.Params{B: 4, D: 2}, "31")
	outOfBase := id.MustParse(id.Params{B: 8, D: 4}, "7777")

	// A snapshot whose entry occupant lacks the entry's desired suffix.
	badTbl := table.New(tp, from.ID)
	badTbl.Set(2, 3, table.Neighbor{ID: other.ID, State: table.StateS}) // other "2211" lacks suffix "301"
	// A snapshot with an out-of-range state.
	badState := table.New(tp, from.ID)
	badState.Set(0, from.ID.Digit(0), table.Neighbor{ID: from.ID, State: table.State(9)})

	longWant := id.MustParseSuffix(tp, "0321").Extend(1) // 5 digits > d

	cases := []struct {
		name string
		env  msg.Envelope
		want string // substring of the expected error
	}{
		{"misaddressed", msg.Envelope{From: from, To: other, Msg: msg.JoinWait{}}, "misaddressed"},
		{"nil message", msg.Envelope{From: from, To: self}, "nil message"},
		{"zero sender", msg.Envelope{To: self, Msg: msg.JoinWait{}}, "bad sender"},
		{"self sender", msg.Envelope{From: self, To: self, Msg: msg.JoinWait{}}, "from self"},
		{"short sender id", msg.Envelope{From: table.Ref{ID: shortID}, To: self, Msg: msg.JoinWait{}}, "digits"},
		{"out-of-base sender id", msg.Envelope{From: table.Ref{ID: outOfBase}, To: self, Msg: msg.JoinWait{}}, "out of base"},
		{"oversized addr", msg.Envelope{From: table.Ref{ID: from.ID, Addr: strings.Repeat("a", 300)}, To: self, Msg: msg.JoinWait{}}, "address"},
		{"unknown type", msg.Envelope{From: from, To: self, Msg: unknownMsg{}}, "unknown message"},
		{"CpRst level high", msg.Envelope{From: from, To: self, Msg: msg.CpRst{Level: tp.D}}, "level"},
		{"CpRst level negative", msg.Envelope{From: from, To: self, Msg: msg.CpRst{Level: -1}}, "level"},
		{"table wrong owner", msg.Envelope{From: from, To: self, Msg: msg.CpRly{Table: snapOf(t, other)}}, "owned by"},
		{"table wrong suffix", msg.Envelope{From: from, To: self, Msg: msg.CpRly{Table: badTbl.Snapshot()}}, "suffix"},
		{"table bad state", msg.Envelope{From: from, To: self, Msg: msg.Leave{Table: badState.Snapshot()}}, "state"},
		{"JoinWaitRly bad result", msg.Envelope{From: from, To: self, Msg: msg.JoinWaitRly{R: 9, U: self, Table: snap}}, "result"},
		{"JoinWaitRly zero U", msg.Envelope{From: from, To: self, Msg: msg.JoinWaitRly{R: msg.Positive, Table: snap}}, "null ref"},
		{"JoinWaitRly self redirect", msg.Envelope{From: from, To: self, Msg: msg.JoinWaitRly{R: msg.Negative, U: self, Table: snap}}, "redirects to self"},
		{"JoinNoti bad noti level", msg.Envelope{From: from, To: self, Msg: msg.JoinNoti{Table: snap, NotiLevel: -2}}, "noti_level"},
		{"JoinNoti huge fill", msg.Envelope{From: from, To: self, Msg: msg.JoinNoti{Table: snap, FillVector: table.NewBitVector(1 << 16)}}, "fill vector"},
		{"JoinNotiRly bad result", msg.Envelope{From: from, To: self, Msg: msg.JoinNotiRly{R: 0, Table: snap}}, "result"},
		{"SpeNoti zero X", msg.Envelope{From: from, To: self, Msg: msg.SpeNoti{Y: other}}, "X"},
		{"SpeNoti self Y", msg.Envelope{From: from, To: self, Msg: msg.SpeNoti{X: from, Y: self}}, "receiver to itself"},
		{"RvNghNoti level out", msg.Envelope{From: from, To: self, Msg: msg.RvNghNoti{Level: 99, Digit: 0, State: table.StateS}}, "level"},
		{"RvNghNoti digit out", msg.Envelope{From: from, To: self, Msg: msg.RvNghNoti{Level: 0, Digit: -1, State: table.StateS}}, "digit"},
		{"RvNghNoti bad state", msg.Envelope{From: from, To: self, Msg: msg.RvNghNoti{Level: 0, Digit: self.ID.Digit(0), State: 7}}, "state"},
		{"RvNghNoti wrong suffix", msg.Envelope{From: from, To: self, Msg: msg.RvNghNoti{Level: 2, Digit: 0, State: table.StateS}}, "qualify"},
		{"RvNghNotiRly level out", msg.Envelope{From: from, To: self, Msg: msg.RvNghNotiRly{Level: -3, Digit: 0, State: table.StateS}}, "level"},
		{"Find empty want", msg.Envelope{From: from, To: self, Msg: msg.Find{Origin: from}}, "empty suffix"},
		{"Find long want", msg.Envelope{From: from, To: self, Msg: msg.Find{Want: longWant, Origin: from}}, "exceeds"},
		{"Find zero origin", msg.Envelope{From: from, To: self, Msg: msg.Find{Want: id.MustParseSuffix(tp, "1")}}, "origin"},
		{"Find short avoid", msg.Envelope{From: from, To: self, Msg: msg.Find{Want: id.MustParseSuffix(tp, "1"), Origin: from, Avoid: shortID}}, "avoid"},
		{"FindRly wrong suffix", msg.Envelope{From: from, To: self, Msg: msg.FindRly{Want: id.MustParseSuffix(tp, "3"), Found: table.Neighbor{ID: other.ID, State: table.StateS}}}, "suffix"},
		{"FindRly bad state", msg.Envelope{From: from, To: self, Msg: msg.FindRly{Want: id.MustParseSuffix(tp, "1"), Found: table.Neighbor{ID: id.MustParse(tp, "3021"), State: 5}}}, "state"},
		{"FailedNoti zero", msg.Envelope{From: from, To: self, Msg: msg.FailedNoti{}}, "failed"},
		{"SyncReq huge fill", msg.Envelope{From: from, To: self, Msg: msg.SyncReq{Fill: table.NewBitVector(17)}}, "fill vector"},
		{"SyncRly wrong owner", msg.Envelope{From: from, To: self, Msg: msg.SyncRly{Table: snapOf(t, other)}}, "owned by"},
		{"SyncPush wrong owner", msg.Envelope{From: from, To: self, Msg: msg.SyncPush{Table: snapOf(t, other)}}, "owned by"},
		{"SamplePullRly zero ref", msg.Envelope{From: from, To: self, Msg: msg.SamplePullRly{Refs: []table.Ref{{}}}}, "null ref"},
		{"SamplePullRly out of order", msg.Envelope{From: from, To: self, Msg: msg.SamplePullRly{Refs: outOfOrder(t)}}, "out of order"},
		{"SamplePullRly duplicate ref", msg.Envelope{From: from, To: self, Msg: msg.SamplePullRly{Refs: []table.Ref{other, other}}}, "out of order"},
		{"SamplePullRly oversized", msg.Envelope{From: from, To: self, Msg: msg.SamplePullRly{Refs: make([]table.Ref, msg.MaxSampleRefs+1)}}, "exceeds"},
	}
	for _, tc := range cases {
		err := Check(tp, self.ID, tc.env)
		if err == nil {
			t.Errorf("%s: Check accepted malformed envelope", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestScorerQuarantineLifecycle walks the full lifecycle: charges
// accumulate to the threshold, the peer is quarantined for the
// cooldown, then released with a clean score.
func TestScorerQuarantineLifecycle(t *testing.T) {
	s := NewScorer(Policy{Threshold: 3, Decay: time.Second, Cooldown: 10 * time.Second})
	x := id.MustParse(tp, "1201")
	now := time.Duration(0)

	if s.Quarantined(x, now) {
		t.Fatal("fresh peer quarantined")
	}
	if s.Charge(x, 1, now) || s.Charge(x, 1, now) {
		t.Fatal("quarantined below threshold")
	}
	if !s.Charge(x, 1, now) {
		t.Fatal("third charge should quarantine (threshold 3)")
	}
	if !s.Quarantined(x, now) {
		t.Fatal("peer not quarantined after crossing threshold")
	}
	// Mid-cooldown: still quarantined; further charges don't extend it.
	mid := 5 * time.Second
	s.Charge(x, 1, mid)
	if !s.Quarantined(x, mid) {
		t.Fatal("peer released mid-cooldown")
	}
	// After the cooldown: released, score reset.
	after := 10 * time.Second
	if s.Quarantined(x, after) {
		t.Fatal("peer still quarantined after cooldown")
	}
	if s.Charge(x, 1, after) {
		t.Fatal("released peer re-quarantined by a single charge")
	}
	st := s.Stats()
	if st.Quarantines != 1 || st.Releases != 1 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v, want 1 quarantine, 1 release, 0 active", st)
	}
}

// TestScorerDecay: a slow trickle of violations below 1/Decay never
// quarantines — the score drains between charges.
func TestScorerDecay(t *testing.T) {
	s := NewScorer(Policy{Threshold: 3, Decay: time.Second, Cooldown: 10 * time.Second})
	x := id.MustParse(tp, "1201")
	for i := 0; i < 100; i++ {
		now := time.Duration(i) * 2 * time.Second // one charge per 2 decay units
		if s.Charge(x, 1, now) {
			t.Fatalf("slow offender quarantined at charge %d", i)
		}
	}
}

// TestScorerEviction: the tracked-peer map is bounded; rotating spoofed
// IDs cannot grow it past MaxPeers.
func TestScorerEviction(t *testing.T) {
	s := NewScorer(Policy{Threshold: 100, MaxPeers: 8})
	for i := 0; i < 64; i++ {
		x := id.FromName(tp, string(rune('a'+i)))
		s.Charge(x, 1, 0)
	}
	if len(s.peers) > 8 {
		t.Fatalf("scorer tracks %d peers, want <= 8", len(s.peers))
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

// TestScorerConcurrentHammer drives one scorer from many goroutines the
// way production does — under a shared mutex (the tcptransport node
// serializes scorer access behind the machine lock). Run under -race
// this verifies the locking discipline is sufficient, and the final
// counters must still be coherent: charges accounted exactly, releases
// never exceeding quarantines, and the active-quarantine gauge inside
// its lifetime bounds.
func TestScorerConcurrentHammer(t *testing.T) {
	s := NewScorer(Policy{
		Threshold: 4,
		Decay:     time.Second,
		Cooldown:  5 * time.Millisecond,
		MaxPeers:  64,
	})
	var mu sync.Mutex

	// A pool of peers larger than MaxPeers so eviction churns too.
	peers := make([]id.ID, 128)
	for i := range peers {
		peers[i] = id.FromName(tp, fmt.Sprintf("peer-%d", i))
	}

	const workers = 8
	const iters = 5000
	var clock atomic.Int64 // shared monotonic time source, in microseconds
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				x := peers[(w*31+i)%len(peers)]
				now := time.Duration(clock.Add(10)) * time.Microsecond
				mu.Lock()
				if i%3 == 0 {
					s.Quarantined(x, now)
				} else {
					s.Charge(x, 1, now)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	st := s.Stats()
	wantCharges := 0
	for w := 0; w < workers; w++ {
		for i := 0; i < iters; i++ {
			if i%3 != 0 {
				wantCharges++
			}
		}
	}
	if st.Charges != wantCharges {
		t.Errorf("charges = %d, want %d", st.Charges, wantCharges)
	}
	if st.Releases > st.Quarantines {
		t.Errorf("releases %d exceed quarantines %d", st.Releases, st.Quarantines)
	}
	if st.Quarantined < 0 || st.Quarantined > st.Quarantines {
		t.Errorf("active quarantines %d outside [0, %d]", st.Quarantined, st.Quarantines)
	}
	if len(s.peers) > 64 {
		t.Errorf("scorer tracks %d peers, want <= MaxPeers 64", len(s.peers))
	}
}
