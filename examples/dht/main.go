// Object sharing over the routing fabric: the application the
// introduction of the paper motivates. Nodes publish named objects;
// queries from any node are routed to a copy by suffix matching with
// PRR-style directory pointers (properties P1 and P2). After new nodes
// join, directories are repaired and objects remain locatable.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"hypercube/internal/dht"
	"hypercube/internal/id"
	"hypercube/internal/overlay"
	"hypercube/internal/stats"
)

func main() {
	p := id.Params{B: 16, D: 6}
	rng := rand.New(rand.NewSource(3))

	net := overlay.New(overlay.Config{Params: p})
	taken := make(map[id.ID]bool)
	members := overlay.RandomRefs(p, 300, rng, taken)
	net.BuildDirect(members, rng)
	store := dht.NewStore(p, net)

	// Publish a few hundred named objects from random holders.
	objects := make([]id.ID, 0, 200)
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("file-%04d.dat", i)
		obj := store.ObjectID(name)
		holder := members[rng.Intn(len(members))]
		if _, err := store.Publish(obj, holder); err != nil {
			fmt.Fprintf(os.Stderr, "dht: publish: %v\n", err)
			os.Exit(1)
		}
		objects = append(objects, obj)
	}
	fmt.Printf("published %d objects across %d nodes\n", len(objects), net.Size())

	// P1, deterministic location: every object found from every queried node.
	var hops []int
	for trial := 0; trial < 2000; trial++ {
		from := members[rng.Intn(len(members))].ID
		obj := objects[rng.Intn(len(objects))]
		_, h, err := store.Lookup(from, obj)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dht: lookup: %v\n", err)
			os.Exit(1)
		}
		hops = append(hops, h)
	}
	sum := stats.Summarize(hops)
	fmt.Printf("2000 lookups, all successful: mean %.2f hops, p99 %.0f, max %d (d=%d)\n",
		sum.Mean, sum.P99, sum.Max, p.D)

	// Replicate one object near a reader: P2 — the nearby copy wins.
	popular := objects[0]
	reader := members[42]
	_, before, _ := store.Lookup(reader.ID, popular)
	if _, err := store.Publish(popular, reader); err != nil {
		fmt.Fprintf(os.Stderr, "dht: replicate: %v\n", err)
		os.Exit(1)
	}
	holder, after, _ := store.Lookup(reader.ID, popular)
	fmt.Printf("replication: lookup cost %d hops before, %d after (served by %v)\n", before, after, holder.ID)

	// Now 100 nodes join concurrently; afterwards, repair directories and
	// verify all objects are still locatable from the new nodes.
	joiners := overlay.RandomRefs(p, 100, rng, taken)
	for _, j := range joiners {
		net.ScheduleJoin(j, members[rng.Intn(len(members))], 0)
	}
	net.Run()
	if v := net.CheckConsistency(); len(v) != 0 {
		fmt.Fprintf(os.Stderr, "dht: inconsistent after joins: %v\n", v[0])
		os.Exit(1)
	}
	if err := store.Republish(); err != nil {
		fmt.Fprintf(os.Stderr, "dht: republish: %v\n", err)
		os.Exit(1)
	}
	for _, j := range joiners {
		obj := objects[rng.Intn(len(objects))]
		if _, _, err := store.Lookup(j.ID, obj); err != nil {
			fmt.Fprintf(os.Stderr, "dht: post-join lookup: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("after %d concurrent joins + republish: network consistent, objects locatable from new nodes\n", len(joiners))

	// P3 view: directory pointer load.
	load := store.DirectoryLoad()
	fmt.Printf("directory load: busiest node holds %d pointers across %d directories\n", load[0], len(load))
}
