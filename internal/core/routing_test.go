package core_test

import (
	"fmt"
	"strings"
	"testing"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
)

// mapResolver adapts a map of tables to core.TableResolver.
type mapResolver map[id.ID]*table.Table

func (r mapResolver) TableOf(x id.ID) (*table.Table, bool) {
	t, ok := r[x]
	return t, ok
}

func TestNextHop(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	owner := id.MustParse(p, "3210")
	tbl := table.New(p, owner)
	hop := id.MustParse(p, "1100")
	tbl.Set(1, 0, table.Neighbor{ID: hop, State: table.StateS})

	// Arrived: the owner is the target.
	if _, arrived := core.NextHop(tbl, owner); !arrived {
		t.Error("routing to self did not report arrival")
	}
	// One resolving hop: target shares 1 digit (the 0) and wants digit 0
	// at level 1.
	target := id.MustParse(p, "1100")
	got, arrived := core.NextHop(tbl, target)
	if arrived || got.ID != hop {
		t.Errorf("NextHop = %v arrived=%v", got.ID, arrived)
	}
	// Empty entry: no node with the needed suffix.
	missing := id.MustParse(p, "1130")
	got, arrived = core.NextHop(tbl, missing)
	if arrived || !got.IsZero() {
		t.Errorf("NextHop for absent target = %v", got.ID)
	}
}

func TestRouteFullPath(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	pp, members := buildSmallNetwork(t, p, 15, 8)
	resolver := mapResolver(pp.tables())
	for _, src := range members {
		for _, dst := range members {
			path, ok := core.Route(resolver, src.ID, dst.ID, p)
			if !ok {
				t.Fatalf("route %v -> %v failed", src.ID, dst.ID)
			}
			if path[0] != src.ID || path[len(path)-1] != dst.ID {
				t.Fatalf("path endpoints wrong: %v", path)
			}
			if len(path) > p.D+1 {
				t.Fatalf("path exceeds d hops: %v", path)
			}
		}
	}
	// Unknown source fails cleanly.
	ghost := id.MustParse(p, "3333")
	if _, ok := resolver.TableOf(ghost); !ok {
		if _, routed := core.Route(resolver, ghost, members[0].ID, p); routed {
			t.Error("route from unknown node succeeded")
		}
	}
}

// TestGoldenSingleJoinTrace pins the exact message sequence of a single
// join into a two-node network. Any behavioral change to the protocol
// (message order, counts, types) shows up here first.
func TestGoldenSingleJoinTrace(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	pp := newPump(t, p, nil)
	seed := core.NewSeed(p, ref(p, "3210"), core.Options{})
	pp.add(seed)
	joiner := core.NewJoiner(p, ref(p, "0123"), core.Options{}) // csuf(seed, joiner) = 0
	pp.add(joiner)

	var trace []string
	record := func(env msg.Envelope) {
		trace = append(trace, fmt.Sprintf("%v->%v:%v", env.From.ID, env.To.ID, env.Msg.Type()))
	}
	// Drive the pump manually to record each delivery.
	queue := must(joiner.StartJoin(seed.Self()))
	for _, e := range queue {
		record(e)
	}
	for len(queue) > 0 {
		env := queue[0]
		queue = queue[1:]
		out := pp.machines[env.To.ID].Deliver(env)
		for _, e := range out {
			record(e)
		}
		queue = append(queue, out...)
	}

	want := []string{
		"0123->3210:CpRstMsg",       // copy level 0 (no digits shared)
		"3210->0123:CpRlyMsg",       // seed's table: only its diagonal
		"0123->3210:RvNghNotiMsg",   // joiner copied the seed into (0,0), state S: no correction needed
		"0123->3210:JoinWaitMsg",    // no node shares digit 3: wait at seed
		"3210->0123:JoinWaitRlyMsg", // positive: seed stored the joiner
		"0123->3210:InSysNotiMsg",   // joiner switches to in_system
	}
	if len(trace) != len(want) {
		t.Fatalf("trace length %d, want %d:\n%s", len(trace), len(want), strings.Join(trace, "\n"))
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %s, want %s\nfull trace:\n%s", i, trace[i], want[i], strings.Join(trace, "\n"))
		}
	}
	if !joiner.IsSNode() {
		t.Fatal("joiner did not finish")
	}
}
