package tcptransport

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/obs"
	"hypercube/internal/table"
)

// AdminHandler exposes a node's state and lifecycle over HTTP for
// operators:
//
//	GET  /status  — identity, protocol status, uptime, message counters,
//	                per-peer outbound queue depths
//	GET  /table   — the neighbor table as JSON
//	GET  /metrics — Prometheus text-format metrics (counters, gauges,
//	                join-latency/probe-RTT/anti-entropy histograms)
//	GET  /trace   — drain the in-memory event ring (requires
//	                WithTraceRing; 404 otherwise)
//	POST /join    — body {"id":"...", "addr":"host:port"}: join via bootstrap
//	POST /leave   — start a graceful departure
//
// Mount it on any mux or serve it directly; cmd/hypercubed wires it to a
// local port.
func (n *Node) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", n.handleStatus)
	mux.HandleFunc("GET /table", n.handleTable)
	mux.Handle("GET /metrics", n.MetricsHandler())
	mux.HandleFunc("GET /trace", n.handleTrace)
	mux.HandleFunc("POST /join", n.handleJoin)
	mux.HandleFunc("POST /leave", n.handleLeave)
	return mux
}

type statusResponse struct {
	ID     string `json:"id"`
	Addr   string `json:"addr"`
	Status string `json:"status"`
	B      int    `json:"b"`
	D      int    `json:"d"`
	Filled int    `json:"filledEntries"`
	// UptimeSeconds is how long the node has been running; LastTransition
	// is the wall-clock time of the most recent protocol-status change
	// (absent before the first one).
	UptimeSeconds  float64        `json:"uptimeSeconds"`
	LastTransition string         `json:"lastTransition,omitempty"`
	Sent           map[string]int `json:"sent"`
	Received       map[string]int `json:"received"`
	Retried        map[string]int `json:"retried,omitempty"`
	Dropped        map[string]int `json:"dropped,omitempty"`
	Bytes          int            `json:"bytesSent"`
	// Queues maps peer address to outbound queue depth — a persistently
	// deep queue is the signature of a wedged or unreachable peer.
	Queues      map[string]int     `json:"queues,omitempty"`
	Liveness    *livenessStatus    `json:"liveness,omitempty"`
	RTT         *rttStatus         `json:"rtt,omitempty"`
	AntiEntropy *antiEntropyStatus `json:"antiEntropy,omitempty"`
	Sampling    *samplingStatus    `json:"sampling,omitempty"`
	Guard       *guardStatus       `json:"guard,omitempty"`
}

// rttStatus is the adaptive-timeout slice of /status; present only when
// the node was started with WithRTT.
type rttStatus struct {
	Tracked  int `json:"tracked"`
	Degraded int `json:"degraded"`
	Samples  int `json:"samples"`
	Marked   int `json:"marked"`
	Cleared  int `json:"cleared"`
}

// guardStatus is the hostile-input slice of /status: the machine's
// semantic-validation and quarantine counters plus the transport's
// inbound-connection hardening counters. Always present — validation
// is always on.
type guardStatus struct {
	Rejected       int `json:"rejected"`
	UnknownDropped int `json:"unknownDropped"`
	IngressDropped int `json:"ingressDropped"`
	BusyDeferred   int `json:"busyDeferred"`
	Charges        int `json:"charges"`
	Quarantines    int `json:"quarantines"`
	Releases       int `json:"releases"`
	Quarantined    int `json:"quarantined"`

	DecodeErrors     int64 `json:"decodeErrors"`
	OversizedFrames  int64 `json:"oversizedFrames"`
	ThrottledInbound int64 `json:"throttledInbound"`
	Disconnects      int64 `json:"disconnects"`
}

// livenessStatus is the failure detector's slice of /status; present
// only when the node was started with WithLiveness.
type livenessStatus struct {
	Targets           int  `json:"targets"`
	ProbesSent        int  `json:"probesSent"`
	IndirectSent      int  `json:"indirectSent"`
	PongsReceived     int  `json:"pongsReceived"`
	Suspects          int  `json:"suspects"`
	Declared          int  `json:"declared"`
	Partitioned       bool `json:"partitioned"`
	PartitionsEntered int  `json:"partitionsEntered"`
	PartitionsExited  int  `json:"partitionsExited"`
	DeclarationsHeld  int  `json:"declarationsHeld"`
	Unreachable       int  `json:"unreachable"`
	// Adaptive-timeout activity; all zero when the node runs fixed
	// timeouts (no WithRTT).
	AdaptiveDeadlines int `json:"adaptiveDeadlines,omitempty"`
	LatePongs         int `json:"latePongs,omitempty"`
	DegradedMarked    int `json:"degradedMarked,omitempty"`
	DegradedCleared   int `json:"degradedCleared,omitempty"`
}

// antiEntropyStatus is the table-repair slice of /status; present only
// when the node was started with WithAntiEntropy.
type antiEntropyStatus struct {
	Rounds int `json:"rounds"`
	Pulled int `json:"pulled"`
	Purged int `json:"purged"`
}

// samplingStatus is the gossip peer-sampling slice of /status; present
// only when the node was started with WithSampling.
type samplingStatus struct {
	Rounds         int `json:"rounds"`
	ViewSize       int `json:"viewSize"`
	SamplerFill    int `json:"samplerFill"`
	PushesSent     int `json:"pushesSent"`
	PushesReceived int `json:"pushesReceived"`
	PullsSent      int `json:"pullsSent"`
	PullsAnswered  int `json:"pullsAnswered"`
	FloodsDetected int `json:"floodsDetected"`
	Ejected        int `json:"ejected"`
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	c := n.Counters()
	resp := statusResponse{
		ID:            n.Ref().ID.String(),
		Addr:          n.Ref().Addr,
		Status:        n.Status().String(),
		B:             n.params.B,
		D:             n.params.D,
		Filled:        n.Snapshot().FilledCount(),
		UptimeSeconds: n.Uptime().Seconds(),
		Sent:          make(map[string]int),
		Received:      make(map[string]int),
		Retried:       make(map[string]int),
		Dropped:       make(map[string]int),
		Bytes:         c.BytesSent,
		Queues:        n.QueueDepths(),
	}
	if at, status := n.tobs.last(); !at.IsZero() {
		resp.LastTransition = fmt.Sprintf("%s (-> %s)", at.UTC().Format(time.RFC3339Nano), status)
	}
	for _, typ := range msg.Types() {
		if v := c.SentOf(typ); v > 0 {
			resp.Sent[typ.String()] = v
		}
		if v := c.ReceivedOf(typ); v > 0 {
			resp.Received[typ.String()] = v
		}
		if v := c.RetriedOf(typ); v > 0 {
			resp.Retried[typ.String()] = v
		}
		if v := c.DroppedOf(typ); v > 0 {
			resp.Dropped[typ.String()] = v
		}
	}
	if stats, suspects, ok := n.LivenessStats(); ok {
		n.probeMu.Lock()
		targets := n.prober.TargetCount()
		partitioned := n.prober.Partitioned()
		n.probeMu.Unlock()
		resp.Liveness = &livenessStatus{
			Targets:           targets,
			ProbesSent:        stats.ProbesSent,
			IndirectSent:      stats.IndirectSent,
			PongsReceived:     stats.PongsReceived,
			Suspects:          suspects,
			Declared:          stats.Declared,
			Partitioned:       partitioned,
			PartitionsEntered: stats.PartitionsEntered,
			PartitionsExited:  stats.PartitionsExited,
			DeclarationsHeld:  stats.DeclarationsHeld,
			Unreachable:       stats.Unreachable,
			AdaptiveDeadlines: stats.AdaptiveDeadlines,
			LatePongs:         stats.LatePongs,
			DegradedMarked:    stats.DegradedMarked,
			DegradedCleared:   stats.DegradedCleared,
		}
	}
	if stats, ok := n.RTTStats(); ok {
		resp.RTT = &rttStatus{
			Tracked:  stats.Tracked,
			Degraded: stats.Degraded,
			Samples:  stats.Samples,
			Marked:   stats.Marked,
			Cleared:  stats.Cleared,
		}
	}
	if stats, ok := n.AntiEntropyStats(); ok {
		resp.AntiEntropy = &antiEntropyStatus{
			Rounds: stats.Rounds,
			Pulled: stats.Pulled,
			Purged: stats.Purged,
		}
	}
	if stats, ok := n.SamplingStats(); ok {
		resp.Sampling = &samplingStatus{
			Rounds:         stats.Rounds,
			ViewSize:       stats.ViewSize,
			SamplerFill:    stats.SamplerFill,
			PushesSent:     stats.PushesSent,
			PushesReceived: stats.PushesReceived,
			PullsSent:      stats.PullsSent,
			PullsAnswered:  stats.PullsAnswered,
			FloodsDetected: stats.FloodsDetected,
			Ejected:        stats.Ejected,
		}
	}
	gs := n.GuardStats()
	ts := n.TransportGuardStats()
	resp.Guard = &guardStatus{
		Rejected:         gs.Rejected,
		UnknownDropped:   gs.UnknownDropped,
		IngressDropped:   gs.IngressDropped,
		BusyDeferred:     gs.BusyDeferred,
		Charges:          gs.Scorer.Charges,
		Quarantines:      gs.Scorer.Quarantines,
		Releases:         gs.Scorer.Releases,
		Quarantined:      gs.Scorer.Quarantined,
		DecodeErrors:     ts.DecodeErrors,
		OversizedFrames:  ts.OversizedFrames,
		ThrottledInbound: ts.ThrottledInbound,
		Disconnects:      ts.Disconnects,
	}
	writeJSON(w, resp)
}

type tableEntry struct {
	Level int    `json:"level"`
	Digit int    `json:"digit"`
	ID    string `json:"id"`
	Addr  string `json:"addr,omitempty"`
	State string `json:"state"`
}

func (n *Node) handleTable(w http.ResponseWriter, r *http.Request) {
	var entries []tableEntry
	n.Snapshot().ForEach(func(level, digit int, nb table.Neighbor) {
		entries = append(entries, tableEntry{
			Level: level, Digit: digit,
			ID: nb.ID.String(), Addr: nb.Addr, State: nb.State.String(),
		})
	})
	writeJSON(w, map[string]any{
		"owner":   n.Ref().ID.String(),
		"entries": entries,
	})
}

type joinRequest struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	bootID, err := id.Parse(n.params, req.ID)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad bootstrap id: %v", err), http.StatusBadRequest)
		return
	}
	if n.Status() != core.StatusCopying {
		http.Error(w, fmt.Sprintf("node is %v, can only join from status copying", n.Status()), http.StatusConflict)
		return
	}
	if err := n.Join(table.Ref{ID: bootID, Addr: req.Addr}); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, map[string]string{"result": "joining"})
}

func (n *Node) handleTrace(w http.ResponseWriter, r *http.Request) {
	events, ok := n.DrainTrace()
	if !ok {
		http.Error(w, "trace ring not enabled (start the node with WithTraceRing)", http.StatusNotFound)
		return
	}
	if events == nil {
		events = []obs.Event{}
	}
	writeJSON(w, map[string]any{"events": events})
}

func (n *Node) handleLeave(w http.ResponseWriter, r *http.Request) {
	if n.Status() != core.StatusInSystem {
		http.Error(w, fmt.Sprintf("node is %v, can only leave from in_system", n.Status()), http.StatusConflict)
		return
	}
	if err := n.Leave(); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, map[string]string{"result": "leaving"})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
