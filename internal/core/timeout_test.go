package core_test

import (
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/guard"
	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
)

func timeoutOpts() core.Options {
	return core.Options{Timeouts: core.Timeouts{
		RetryAfter:  100 * time.Millisecond,
		MaxAttempts: 2,
	}}
}

func TestExchangeResendOnTimeout(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	opts := core.Options{Timeouts: core.Timeouts{RetryAfter: 100 * time.Millisecond, MaxAttempts: 4}}
	seed := core.NewSeed(p, ref(p, "3210"), opts)
	j := core.NewJoiner(p, ref(p, "0123"), opts)

	out := must(j.StartJoin(seed.Self()))
	if len(out) != 1 || out[0].Msg.Type() != msg.TCpRst {
		t.Fatalf("StartJoin sent %v", out)
	}
	// The CpRst is lost; nothing happens before the timeout...
	if extra := j.Tick(50 * time.Millisecond); len(extra) != 0 {
		t.Fatalf("premature resend: %v", extra)
	}
	// ...then the machine resends the identical request.
	resent := j.Tick(150 * time.Millisecond)
	if len(resent) != 1 || resent[0].Msg.Type() != msg.TCpRst || resent[0].To.ID != seed.Self().ID {
		t.Fatalf("timeout resent %v, want CpRst to seed", resent)
	}
	if got := j.Counters().SentOf(msg.TCpRst); got != 2 {
		t.Fatalf("CpRst sent %d times, want 2", got)
	}

	// This copy arrives; the reply settles the exchange and the join runs
	// to completion, after which the clock finds nothing left to resend.
	pp := newPump(t, p, nil)
	pp.add(seed)
	pp.add(j)
	pp.enqueue(resent)
	pp.run()
	if !j.IsSNode() {
		t.Fatalf("joiner stuck in %v", j.Status())
	}
	if late := j.Tick(time.Hour); len(late) != 0 {
		t.Fatalf("quiescent machine resent %v", late)
	}
}

func TestJoinRestartRotatesGateway(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	opts := timeoutOpts()
	pp := newPump(t, p, nil)
	seed := core.NewSeed(p, ref(p, "3210"), opts)
	pp.add(seed)
	b := core.NewJoiner(p, ref(p, "2101"), opts)
	pp.add(b)
	pp.enqueue(must(b.StartJoin(seed.Self())))
	pp.run()
	if !b.IsSNode() {
		t.Fatalf("setup joiner stuck in %v", b.Status())
	}

	// The joiner boots through the seed, with b registered as fallback —
	// but the seed has silently crashed: every message to it is dropped.
	j := core.NewJoiner(p, ref(p, "0123"), opts)
	j.AddGateways(b.Self())
	must(j.StartJoin(seed.Self())) // lost
	if out := j.Tick(100 * time.Millisecond); len(out) != 1 || out[0].To.ID != seed.Self().ID {
		t.Fatalf("first timeout should retry the seed, got %v", out)
	}
	// Attempt cap reached: the join restarts through the fallback gateway.
	out := j.Tick(time.Second)
	if len(out) != 1 || out[0].Msg.Type() != msg.TCpRst {
		t.Fatalf("give-up produced %v, want a fresh CpRst", out)
	}
	if out[0].To.ID != b.Self().ID {
		t.Fatalf("restart went to %v, want fallback %v", out[0].To.ID, b.Self().ID)
	}
	if j.Status() != core.StatusCopying {
		t.Fatalf("status after restart: %v", j.Status())
	}

	// Through the live gateway the join completes. The copied tables
	// reference the crashed seed, so the joiner will talk to it too; keep
	// dropping that traffic and let the clock retry around it.
	pp.add(j)
	deadID := seed.Self().ID
	delete(pp.machines, deadID)
	pp.enqueue(out)
	for now := 2 * time.Second; now < 60*time.Second && !j.IsSNode(); now += 100 * time.Millisecond {
		// Drain deliverable traffic by hand, dropping envelopes to the dead
		// seed (the pump would panic on an unknown recipient).
		for len(pp.queue) > 0 {
			env := pp.queue[0]
			pp.queue = pp.queue[1:]
			if env.To.ID == deadID {
				continue
			}
			pp.enqueue(pp.machines[env.To.ID].Deliver(env))
		}
		pp.enqueue(j.Tick(now))
	}
	if !j.IsSNode() {
		t.Fatalf("joiner never recovered from gateway crash, stuck in %v", j.Status())
	}
}

// TestJoinRestartSkipsQuarantinedGateway: a fallback gateway that earned
// itself a guard quarantine must not be chosen when the join restarts —
// a hostile node cannot spam its way into becoming the rescue gateway.
func TestJoinRestartSkipsQuarantinedGateway(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	pol := guard.Policy{Threshold: 3, Decay: time.Minute, Cooldown: time.Hour}
	opts := timeoutOpts()
	opts.Guard = &pol
	j := core.NewJoiner(p, ref(p, "0123"), opts)
	seedRef := ref(p, "3210")
	badGw := ref(p, "2101")
	goodGw := ref(p, "1032")
	j.AddGateways(badGw, goodGw)
	must(j.StartJoin(seedRef)) // lost: the seed has silently crashed

	// The hostile fallback hammers the joiner with malformed requests and
	// is quarantined before the join times out.
	for i := 0; i < 3; i++ {
		j.Deliver(msg.Envelope{From: badGw, To: j.Self(), Msg: msg.CpRst{Level: 99}})
	}
	if !j.PeerQuarantined(badGw.ID) {
		t.Fatal("setup: hostile gateway not quarantined")
	}

	if out := j.Tick(100 * time.Millisecond); len(out) != 1 || out[0].To.ID != seedRef.ID {
		t.Fatalf("first timeout should retry the seed, got %v", out)
	}
	out := j.Tick(time.Second) // attempt cap: restart through a fallback
	if len(out) != 1 || out[0].Msg.Type() != msg.TCpRst {
		t.Fatalf("give-up produced %v, want a fresh CpRst", out)
	}
	if out[0].To.ID == badGw.ID {
		t.Fatal("restart chose the quarantined gateway")
	}
	if out[0].To.ID != goodGw.ID {
		t.Fatalf("restart went to %v, want the clean fallback %v", out[0].To.ID, goodGw.ID)
	}
}

// TestJoinRestartFallsBackToSampledPeers: when every static gateway is
// gone, pickGateway consults the peer-sampling layer — and never selects
// the joiner's own ref even if the sampler hands it back.
func TestJoinRestartFallsBackToSampledPeers(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	self := ref(p, "0123")
	seedRef := ref(p, "3210")
	sampledPeer := ref(p, "1032")
	j := core.NewJoiner(p, self, timeoutOpts())
	j.SetPeerSampler(func(int) []table.Ref {
		// A sloppy (or hostile) sampler can echo the node's own ref back.
		return []table.Ref{self, sampledPeer}
	})
	must(j.StartJoin(seedRef))

	// The failure detector declares the bootstrap dead mid-copy: the only
	// static gateway is now off the candidate list, so the restart must
	// come from the sample.
	out := j.DeclareFailed(seedRef)
	var rst []msg.Envelope
	for _, env := range out {
		if env.Msg.Type() == msg.TCpRst {
			rst = append(rst, env)
		}
	}
	if len(rst) != 1 {
		t.Fatalf("declaration produced %d CpRsts, want 1 restart: %v", len(rst), out)
	}
	if rst[0].To.ID == self.ID {
		t.Fatal("restart addressed the joiner itself")
	}
	if rst[0].To.ID != sampledPeer.ID {
		t.Fatalf("restart went to %v, want sampled peer %v", rst[0].To.ID, sampledPeer.ID)
	}
	if j.Status() != core.StatusCopying {
		t.Fatalf("status after sampled restart: %v", j.Status())
	}
}

// TestPickGatewayNeverReturnsSelf: a sampler that only knows the node's
// own ref yields no candidates; the restart falls back to retrying the
// unresponsive gateway rather than the node addressing itself.
func TestPickGatewayNeverReturnsSelf(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	self := ref(p, "0123")
	seedRef := ref(p, "3210")
	j := core.NewJoiner(p, self, timeoutOpts())
	j.SetPeerSampler(func(int) []table.Ref { return []table.Ref{self} })
	must(j.StartJoin(seedRef)) // lost
	j.Tick(100 * time.Millisecond)
	out := j.Tick(time.Second) // give-up: restart
	for _, env := range out {
		if env.To.ID == self.ID {
			t.Fatalf("machine sent %v to itself", env.Msg.Type())
		}
	}
	if len(out) != 1 || out[0].To.ID != seedRef.ID {
		t.Fatalf("restart with no candidates sent %v, want a retry of the seed", out)
	}
}

func TestDeclareFailedGossipAndDedupe(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	pp, members := buildSmallNetwork(t, p, 12, 9)
	dead := members[4]

	// Find a survivor that stores the dead node.
	var holder *core.Machine
	for _, ref := range members {
		if ref.ID == dead.ID {
			continue
		}
		m := pp.machines[ref.ID]
		held := false
		m.Table().ForEach(func(_, _ int, nb table.Neighbor) {
			if nb.ID == dead.ID {
				held = true
			}
		})
		if held {
			holder = m
			break
		}
	}
	if holder == nil {
		t.Fatal("nobody stored the dead node — setup broken")
	}

	out := holder.DeclareFailed(dead)
	if !holder.KnowsFailed(dead.ID) {
		t.Fatal("DeclareFailed did not record the failure")
	}
	holder.Table().ForEach(func(level, digit int, nb table.Neighbor) {
		if nb.ID == dead.ID {
			t.Errorf("dead node still at (%d,%d) after DeclareFailed", level, digit)
		}
	})
	var notis []msg.Envelope
	for _, env := range out {
		if env.Msg.Type() == msg.TFailedNoti {
			notis = append(notis, env)
		}
	}
	if len(notis) == 0 {
		t.Fatal("declaration produced no FailedNoti gossip")
	}

	// First hearing: the co-holder drops the dead node and re-gossips.
	env := notis[0]
	peer := pp.machines[env.To.ID]
	out2 := peer.Deliver(env)
	if !peer.KnowsFailed(dead.ID) {
		t.Fatal("gossip receiver did not record the failure")
	}
	regossiped := 0
	for _, e := range out2 {
		if e.Msg.Type() == msg.TFailedNoti {
			regossiped++
		}
	}
	if regossiped == 0 {
		t.Fatal("first hearing did not re-gossip")
	}
	// Second hearing is a no-op (the gossip converges instead of echoing).
	for _, e := range peer.Deliver(env) {
		if e.Msg.Type() == msg.TFailedNoti {
			t.Fatal("duplicate declaration re-gossiped")
		}
	}
}

func TestTickIssuesRepairQueries(t *testing.T) {
	// A sparse space forces non-local repairs: after a declaration the
	// machine's own clock must issue Find queries for the emptied entries.
	p := id.Params{B: 16, D: 8}
	pp, members := buildSmallNetwork(t, p, 16, 11)
	dead := members[7]
	var withJobs *core.Machine
	for _, ref := range members {
		if ref.ID == dead.ID {
			continue
		}
		m := pp.machines[ref.ID]
		m.DeclareFailed(dead)
		if len(m.RepairsPending()) > 0 {
			withJobs = m
		}
	}
	if withJobs == nil {
		t.Skip("every repair resolved locally at this seed; nothing to drive")
	}
	out := withJobs.Tick(time.Second)
	finds := 0
	for _, env := range out {
		if env.Msg.Type() == msg.TFind {
			finds++
		}
	}
	if finds == 0 {
		t.Fatalf("Tick sent no Find for %d pending repairs", len(withJobs.RepairsPending()))
	}
}
